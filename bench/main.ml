(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) on our reproduction, plus the ablations called out
   in DESIGN.md.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- table2 fig2  -- run selected experiments
     FAIRMC_BENCH=full dune exec bench/main.exe   -- larger budgets

   Absolute numbers differ from the paper's 2008 testbed; the *shapes* are
   the reproduction targets (see EXPERIMENTS.md): who wins, exponential
   growth without fairness, timeouts in the same places. *)

open Fairmc_core
module W = Fairmc_workloads
module SC = Fairmc_statecap
module Json = Fairmc_util.Json
module Metrics = Fairmc_obs.Metrics

let full_budget = Sys.getenv_opt "FAIRMC_BENCH" = Some "full"

(* Machine-readable results: every experiment appends records here and the
   driver writes BENCH_PR9.json at the end (schema fairmc-bench/2). The
   printed tables stay the human-facing output; the JSON mirrors them. *)
let bench_records : Json.t list ref = ref []

let record experiment fields =
  bench_records := Json.Obj (("experiment", Json.Str experiment) :: fields) :: !bench_records

let bench_out = "BENCH_PR9.json"

(* A partial run (selected experiments) must not wipe the records of the
   experiments it did not run: keep those from the existing file and
   replace only the re-measured ones. *)
let write_records () =
  let fresh = List.rev !bench_records in
  let ran =
    List.filter_map
      (function Json.Obj (("experiment", Json.Str e) :: _) -> Some e | _ -> None)
      fresh
  in
  let kept =
    match (try Some (open_in bench_out) with Sys_error _ -> None) with
    | None -> []
    | Some ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (match Json.of_string s with
       | Ok (Json.Obj fields) ->
         (match List.assoc_opt "records" fields with
          | Some (Json.Arr records) ->
            List.filter
              (function
                | Json.Obj (("experiment", Json.Str e) :: _) -> not (List.mem e ran)
                | _ -> false)
              records
          | _ -> [])
       | _ -> [])
  in
  let doc =
    Json.Obj
      [ ("schema", Json.Str "fairmc-bench/2");
        ("budget", Json.Str (if full_budget then "full" else "quick"));
        ("records", Json.Arr (kept @ fresh)) ]
  in
  Json.to_file bench_out doc;
  Printf.printf "\nmachine-readable results written to %s (%d records kept)\n%!"
    bench_out (List.length kept)

(* Per-cell wall-clock budget (the paper used 5000 s; we keep the harness
   runnable in minutes and mark timed-out cells with '*'). *)
let cell_seconds = if full_budget then 60.0 else 8.0

let base =
  { Search_config.default with
    livelock_bound = Some 5_000;
    time_limit = Some cell_seconds;
    coverage = true }

let header title = Printf.printf "\n==== %s ====\n%!" title
let line fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Table 1: characteristics of input programs.                         *)

let table1 () =
  header "Table 1: characteristics of input programs (our stand-ins)";
  line "%-24s %8s %12s %10s" "program" "threads" "sync ops" "var ops";
  let programs =
    [ W.Dining.program ~n:3 W.Dining.Ordered;
      W.Wsq.program ~stealers:2 W.Wsq.Correct;
      W.Promise.pipeline_program ~width:2 W.Promise.Blocking;
      W.Taskpool.program ~workers:2 ~tasks:2 W.Taskpool.Courteous;
      W.Channels.program W.Channels.Correct;
      W.Channels.fifo_program ~stages:23 ~items:2 ();
      W.Singularity.program ~services:8 ~apps:4 ~requests:2 () ]
  in
  List.iter
    (fun p ->
      (* One complete random schedule measures per-execution op counts. *)
      let r =
        Search.run
          { Search_config.default with
            mode = Search_config.Random_walk 1;
            livelock_bound = Some 500_000;
            max_steps = 1_000_000;
            seed = 7L }
          p
      in
      line "%-24s %8d %12d %10d" p.Program.name r.stats.max_threads
        r.stats.sync_ops_per_exec
        (r.stats.transitions - r.stats.sync_ops_per_exec);
      record "table1"
        [ ("program", Json.Str p.Program.name);
          ("threads", Json.Int r.stats.max_threads);
          ("sync_ops", Json.Int r.stats.sync_ops_per_exec);
          ("var_ops", Json.Int (r.stats.transitions - r.stats.sync_ops_per_exec)) ])
    programs

(* ------------------------------------------------------------------ *)
(* Figure 2: nonterminating executions vs. depth bound (Figure 1 prog). *)

let fig2 () =
  header "Figure 2: nonterminating executions grow exponentially with the depth bound";
  line "(program: Figure 1 dining philosophers, unfair DFS, random tail)";
  line "%6s %16s %12s %8s" "db" "nonterm execs" "executions" "time";
  let bounds = if full_budget then [ 15; 20; 25; 30; 35; 40 ] else [ 15; 18; 21; 24; 27 ] in
  List.iter
    (fun db ->
      let cfg =
        { (Search_config.unfair_dfs ~depth_bound:db) with
          max_steps = 2_000;
          time_limit = Some cell_seconds;
          seed = 1L }
      in
      let r = Search.run cfg (W.Dining.program ~n:2 W.Dining.Try_acquire) in
      let star = if r.verdict = Report.Limits_reached then "*" else "" in
      line "%6d %15d%s %12d %7.2fs" db r.stats.depth_bound_hits star r.stats.executions
        r.stats.elapsed;
      record "fig2"
        [ ("depth_bound", Json.Int db);
          ("nonterminating", Json.Int r.stats.depth_bound_hits);
          ("executions", Json.Int r.stats.executions);
          ("elapsed_seconds", Json.Float r.stats.elapsed);
          ("timed_out", Json.Bool (r.verdict = Report.Limits_reached)) ])
    bounds

(* ------------------------------------------------------------------ *)
(* Table 2 + Figures 5/6: state coverage and search time.               *)

type cell = { states : int; time : float; complete : bool }

let run_cell cfg prog =
  let r = Search.run { cfg with coverage = true; time_limit = Some cell_seconds } prog in
  { states = r.stats.states;
    time = r.stats.elapsed;
    complete = (r.verdict = Report.Verified) }

let pp_cell c = Printf.sprintf "%d%s" c.states (if c.complete then "" else "*")
let pp_time c = Printf.sprintf "%.2f%s" c.time (if c.complete then "" else "*")

let strategies = [ ("cb=1", 1); ("cb=2", 2); ("cb=3", 3); ("dfs", -1) ]
let depth_bounds = [ 20; 30; 40; 50; 60 ]

let table2_configs () =
  [ ("dining 2 phils", W.Dining.coverage_program ~n:2);
    ("dining 3 phils", W.Dining.coverage_program ~n:3);
    ("wsq 1 stealer", W.Wsq.coverage_program ~stealers:1 ());
    ("wsq 2 stealers", W.Wsq.coverage_program ~stealers:2 ()) ]

let table2_row prog (label, cb) =
  let mode =
    if cb < 0 then Search_config.Dfs else Search_config.Context_bounded cb
  in
  (* Ground truth: stateful search restricted to the strategy. *)
  let gt =
    SC.Stateful.explore
      ~mode:(if cb < 0 then SC.Stateful.Full else SC.Stateful.Cb cb)
      ~time_limit:cell_seconds prog
  in
  let fair = run_cell { base with mode } prog in
  let unfair =
    List.map
      (fun db ->
        run_cell
          { base with
            mode;
            fair = false;
            depth_bound = Some db;
            max_steps = 4_000;
            seed = 2L }
          prog)
      depth_bounds
  in
  (label, gt, fair, unfair)

let table2_data =
  lazy
    (List.map
       (fun (n, p) -> (n, List.map (table2_row p) strategies))
       (table2_configs ()))

let table2 () =
  header "Table 2: states visited, with and without fairness";
  line "(unfair searches prune at the depth bound and finish the path randomly;";
  line " '*' marks searches that hit the per-cell time budget of %.0fs)" cell_seconds;
  List.iter
    (fun (config, rows) ->
      line "\n-- %s --" config;
      line "%-6s %10s %10s | %10s %10s %10s %10s %10s" "strat" "total" "fair" "db=20"
        "db=30" "db=40" "db=50" "db=60";
      List.iter
        (fun (strat, (gt : SC.Stateful.result), fair, unfair) ->
          line "%-6s %9d%s %10s | %10s %10s %10s %10s %10s" strat gt.states
            (if gt.complete then "" else "*")
            (pp_cell fair)
            (pp_cell (List.nth unfair 0))
            (pp_cell (List.nth unfair 1))
            (pp_cell (List.nth unfair 2))
            (pp_cell (List.nth unfair 3))
            (pp_cell (List.nth unfair 4));
          let cell_json c =
            Json.Obj
              [ ("states", Json.Int c.states);
                ("seconds", Json.Float c.time);
                ("complete", Json.Bool c.complete) ]
          in
          record "table2"
            [ ("config", Json.Str config);
              ("strategy", Json.Str strat);
              ("total_states", Json.Int gt.states);
              ("total_complete", Json.Bool gt.complete);
              ("fair", cell_json fair);
              ("unfair",
               Json.Obj
                 (List.map2
                    (fun db c -> (Printf.sprintf "db=%d" db, cell_json c))
                    depth_bounds unfair)) ])
        rows)
    (Lazy.force table2_data)

let fig56 () =
  header "Figures 5 and 6: time to complete the search (seconds; '*' = timed out)";
  List.iter
    (fun (config, rows) ->
      if config = "dining 3 phils" || config = "wsq 2 stealers" then begin
        line "\n-- %s --" config;
        line "%-6s %10s | %10s %10s %10s %10s %10s" "strat" "fair" "db=20" "db=30"
          "db=40" "db=50" "db=60";
        List.iter
          (fun (strat, _, fair, unfair) ->
            line "%-6s %10s | %10s %10s %10s %10s %10s" strat (pp_time fair)
              (pp_time (List.nth unfair 0))
              (pp_time (List.nth unfair 1))
              (pp_time (List.nth unfair 2))
              (pp_time (List.nth unfair 3))
              (pp_time (List.nth unfair 4)))
          rows
      end)
    (Lazy.force table2_data)

(* ------------------------------------------------------------------ *)
(* Table 3: executions and time to the first bug, fair vs unfair.       *)

let table3_bugs () =
  [ ("WSQ bug 1", W.Wsq.program ~spin:true ~stealers:1 W.Wsq.Bug1);
    ("WSQ bug 2", W.Wsq.program ~spin:true ~stealers:2 W.Wsq.Bug2);
    ("WSQ bug 3", W.Wsq.program ~items:1 ~spin:true ~stealers:1 W.Wsq.Bug3);
    ("Channel bug 1", W.Channels.program ~spin:true W.Channels.Bug1);
    ("Channel bug 2", W.Channels.program ~spin:true W.Channels.Bug2);
    ("Channel bug 3", W.Channels.program ~spin:true W.Channels.Bug3);
    ("Channel bug 4", W.Channels.program ~spin:true W.Channels.Bug4) ]

let table3 () =
  header "Table 3: executions and time to find each bug (cb=2), fair vs unfair";
  line "(unfair search uses depth bound 250 with a random tail, as in the paper;";
  line " '-' means the bug was not found within the budget)";
  line "%-14s | %12s %10s | %12s %10s" "bug" "fair execs" "time" "unfair execs" "time";
  let budget_time = if full_budget then 120.0 else 20.0 in
  List.iter
    (fun (name, prog) ->
      let run_one fair =
        let cfg =
          { Search_config.default with
            mode = Search_config.Context_bounded 2;
            fair;
            depth_bound = (if fair then None else Some 250);
            (* The lost-wakeup bug manifests as a livelock of the polling
               thread: the livelock bound must fire before the hard cap. *)
            livelock_bound = Some 2_000;
            max_steps = 4_000;
            time_limit = Some budget_time;
            seed = 3L }
        in
        let r = Search.run cfg prog in
        match
          (Report.found_error r, r.stats.first_error_execution, r.stats.first_error_time)
        with
        | true, Some e, Some t -> Some (e, t)
        | _ -> None
      in
      let show = function
        | Some (e, t) -> Printf.sprintf "%12d %9.2fs" e t
        | None -> Printf.sprintf "%12s %10s" "-" "-"
      in
      let fair = run_one true and unfair = run_one false in
      line "%-14s | %s | %s" name (show fair) (show unfair);
      let found_json = function
        | Some (e, t) ->
          Json.Obj [ ("executions", Json.Int e); ("seconds", Json.Float t) ]
        | None -> Json.Null
      in
      record "table3"
        [ ("bug", Json.Str name);
          ("fair", found_json fair);
          ("unfair", found_json unfair) ])
    (table3_bugs ())

(* ------------------------------------------------------------------ *)
(* Section 4.3: liveness violations.                                    *)

let liveness_demos () =
  header "Section 4.3: liveness violations";
  let show name prog =
    let r =
      Search.run
        { Search_config.default with livelock_bound = Some 2_000; time_limit = Some cell_seconds }
        prog
    in
    line "%-30s -> %s (executions: %d, %.2fs)" name (Report.verdict_name r.verdict)
      r.stats.executions r.stats.elapsed;
    record "livelock"
      [ ("program", Json.Str name);
        ("verdict", Json.Str (Report.verdict_name r.verdict));
        ("executions", Json.Int r.stats.executions);
        ("elapsed_seconds", Json.Float r.stats.elapsed) ]
  in
  show "taskpool spin-shutdown (Fig 7)" (W.Taskpool.program W.Taskpool.Spin_shutdown);
  show "promise stale-cache (Fig 8)" (W.Promise.program W.Promise.Stale_cache);
  show "dining try-acquire (Fig 1)" (W.Dining.program ~n:2 W.Dining.Try_acquire);
  show "dining try-acquire + yield" (W.Dining.program ~n:2 W.Dining.Try_acquire_yield)

(* ------------------------------------------------------------------ *)
(* Section 4.1: booting Singularity-lite.                               *)

let boot () =
  header "Section 4.1: booting Singularity-lite under the checker";
  let prog = W.Singularity.program ~services:8 ~apps:4 ~requests:1 () in
  let budget = if full_budget then 20_000 else 3_000 in
  let r =
    Search.run
      { Search_config.default with
        mode = Search_config.Context_bounded 1;
        max_executions = Some budget;
        livelock_bound = Some 50_000;
        max_steps = 100_000 }
      prog
  in
  line "%s: %d boot/shutdown schedules explored, %d transitions, verdict: %s (%.1fs)"
    prog.Program.name r.stats.executions r.stats.transitions
    (Report.verdict_name r.verdict) r.stats.elapsed;
  line "threads: %d, sync ops per execution: %d" r.stats.max_threads
    r.stats.sync_ops_per_exec;
  record "boot"
    [ ("program", Json.Str prog.Program.name);
      ("executions", Json.Int r.stats.executions);
      ("transitions", Json.Int r.stats.transitions);
      ("verdict", Json.Str (Report.verdict_name r.verdict));
      ("elapsed_seconds", Json.Float r.stats.elapsed);
      ("threads", Json.Int r.stats.max_threads);
      ("sync_ops_per_exec", Json.Int r.stats.sync_ops_per_exec) ]

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)

let ablation () =
  header "Ablation: demonic-fair vs baseline schedulers (coverage of total states)";
  let programs =
    [ ("dining-cov-2", W.Dining.coverage_program ~n:2);
      ("wsq-cov-1s", W.Wsq.coverage_program ~stealers:1 ()) ]
  in
  List.iter
    (fun (name, p) ->
      let total = (SC.Stateful.explore ~time_limit:cell_seconds p).SC.Stateful.states in
      let states cfg = (Search.run cfg p).stats.states in
      let fair_dfs = states base in
      let fair_cb2 = states { base with mode = Search_config.Context_bounded 2 } in
      let rr = states { base with mode = Search_config.Round_robin } in
      let rand = states { base with mode = Search_config.Random_walk 1_000 } in
      let prio = states { base with mode = Search_config.Priority_random 1_000 } in
      line
        "%-14s total=%d  fair-dfs=%d fair-cb2=%d  round-robin=%d random(1k)=%d apt-olderog(1k)=%d"
        name total fair_dfs fair_cb2 rr rand prio;
      record "ablation"
        [ ("kind", Json.Str "scheduler-coverage");
          ("program", Json.Str name);
          ("total_states", Json.Int total);
          ("fair_dfs", Json.Int fair_dfs);
          ("fair_cb2", Json.Int fair_cb2);
          ("round_robin", Json.Int rr);
          ("random_1k", Json.Int rand);
          ("apt_olderog_1k", Json.Int prio) ])
    programs;

  header "Ablation: sleep-set partial-order reduction (executions to exhaust)";
  List.iter
    (fun (name, p) ->
      let execs ss =
        let r =
          Search.run
            { Search_config.default with
              fair = false;
              sleep_sets = ss;
              time_limit = Some cell_seconds }
            p
        in
        (r.stats.executions, r.verdict = Report.Verified)
      in
      let plain, c1 = execs false in
      let reduced, c2 = execs true in
      line "%-22s plain=%d%s  sleep-sets=%d%s" name plain
        (if c1 then "" else "*")
        reduced
        (if c2 then "" else "*");
      record "ablation"
        [ ("kind", Json.Str "sleep-sets");
          ("program", Json.Str name);
          ("plain_executions", Json.Int plain);
          ("plain_complete", Json.Bool c1);
          ("sleep_set_executions", Json.Int reduced);
          ("sleep_set_complete", Json.Bool c2) ])
    [ ("independent 2x4", W.Litmus.two_step_threads ~nthreads:2 ~steps:4);
      ("store-buffer", W.Litmus.store_buffer ());
      ("ticket-lock", W.Litmus.ticket_lock ()) ];

  header "Ablation: the k-th-yield parameterization (Section 3)";
  List.iter
    (fun k ->
      let r =
        Search.run { base with fair_k = k; livelock_bound = Some 2_000 }
          (W.Dining.coverage_program ~n:2)
      in
      line "k=%d: states=%d executions=%d verdict=%s" k r.stats.states r.stats.executions
        (Report.verdict_name r.verdict);
      record "ablation"
        [ ("kind", Json.Str "kth-yield");
          ("k", Json.Int k);
          ("states", Json.Int r.stats.states);
          ("executions", Json.Int r.stats.executions);
          ("verdict", Json.Str (Report.verdict_name r.verdict)) ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Parallel search: executions/sec and speedup across worker counts.    *)

let par () =
  header "Parallel search: domain-sharded exploration (speedup vs jobs=1)";
  line "(host reports %d core(s) available — near-linear speedup needs as many"
    (Domain.recommended_domain_count ());
  line " cores as workers; on fewer cores the domains time-slice and speedup";
  line " degrades to <= 1x while results stay identical/reproducible)";
  let jobs_list = [ 1; 2; 4; 8 ] in
  let experiments =
    [ (* Sampling: the embarrassingly-parallel case the paper's workloads
         motivate — a fixed random-walk budget sharded across domains. *)
      ("random-walk dining-3",
       { Search_config.default with
         mode = Search_config.Random_walk 2_000;
         livelock_bound = Some 1_000;
         time_limit = Some (4.0 *. cell_seconds) },
       W.Dining.program ~n:3 W.Dining.Ordered);
      ("random-walk wsq-2s",
       { Search_config.default with
         mode = Search_config.Random_walk 1_000;
         livelock_bound = Some 2_000;
         time_limit = Some (4.0 *. cell_seconds) },
       W.Wsq.program ~stealers:2 W.Wsq.Correct);
      (* Systematic: frontier-split fair DFS; results are bit-equal to the
         sequential search at every jobs value. *)
      ("fair-dfs dining-cov-2",
       { base with time_limit = Some (4.0 *. cell_seconds) },
       W.Dining.coverage_program ~n:2) ]
  in
  List.iter
    (fun (name, cfg, prog) ->
      line "\n-- %s --" name;
      line "%6s %12s %12s %10s %9s" "jobs" "executions" "execs/sec" "wall" "speedup";
      let base_rate = ref None in
      List.iter
        (fun jobs ->
          (* Metrics on: the per-jobs records carry the merged snapshot, which
             is how the shard/worker balance gauges get archived. *)
          let r = Par_search.run { cfg with jobs; metrics = true } prog in
          let rate = float_of_int r.stats.executions /. r.stats.elapsed in
          let speedup =
            match !base_rate with
            | None ->
              base_rate := Some rate;
              1.0
            | Some b -> rate /. b
          in
          line "%6d %12d %12.0f %9.2fs %8.2fx%s" jobs r.stats.executions rate
            r.stats.elapsed speedup
            (if r.verdict = Report.Limits_reached && cfg.time_limit <> None then ""
             else if Report.found_error r then " (error found)"
             else "");
          record "par"
            [ ("workload", Json.Str name);
              ("jobs", Json.Int jobs);
              ("executions", Json.Int r.stats.executions);
              ("elapsed_seconds", Json.Float r.stats.elapsed);
              ("execs_per_second", Json.Float rate);
              ("speedup", Json.Float speedup);
              ("verdict", Json.Str (Report.verdict_name r.verdict));
              ("metrics", Metrics.Snapshot.to_json r.metrics) ])
        jobs_list)
    experiments

(* ------------------------------------------------------------------ *)
(* Dynamic-analysis overhead: the observer hook must be free when unset *)
(* and cheap when set (PR 4 acceptance).                                *)

let analysis_overhead () =
  header "Dynamic analyses: observer overhead on a race-free search";
  line "%-24s %12s %12s %9s" "configuration" "executions" "execs/sec" "vs off";
  let prog () = W.Dining.program ~n:3 W.Dining.Ordered in
  let cfg =
    { Search_config.default with
      livelock_bound = Some 2_000;
      max_executions = Some (if full_budget then 50_000 else 5_000) }
  in
  let arms =
    [ ("observer off", []);
      ("hb races", [ Fairmc_analysis.Hb_race.analysis ]);
      ("lockset", [ Fairmc_analysis.Lockset.analysis ]);
      ("lock graph", [ Fairmc_analysis.Lock_graph.analysis ]);
      ("all three",
       [ Fairmc_analysis.Hb_race.analysis;
         Fairmc_analysis.Lockset.analysis;
         Fairmc_analysis.Lock_graph.analysis ]) ]
  in
  let base_rate = ref None in
  List.iter
    (fun (label, analyses) ->
      (* Warm once so allocator state does not bias the first arm. *)
      ignore (Search.run { cfg with max_executions = Some 200; analyses } (prog ()));
      let r = Search.run { cfg with analyses } (prog ()) in
      let rate = float_of_int r.stats.executions /. r.stats.elapsed in
      let rel =
        match !base_rate with
        | None ->
          base_rate := Some rate;
          1.0
        | Some b -> rate /. b
      in
      line "%-24s %12d %12.0f %8.2fx" label r.stats.executions rate rel;
      record "analysis"
        [ ("configuration", Json.Str label);
          ("executions", Json.Int r.stats.executions);
          ("elapsed_seconds", Json.Float r.stats.elapsed);
          ("execs_per_second", Json.Float rate);
          ("relative_rate", Json.Float rel);
          ("verdict", Json.Str (Report.verdict_name r.verdict)) ])
    arms

(* Telemetry overhead: the event stream and span timers ride the hot path
   of every execution, so turning them on must stay within a few percent of
   the bare search (PR 7 acceptance: < 5% on the fig2 depth-15 workload).
   Both arms run the identical bounded search; only the instrumentation
   differs. The events sink discards lines, so the cost measured is
   formatting + buffering + span clock reads, not file I/O. *)
let telemetry_overhead () =
  header "Telemetry: event-stream and span overhead on the fig2 depth-15 search";
  line "%-28s %12s %12s %9s %9s" "configuration" "executions" "execs/sec" "wall"
    "overhead";
  let prog () = W.Dining.program ~n:2 W.Dining.Try_acquire in
  let cfg =
    { (Search_config.unfair_dfs ~depth_bound:15) with
      max_steps = 2_000;
      max_executions = Some (if full_budget then 60_000 else 15_000);
      seed = 1L }
  in
  let arms =
    [ ("telemetry off", fun () -> cfg);
      ("metrics", fun () -> { cfg with metrics = true });
      ("events (no sink)",
       fun () -> { cfg with events = Some (Fairmc_obs.Events.create ()) });
      ("events (null sink)",
       fun () ->
         { cfg with
           events = Some (Fairmc_obs.Events.create ~write:(fun _ -> ()) ()) });
      (* --trace-spans: a collecting stream switches the per-path span
         events on, so this arm is the full event-stream + span cost. *)
      ("events + spans (collect)",
       fun () -> { cfg with events = Some (Fairmc_obs.Events.create ~collect:true ()) });
      (* --metrics carries the pre-existing per-step counters (schedulable
         set sizes, fair-scheduler relation sizes); listed for context, its
         cost is not part of this PR's event-stream/span budget. *)
      ("metrics + events",
       fun () ->
         { cfg with
           metrics = true;
           events = Some (Fairmc_obs.Events.create ~write:(fun _ -> ()) ()) }) ]
  in
  (* One depth-15 search finishes in well under a second, so a single run
     is at the mercy of scheduler noise and CPU-frequency drift — on a
     contended host the speed swings by ±10% on multi-second scales, which
     swamps the few-hundred-ns/path effect being measured if arms are
     compared across the whole run. Instead compare WITHIN each repetition
     round: all arms of one round run back-to-back inside ~half a second,
     so the round-local ratio (arm rate / baseline rate of the same round)
     mostly cancels the host's speed at that moment. The arm order rotates
     every round (so periodic slowdowns do not always land on the same
     arm) and the reported overhead comes from the MEDIAN of the
     per-round ratios, which a single preempted round cannot drag. *)
  let reps = if full_budget then 40 else 30 in
  let narms = List.length arms in
  let rates = Array.make_matrix narms reps 0.0 in
  let execs_per_run = ref 0 in
  let wall = Array.make narms 0.0 in
  (* Warm once so allocator state does not bias the first arm. *)
  ignore (Search.run { cfg with max_executions = Some 500 } (prog ()));
  for rep = 0 to reps - 1 do
    List.iteri
      (fun j _ ->
        let i = (j + rep) mod narms in
        let _, mk = List.nth arms i in
        let r = Search.run (mk ()) (prog ()) in
        let secs = Report.search_time r.stats in
        execs_per_run := r.stats.executions;
        rates.(i).(rep) <- float_of_int r.stats.executions /. secs;
        wall.(i) <- wall.(i) +. secs)
      arms
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  in
  List.iteri
    (fun i (label, _) ->
      let ratios =
        Array.init reps (fun rep -> rates.(i).(rep) /. rates.(0).(rep))
      in
      let overhead = (1.0 -. median ratios) *. 100.0 in
      line "%-28s %12d %12.0f %8.2fs %+8.2f%%" label (!execs_per_run * reps)
        (median rates.(i)) wall.(i) overhead;
      record "telemetry"
        [ ("configuration", Json.Str label);
          ("executions", Json.Int (!execs_per_run * reps));
          ("elapsed_seconds", Json.Float wall.(i));
          ("execs_per_second", Json.Float (median rates.(i)));
          ("overhead_pct", Json.Float overhead) ])
    arms

(* Fair_sched.step used to copy all five relation arrays per transition;
   it now mutates in place (snapshots take an explicit Fair_sched.copy).
   This experiment quantifies that delta: the same update stream applied
   through the in-place step vs. through copy-then-step (the old cost). *)
let fair_sched_step () =
  header "Fair scheduler: in-place step vs copy-per-step";
  line "%-24s %14s %14s %9s" "configuration" "steps" "steps/sec" "vs copy";
  let module B = Fairmc_util.Bitset in
  let module FS = Fair_sched in
  let steps = if full_budget then 5_000_000 else 500_000 in
  let run_stream ~nthreads ~copy_each =
    let rng = Fairmc_util.Rng.make 7L in
    let fs = ref (FS.create ~nthreads ()) in
    let es = B.full nthreads in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      let chosen = Fairmc_util.Rng.int rng nthreads in
      let yielded = Fairmc_util.Rng.bool rng in
      let base = if copy_each then FS.copy !fs else !fs in
      fs := FS.step base ~chosen ~yielded ~es_before:es ~es_after:es
    done;
    Unix.gettimeofday () -. t0
  in
  List.iter
    (fun nthreads ->
      (* Warm both paths so allocator state does not bias the first arm. *)
      ignore (run_stream ~nthreads ~copy_each:true);
      ignore (run_stream ~nthreads ~copy_each:false);
      let t_copy = run_stream ~nthreads ~copy_each:true in
      let t_inplace = run_stream ~nthreads ~copy_each:false in
      let rate t = float_of_int steps /. t in
      List.iter
        (fun (label, t, rel) ->
          line "%-24s %14d %14.0f %8.2fx" label steps (rate t) rel;
          record "fair_sched_step"
            [ ("configuration", Json.Str label);
              ("nthreads", Json.Int nthreads);
              ("steps", Json.Int steps);
              ("elapsed_seconds", Json.Float t);
              ("steps_per_second", Json.Float (rate t));
              ("relative_rate", Json.Float rel) ])
        [ (Printf.sprintf "copy+step n=%d" nthreads, t_copy, 1.0);
          (Printf.sprintf "in-place n=%d" nthreads, t_inplace, t_copy /. t_inplace) ])
    (if full_budget then [ 2; 4; 8; 16 ] else [ 2; 8 ])

(* ------------------------------------------------------------------ *)
(* Bytecode VM: re-execution throughput against the AST oracle (PR 6).  *)
(* Same Search.run, same config, same observables; the only variable is *)
(* which ChessLang backend executes the program.                        *)

module Dsl = Fairmc_dsl

(* Compute-heavy: long silent local-variable loops between transitions —
   the regime where per-statement interpretation cost dominates. *)
let vm_src_compute =
  "var acc = 0;\n\
   thread a { local i = 0; local h = 0; while (i < 40) { h = 0; local j = 0; \
   while (j < 400) { h = (h * 31 + j) % 65521; j = j + 1; } acc = acc + h; i = i + 1; } }\n\
   thread b { local i = 0; local h = 0; while (i < 40) { h = 0; local j = 0; \
   while (j < 400) { h = (h * 7 + j) % 65521; j = j + 1; } acc = acc + h; i = i + 1; } }"

(* Sync-heavy: semaphore-guarded bounded buffer; transitions dominate, so
   this measures the per-transition floor rather than expression dispatch. *)
let vm_src_buffer =
  "array buf[2] = 0; var head = 0; var tail = 0;\n\
   sem items = 0; sem spaces = 2; mutex m;\n\
   thread producer { local i = 0; while (i < 3) { p(spaces); lock(m); \
   buf[tail % 2] = i + 1; tail = tail + 1; unlock(m); v(items); i = i + 1; } }\n\
   thread consumer { local expect = 1; while (expect < 4) { p(items); lock(m); \
   local got = buf[head % 2]; head = head + 1; unlock(m); v(spaces); \
   assert(got == expect, \"out of order\"); expect = expect + 1; } }"

(* Spin-heavy: Peterson's algorithm; good-samaritan spin loops exercise the
   FUEL/SCHED boundary and the fair scheduler's yield bookkeeping. *)
let vm_src_peterson =
  "var flag0 = 0; var flag1 = 0; var turn = 0; var crit = 0;\n\
   thread p0 { local i = 0; while (i < 2) { flag0 = 1; turn = 1; \
   while (flag1 == 1 && turn == 1) { yield; } crit = crit + 1; \
   assert(crit == 1, \"mutex\"); crit = crit - 1; flag0 = 0; i = i + 1; } }\n\
   thread p1 { local i = 0; while (i < 2) { flag1 = 1; turn = 0; \
   while (flag0 == 1 && turn == 0) { yield; } crit = crit + 1; \
   assert(crit == 1, \"mutex\"); crit = crit - 1; flag1 = 0; i = i + 1; } }"

let vm_bench () =
  header "Bytecode VM: re-execution throughput vs the AST oracle (--interp ast)";
  line "(identical searches and observables; the only variable is the ChessLang";
  line " backend. speedup = VM execs/sec over AST execs/sec on the same search)";
  line "%-18s %8s %12s %12s %12s %9s" "workload" "backend" "executions" "transitions"
    "execs/sec" "speedup";
  let budget n = Some (if full_budget then 5 * n else n) in
  let workloads =
    [ ("compute-heavy", vm_src_compute,
       { Search_config.default with
         max_executions = budget 200;
         max_steps = 100_000;
         livelock_bound = Some 100_000 });
      ("bounded-buffer", vm_src_buffer,
       { Search_config.default with
         max_executions = budget 2_000;
         livelock_bound = Some 2_000 });
      ("peterson-spin", vm_src_peterson,
       { Search_config.default with
         max_executions = budget 3_000;
         livelock_bound = Some 2_000 }) ]
  in
  List.iter
    (fun (name, src, cfg) ->
      let ast = Dsl.Parser.parse_string src in
      let measure backend =
        let prog = Dsl.compile ~backend ast in
        (* Warm so allocator state does not bias the first arm. *)
        ignore (Search.run { cfg with max_executions = Some 5 } prog);
        let r = Search.run cfg prog in
        (r, float_of_int r.stats.executions /. r.stats.elapsed)
      in
      let ra, rate_a = measure `Ast in
      let rv, rate_v = measure `Vm in
      (* The backends must walk the identical search tree. *)
      if
        (ra.stats.executions, ra.stats.transitions, Report.verdict_name ra.verdict)
        <> (rv.stats.executions, rv.stats.transitions, Report.verdict_name rv.verdict)
      then (
        Printf.eprintf "vm bench: backends diverged on %s\n%!" name;
        exit 1);
      let speedup = rate_v /. rate_a in
      let show label (r : Report.t) rate rel =
        line "%-18s %8s %12d %12d %12.0f %8s" name label r.stats.executions
          r.stats.transitions rate rel;
        record "vm"
          [ ("workload", Json.Str name);
            ("backend", Json.Str label);
            ("executions", Json.Int r.stats.executions);
            ("transitions", Json.Int r.stats.transitions);
            ("elapsed_seconds", Json.Float r.stats.elapsed);
            ("execs_per_second", Json.Float rate);
            ("verdict", Json.Str (Report.verdict_name r.verdict)) ]
      in
      show "ast" ra rate_a "";
      show "vm" rv rate_v (Printf.sprintf "%.2fx" speedup);
      record "vm"
        [ ("workload", Json.Str name);
          ("backend", Json.Str "speedup");
          ("speedup", Json.Float speedup) ])
    workloads

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the kernels behind each table/figure.      *)

let bechamel () =
  header "Bechamel microbenchmarks (one kernel per table/figure)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let quick_cfg =
    { Search_config.default with
      livelock_bound = Some 1_000;
      max_executions = Some 50;
      coverage = true }
  in
  let search name cfg prog =
    Test.make ~name (Staged.stage (fun () -> ignore (Search.run cfg prog)))
  in
  let tests =
    [ (* Table 2 / Fig 5-6 kernel: fair exhaustive search *)
      search "table2:fair-dfs-dining2" quick_cfg (W.Dining.coverage_program ~n:2);
      (* Table 2 unfair kernel: depth-bounded with random tail *)
      search "table2:unfair-db20-dining2"
        { (Search_config.unfair_dfs ~depth_bound:20) with
          max_executions = Some 50;
          max_steps = 2_000 }
        (W.Dining.coverage_program ~n:2);
      (* Table 3 kernel: fair cb=2 bug hunt *)
      search "table3:fair-cb2-wsq-bug1"
        { quick_cfg with mode = Search_config.Context_bounded 2 }
        (W.Wsq.program ~stealers:1 W.Wsq.Bug1);
      (* Fig 2 kernel: a bounded unfair execution batch *)
      search "fig2:unfair-db15-dining-fig1"
        { (Search_config.unfair_dfs ~depth_bound:15) with
          max_executions = Some 50;
          max_steps = 1_000 }
        (W.Dining.program ~n:2 W.Dining.Try_acquire);
      (* Section 4.3 kernel: divergence detection *)
      search "livelock:promise-stale-cache"
        { quick_cfg with livelock_bound = Some 500 }
        (W.Promise.program W.Promise.Stale_cache);
      (* Engine kernel: boot + two transitions *)
      Test.make ~name:"engine:boot+schedule-fig3"
        (Staged.stage (fun () ->
             let run = Engine.start (W.Litmus.fig3 ()) in
             Engine.step run ~tid:0 ~alt:0;
             Engine.step run ~tid:1 ~alt:0;
             Engine.stop run));
      (* Stateful ground-truth kernel *)
      Test.make ~name:"statecap:ground-truth-fig3"
        (Staged.stage (fun () -> ignore (SC.Stateful.explore (W.Litmus.fig3 ())))) ]
  in
  List.iter
    (fun test ->
      let quota = Time.second (if full_budget then 1.0 else 0.25) in
      let cfg = Benchmark.cfg ~limit:500 ~quota ~kde:None () in
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          let est =
            match Analyze.OLS.estimates result with
            | Some [ e ] ->
              record "bechamel"
                [ ("kernel", Json.Str name); ("ns_per_run", Json.Float e) ];
              if e > 1e6 then Printf.sprintf "%.3f ms/run" (e /. 1e6)
              else Printf.sprintf "%.0f ns/run" e
            | _ -> "n/a"
          in
          line "%-36s %s" name est)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Static POR: visibility-based transition merging (PR 9). Thread-local  *)
(* globals stop being scheduling points, so the interleaving explosion   *)
(* over them collapses before sleep sets even run. The control is        *)
(* Peterson, where every global is shared and merging must be a no-op.   *)

(* Local-state-heavy: each thread drives its own cursor global; only the
   yields interleave once the cursors merge. *)
let spor_src_counters =
  "var c0 = 0; var c1 = 0; var c2 = 0; var done0 = 0; var done1 = 0; var done2 = 0;\n\
   thread t0 { local i = 0; while (i < 2) { c0 = c0 + 1; i = i + 1; yield; } done0 = 1; }\n\
   thread t1 { local i = 0; while (i < 2) { c1 = c1 + 1; i = i + 1; yield; } done1 = 1; }\n\
   thread t2 { local i = 0; while (i < 2) { c2 = c2 + 1; i = i + 1; yield; } done2 = 1; }"

let staticpor_bench () =
  header "Static POR: visibility-based transition merging (--static-por)";
  line "(same verdict either way; reduction = plain executions over merged";
  line " executions on the same complete search. peterson is the no-op control:";
  line " every global is shared, so nothing may merge)";
  line "%-18s %8s %12s %12s %10s %10s" "workload" "merging" "executions"
    "transitions" "seconds" "reduction";
  let workloads =
    [ ("local-counters", spor_src_counters,
       { Search_config.default with livelock_bound = Some 5_000 });
      ("peterson-spin", vm_src_peterson,
       { Search_config.default with
         max_executions = Some (if full_budget then 15_000 else 3_000);
         livelock_bound = Some 2_000 }) ]
  in
  List.iter
    (fun (name, src, cfg) ->
      let ast = Dsl.Parser.parse_string src in
      let measure prog =
        ignore (Search.run { cfg with max_executions = Some 5 } prog);
        Search.run cfg prog
      in
      let off = measure (Dsl.compile ast) in
      let on = measure (Fairmc_static.compile ast) in
      if Report.verdict_name off.verdict <> Report.verdict_name on.verdict then (
        Printf.eprintf "staticpor bench: verdicts diverged on %s\n%!" name;
        exit 1);
      let reduction =
        float_of_int off.stats.executions /. float_of_int on.stats.executions
      in
      let show label (r : Report.t) rel =
        line "%-18s %8s %12d %12d %10.3f %9s" name label r.stats.executions
          r.stats.transitions r.stats.elapsed rel;
        record "staticpor"
          [ ("workload", Json.Str name);
            ("merging", Json.Str label);
            ("executions", Json.Int r.stats.executions);
            ("transitions", Json.Int r.stats.transitions);
            ("elapsed_seconds", Json.Float r.stats.elapsed);
            ("verdict", Json.Str (Report.verdict_name r.verdict)) ]
      in
      show "off" off "";
      show "on" on (Printf.sprintf "%.2fx" reduction);
      record "staticpor"
        [ ("workload", Json.Str name);
          ("merging", Json.Str "reduction");
          ("reduction", Json.Float reduction) ])
    workloads

(* ------------------------------------------------------------------ *)

let all_experiments =
  [ ("table1", table1);
    ("fig2", fig2);
    ("table2", table2);
    ("fig56", fig56);
    ("table3", table3);
    ("livelock", liveness_demos);
    ("gs", liveness_demos);
    ("boot", boot);
    ("ablation", ablation);
    ("par", par);
    ("analysis", analysis_overhead);
    ("telemetry", telemetry_overhead);
    ("fairsched", fair_sched_step);
    ("vm", vm_bench);
    ("staticpor", staticpor_bench);
    ("bechamel", bechamel) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] | [ "all" ] ->
      (* 'gs' aliases 'livelock'; do not print it twice in a full run. *)
      List.filter (fun (n, _) -> n <> "gs") all_experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s; known: %s\n" n
              (String.concat ", " (List.map fst all_experiments));
            exit 2)
        names
  in
  Printf.printf "fair stateless model checking — benchmark harness (%s budget)\n%!"
    (if full_budget then "full" else "quick");
  List.iter (fun (_, f) -> f ()) selected;
  write_records ()
