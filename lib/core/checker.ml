let check ?(config = Search_config.default) ?resume prog = Supervisor.run ?resume config prog

let check_all ~configs prog =
  let rec go acc = function
    | [] -> List.rev acc
    | (name, cfg) :: rest ->
      let report = Supervisor.run cfg prog in
      let acc = (name, report) :: acc in
      if Report.found_error report then List.rev acc else go acc rest
  in
  go [] configs

let iterative_context_bound ?(fair = true) ?(max_bound = 2) ?base prog =
  let base = Option.value base ~default:Search_config.default in
  let configs =
    List.init (max_bound + 1) (fun c ->
        (Printf.sprintf "cb=%d" c, { base with fair; mode = Search_config.Context_bounded c }))
  in
  let reports = check_all ~configs prog in
  match List.rev reports with
  | (_, last) :: _ -> last
  | [] -> invalid_arg "iterative_context_bound"
