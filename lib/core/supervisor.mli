(** Supervised process-level worker pool: crash-isolated parallel search.

    Executes the same verified work items as {!Par_search}'s systematic
    backend — the same {!Search.expand} frontier, per-item RNG streams,
    min-index error resolution, merge ({!Par_search.finalize_systematic})
    and durable checkpoint ({!Par_search.parck_note}) — but in forked worker
    {e processes} speaking the {!Worker} pipe protocol, so a worker that
    segfaults, is OOM-killed or wedges costs one work-item attempt instead
    of the whole search. Policies:

    - {b Timeouts}: [config.item_timeout] bounds each attempt's wall clock;
      on expiry the worker is SIGKILLed and the item requeued. The child's
      own deadline comes only from the remaining global [time_limit] — a
      slow but healthy item is the parent's SIGKILL decision, never a
      spurious [Limits_reached].
    - {b Retries}: a crashed/timed-out/garbled attempt is requeued with
      exponential backoff and deterministic jitter (a pure function of
      (seed, item, attempt)), at most [config.max_retries] times.
    - {b Quarantine}: an item that exhausts its retry budget becomes a
      {!Report.Crash} verdict whose counterexample is the item's schedule
      prefix, replayable to re-enter the crashing subtree.
    - {b Degradation}: when forking is unavailable the search falls back to
      the in-domain backend ({!Par_search.run} with [jobs = workers]); when
      every worker slot dies unrecoverably mid-run, the remaining items
      finish in-process.
    - {b Checkpoints}: the supervised run shares the in-domain backend's
      [fairmc-ckpt/1] Par payload, so an interrupted session can resume
      under either backend.

    With no injected faults, a supervised systematic run reports
    bit-identically (verdict, counterexample, merged statistics, det event
    slice) to the in-domain [jobs = n] run. Deterministic fault injection
    ([config.inject_fault]) fires exactly once, on the first attempt of item
    [fault_seed mod n_items]; retries are fault-free, so injected faults
    leave the verdict unchanged (except with a zero retry budget, which
    surfaces the {!Report.Crash}). See DESIGN.md, "Supervision". *)

val resolve_workers : Search_config.t -> int
(** [config.workers], with [0] and negative values resolved to
    [Domain.recommended_domain_count ()]. *)

val forking_available : bool
(** Static platform gate ([not Sys.win32]). *)

val can_fork : unit -> bool
(** Dynamic probe: fork a trivial child and reap it. [false] means the
    dispatcher degrades to the in-domain backend. *)

val run : ?resume:Checkpoint.payload -> Search_config.t -> Program.t -> Report.t
(** Run the configured search. With [resolve_workers config <= 1] this is
    exactly {!Par_search.run} (no supervision layer). Otherwise systematic
    modes run under the supervised pool; sampling modes (and round-robin)
    run on in-process domains with [jobs] raised to the worker count —
    crash isolation buys nothing for cheap independent samples. [resume]
    follows {!Par_search.run}'s contract; a payload that does not fit the
    run shape raises {!Checkpoint.Mismatch}. *)
