(* Parallel search over OCaml 5 domains. See DESIGN.md, "Parallel search".

   Stateless model checking re-executes the program from its initial state
   for every schedule, so executions are independent and the schedule space
   shards cleanly:

   - Systematic modes (DFS, context-bounded): the coordinator expands the
     decision tree to [split_depth] ({!Search.expand}), producing work items
     in DFS order. Workers pull items off a shared cursor and run the
     ordinary sequential search confined to the item's subtree. Because the
     expansion records nothing and every worker re-executes its item from
     the initial state, the merged statistics (executions, transitions,
     coverage states) equal the sequential search's exactly — and because
     errors are resolved by *lowest item index* rather than wall-clock
     order, the reported counterexample is the one the sequential search
     would find, independent of [jobs] and of scheduling timing.

   - Sampling modes (random walk, random priorities): the execution budget
     is sharded across workers, each with its own RNG stream split off the
     seed ({!Rng.streams}). The lowest-indexed erroring worker wins, so the
     verdict and counterexample are reproducible for a fixed (seed, jobs)
     pair; the aggregate statistics of cancelled higher-indexed workers may
     vary from run to run. Round-robin runs a single schedule and falls back
     to the sequential search.

   Cancellation (first error wins) is an [Atomic.t] holding the lowest
   erroring index, initially [max_int]; workers poll it at every path start
   and every [poll_interval] steps inside a path. A unit is only ever
   cancelled by a strictly lower index, so the winning unit always runs to
   completion — this is what makes min-index resolution deterministic. *)

module C = Search_config
module Rng = Fairmc_util.Rng
module AH = Analysis_hook
module M = Fairmc_obs.Metrics
module Clock = Fairmc_obs.Clock
module Progress = Fairmc_obs.Progress

let resolve_jobs (cfg : C.t) =
  if cfg.jobs = 1 then 1
  else if cfg.jobs <= 0 then Domain.recommended_domain_count ()
  else cfg.jobs

let zero_stats =
  { Report.executions = 0;
    transitions = 0;
    states = 0;
    nonterminating = 0;
    depth_bound_hits = 0;
    sleep_set_prunes = 0;
    yields = 0;
    max_depth = 0;
    elapsed = 0.;
    first_error_execution = None;
    first_error_time = None;
    sync_ops_per_exec = 0;
    max_threads = 0 }

(* Lower the stop index to [k] (CAS loop; concurrent errors race, lowest
   index sticks). *)
let rec note_error stop k =
  let cur = Atomic.get stop in
  if k < cur && not (Atomic.compare_and_set stop cur k) then note_error stop k

let deadline_of t0 (cfg : C.t) =
  match cfg.time_limit with None -> infinity | Some l -> t0 +. l

(* Analysis results merge like coverage: the lock-order graph is a set, so
   shard edge lists are unioned (dedup + canonical sort) and the cycles are
   recomputed from the union — identical for every shard layout. *)
let merge_analysis parts =
  match List.filter_map (fun ((r : Report.t), _) -> r.Report.analysis) parts with
  | [] -> None
  | anas ->
    let edges =
      AH.dedup_edges
        (List.concat_map (fun (a : Report.analysis) -> a.Report.lock_order_edges) anas)
    in
    Some { Report.lock_order_edges = edges; potential_deadlock_cycles = AH.cycles edges }

(* The lock-graph counters are set-derived, so summing them across shards
   would double-count shared edges; overwrite them from the merged union
   (keeping the counter slice jobs-invariant, like every other counter). *)
let fix_lockgraph_counters metrics analysis =
  match analysis with
  | Some (a : Report.analysis)
    when M.Snapshot.find metrics "analysis/lockgraph/edges" <> None ->
    let m =
      M.Snapshot.with_counter metrics "analysis/lockgraph/edges"
        (List.length a.Report.lock_order_edges)
    in
    M.Snapshot.with_counter m "analysis/lockgraph/cycles"
      (List.length a.Report.potential_deadlock_cycles)
  | Some _ | None -> metrics

(* Sum counters, max the maxima, union the coverage tables, merge the
   per-shard metrics snapshots (counters add, gauges max — see Metrics), and
   union the analysis results. *)
let merge_parts parts =
  let tbl = Hashtbl.create 4096 in
  let stats, metrics =
    List.fold_left
      (fun (acc, ms) ((r : Report.t), part_tbl) ->
        let s = r.Report.stats in
        Hashtbl.iter (fun k () -> Hashtbl.replace tbl k ()) part_tbl;
        ( { acc with
            Report.executions = acc.Report.executions + s.executions;
            transitions = acc.transitions + s.transitions;
            nonterminating = acc.nonterminating + s.nonterminating;
            depth_bound_hits = acc.depth_bound_hits + s.depth_bound_hits;
            sleep_set_prunes = acc.sleep_set_prunes + s.sleep_set_prunes;
            yields = acc.yields + s.yields;
            max_depth = max acc.max_depth s.max_depth;
            sync_ops_per_exec = max acc.sync_ops_per_exec s.sync_ops_per_exec;
            max_threads = max acc.max_threads s.max_threads },
          M.Snapshot.merge ms r.Report.metrics ))
      (zero_stats, M.Snapshot.empty) parts
  in
  let analysis = merge_analysis parts in
  ( { stats with Report.states = Hashtbl.length tbl },
    fix_lockgraph_counters metrics analysis,
    analysis )

(* Run [worker 0 .. worker (jobs-1)], workers 1.. on fresh domains and
   worker 0 inline on the calling domain (each worker drives its own engine
   through domain-local state, so the coordinator's domain is reusable). *)
let spawn_workers ~jobs worker =
  let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  worker 0;
  Array.iter Domain.join domains

let us_since t0 = int_of_float ((Clock.now () -. t0) *. 1e6)

let run_systematic (cfg : C.t) prog ~jobs =
  let t0 = Clock.now () in
  let deadline = deadline_of t0 cfg in
  let progress = Search.progress_of_cfg cfg in
  let items, expand_timed_out =
    Search.expand ~deadline cfg prog ~split_depth:cfg.split_depth
  in
  let expand_us = us_since t0 in
  let items = Array.of_list items in
  let n = Array.length items in
  (* Per-item RNG streams: random tails (unfair depth-bounded search) draw
     from a stream tied to the item, not the worker, so results do not
     depend on which worker ran which item. *)
  let streams = Rng.streams (Rng.make cfg.seed) n in
  let shared_execs = Atomic.make 0 in
  let stop = Atomic.make max_int in
  let cursor = Atomic.make 0 in
  let results : (Report.t * (int64, unit) Hashtbl.t) option array = Array.make n None in
  (* Run-dependent shard telemetry: each worker writes only its own slot;
     [Domain.join] publishes the writes. The cancellation latency is the gap
     between the winning error being posted and any shard first observing it. *)
  let busy_us = Array.make jobs 0 in
  let w_items = Array.make jobs 0 in
  let w_execs = Array.make jobs 0 in
  let stop_at_us = Atomic.make 0 in
  let cancel_seen_us = Atomic.make 0 in
  let worker i =
    let w0 = Clock.now () in
    let rec loop () =
      let k = Atomic.fetch_and_add cursor 1 in
      if k < n then begin
        (* Items above the winner will not be merged; skip them outright. *)
        if Atomic.get stop > k then begin
          let cancel () =
            let c = Atomic.get stop < k in
            if c && Atomic.get cancel_seen_us = 0 then
              ignore (Atomic.compare_and_set cancel_seen_us 0 (us_since t0));
            c
          in
          let r, tbl =
            Search.run_shard ~cancel ~deadline ~rng:streams.(k) ~prefix:items.(k)
              ~shared_execs ?progress cfg prog
          in
          results.(k) <- Some (r, tbl);
          w_items.(i) <- w_items.(i) + 1;
          w_execs.(i) <- w_execs.(i) + r.Report.stats.Report.executions;
          if Report.found_error r then begin
            note_error stop k;
            if Atomic.get stop_at_us = 0 then
              ignore (Atomic.compare_and_set stop_at_us 0 (us_since t0))
          end
        end;
        loop ()
      end
    in
    loop ();
    busy_us.(i) <- us_since w0
  in
  spawn_workers ~jobs worker;
  let winner = Atomic.get stop in
  let elapsed = Clock.now () -. t0 in
  (match progress with
   | None -> ()
   | Some p ->
     Progress.force p (fun () ->
         { Progress.executions = Atomic.get shared_execs; elapsed; jobs; phase = "search" }));
  (* Shard-layout telemetry rides along as gauges only when metrics were
     requested — gauges never feed the jobs-determinism guarantee. *)
  let add_par_gauges metrics =
    if not cfg.C.metrics then metrics
    else begin
      let m = ref metrics in
      let g name v = m := M.Snapshot.with_gauge !m name v in
      g "par/jobs" jobs;
      g "par/items" n;
      g "par/expand_us" expand_us;
      g "par/search_us" (int_of_float (elapsed *. 1e6));
      Array.iteri (fun i v -> g (Printf.sprintf "par/worker%d/busy_us" i) v) busy_us;
      Array.iteri (fun i v -> g (Printf.sprintf "par/worker%d/items" i) v) w_items;
      Array.iteri (fun i v -> g (Printf.sprintf "par/worker%d/executions" i) v) w_execs;
      let posted = Atomic.get stop_at_us and seen = Atomic.get cancel_seen_us in
      if posted > 0 && seen >= posted then g "par/cancel_latency_us" (seen - posted);
      !m
    end
  in
  if winner < n then begin
    (* Sequential equivalence: the search would have explored items
       [0..winner-1] in full, then stopped inside [winner]. Items below the
       winner are never cancelled, so all their results are present. *)
    let parts = ref [] and prior_execs = ref 0 in
    for k = winner - 1 downto 0 do
      match results.(k) with
      | Some ((r, _) as p) ->
        parts := p :: !parts;
        prior_execs := !prior_execs + r.Report.stats.Report.executions
      | None -> ()
    done;
    let win_r, win_tbl = Option.get results.(winner) in
    let stats, metrics, analysis = merge_parts (!parts @ [ (win_r, win_tbl) ]) in
    let ws = win_r.Report.stats in
    { Report.verdict = win_r.Report.verdict;
      stats =
        { stats with
          Report.elapsed;
          first_error_execution =
            Option.map (fun e -> !prior_execs + e) ws.Report.first_error_execution;
          first_error_time = ws.Report.first_error_time };
      metrics = add_par_gauges metrics;
      analysis }
  end
  else begin
    let parts = List.filter_map Fun.id (Array.to_list results) in
    let stats, metrics, analysis = merge_parts parts in
    let stats = { stats with Report.elapsed } in
    let limited =
      expand_timed_out
      || Array.length items > List.length parts
      || List.exists (fun ((r : Report.t), _) -> r.Report.verdict = Report.Limits_reached) parts
    in
    { Report.verdict = (if limited then Report.Limits_reached else Report.Verified);
      stats;
      metrics = add_par_gauges metrics;
      analysis }
  end

let run_sampling (cfg : C.t) prog ~jobs =
  let t0 = Clock.now () in
  let deadline = deadline_of t0 cfg in
  let progress = Search.progress_of_cfg cfg in
  let budget, with_budget =
    match cfg.mode with
    | C.Random_walk n -> (n, fun m -> C.Random_walk m)
    | C.Priority_random n -> (n, fun m -> C.Priority_random m)
    | C.Round_robin | C.Dfs | C.Context_bounded _ -> assert false
  in
  let jobs = max 1 (min jobs budget) in
  let streams = Rng.streams (Rng.make cfg.seed) jobs in
  let shared_execs = Atomic.make 0 in
  let stop = Atomic.make max_int in
  let results : (Report.t * (int64, unit) Hashtbl.t) option array = Array.make jobs None in
  let worker i =
    let n_i = (budget / jobs) + if i < budget mod jobs then 1 else 0 in
    let cfg_i = { cfg with C.mode = with_budget n_i } in
    let r, tbl =
      Search.run_shard
        ~cancel:(fun () -> Atomic.get stop < i)
        ~deadline ~rng:streams.(i) ~shared_execs ?progress cfg_i prog
    in
    results.(i) <- Some (r, tbl);
    if Report.found_error r then note_error stop i
  in
  spawn_workers ~jobs worker;
  let elapsed = Clock.now () -. t0 in
  (match progress with
   | None -> ()
   | Some p ->
     Progress.force p (fun () ->
         { Progress.executions = Atomic.get shared_execs; elapsed; jobs; phase = "search" }));
  let parts = List.filter_map Fun.id (Array.to_list results) in
  let stats, metrics, analysis = merge_parts parts in
  let stats = { stats with Report.elapsed } in
  let metrics =
    if cfg.C.metrics then M.Snapshot.with_gauge metrics "par/jobs" jobs else metrics
  in
  match Atomic.get stop with
  | w when w < jobs ->
    let win_r, _ = Option.get results.(w) in
    let ws = win_r.Report.stats in
    { Report.verdict = win_r.Report.verdict;
      stats =
        { stats with
          (* Shard-local: the winner's position in its own stream. A global
             execution index is not well defined across streams. *)
          Report.first_error_execution = ws.Report.first_error_execution;
          first_error_time = ws.Report.first_error_time };
      metrics;
      analysis }
  | _ -> { Report.verdict = Report.Limits_reached; stats; metrics; analysis }

let run (cfg : C.t) prog =
  let jobs = resolve_jobs cfg in
  if jobs <= 1 then Search.run cfg prog
  else
    match cfg.mode with
    | C.Dfs | C.Context_bounded _ -> run_systematic cfg prog ~jobs
    | C.Random_walk _ | C.Priority_random _ -> run_sampling cfg prog ~jobs
    | C.Round_robin ->
      (* A single deterministic schedule; nothing to shard. *)
      Search.run { cfg with C.jobs = 1 } prog
