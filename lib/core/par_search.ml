(* Parallel search over OCaml 5 domains. See DESIGN.md, "Parallel search".

   Stateless model checking re-executes the program from its initial state
   for every schedule, so executions are independent and the schedule space
   shards cleanly:

   - Systematic modes (DFS, context-bounded): the coordinator expands the
     decision tree to [split_depth] ({!Search.expand}), producing work items
     in DFS order. Workers pull items off a shared cursor and run the
     ordinary sequential search confined to the item's subtree. Because the
     expansion records nothing and every worker re-executes its item from
     the initial state, the merged statistics (executions, transitions,
     coverage states) equal the sequential search's exactly — and because
     errors are resolved by *lowest item index* rather than wall-clock
     order, the reported counterexample is the one the sequential search
     would find, independent of [jobs] and of scheduling timing.

   - Sampling modes (random walk, random priorities): the execution budget
     is sharded across workers, each with its own RNG stream split off the
     seed ({!Rng.streams}). The lowest-indexed erroring worker wins, so the
     verdict and counterexample are reproducible for a fixed (seed, jobs)
     pair; the aggregate statistics of cancelled higher-indexed workers may
     vary from run to run. Round-robin runs a single schedule and falls back
     to the sequential search.

   Cancellation (first error wins) is an [Atomic.t] holding the lowest
   erroring index, initially [max_int]; workers poll it at every path start
   and every [poll_interval] steps inside a path. A unit is only ever
   cancelled by a strictly lower index, so the winning unit always runs to
   completion — this is what makes min-index resolution deterministic. *)

module C = Search_config
module Rng = Fairmc_util.Rng
module J = Fairmc_util.Json
module AH = Analysis_hook
module M = Fairmc_obs.Metrics
module Clock = Fairmc_obs.Clock
module Progress = Fairmc_obs.Progress
module Events = Fairmc_obs.Events
module Estimator = Fairmc_obs.Estimator

let resolve_jobs (cfg : C.t) =
  if cfg.jobs = 1 then 1
  else if cfg.jobs <= 0 then Domain.recommended_domain_count ()
  else cfg.jobs

let zero_stats =
  { Report.executions = 0;
    transitions = 0;
    states = 0;
    nonterminating = 0;
    depth_bound_hits = 0;
    sleep_set_prunes = 0;
    yields = 0;
    max_depth = 0;
    elapsed = 0.;
    first_error_execution = None;
    first_error_time = None;
    sync_ops_per_exec = 0;
    max_threads = 0;
    (* Callers overwrite [search_elapsed] on the merged result (wall time is
       not summable across concurrent shards). *)
    search_elapsed = 0.;
    probe_mass = 0 }

(* Lower the stop index to [k] (CAS loop; concurrent errors race, lowest
   index sticks). *)
let rec note_error stop k =
  let cur = Atomic.get stop in
  if k < cur && not (Atomic.compare_and_set stop cur k) then note_error stop k

let deadline_of t0 (cfg : C.t) =
  match cfg.time_limit with None -> infinity | Some l -> t0 +. l

(* Analysis results merge like coverage: the lock-order graph is a set, so
   shard edge lists are unioned (dedup + canonical sort) and the cycles are
   recomputed from the union — identical for every shard layout. *)
let merge_analysis parts =
  match List.filter_map (fun ((r : Report.t), _) -> r.Report.analysis) parts with
  | [] -> None
  | anas ->
    let edges =
      AH.dedup_edges
        (List.concat_map (fun (a : Report.analysis) -> a.Report.lock_order_edges) anas)
    in
    Some { Report.lock_order_edges = edges; potential_deadlock_cycles = AH.cycles edges }

(* Sum counters, max the maxima, union the coverage tables, merge the
   per-shard metrics snapshots (counters add, gauges max — see Metrics), and
   union the analysis results. *)
let merge_parts parts =
  let tbl = Hashtbl.create 4096 in
  let stats, metrics =
    List.fold_left
      (fun (acc, ms) ((r : Report.t), part_tbl) ->
        let s = r.Report.stats in
        Hashtbl.iter (fun k () -> Hashtbl.replace tbl k ()) part_tbl;
        ( { acc with
            Report.executions = acc.Report.executions + s.executions;
            transitions = acc.transitions + s.transitions;
            nonterminating = acc.nonterminating + s.nonterminating;
            depth_bound_hits = acc.depth_bound_hits + s.depth_bound_hits;
            sleep_set_prunes = acc.sleep_set_prunes + s.sleep_set_prunes;
            yields = acc.yields + s.yields;
            max_depth = max acc.max_depth s.max_depth;
            sync_ops_per_exec = max acc.sync_ops_per_exec s.sync_ops_per_exec;
            max_threads = max acc.max_threads s.max_threads;
            probe_mass = acc.probe_mass + s.probe_mass },
          M.Snapshot.merge ms r.Report.metrics ))
      (zero_stats, M.Snapshot.empty) parts
  in
  let analysis = merge_analysis parts in
  ( { stats with Report.states = Hashtbl.length tbl },
    Report.fix_lockgraph_counters metrics analysis,
    analysis )

(* Run [worker 0 .. worker (jobs-1)], workers 1.. on fresh domains and
   worker 0 inline on the calling domain (each worker drives its own engine
   through domain-local state, so the coordinator's domain is reusable). *)
let spawn_workers ~jobs worker =
  let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  worker 0;
  Array.iter Domain.join domains

let us_since t0 = int_of_float ((Clock.now () -. t0) *. 1e6)

(* Sorted union of shard coverage tables, for the checkpoint payload. *)
let union_states parts =
  let tbl = Hashtbl.create 4096 in
  List.iter (fun (_, t) -> Hashtbl.iter (fun k () -> Hashtbl.replace tbl k ()) t) parts;
  List.sort Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let states_tbl l =
  let tbl = Hashtbl.create (max 16 (List.length l)) in
  List.iter (fun s -> Hashtbl.replace tbl s ()) l;
  tbl

(* Progress sample with online estimates from the shared search-wide
   atomics. *)
let estimate_sample ~executions ~mass ~elapsed ~jobs =
  { Progress.executions;
    elapsed;
    jobs;
    phase = "search";
    completion = (if mass > 0 then Some (Estimator.completion ~mass) else None);
    est_total = Estimator.est_total ~mass ~executions;
    eta = Estimator.eta ~mass ~elapsed }

(* Advisory coordinator telemetry: the worker layout and the frontier
   expansion's span (run-shaped, never part of the det slice). *)
let post_workers (cfg : C.t) ~jobs ~split_depth ~items ~expand_us =
  match cfg.C.events with
  | None -> ()
  | Some s ->
    Events.post s ~shard:(-1) ~kind:"workers"
      (J.Obj
         [ ("jobs", J.Int jobs);
           ("split_depth", J.Int split_depth);
           ("items", J.Int items);
           ("expand_us", J.Int expand_us) ]);
    if expand_us > 0 then
      Events.post s ~shard:(-1) ~kind:"span"
        (J.Obj [ ("phase", J.Str "expand"); ("dur_us", J.Int expand_us) ])

(* Resume validation: the work-item list is defined by (program, config,
   split_depth), so the re-expansion must agree with the checkpoint or its
   recorded item indices are meaningless. *)
let check_par_resume (cfg : C.t) ~n (pa : Checkpoint.par_state) =
  if pa.Checkpoint.pa_split_depth <> cfg.split_depth then
    raise
      (Checkpoint.Mismatch
         (Printf.sprintf "split depth drifted: checkpoint has %d, config has %d"
            pa.Checkpoint.pa_split_depth cfg.split_depth));
  if pa.Checkpoint.pa_n_items <> n then
    raise
      (Checkpoint.Mismatch
         (Printf.sprintf "work-item count drifted: checkpoint has %d, expansion gives %d"
            pa.Checkpoint.pa_n_items n))

(* Items a prior session fully explored: prepopulated as if a worker had
   just finished them, so merging and min-index error resolution are
   oblivious to the interruption. Returns the prior (executions, probe mass)
   to seed the shared progress counters. *)
let resume_prefill (cfg : C.t) ~n
    ~(results : (Report.t * (int64, unit) Hashtbl.t) option array)
    (pa : Checkpoint.par_state) =
  let execs = ref 0 and mass = ref 0 in
  List.iter
    (fun (it : Checkpoint.par_item) ->
      if it.Checkpoint.pi_index < 0 || it.Checkpoint.pi_index >= n then
        raise (Checkpoint.Mismatch "checkpoint work-item index out of range");
      let analysis =
        if cfg.C.analyses = [] then None
        else
          Some
            { Report.lock_order_edges = it.Checkpoint.pi_edges;
              (* Recomputed from the edge union at merge time. *)
              potential_deadlock_cycles = [] }
      in
      let r =
        { Report.verdict = Report.Verified;
          stats = it.Checkpoint.pi_stats;
          metrics = it.Checkpoint.pi_metrics;
          analysis }
      in
      results.(it.Checkpoint.pi_index) <- Some (r, states_tbl it.Checkpoint.pi_states);
      execs := !execs + it.Checkpoint.pi_stats.Report.executions;
      mass := !mass + it.Checkpoint.pi_stats.Report.probe_mass)
    pa.Checkpoint.pa_items;
  (!execs, !mass)

(* Durable session for the systematic item list: fully explored (Verified)
   items are recorded under a mutex and flushed to the checkpoint file,
   throttled by [checkpoint_interval], plus once when the run stops.
   Disabled when the expansion itself timed out: the item list is then
   partial and the recorded indices would not survive a resume's
   re-expansion. Shared by the in-domain backend and {!Supervisor}, which is
   what lets a session move between the two across restarts. *)
type parck = {
  pk_path : string;
  pk_mu : Mutex.t;
  pk_cfg : C.t;
  pk_prog : string;
  pk_n : int;
  pk_t0 : float;
  pk_prior_elapsed : float;
  mutable pk_items : Checkpoint.par_item list;
  mutable pk_last : float;
}

let parck_create (cfg : C.t) ~prog ~n ~t0 ~prior_elapsed ~resume ~expand_timed_out =
  match cfg.C.checkpoint with
  | Some path when not expand_timed_out ->
    Some
      { pk_path = path;
        pk_mu = Mutex.create ();
        pk_cfg = cfg;
        pk_prog = prog.Program.name;
        pk_n = n;
        pk_t0 = t0;
        pk_prior_elapsed = prior_elapsed;
        pk_items =
          (match resume with
           | Some (pa : Checkpoint.par_state) -> pa.Checkpoint.pa_items
           | None -> []);
        pk_last = Clock.now () }
  | _ -> None

(* Unsynchronized: called either under [pk_mu] (the throttled worker-side
   path) or after the workers are joined (the final flush). A failed save
   warns and keeps the previous checkpoint (see Checkpoint.save_result). *)
let parck_write ck ~complete =
  ck.pk_last <- Clock.now ();
  let recorded =
    List.sort
      (fun (a : Checkpoint.par_item) b -> compare a.Checkpoint.pi_index b.Checkpoint.pi_index)
      ck.pk_items
  in
  match
    Checkpoint.save_result ck.pk_path
      { Checkpoint.fingerprint = Checkpoint.fingerprint ck.pk_cfg ~program:ck.pk_prog;
        payload =
          Checkpoint.Par
            { Checkpoint.pa_split_depth = ck.pk_cfg.C.split_depth;
              pa_n_items = ck.pk_n;
              pa_elapsed = ck.pk_prior_elapsed +. (Clock.now () -. ck.pk_t0);
              pa_items = recorded;
              pa_complete = complete } }
  with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "fairmc: checkpoint save failed: %s (keeping the previous checkpoint)\n%!"
      msg;
    (match ck.pk_cfg.C.events with
     | Some s ->
       Events.post s ~shard:(-1) ~kind:"checkpoint_error"
         (J.Obj [ ("file", J.Str ck.pk_path); ("error", J.Str msg) ])
     | None -> ())

let parck_note ck k (r : Report.t) tbl =
  if r.Report.verdict = Report.Verified then begin
    let states =
      if ck.pk_cfg.C.coverage then
        List.sort Int64.compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl [])
      else []
    in
    let edges =
      match r.Report.analysis with Some a -> a.Report.lock_order_edges | None -> []
    in
    Mutex.protect ck.pk_mu (fun () ->
        ck.pk_items <-
          { Checkpoint.pi_index = k;
            pi_stats = r.Report.stats;
            pi_metrics = r.Report.metrics;
            pi_states = states;
            pi_edges = edges }
          :: ck.pk_items;
        if Clock.now () -. ck.pk_last >= ck.pk_cfg.C.checkpoint_interval then
          parck_write ck ~complete:false)
  end

let parck_flush ck ~complete = parck_write ck ~complete

(* Merge per-item results into the final report — the single code path both
   the in-domain backend and {!Supervisor} go through, which is what makes
   their reports bit-identical for the same result set. *)
let finalize_systematic ~(results : (Report.t * (int64, unit) Hashtbl.t) option array)
    ~winner ~elapsed ~search_elapsed ~expand_timed_out ~with_gauges =
  let n = Array.length results in
  if winner < n then begin
    (* Sequential equivalence: the search would have explored items
       [0..winner-1] in full, then stopped inside [winner]. Items below the
       winner are never cancelled, so all their results are present. *)
    let parts = ref [] and prior_execs = ref 0 in
    for k = winner - 1 downto 0 do
      match results.(k) with
      | Some ((r, _) as p) ->
        parts := p :: !parts;
        prior_execs := !prior_execs + r.Report.stats.Report.executions
      | None -> ()
    done;
    let win_r, win_tbl = Option.get results.(winner) in
    let stats, metrics, analysis = merge_parts (!parts @ [ (win_r, win_tbl) ]) in
    let ws = win_r.Report.stats in
    { Report.verdict = win_r.Report.verdict;
      stats =
        { stats with
          Report.elapsed;
          search_elapsed;
          first_error_execution =
            Option.map (fun e -> !prior_execs + e) ws.Report.first_error_execution;
          first_error_time = ws.Report.first_error_time };
      metrics = with_gauges metrics;
      analysis }
  end
  else begin
    let parts = List.filter_map Fun.id (Array.to_list results) in
    let stats, metrics, analysis = merge_parts parts in
    let stats = { stats with Report.elapsed; search_elapsed } in
    let limited =
      expand_timed_out
      || n > List.length parts
      || List.exists (fun ((r : Report.t), _) -> r.Report.verdict = Report.Limits_reached) parts
    in
    { Report.verdict = (if limited then Report.Limits_reached else Report.Verified);
      stats;
      metrics = with_gauges metrics;
      analysis }
  end

let run_systematic ?resume (cfg : C.t) prog ~jobs =
  let t0 = Clock.now () in
  Search.post_run_start cfg prog;
  let deadline = deadline_of t0 cfg in
  let progress = Search.progress_of_cfg cfg in
  let items, expand_timed_out =
    Search.expand ~deadline cfg prog ~split_depth:cfg.split_depth
  in
  let expand_us = us_since t0 in
  let items = Array.of_list items in
  let n = Array.length items in
  post_workers cfg ~jobs ~split_depth:cfg.split_depth ~items:n ~expand_us;
  (match resume with None -> () | Some pa -> check_par_resume cfg ~n pa);
  let prior_elapsed =
    match resume with Some pa -> pa.Checkpoint.pa_elapsed | None -> 0.
  in
  (* Per-item RNG streams: random tails (unfair depth-bounded search) draw
     from a stream tied to the item, not the worker, so results do not
     depend on which worker ran which item. *)
  let streams = Rng.streams (Rng.make cfg.seed) n in
  let stop = Atomic.make max_int in
  let cursor = Atomic.make 0 in
  let results : (Report.t * (int64, unit) Hashtbl.t) option array = Array.make n None in
  let prior_execs, prior_mass =
    match resume with None -> (0, 0) | Some pa -> resume_prefill cfg ~n ~results pa
  in
  let shared_execs = Atomic.make prior_execs in
  let shared_mass = Atomic.make prior_mass in
  let ck = parck_create cfg ~prog ~n ~t0 ~prior_elapsed ~resume ~expand_timed_out in
  let note_item k r tbl =
    match ck with None -> () | Some ck -> parck_note ck k r tbl
  in
  (* Run-dependent shard telemetry: each worker writes only its own slot;
     [Domain.join] publishes the writes. The cancellation latency is the gap
     between the winning error being posted and any shard first observing it. *)
  let busy_us = Array.make jobs 0 in
  let w_items = Array.make jobs 0 in
  let w_execs = Array.make jobs 0 in
  let stop_at_us = Atomic.make 0 in
  let cancel_seen_us = Atomic.make 0 in
  let worker i =
    let w0 = Clock.now () in
    let rec loop () =
      let k = Atomic.fetch_and_add cursor 1 in
      (* An interrupt stops pulling items (in-flight shards notice it at
         their own poll points); prior-session results stay in place. *)
      if k < n && not (Checkpoint.interrupted ()) then begin
        (* Items above the winner will not be merged, and prepopulated
           resume items are already done; skip both outright. *)
        if Atomic.get stop > k && results.(k) = None then begin
          let cancel () =
            let c = Atomic.get stop < k in
            if c && Atomic.get cancel_seen_us = 0 then
              ignore (Atomic.compare_and_set cancel_seen_us 0 (us_since t0));
            c
          in
          let r, tbl =
            Search.run_shard ~cancel ~deadline ~rng:streams.(k) ~prefix:items.(k)
              ~shared_execs ~shared_mass ~shard:i ?progress cfg prog
          in
          results.(k) <- Some (r, tbl);
          note_item k r tbl;
          w_items.(i) <- w_items.(i) + 1;
          w_execs.(i) <- w_execs.(i) + r.Report.stats.Report.executions;
          if Report.found_error r then begin
            note_error stop k;
            if Atomic.get stop_at_us = 0 then
              ignore (Atomic.compare_and_set stop_at_us 0 (us_since t0))
          end
        end;
        loop ()
      end
    in
    loop ();
    busy_us.(i) <- us_since w0
  in
  spawn_workers ~jobs worker;
  let winner = Atomic.get stop in
  let elapsed = prior_elapsed +. (Clock.now () -. t0) in
  (* Wall time of the search phase alone: the frontier expansion is startup
     work, not exploration, so [execs_per_sec] must not be diluted by it. *)
  let search_elapsed = elapsed -. (float_of_int expand_us /. 1e6) in
  (match progress with
   | None -> ()
   | Some p ->
     Progress.force p (fun () ->
         estimate_sample ~executions:(Atomic.get shared_execs)
           ~mass:(Atomic.get shared_mass) ~elapsed ~jobs));
  (* Shard-layout telemetry rides along as gauges only when metrics were
     requested — gauges never feed the jobs-determinism guarantee. *)
  let add_par_gauges metrics =
    if not cfg.C.metrics then metrics
    else begin
      let m = ref metrics in
      let g name v = m := M.Snapshot.with_gauge !m name v in
      g "par/jobs" jobs;
      g "par/items" n;
      g "par/expand_us" expand_us;
      g "par/search_us" (int_of_float (elapsed *. 1e6));
      Array.iteri (fun i v -> g (Printf.sprintf "par/worker%d/busy_us" i) v) busy_us;
      Array.iteri (fun i v -> g (Printf.sprintf "par/worker%d/items" i) v) w_items;
      Array.iteri (fun i v -> g (Printf.sprintf "par/worker%d/executions" i) v) w_execs;
      let posted = Atomic.get stop_at_us and seen = Atomic.get cancel_seen_us in
      if posted > 0 && seen >= posted then g "par/cancel_latency_us" (seen - posted);
      !m
    end
  in
  let report =
    finalize_systematic ~results ~winner ~elapsed ~search_elapsed ~expand_timed_out
      ~with_gauges:add_par_gauges
  in
  (match ck with
   | None -> ()
   | Some ck -> parck_flush ck ~complete:(report.Report.verdict <> Report.Limits_reached));
  Search.post_run_end cfg report;
  report

(* Prior parallel-sampling totals as a pseudo shard: merging it with the new
   shards adds the counters and unions coverage/edges exactly like a live
   part would. *)
let sampling_prior_part (cfg : C.t) (sa : Checkpoint.sampling_state) =
  let analysis =
    if cfg.analyses = [] then None
    else
      Some
        { Report.lock_order_edges = sa.Checkpoint.sa_edges;
          potential_deadlock_cycles = AH.cycles sa.Checkpoint.sa_edges }
  in
  ( { Report.verdict = Report.Limits_reached;
      stats = sa.Checkpoint.sa_stats;
      metrics = sa.Checkpoint.sa_metrics;
      analysis },
    states_tbl sa.Checkpoint.sa_states )

let run_sampling ?resume (cfg : C.t) prog ~jobs =
  let t0 = Clock.now () in
  Search.post_run_start cfg prog;
  let deadline = deadline_of t0 cfg in
  let progress = Search.progress_of_cfg cfg in
  let budget, with_budget =
    match cfg.mode with
    | C.Random_walk n -> (n, fun m -> C.Random_walk m)
    | C.Priority_random n -> (n, fun m -> C.Priority_random m)
    | C.Round_robin | C.Dfs | C.Context_bounded _ -> assert false
  in
  let round, prior_part, prior_execs, prior_elapsed =
    match resume with
    | None -> (0, None, 0, 0.)
    | Some (sa : Checkpoint.sampling_state) ->
      ( sa.Checkpoint.sa_round,
        Some (sampling_prior_part cfg sa),
        sa.Checkpoint.sa_stats.Report.executions,
        sa.Checkpoint.sa_stats.Report.elapsed )
  in
  let budget_left = budget - prior_execs in
  if budget_left <= 0 then begin
    (* Budget already spent in prior sessions: the prior totals are the
       answer (extend the budget to sample more). *)
    let r, _ = Option.get prior_part in
    Search.post_run_end cfg r;
    r
  end
  else begin
    let jobs = max 1 (min jobs budget_left) in
    post_workers cfg ~jobs ~split_depth:0 ~items:jobs ~expand_us:0;
    (* Each session (round) advances the base generator before splitting the
       worker streams, so no schedule prefix repeats across sessions. *)
    let base = Rng.make cfg.seed in
    for _ = 1 to round do
      ignore (Rng.split base)
    done;
    let streams = Rng.streams base jobs in
    let shared_execs = Atomic.make prior_execs in
    let shared_mass =
      Atomic.make
        (match resume with
         | Some (sa : Checkpoint.sampling_state) ->
           sa.Checkpoint.sa_stats.Report.probe_mass
         | None -> 0)
    in
    let stop = Atomic.make max_int in
    let results : (Report.t * (int64, unit) Hashtbl.t) option array = Array.make jobs None in
    let worker i =
      let n_i = (budget_left / jobs) + if i < budget_left mod jobs then 1 else 0 in
      let cfg_i = { cfg with C.mode = with_budget n_i } in
      let r, tbl =
        Search.run_shard
          ~cancel:(fun () -> Atomic.get stop < i)
          ~deadline ~rng:streams.(i) ~shared_execs ~shared_mass
          (* Every sampled path weighs [1/original-budget], not 1/shard
             budget — the estimator is over the whole sampling plan. *)
          ~probe_denom:budget ~shard:i ?progress cfg_i prog
      in
      results.(i) <- Some (r, tbl);
      if Report.found_error r then note_error stop i
    in
    spawn_workers ~jobs worker;
    let elapsed = prior_elapsed +. (Clock.now () -. t0) in
    (match progress with
     | None -> ()
     | Some p ->
       Progress.force p (fun () ->
           estimate_sample ~executions:(Atomic.get shared_execs)
             ~mass:(Atomic.get shared_mass) ~elapsed ~jobs));
    let parts =
      Option.to_list prior_part @ List.filter_map Fun.id (Array.to_list results)
    in
    let stats, metrics, analysis = merge_parts parts in
    (* No expansion phase: the whole wall time is search time. *)
    let stats = { stats with Report.elapsed; search_elapsed = elapsed } in
    let metrics =
      if cfg.C.metrics then M.Snapshot.with_gauge metrics "par/jobs" jobs else metrics
    in
    let report =
      match Atomic.get stop with
      | w when w < jobs ->
        let win_r, _ = Option.get results.(w) in
        let ws = win_r.Report.stats in
        { Report.verdict = win_r.Report.verdict;
          stats =
            { stats with
              (* Shard-local: the winner's position in its own stream. A global
                 execution index is not well defined across streams. *)
              Report.first_error_execution = ws.Report.first_error_execution;
              first_error_time = ws.Report.first_error_time };
          metrics;
          analysis }
      | _ -> { Report.verdict = Report.Limits_reached; stats; metrics; analysis }
    in
    (* Sampling shards interleave nondeterministically, so there is no
       mid-run granularity worth recording: the aggregate is checkpointed
       once, when the round ends (a resume continues by remaining budget). *)
    (match cfg.C.checkpoint with
     | None -> ()
     | Some path ->
       let edges =
         match report.Report.analysis with
         | Some a -> a.Report.lock_order_edges
         | None -> []
       in
       Checkpoint.save path
         { Checkpoint.fingerprint = Checkpoint.fingerprint cfg ~program:prog.Program.name;
           payload =
             Checkpoint.Par_sampling
               { Checkpoint.sa_round = round + 1;
                 sa_stats = report.Report.stats;
                 sa_metrics = report.Report.metrics;
                 sa_states = union_states parts;
                 sa_edges = edges;
                 sa_complete = Report.found_error report } });
    Search.post_run_end cfg report;
    report
  end

let run ?resume (cfg : C.t) prog =
  let jobs = resolve_jobs cfg in
  if jobs <= 1 then
    match resume with
    | None -> Search.run cfg prog
    | Some (Checkpoint.Seq sq) -> Search.run ~resume:sq cfg prog
    | Some (Checkpoint.Par _ | Checkpoint.Par_sampling _) ->
      raise
        (Checkpoint.Mismatch
           "checkpoint was written by a parallel search; resume it with jobs > 1")
  else
    match cfg.mode with
    | C.Dfs | C.Context_bounded _ ->
      (match resume with
       | None -> run_systematic cfg prog ~jobs
       | Some (Checkpoint.Par pa) -> run_systematic ~resume:pa cfg prog ~jobs
       | Some (Checkpoint.Seq _ | Checkpoint.Par_sampling _) ->
         raise
           (Checkpoint.Mismatch
              "checkpoint payload does not fit a parallel systematic search \
               (resume with the jobs setting that wrote it)"))
    | C.Random_walk _ | C.Priority_random _ ->
      (match resume with
       | None -> run_sampling cfg prog ~jobs
       | Some (Checkpoint.Par_sampling sa) -> run_sampling ~resume:sa cfg prog ~jobs
       | Some (Checkpoint.Seq _ | Checkpoint.Par _) ->
         raise
           (Checkpoint.Mismatch
              "checkpoint payload does not fit parallel sampling \
               (resume with the jobs setting that wrote it)"))
    | C.Round_robin ->
      (* A single deterministic schedule; nothing to shard. *)
      (match resume with
       | None -> Search.run { cfg with C.jobs = 1 } prog
       | Some (Checkpoint.Seq sq) -> Search.run ~resume:sq { cfg with C.jobs = 1 } prog
       | Some (Checkpoint.Par _ | Checkpoint.Par_sampling _) ->
         raise (Checkpoint.Mismatch "round-robin checkpoints are sequential"))
