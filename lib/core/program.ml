type booted = {
  threads : (unit -> unit) list;
  snapshot : (unit -> Fairmc_util.Fnv.t) option;
}

type t = { name : string; boot : unit -> booted; facts : Static_facts.t option }

let make ~name ?facts boot = { name; boot; facts }

let of_threads ~name ?snapshot boot =
  { name; boot = (fun () -> { threads = boot (); snapshot }); facts = None }

let with_facts t facts = { t with facts = Some facts }
