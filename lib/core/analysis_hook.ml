(* Types and graph utilities shared between the search and the analysis
   layer. See analysis_hook.mli. *)

type race = {
  detector : string;
  obj : Op.obj;
  obj_name : string;
  a_tid : int;
  a_step : int;
  a_op : Op.t;
  b_tid : int;
  b_step : int;
  b_op : Op.t;
  rendered : string;
  decisions : (int * int) list;
  length : int;
}

type lock_edge = {
  e_from : Op.obj;
  e_from_name : string;
  e_to : Op.obj;
  e_to_name : string;
}

type result = {
  first_race : race option;
  lock_edges : lock_edge list;
  counters : (string * int) list;
}

type instance = {
  exec_start : Engine.t -> unit;
  observe : Engine.observer;
  first_race : unit -> race option;
  result : unit -> result;
}

type t = { name : string; create : unit -> instance }

let snapshot_cex run =
  let tr = Engine.trace run in
  let names = Objects.pp_obj (Engine.store run) in
  let tail = if Trace.length tr > 400 then Some 400 else None in
  let rendered = Format.asprintf "@[<v>%a@]" (Trace.pp ?tail ~names) tr in
  (rendered, Trace.decisions tr, Trace.length tr)

let edge_key e = (e.e_from, e.e_to)

let dedup_edges edges =
  let sorted = List.sort (fun a b -> compare (edge_key a) (edge_key b)) edges in
  let rec uniq = function
    | a :: (b :: _ as rest) when edge_key a = edge_key b -> uniq rest
    | a :: rest -> a :: uniq rest
    | [] -> []
  in
  uniq sorted

(* Tarjan's SCC algorithm over the (tiny) lock graph. Components of at least
   two locks are reported; self-loops cannot arise (re-acquiring a held
   mutex is a sync error before the edge would be recorded). *)
let cycles edges =
  let edges = dedup_edges edges in
  let name_of = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace name_of e.e_from e.e_from_name;
      Hashtbl.replace name_of e.e_to e.e_to_name)
    edges;
  let nodes = List.sort_uniq compare (Hashtbl.fold (fun o _ acc -> o :: acc) name_of []) in
  let succs = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt succs e.e_from) in
      Hashtbl.replace succs e.e_from (e.e_to :: cur))
    edges;
  let index = Hashtbl.create 16 and lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and next_index = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (List.sort compare (Option.value ~default:[] (Hashtbl.find_opt succs v)));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      if List.length comp >= 2 then sccs := comp :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  let named comp =
    List.map
      (fun o -> (o, Option.value ~default:(Printf.sprintf "#%d" o) (Hashtbl.find_opt name_of o)))
      (List.sort compare comp)
  in
  List.sort compare (List.map named !sccs)

let combine results =
  let first_race =
    List.fold_left
      (fun acc (r : result) ->
        match (acc, r.first_race) with
        | None, x -> x
        | (Some _ as a), None -> a
        | Some a, Some b -> Some (if b.b_step < a.b_step then b else a))
      None results
  in
  { first_race;
    lock_edges = dedup_edges (List.concat_map (fun (r : result) -> r.lock_edges) results);
    counters = List.concat_map (fun (r : result) -> r.counters) results }
