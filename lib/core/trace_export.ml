module B = Fairmc_util.Bitset
module Json = Fairmc_util.Json
module TE = Fairmc_obs.Trace_event

(* Priority edges present in [after] but not in [before] (and vice versa).
   The pair lists are tiny (|P| is bounded by yields), so quadratic diffing
   is fine. *)
let edge_diff before after =
  let added = List.filter (fun e -> not (List.mem e before)) after in
  let removed = List.filter (fun e -> not (List.mem e after)) before in
  (added, removed)

let pair_json (t, u) = Json.Arr [ Json.Int t; Json.Int u ]

let of_schedule ?(fair_k = 1) ?race prog decisions =
  let run = Engine.start prog in
  Fun.protect ~finally:(fun () -> Engine.stop run) @@ fun () ->
  let fair = ref (Fair_sched.create ~nthreads:(Engine.nthreads run) ~k:fair_k ()) in
  let evs = ref [ TE.process_name "fairmc schedule" ] in
  let push e = evs := e :: !evs in
  let named = Hashtbl.create 8 in
  let name_thread tid =
    if not (Hashtbl.mem named tid) then begin
      Hashtbl.add named tid ();
      push (TE.thread_name ~tid (Printf.sprintf "thread %d" tid))
    end
  in
  let step_i = ref 0 in
  let ok = ref true in
  List.iter
    (fun (tid, alt) ->
      if !ok && Engine.failure run = None then
        match Engine.pending run tid with
        | Some _ when B.mem tid (Engine.enabled_set run) ->
          let es_before = Engine.enabled_set run in
          let yielded = Engine.would_yield run tid in
          let nth_before = Engine.nthreads run in
          let pairs_before = Fair_sched.priority_pairs !fair in
          Engine.step run ~tid ~alt;
          for _ = nth_before + 1 to Engine.nthreads run do
            fair := Fair_sched.add_thread !fair
          done;
          let es_after = Engine.enabled_set run in
          fair := Fair_sched.step !fair ~chosen:tid ~yielded ~es_before ~es_after;
          let tr = Engine.trace run in
          let e = Trace.get tr (Trace.length tr - 1) in
          let ts = float_of_int !step_i in
          name_thread tid;
          push
            (TE.complete
               ~name:(Format.asprintf "%a" Op.pp e.Trace.op)
               ~tid ~ts ~dur:1.
               ~args:
                 [ ("step", Json.Int !step_i);
                   ("alt", Json.Int alt);
                   ("result", Json.Bool e.Trace.result) ]
               ());
          if e.Trace.yielded then push (TE.instant ~name:"yield" ~tid ~ts ());
          let added, removed = edge_diff pairs_before (Fair_sched.priority_pairs !fair) in
          if added <> [] || removed <> [] then
            push
              (TE.instant ~name:"priority change" ~tid ~ts
                 ~args:
                   [ ("added", Json.Arr (List.map pair_json added));
                     ("removed", Json.Arr (List.map pair_json removed)) ]
                 ());
          push
            (TE.counter ~name:"scheduler" ~tid:0 ~ts
               ~values:
                 [ ("enabled", B.cardinal es_after);
                   ("priority_edges", Fair_sched.edge_count !fair) ]);
          incr step_i
        | _ -> ok := false)
    decisions;
  (* Race markers at both access sites, so the two racing slices light up in
     Perfetto even when hundreds of steps apart. *)
  (match race with
   | None -> ()
   | Some (r : Analysis_hook.race) ->
     let mark ~tid ~step ~op ~other =
       if step < !step_i then begin
         name_thread tid;
         push
           (TE.instant
              ~name:(Printf.sprintf "race: %s" r.obj_name)
              ~cat:"race" ~tid ~ts:(float_of_int step)
              ~args:
                [ ("detector", Json.Str r.detector);
                  ("object", Json.Str r.obj_name);
                  ("op", Json.Str (Op.to_string op));
                  ("racing_step", Json.Int other) ]
              ())
       end
     in
     mark ~tid:r.a_tid ~step:r.a_step ~op:r.a_op ~other:r.b_step;
     mark ~tid:r.b_tid ~step:r.b_step ~op:r.b_op ~other:r.a_step);
  TE.to_json (List.rev !evs)

let of_report ?fair_k prog (r : Report.t) =
  match Report.cex r with
  | None -> None
  | Some cex ->
    let race = match r.Report.verdict with Report.Race { race; _ } -> Some race | _ -> None in
    Some (of_schedule ?fair_k ?race prog cex.Report.decisions)
