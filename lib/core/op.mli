(** Visible operations of threads under test.

    Every scheduling point in a program corresponds to exactly one [Op.t]: a
    thread runs uninterrupted between two operations, and the engine only
    context-switches at operation boundaries. The operation a parked thread
    is *about to* execute (its pending operation) determines both
    [enabled(t)] and [yield(t)] in the sense of the paper (Section 3). *)

type obj = int
(** Index of a synchronization object in the per-execution store. *)

type t =
  | Lock of obj  (** blocking mutex acquire; enabled iff the mutex is free *)
  | Try_lock of obj  (** non-blocking acquire; always enabled, returns success *)
  | Timed_lock of obj
      (** acquire with a finite timeout; always enabled. When the mutex is
          unavailable the operation "times out" (returns [false]) and counts
          as a yield, per CHESS's inference of yielding operations (§4). *)
  | Unlock of obj
  | Sem_wait of obj  (** P; enabled iff the count is positive *)
  | Sem_try_wait of obj  (** always enabled, returns success *)
  | Sem_timed_wait of obj  (** always enabled; timing out yields *)
  | Sem_post of obj  (** V; always enabled *)
  | Ev_wait of obj  (** enabled iff the event is set; auto-reset events consume *)
  | Ev_timed_wait of obj  (** always enabled; timing out yields *)
  | Ev_set of obj
  | Ev_reset of obj
  | Var_read of obj  (** shared-variable read; always enabled *)
  | Var_write of obj
  | Var_rmw of obj  (** interlocked read-modify-write (CAS, increment, ...) *)
  | Yield  (** explicit processor yield; always enabled, always a yield *)
  | Sleep  (** sleep with finite duration; always enabled, always a yield *)
  | Join of int  (** join on thread [tid]; enabled iff that thread finished *)
  | Spawn  (** thread creation; always enabled *)
  | Choose of int
      (** [Choose n]: nondeterministic data choice among [n] alternatives;
          always enabled. The demonic scheduler branches on the value. *)

val obj_of : t -> obj option
(** The synchronization object the operation touches, if any. Two operations
    on distinct objects are independent (used by sleep-set POR). *)

val is_blocking_kind : t -> bool
(** Whether the operation can ever be disabled. *)

val alternatives : t -> int
(** Number of data alternatives: [n] for [Choose n], 1 otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Kind indexing}

    Dense constructor indices for per-op-kind transition accounting: the
    engine keeps an [int array] of length [n_kinds] and bumps
    [kind_index op] on every step, so counting costs one array store. *)

val n_kinds : int
val kind_index : t -> int
val kind_name : int -> string
(** Lowercase stable name ("lock", "trylock", ..., "choose"); raises
    [Invalid_argument] outside [0, n_kinds). *)

val to_json : t -> Fairmc_util.Json.t
(** Wire form for the worker IPC protocol: [["<kind>", obj]] for operations
    carrying an object/tid/arity, a bare kind string otherwise. *)

val of_json : Fairmc_util.Json.t -> (t, string) result
(** Inverse of {!to_json}. *)
