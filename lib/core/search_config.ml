type mode =
  | Dfs
  | Context_bounded of int
  | Random_walk of int
  | Round_robin
  | Priority_random of int

type interp = Vm | Ast

type t = {
  fair : bool;
  fair_k : int;
  mode : mode;
  depth_bound : int option;
  random_tail : bool;
  max_steps : int;
  livelock_bound : int option;
  tail_window : int;
  max_executions : int option;
  time_limit : float option;
  seed : int64;
  sleep_sets : bool;
  coverage : bool;
  verbose : bool;
  jobs : int;
  split_depth : int;
  poll_interval : int;
  metrics : bool;
  progress : bool;
  progress_interval : float;
  on_progress : (Fairmc_obs.Progress.sample -> unit) option;
  events : Fairmc_obs.Events.stream option;
  analyses : Analysis_hook.t list;
  checkpoint : string option;
  checkpoint_interval : float;
  interp : interp;
}

let default =
  { fair = true;
    fair_k = 1;
    mode = Dfs;
    depth_bound = None;
    random_tail = true;
    max_steps = 20_000;
    livelock_bound = Some 10_000;
    tail_window = 500;
    max_executions = None;
    time_limit = None;
    seed = 0x5EEDL;
    sleep_sets = false;
    coverage = false;
    verbose = false;
    jobs = 1;
    split_depth = 4;
    poll_interval = 256;
    metrics = false;
    progress = false;
    progress_interval = 1.0;
    on_progress = None;
    events = None;
    analyses = [];
    checkpoint = None;
    checkpoint_interval = 30.0;
    interp = Vm }

let fair_dfs = default

let unfair_dfs ~depth_bound =
  { default with fair = false; depth_bound = Some depth_bound; livelock_bound = None }

let fair_cb c = { default with mode = Context_bounded c }

let unfair_cb c ~depth_bound =
  { default with
    fair = false;
    mode = Context_bounded c;
    depth_bound = Some depth_bound;
    livelock_bound = None }

let interp_name = function Vm -> "vm" | Ast -> "ast"

let mode_name = function
  | Dfs -> "dfs"
  | Context_bounded c -> Printf.sprintf "cb=%d" c
  | Random_walk n -> Printf.sprintf "random(%d)" n
  | Round_robin -> "round-robin"
  | Priority_random n -> Printf.sprintf "prio-random(%d)" n

let describe t =
  Printf.sprintf "%s%s%s%s%s"
    (mode_name t.mode)
    (if t.fair then " fair" else " unfair")
    (match t.depth_bound with Some d -> Printf.sprintf " db=%d" d | None -> "")
    ((if t.sleep_sets then " +sleepsets" else "")
     ^ match t.interp with Vm -> "" | Ast -> " interp=ast")
    ((match t.analyses with
      | [] -> ""
      | l -> " +" ^ String.concat "+" (List.map (fun (a : Analysis_hook.t) -> a.name) l))
     ^
     if t.jobs = 1 then ""
     else if t.jobs <= 0 then " jobs=auto"
     else Printf.sprintf " jobs=%d" t.jobs)
