type mode =
  | Dfs
  | Context_bounded of int
  | Random_walk of int
  | Round_robin
  | Priority_random of int

type interp = Vm | Ast

type fault_kind = Crash | Hang | Garble | Slow_pipe | Save_fail
type fault = { fault_kind : fault_kind; fault_seed : int }

type t = {
  fair : bool;
  fair_k : int;
  mode : mode;
  depth_bound : int option;
  random_tail : bool;
  max_steps : int;
  livelock_bound : int option;
  tail_window : int;
  max_executions : int option;
  time_limit : float option;
  seed : int64;
  sleep_sets : bool;
  coverage : bool;
  verbose : bool;
  jobs : int;
  split_depth : int;
  poll_interval : int;
  metrics : bool;
  progress : bool;
  progress_interval : float;
  on_progress : (Fairmc_obs.Progress.sample -> unit) option;
  events : Fairmc_obs.Events.stream option;
  analyses : Analysis_hook.t list;
  checkpoint : string option;
  checkpoint_interval : float;
  interp : interp;
  static_por : bool;
  workers : int;
  item_timeout : float option;
  max_retries : int;
  inject_fault : fault option;
}

let default =
  { fair = true;
    fair_k = 1;
    mode = Dfs;
    depth_bound = None;
    random_tail = true;
    max_steps = 20_000;
    livelock_bound = Some 10_000;
    tail_window = 500;
    max_executions = None;
    time_limit = None;
    seed = 0x5EEDL;
    sleep_sets = false;
    coverage = false;
    verbose = false;
    jobs = 1;
    split_depth = 4;
    poll_interval = 256;
    metrics = false;
    progress = false;
    progress_interval = 1.0;
    on_progress = None;
    events = None;
    analyses = [];
    checkpoint = None;
    checkpoint_interval = 30.0;
    interp = Vm;
    static_por = true;
    workers = 1;
    item_timeout = None;
    max_retries = 2;
    inject_fault = None }

let fair_dfs = default

let unfair_dfs ~depth_bound =
  { default with fair = false; depth_bound = Some depth_bound; livelock_bound = None }

let fair_cb c = { default with mode = Context_bounded c }

let unfair_cb c ~depth_bound =
  { default with
    fair = false;
    mode = Context_bounded c;
    depth_bound = Some depth_bound;
    livelock_bound = None }

let interp_name = function Vm -> "vm" | Ast -> "ast"

let fault_kind_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Garble -> "garble"
  | Slow_pipe -> "slowpipe"
  | Save_fail -> "savefail"

let fault_kinds = [ Crash; Hang; Garble; Slow_pipe; Save_fail ]

let fault_name { fault_kind; fault_seed } =
  Printf.sprintf "%s@%d" (fault_kind_name fault_kind) fault_seed

(* "<kind>" or "<kind>@<seed>"; the seed picks which work item the fault
   fires on (index = seed mod item count, first attempt only). *)
let fault_of_string s =
  let kind_of = function
    | "crash" -> Some Crash
    | "hang" -> Some Hang
    | "garble" -> Some Garble
    | "slowpipe" | "slow-pipe" -> Some Slow_pipe
    | "savefail" | "save-fail" -> Some Save_fail
    | _ -> None
  in
  let kind_s, seed_s =
    match String.index_opt s '@' with
    | None -> (s, None)
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  match kind_of (String.lowercase_ascii kind_s) with
  | None ->
    Error
      (Printf.sprintf "unknown fault kind %S (crash | hang | garble | slowpipe | savefail)"
         kind_s)
  | Some fault_kind ->
    (match seed_s with
     | None -> Ok { fault_kind; fault_seed = 0 }
     | Some s ->
       (match int_of_string_opt s with
        | Some fault_seed when fault_seed >= 0 -> Ok { fault_kind; fault_seed }
        | _ -> Error "fault seed must be a non-negative integer"))

let mode_name = function
  | Dfs -> "dfs"
  | Context_bounded c -> Printf.sprintf "cb=%d" c
  | Random_walk n -> Printf.sprintf "random(%d)" n
  | Round_robin -> "round-robin"
  | Priority_random n -> Printf.sprintf "prio-random(%d)" n

let describe t =
  Printf.sprintf "%s%s%s%s%s"
    (mode_name t.mode)
    (if t.fair then " fair" else " unfair")
    (match t.depth_bound with Some d -> Printf.sprintf " db=%d" d | None -> "")
    ((if t.sleep_sets then " +sleepsets" else "")
     ^ (if t.static_por then "" else " -staticpor")
     ^ match t.interp with Vm -> "" | Ast -> " interp=ast")
    ((match t.analyses with
      | [] -> ""
      | l -> " +" ^ String.concat "+" (List.map (fun (a : Analysis_hook.t) -> a.name) l))
     ^
     (if t.jobs = 1 then ""
      else if t.jobs <= 0 then " jobs=auto"
      else Printf.sprintf " jobs=%d" t.jobs)
     ^
     if t.workers = 1 then ""
     else if t.workers <= 0 then " workers=auto"
     else Printf.sprintf " workers=%d" t.workers)
