(** Search results: verdicts, counterexamples, statistics, metrics. *)

type counterexample = {
  rendered : string;  (** pretty-printed trace (tail for divergences) *)
  decisions : (int * int) list;  (** replayable (tid, alt) schedule *)
  length : int;
}

type divergence_kind =
  | Fair_nontermination
      (** a fair infinite execution in the limit — a livelock (paper outcome 3) *)
  | Good_samaritan_violation of int
      (** the tail starves enabled threads while thread [tid] runs without
          yielding (paper outcome 2) *)

type verdict =
  | Verified  (** the search space was exhausted without finding an error *)
  | Safety_violation of { tid : int; failure : Engine.failure; cex : counterexample }
  | Deadlock of { cex : counterexample }
  | Divergence of { kind : divergence_kind; cex : counterexample }
  | Limits_reached
      (** execution/time budget exhausted before completing the search *)

type stats = {
  executions : int;
  transitions : int;
  states : int;  (** distinct state signatures, when coverage is enabled *)
  nonterminating : int;  (** executions that hit the hard step cap *)
  depth_bound_hits : int;  (** paths pruned at the depth bound (Figure 2) *)
  sleep_set_prunes : int;  (** paths cut because sleep sets emptied the node *)
  yields : int;  (** yielding transitions executed across all paths *)
  max_depth : int;
  elapsed : float;
  first_error_execution : int option;
  first_error_time : float option;
  sync_ops_per_exec : int;  (** max over executions — Table 1 accounting *)
  max_threads : int;
}

type t = {
  verdict : verdict;
  stats : stats;
  metrics : Fairmc_obs.Metrics.Snapshot.t;
      (** full instrument snapshot; {!Fairmc_obs.Metrics.Snapshot.empty}
          unless [Search_config.metrics] was set *)
}

val found_error : t -> bool
val verdict_name : verdict -> string
val cex : t -> counterexample option
(** The counterexample, for erroring verdicts. *)

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t -> unit

val stats_to_json : stats -> Fairmc_util.Json.t

val to_json : ?program:string -> ?config:string -> t -> Fairmc_util.Json.t
(** The machine-readable report document ([chess check --json]): schema tag,
    program/config labels when given, verdict (with the replayable decision
    list of the counterexample, not its rendering), stats, and the metrics
    snapshot. *)
