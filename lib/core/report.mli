(** Search results: verdicts, counterexamples, statistics, metrics. *)

type counterexample = {
  rendered : string;  (** pretty-printed trace (tail for divergences) *)
  decisions : (int * int) list;  (** replayable (tid, alt) schedule *)
  length : int;
}

type divergence_kind =
  | Fair_nontermination
      (** a fair infinite execution in the limit — a livelock (paper outcome 3) *)
  | Good_samaritan_violation of int
      (** the tail starves enabled threads while thread [tid] runs without
          yielding (paper outcome 2) *)

type verdict =
  | Verified  (** the search space was exhausted without finding an error *)
  | Safety_violation of { tid : int; failure : Engine.failure; cex : counterexample }
  | Deadlock of { cex : counterexample }
  | Divergence of { kind : divergence_kind; cex : counterexample }
  | Race of { race : Analysis_hook.race; cex : counterexample }
      (** a dynamic analysis ({!Search_config.analyses}) reported a data
          race on this execution; [cex] replays the schedule up to and
          including the racing access *)
  | Crash of { reason : string; cex : counterexample }
      (** a supervised worker process died (or exhausted its retry budget)
          while exploring this subtree; [cex] is the item's schedule prefix,
          replayable to re-enter the crashing subtree deterministically *)
  | Limits_reached
      (** execution/time budget exhausted before completing the search *)

type stats = {
  executions : int;
  transitions : int;
  states : int;  (** distinct state signatures, when coverage is enabled *)
  nonterminating : int;  (** executions that hit the hard step cap *)
  depth_bound_hits : int;  (** paths pruned at the depth bound (Figure 2) *)
  sleep_set_prunes : int;  (** paths cut because sleep sets emptied the node *)
  yields : int;  (** yielding transitions executed across all paths *)
  max_depth : int;
  elapsed : float;
  first_error_execution : int option;
  first_error_time : float option;
  sync_ops_per_exec : int;  (** max over executions — Table 1 accounting *)
  max_threads : int;
  search_elapsed : float;
      (** wall time of the search phase alone (excludes parallel frontier
          expansion and other startup work); 0 when not measured — consumers
          should fall back to [elapsed] *)
  probe_mass : int;
      (** accumulated {!Fairmc_obs.Estimator} probe mass in fixed point
          ([Estimator.one] = fully explored); summed across shards and
          resumed sessions, jobs-deterministic for systematic searches *)
}

type analysis = {
  lock_order_edges : Analysis_hook.lock_edge list;
      (** union over all explored executions (and all shards), canonically
          sorted ({!Analysis_hook.dedup_edges}) *)
  potential_deadlock_cycles : (Op.obj * string) list list;
      (** {!Analysis_hook.cycles} of the merged edge set *)
}

type t = {
  verdict : verdict;
  stats : stats;
  metrics : Fairmc_obs.Metrics.Snapshot.t;
      (** full instrument snapshot; {!Fairmc_obs.Metrics.Snapshot.empty}
          unless [Search_config.metrics] was set *)
  analysis : analysis option;
      (** cross-execution analysis results; [None] unless
          [Search_config.analyses] was non-empty *)
}

val found_error : t -> bool
val verdict_name : verdict -> string

val verdict_key : verdict -> string
(** Canonical short key: ["verified"], ["safety"], ["deadlock"],
    ["livelock"], ["good-samaritan"], ["race"], ["crash"], or ["limits"] — the
    vocabulary of the workload registry's expected verdicts and of
    [chess sweep]. *)

val verdict_keys : string list
(** Every string {!verdict_key} can return. *)

val cex : t -> counterexample option
(** The counterexample, for erroring verdicts. *)

val search_time : stats -> float
(** [search_elapsed] when measured, otherwise [elapsed] — the denominator of
    {!execs_per_sec}. *)

val execs_per_sec : stats -> float
(** Executions per second of the search phase alone. *)

val completion : stats -> float
(** Estimated explored fraction in [0, 1] ({!Fairmc_obs.Estimator}). *)

val est_total : stats -> int option
(** Estimated total executions of the full search; [None] with no probe
    mass. *)

val eta : stats -> float option
(** Estimated seconds remaining at the current rate. *)

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t -> unit

val fix_lockgraph_counters :
  Fairmc_obs.Metrics.Snapshot.t -> analysis option -> Fairmc_obs.Metrics.Snapshot.t
(** Overwrite the set-derived ["analysis/lockgraph/*"] counters from a merged
    analysis union (shard merge, checkpoint resume): summing them would
    double-count edges seen on both sides. No-op when the counters are absent
    or no analysis ran. *)

val stats_to_json : stats -> Fairmc_util.Json.t

val schema_version : string
(** ["fairmc-report/2"] — the single source of truth for the report schema
    tag; every emitter and test references this constant. *)

val to_json :
  ?program:string -> ?config:string -> ?lint:Fairmc_util.Json.t -> t ->
  Fairmc_util.Json.t
(** The machine-readable report document ([chess check --json]), schema
    {!schema_version}: schema tag, program/config labels when given, verdict
    (with the replayable decision list of the counterexample, not its
    rendering), [verdict_key], stats (including the search-phase wall time
    and the progress-estimate fields), the metrics snapshot, when
    analyses ran the ["analysis"] object (lock-order edges and potential
    deadlock cycles), and — for ChessLang programs checked with static
    analysis enabled — the ["lint"] summary block the CLI passes in. *)
