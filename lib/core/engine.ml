module B = Fairmc_util.Bitset
module Fnv = Fairmc_util.Fnv

type failure =
  | Assertion of string
  | Sync_misuse of string
  | Resource of string
  | Uncaught of string

let pp_failure ppf = function
  | Assertion m -> Format.fprintf ppf "assertion failure: %s" m
  | Sync_misuse m -> Format.fprintf ppf "synchronization misuse: %s" m
  | Resource m -> Format.fprintf ppf "resource exhaustion: %s" m
  | Uncaught m -> Format.fprintf ppf "uncaught exception: %s" m

(* Stack_overflow/Out_of_memory raised by a thread body must become an error
   verdict carrying the offending schedule, not kill the whole search (or a
   supervised worker). They need their own arm: the generic [Uncaught]
   rendering of [Printexc.to_string] is fine, but classifying them lets
   callers distinguish a program bug from a workload that genuinely needs
   more resources. *)
let resource_failure = function
  | Stack_overflow -> Some (Resource "stack overflow")
  | Out_of_memory -> Some (Resource "out of memory")
  | _ -> None

type parked = {
  op : Op.t;
  k : (int, unit) Effect.Deep.continuation;
  payload : (unit -> unit) option;  (* body captured at a [Spawn] park *)
}

type tstate =
  | Parked of parked
  | Running  (* transient, while its continuation executes *)
  | Finished

type observer = tid:int -> op:Op.t -> result:int -> unit

type t = {
  prog_store : Objects.t;
  obs : observer option;
  mutable threads : tstate array;
  mutable prev_op : Op.t option array;
  mutable op_repeat : int array;
      (* Control abstraction for state signatures: the pending operation
         alone does not identify a thread's control point when two identical
         operations are adjacent (e.g. two reads of the same variable), which
         would merge a state with its own successor and cut off stateful
         exploration. Counting consecutive identical pending operations
         restores (enough) injectivity; loops whose bodies contain more than
         one distinct operation still converge. *)
  mutable nthreads : int;
  mutable failure : (int * failure) option;
  trace : Trace.t;
  mutable steps : int;
  snapshot : (unit -> Fnv.t) option;
  snapshotters : (Fnv.t -> Fnv.t) list;
  mutable sync_ops : int;
  mutable var_ops : int;
  op_counts : int array;  (* transitions by Op.kind_index *)
  mutable context_switches : int;
  mutable last_stepped : int;  (* tid of the previous transition; -1 at boot *)
  mutable live : bool;
}

(* The active run is tracked per domain: the parallel search runs one engine
   in each worker domain, and takeover/stop bookkeeping must not leak across
   domains. *)
let active_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let active () = Domain.DLS.get active_key

(* The step observer is a per-domain cell, like [active]: the search layer
   installs it around a whole search, every [start] on that domain captures
   the current value into the run, and [step] pays one immediate branch when
   it is unset (the zero-cost-when-off contract of the obs layer). *)
let observer_key : observer option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_observer f = Domain.DLS.get observer_key := f

let record_failure t tid f = if t.failure = None then t.failure <- Some (tid, f)

(* Run [body] as thread [tid] until its first scheduling point (or
   completion). The deep handler stays installed for the thread's lifetime:
   subsequent parks happen during [Effect.Deep.continue] in [step]. *)
let start_thread t tid body =
  let note_park t tid op =
    (* Saturate the counter: straight-line runs of identical operations are
       short (that is all the disambiguation needs), while an unbounded
       counter would make single-operation spin loops produce infinitely
       many signatures, breaking cycle detection. *)
    (match t.prev_op.(tid) with
     | Some prev when prev = op -> t.op_repeat.(tid) <- min (t.op_repeat.(tid) + 1) 4
     | Some _ | None -> t.op_repeat.(tid) <- 0);
    t.prev_op.(tid) <- Some op
  in
  let handler : (unit, unit) Effect.Deep.handler =
    { retc = (fun () -> t.threads.(tid) <- Finished);
      exnc =
        (fun exn ->
          t.threads.(tid) <- Finished;
          match exn with
          | Runtime.Assertion_failure m -> record_failure t tid (Assertion m)
          | Objects.Sync_error m -> record_failure t tid (Sync_misuse m)
          | e ->
            record_failure t tid
              (match resource_failure e with
               | Some f -> f
               | None -> Uncaught (Printexc.to_string e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Runtime.Sched op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let payload =
                  match op with
                  | Op.Spawn ->
                    let c = Runtime.ctx () in
                    let b = c.spawn_body in
                    c.spawn_body <- None;
                    b
                  | _ -> None
                in
                note_park t tid op;
                t.threads.(tid) <- Parked { op; k; payload })
          | _ -> None) }
  in
  let c = Runtime.ctx () in
  let saved_tid = c.current_tid in
  let saved_in = c.in_thread in
  c.current_tid <- tid;
  c.in_thread <- true;
  Effect.Deep.match_with body () handler;
  c.current_tid <- saved_tid;
  c.in_thread <- saved_in

let add_thread t body =
  if t.nthreads > B.max_capacity then failwith "Engine: too many threads";
  if t.nthreads = Array.length t.threads then begin
    let a = Array.make (2 * t.nthreads) Finished in
    Array.blit t.threads 0 a 0 t.nthreads;
    t.threads <- a;
    let p = Array.make (2 * t.nthreads) None in
    Array.blit t.prev_op 0 p 0 t.nthreads;
    t.prev_op <- p;
    let rep = Array.make (2 * t.nthreads) 0 in
    Array.blit t.op_repeat 0 rep 0 t.nthreads;
    t.op_repeat <- rep
  end;
  let tid = t.nthreads in
  t.threads.(tid) <- Running;
  t.nthreads <- tid + 1;
  start_thread t tid body;
  tid

let start (prog : Program.t) =
  let active = active () in
  (match !active with
   | Some prev when prev.live ->
     (* A previous run that was not [stop]ped; take over, runs do not nest
        (within a domain). *)
     prev.live <- false
   | _ -> ());
  let store = Objects.create () in
  let c = Runtime.reset store in
  let booted = prog.Program.boot () in
  let t =
    { prog_store = store;
      obs = !(Domain.DLS.get observer_key);
      threads = Array.make 8 Finished;
      prev_op = Array.make 8 None;
      op_repeat = Array.make 8 0;
      nthreads = 0;
      failure = None;
      trace = Trace.create ();
      steps = 0;
      snapshot = booted.Program.snapshot;
      snapshotters = c.snapshotters;
      sync_ops = 0;
      var_ops = 0;
      op_counts = Array.make Op.n_kinds 0;
      context_switches = 0;
      last_stepped = -1;
      live = true }
  in
  active := Some t;
  List.iter (fun body -> ignore (add_thread t body)) booted.Program.threads;
  t

let nthreads t = t.nthreads
let steps t = t.steps

(* A join target outside the allocated range is treated as not finished:
   tids are dense and may be created later by spawns, so joining one that
   never materializes is a deadlock, not a no-op. *)
let finished t tid = tid >= 0 && tid < t.nthreads && t.threads.(tid) = Finished

let pending t tid =
  if tid < 0 || tid >= t.nthreads then invalid_arg "Engine.pending";
  match t.threads.(tid) with
  | Parked p -> Some p.op
  | Running | Finished -> None

let enabled t tid =
  match t.threads.(tid) with
  | Parked p -> Objects.enabled t.prog_store ~finished:(finished t) p.op
  | Running | Finished -> false

let enabled_set t =
  let rec go tid acc =
    if tid >= t.nthreads then acc
    else go (tid + 1) (if enabled t tid then B.add tid acc else acc)
  in
  go 0 B.empty

let would_yield t tid =
  match t.threads.(tid) with
  | Parked p -> Objects.would_yield t.prog_store p.op
  | Running | Finished -> false

let alternatives t tid =
  match t.threads.(tid) with
  | Parked p -> Op.alternatives p.op
  | Running | Finished -> 1

let count_op t tid (op : Op.t) =
  (match op with
   | Var_read _ | Var_write _ | Var_rmw _ -> t.var_ops <- t.var_ops + 1
   | Choose _ -> ()
   | _ -> t.sync_ops <- t.sync_ops + 1);
  let k = Op.kind_index op in
  t.op_counts.(k) <- t.op_counts.(k) + 1;
  if t.last_stepped >= 0 && t.last_stepped <> tid then
    t.context_switches <- t.context_switches + 1;
  t.last_stepped <- tid

let step t ~tid ~alt =
  if t.failure <> None then invalid_arg "Engine.step: execution already failed";
  match t.threads.(tid) with
  | Running | Finished -> invalid_arg "Engine.step: thread not parked"
  | Parked p ->
    if not (Objects.enabled t.prog_store ~finished:(finished t) p.op) then
      invalid_arg "Engine.step: thread not enabled";
    let yielded = Objects.would_yield t.prog_store p.op in
    let enabled_before = enabled_set t in
    let result =
      match p.op with
      | Op.Spawn ->
        let body =
          match p.payload with
          | Some b -> b
          | None -> failwith "Engine: spawn without a body"
        in
        let child = add_thread t body in
        (Runtime.ctx ()).spawn_result <- child;
        1
      | Op.Choose n ->
        if alt < 0 || alt >= n then invalid_arg "Engine.step: bad alternative";
        alt
      | op ->
        (match Objects.execute t.prog_store ~self:tid op with
         | true -> 1
         | false -> 0
         | exception Objects.Sync_error m ->
           record_failure t tid (Sync_misuse m);
           0
         | exception ((Stack_overflow | Out_of_memory) as e) ->
           record_failure t tid (Option.get (resource_failure e));
           0)
    in
    count_op t tid p.op;
    Trace.push t.trace
      { Trace.step = t.steps; tid; op = p.op; alt;
        result = result <> 0; yielded; enabled = enabled_before };
    t.steps <- t.steps + 1;
    (match t.obs with
     | None -> ()
     | Some f ->
       (* After [Trace.push]: an observer that snapshots the trace here sees
          the schedule up to and including this transition. [Spawn] reports
          the child tid, [Choose] the chosen alternative, try/timed ops 0/1. *)
       let result =
         match p.op with Op.Spawn -> (Runtime.ctx ()).spawn_result | _ -> result
       in
       f ~tid ~op:p.op ~result);
    if t.failure = None then begin
      t.threads.(tid) <- Running;
      let c = Runtime.ctx () in
      let saved_tid = c.current_tid in
      let saved_in = c.in_thread in
      c.current_tid <- tid;
      c.in_thread <- true;
      Effect.Deep.continue p.k result;
      c.current_tid <- saved_tid;
      c.in_thread <- saved_in
    end

let failure t = t.failure

let all_finished t =
  let rec go tid = tid >= t.nthreads || (t.threads.(tid) = Finished && go (tid + 1)) in
  go 0

let deadlocked t =
  (not (all_finished t)) && B.is_empty (enabled_set t) && t.failure = None

let trace t = t.trace
let store t = t.prog_store

let state_signature t =
  let regions = (Runtime.ctx ()).regions in
  let h = Objects.signature t.prog_store Fnv.init in
  let h = ref (Fnv.int h t.nthreads) in
  for tid = 0 to t.nthreads - 1 do
    (match t.threads.(tid) with
     | Finished -> h := Fnv.int !h (-1)
     | Running -> h := Fnv.int !h (-2)
     | Parked p ->
       h := Fnv.string (Fnv.int !h tid) (Op.to_string p.op);
       h := Fnv.int !h t.op_repeat.(tid);
       h := Fnv.int !h (Option.value ~default:0 (Hashtbl.find_opt regions tid)))
  done;
  let h = List.fold_left (fun acc f -> f acc) !h t.snapshotters in
  match t.snapshot with None -> h | Some f -> Fnv.int h (Int64.to_int (f ()))

let sync_ops t = t.sync_ops
let var_ops t = t.var_ops
let op_counts t = t.op_counts
let context_switches t = t.context_switches

let stop t =
  t.live <- false;
  let active = active () in
  match !active with
  | Some a when a == t -> active := None
  | _ -> ()
