(** Top-level model-checking interface (the "CHESS" entry point).

    Typical use:
    {[
      let prog = Program.of_threads ~name:"fig3" (fun () ->
        let x = Sync.int_var ~name:"x" 0 in
        [ (fun () -> Sync.Svar.set x 1);
          (fun () ->
            while Sync.Svar.get x <> 1 do
              Sync.yield ()
            done) ])
      in
      let report = Checker.check prog in
      Format.printf "%a@." Report.pp report
    ]}

    The checker determines whether the program is fair-terminating and
    satisfies its embedded assertions; if not, it produces a counterexample
    execution (finite for safety violations and deadlocks, a divergence
    prefix for liveness violations) — the problem statement of Section 2. *)

val check : ?config:Search_config.t -> ?resume:Checkpoint.payload -> Program.t -> Report.t
(** Run the search. Defaults to fair depth-first search. With
    [config.workers > 1] the search runs under the supervised process pool
    ({!Supervisor}); otherwise in-process ({!Par_search}, sharded over
    [config.jobs] domains). [resume] continues a prior checkpointed
    session — obtain the payload from {!Checkpoint.load} +
    {!Checkpoint.plan_resume}; raises {!Checkpoint.Mismatch} if it does not
    fit the configuration. *)

val check_all :
  configs:(string * Search_config.t) list -> Program.t -> (string * Report.t) list
(** Run several strategies in sequence (e.g. iterative context bounding:
    cb=0, 1, 2, ...), returning each report. Stops early when an error is
    found. *)

val iterative_context_bound :
  ?fair:bool -> ?max_bound:int -> ?base:Search_config.t -> Program.t -> Report.t
(** Iterative context bounding (Musuvathi & Qadeer, PLDI 2007), with the
    fair scheduler enabled by default: search with 0 preemptions, then 1,
    ... up to [max_bound] (default 2), returning the first error or the last
    report. *)
