(* Worker IPC protocol. See DESIGN.md, "Supervision".

   The supervisor and its forked workers exchange length-prefixed JSON
   frames over pipes: an 8-lowercase-hex-digit payload length followed by
   the payload itself. JSON keeps the wire format debuggable (a hung
   worker's pipe can be read by hand) and lets reports and metric
   snapshots travel in exactly the checkpoint codec's wire form
   ({!Checkpoint.Codec}), so nothing is serialized two different ways.

   Framing is deliberately asymmetric:
   - the child reads its request pipe with a blocking [recv] (it has
     nothing else to do), and
   - the parent feeds a per-slot [inbuf] from [select]-driven single
     [read(2)]s and extracts complete frames incrementally, so one slow or
     malicious worker can never stall the supervisor loop.

   Any framing violation (garbled header, oversized frame, non-JSON
   payload, truncation) is an [Error] — the supervisor treats it like a
   worker death and requeues the in-flight item. *)

module J = Fairmc_util.Json
module Retry = Fairmc_util.Retry
module CK = Checkpoint.Codec
module AH = Analysis_hook

let protocol = "fairmc-ipc/1"

type request =
  | Run of { q_index : int; q_attempt : int; q_time_left : float option }
  | Quit

type response = {
  r_index : int;
  r_attempt : int;
  r_report : Report.t;
  r_states : int64 list;
  r_events : (bool * string * J.t) list;
}

(* ------------------------------------------------------------------ *)
(* Report codec. Parsers raise {!Checkpoint.Codec.Parse}.              *)

let failure_to_json = function
  | Engine.Assertion m -> J.Arr [ J.Str "assertion"; J.Str m ]
  | Engine.Sync_misuse m -> J.Arr [ J.Str "sync"; J.Str m ]
  | Engine.Resource m -> J.Arr [ J.Str "resource"; J.Str m ]
  | Engine.Uncaught m -> J.Arr [ J.Str "uncaught"; J.Str m ]

let failure_of_json = function
  | J.Arr [ J.Str "assertion"; J.Str m ] -> Engine.Assertion m
  | J.Arr [ J.Str "sync"; J.Str m ] -> Engine.Sync_misuse m
  | J.Arr [ J.Str "resource"; J.Str m ] -> Engine.Resource m
  | J.Arr [ J.Str "uncaught"; J.Str m ] -> Engine.Uncaught m
  | _ -> CK.fail "bad failure"

(* Unlike {!Report.cex_to_json} (which drops the rendering from the public
   report), the wire form keeps all three fields: the parent prints the
   counterexample the child rendered. *)
let cex_to_json (c : Report.counterexample) =
  J.Obj
    [ ("rendered", J.Str c.Report.rendered);
      ("decisions",
       J.Arr (List.map (fun (t, a) -> J.Arr [ J.Int t; J.Int a ]) c.Report.decisions));
      ("length", J.Int c.Report.length) ]

let cex_of_json o =
  { Report.rendered = CK.str_f o "rendered";
    decisions =
      List.map
        (function
          | J.Arr [ J.Int t; J.Int a ] -> (t, a)
          | _ -> CK.fail "bad cex decision")
        (CK.arr_f o "decisions");
    length = CK.int_f o "length" }

let op_of_json j =
  match Op.of_json j with Ok op -> op | Error e -> CK.fail "%s" e

let race_to_json (r : AH.race) =
  J.Obj
    [ ("detector", J.Str r.AH.detector);
      ("obj", J.Int r.obj);
      ("obj_name", J.Str r.obj_name);
      ("a_tid", J.Int r.a_tid);
      ("a_step", J.Int r.a_step);
      ("a_op", Op.to_json r.a_op);
      ("b_tid", J.Int r.b_tid);
      ("b_step", J.Int r.b_step);
      ("b_op", Op.to_json r.b_op);
      ("rendered", J.Str r.rendered);
      ("decisions",
       J.Arr (List.map (fun (t, a) -> J.Arr [ J.Int t; J.Int a ]) r.decisions));
      ("length", J.Int r.length) ]

let race_of_json o =
  { AH.detector = CK.str_f o "detector";
    obj = CK.int_f o "obj";
    obj_name = CK.str_f o "obj_name";
    a_tid = CK.int_f o "a_tid";
    a_step = CK.int_f o "a_step";
    a_op = op_of_json (CK.field o "a_op");
    b_tid = CK.int_f o "b_tid";
    b_step = CK.int_f o "b_step";
    b_op = op_of_json (CK.field o "b_op");
    rendered = CK.str_f o "rendered";
    decisions =
      List.map
        (function
          | J.Arr [ J.Int t; J.Int a ] -> (t, a)
          | _ -> CK.fail "bad race decision")
        (CK.arr_f o "decisions");
    length = CK.int_f o "length" }

let verdict_to_json = function
  | Report.Verified -> J.Obj [ ("kind", J.Str "verified") ]
  | Report.Limits_reached -> J.Obj [ ("kind", J.Str "limits") ]
  | Report.Safety_violation { tid; failure; cex } ->
    J.Obj
      [ ("kind", J.Str "safety");
        ("tid", J.Int tid);
        ("failure", failure_to_json failure);
        ("cex", cex_to_json cex) ]
  | Report.Deadlock { cex } ->
    J.Obj [ ("kind", J.Str "deadlock"); ("cex", cex_to_json cex) ]
  | Report.Divergence { kind; cex } ->
    J.Obj
      [ ("kind", J.Str "divergence");
        ("divergence",
         match kind with
         | Report.Fair_nontermination -> J.Str "fair"
         | Report.Good_samaritan_violation t -> J.Arr [ J.Str "gs"; J.Int t ]);
        ("cex", cex_to_json cex) ]
  | Report.Race { race; cex } ->
    J.Obj
      [ ("kind", J.Str "race"); ("race", race_to_json race); ("cex", cex_to_json cex) ]
  | Report.Crash { reason; cex } ->
    J.Obj
      [ ("kind", J.Str "crash"); ("reason", J.Str reason); ("cex", cex_to_json cex) ]

let verdict_of_json o =
  match CK.str_f o "kind" with
  | "verified" -> Report.Verified
  | "limits" -> Report.Limits_reached
  | "safety" ->
    Report.Safety_violation
      { tid = CK.int_f o "tid";
        failure = failure_of_json (CK.field o "failure");
        cex = cex_of_json (CK.field o "cex") }
  | "deadlock" -> Report.Deadlock { cex = cex_of_json (CK.field o "cex") }
  | "divergence" ->
    Report.Divergence
      { kind =
          (match CK.field o "divergence" with
           | J.Str "fair" -> Report.Fair_nontermination
           | J.Arr [ J.Str "gs"; J.Int t ] -> Report.Good_samaritan_violation t
           | _ -> CK.fail "bad divergence kind");
        cex = cex_of_json (CK.field o "cex") }
  | "race" ->
    Report.Race
      { race = race_of_json (CK.field o "race"); cex = cex_of_json (CK.field o "cex") }
  | "crash" ->
    Report.Crash
      { reason = CK.str_f o "reason"; cex = cex_of_json (CK.field o "cex") }
  | k -> CK.fail "unknown verdict kind %S" k

(* Analysis travels as its edge set only; the per-part cycles are a pure
   function of the edges ([AH.cycles]) and are recomputed on decode, exactly
   as the in-domain shard computes them locally. *)
let report_to_json (r : Report.t) =
  J.Obj
    [ ("verdict", verdict_to_json r.Report.verdict);
      ("stats", CK.stats_to_json r.Report.stats);
      ("metrics", CK.metrics_to_json r.Report.metrics);
      ("analysis",
       CK.opt_to_json
         (fun (a : Report.analysis) -> CK.edges_to_json a.Report.lock_order_edges)
         r.Report.analysis) ]

let report_of_json o =
  { Report.verdict = verdict_of_json (CK.field o "verdict");
    stats = CK.stats_of_json (CK.field o "stats");
    metrics = CK.metrics_of_json "metrics" (CK.field o "metrics");
    analysis =
      CK.opt_of_json
        (fun v ->
          let edges = CK.edges_of_json "analysis" v in
          { Report.lock_order_edges = edges;
            potential_deadlock_cycles = AH.cycles edges })
        (CK.field o "analysis") }

(* ------------------------------------------------------------------ *)
(* Request/response codec.                                             *)

let request_to_json = function
  | Run { q_index; q_attempt; q_time_left } ->
    J.Obj
      [ ("op", J.Str "run");
        ("index", J.Int q_index);
        ("attempt", J.Int q_attempt);
        ("time_left", CK.opt_to_json (fun f -> J.Float f) q_time_left) ]
  | Quit -> J.Obj [ ("op", J.Str "quit") ]

let request_of_json o =
  match CK.str_f o "op" with
  | "run" ->
    Run
      { q_index = CK.int_f o "index";
        q_attempt = CK.int_f o "attempt";
        q_time_left = CK.opt_of_json (CK.as_float "time_left") (CK.field o "time_left") }
  | "quit" -> Quit
  | op -> CK.fail "unknown request %S" op

let response_to_json r =
  J.Obj
    [ ("protocol", J.Str protocol);
      ("index", J.Int r.r_index);
      ("attempt", J.Int r.r_attempt);
      ("report", report_to_json r.r_report);
      ("states", CK.states_to_json r.r_states);
      ("events",
       J.Arr
         (List.map
            (fun (det, kind, data) ->
              J.Obj [ ("det", J.Bool det); ("kind", J.Str kind); ("data", data) ])
            r.r_events)) ]

let response_of_json o =
  let p = CK.str_f o "protocol" in
  if p <> protocol then CK.fail "protocol mismatch: %S (expected %S)" p protocol;
  { r_index = CK.int_f o "index";
    r_attempt = CK.int_f o "attempt";
    r_report = report_of_json (CK.field o "report");
    r_states = CK.states_of_json "states" (CK.field o "states");
    r_events =
      List.map
        (fun e -> (CK.bool_f e "det", CK.str_f e "kind", CK.field e "data"))
        (CK.arr_f o "events") }

(* ------------------------------------------------------------------ *)
(* Framing.                                                            *)

(* A response is bounded by the item's subtree (counterexample rendering
   dominates); anything past this is a protocol violation, not data. *)
let max_frame = 64 * 1024 * 1024

let write_all fd buf =
  let n = Bytes.length buf in
  let off = ref 0 in
  while !off < n do
    let w = Retry.eintr (fun () -> Unix.write fd buf !off (n - !off)) in
    if w <= 0 then raise (Sys_error "worker pipe: short write");
    off := !off + w
  done

let frame j =
  let payload = J.to_string j in
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  Bytes.blit_string (Printf.sprintf "%08x" n) 0 b 0 8;
  Bytes.blit_string payload 0 b 8 n;
  b

let send fd j = write_all fd (frame j)

(* Fault injection ([--inject-fault slowpipe]): same bytes, trickled in
   small delayed chunks to exercise the parent's partial-frame reassembly. *)
let send_slowly ?(chunks = 8) ?(delay = 0.01) fd j =
  let b = frame j in
  let n = Bytes.length b in
  let step = max 1 ((n + chunks - 1) / chunks) in
  let off = ref 0 in
  while !off < n do
    let len = min step (n - !off) in
    write_all fd (Bytes.sub b !off len);
    off := !off + len;
    if !off < n then Retry.sleepf delay
  done

let parse_len hex =
  match int_of_string_opt ("0x" ^ hex) with
  | Some len when len >= 0 && len <= max_frame -> Ok len
  | Some len -> Error (Printf.sprintf "frame length %d exceeds %d" len max_frame)
  | None -> Error (Printf.sprintf "garbled frame header %S" hex)

(* Blocking reads for the child side of the pipes. *)

let read_exact fd buf off len =
  let got = ref 0 and eof = ref false in
  while (not !eof) && !got < len do
    let r = Retry.eintr (fun () -> Unix.read fd buf (off + !got) (len - !got)) in
    if r = 0 then eof := true else got := !got + r
  done;
  !got

let recv fd =
  let hdr = Bytes.create 8 in
  match read_exact fd hdr 0 8 with
  | 0 -> Ok None
  | n when n < 8 -> Error "truncated frame header"
  | _ ->
    (match parse_len (Bytes.to_string hdr) with
     | Error _ as e -> e
     | Ok len ->
       let payload = Bytes.create len in
       if read_exact fd payload 0 len < len then Error "truncated frame payload"
       else
         (match J.of_string (Bytes.to_string payload) with
          | Error e -> Error ("frame payload is not JSON: " ^ e)
          | Ok j -> Ok (Some j)))

(* Incremental reassembly for the parent side: one [read(2)] per [feed]
   (driven by select readiness), frames extracted as they complete. *)

type inbuf = { mutable data : Bytes.t; mutable len : int }

let inbuf () = { data = Bytes.create 65536; len = 0 }

let feed t fd =
  if Bytes.length t.data - t.len < 4096 then begin
    let bigger = Bytes.create (2 * Bytes.length t.data) in
    Bytes.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  let r = Retry.eintr (fun () -> Unix.read fd t.data t.len (Bytes.length t.data - t.len)) in
  if r = 0 then `Eof
  else begin
    t.len <- t.len + r;
    `Data r
  end

let extract t =
  if t.len < 8 then Ok None
  else
    match parse_len (Bytes.sub_string t.data 0 8) with
    | Error _ as e -> e
    | Ok len ->
      if t.len < 8 + len then Ok None
      else begin
        let payload = Bytes.sub_string t.data 8 len in
        let rest = t.len - 8 - len in
        Bytes.blit t.data (8 + len) t.data 0 rest;
        t.len <- rest;
        match J.of_string payload with
        | Error e -> Error ("frame payload is not JSON: " ^ e)
        | Ok j -> Ok (Some j)
      end
