(** Shared context between the engine and the {!Sync} user API.

    Threads under test communicate with the engine by performing the
    {!extension-Sched} effect at every visible operation; the engine parks
    the continuation and later resumes it with the operation's result. The
    mutable context below carries side-band data (spawn bodies, results,
    state-snapshot hooks) for the current execution. It is stored in
    domain-local state: each domain runs at most one engine at a time, and
    within a domain exactly one of {engine, one thread} executes at any
    instant, so plain mutable fields are safe. The parallel search layer
    ({!Par_search}) relies on this to run one engine per worker domain. *)

type _ Effect.t +=
  | Sched : Op.t -> int Effect.t
        (** Performed by a thread at each scheduling point. The integer reply
            encodes the operation result: 0/1 for booleans, the chosen
            alternative for [Choose]. *)

exception Assertion_failure of string
(** Raised by [Sync.check]; reported as a safety violation with the trace. *)

type ctx = {
  mutable store : Objects.t option;
      (** Sync-object store of the execution being built or run. *)
  mutable in_thread : bool;
      (** True while control is inside a thread under test (effects are
          handled). *)
  mutable current_tid : int;
  mutable spawn_body : (unit -> unit) option;
      (** Set by [Sync.spawn] immediately before performing [Spawn]; captured
          by the engine's handler at park time (so interleaved spawns cannot
          clobber each other). *)
  mutable spawn_result : int;
      (** Tid of the most recently created thread; read by [Sync.spawn]
          immediately after its effect returns, before any other thread can
          run. *)
  mutable snapshotters : (Fairmc_util.Fnv.t -> Fairmc_util.Fnv.t) list;
      (** State-signature contributions registered during [boot] (e.g. by
          [Sync.Svar.create ~hash]); folded into every state signature. *)
  regions : (int, int) Hashtbl.t;
      (** Per-thread control-region registers (see [Sync.at]): a manual
          control abstraction hashed into state signatures, the analogue of
          the paper's hand-written state extraction (§4.2.1). Cleared by
          [reset]. *)
}

val ctx : unit -> ctx
(** The calling domain's context (created on first use). *)

val get_store : unit -> Objects.t
(** @raise Failure outside [boot]/execution. *)

val reset : Objects.t -> ctx
(** Install a fresh store in the calling domain's context, clear all
    side-band state, and return the context (engine use). *)
