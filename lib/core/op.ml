type obj = int

type t =
  | Lock of obj
  | Try_lock of obj
  | Timed_lock of obj
  | Unlock of obj
  | Sem_wait of obj
  | Sem_try_wait of obj
  | Sem_timed_wait of obj
  | Sem_post of obj
  | Ev_wait of obj
  | Ev_timed_wait of obj
  | Ev_set of obj
  | Ev_reset of obj
  | Var_read of obj
  | Var_write of obj
  | Var_rmw of obj
  | Yield
  | Sleep
  | Join of int
  | Spawn
  | Choose of int

let obj_of = function
  | Lock o | Try_lock o | Timed_lock o | Unlock o
  | Sem_wait o | Sem_try_wait o | Sem_timed_wait o | Sem_post o
  | Ev_wait o | Ev_timed_wait o | Ev_set o | Ev_reset o
  | Var_read o | Var_write o | Var_rmw o -> Some o
  | Yield | Sleep | Join _ | Spawn | Choose _ -> None

let is_blocking_kind = function
  | Lock _ | Sem_wait _ | Ev_wait _ | Join _ -> true
  | Try_lock _ | Timed_lock _ | Unlock _ | Sem_try_wait _ | Sem_timed_wait _
  | Sem_post _ | Ev_timed_wait _ | Ev_set _ | Ev_reset _
  | Var_read _ | Var_write _ | Var_rmw _ | Yield | Sleep | Spawn | Choose _ -> false

let alternatives = function Choose n -> n | _ -> 1

let pp ppf = function
  | Lock o -> Format.fprintf ppf "lock(#%d)" o
  | Try_lock o -> Format.fprintf ppf "trylock(#%d)" o
  | Timed_lock o -> Format.fprintf ppf "timedlock(#%d)" o
  | Unlock o -> Format.fprintf ppf "unlock(#%d)" o
  | Sem_wait o -> Format.fprintf ppf "sem_wait(#%d)" o
  | Sem_try_wait o -> Format.fprintf ppf "sem_trywait(#%d)" o
  | Sem_timed_wait o -> Format.fprintf ppf "sem_timedwait(#%d)" o
  | Sem_post o -> Format.fprintf ppf "sem_post(#%d)" o
  | Ev_wait o -> Format.fprintf ppf "ev_wait(#%d)" o
  | Ev_timed_wait o -> Format.fprintf ppf "ev_timedwait(#%d)" o
  | Ev_set o -> Format.fprintf ppf "ev_set(#%d)" o
  | Ev_reset o -> Format.fprintf ppf "ev_reset(#%d)" o
  | Var_read o -> Format.fprintf ppf "read(#%d)" o
  | Var_write o -> Format.fprintf ppf "write(#%d)" o
  | Var_rmw o -> Format.fprintf ppf "rmw(#%d)" o
  | Yield -> Format.fprintf ppf "yield"
  | Sleep -> Format.fprintf ppf "sleep"
  | Join t -> Format.fprintf ppf "join(t%d)" t
  | Spawn -> Format.fprintf ppf "spawn"
  | Choose n -> Format.fprintf ppf "choose(%d)" n

let to_string op = Format.asprintf "%a" pp op

let kind_index = function
  | Lock _ -> 0
  | Try_lock _ -> 1
  | Timed_lock _ -> 2
  | Unlock _ -> 3
  | Sem_wait _ -> 4
  | Sem_try_wait _ -> 5
  | Sem_timed_wait _ -> 6
  | Sem_post _ -> 7
  | Ev_wait _ -> 8
  | Ev_timed_wait _ -> 9
  | Ev_set _ -> 10
  | Ev_reset _ -> 11
  | Var_read _ -> 12
  | Var_write _ -> 13
  | Var_rmw _ -> 14
  | Yield -> 15
  | Sleep -> 16
  | Join _ -> 17
  | Spawn -> 18
  | Choose _ -> 19

let kind_names =
  [| "lock"; "trylock"; "timedlock"; "unlock"; "sem_wait"; "sem_trywait";
     "sem_timedwait"; "sem_post"; "ev_wait"; "ev_timedwait"; "ev_set"; "ev_reset";
     "var_read"; "var_write"; "var_rmw"; "yield"; "sleep"; "join"; "spawn"; "choose" |]

let n_kinds = Array.length kind_names

let kind_name i =
  if i < 0 || i >= n_kinds then invalid_arg "Op.kind_name";
  kind_names.(i)

(* Wire form (worker IPC, race reports): obj-carrying operations are
   ["<kind>", obj]; [Join]/[Choose] carry their tid/arity the same way;
   the nullary ones are bare kind strings. *)

module Json = Fairmc_util.Json

let to_json op =
  match obj_of op with
  | Some o -> Json.Arr [ Json.Str (kind_name (kind_index op)); Json.Int o ]
  | None ->
    (match op with
     | Join t -> Json.Arr [ Json.Str "join"; Json.Int t ]
     | Choose n -> Json.Arr [ Json.Str "choose"; Json.Int n ]
     | op -> Json.Str (kind_name (kind_index op)))

let of_kind_obj k o =
  match k with
  | "lock" -> Some (Lock o)
  | "trylock" -> Some (Try_lock o)
  | "timedlock" -> Some (Timed_lock o)
  | "unlock" -> Some (Unlock o)
  | "sem_wait" -> Some (Sem_wait o)
  | "sem_trywait" -> Some (Sem_try_wait o)
  | "sem_timedwait" -> Some (Sem_timed_wait o)
  | "sem_post" -> Some (Sem_post o)
  | "ev_wait" -> Some (Ev_wait o)
  | "ev_timedwait" -> Some (Ev_timed_wait o)
  | "ev_set" -> Some (Ev_set o)
  | "ev_reset" -> Some (Ev_reset o)
  | "var_read" -> Some (Var_read o)
  | "var_write" -> Some (Var_write o)
  | "var_rmw" -> Some (Var_rmw o)
  | "join" -> Some (Join o)
  | "choose" -> Some (Choose o)
  | _ -> None

let of_json j =
  let bad () = Error "malformed op" in
  match j with
  | Json.Str "yield" -> Ok Yield
  | Json.Str "sleep" -> Ok Sleep
  | Json.Str "spawn" -> Ok Spawn
  | Json.Arr [ Json.Str k; Json.Int o ] ->
    (match of_kind_obj k o with Some op -> Ok op | None -> bad ())
  | _ -> bad ()
