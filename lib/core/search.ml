module B = Fairmc_util.Bitset
module Rng = Fairmc_util.Rng
module J = Fairmc_util.Json
module C = Search_config
module Obs = Fairmc_obs
module M = Fairmc_obs.Metrics
module AH = Analysis_hook

type alt = { tid : int; alt : int; cost : int }

type frame = {
  mutable chosen : alt;
  mutable rest : alt list;
  mutable sleep : B.t;
  width : int;
      (* branching factor when the node was pushed (before siblings were
         consumed) — the Estimator probe weight of every leaf below *)
  cum : int;
      (* cumulative Estimator weight down to this frame: the ancestor product
         of [1/width], maintained at push so a completed path reads its leaf
         weight in O(1) *)
}

(* A locked scheduling decision handed to a parallel work item: the worker
   replays the prefix and explores only the subtree below it ([rest] of every
   prefix frame is empty, so backtracking can never leave the subtree). The
   sleep set is the one the sequential DFS would carry at the moment it
   enters this child, which depends only on the order of elder siblings —
   this is what makes the parallel decomposition exact. *)
type pdecision = {
  p_tid : int;
  p_alt : int;
  p_cost : int;
  p_sleep : B.t;
  p_width : int;
}

(* Why a path ended. *)
type path_end =
  | P_terminated
  | P_deadlock
  | P_safety of int * Engine.failure
  | P_divergence of Report.divergence_kind
  | P_nonterminating  (* hit the hard step cap *)
  | P_pruned  (* depth bound without random tail, or CB/sleep-set pruning *)
  | P_stopped  (* wall-clock budget exhausted or cancelled by a peer *)
  | P_frontier  (* parallel expansion: the split depth was reached *)

(* Pre-registered instruments: registered once per search (or shard), so hot
   paths pay a single [option] branch plus a mutable store per event. Only
   allocated when [cfg.metrics] is set — with observability off, [meters] is
   [None] and no registry exists (see DESIGN.md, "Observability"). *)
type meters = {
  reg : M.t;
  m_replay_steps : M.counter;  (* prefix decisions re-applied after backtrack *)
  m_fresh_steps : M.counter;  (* new systematic decision points *)
  m_sampled_steps : M.counter;  (* random-walk / rr / prio / random-tail steps *)
  m_path_len : M.histogram;  (* steps per execution *)
  m_sched_size : M.histogram;  (* |T| at each scheduling point *)
  m_e_size : M.histogram;  (* chosen thread's E window after its step *)
  m_d_size : M.histogram;
  m_s_size : M.histogram;
  m_pri_edges : M.gauge;  (* peak |P| *)
  m_ops : M.counter array;  (* per Op.kind transition counts *)
  m_ctx_switches : M.counter;
  m_fair_obs : Fair_sched.obs;  (* priority-relation update accounting *)
  m_span_replay : M.histogram;  (* per-path prefix-replay latency, µs *)
  m_span_fresh : M.histogram;  (* per-path fresh-execution latency, µs *)
  m_span_analysis : M.histogram;  (* per-path analysis-observer latency, µs *)
  m_span_ckpt : M.histogram;  (* checkpoint-save latency, µs *)
}

let make_meters () =
  let reg = M.create () in
  { reg;
    m_replay_steps = M.counter reg "search/steps/replay";
    m_fresh_steps = M.counter reg "search/steps/fresh";
    m_sampled_steps = M.counter reg "search/steps/sampled";
    m_path_len = M.histogram reg "search/path_length";
    m_sched_size = M.histogram reg "sched/schedulable_size";
    m_e_size = M.histogram reg "sched/window/e_size";
    m_d_size = M.histogram reg "sched/window/d_size";
    m_s_size = M.histogram reg "sched/window/s_size";
    m_pri_edges = M.gauge reg "sched/priority_edges_peak";
    m_ops = Array.init Op.n_kinds (fun k -> M.counter reg ("engine/op/" ^ Op.kind_name k));
    m_ctx_switches = M.counter reg "engine/context_switches";
    m_fair_obs = Fair_sched.obs_create ();
    m_span_replay = M.histogram reg (Obs.Span.hist_name "replay");
    m_span_fresh = M.histogram reg (Obs.Span.hist_name "fresh");
    m_span_analysis = M.histogram reg (Obs.Span.hist_name "analysis");
    m_span_ckpt = M.histogram reg (Obs.Span.hist_name "checkpoint_save") }

(* Cumulative totals carried over from a checkpoint being resumed. The
   session itself counts from zero; the prior is folded in at every boundary
   capture and in the final report ({!totals}). *)
type prior = {
  pr_stats : Report.stats;
  pr_metrics : M.Snapshot.t;
  pr_edges : AH.lock_edge list;
}

(* Checkpoint-writing control for this search ([--checkpoint FILE]). The
   boundary snapshot is (re)captured at every path start; writes are
   throttled by [ck_interval] and forced once when the search stops. *)
type ckpt_ctl = {
  ck_path : string;
  ck_interval : float;
  mutable ck_last : float;
  mutable ck_boundary : Checkpoint.seq_state option;
}

type state = {
  cfg : C.t;
  prog : Program.t;
  mutable frames : frame array;
  mutable nframes : int;
  states : (int64, unit) Hashtbl.t;
  rng : Rng.t;
  t0 : float;
  deadline : float;  (* absolute; [infinity] when unlimited *)
  poll_mask : int;
  cancel : unit -> bool;
  shared_execs : int Atomic.t option;  (* cross-domain execution counter *)
  shared_mass : int Atomic.t option;  (* cross-domain Estimator probe mass *)
  frontier_at : int;  (* cut fresh decisions at this depth; [max_int] = never *)
  probe_denom : int;  (* sampling: original (unsharded) budget; 0 = systematic *)
  meters : meters option;
  progress : Obs.Progress.t option;
  events : Obs.Events.buf option;  (* shard-local telemetry batch buffer *)
  span_buf : Obs.Events.buf option;
      (* [events] again iff the stream collects (trace export wants per-path
         span slices); [None] for a plain streaming sink, which then pays
         only one path event per execution *)
  analysis : AH.instance list;  (* this shard's dynamic-analysis instances *)
  mutable prior : prior option;  (* resumed-session totals to merge in *)
  mutable ckpt : ckpt_ctl option;  (* only set by [Search.run], never shards *)
  mutable probe_mass : int;  (* this session's accumulated Estimator mass *)
  mutable analysis_us : int;  (* current path's analysis-observer time *)
  mutable executions : int;
  mutable transitions : int;
  mutable nonterminating : int;
  mutable depth_bound_hits : int;
  mutable sleep_set_prunes : int;
  mutable conflict_hits : int;  (* static conflict table reported a conflict *)
  mutable yields : int;
  mutable max_depth : int;
  mutable first_error_execution : int option;
  mutable first_error_time : float option;
  mutable sync_ops_per_exec : int;
  mutable max_threads : int;
}

let dummy_frame =
  { chosen = { tid = 0; alt = 0; cost = 0 };
    rest = [];
    sleep = B.empty;
    width = 1;
    cum = Obs.Estimator.one }

let push_frame st fr =
  if st.nframes = Array.length st.frames then begin
    let a = Array.make (max 64 (2 * st.nframes)) dummy_frame in
    Array.blit st.frames 0 a 0 st.nframes;
    st.frames <- a
  end;
  st.frames.(st.nframes) <- fr;
  st.nframes <- st.nframes + 1

(* Leaf weight of the current stack: [Estimator.one] above an empty stack. *)
let top_weight st =
  if st.nframes = 0 then Obs.Estimator.one else st.frames.(st.nframes - 1).cum

(* All elapsed-time accounting funnels through the one (monotonic-ish) clock
   of the observability layer; [t0] is captured from it too, so [elapsed]
   cannot go negative and deadline checks cannot flap under clock steps. *)
let elapsed st = Obs.Clock.elapsed ~since:st.t0

let out_of_time st = Obs.Clock.now () > st.deadline

(* Cancellation (parallel first-error-wins) and the process-wide graceful
   interrupt (SIGINT/SIGTERM via Checkpoint) are folded into the same poll. *)
let stopped st = out_of_time st || st.cancel () || Checkpoint.interrupted ()

(* Search-wide totals for a progress sample: the shared cross-domain atomics
   under parallel search, this session's counters plus any resumed prior
   otherwise. *)
let progress_totals st =
  let prior_execs, prior_mass =
    match st.prior with
    | Some p -> (p.pr_stats.Report.executions, p.pr_stats.Report.probe_mass)
    | None -> (0, 0)
  in
  let executions =
    match st.shared_execs with Some c -> Atomic.get c | None -> st.executions + prior_execs
  in
  let mass =
    match st.shared_mass with Some a -> Atomic.get a | None -> st.probe_mass + prior_mass
  in
  (executions, mass)

let progress_sample st () =
  let executions, mass = progress_totals st in
  let el = elapsed st in
  { Obs.Progress.executions;
    elapsed = el;
    jobs = max 1 st.cfg.C.jobs;
    phase = "search";
    completion = (if mass > 0 then Some (Obs.Estimator.completion ~mass) else None);
    est_total = Obs.Estimator.est_total ~mass ~executions;
    eta = Obs.Estimator.eta ~mass ~elapsed:el }

let maybe_tick st =
  match st.progress with
  | None -> ()
  | Some p -> Obs.Progress.tick p (progress_sample st)

(* Poll points share one clock read: tick the progress reporter, then check
   the deadline and the peer-cancellation flag. *)
let poll st =
  maybe_tick st;
  stopped st

(* The sinks of a search's progress reporter; [None] when progress reporting
   is off. The parallel search builds this once and shares it across shards
   so the emission throttle is search-wide. *)
let progress_of_cfg (cfg : C.t) =
  let sinks =
    (if cfg.C.progress then [ Obs.Progress.stderr_sink ] else [])
    @ (match cfg.C.on_progress with Some f -> [ f ] | None -> [])
  in
  if sinks = [] then None
  else Some (Obs.Progress.create ~interval:cfg.C.progress_interval ~sinks ())

let mask_of_interval n =
  let n = max 1 n in
  let rec go m = if m >= n then m - 1 else go (m * 2) in
  go 1

(* Sampling modes weigh every execution [1/original-budget]; parallel shards
   carry shrunk budgets in their own [cfg], so Par_search passes the original
   explicitly via [?probe_denom]. Systematic modes use 0: leaf weights come
   from the frame widths instead. *)
let default_probe_denom (cfg : C.t) =
  match cfg.C.mode with
  | C.Dfs | C.Context_bounded _ -> 0
  | C.Random_walk n | C.Priority_random n -> max 1 n
  | C.Round_robin -> 1

let make_state ?(cancel = fun () -> false) ?deadline ?rng ?(prefix = [||])
    ?shared_execs ?shared_mass ?probe_denom ?(frontier_at = max_int) ?(shard = 0)
    ?progress (cfg : C.t) prog =
  let deadline =
    match deadline with
    | Some d -> d
    | None ->
      (match cfg.time_limit with
       | None -> infinity
       | Some l -> Obs.Clock.now () +. l)
  in
  let nprefix = Array.length prefix in
  let frames = Array.make (max 64 nprefix) dummy_frame in
  let w = ref Obs.Estimator.one in
  Array.iteri
    (fun i (p : pdecision) ->
      w := Obs.Estimator.descend !w p.p_width;
      frames.(i) <-
        { chosen = { tid = p.p_tid; alt = p.p_alt; cost = p.p_cost };
          rest = [];
          sleep = p.p_sleep;
          width = p.p_width;
          cum = !w })
    prefix;
  let events = Option.map (fun s -> Obs.Events.buffer s ~shard) cfg.events in
  { cfg;
    prog;
    frames;
    nframes = nprefix;
    states = Hashtbl.create 4096;
    rng = (match rng with Some r -> r | None -> Rng.make cfg.seed);
    t0 = Obs.Clock.now ();
    deadline;
    poll_mask = mask_of_interval cfg.poll_interval;
    cancel;
    shared_execs;
    shared_mass;
    frontier_at;
    probe_denom = (match probe_denom with Some d -> d | None -> default_probe_denom cfg);
    meters = (if cfg.metrics then Some (make_meters ()) else None);
    progress;
    events;
    span_buf =
      (match cfg.events with
       | Some s when Obs.Events.collecting s -> events
       | _ -> None);
    analysis = List.map (fun (a : AH.t) -> a.create ()) cfg.analyses;
    prior = None;
    ckpt = None;
    probe_mass = 0;
    analysis_us = 0;
    executions = 0;
    transitions = 0;
    nonterminating = 0;
    depth_bound_hits = 0;
    sleep_set_prunes = 0;
    conflict_hits = 0;
    yields = 0;
    max_depth = 0;
    first_error_execution = None;
    first_error_time = None;
    sync_ops_per_exec = 0;
    max_threads = 0 }

(* Debug/analysis hook: receives (signature, decision prefix) for every
   recorded state. Used by the coverage cross-checking tests (sequential
   searches only). *)
let state_hook : (int64 -> Engine.t -> unit) option ref = ref None

let record_state st run =
  if st.cfg.coverage then begin
    let s = Engine.state_signature run in
    Hashtbl.replace st.states s ();
    match !state_hook with None -> () | Some f -> f s run
  end

(* Alternatives at a fresh systematic node, ordered current-thread-first,
   with context-switch costs and the sleep-set filter applied. Preempting an
   enabled, schedulable current thread costs one unit of the context bound;
   switches forced by fairness or blocking are free (paper, Section 4), and
   so are switches right after the current thread yielded — a yield is a
   voluntary release of the processor, not a preemption. Built in one pass
   over the bitset, allocating only the result cells (this is the hottest
   allocation site of the systematic search). *)
let compute_alts st ~tset ~sleep ~last ~last_yielded ~budget run =
  let cur_in = last >= 0 && B.mem last tset in
  let cur_runnable = cur_in && not last_yielded in
  let for_tid tid tail =
    if st.cfg.sleep_sets && B.mem tid sleep then tail
    else begin
      let cost = if tid = last then 0 else if cur_runnable then 1 else 0 in
      if cost > budget then tail
      else begin
        let n = Engine.alternatives run tid in
        let rec cons alt = if alt >= n then tail else { tid; alt; cost } :: cons (alt + 1) in
        cons 0
      end
    end
  in
  let rec others s tail =
    if B.is_empty s then tail
    else begin
      let tid = B.min_elt s in
      let rest = B.remove tid s in
      if tid = last then others rest tail else for_tid tid (others rest tail)
    end
  in
  (* Prefer staying on the current thread (cheap, finds terminating paths
     early) — except right after it yielded, where switching is the natural
     continuation. *)
  if last_yielded then others tset (if cur_in then for_tid last [] else [])
  else if cur_in then for_tid last (others tset [])
  else others tset []

(* Deterministic good-samaritan culprit over [(tid, times_scheduled,
   yielded_in_window)] entries: the most-scheduled thread, non-yielders
   outranking yielders, ties broken by lowest tid. (Previously the max was
   taken under [Hashtbl.fold], whose iteration order — and hence the blamed
   tid on equal scores — was unspecified.) Exposed for the regression test. *)
let good_samaritan_culprit entries =
  fst
    (List.fold_left
       (fun (best, bn) (tid, n, yielded) ->
         let score = if yielded then n else n + 1_000_000 in
         if score > bn || (score = bn && tid < best) then (tid, score) else (best, bn))
       (-1, min_int) entries)

(* Classify a divergent (livelock-bound-exceeding) fair execution by its
   tail: if an enabled thread was starved by non-yielding threads it is a
   good-samaritan violation; otherwise the tail is fair — a livelock. *)
let classify_divergence st run : Report.divergence_kind =
  let tr = Engine.trace run in
  let evs = Trace.last_n tr (min st.cfg.tail_window (Trace.length tr)) in
  let scheduled = Hashtbl.create 16 and yielders = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace scheduled e.tid
        (1 + Option.value ~default:0 (Hashtbl.find_opt scheduled e.tid));
      if e.yielded then Hashtbl.replace yielders e.tid ())
    evs;
  let es = Engine.enabled_set run in
  let starved = B.filter (fun t -> not (Hashtbl.mem scheduled t)) es in
  if B.is_empty starved then Report.Fair_nontermination
  else begin
    (* Blame the most-scheduled thread, preferring one that never yielded in
       the window. *)
    let entries =
      Hashtbl.fold (fun tid n acc -> (tid, n, Hashtbl.mem yielders tid) :: acc) scheduled []
    in
    Report.Good_samaritan_violation (good_samaritan_culprit entries)
  end

let render_cex ?(tail = false) st run =
  let tr = Engine.trace run in
  let names = Objects.pp_obj (Engine.store run) in
  let tail_n =
    if tail then Some st.cfg.tail_window
    else if Trace.length tr > 400 then Some 400
    else None
  in
  let rendered = Format.asprintf "@[<v>%a@]" (Trace.pp ?tail:tail_n ~names) tr in
  { Report.rendered; decisions = Trace.decisions tr; length = Trace.length tr }

(* Execute one path: replay the frame prefix (systematic modes), then extend
   with fresh decisions until the path ends. *)
let execute_path st ~systematic =
  let run = Engine.start st.prog in
  List.iter (fun (i : AH.instance) -> i.exec_start run) st.analysis;
  Fun.protect ~finally:(fun () -> Engine.stop run) @@ fun () ->
  let cfg = st.cfg in
  let spans_on = Option.is_some st.meters || Option.is_some st.span_buf in
  let nframes0 = st.nframes in
  let t_path = Obs.Span.start () in
  (* Set at the first non-replay decision: splits the path's wall time into
     its replay and fresh segments. *)
  let t_fresh = ref None in
  let fair = ref (Fair_sched.create ~nthreads:(Engine.nthreads run) ~k:cfg.fair_k ()) in
  let budget = ref (match cfg.mode with C.Context_bounded c -> c | _ -> max_int) in
  let last = ref (-1) in
  let last_yielded = ref false in
  let depth = ref 0 in
  let crossed_db = ref false in
  let rr_next = ref 0 in
  (* Sleep set of the next fresh node, computed when its parent's decision is
     applied (we need the parent state's pending operations). *)
  let pending_sleep = ref B.empty in
  let livelock_bound =
    if cfg.fair then Option.value cfg.livelock_bound ~default:cfg.max_steps else max_int
  in
  record_state st run;
  let apply (a : alt) =
    if cfg.sleep_sets && systematic && !depth > 0 && !depth = st.nframes then begin
      (* The next node is fresh: derive its sleep set from this node's. *)
      let fr = st.frames.(!depth - 1) in
      match Engine.pending run a.tid with
      | None -> pending_sleep := B.empty
      | Some op_a ->
        let facts = st.prog.Program.facts in
        pending_sleep :=
          B.filter
            (fun u ->
              match Engine.pending run u with
              | None -> false
              | Some op_u ->
                let indep =
                  Indep.independent ?facts ~t1:a.tid ~op1:op_a ~t2:u ~op2:op_u
                    ~fair:cfg.fair ()
                in
                (* Count dependencies the static table finds beyond the
                   syntactic rule (each fresh node is derived exactly once
                   search-wide, so the counter sums jobs-invariantly). *)
                (match facts with
                 | Some f
                   when (not indep)
                        && Static_facts.conflict f ~t1:a.tid ~op1:op_a ~t2:u ~op2:op_u
                        && Option.is_some (Op.obj_of op_a)
                        && Option.is_some (Op.obj_of op_u)
                        && Op.obj_of op_a <> Op.obj_of op_u ->
                   st.conflict_hits <- st.conflict_hits + 1
                 | _ -> ());
                indep)
            fr.sleep
    end
    else pending_sleep := B.empty;
    let es_before = Engine.enabled_set run in
    let yielded = Engine.would_yield run a.tid in
    let nth_before = Engine.nthreads run in
    budget := !budget - a.cost;
    Engine.step run ~tid:a.tid ~alt:a.alt;
    for _ = nth_before + 1 to Engine.nthreads run do
      fair := Fair_sched.add_thread !fair
    done;
    if cfg.fair then begin
      let es_after = Engine.enabled_set run in
      (match st.meters with
       | None -> fair := Fair_sched.step !fair ~chosen:a.tid ~yielded ~es_before ~es_after
       | Some m ->
         fair :=
           Fair_sched.step ~obs:m.m_fair_obs !fair ~chosen:a.tid ~yielded ~es_before
             ~es_after;
         M.set_max m.m_pri_edges (Fair_sched.edge_count !fair);
         let e, d, s = Fair_sched.sets !fair ~tid:a.tid in
         M.observe m.m_e_size (B.cardinal e);
         M.observe m.m_d_size (B.cardinal d);
         M.observe m.m_s_size (B.cardinal s))
    end;
    last := a.tid;
    last_yielded := yielded;
    if yielded then st.yields <- st.yields + 1;
    st.transitions <- st.transitions + 1;
    st.max_depth <- max st.max_depth (Engine.steps run);
    record_state st run
  in
  let random_from tset =
    let tid = B.nth tset (Rng.int st.rng (B.cardinal tset)) in
    let alts = Engine.alternatives run tid in
    { tid; alt = (if alts = 1 then 0 else Rng.int st.rng alts); cost = 0 }
  in
  let sample tset =
    match cfg.mode with
    | C.Random_walk _ -> random_from tset
    | C.Round_robin ->
      let n = Engine.nthreads run in
      let rec find i =
        let tid = i mod n in
        if B.mem tid tset then tid else find (i + 1)
      in
      let tid = find !rr_next in
      rr_next := tid + 1;
      { tid; alt = 0; cost = 0 }
    | C.Priority_random _ ->
      (* Apt–Olderog-style: fresh random priorities every step. *)
      let best = ref (-1) and best_p = ref min_int in
      B.iter
        (fun tid ->
          let p = Rng.int st.rng 1_000_000 in
          if p > !best_p then begin best := tid; best_p := p end)
        tset;
      let alts = Engine.alternatives run !best in
      { tid = !best; alt = (if alts = 1 then 0 else Rng.int st.rng alts); cost = 0 }
    | C.Dfs | C.Context_bounded _ -> assert false
  in
  let rec loop () =
    match Engine.failure run with
    | Some (tid, f) -> P_safety (tid, f)
    | None ->
      if Engine.all_finished run then P_terminated
      else begin
        let es = Engine.enabled_set run in
        if B.is_empty es then P_deadlock
        else begin
          let steps = Engine.steps run in
          if cfg.fair && steps >= livelock_bound then
            P_divergence (classify_divergence st run)
          else if steps >= cfg.max_steps then P_nonterminating
          else if steps land st.poll_mask = st.poll_mask && poll st then P_stopped
          else begin
            let tset = if cfg.fair then Fair_sched.schedulable !fair ~enabled:es else es in
            (* Theorem 3: T is empty iff ES is empty. *)
            assert (not (B.is_empty tset));
            (match st.meters with
             | Some m -> M.observe m.m_sched_size (B.cardinal tset)
             | None -> ());
            if systematic && !depth < st.nframes then begin
              (match st.meters with Some m -> M.incr m.m_replay_steps | None -> ());
              let fr = st.frames.(!depth) in
              incr depth;
              apply fr.chosen;
              loop ()
            end
            else if not systematic then begin
              (match st.meters with Some m -> M.incr m.m_sampled_steps | None -> ());
              if spans_on && Option.is_none !t_fresh then
                t_fresh := Some (Obs.Span.start ());
              apply (sample tset);
              loop ()
            end
            else if st.nframes >= st.frontier_at then
              (* Parallel expansion: everything below this node is one work
                 item; do not extend (nor count) this path. *)
              P_frontier
            else begin
              let beyond_db =
                (not cfg.fair)
                && (match cfg.depth_bound with Some db -> steps >= db | None -> false)
              in
              if beyond_db then begin
                if not !crossed_db then begin
                  st.depth_bound_hits <- st.depth_bound_hits + 1;
                  crossed_db := true
                end;
                if cfg.random_tail then begin
                  (match st.meters with Some m -> M.incr m.m_sampled_steps | None -> ());
                  if spans_on && Option.is_none !t_fresh then
                    t_fresh := Some (Obs.Span.start ());
                  apply (random_from tset);
                  loop ()
                end
                else P_pruned
              end
              else begin
                match
                  compute_alts st ~tset ~sleep:!pending_sleep ~last:!last
                    ~last_yielded:!last_yielded ~budget:!budget run
                with
                | [] ->
                  (* everything pruned by sleep sets *)
                  st.sleep_set_prunes <- st.sleep_set_prunes + 1;
                  if Sys.getenv_opt "FAIRMC_DEBUG" <> None then
                    Format.eprintf
                      "PRUNE: depth=%d nframes=%d steps=%d tset=%a last=%d budget=%d@."
                      !depth st.nframes steps B.pp tset !last !budget;
                  P_pruned
                | a :: rest ->
                  (match st.meters with Some m -> M.incr m.m_fresh_steps | None -> ());
                  if spans_on && Option.is_none !t_fresh then
                    t_fresh := Some (Obs.Span.start ());
                  let width = 1 + List.length rest in
                  push_frame st
                    { chosen = a;
                      rest;
                      sleep = !pending_sleep;
                      width;
                      cum = Obs.Estimator.descend (top_weight st) width };
                  incr depth;
                  apply a;
                  loop ()
              end
            end
          end
        end
      end
  in
  let outcome = loop () in
  if Sys.getenv_opt "FAIRMC_DEBUG" <> None then begin
    let ends = match outcome with
      | P_terminated -> "term" | P_deadlock -> "dead" | P_safety _ -> "safe"
      | P_divergence _ -> "div" | P_nonterminating -> "nonterm" | P_pruned -> "pruned"
      | P_stopped -> "stopped" | P_frontier -> "frontier" in
    Format.eprintf "path[%s len=%d]: %s@." ends (Engine.steps run)
      (String.concat "" (List.map (fun (t, _) -> string_of_int t) (Trace.decisions (Engine.trace run))))
  end;
  if spans_on then begin
    let t_end = Obs.Span.start () in
    let total_us = Obs.Span.elapsed_us_between t_path t_end in
    let hist f = Option.map f st.meters in
    let replay_us, fresh_us =
      match !t_fresh with
      | Some tf ->
        let f = Obs.Span.elapsed_us_between tf t_end in
        (max 0 (total_us - f), Some f)
      | None -> (total_us, None)
    in
    if systematic && nframes0 > 0 then
      Obs.Span.record ?hist:(hist (fun m -> m.m_span_replay)) ?events:st.span_buf
        ~phase:"replay" ~dur_us:replay_us ();
    match fresh_us with
    | Some f ->
      Obs.Span.record ?hist:(hist (fun m -> m.m_span_fresh)) ?events:st.span_buf
        ~phase:"fresh" ~dur_us:f ()
    | None -> ()
  end;
  st.sync_ops_per_exec <- max st.sync_ops_per_exec (Engine.sync_ops run);
  st.max_threads <- max st.max_threads (Engine.nthreads run);
  (outcome, run)

(* Advance the DFS to the next unexplored decision; false when exhausted.
   Prefix frames of a parallel work item have an empty [rest], so the walk
   falls off the bottom of the stack exactly when the subtree is done. *)
let backtrack st =
  let rec go () =
    if st.nframes = 0 then false
    else begin
      let fr = st.frames.(st.nframes - 1) in
      match fr.rest with
      | [] ->
        st.nframes <- st.nframes - 1;
        go ()
      | a :: rest ->
        if st.cfg.sleep_sets && a.tid <> fr.chosen.tid then
          fr.sleep <- B.add fr.chosen.tid fr.sleep;
        fr.chosen <- a;
        fr.rest <- rest;
        true
    end
  in
  go ()

let stats_of st =
  { Report.executions = st.executions;
    transitions = st.transitions;
    states = Hashtbl.length st.states;
    nonterminating = st.nonterminating;
    depth_bound_hits = st.depth_bound_hits;
    sleep_set_prunes = st.sleep_set_prunes;
    yields = st.yields;
    max_depth = st.max_depth;
    elapsed = elapsed st;
    first_error_execution = st.first_error_execution;
    first_error_time = st.first_error_time;
    sync_ops_per_exec = st.sync_ops_per_exec;
    max_threads = st.max_threads;
    search_elapsed = elapsed st;
    probe_mass = st.probe_mass }

(* Export the plain search statistics and the fair-scheduler accounting as
   derived entries over a registry snapshot. Derived quantities that depend
   on wall time or on the shard layout are gauges, never counters — the
   counter slice of a snapshot is deterministic across [jobs] (tested). Pure
   with respect to the registry: the checkpoint layer takes one snapshot per
   path boundary, so exporting must not mutate the instruments. *)
let metrics_of st =
  match st.meters with
  | None -> M.Snapshot.empty
  | Some m ->
    let snap = ref (M.snapshot m.reg) in
    let c name v = snap := M.Snapshot.with_counter !snap name v in
    c "search/executions" st.executions;
    c "search/transitions" st.transitions;
    c "search/nonterminating" st.nonterminating;
    c "search/prunes/depth_bound" st.depth_bound_hits;
    c "search/prunes/sleep_set" st.sleep_set_prunes;
    c "sched/yields" st.yields;
    c "sched/priority_edges_added" m.m_fair_obs.Fair_sched.edges_added;
    c "sched/priority_edges_removed" m.m_fair_obs.Fair_sched.edges_removed;
    c "sched/priority_penalties" m.m_fair_obs.Fair_sched.penalties;
    c "search/probe_mass" st.probe_mass;
    c "static/conflict_hits" st.conflict_hits;
    let g name v = snap := M.Snapshot.with_gauge !snap name v in
    (* A program constant, exported as a gauge (merged by max) so it stays
       jobs- and resume-invariant. *)
    (match st.prog.Program.facts with
     | Some f -> g "static/invisible_merged" (Static_facts.merged_sites f)
     | None -> ());
    g "search/max_depth" st.max_depth;
    g "search/max_threads" st.max_threads;
    g "search/states" (Hashtbl.length st.states);
    g "time/shard_busy_us" (int_of_float (elapsed st *. 1e6));
    !snap

let is_systematic (cfg : C.t) =
  match cfg.mode with
  | C.Dfs | C.Context_bounded _ -> true
  | C.Random_walk _ | C.Round_robin | C.Priority_random _ -> false

(* Earliest race reported by any analysis instance so far (by step of the
   completing access; polled after every path — no allocation when clean). *)
let first_race_of st =
  List.fold_left
    (fun acc (i : AH.instance) ->
      match (acc, i.AH.first_race ()) with
      | None, x -> x
      | (Some _ as a), None -> a
      | Some (a : AH.race), Some b -> Some (if b.b_step < a.b_step then b else a))
    None st.analysis

(* Final analysis results of this shard: the report's [analysis] field plus
   the per-analysis counters to splice into the metrics snapshot. *)
let analysis_report st =
  match st.analysis with
  | [] -> (None, [])
  | insts ->
    let combined = AH.combine (List.map (fun (i : AH.instance) -> i.AH.result ()) insts) in
    ( Some
        { Report.lock_order_edges = combined.AH.lock_edges;
          potential_deadlock_cycles = AH.cycles combined.AH.lock_edges },
      combined.AH.counters )

(* This session's report pieces — stats, metrics with the per-analysis
   counters spliced in, analysis results — with any resumed prior totals
   folded in. Pure; taken once per path boundary when checkpointing. *)
let totals st =
  let analysis, acounters = analysis_report st in
  let metrics =
    List.fold_left (fun m (k, v) -> M.Snapshot.with_counter m k v) (metrics_of st) acounters
  in
  let stats = stats_of st in
  match st.prior with
  | None -> (stats, metrics, analysis)
  | Some p ->
    let stats = Checkpoint.merge_stats ~prior:p.pr_stats stats in
    let metrics = M.Snapshot.merge p.pr_metrics metrics in
    let analysis =
      match analysis with
      | None -> None
      | Some (a : Report.analysis) ->
        let edges = AH.dedup_edges (p.pr_edges @ a.Report.lock_order_edges) in
        Some { Report.lock_order_edges = edges; potential_deadlock_cycles = AH.cycles edges }
    in
    (stats, Report.fix_lockgraph_counters metrics analysis, analysis)

(* Snapshot the DFS stack plus cumulative totals — what a resume needs to
   continue with the next unexplored path. Frames are deep-copied (the
   backtracking mutates them in place); coverage signatures are filled in at
   write time, where the table is only read (recording is idempotent, so a
   resumed session re-recording a partial path's states converges to the
   same union as the uninterrupted run). *)
let capture_boundary st =
  let dec (a : alt) = { Checkpoint.c_tid = a.tid; c_alt = a.alt; c_cost = a.cost } in
  let frames =
    Array.init st.nframes (fun i ->
        let fr = st.frames.(i) in
        { Checkpoint.c_chosen = dec fr.chosen;
          c_rest = List.map dec fr.rest;
          c_sleep = fr.sleep;
          c_width = fr.width })
  in
  let stats, metrics, analysis = totals st in
  let edges =
    match analysis with Some a -> a.Report.lock_order_edges | None -> []
  in
  { Checkpoint.sq_frames = frames;
    sq_rng = Rng.state st.rng;
    sq_stats = stats;
    sq_metrics = metrics;
    sq_states = [];
    sq_edges = edges;
    sq_complete = false }

let write_checkpoint st ck (b : Checkpoint.seq_state) ~complete =
  let states =
    if st.cfg.C.coverage then
      List.sort Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) st.states [])
    else []
  in
  ck.ck_last <- Obs.Clock.now ();
  let t = Obs.Span.start () in
  let saved =
    Checkpoint.save_result ck.ck_path
      { Checkpoint.fingerprint = Checkpoint.fingerprint st.cfg ~program:st.prog.Program.name;
        payload =
          Checkpoint.Seq { b with Checkpoint.sq_states = states; sq_complete = complete } }
  in
  (match (st.meters, st.events) with
   | None, None -> ()
   | _ ->
     Obs.Span.record
       ?hist:(Option.map (fun m -> m.m_span_ckpt) st.meters)
       ?events:st.events ~phase:"checkpoint_save" ~dur_us:(Obs.Span.elapsed_us t) ());
  match saved with
  | Ok () ->
    (match st.events with
     | Some buf ->
       Obs.Events.emit buf ~kind:"checkpoint"
         (J.Obj [ ("file", J.Str ck.ck_path); ("complete", J.Bool complete) ])
     | None -> ())
  | Error msg ->
    (* The previous checkpoint is intact; warn (advisory event + stderr via
       [Checkpoint.save_result]'s caller contract) and keep searching. *)
    Printf.eprintf "fairmc: checkpoint save failed: %s (keeping the previous checkpoint)\n%!"
      msg;
    (match st.events with
     | Some buf ->
       Obs.Events.emit buf ~kind:"checkpoint_error"
         (J.Obj [ ("file", J.Str ck.ck_path); ("error", J.Str msg) ])
     | None -> ())

(* Schedule fingerprint for path events: FNV-1a-style folding in native-int
   arithmetic — the Int64 {!Fnv} is boxed and costs over a microsecond per
   path here. One multiply per decision; the hash is a deterministic
   correlation identifier, nothing more, and it rides the event as a plain
   JSON int (decimal renders cheaper than hex-in-a-string). *)
let schedule_hash tr =
  let len = Trace.length tr in
  let h = ref 0x4BF29CE484222325 in
  for i = 0 to len - 1 do
    let e = Trace.get tr i in
    h := (!h lxor (e.Trace.tid + (e.Trace.alt lsl 20))) * 0x100000001B3
  done;
  !h land max_int

let run_loop_body st =
  let cfg = st.cfg in
  let systematic = is_systematic cfg in
  let sampling_budget =
    match cfg.mode with
    | C.Random_walk n | C.Priority_random n -> n
    | C.Round_robin -> 1
    | C.Dfs | C.Context_bounded _ -> max_int
  in
  let verdict = ref None in
  (* Where the search stood when a [Limits_reached] stop hit, relative to the
     boundary snapshot: at it, inside the following path, or after completing
     a whole path — this decides what the final checkpoint must record. *)
  let stop_at = ref `Boundary in
  let mark_error () =
    st.first_error_execution <- Some st.executions;
    st.first_error_time <- Some (elapsed st)
  in
  while !verdict = None do
    (* Path boundary: (re)capture the resume snapshot and do a throttled
       checkpoint write. *)
    (match st.ckpt with
     | None -> ()
     | Some ck ->
       let b = capture_boundary st in
       ck.ck_boundary <- Some b;
       if Obs.Clock.now () -. ck.ck_last >= ck.ck_interval then
         write_checkpoint st ck b ~complete:false);
    (* Poll the wall clock and the peer-cancellation flag at every path
       start, so short time budgets cannot overshoot by a whole path. *)
    if poll st then begin
      verdict := Some Report.Limits_reached;
      stop_at := `Boundary
    end
    else begin
      let outcome, run_ = execute_path st ~systematic in
      st.executions <- st.executions + 1;
      (match st.shared_execs with Some c -> Atomic.incr c | None -> ());
      (* Knuth probe: this leaf's weight is the product of [1/width] over its
         ancestor frames (systematic), or [1/budget] (sampling). Exact
         fixed-point division, so the sum is jobs-deterministic. *)
      let mass =
        if systematic then top_weight st
        else Obs.Estimator.descend Obs.Estimator.one st.probe_denom
      in
      st.probe_mass <- st.probe_mass + mass;
      (match st.shared_mass with
       | Some a -> ignore (Atomic.fetch_and_add a mass)
       | None -> ());
      (match st.meters with
       | None -> ()
       | Some m ->
         let ops = Engine.op_counts run_ in
         Array.iteri (fun k n -> if n > 0 then M.add m.m_ops.(k) n) ops;
         M.add m.m_ctx_switches (Engine.context_switches run_);
         M.observe m.m_path_len (Trace.length (Engine.trace run_)));
      if st.analysis_us > 0 then begin
        Obs.Span.record
          ?hist:(Option.map (fun m -> m.m_span_analysis) st.meters)
          ?events:st.span_buf ~phase:"analysis" ~dur_us:st.analysis_us ();
        st.analysis_us <- 0
      end;
      (match st.events with
       | None -> ()
       | Some buf ->
         let end_name, det =
           match outcome with
           | P_terminated -> ("terminated", true)
           | P_deadlock -> ("deadlock", true)
           | P_safety _ -> ("safety", true)
           | P_divergence _ -> ("divergence", true)
           | P_nonterminating -> ("nonterminating", true)
           | P_pruned -> ("pruned", true)
           | P_stopped -> ("stopped", false)
           | P_frontier -> ("frontier", false)
         in
         let tr = Engine.trace run_ in
         Obs.Events.emit_path buf ~det ~end_:end_name ~steps:(Trace.length tr)
           ~schedule:(schedule_hash tr));
      (match outcome with
       | P_terminated | P_pruned -> ()
       | P_frontier -> assert false  (* only produced under [expand] *)
       | P_deadlock ->
         mark_error ();
         verdict := Some (Report.Deadlock { cex = render_cex st run_ })
       | P_safety (tid, failure) ->
         mark_error ();
         verdict := Some (Report.Safety_violation { tid; failure; cex = render_cex st run_ })
       | P_divergence kind ->
         mark_error ();
         verdict := Some (Report.Divergence { kind; cex = render_cex ~tail:true st run_ })
       | P_nonterminating -> st.nonterminating <- st.nonterminating + 1
       | P_stopped ->
         verdict := Some Report.Limits_reached;
         stop_at := `Mid_path);
      (* An analysis-reported race ends the search like an engine-detected
         error. An engine error on the same path takes precedence (both
         rules are deterministic, so jobs=1 and jobs=N agree); a race beats
         a mere budget stop. *)
      (match !verdict with
       | None | Some Report.Limits_reached ->
         (match first_race_of st with
          | Some race ->
            mark_error ();
            verdict :=
              Some
                (Report.Race
                   { race;
                     cex =
                       { Report.rendered = race.AH.rendered;
                         decisions = race.AH.decisions;
                         length = race.AH.length } })
          | None -> ())
       | Some _ -> ());
      if !verdict = None then begin
        (match cfg.max_executions with
         | Some m ->
           let total =
             match st.shared_execs with
             | Some c -> Atomic.get c
             | None -> st.executions
           in
           if total >= m then begin
             verdict := Some Report.Limits_reached;
             stop_at := `After_path
           end
         | None -> ());
        if !verdict = None && stopped st then begin
          verdict := Some Report.Limits_reached;
          stop_at := `After_path
        end
      end;
      if !verdict = None then begin
        if systematic then begin
          if not (backtrack st) then verdict := Some Report.Verified
        end
        else if st.executions >= sampling_budget then begin
          verdict := Some Report.Limits_reached;
          stop_at := `After_path
        end
      end;
      (* Path boundary: publish this path's event batch. The erroring
         verdicts are themselves deterministic, so the error event is part
         of the [det] slice. *)
      (match (st.events, !verdict) with
       | ( Some buf,
           Some
             (( Report.Safety_violation _ | Report.Deadlock _ | Report.Divergence _
              | Report.Race _ ) as v) ) ->
         Obs.Events.emit buf ~det:true ~kind:"error"
           (J.Obj [ ("verdict", J.Str (Report.verdict_key v)) ])
       | _ -> ());
      match st.events with Some b -> Obs.Events.flush b | None -> ()
    end
  done;
  let final_verdict = Option.get !verdict in
  (* Final checkpoint flush. Where the resume should pick up depends on how
     the stop relates to the last boundary snapshot: a stop at the boundary
     or mid-path flushes the pre-path snapshot (the partial path is excluded
     and re-executed in full by the resume); a stop after a completed path
     must first advance past it — if backtracking fails there is nothing
     left and the session is complete. Sampling modes resume by remaining
     budget, so a budget stop stays [complete:false] (a later session may
     extend the budget). *)
  (match st.ckpt with
   | None -> ()
   | Some ck ->
     (match final_verdict with
      | Report.Limits_reached ->
        (match !stop_at with
         | `Boundary | `Mid_path ->
           let b =
             match ck.ck_boundary with Some b -> b | None -> capture_boundary st
           in
           write_checkpoint st ck b ~complete:false
         | `After_path ->
           if systematic then begin
             if backtrack st then
               write_checkpoint st ck (capture_boundary st) ~complete:false
             else write_checkpoint st ck (capture_boundary st) ~complete:true
           end
           else write_checkpoint st ck (capture_boundary st) ~complete:false)
      | _ -> write_checkpoint st ck (capture_boundary st) ~complete:true));
  (* The final checkpoint may have queued an advisory event after the last
     path-boundary flush. *)
  (match st.events with Some b -> Obs.Events.flush b | None -> ());
  let stats, metrics, analysis = totals st in
  { Report.verdict = final_verdict; stats; metrics; analysis }

(* Install the shard's analysis instances as the domain's step observer for
   the duration of the loop. Cleared on every exit path: a leaked observer
   would bill later searches on this domain to these instances. *)
let run_loop st =
  match st.analysis with
  | [] -> run_loop_body st
  | insts ->
    let base =
      match insts with
      | [ i ] -> i.AH.observe
      | _ ->
        fun ~tid ~op ~result ->
          List.iter (fun (i : AH.instance) -> i.AH.observe ~tid ~op ~result) insts
    in
    let observe =
      (* With telemetry on, bill observer time to the per-path "analysis"
         span (two clock reads per observed transition — only when the user
         opted into metrics or span collection). *)
      if Option.is_some st.meters || Option.is_some st.span_buf then
        fun ~tid ~op ~result ->
          let t = Obs.Span.start () in
          base ~tid ~op ~result;
          st.analysis_us <- st.analysis_us + Obs.Span.elapsed_us t
      else base
    in
    Engine.set_observer (Some observe);
    Fun.protect ~finally:(fun () -> Engine.set_observer None) (fun () -> run_loop_body st)

(* Executions left for a resumed session: the mode's sampling budget and
   [max_executions] both count across sessions. [max_int] when unlimited. *)
let remaining_budget (cfg : C.t) prior_execs =
  let mode_left =
    match cfg.mode with
    | C.Random_walk n | C.Priority_random n -> n - prior_execs
    | C.Round_robin -> 1 - prior_execs
    | C.Dfs | C.Context_bounded _ -> max_int
  in
  let cap_left =
    match cfg.max_executions with Some m -> m - prior_execs | None -> max_int
  in
  min mode_left cap_left

(* The resumed session runs only the remaining budget; [totals] then folds
   the prior totals back in, so the merged report matches an uninterrupted
   run with the original budgets. *)
let adjust_budgets (cfg : C.t) prior_execs =
  let clamp n = max 0 n in
  let mode =
    match cfg.mode with
    | C.Random_walk n -> C.Random_walk (clamp (n - prior_execs))
    | C.Priority_random n -> C.Priority_random (clamp (n - prior_execs))
    | (C.Round_robin | C.Dfs | C.Context_bounded _) as m -> m
  in
  let max_executions = Option.map (fun m -> clamp (m - prior_execs)) cfg.max_executions in
  { cfg with C.mode; max_executions }

(* Coordinator lifecycle events, shared with Par_search. [run_start]'s data
   deliberately excludes [jobs] and budget fields: the det slice must be
   identical between a jobs=1 and a jobs=4 run of the same search. *)
let post_run_start (cfg : C.t) (prog : Program.t) =
  match cfg.C.events with
  | None -> ()
  | Some s ->
    Obs.Events.post s ~shard:(-1) ~det:true ~kind:"run_start"
      (J.Obj
         [ ("program", J.Str prog.Program.name);
           ("mode", J.Str (C.mode_name cfg.C.mode));
           ("fair", J.Bool cfg.C.fair);
           ("seed", J.Str (Printf.sprintf "0x%Lx" cfg.C.seed));
           ("interp", J.Str (C.interp_name cfg.C.interp)) ])

let post_run_end (cfg : C.t) (r : Report.t) =
  match cfg.C.events with
  | None -> ()
  | Some s ->
    (* Final totals are jobs-invariant for systematic searches that ran to a
       verdict; a budget/time stop cuts the tree at a nondeterministic point. *)
    let det =
      is_systematic cfg
      && (match r.Report.verdict with Report.Limits_reached -> false | _ -> true)
    in
    Obs.Events.post s ~shard:(-1) ~det ~kind:"run_end"
      (J.Obj
         [ ("verdict", J.Str (Report.verdict_key r.Report.verdict));
           ("executions", J.Int r.Report.stats.Report.executions);
           ("transitions", J.Int r.Report.stats.Report.transitions);
           ("probe_mass", J.Int r.Report.stats.Report.probe_mass) ])

(* Resuming with no budget left: the prior totals are already the answer. *)
let report_of_prior (cfg : C.t) (sq : Checkpoint.seq_state) =
  let analysis =
    if cfg.analyses = [] then None
    else
      Some
        { Report.lock_order_edges = sq.Checkpoint.sq_edges;
          potential_deadlock_cycles = AH.cycles sq.Checkpoint.sq_edges }
  in
  { Report.verdict = Report.Limits_reached;
    stats = sq.Checkpoint.sq_stats;
    metrics = sq.Checkpoint.sq_metrics;
    analysis }

let run ?resume cfg prog =
  match resume with
  | Some (sq : Checkpoint.seq_state)
    when remaining_budget cfg sq.Checkpoint.sq_stats.Report.executions <= 0 ->
    let r = report_of_prior cfg sq in
    post_run_start cfg prog;
    post_run_end cfg r;
    r
  | _ ->
    post_run_start cfg prog;
    let progress = progress_of_cfg cfg in
    let cfg_run, rng =
      match resume with
      | None -> (cfg, None)
      | Some sq ->
        ( adjust_budgets cfg sq.Checkpoint.sq_stats.Report.executions,
          Some (Rng.of_state sq.Checkpoint.sq_rng) )
    in
    (* The probe denominator comes from the *original* config: a resumed
       sampling session runs a shrunk budget, but its paths still weigh
       [1/original] in the cross-session probe mass. *)
    let st = make_state ?rng ?progress ~probe_denom:(default_probe_denom cfg) cfg_run prog in
    (match resume with
     | None -> ()
     | Some sq ->
       (* Rebuild the DFS stack at the recorded path boundary: replaying the
          [chosen] decision of each frame reaches exactly the next
          unexplored path, as if the backtrack had just happened here. *)
       let alt_of (d : Checkpoint.decision) =
         { tid = d.Checkpoint.c_tid; alt = d.Checkpoint.c_alt; cost = d.Checkpoint.c_cost }
       in
       Array.iter
         (fun (fr : Checkpoint.frame) ->
           let width = fr.Checkpoint.c_width in
           push_frame st
             { chosen = alt_of fr.Checkpoint.c_chosen;
               rest = List.map alt_of fr.Checkpoint.c_rest;
               sleep = fr.Checkpoint.c_sleep;
               width;
               cum = Obs.Estimator.descend (top_weight st) width })
         sq.Checkpoint.sq_frames;
       (* Preload coverage so the union across sessions matches the
          uninterrupted run (recording is idempotent). *)
       if cfg.C.coverage then
         List.iter (fun s -> Hashtbl.replace st.states s ()) sq.Checkpoint.sq_states;
       st.prior <-
         Some
           { pr_stats = sq.Checkpoint.sq_stats;
             pr_metrics = sq.Checkpoint.sq_metrics;
             pr_edges = sq.Checkpoint.sq_edges });
    (match cfg.C.checkpoint with
     | None -> ()
     | Some path ->
       st.ckpt <-
         Some
           { ck_path = path;
             ck_interval = cfg.C.checkpoint_interval;
             ck_last = Obs.Clock.now ();
             ck_boundary = None });
    let report = run_loop st in
    (match progress with None -> () | Some p -> Obs.Progress.force p (progress_sample st));
    post_run_end cfg report;
    report

(* One shard of a parallel search: either a sampling worker (custom [rng]
   stream, sharded budget already folded into [cfg]) or a systematic work
   item (locked [prefix]). Returns the coverage table alongside the report so
   Par_search can union tables rather than summing cardinalities. *)
let run_shard ?cancel ?deadline ?rng ?prefix ?shared_execs ?shared_mass ?probe_denom
    ?shard ?progress cfg prog =
  let st =
    make_state ?cancel ?deadline ?rng ?prefix ?shared_execs ?shared_mass ?probe_denom
      ?shard ?progress cfg prog
  in
  (run_loop st, st.states)

(* Sequentially expand the systematic decision tree, cutting every path at
   [split_depth] fresh decisions. Each resulting prefix — whether it is an
   internal node (P_frontier) or a complete shallow path — is one work item,
   re-executed from the initial state by a worker; the expansion itself
   records no statistics, so the merged worker stats match the sequential
   search exactly. Items are returned in DFS order. *)
let expand ?deadline cfg prog ~split_depth =
  let st =
    make_state ?deadline ~frontier_at:(max 1 split_depth)
      (* Analyses are stripped too: workers re-execute every item, so
         expansion-time observation would double-count and make analysis
         results depend on the shard layout. *)
      { cfg with
        C.coverage = false;
        metrics = false;
        progress = false;
        on_progress = None;
        events = None;
        analyses = [] }
      prog
  in
  if not (is_systematic cfg) then invalid_arg "Search.expand: sampling mode";
  let random_tail_active =
    (not cfg.C.fair) && cfg.C.depth_bound <> None && cfg.C.random_tail
  in
  let items = ref [] in
  let timed_out = ref false in
  let continue_ = ref true in
  while !continue_ do
    if stopped st then begin
      timed_out := true;
      continue_ := false
    end
    else begin
      let outcome, _ = execute_path st ~systematic:true in
      let prefix =
        Array.init st.nframes (fun i ->
            let fr = st.frames.(i) in
            { p_tid = fr.chosen.tid;
              p_alt = fr.chosen.alt;
              p_cost = fr.chosen.cost;
              p_sleep = fr.sleep;
              p_width = fr.width })
      in
      items := prefix :: !items;
      match outcome with
      | (P_safety _ | P_deadlock | P_divergence _) when not random_tail_active ->
        (* Deterministic error below the split depth: the sequential DFS can
           never get past it, so later units are unreachable. (With a random
           tail the worker's re-roll may differ, so keep enumerating.) *)
        continue_ := false
      | P_stopped ->
        timed_out := true;
        continue_ := false
      | _ -> if not (backtrack st) then continue_ := false
    end
  done;
  (List.rev !items, !timed_out)

type replay_outcome =
  | Replayed_failure of Report.counterexample
  | Replayed_no_failure
  | Replay_mismatch of { step : int; tid : int }

let replay prog decisions callback =
  let run = Engine.start prog in
  Fun.protect ~finally:(fun () -> Engine.stop run) @@ fun () ->
  (* First decision that could not be applied (its thread had nothing
     pending or was disabled): the schedule does not fit this program, e.g.
     a stale repro file after the program changed. *)
  let mismatch = ref None in
  List.iteri
    (fun i (tid, alt) ->
      if !mismatch = None && Engine.failure run = None then begin
        match Engine.pending run tid with
        | Some _ when B.mem tid (Engine.enabled_set run) ->
          Engine.step run ~tid ~alt;
          callback run
        | _ -> mismatch := Some (i, tid)
      end)
    decisions;
  match Engine.failure run with
  | Some _ ->
    let names = Objects.pp_obj (Engine.store run) in
    let rendered = Format.asprintf "@[<v>%a@]" (Trace.pp ?tail:None ~names) (Engine.trace run) in
    Replayed_failure { Report.rendered; decisions; length = Trace.length (Engine.trace run) }
  | None ->
    (match !mismatch with
     | Some (step, tid) -> Replay_mismatch { step; tid }
     | None -> Replayed_no_failure)
