module Json = Fairmc_util.Json

type counterexample = {
  rendered : string;
  decisions : (int * int) list;
  length : int;
}

type divergence_kind =
  | Fair_nontermination
  | Good_samaritan_violation of int

type verdict =
  | Verified
  | Safety_violation of { tid : int; failure : Engine.failure; cex : counterexample }
  | Deadlock of { cex : counterexample }
  | Divergence of { kind : divergence_kind; cex : counterexample }
  | Race of { race : Analysis_hook.race; cex : counterexample }
  | Crash of { reason : string; cex : counterexample }
  | Limits_reached

type stats = {
  executions : int;
  transitions : int;
  states : int;
  nonterminating : int;
  depth_bound_hits : int;
  sleep_set_prunes : int;
  yields : int;
  max_depth : int;
  elapsed : float;
  first_error_execution : int option;
  first_error_time : float option;
  sync_ops_per_exec : int;
  max_threads : int;
  search_elapsed : float;
  probe_mass : int;
}

type analysis = {
  lock_order_edges : Analysis_hook.lock_edge list;
  potential_deadlock_cycles : (Op.obj * string) list list;
}

type t = {
  verdict : verdict;
  stats : stats;
  metrics : Fairmc_obs.Metrics.Snapshot.t;
  analysis : analysis option;
}

let found_error t =
  match t.verdict with
  | Safety_violation _ | Deadlock _ | Divergence _ | Race _ | Crash _ -> true
  | Verified | Limits_reached -> false

let verdict_name = function
  | Verified -> "verified"
  | Safety_violation _ -> "safety violation"
  | Deadlock _ -> "deadlock"
  | Divergence { kind = Fair_nontermination; _ } -> "livelock (fair nontermination)"
  | Divergence { kind = Good_samaritan_violation t; _ } ->
    Printf.sprintf "good-samaritan violation (thread %d)" t
  | Race { race; _ } -> Printf.sprintf "data race (%s) on %s" race.detector race.obj_name
  | Crash { reason; _ } -> Printf.sprintf "worker crash (%s)" reason
  | Limits_reached -> "limits reached"

(* The canonical short keys: exactly the EXPECTED column of `chess list` and
   the verdict selector of `chess sweep`. A round-trip test keeps the
   registry's expectation strings in sync with this function. *)
let verdict_key = function
  | Verified -> "verified"
  | Safety_violation _ -> "safety"
  | Deadlock _ -> "deadlock"
  | Divergence { kind = Fair_nontermination; _ } -> "livelock"
  | Divergence { kind = Good_samaritan_violation _; _ } -> "good-samaritan"
  | Race _ -> "race"
  | Crash _ -> "crash"
  | Limits_reached -> "limits"

let verdict_keys =
  [ "verified"; "safety"; "deadlock"; "livelock"; "good-samaritan"; "race"; "crash"; "limits" ]

let cex t =
  match t.verdict with
  | Safety_violation { cex; _ } | Deadlock { cex } | Divergence { cex; _ }
  | Race { cex; _ } | Crash { cex; _ } -> Some cex
  | Verified | Limits_reached -> None

(* Wall time of the search phase alone: the span-derived [search_elapsed]
   excludes startup work (parallel frontier expansion, program loading) that
   [elapsed] includes, so short runs are not inflated. Falls back to
   [elapsed] for stats that predate the field (old checkpoints). *)
let search_time s = if s.search_elapsed > 0. then s.search_elapsed else s.elapsed

let execs_per_sec s =
  let t = search_time s in
  if t > 0. then float_of_int s.executions /. t else 0.

let completion s = Fairmc_obs.Estimator.completion ~mass:s.probe_mass

let est_total s =
  Fairmc_obs.Estimator.est_total ~mass:s.probe_mass ~executions:s.executions

let eta s = Fairmc_obs.Estimator.eta ~mass:s.probe_mass ~elapsed:(search_time s)

(* The lock-graph counters are set-derived, so summing them across shards
   (or across a resumed session and its checkpointed prefix) would
   double-count shared edges; overwrite them from the merged union, keeping
   the counter slice jobs- and interruption-invariant like every other
   counter. *)
let fix_lockgraph_counters metrics analysis =
  let module MS = Fairmc_obs.Metrics.Snapshot in
  match analysis with
  | Some (a : analysis) when MS.find metrics "analysis/lockgraph/edges" <> None ->
    let m =
      MS.with_counter metrics "analysis/lockgraph/edges" (List.length a.lock_order_edges)
    in
    MS.with_counter m "analysis/lockgraph/cycles" (List.length a.potential_deadlock_cycles)
  | Some _ | None -> metrics

let pp_stats ppf s =
  Format.fprintf ppf
    "executions: %d, transitions: %d%s%s%s%s, max depth: %d, elapsed: %.3fs"
    s.executions s.transitions
    (if s.states > 0 then Printf.sprintf ", states: %d" s.states else "")
    (if s.nonterminating > 0 then Printf.sprintf ", nonterminating: %d" s.nonterminating else "")
    (if s.depth_bound_hits > 0 then Printf.sprintf ", depth-bound hits: %d" s.depth_bound_hits
     else "")
    (if s.sleep_set_prunes > 0 then Printf.sprintf ", sleep-set prunes: %d" s.sleep_set_prunes
     else "")
    s.max_depth s.elapsed

let pp_summary ppf t =
  Format.fprintf ppf "%s (%a, %.0f execs/s)" (verdict_name t.verdict) pp_stats t.stats
    (execs_per_sec t.stats)

let pp_cycle ppf cycle =
  let names = List.map snd cycle in
  Format.fprintf ppf "%s"
    (String.concat " -> " (names @ [ List.nth names 0 ]))

let pp ppf t =
  Format.fprintf ppf "@[<v>result: %s@,%a@]" (verdict_name t.verdict) pp_stats t.stats;
  let cex =
    match t.verdict with
    | Safety_violation { cex; failure; tid } ->
      Format.fprintf ppf "@,thread %d: %a" tid Engine.pp_failure failure;
      Some cex
    | Race { race; cex } ->
      Format.fprintf ppf
        "@,%s detector: thread %d %s (step %d) races with thread %d %s (step %d) on %s"
        race.detector race.a_tid (Op.to_string race.a_op) race.a_step race.b_tid
        (Op.to_string race.b_op) race.b_step race.obj_name;
      Some cex
    | Crash { reason; cex } ->
      Format.fprintf ppf "@,worker crash: %s" reason;
      Some cex
    | Deadlock { cex } | Divergence { cex; _ } -> Some cex
    | Verified | Limits_reached -> None
  in
  (match t.analysis with
   | Some { potential_deadlock_cycles = (_ :: _ as cycles); _ } ->
     Format.fprintf ppf "@,@[<v>potential deadlocks (lock-order cycles):%a@]"
       (fun ppf -> List.iter (Format.fprintf ppf "@,  %a" pp_cycle))
       cycles
   | Some _ | None -> ());
  match cex with
  | None -> ()
  | Some cex -> Format.fprintf ppf "@,@[<v>counterexample (%d steps):@,%s@]" cex.length cex.rendered

(* ------------------------------------------------------------------ *)
(* JSON export.                                                        *)

let opt_int = function None -> Json.Null | Some i -> Json.Int i
let opt_float = function None -> Json.Null | Some f -> Json.Float f

let stats_to_json s =
  Json.Obj
    [ ("executions", Json.Int s.executions);
      ("transitions", Json.Int s.transitions);
      ("states", Json.Int s.states);
      ("nonterminating", Json.Int s.nonterminating);
      ("depth_bound_hits", Json.Int s.depth_bound_hits);
      ("sleep_set_prunes", Json.Int s.sleep_set_prunes);
      ("yields", Json.Int s.yields);
      ("max_depth", Json.Int s.max_depth);
      ("elapsed_seconds", Json.Float s.elapsed);
      ("executions_per_second", Json.Float (execs_per_sec s));
      ("first_error_execution", opt_int s.first_error_execution);
      ("first_error_seconds", opt_float s.first_error_time);
      ("sync_ops_per_exec", Json.Int s.sync_ops_per_exec);
      ("max_threads", Json.Int s.max_threads);
      ("search_elapsed_seconds", Json.Float (search_time s));
      ("probe_mass", Json.Int s.probe_mass);
      ("completion", Json.Float (completion s));
      ("estimated_total_executions", opt_int (est_total s));
      ("eta_seconds", opt_float (eta s)) ]

let cex_to_json (c : counterexample) =
  Json.Obj
    [ ("length", Json.Int c.length);
      ("decisions",
       Json.Arr (List.map (fun (tid, alt) -> Json.Arr [ Json.Int tid; Json.Int alt ]) c.decisions)) ]

let verdict_to_json v =
  let kind, extra =
    match v with
    | Verified -> ("verified", [])
    | Limits_reached -> ("limits_reached", [])
    | Safety_violation { tid; failure; cex } ->
      ( "safety_violation",
        [ ("tid", Json.Int tid);
          ("failure", Json.Str (Format.asprintf "%a" Engine.pp_failure failure));
          ("counterexample", cex_to_json cex) ] )
    | Deadlock { cex } -> ("deadlock", [ ("counterexample", cex_to_json cex) ])
    | Crash { reason; cex } ->
      ("crash", [ ("reason", Json.Str reason); ("counterexample", cex_to_json cex) ])
    | Race { race; cex } ->
      ( "race",
        [ ("detector", Json.Str race.detector);
          ("object", Json.Obj [ ("id", Json.Int race.obj); ("name", Json.Str race.obj_name) ]);
          ("first",
           Json.Obj
             [ ("tid", Json.Int race.a_tid);
               ("step", Json.Int race.a_step);
               ("op", Json.Str (Op.to_string race.a_op)) ]);
          ("second",
           Json.Obj
             [ ("tid", Json.Int race.b_tid);
               ("step", Json.Int race.b_step);
               ("op", Json.Str (Op.to_string race.b_op)) ]);
          ("counterexample", cex_to_json cex) ] )
    | Divergence { kind; cex } ->
      ( "divergence",
        [ ("divergence_kind",
           match kind with
           | Fair_nontermination -> Json.Str "fair_nontermination"
           | Good_samaritan_violation t ->
             Json.Obj [ ("good_samaritan_violation", Json.Int t) ]);
          ("counterexample", cex_to_json cex) ] )
  in
  Json.Obj (("kind", Json.Str kind) :: extra)

let analysis_to_json (a : analysis) =
  let obj_json (id, name) = Json.Obj [ ("id", Json.Int id); ("name", Json.Str name) ] in
  Json.Obj
    [ ("lock_order_edges",
       Json.Arr
         (List.map
            (fun (e : Analysis_hook.lock_edge) ->
              Json.Obj
                [ ("from", obj_json (e.e_from, e.e_from_name));
                  ("to", obj_json (e.e_to, e.e_to_name)) ])
            a.lock_order_edges));
      ("potential_deadlock_cycles",
       Json.Arr
         (List.map (fun c -> Json.Arr (List.map obj_json c)) a.potential_deadlock_cycles)) ]

(* Schema history: /1 — initial; /2 — adds the "race" verdict kind, the
   top-level "analysis" object (when analyses ran), "verdict_key", and
   (additively, PR 7) the search-phase wall time and progress-estimate
   fields in "stats". The single source of truth for the tag is
   [schema_version]; nothing else in the tree spells the string out. *)
let schema_version = "fairmc-report/2"

let to_json ?program ?config ?lint t =
  let opt_str name v = match v with None -> [] | Some s -> [ (name, Json.Str s) ] in
  Json.Obj
    ([ ("schema", Json.Str schema_version) ]
     @ opt_str "program" program
     @ opt_str "config" config
     @ [ ("verdict", verdict_to_json t.verdict);
         ("verdict_key", Json.Str (verdict_key t.verdict));
         ("stats", stats_to_json t.stats);
         ("metrics", Fairmc_obs.Metrics.Snapshot.to_json t.metrics) ]
     @ (match t.analysis with
        | None -> []
        | Some a -> [ ("analysis", analysis_to_json a) ])
     (* Static-analysis summary (count + per-rule kinds), attached by the
        CLI when a ChessLang program runs with static analysis enabled. *)
     @ (match lint with None -> [] | Some j -> [ ("lint", j) ]))
