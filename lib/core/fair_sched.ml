module B = Fairmc_util.Bitset

type t = {
  n : int;
  k : int;
  p : B.t array;  (* p.(t) = { u | (t,u) ∈ P }: t runs only if all of p.(t) disabled *)
  e : B.t array;  (* E(t) *)
  d : B.t array;  (* D(t) *)
  s : B.t array;  (* S(t) *)
  yc : int array;  (* yields of t since its window sets were last reset (k-parameterization) *)
}

let fresh_window n = (B.empty, B.full n, B.full n)

let create ~nthreads ?(k = 1) () =
  if nthreads < 0 || nthreads > B.max_capacity then invalid_arg "Fair_sched.create";
  if k < 1 then invalid_arg "Fair_sched.create: k must be >= 1";
  let e = Array.make (max nthreads 1) B.empty
  and d = Array.make (max nthreads 1) B.empty
  and s = Array.make (max nthreads 1) B.empty in
  for t = 0 to nthreads - 1 do
    let et, dt, st = fresh_window nthreads in
    e.(t) <- et; d.(t) <- dt; s.(t) <- st
  done;
  { n = nthreads; k;
    p = Array.make (max nthreads 1) B.empty;
    e; d; s; yc = Array.make (max nthreads 1) 0 }

let nthreads t = t.n

let grow arr n fill =
  if n <= Array.length arr then Array.copy arr
  else begin
    let a = Array.make (max n (2 * Array.length arr)) fill in
    Array.blit arr 0 a 0 (Array.length arr);
    a
  end

let add_thread t =
  let n = t.n + 1 in
  if n > B.max_capacity then invalid_arg "Fair_sched.add_thread: too many threads";
  let p = grow t.p n B.empty
  and e = grow t.e n B.empty
  and d = grow t.d n B.empty
  and s = grow t.s n B.empty
  and yc = grow t.yc n 0 in
  let et, dt, st = fresh_window n in
  e.(n - 1) <- et; d.(n - 1) <- dt; s.(n - 1) <- st;
  p.(n - 1) <- B.empty;
  yc.(n - 1) <- 0;
  { t with n; p; e; d; s; yc }

(* T = ES \ pre(P, ES); pre(P, X) = { x | ∃y. (x,y) ∈ P ∧ y ∈ X }. *)
let schedulable t ~enabled =
  B.filter (fun x -> B.is_empty (B.inter t.p.(x) enabled)) enabled

let priority_blocked t ~enabled = B.diff enabled (schedulable t ~enabled)

type obs = {
  mutable edges_added : int;
  mutable edges_removed : int;
  mutable penalties : int;
}

let obs_create () = { edges_added = 0; edges_removed = 0; penalties = 0 }

let copy t =
  { t with
    p = Array.copy t.p; e = Array.copy t.e; d = Array.copy t.d;
    s = Array.copy t.s; yc = Array.copy t.yc }

(* Mutates [t] in place and returns it: the search holds a single scheduler
   cell per execution ([fair := Fair_sched.step !fair ...]) and recomputes it
   from scratch on every replay, so the previous value is always dead. Callers
   that need the old state (tests, [Search.expand] frontier snapshots) take an
   explicit [copy] first. *)
let step ?obs t ~chosen ~yielded ~es_before ~es_after =
  if chosen < 0 || chosen >= t.n then invalid_arg "Fair_sched.step: bad tid";
  let p = t.p and e = t.e and d = t.d and s = t.s and yc = t.yc in
  (* Line 13: remove all edges with sink [chosen]. *)
  for u = 0 to t.n - 1 do
    (match obs with
     | Some o when B.mem chosen p.(u) -> o.edges_removed <- o.edges_removed + 1
     | _ -> ());
    p.(u) <- B.remove chosen p.(u)
  done;
  (* Lines 14–22: window-set maintenance for every thread. *)
  let newly_disabled = B.diff es_before es_after in
  for u = 0 to t.n - 1 do
    e.(u) <- B.inter e.(u) es_after;
    if u = chosen then d.(u) <- B.union d.(u) newly_disabled;
    s.(u) <- B.add chosen s.(u)
  done;
  (* Lines 23–29: on a (k-th) yield of [chosen], penalize it against the
     threads it starved in the closing window, then open a new window. *)
  if yielded then begin
    yc.(chosen) <- yc.(chosen) + 1;
    if yc.(chosen) >= t.k then begin
      let h = B.diff (B.union e.(chosen) d.(chosen)) s.(chosen) in
      (match obs with
       | Some o ->
         o.penalties <- o.penalties + 1;
         o.edges_added <- o.edges_added + B.cardinal (B.diff h p.(chosen))
       | None -> ());
      p.(chosen) <- B.union p.(chosen) h;
      e.(chosen) <- es_after;
      d.(chosen) <- B.empty;
      s.(chosen) <- B.empty;
      yc.(chosen) <- 0
    end
  end;
  t

let edge_count t =
  let n = ref 0 in
  for x = 0 to t.n - 1 do
    n := !n + B.cardinal t.p.(x)
  done;
  !n

let priority_pairs t =
  let acc = ref [] in
  for x = t.n - 1 downto 0 do
    B.iter (fun y -> acc := (x, y) :: !acc) t.p.(x)
  done;
  List.rev !acc

let sets t ~tid =
  if tid < 0 || tid >= t.n then invalid_arg "Fair_sched.sets";
  (t.e.(tid), t.d.(tid), t.s.(tid))

(* DFS 3-coloring over the edge arrays. *)
let is_acyclic t =
  let color = Array.make (max t.n 1) 0 in
  let rec visit x =
    if color.(x) = 1 then false
    else if color.(x) = 2 then true
    else begin
      color.(x) <- 1;
      let ok = B.for_all (fun y -> y >= t.n || visit y) t.p.(x) in
      color.(x) <- 2;
      ok
    end
  in
  let rec all x = x >= t.n || (visit x && all (x + 1)) in
  all 0

let pp ppf t =
  Format.fprintf ppf "@[<v>P = {%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (x, y) -> Format.fprintf ppf "(%d,%d)" x y))
    (priority_pairs t);
  for u = 0 to t.n - 1 do
    Format.fprintf ppf "@,t%d: E=%a D=%a S=%a" u B.pp t.e.(u) B.pp t.d.(u) B.pp t.s.(u)
  done;
  Format.fprintf ppf "@]"
