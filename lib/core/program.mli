(** Programs under test.

    A program is a recipe for (re-)creating its initial state: [boot] is
    called once per execution, allocates every synchronization object and all
    user data fresh, and returns the bodies of the initial threads. Thread
    bodies interact with the scheduler exclusively through {!Sync}. This is
    the stateless-model-checking contract: re-running [boot] must produce an
    identical initial state, and thread bodies must be deterministic apart
    from scheduling and explicit [Sync.choose] operations. *)

type booted = {
  threads : (unit -> unit) list;
      (** Initial threads, in thread-id order starting at 0. More threads may
          be created during execution with [Sync.spawn]. *)
  snapshot : (unit -> Fairmc_util.Fnv.t) option;
      (** Optional user-supplied state abstraction, combined by the engine
          with the generic scheduling state to form state signatures for
          coverage measurement (paper §4.2.1 did this manually for two
          programs; programs written in ChessLang get it for free). *)
}

type t = {
  name : string;
  boot : unit -> booted;
  facts : Static_facts.t option;
      (** Static conflict facts, attached by the static-analysis layer
          (lib/static) for ChessLang programs; [None] for native
          workloads. When present, {!Search} feeds them to
          {!Indep.independent}. *)
}

val make : name:string -> ?facts:Static_facts.t -> (unit -> booted) -> t

val of_threads : name:string -> ?snapshot:(unit -> Fairmc_util.Fnv.t) -> (unit -> (unit -> unit) list) -> t
(** Convenience wrapper when boot only builds thread bodies. *)

val with_facts : t -> Static_facts.t -> t
