(** Fair stateless model checking — core library.

    An OCaml reproduction of the CHESS fair scheduler (Musuvathi & Qadeer,
    "Fair Stateless Model Checking", PLDI 2008). See {!Checker} for the
    entry point, {!Sync} for the API programs under test use, and
    {!Fair_sched} for the paper's Algorithm 1. *)

module Op = Op
module Objects = Objects
module Runtime = Runtime
module Sync = Sync
module Sync_extras = Sync_extras
module Static_facts = Static_facts
module Program = Program
module Engine = Engine
module Trace = Trace
module Fair_sched = Fair_sched
module Analysis_hook = Analysis_hook
module Search_config = Search_config
module Checkpoint = Checkpoint
module Search = Search
module Par_search = Par_search
module Worker = Worker
module Supervisor = Supervisor
module Report = Report
module Trace_export = Trace_export
module Checker = Checker
module Repro = Repro
module Indep = Indep
