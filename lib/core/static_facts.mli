(** Static conflict facts computed by the static-analysis layer
    ({e lib/static}) and attached to a {!Program.t}.

    Per (thread, operation): the set of objects the underlying statement
    may read and write, as engine object ids. {!Indep} consults
    {!conflict} instead of the purely syntactic same-object rule when a
    program carries facts. The table is constructed so it only ever
    {e adds} conflicts relative to the syntactic rule — the op's own
    object is always in its footprint — which keeps sleep-set reduction
    sound and additionally captures dependencies the syntactic rule
    misses (multi-global statements, primitives whose result is written
    to a global). *)

type t

val create : invisible:string list -> merged_sites:int -> t
(** [invisible] are the merged thread-local globals (reporting only);
    [merged_sites] counts the SCHED sites transition merging removed. *)

val invisible : t -> string list
val merged_sites : t -> int

val add : t -> tid:int -> op:Op.t -> reads:int list -> writes:int list -> unit
(** Register (unioning with any previous registration of the same
    (thread, op)) the object footprint of a statement performing [op].
    The op's own object is added to the footprint automatically. *)

val conflict : t -> t1:int -> op1:Op.t -> t2:int -> op2:Op.t -> bool
(** May the two operations not commute? Falls back to the syntactic
    same-object rule for operations outside the table, and always
    reports at least what that rule reports. *)
