(** One controlled execution of a program.

    The engine is the stateless-model-checking substrate: it boots the
    program fresh, runs every thread inside an effect handler, and exposes
    the scheduler-facing view of the current state — the enabled set, each
    thread's pending operation, and [yield(t)]. The search layer (which owns
    the fair scheduler and the exploration strategy) decides which thread to
    [step] next; backtracking is performed by discarding the run and starting
    a new one ([start] is cheap relative to path length).

    Exactly one run may be active per domain (the engine keeps its ambient
    per-run context in domain-local state); the parallel search layer runs
    one engine in each worker domain. Within a domain, a new [start] takes
    over from an un-[stop]ped predecessor — runs do not nest. *)

module B := Fairmc_util.Bitset

type failure =
  | Assertion of string  (** [Sync.check]/[Sync.fail] *)
  | Sync_misuse of string  (** unlock of an unheld mutex, kind confusion, ... *)
  | Resource of string
      (** [Stack_overflow]/[Out_of_memory] raised while stepping a thread —
          trapped into an error verdict with the offending schedule rather
          than tearing down the search *)
  | Uncaught of string  (** any other exception escaping a thread body *)

val pp_failure : Format.formatter -> failure -> unit

type t

type observer = tid:int -> op:Op.t -> result:int -> unit
(** One callback per executed transition: the stepped thread, its operation
    (object ids inside, see {!Op.obj_of}), and the semantic result — the
    child tid for [Spawn], the chosen alternative for [Choose], 0/1 success
    for try/timed operations, 1 otherwise. Invoked after the transition is
    recorded in the trace, so [Trace.decisions (trace t)] at that moment is
    a replayable schedule ending in the observed transition. *)

val set_observer : observer option -> unit
(** Install (or clear) the calling domain's step observer. Captured by each
    subsequent {!start} on this domain for the lifetime of that run; when
    unset, stepping pays a single branch (zero-cost contract). The analysis
    layer ({!Search_config.analyses}) is the intended client. *)

val start : Program.t -> t
(** Boot the program: run [boot], create the initial threads, and advance
    each to its first scheduling point. *)

val nthreads : t -> int
val steps : t -> int

val enabled_set : t -> B.t
(** Threads whose pending operation is currently enabled. *)

val pending : t -> int -> Op.t option
(** Pending operation of a live thread; [None] once finished. *)

val would_yield : t -> int -> bool
(** [yield(t)] of the paper for the current state. *)

val alternatives : t -> int -> int
(** Branching factor of the thread's pending operation ([Choose]). *)

val step : t -> tid:int -> alt:int -> unit
(** Execute one transition of [tid] (which must be enabled): apply its
    pending operation and run it to its next scheduling point. Newly spawned
    threads are advanced to their first scheduling point as part of the
    transition. *)

val failure : t -> (int * failure) option
(** Safety violation encountered so far, with the offending thread. *)

val all_finished : t -> bool

val deadlocked : t -> bool
(** No thread is enabled, yet not all have finished. Under the fair scheduler
    this is a true deadlock (Theorem 3: the schedulable set is empty iff the
    enabled set is). *)

val trace : t -> Trace.t
val store : t -> Objects.t

val state_signature : t -> Fairmc_util.Fnv.t
(** Signature of the current state: sync-object state, per-thread control
    information (pending operation, consecutive-op counter, [Sync.at]
    region), registered [Svar] values, and the program's optional snapshot
    function. Used for coverage measurement and by the stateful ground-truth
    search. Must be called on the run's own domain while it is the active one
    (before any subsequent [start] there). *)

val sync_ops : t -> int
(** Synchronization operations executed (Table 1 accounting: everything
    except shared-variable accesses and data choices). *)

val var_ops : t -> int

val op_counts : t -> int array
(** Transitions by operation kind, indexed by {!Op.kind_index}. Owned by the
    run — callers must not mutate it; read after the run ends (the search
    accumulates it into the metrics registry per path). *)

val context_switches : t -> int
(** Transitions whose thread differs from the previous transition's. *)

val stop : t -> unit
(** Mark the run as abandoned; parked continuations are dropped (they are
    garbage-collected; threads under test must not rely on finalizers). *)
