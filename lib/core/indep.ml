let global_effect (op : Op.t) ~fair =
  match op with
  | Spawn -> true  (* changes the thread structure *)
  | Yield | Sleep -> fair  (* yields update the fair scheduler's priorities *)
  | Timed_lock _ | Sem_timed_wait _ | Ev_timed_wait _ ->
    fair  (* may time out, which is a yield *)
  | Lock _ | Try_lock _ | Unlock _ | Sem_wait _ | Sem_try_wait _ | Sem_post _
  | Ev_wait _ | Ev_set _ | Ev_reset _ | Var_read _ | Var_write _ | Var_rmw _
  | Join _ | Choose _ -> false

let independent ?facts ~t1 ~op1 ~t2 ~op2 ~fair () =
  t1 <> t2
  && (not (global_effect op1 ~fair))
  && (not (global_effect op2 ~fair))
  &&
  (* A join depends on every operation of the joined thread. *)
  (match (op1 : Op.t), (op2 : Op.t) with
   | Join j, _ when j = t2 -> false
   | _, Join j when j = t1 -> false
   | _ ->
     (match facts with
      | Some f -> not (Static_facts.conflict f ~t1 ~op1 ~t2 ~op2)
      | None ->
        (match Op.obj_of op1, Op.obj_of op2 with
         | Some o1, Some o2 when o1 = o2 ->
           (* Same object: only two plain reads commute. *)
           (match op1, op2 with
            | Var_read _, Var_read _ -> true
            | _ -> false)
         | _ -> true)))
