(** The state-space explorer.

    Drives {!Engine} executions according to a {!Search_config}: systematic
    modes (DFS, context-bounded) enumerate scheduling decisions depth-first
    with stateless backtracking (each new path re-executes the program from
    its initial state, replaying the decision prefix); sampling modes
    (random walk, round-robin, random-priority) run a fixed number of
    independent executions.

    When [config.fair] is set, scheduling decisions are restricted to the
    schedulable set [T] of Algorithm 1, computed by {!Fair_sched} along every
    path. Fair executions that exceed the livelock bound are reported as
    divergences and classified (good-samaritan violation vs. fair
    nontermination, the paper's outcomes 2 and 3). *)

val run : ?resume:Checkpoint.seq_state -> Search_config.t -> Program.t -> Report.t
(** Run the configured search. With [resume], continue a prior session from
    its checkpointed path boundary: the DFS stack, RNG state and coverage
    table are reloaded, budgets ([max_executions], sampling counts) are
    reduced by the prior session's executions, and the prior totals are
    folded back into the final report — an interrupted-then-resumed run
    reports the same verdict, counterexample and statistics as an
    uninterrupted one. When [config.checkpoint] is set, the search snapshots
    its state at every path boundary and writes the file at most every
    [checkpoint_interval] seconds, plus exactly once when it stops. *)

val good_samaritan_culprit : (int * int * bool) list -> int
(** Pick the culprit thread of a good-samaritan divergence from
    [(tid, times_scheduled, yielded)] entries of the tail window: threads
    that never yield dominate threads that do; more occurrences dominate
    fewer; the lowest tid breaks exact ties, making the classification
    independent of hash-table iteration order. Exposed for tests. *)

val state_hook : (int64 -> Engine.t -> unit) option ref
(** Debug/analysis hook invoked on every state recorded during coverage
    collection (signature + live run). Used by tests that cross-check
    stateless coverage against the stateful ground truth (sequential searches
    only — the hook is a plain global). *)

type replay_outcome =
  | Replayed_failure of Report.counterexample
      (** the schedule ends in a failure; re-rendered counterexample *)
  | Replayed_no_failure  (** applied fully, but no failure at the end *)
  | Replay_mismatch of { step : int; tid : int }
      (** decision [step] (0-based) could not be applied: thread [tid] had
          nothing pending or was disabled — the schedule does not fit this
          program (e.g. a stale repro file) *)

val replay : Program.t -> (int * int) list -> (Engine.t -> unit) -> replay_outcome
(** Re-execute a recorded schedule, invoking the callback after every
    transition. Used to confirm and inspect reported bugs; a mismatch is
    reported explicitly rather than silently truncating the replay. *)

(** {1 Parallel-search seam}

    The entry points below are consumed by {!Par_search}; they are exposed
    here because the work-item representation is owned by the search (it is
    a snapshot of its DFS stack). *)

type pdecision = {
  p_tid : int;
  p_alt : int;
  p_cost : int;
  p_sleep : Fairmc_util.Bitset.t;
  p_width : int;
}
(** One locked scheduling decision of a systematic work item: the chosen
    (thread, alternative) pair, its context-switch cost (already charged
    against the preemption budget on replay), the sleep set the sequential
    DFS would carry when entering this child, and the branching factor of
    the node when it was first pushed ([p_width]) — workers fold prefix
    widths into their {!Fairmc_obs.Estimator} probe weights so the merged
    probe mass is bit-identical to the sequential search's. *)

val expand :
  ?deadline:float ->
  Search_config.t ->
  Program.t ->
  split_depth:int ->
  pdecision array list * bool
(** Sequentially expand the systematic decision tree, cutting every path
    after [split_depth] fresh decisions. Every explored prefix — an internal
    frontier node or a complete shallow path — is returned as one work item,
    in DFS order. The expansion records no statistics and no coverage:
    workers re-execute each item from the initial state, so their merged
    statistics equal the sequential search's exactly. The boolean is true if
    [deadline] cut the expansion short. Enumeration stops early after a work
    item whose shallow outcome is a deterministic error (the sequential
    search could never reach the later items). Raises [Invalid_argument] for
    sampling modes. *)

val progress_of_cfg : Search_config.t -> Fairmc_obs.Progress.t option
(** Build the progress reporter requested by the config ([progress] flag and
    [on_progress] callback), or [None] if neither is set. {!Par_search}
    creates one and shares it across all worker shards so the interval
    throttle is search-wide. *)

val post_run_start : Search_config.t -> Program.t -> unit
(** Emit the coordinator [run_start] telemetry event (no-op without
    [config.events]). Its data excludes [jobs] and budgets so the
    deterministic event slice is jobs-invariant. *)

val post_run_end : Search_config.t -> Report.t -> unit
(** Emit the coordinator [run_end] telemetry event: verdict key plus final
    execution/transition/probe-mass totals. Deterministic for systematic
    searches that reached a verdict. *)

val run_shard :
  ?cancel:(unit -> bool) ->
  ?deadline:float ->
  ?rng:Fairmc_util.Rng.t ->
  ?prefix:pdecision array ->
  ?shared_execs:int Atomic.t ->
  ?shared_mass:int Atomic.t ->
  ?probe_denom:int ->
  ?shard:int ->
  ?progress:Fairmc_obs.Progress.t ->
  Search_config.t ->
  Program.t ->
  Report.t * (int64, unit) Hashtbl.t
(** One shard of a parallel search: a systematic work item (locked
    [prefix]; backtracking never leaves its subtree) or a sampling worker
    (private [rng] stream, budget pre-sharded in the config). [cancel] is
    polled together with the wall clock — at every path start and every
    [poll_interval] steps within a path — and ends the shard with
    [Limits_reached]. [deadline] overrides the config's relative
    [time_limit] with an absolute timestamp shared by all shards.
    [shared_execs] is incremented per completed path and used (instead of
    the local count) to enforce [max_executions] across shards;
    [shared_mass] likewise accumulates the search-wide estimator probe mass
    for live progress estimates. [probe_denom] is the {e original}
    (unsharded) sampling budget — shard configs carry shrunk budgets, and
    every sampled path must weigh [1/original]. [shard] tags the worker's
    telemetry events ([config.events]). Returns the report together with the
    shard's coverage table so the caller can union tables rather than sum
    cardinalities. *)
