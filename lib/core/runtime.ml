type _ Effect.t += Sched : Op.t -> int Effect.t

exception Assertion_failure of string

type ctx = {
  mutable store : Objects.t option;
  mutable in_thread : bool;
  mutable current_tid : int;
  mutable spawn_body : (unit -> unit) option;
  mutable spawn_result : int;
  mutable snapshotters : (Fairmc_util.Fnv.t -> Fairmc_util.Fnv.t) list;
  regions : (int, int) Hashtbl.t;
}

let fresh () =
  { store = None;
    in_thread = false;
    current_tid = -1;
    spawn_body = None;
    spawn_result = -1;
    snapshotters = [];
    regions = Hashtbl.create 16 }

(* One context per domain: the parallel search runs one engine per worker
   domain, and each must see its own ambient state. Within a domain the old
   single-run discipline still holds (exactly one of {engine, one thread}
   executes at any instant). *)
let key = Domain.DLS.new_key fresh

let ctx () = Domain.DLS.get key

let get_store () =
  match (ctx ()).store with
  | Some s -> s
  | None -> failwith "Sync operation outside of a model-checked execution"

let reset s =
  let c = ctx () in
  c.store <- Some s;
  c.in_thread <- false;
  c.current_tid <- -1;
  c.spawn_body <- None;
  c.spawn_result <- -1;
  c.snapshotters <- [];
  Hashtbl.reset c.regions;
  c
