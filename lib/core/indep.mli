(** Conservative independence relation on operations, for sleep-set
    partial-order reduction (the paper's Section 5 names POR for fair
    stateless search as future work; this is our implementation of the
    classic Godefroid sleep sets on top of the engine).

    Two operations are independent when executing them in either order from
    any state yields the same state and neither enables/disables the other.
    We approximate: operations of distinct threads touching distinct
    synchronization objects are independent, except for operations with
    global effect (spawn, join, and — under the fair scheduler — yields,
    which mutate scheduler priorities). When the program carries
    {!Static_facts} (ChessLang programs loaded through the static-analysis
    layer), the object comparison is replaced by a lookup in the static
    conflict table, which sees the {e full} access footprint of each
    statement and therefore only ever reports more conflicts than the
    syntactic rule. *)

val independent :
  ?facts:Static_facts.t ->
  t1:int -> op1:Op.t -> t2:int -> op2:Op.t -> fair:bool -> unit -> bool
