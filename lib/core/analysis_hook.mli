(** The seam between the search and the dynamic-analysis layer.

    An analysis is a factory of per-shard {!instance}s. The search creates
    one instance per analysis per shard, announces every fresh engine run to
    it ([exec_start]) and feeds it the step stream through
    {!Engine.set_observer}; at the end of the shard it collects each
    instance's {!result}. Concrete analyses (happens-before races, locksets,
    the lock-order graph) live in [fairmc_analysis]; this module only owns
    the types they communicate through, so the core library does not depend
    on the analysis library. *)

type race = {
  detector : string;  (** ["hb"] or ["lockset"] *)
  obj : Op.obj;  (** the racing shared variable *)
  obj_name : string;
  a_tid : int;  (** earlier access *)
  a_step : int;
  a_op : Op.t;
  b_tid : int;  (** the access that completed the race *)
  b_step : int;
  b_op : Op.t;
  rendered : string;  (** trace of the racing execution up to [b_step] *)
  decisions : (int * int) list;  (** replayable schedule ending at [b_step] *)
  length : int;
}

type lock_edge = {
  e_from : Op.obj;  (** a lock held ... *)
  e_from_name : string;
  e_to : Op.obj;  (** ... while this one was acquired *)
  e_to_name : string;
}

type result = {
  first_race : race option;
  lock_edges : lock_edge list;  (** deduplicated, sorted by (from, to) *)
  counters : (string * int) list;
      (** per-analysis metrics, merged into the search's snapshot
          ([Metrics] naming convention, e.g. ["analysis/hb/races"]) *)
}

type instance = {
  exec_start : Engine.t -> unit;
      (** A fresh execution begins; reset per-execution state. The engine
          handle stays valid until the next [exec_start] and may be used to
          snapshot the trace at detection time ({!snapshot_cex}). *)
  observe : Engine.observer;
  first_race : unit -> race option;
      (** Cheap poll — no allocation; the search checks it after every
          path. *)
  result : unit -> result;
}

type t = { name : string; create : unit -> instance }

val snapshot_cex : Engine.t -> string * (int * int) list * int
(** [(rendered, decisions, length)] of the run's trace as it stands — called
    from inside an observer callback this is exactly the schedule up to and
    including the racing access. Long renderings are cut to the last 400
    events; [decisions] is always complete. *)

val dedup_edges : lock_edge list -> lock_edge list
(** Sort by (from, to) object ids and drop duplicates — the canonical edge
    set, identical however the edges were collected ({!Par_search} merges
    shard graphs by recomputing this on the concatenation). *)

val cycles : lock_edge list -> (Op.obj * string) list list
(** Strongly connected components with at least two locks, each sorted by
    object id, the component list sorted by its smallest member: the
    lock-order cycles reported as potential deadlocks. Deterministic in the
    edge {e set} (order of the input list does not matter). *)

val combine : result list -> result
(** Merge the results of several instances (or shards): earliest
    [first_race] by [b_step] (ties: listed order), edge sets unioned via
    {!dedup_edges}, counter lists concatenated. *)
