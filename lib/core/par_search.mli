(** Parallel search: domain-sharded exploration of the schedule space.

    Stateless model checking re-executes the program from its initial state
    for every schedule, so executions are embarrassingly parallel. This
    module shards a {!Search_config} across [config.jobs] OCaml 5 domains:

    - {b Systematic modes} (DFS, context-bounded): the decision tree is
      expanded sequentially to [config.split_depth] and each frontier prefix
      becomes an independent work item, executed by workers pulling from a
      shared queue. The merged report is {e exactly} the sequential one —
      same verdict, same counterexample, same execution/transition/coverage
      counts — independent of [jobs] and of thread timing (errors are
      resolved by lowest work-item index in DFS order, and losing subtrees
      are cancelled).

    - {b Sampling modes} (random walk, random priorities): the execution
      budget is sharded, each worker drawing from its own RNG stream split
      off [config.seed]. The verdict and counterexample are reproducible for
      a fixed (seed, jobs) pair; statistics of cancelled workers may vary
      between runs. Different [jobs] values explore different (equally
      distributed) samples.

    Counterexamples replay deterministically through {!Search.replay}
    regardless of which worker found them. Wall-clock limits apply to the
    whole parallel run via a shared absolute deadline; [max_executions] is
    enforced against a shared cross-domain counter (with up to one
    in-flight path of slack per worker). *)

val resolve_jobs : Search_config.t -> int
(** [config.jobs], with [0] and negative values resolved to
    [Domain.recommended_domain_count ()]. *)

(** {1 Systematic-search seams}

    The pieces of the parallel systematic search that are independent of
    {e how} work items execute — merging, resume bookkeeping, the durable
    item checkpoint, and the final report assembly. {!Supervisor} drives the
    same verified work items through forked processes and goes through these
    exact functions, which is what makes a zero-fault supervised run
    bit-identical to the in-domain one. *)

val zero_stats : Report.stats

val merge_parts :
  (Report.t * (int64, unit) Hashtbl.t) list ->
  Report.stats * Fairmc_obs.Metrics.Snapshot.t * Report.analysis option
(** Sum counters, max the maxima, union coverage tables and analysis edge
    sets (cycles recomputed from the union). Deterministic in the part
    {e set}, not the part order beyond stats being commutative. *)

val states_tbl : int64 list -> (int64, unit) Hashtbl.t

val estimate_sample :
  executions:int -> mass:int -> elapsed:float -> jobs:int ->
  Fairmc_obs.Progress.sample

val post_workers :
  Search_config.t -> jobs:int -> split_depth:int -> items:int -> expand_us:int -> unit
(** Advisory coordinator telemetry: worker layout and the expansion span. *)

val check_par_resume : Search_config.t -> n:int -> Checkpoint.par_state -> unit
(** Raise {!Checkpoint.Mismatch} when the checkpoint's split depth or item
    count disagrees with the fresh expansion. *)

val resume_prefill :
  Search_config.t ->
  n:int ->
  results:(Report.t * (int64, unit) Hashtbl.t) option array ->
  Checkpoint.par_state ->
  int * int
(** Install a prior session's completed items into [results] as if a worker
    had just finished them; returns their total (executions, probe mass).
    Raises {!Checkpoint.Mismatch} on an out-of-range item index. *)

type parck
(** Durable-session recorder for the systematic item list (see DESIGN.md,
    "Durable sessions"): thread-safe, throttled by
    [config.checkpoint_interval]. *)

val parck_create :
  Search_config.t ->
  prog:Program.t ->
  n:int ->
  t0:float ->
  prior_elapsed:float ->
  resume:Checkpoint.par_state option ->
  expand_timed_out:bool ->
  parck option
(** [None] when no checkpoint is configured — or the expansion timed out, in
    which case the item indices would not survive a resume. *)

val parck_note : parck -> int -> Report.t -> (int64, unit) Hashtbl.t -> unit
(** Record a completed item (Verified verdicts only) and flush if the
    throttle interval has passed. Safe from any domain. *)

val parck_flush : parck -> complete:bool -> unit
(** Final write; call after the workers are done. A failed save warns on
    stderr (and posts a [checkpoint_error] event) and keeps the previous
    checkpoint. *)

val finalize_systematic :
  results:(Report.t * (int64, unit) Hashtbl.t) option array ->
  winner:int ->
  elapsed:float ->
  search_elapsed:float ->
  expand_timed_out:bool ->
  with_gauges:(Fairmc_obs.Metrics.Snapshot.t -> Fairmc_obs.Metrics.Snapshot.t) ->
  Report.t
(** Merge per-item results into the final report. [winner] is the lowest
    erroring item index ([max_int] when none): its verdict wins, items below
    it merge in, items above it are discarded (sequential equivalence). With
    no winner, any missing or [Limits_reached] item — or a timed-out
    expansion — downgrades Verified to Limits_reached. *)

val run : ?resume:Checkpoint.payload -> Search_config.t -> Program.t -> Report.t
(** Runs {!Search.run} unchanged when [resolve_jobs config <= 1] (and for
    round-robin, which is a single schedule).

    [resume] continues a prior checkpointed session (see {!Checkpoint} and
    DESIGN.md, "Durable sessions"). The payload kind must fit the run shape:
    [Seq] for sequential runs, [Par] for parallel systematic, [Par_sampling]
    for parallel sampling — a mismatch (e.g. a checkpoint written with a
    different [jobs] regime, or split-depth/item-count drift) raises
    {!Checkpoint.Mismatch}. When [config.checkpoint] is set, the parallel
    systematic search records every fully explored work item (throttled by
    [config.checkpoint_interval]) and parallel sampling records its
    aggregate once per session. *)
