(** Parallel search: domain-sharded exploration of the schedule space.

    Stateless model checking re-executes the program from its initial state
    for every schedule, so executions are embarrassingly parallel. This
    module shards a {!Search_config} across [config.jobs] OCaml 5 domains:

    - {b Systematic modes} (DFS, context-bounded): the decision tree is
      expanded sequentially to [config.split_depth] and each frontier prefix
      becomes an independent work item, executed by workers pulling from a
      shared queue. The merged report is {e exactly} the sequential one —
      same verdict, same counterexample, same execution/transition/coverage
      counts — independent of [jobs] and of thread timing (errors are
      resolved by lowest work-item index in DFS order, and losing subtrees
      are cancelled).

    - {b Sampling modes} (random walk, random priorities): the execution
      budget is sharded, each worker drawing from its own RNG stream split
      off [config.seed]. The verdict and counterexample are reproducible for
      a fixed (seed, jobs) pair; statistics of cancelled workers may vary
      between runs. Different [jobs] values explore different (equally
      distributed) samples.

    Counterexamples replay deterministically through {!Search.replay}
    regardless of which worker found them. Wall-clock limits apply to the
    whole parallel run via a shared absolute deadline; [max_executions] is
    enforced against a shared cross-domain counter (with up to one
    in-flight path of slack per worker). *)

val resolve_jobs : Search_config.t -> int
(** [config.jobs], with [0] and negative values resolved to
    [Domain.recommended_domain_count ()]. *)

val run : ?resume:Checkpoint.payload -> Search_config.t -> Program.t -> Report.t
(** Runs {!Search.run} unchanged when [resolve_jobs config <= 1] (and for
    round-robin, which is a single schedule).

    [resume] continues a prior checkpointed session (see {!Checkpoint} and
    DESIGN.md, "Durable sessions"). The payload kind must fit the run shape:
    [Seq] for sequential runs, [Par] for parallel systematic, [Par_sampling]
    for parallel sampling — a mismatch (e.g. a checkpoint written with a
    different [jobs] regime, or split-depth/item-count drift) raises
    {!Checkpoint.Mismatch}. When [config.checkpoint] is set, the parallel
    systematic search records every fully explored work item (throttled by
    [config.checkpoint_interval]) and parallel sampling records its
    aggregate once per session. *)
