(** Durable search sessions: checkpoint files and graceful interruption.

    A long stateless-model-checking run is pure re-execution from the initial
    state, so its complete progress is captured by a small amount of control
    state: the DFS frame stack (with the untried alternatives and sleep set
    of every frame), the RNG state for sampling modes, the accumulated
    statistics/metrics/coverage/analysis totals, and — for the parallel
    systematic search — the per-work-item completion records. This module
    serializes that state to a versioned JSON file (schema [fairmc-ckpt/1],
    written atomically via a temp file + rename) and validates it against the
    requesting configuration on resume, so an interrupted [chess check] can
    continue where it stopped and produce bit-identical results (see
    DESIGN.md, "Durable sessions").

    The checkpoint also owns the process-wide graceful-interrupt flag: a
    SIGINT/SIGTERM handler requests a stop that every search loop observes at
    its existing poll points, letting the run flush a final checkpoint and
    still emit its partial report. *)

module B = Fairmc_util.Bitset

val schema : string
(** ["fairmc-ckpt/1"]. *)

(** {1 Serialized search state} *)

type decision = { c_tid : int; c_alt : int; c_cost : int }
(** One scheduling decision: thread, nondeterministic alternative, and its
    preemption cost (context-bounded search). *)

type frame = {
  c_chosen : decision;  (** the decision the interrupted run was exploring *)
  c_rest : decision list;  (** untried siblings, in DFS order *)
  c_sleep : B.t;  (** sleep set of the frame's node *)
  c_width : int;
      (** branching factor of the node when it was first pushed (before any
          siblings were consumed) — the {!Fairmc_obs.Estimator} probe
          weights of resumed paths depend on it *)
}

type seq_state = {
  sq_frames : frame array;
      (** the DFS stack at a path boundary: replaying [c_chosen] of each
          frame in order reaches exactly the next unexplored path. Empty for
          sampling modes (they resume by remaining budget) and for a search
          interrupted before its first backtrack. *)
  sq_rng : int64;  (** splitmix64 state, continued exactly by the resume *)
  sq_stats : Report.stats;  (** cumulative totals across all prior sessions *)
  sq_metrics : Fairmc_obs.Metrics.Snapshot.t;  (** cumulative, kind-tagged *)
  sq_states : int64 list;  (** coverage state signatures, sorted *)
  sq_edges : Analysis_hook.lock_edge list;  (** lock-order union so far *)
  sq_complete : bool;
      (** the search finished (verdict reached); nothing to resume *)
}

type par_item = {
  pi_index : int;  (** position in the DFS-ordered work-item list *)
  pi_stats : Report.stats;
  pi_metrics : Fairmc_obs.Metrics.Snapshot.t;
  pi_states : int64 list;
  pi_edges : Analysis_hook.lock_edge list;
}
(** A fully explored (verdict [Verified]) work item of the parallel
    systematic search. Partially explored items are never recorded — a
    resume re-runs them from scratch, which is what keeps the merged totals
    bit-identical to an uninterrupted run. *)

type par_state = {
  pa_split_depth : int;  (** must match on resume: it defines the item list *)
  pa_n_items : int;  (** expansion size, revalidated on resume *)
  pa_elapsed : float;  (** wall time consumed by prior sessions *)
  pa_items : par_item list;  (** ascending [pi_index] *)
  pa_complete : bool;
}

type sampling_state = {
  sa_round : int;
      (** how many sessions contributed; the resume splits fresh RNG streams
          per round so no schedule prefix repeats across sessions *)
  sa_stats : Report.stats;
  sa_metrics : Fairmc_obs.Metrics.Snapshot.t;
  sa_states : int64 list;
  sa_edges : Analysis_hook.lock_edge list;
  sa_complete : bool;
}
(** Parallel sampling shards interleave nondeterministically, so only their
    aggregate is recorded: a resume continues by {e remaining budget}, not by
    exact RNG position (sequential sampling, which goes through {!seq_state},
    does resume RNG-exactly). *)

type payload =
  | Seq of seq_state
  | Par of par_state
  | Par_sampling of sampling_state

type t = { fingerprint : string; payload : payload }

(** {1 Codec and file I/O} *)

val to_json : t -> Fairmc_util.Json.t
val of_json : Fairmc_util.Json.t -> (t, string) result

val save_result : string -> t -> (unit, string) result
(** Atomic (writes [path ^ ".tmp"], then renames over [path]) and hardened:
    EINTR restarts the call and other transient filesystem failures
    ([Sys_error]/[Unix_error]) are retried a few times with short backoff
    ({!Fairmc_util.Retry.transient}). On final failure the stale temp file
    is removed and the {e previous} checkpoint at [path] is left intact —
    a failed save never clobbers the last good one. *)

val save : string -> t -> unit
(** {!save_result}, downgrading a final failure to a stderr warning: the
    search keeps running on the previous checkpoint. *)

val inject_save_failures : int ref
(** Fault injection for tests/CI ([--inject-fault savefail]): the next [n]
    physical save attempts raise a transient [Sys_error]. *)

val load : string -> (t, string) result

(** {1 Resume validation} *)

val fingerprint : Search_config.t -> program:string -> string
(** Canonical string over every configuration field that shapes the explored
    schedule space: program name, mode (without its sampling budget), fair /
    fair_k, depth bound, random tail, step and livelock bounds, tail window,
    seed, sleep sets, coverage, metrics, and analysis names. Budget-style
    limits ([max_executions], [time_limit], sampling budgets, [jobs],
    [split_depth]) are deliberately excluded so a resume may extend them;
    [split_depth] is instead revalidated structurally for parallel
    checkpoints. *)

exception Mismatch of string
(** Raised by the search layers when a resume payload is structurally
    incompatible with the run (wrong payload kind for the mode/jobs, item
    count or split depth drift). *)

val plan_resume : t -> Search_config.t -> program:string -> (payload, string) result
(** Validate [t] against the configuration (fingerprint match, not already
    complete) and return the payload to hand to {!Checker.check}'s [resume]
    parameter. *)

val merge_stats : prior:Report.stats -> Report.stats -> Report.stats
(** Combine a prior session's cumulative stats with the delta accumulated
    since: counters add, maxima max, [states] comes from the delta (the
    resumed run preloads the coverage table, so its count is already the
    union), [first_error_*] are offset into the combined run. *)

(** {1 Graceful interruption} *)

val interrupted : unit -> bool
(** Process-wide flag, polled by {!Search.run} / {!Par_search.run} at the
    same points as cancellation. *)

val request_interrupt : unit -> unit
val clear_interrupt : unit -> unit

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!request_interrupt}. A second signal while
    the flag is already set exits immediately with status 130. No-op on
    platforms without these signals. *)

(** {1 Codec building blocks}

    The JSON helpers behind the checkpoint codec, shared with the worker IPC
    protocol ({!Worker}) so reports and snapshots travel between processes
    in exactly the checkpoint wire form. Parsers raise {!Codec.Parse}. *)

module Codec : sig
  exception Parse of string

  val fail : ('a, unit, string, 'b) format4 -> 'a
  val field : Fairmc_util.Json.t -> string -> Fairmc_util.Json.t
  val opt_field : Fairmc_util.Json.t -> string -> Fairmc_util.Json.t option
  val as_int : string -> Fairmc_util.Json.t -> int
  val as_bool : string -> Fairmc_util.Json.t -> bool
  val as_str : string -> Fairmc_util.Json.t -> string
  val as_arr : string -> Fairmc_util.Json.t -> Fairmc_util.Json.t list
  val as_float : string -> Fairmc_util.Json.t -> float
  val int_f : Fairmc_util.Json.t -> string -> int
  val bool_f : Fairmc_util.Json.t -> string -> bool
  val str_f : Fairmc_util.Json.t -> string -> string
  val arr_f : Fairmc_util.Json.t -> string -> Fairmc_util.Json.t list
  val float_f : Fairmc_util.Json.t -> string -> float
  val int_d : Fairmc_util.Json.t -> string -> default:int -> int
  val float_d : Fairmc_util.Json.t -> string -> default:float -> float
  val int64_to_json : int64 -> Fairmc_util.Json.t
  val int64_of_json : string -> Fairmc_util.Json.t -> int64

  val opt_to_json :
    ('a -> Fairmc_util.Json.t) -> 'a option -> Fairmc_util.Json.t

  val opt_of_json :
    (Fairmc_util.Json.t -> 'a) -> Fairmc_util.Json.t -> 'a option

  val stats_to_json : Report.stats -> Fairmc_util.Json.t
  val stats_of_json : Fairmc_util.Json.t -> Report.stats
  val metrics_to_json : Fairmc_obs.Metrics.Snapshot.t -> Fairmc_util.Json.t

  val metrics_of_json :
    string -> Fairmc_util.Json.t -> Fairmc_obs.Metrics.Snapshot.t

  val states_to_json : int64 list -> Fairmc_util.Json.t
  val states_of_json : string -> Fairmc_util.Json.t -> int64 list
  val edges_to_json : Analysis_hook.lock_edge list -> Fairmc_util.Json.t

  val edges_of_json :
    string -> Fairmc_util.Json.t -> Analysis_hook.lock_edge list
end
