(* Supervised process-level worker pool. See DESIGN.md, "Supervision".

   The systematic schedule space shards into verified work items exactly as
   in {!Par_search} — the same {!Search.expand} frontier, the same per-item
   RNG streams, the same min-index error resolution, and the same
   {!Par_search.finalize_systematic} merge. The difference is the execution
   vehicle: instead of OCaml 5 domains sharing the coordinator's address
   space, each worker is a forked *process* talking length-prefixed JSON
   over a pipe pair ({!Worker}). That buys crash isolation — a worker that
   segfaults, is OOM-killed, or wedges takes down one work item attempt, not
   the search:

   - a dead/hung/garbling worker is SIGKILLed and reaped; its item is
     requeued with exponential backoff, up to [config.max_retries] times;
   - an item that keeps killing workers is quarantined as a {!Report.Crash}
     verdict whose counterexample is the item's schedule prefix, so the
     crashing subtree can be re-entered deterministically;
   - with zero faults, the supervised run goes through the very same merge
     and checkpoint seams as the in-domain backend, so its report is
     bit-identical to [jobs = n]'s.

   Determinism of fault injection: a configured fault fires exactly once, on
   the *first* attempt of item [fault_seed mod n_items]. Retries are
   fault-free, so every injected fault (with retries left) leaves the final
   report unchanged — the property the fault-matrix tests pin down. *)

module C = Search_config
module P = Par_search
module J = Fairmc_util.Json
module Rng = Fairmc_util.Rng
module Retry = Fairmc_util.Retry
module M = Fairmc_obs.Metrics
module Clock = Fairmc_obs.Clock
module Progress = Fairmc_obs.Progress
module Events = Fairmc_obs.Events

let resolve_workers (cfg : C.t) =
  if cfg.C.workers = 1 then 1
  else if cfg.C.workers <= 0 then Domain.recommended_domain_count ()
  else cfg.C.workers

let forking_available = not Sys.win32

(* A real probe, not a platform guess: fork once and reap. Runs before any
   supervisor state exists so degradation to the in-domain backend never
   duplicates telemetry or expansion work. Notably, OCaml 5 forbids fork for
   the rest of the process lifetime once a second domain has ever been
   created (Failure, not Unix_error) — a host program that ran an in-domain
   search first must degrade, not die. *)
let can_fork () =
  if not forking_available then false
  else begin
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
      (try ignore (Retry.eintr (fun () -> Unix.waitpid [] pid))
       with Unix.Unix_error _ -> ());
      true
    | exception (Unix.Unix_error _ | Failure _) -> false
  end

type counters = {
  mutable c_spawns : int;
  mutable c_restarts : int;
  mutable c_timeouts : int;
  mutable c_retries : int;
  mutable c_crashes : int;
  mutable c_quarantined : int;
}

(* One worker process as the parent sees it. [s_item = -1] means idle;
   [s_alive = false] marks a slot whose process is gone and whose fds are
   closed (the fd fields then hold harmless placeholders and must not be
   used — every access is guarded by [s_alive]). *)
type slot = {
  s_id : int;
  mutable s_pid : int;
  mutable s_req : Unix.file_descr;  (* parent writes requests here *)
  mutable s_resp : Unix.file_descr;  (* parent reads responses here *)
  mutable s_buf : Worker.inbuf;
  mutable s_item : int;
  mutable s_attempt : int;
  mutable s_deadline : float;
  mutable s_alive : bool;
}

let post_event (cfg : C.t) kind fields =
  match cfg.C.events with
  | None -> ()
  | Some s -> Events.post s ~shard:(-1) ~kind (J.Obj fields)

let fault_fires (cfg : C.t) ~index ~attempt ~n =
  match cfg.C.inject_fault with
  | Some f when attempt = 0 && n > 0 && index = f.C.fault_seed mod n ->
    Some f.C.fault_kind
  | _ -> None

(* Exponential backoff with deterministic jitter: the delay is a pure
   function of (seed, item, attempt), so a retried run is replayable. *)
let backoff_delay (cfg : C.t) ~index ~attempt =
  let key =
    Int64.add
      (Int64.mul cfg.C.seed 1_000_003L)
      (Int64.of_int ((index * 97) + attempt))
  in
  let jitter = float_of_int (Rng.int (Rng.of_state key) 1024) /. 1024. in
  let exp = float_of_int (1 lsl min attempt 5) in
  Float.min 2.0 (0.05 *. exp *. (1. +. (0.5 *. jitter)))

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" s

let status_reason = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

(* ------------------------------------------------------------------ *)
(* Child side                                                          *)
(* ------------------------------------------------------------------ *)

(* Run one work item inside the worker process. The child's config drops
   everything that belongs to the parent: no checkpoint file (it must never
   clobber the parent's), no progress emission, no fault re-injection, and
   no inherited event stream — when the parent collects telemetry the child
   records its events privately and ships them back in the response. The
   per-item wall-clock timeout is parent-side only; the child's deadline
   comes from the remaining *global* time budget, so a slow but healthy
   item never comes back [Limits_reached]. *)
let run_item ~(cfg : C.t) ~prog ~(items : Search.pdecision array array)
    ~(streams : Rng.t array) ~slot ~index ~attempt ~time_left =
  let child_events =
    match cfg.C.events with
    | None -> None
    | Some _ -> Some (Events.create ~collect:true ())
  in
  let cfg_i =
    { cfg with
      C.jobs = 1;
      workers = 1;
      checkpoint = None;
      progress = false;
      on_progress = None;
      time_limit = None;
      inject_fault = None;
      events = child_events }
  in
  let deadline =
    match time_left with None -> infinity | Some t -> Clock.now () +. t
  in
  let r, tbl =
    Search.run_shard ~deadline
      ~rng:(Rng.copy streams.(index))
      ~prefix:items.(index) ~shard:slot cfg_i prog
  in
  let states =
    if cfg.C.coverage then
      List.sort Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
    else []
  in
  let events =
    match child_events with
    | None -> []
    | Some s ->
      List.map
        (fun (e : Events.event) -> (e.Events.det, e.Events.kind, e.Events.data))
        (Events.collected s)
  in
  { Worker.r_index = index; r_attempt = attempt; r_report = r; r_states = states;
    r_events = events }

(* The worker process's request loop. Never returns: every path ends in
   [Unix._exit] (not [exit] — the child must not run the parent's inherited
   [at_exit] callbacks or re-flush its channels). Exit codes: 0 clean quit,
   2 protocol error, 3 fault-injection backstop. *)
let child_serve ~(cfg : C.t) ~prog ~items ~streams ~slot ~req ~resp ~n =
  (* Ctrl-C teardown belongs to the parent: it decides between graceful
     quit and SIGKILL. The child must not race it with its own handler. *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Checkpoint.clear_interrupt ();
  let rec loop () =
    match Worker.recv req with
    | Ok None -> Unix._exit 0 (* parent closed the request pipe *)
    | Error _ -> Unix._exit 2
    | Ok (Some json) ->
      (match Worker.request_of_json json with
       | exception Checkpoint.Codec.Parse _ -> Unix._exit 2
       | Worker.Quit -> Unix._exit 0
       | Worker.Run { q_index; q_attempt; q_time_left } ->
         let fault = fault_fires cfg ~index:q_index ~attempt:q_attempt ~n in
         (match fault with
          | Some C.Crash ->
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            Unix._exit 3
          | Some C.Hang ->
            (* Spin until the parent's item timeout SIGKILLs us. *)
            let rec spin () = Retry.sleepf 3600.; spin () in
            spin ()
          | Some C.Garble ->
            let junk = Bytes.of_string "!!not-a-frame!!" in
            (try
               ignore
                 (Retry.eintr (fun () ->
                      Unix.write resp junk 0 (Bytes.length junk)))
             with Unix.Unix_error _ -> ());
            Unix._exit 3
          | Some (C.Slow_pipe | C.Save_fail) | None ->
            let response =
              run_item ~cfg ~prog ~items ~streams ~slot ~index:q_index
                ~attempt:q_attempt ~time_left:q_time_left
            in
            let json = Worker.response_to_json response in
            (match fault with
             | Some C.Slow_pipe -> Worker.send_slowly resp json
             | _ -> Worker.send resp json);
            loop ()))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

let run_systematic ?resume (cfg : C.t) prog ~workers =
  let t0 = Clock.now () in
  Search.post_run_start cfg prog;
  let deadline =
    match cfg.C.time_limit with None -> infinity | Some l -> t0 +. l
  in
  let progress = Search.progress_of_cfg cfg in
  let items, expand_timed_out =
    Search.expand ~deadline cfg prog ~split_depth:cfg.C.split_depth
  in
  let expand_us = int_of_float ((Clock.now () -. t0) *. 1e6) in
  let items = Array.of_list items in
  let n = Array.length items in
  let workers = max 1 (min workers (max 1 n)) in
  P.post_workers cfg ~jobs:workers ~split_depth:cfg.C.split_depth ~items:n ~expand_us;
  post_event cfg "supervisor_start"
    [ ("workers", J.Int workers);
      ("items", J.Int n);
      ("max_retries", J.Int cfg.C.max_retries);
      ("item_timeout",
       match cfg.C.item_timeout with
       | Some t -> J.Float t
       | None -> J.Null);
      ("fault",
       match cfg.C.inject_fault with
       | Some f -> J.Str (C.fault_name f)
       | None -> J.Null) ];
  (match resume with None -> () | Some pa -> P.check_par_resume cfg ~n pa);
  let prior_elapsed =
    match resume with Some pa -> pa.Checkpoint.pa_elapsed | None -> 0.
  in
  (* Per-item RNG streams, computed before any fork so every child inherits
     the same pristine array — results never depend on which worker process
     ran which item (mirrors the in-domain per-item streams). *)
  let streams = Rng.streams (Rng.make cfg.C.seed) n in
  let results : (Report.t * (int64, unit) Hashtbl.t) option array =
    Array.make n None
  in
  let prior_execs, prior_mass =
    match resume with
    | None -> (0, 0)
    | Some pa -> P.resume_prefill cfg ~n ~results pa
  in
  let shared_execs = Atomic.make prior_execs in
  let shared_mass = Atomic.make prior_mass in
  let ck =
    P.parck_create cfg ~prog ~n ~t0 ~prior_elapsed ~resume ~expand_timed_out
  in
  (* The savefail fault is parent-side: the first two checkpoint save
     attempts fail transiently, exercising Checkpoint's retry path. Armed
     only when a checkpoint is actually being written — the counter is
     global and must not leak into a later run's saves. *)
  (match (cfg.C.inject_fault, ck) with
   | Some { C.fault_kind = C.Save_fail; _ }, Some _ ->
     Checkpoint.inject_save_failures := 2
   | _ -> ());
  let item_timeout =
    match (cfg.C.item_timeout, cfg.C.inject_fault) with
    (* A hang with no timeout configured would stall forever; give the
       injection harness a finite default. *)
    | None, Some { C.fault_kind = C.Hang; _ } -> Some 10.0
    | t, _ -> t
  in
  let counters =
    { c_spawns = 0; c_restarts = 0; c_timeouts = 0; c_retries = 0;
      c_crashes = 0; c_quarantined = 0 }
  in
  let winner = ref max_int in
  let stopped = ref false in
  let inflight = ref 0 in
  let pending = Queue.create () in
  for k = 0 to n - 1 do
    if results.(k) = None then Queue.push k pending
  done;
  (* Retry heap as a sorted assoc list (ready_at, index, attempt) — retry
     volume is bounded by [n * max_retries], tiny next to item runtimes. *)
  let retries = ref [] in
  let budget_exhausted () =
    match cfg.C.max_executions with
    | Some m -> Atomic.get shared_execs >= m
    | None -> false
  in
  (* Workers can die mid-write; the parent must get EPIPE from its request
     writes, not be killed. Restored on every way out — a long-running host
     (chessd supervises many jobs per process lifetime) must not have
     [Signal_ignore] leak into it when supervision raises mid-flight. *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev_sigpipe)
  @@ fun () ->
  (* All parent-side pipe ends, so each newly forked child can close its
     inherited copies of the *other* slots' fds. Without this, a respawned
     worker would hold the old workers' request pipes open and EOF-based
     teardown would deadlock on it. *)
  let parent_ends = ref [] in
  let spawn_slot id =
    let req_r, req_w = Unix.pipe ~cloexec:false () in
    let resp_r, resp_w = Unix.pipe ~cloexec:false () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !parent_ends;
      Unix.close req_w;
      Unix.close resp_r;
      child_serve ~cfg ~prog ~items ~streams ~slot:id ~req:req_r ~resp:resp_w ~n
    | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      parent_ends := req_w :: resp_r :: !parent_ends;
      counters.c_spawns <- counters.c_spawns + 1;
      post_event cfg "worker_spawn"
        [ ("worker", J.Int id); ("pid", J.Int pid) ];
      { s_id = id; s_pid = pid; s_req = req_w; s_resp = resp_r;
        s_buf = Worker.inbuf (); s_item = -1; s_attempt = 0;
        s_deadline = infinity; s_alive = true }
  in
  let dead_slot id =
    { s_id = id; s_pid = -1; s_req = Unix.stdin; s_resp = Unix.stdin;
      s_buf = Worker.inbuf (); s_item = -1; s_attempt = 0;
      s_deadline = infinity; s_alive = false }
  in
  let forget_ends slot =
    parent_ends :=
      List.filter (fun fd -> fd <> slot.s_req && fd <> slot.s_resp) !parent_ends
  in
  (* Tear one worker down hard: SIGKILL, reap, close, mark dead. Returns
     the exit-status description for the requeue reason. *)
  let kill_slot slot =
    (try Unix.kill slot.s_pid Sys.sigkill with Unix.Unix_error _ -> ());
    let status =
      match Retry.eintr (fun () -> Unix.waitpid [] slot.s_pid) with
      | _, st -> status_reason st
      | exception Unix.Unix_error _ -> "already reaped"
    in
    forget_ends slot;
    (try Unix.close slot.s_req with Unix.Unix_error _ -> ());
    (try Unix.close slot.s_resp with Unix.Unix_error _ -> ());
    slot.s_alive <- false;
    post_event cfg "worker_exit"
      [ ("worker", J.Int slot.s_id); ("pid", J.Int slot.s_pid);
        ("status", J.Str status) ];
    status
  in
  let respawn slot =
    counters.c_restarts <- counters.c_restarts + 1;
    match spawn_slot slot.s_id with
    | fresh ->
      slot.s_pid <- fresh.s_pid;
      slot.s_req <- fresh.s_req;
      slot.s_resp <- fresh.s_resp;
      slot.s_buf <- fresh.s_buf;
      slot.s_item <- -1;
      slot.s_attempt <- 0;
      slot.s_deadline <- infinity;
      slot.s_alive <- true
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "fairmc: worker %d respawn failed: %s\n%!" slot.s_id
        (Unix.error_message e);
      post_event cfg "worker_spawn_failed"
        [ ("worker", J.Int slot.s_id); ("error", J.Str (Unix.error_message e)) ]
  in
  let quarantine index ~attempts ~reason =
    counters.c_quarantined <- counters.c_quarantined + 1;
    let decisions =
      Array.to_list items.(index)
      |> List.map (fun (d : Search.pdecision) -> (d.Search.p_tid, d.Search.p_alt))
    in
    let rendered =
      Printf.sprintf
        "work item %d quarantined after %d attempt(s): %s\n\
         schedule prefix (tid alt): %s"
        index attempts reason
        (String.concat " "
           (List.map (fun (t, a) -> Printf.sprintf "%d:%d" t a) decisions))
    in
    let cex = { Report.rendered; decisions; length = List.length decisions } in
    let r =
      { Report.verdict = Report.Crash { reason; cex };
        stats = P.zero_stats;
        metrics = M.Snapshot.empty;
        analysis = None }
    in
    results.(index) <- Some (r, Hashtbl.create 1);
    post_event cfg "item_quarantined"
      [ ("item", J.Int index); ("attempts", J.Int attempts);
        ("reason", J.Str reason) ];
    if index < !winner then winner := index
  in
  let requeue index attempt ~reason =
    if attempt >= cfg.C.max_retries then
      quarantine index ~attempts:(attempt + 1) ~reason
    else begin
      counters.c_retries <- counters.c_retries + 1;
      let delay = backoff_delay cfg ~index ~attempt in
      post_event cfg "item_retry"
        [ ("item", J.Int index); ("attempt", J.Int (attempt + 1));
          ("delay_s", J.Float delay); ("reason", J.Str reason) ];
      retries :=
        List.merge
          (fun (a, _, _) (b, _, _) -> compare a b)
          [ (Clock.now () +. delay, index, attempt + 1) ]
          !retries
    end
  in
  (* A worker died (crash, EOF, protocol violation, timeout): reap it,
     requeue its in-flight item, bring a fresh process up in its slot. *)
  let worker_died slot ~reason =
    counters.c_crashes <- counters.c_crashes + 1;
    let index = slot.s_item and attempt = slot.s_attempt in
    let status = kill_slot slot in
    if index >= 0 then begin
      decr inflight;
      if results.(index) = None && index < !winner then
        requeue index attempt ~reason:(Printf.sprintf "%s (%s)" reason status)
    end;
    if not !stopped then respawn slot
  in
  (* A worker running a now-useless item (above the winning error index):
     the in-domain backend cancels these via a polled flag; a process is
     simply killed and replaced. No retry — the item will never merge. *)
  let cancel_slot slot =
    ignore (kill_slot slot);
    decr inflight;
    if not !stopped then respawn slot
  in
  let dispatch slot index attempt =
    slot.s_item <- index;
    slot.s_attempt <- attempt;
    slot.s_deadline <-
      (match item_timeout with None -> infinity | Some t -> Clock.now () +. t);
    incr inflight;
    let time_left =
      match cfg.C.time_limit with
      | None -> None
      | Some _ -> Some (Float.max 0. (deadline -. Clock.now ()))
    in
    match
      Worker.send slot.s_req
        (Worker.request_to_json
           (Worker.Run { q_index = index; q_attempt = attempt; q_time_left = time_left }))
    with
    | () -> ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
      worker_died slot ~reason:"request write failed"
  in
  let rec next_work now =
    match !retries with
    | (ready, index, attempt) :: rest when ready <= now ->
      retries := rest;
      if index < !winner && results.(index) = None then Some (index, attempt)
      else next_work now
    | _ ->
      if Queue.is_empty pending then None
      else begin
        let index = Queue.pop pending in
        if index < !winner && results.(index) = None then Some (index, 0)
        else next_work now
      end
  in
  let work_remaining () =
    let live (index : int) = index < !winner && results.(index) = None in
    List.exists (fun (_, i, _) -> live i) !retries
    || Queue.fold (fun acc i -> acc || live i) false pending
  in
  let handle_result slot (resp : Worker.response) =
    let index = resp.Worker.r_index in
    slot.s_item <- -1;
    slot.s_attempt <- 0;
    slot.s_deadline <- infinity;
    decr inflight;
    (* Re-post the child's telemetry on the parent stream under the slot's
       shard id. Per-path span events are gated on a collecting stream
       in-process; apply the same gate here so a plain streaming sink sees
       the same event set either way. *)
    (match cfg.C.events with
     | None -> ()
     | Some s ->
       List.iter
         (fun (det, kind, data) ->
           if det || kind <> "span" || Events.collecting s then
             Events.post s ~shard:slot.s_id ~det ~kind data)
         resp.Worker.r_events);
    if results.(index) = None && index < !winner then begin
      let r = resp.Worker.r_report in
      let tbl = P.states_tbl resp.Worker.r_states in
      results.(index) <- Some (r, tbl);
      (match ck with None -> () | Some ck -> P.parck_note ck index r tbl);
      ignore
        (Atomic.fetch_and_add shared_execs r.Report.stats.Report.executions);
      ignore (Atomic.fetch_and_add shared_mass r.Report.stats.Report.probe_mass);
      (match progress with
       | None -> ()
       | Some p ->
         Progress.tick p (fun () ->
             P.estimate_sample
               ~executions:(Atomic.get shared_execs)
               ~mass:(Atomic.get shared_mass)
               ~elapsed:(prior_elapsed +. (Clock.now () -. t0))
               ~jobs:workers));
      if Report.found_error r && index < !winner then winner := index
    end
  in
  (* Last-resort degradation: every worker slot is dead and cannot be
     respawned. Finish the remaining items in-process — same items, same
     streams, same merge — rather than abandoning the search. *)
  let run_inline () =
    Printf.eprintf
      "fairmc: no live worker processes; finishing the search in-process\n%!";
    post_event cfg "supervisor_fallback" [ ("reason", J.Str "no live workers") ];
    let k = ref 0 in
    while !k < n && not (Checkpoint.interrupted ()) && Clock.now () < deadline
          && not (budget_exhausted ())
    do
      let index = !k in
      if index < !winner && results.(index) = None then begin
        let r, tbl =
          Search.run_shard ~deadline
            ~rng:(Rng.copy streams.(index))
            ~prefix:items.(index) ~shared_execs ~shared_mass ~shard:0 ?progress
            cfg prog
        in
        results.(index) <- Some (r, tbl);
        (match ck with None -> () | Some ck -> P.parck_note ck index r tbl);
        if Report.found_error r && index < !winner then winner := index
      end;
      incr k
    done;
    if Checkpoint.interrupted () then stopped := true
  in
  let slots =
    Array.init workers (fun i ->
        match spawn_slot i with
        | s -> s
        | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "fairmc: worker %d spawn failed: %s\n%!" i
            (Unix.error_message e);
          post_event cfg "worker_spawn_failed"
            [ ("worker", J.Int i); ("error", J.Str (Unix.error_message e)) ];
          dead_slot i)
  in
  let rec loop () =
    if Checkpoint.interrupted () then stopped := true;
    if not !stopped then begin
      (* Items above the winning error index will never merge; reclaim
         their workers. *)
      Array.iter
        (fun s -> if s.s_alive && s.s_item > !winner then cancel_slot s)
        slots;
      let now = Clock.now () in
      if now < deadline && not (budget_exhausted ()) then
        Array.iter
          (fun s ->
            if s.s_alive && s.s_item < 0 then
              match next_work now with
              | Some (index, attempt) -> dispatch s index attempt
              | None -> ())
          slots;
      let now = Clock.now () in
      let finished =
        !inflight = 0
        && ((not (work_remaining ())) || now >= deadline || budget_exhausted ())
      in
      if not finished then begin
        if not (Array.exists (fun s -> s.s_alive) slots) then run_inline ()
        else begin
          let fds =
            Array.fold_left
              (fun acc s ->
                if s.s_alive && s.s_item >= 0 then s.s_resp :: acc else acc)
              [] slots
          in
          let timeout =
            let next_deadline =
              Array.fold_left
                (fun acc s ->
                  if s.s_alive && s.s_item >= 0 then Float.min acc s.s_deadline
                  else acc)
                infinity slots
            in
            let next_retry =
              match !retries with (t, _, _) :: _ -> t | [] -> infinity
            in
            let t =
              Float.min 0.2
                (Float.min (next_deadline -. now) (next_retry -. now))
            in
            Float.max 0.01 t
          in
          let readable =
            if fds = [] then (Retry.sleepf timeout; [])
            else begin
              (* Re-arm after EINTR with the *remaining* wait against a
                 monotonic deadline — re-arming the full timeout would let a
                 stream of signals postpone per-item deadlines forever. An
                 interrupt request still breaks out immediately so graceful
                 teardown is not delayed by the residual wait. *)
              let wake = Clock.now () +. timeout in
              let rec poll () =
                let remaining = wake -. Clock.now () in
                if remaining <= 0. then []
                else
                  match Unix.select fds [] [] remaining with
                  | r, _, _ -> r
                  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    if Checkpoint.interrupted () then [] else poll ()
              in
              poll ()
            end
          in
          List.iter
            (fun fd ->
              match
                Array.find_opt (fun s -> s.s_alive && s.s_resp = fd) slots
              with
              | None -> ()
              | Some slot ->
                (match Worker.feed slot.s_buf fd with
                 | exception Unix.Unix_error _ ->
                   worker_died slot ~reason:"read failed"
                 | `Eof -> worker_died slot ~reason:"worker closed its pipe"
                 | `Data _ ->
                   let rec drain () =
                     if slot.s_alive then
                       match Worker.extract slot.s_buf with
                       | Ok None -> ()
                       | Error msg ->
                         worker_died slot ~reason:("protocol error: " ^ msg)
                       | Ok (Some json) ->
                         (match Worker.response_of_json json with
                          | exception Checkpoint.Codec.Parse msg ->
                            worker_died slot
                              ~reason:("malformed response: " ^ msg)
                          | resp ->
                            if
                              resp.Worker.r_index <> slot.s_item
                              || resp.Worker.r_attempt <> slot.s_attempt
                            then
                              worker_died slot
                                ~reason:"response does not match the dispatched item"
                            else begin
                              handle_result slot resp;
                              drain ()
                            end)
                   in
                   drain ()))
            readable;
          (* Sweep per-item timeouts: the worker is presumed wedged. *)
          let now = Clock.now () in
          Array.iter
            (fun s ->
              if s.s_alive && s.s_item >= 0 && now > s.s_deadline then begin
                counters.c_timeouts <- counters.c_timeouts + 1;
                post_event cfg "item_timeout"
                  [ ("item", J.Int s.s_item); ("attempt", J.Int s.s_attempt);
                    ("worker", J.Int s.s_id) ];
                worker_died s ~reason:"item timeout"
              end)
            slots;
          loop ()
        end
      end
    end
  in
  loop ();
  (* Teardown: a graceful quit drains nothing (idle workers exit on Quit or
     on request-pipe EOF); an interrupted run SIGKILLs, mirroring the
     in-domain backend's "stop pulling items" semantics. *)
  if !stopped then
    Array.iter (fun s -> if s.s_alive then ignore (kill_slot s)) slots
  else begin
    Array.iter
      (fun s ->
        if s.s_alive then begin
          (try
             Worker.send s.s_req (Worker.request_to_json Worker.Quit)
           with Unix.Unix_error _ | Sys_error _ -> ());
          forget_ends s;
          (try Unix.close s.s_req with Unix.Unix_error _ -> ())
        end)
      slots;
    let t_quit = Clock.now () in
    Array.iter
      (fun s ->
        if s.s_alive then begin
          let status =
            let rec reap () =
              match Unix.waitpid [ Unix.WNOHANG ] s.s_pid with
              | 0, _ ->
                if Clock.now () -. t_quit > 2.0 then begin
                  (try Unix.kill s.s_pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  match Retry.eintr (fun () -> Unix.waitpid [] s.s_pid) with
                  | _, st -> status_reason st
                  | exception Unix.Unix_error _ -> "already reaped"
                end
                else begin
                  Retry.sleepf 0.02;
                  reap ()
                end
              | _, st -> status_reason st
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
              | exception Unix.Unix_error _ -> "already reaped"
            in
            reap ()
          in
          (try Unix.close s.s_resp with Unix.Unix_error _ -> ());
          s.s_alive <- false;
          post_event cfg "worker_exit"
            [ ("worker", J.Int s.s_id); ("pid", J.Int s.s_pid);
              ("status", J.Str status) ]
        end)
      slots
  end;
  let elapsed = prior_elapsed +. (Clock.now () -. t0) in
  let search_elapsed = elapsed -. (float_of_int expand_us /. 1e6) in
  (match progress with
   | None -> ()
   | Some p ->
     Progress.force p (fun () ->
         P.estimate_sample
           ~executions:(Atomic.get shared_execs)
           ~mass:(Atomic.get shared_mass) ~elapsed ~jobs:workers));
  (* Supervision telemetry rides along as gauges only — gauges are exempt
     from the jobs/workers determinism guarantee (see DESIGN.md). *)
  let with_gauges metrics =
    if not cfg.C.metrics then metrics
    else begin
      let m = ref metrics in
      let g name v = m := M.Snapshot.with_gauge !m name v in
      g "sup/workers" workers;
      g "sup/items" n;
      g "sup/expand_us" expand_us;
      g "sup/spawns" counters.c_spawns;
      g "sup/restarts" counters.c_restarts;
      g "sup/timeouts" counters.c_timeouts;
      g "sup/retries" counters.c_retries;
      g "sup/crashes" counters.c_crashes;
      g "sup/quarantined" counters.c_quarantined;
      !m
    end
  in
  let report =
    P.finalize_systematic ~results ~winner:!winner ~elapsed ~search_elapsed
      ~expand_timed_out ~with_gauges
  in
  (match ck with
   | None -> ()
   | Some ck ->
     P.parck_flush ck ~complete:(report.Report.verdict <> Report.Limits_reached));
  post_event cfg "supervisor_done"
    [ ("verdict", J.Str (Report.verdict_key report.Report.verdict));
      ("spawns", J.Int counters.c_spawns);
      ("restarts", J.Int counters.c_restarts);
      ("timeouts", J.Int counters.c_timeouts);
      ("retries", J.Int counters.c_retries);
      ("crashes", J.Int counters.c_crashes);
      ("quarantined", J.Int counters.c_quarantined) ];
  Search.post_run_end cfg report;
  report

let run ?resume (cfg : C.t) prog =
  let workers = resolve_workers cfg in
  if workers <= 1 then P.run ?resume cfg prog
  else
    match cfg.C.mode with
    | C.Dfs | C.Context_bounded _ ->
      if not (can_fork ()) then begin
        Printf.eprintf
          "fairmc: process workers unavailable on this platform; running %d \
           in-process domains instead\n%!"
          workers;
        P.run ?resume { cfg with C.jobs = workers; workers = 1 } prog
      end
      else begin
        match resume with
        | None -> run_systematic cfg prog ~workers
        | Some (Checkpoint.Par pa) -> run_systematic ~resume:pa cfg prog ~workers
        | Some (Checkpoint.Seq _ | Checkpoint.Par_sampling _) ->
          raise
            (Checkpoint.Mismatch
               "checkpoint payload does not fit a supervised systematic search \
                (resume with the jobs/workers setting that wrote it)")
      end
    | C.Random_walk _ | C.Priority_random _ | C.Round_robin ->
      (* Sampling shards are cheap and crash isolation buys little there;
         run them on in-process domains. Workers count as a jobs request. *)
      P.run ?resume { cfg with C.jobs = max cfg.C.jobs workers; workers = 1 } prog
