(** Worker IPC protocol: length-prefixed JSON frames over pipes.

    The wire vocabulary of the supervised process pool ({!Supervisor}): a
    frame is an 8-lowercase-hex-digit payload length followed by that many
    bytes of JSON. Requests flow parent→child, responses child→parent.
    Reports, stats and metric snapshots reuse the checkpoint codec
    ({!Checkpoint.Codec}) so every serialized form in the system agrees.

    Any framing violation — garbled header, oversized frame, non-JSON
    payload, truncation — surfaces as an [Error]; the supervisor treats it
    like a worker death (requeue, retry, eventually quarantine). *)

val protocol : string
(** ["fairmc-ipc/1"]; embedded in every response and checked on decode. *)

type request =
  | Run of {
      q_index : int;  (** work-item index in the DFS-ordered expansion *)
      q_attempt : int;  (** 0 on first dispatch; retries increment *)
      q_time_left : float option;
          (** remaining global time budget in seconds, [None] = unlimited.
              The child derives its search deadline from this — never from
              the per-item timeout, which is parent-side only (a slow but
              healthy item must not come back [Limits_reached]). *)
    }
  | Quit  (** drain and exit 0 *)

type response = {
  r_index : int;
  r_attempt : int;  (** echoed from the request; a mismatch is a protocol error *)
  r_report : Report.t;
  r_states : int64 list;  (** sorted coverage signatures (empty unless coverage) *)
  r_events : (bool * string * Fairmc_util.Json.t) list;
      (** (det, kind, data) triples collected during the item, in order; the
          parent re-posts them on its own stream with the slot's shard id *)
}

(** {1 Codec}

    Parsers raise {!Checkpoint.Codec.Parse} on malformed input. *)

val request_to_json : request -> Fairmc_util.Json.t
val request_of_json : Fairmc_util.Json.t -> request
val response_to_json : response -> Fairmc_util.Json.t
val response_of_json : Fairmc_util.Json.t -> response
val report_to_json : Report.t -> Fairmc_util.Json.t
val report_of_json : Fairmc_util.Json.t -> Report.t

(** {1 Framing} *)

val max_frame : int
(** Hard payload-size cap (64 MiB); larger headers are protocol errors. *)

val send : Unix.file_descr -> Fairmc_util.Json.t -> unit
(** Write one frame, restarting on EINTR until complete. *)

val send_slowly :
  ?chunks:int -> ?delay:float -> Unix.file_descr -> Fairmc_util.Json.t -> unit
(** Fault injection ([--inject-fault slowpipe]): the same frame, trickled in
    [chunks] pieces with [delay] seconds between them, to exercise the
    parent's partial-frame reassembly. *)

val recv : Unix.file_descr -> (Fairmc_util.Json.t option, string) result
(** Blocking read of one frame (child side). [Ok None] is a clean EOF before
    any byte of a frame; truncation and garbling are [Error]s. *)

(** {1 Incremental reassembly (parent side)}

    The supervisor feeds each slot's buffer from select-driven single
    [read(2)] calls and extracts complete frames as they arrive, so a slow
    worker never blocks the loop. *)

type inbuf

val inbuf : unit -> inbuf

val feed : inbuf -> Unix.file_descr -> [ `Data of int | `Eof ]
(** One [read(2)] into the buffer. Call when select reports the fd
    readable. *)

val extract : inbuf -> (Fairmc_util.Json.t option, string) result
(** Pop the next complete frame, [Ok None] when more bytes are needed. Call
    in a loop after {!feed}: one readiness wakeup can complete several
    frames. *)
