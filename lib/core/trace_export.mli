(** Counterexample schedules as Chrome trace_event documents.

    Re-executes a recorded schedule (the [decisions] of a
    {!Report.counterexample}) and maps it onto the trace_event timeline:
    one track per thread, every transition a 1-µs slice at its step index,
    yields and fair-scheduler priority-relation changes as instant markers,
    and a counter track sampling the enabled-thread count and the size of
    the priority relation. The result loads in Perfetto (ui.perfetto.dev)
    and [chrome://tracing]. *)

val of_schedule :
  ?fair_k:int -> ?race:Analysis_hook.race -> Program.t -> (int * int) list ->
  Fairmc_util.Json.t
(** [of_schedule prog decisions] replays [decisions] on a fresh engine,
    running the fair scheduler alongside to recover priority-change events.
    Replay stops early if the schedule does not fit the program (wrong
    program or stale schedule); the document then covers the feasible
    prefix. [fair_k] must match the search that produced the schedule
    (default 1). [race] adds category-["race"] instant markers at both
    access sites (skipped if they fall outside the replayed prefix). *)

val of_report : ?fair_k:int -> Program.t -> Report.t -> Fairmc_util.Json.t option
(** The trace document for the report's counterexample, or [None] when the
    verdict carries none. *)
