(* Static conflict facts attached to a program by the static-analysis
   layer (lib/static).

   The table maps each (thread, operation) a program can perform to the
   set of objects the underlying statement may read and write — objects
   being the engine's sequential registration ids, which for ChessLang
   coincide with declaration indices on both backends. [Indep] consults
   it instead of the purely syntactic same-object rule: the footprints
   see *every* global a statement touches (a statement reading two
   globals is one [Var_read] of the first; a [trylock] whose result is
   assigned to a global is a [Try_lock] op that also writes the global),
   so the table only ever adds conflicts relative to the default rule.
   That direction is what keeps sleep-set reduction sound. *)

type footprint = { fp_reads : int list; fp_writes : int list }

type t = {
  invisible : string list; (* merged (thread-local) globals, sorted *)
  merged_sites : int; (* SCHED sites turned silent by merging *)
  table : (int * int, footprint) Hashtbl.t; (* (tid, op key) -> footprint *)
}

let create ~invisible ~merged_sites =
  { invisible = List.sort compare invisible;
    merged_sites;
    table = Hashtbl.create 64 }

let invisible t = t.invisible
let merged_sites t = t.merged_sites

(* One key per (kind, object); [Choose]/[Join] fold their payload away so
   a runtime op always finds the footprint registered for its kind. *)
let op_key (op : Op.t) =
  (Op.kind_index op * 1024) + (match Op.obj_of op with Some o -> o + 1 | None -> 0)

let sorted_dedup l =
  List.sort_uniq compare l

(* The op's own object joins its footprint on the conservative side, so a
   table lookup can never declare two same-object operations independent
   when the default rule would not. *)
let add t ~tid ~op ~reads ~writes =
  let reads, writes =
    match (op : Op.t) with
    | Var_read o -> (o :: reads, writes)
    | _ ->
      (match Op.obj_of op with
       | Some o -> (reads, o :: writes)
       | None -> (reads, writes))
  in
  let key = (tid, op_key op) in
  let fp =
    match Hashtbl.find_opt t.table key with
    | None -> { fp_reads = sorted_dedup reads; fp_writes = sorted_dedup writes }
    | Some fp ->
      { fp_reads = sorted_dedup (reads @ fp.fp_reads);
        fp_writes = sorted_dedup (writes @ fp.fp_writes) }
  in
  Hashtbl.replace t.table key fp

let overlap a b = List.exists (fun x -> List.mem x b) a

(* The default syntactic rule, for operations outside the table (native
   workloads never register; a DSL program registers every op, but stay
   conservative regardless). *)
let syntactic_conflict (op1 : Op.t) (op2 : Op.t) =
  match Op.obj_of op1, Op.obj_of op2 with
  | Some o1, Some o2 when o1 = o2 ->
    (match op1, op2 with Var_read _, Var_read _ -> false | _ -> true)
  | _ -> false

let conflict t ~t1 ~op1 ~t2 ~op2 =
  match Hashtbl.find_opt t.table (t1, op_key op1),
        Hashtbl.find_opt t.table (t2, op_key op2) with
  | Some f1, Some f2 ->
    overlap f1.fp_writes f2.fp_writes
    || overlap f1.fp_writes f2.fp_reads
    || overlap f2.fp_writes f1.fp_reads
    || syntactic_conflict op1 op2
  | _ -> syntactic_conflict op1 op2
