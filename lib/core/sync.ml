module Fnv = Fairmc_util.Fnv

let sched op =
  if not (Runtime.ctx ()).in_thread then
    failwith (Printf.sprintf "Sync: %s called outside of a running thread" (Op.to_string op));
  Effect.perform (Runtime.Sched op)

let sched_bool op = sched op = 1

let yield () = ignore (sched Op.Yield)
let sleep () = ignore (sched Op.Sleep)

let spawn body =
  let c = Runtime.ctx () in
  c.spawn_body <- Some body;
  ignore (sched Op.Spawn);
  c.spawn_result

let join tid = ignore (sched (Op.Join tid))
let self () = (Runtime.ctx ()).current_tid

let choose n =
  if n <= 0 then invalid_arg "Sync.choose";
  if n = 1 then 0 else sched (Op.Choose n)

let at region =
  let c = Runtime.ctx () in
  if c.in_thread then Hashtbl.replace c.regions c.current_tid region

let fail msg = raise (Runtime.Assertion_failure msg)
let check cond msg = if not cond then fail msg

let register kind name init =
  let store = Runtime.get_store () in
  Objects.register store ?name kind ~init

module Mutex = struct
  type t = Op.obj

  let create ?name () = register Objects.Mutex name 0
  let lock m = ignore (sched (Op.Lock m))
  let try_lock m = sched_bool (Op.Try_lock m)
  let timed_lock m = sched_bool (Op.Timed_lock m)
  let unlock m = ignore (sched (Op.Unlock m))
  let id m = m
end

module Semaphore = struct
  type t = Op.obj

  let create ?name init = register Objects.Semaphore name init
  let wait s = ignore (sched (Op.Sem_wait s))
  let try_wait s = sched_bool (Op.Sem_try_wait s)
  let timed_wait s = sched_bool (Op.Sem_timed_wait s)
  let post s = ignore (sched (Op.Sem_post s))
  let id s = s
end

module Event = struct
  type t = Op.obj

  let create ?name ?(auto = false) ?(initial = false) () =
    register
      (if auto then Objects.Auto_event else Objects.Manual_event)
      name
      (if initial then 1 else 0)

  let wait e = ignore (sched (Op.Ev_wait e))
  let timed_wait e = sched_bool (Op.Ev_timed_wait e)
  let set e = ignore (sched (Op.Ev_set e))
  let reset e = ignore (sched (Op.Ev_reset e))
  let id e = e
end

module Svar = struct
  type 'a t = { obj : Op.obj; mutable value : 'a }

  let create ?name ?hash v =
    let obj = register Objects.Var name 0 in
    let sv = { obj; value = v } in
    (match hash with
     | None -> ()
     | Some h ->
       let c = Runtime.ctx () in
       c.snapshotters <- (fun acc -> h acc sv.value) :: c.snapshotters);
    sv

  (* Outside a thread (during [boot]) accesses are direct: initialization is
     deterministic and needs no scheduling point. *)
  let get sv =
    if (Runtime.ctx ()).in_thread then ignore (sched (Op.Var_read sv.obj));
    sv.value

  let set sv v =
    if (Runtime.ctx ()).in_thread then ignore (sched (Op.Var_write sv.obj));
    sv.value <- v

  let update sv f =
    if (Runtime.ctx ()).in_thread then ignore (sched (Op.Var_rmw sv.obj));
    let old = sv.value in
    sv.value <- f old;
    old

  let cas sv ~expected v =
    if (Runtime.ctx ()).in_thread then ignore (sched (Op.Var_rmw sv.obj));
    if sv.value = expected then begin
      sv.value <- v;
      true
    end
    else false

  let incr sv = update sv (fun x -> x + 1)
  let id sv = sv.obj
end

module Raw = struct
  let var ?name () = register Objects.Var name 0
  let sched op = sched op
end

let int_var ?name v = Svar.create ?name ~hash:Fnv.int v
let bool_var ?name v = Svar.create ?name ~hash:(fun h b -> Fnv.int h (Bool.to_int b)) v
