(** The fair demonic scheduler of Musuvathi & Qadeer (PLDI 2008), Algorithm 1.

    The scheduler maintains, per state, a priority relation [P] over threads
    and three window-tracking sets per thread:

    - [S t]: threads scheduled since the last yield of [t];
    - [E t]: threads continuously enabled since the last yield of [t];
    - [D t]: threads disabled by a transition of [t] since its last yield.

    An edge [(t, u) ∈ P] means [t] may be scheduled only when [u] is
    disabled. The relation starts empty, grows only when a thread yields
    (penalizing the yielding thread against threads it starved or disabled in
    the closing window — the set [H] of line 24), and edges into the thread
    just scheduled are removed (line 13). Theorem 1 shows every infinite
    execution that satisfies the good-samaritan property is fair; Theorem 3
    shows the schedulable set is empty only at real deadlocks, which rests on
    [P] remaining acyclic.

    [step] updates the scheduler {e in place} and returns it: the stateless
    search re-executes from the initial state on every backtrack, recomputing
    the scheduler along the replay, so the pre-step value is always dead on
    the hot path and copying all five per-thread arrays per transition was
    pure overhead (see [bench fair_sched]). Callers that must keep an old
    state alive (tests, snapshotting) take an explicit {!copy} first;
    [create], [add_thread] and [copy] still return fresh values that share no
    arrays with their input.

    The [k] parameter implements the paper's final remark in Section 3:
    process only every [k]-th yield of each thread, which extends soundness
    to programs whose states need executions with yield count up to [k-1]. *)

type t

val create : nthreads:int -> ?k:int -> unit -> t
(** Initial scheduler state for threads [0 .. nthreads-1]: [P] empty and each
    window initialized per the paper ([E(u) = {}], [D(u) = S(u) = Tid]) so
    that the first yield of any thread leaves [P] unchanged.
    @param k process every [k]-th yield; default 1. *)

val nthreads : t -> int

val copy : t -> t
(** A deep copy sharing no mutable arrays with the original: stepping one
    does not affect the other. *)

val add_thread : t -> t
(** Account for a dynamically spawned thread (CHESS supports programs that
    create threads mid-execution). The new thread's window is initialized
    exactly like at [create]; it does not appear in the windows of existing
    threads, which is sound because it cannot have been starved before
    existing. *)

val schedulable : t -> enabled:Fairmc_util.Bitset.t -> Fairmc_util.Bitset.t
(** Line 7: [T = ES \ pre(P, ES)] — the enabled threads not deprioritized
    below another enabled thread. By Theorem 3, the result is empty iff
    [enabled] is empty. *)

type obs = {
  mutable edges_added : int;  (** edges inserted by yield penalties (line 24) *)
  mutable edges_removed : int;  (** edges dropped when their sink is scheduled (line 13) *)
  mutable penalties : int;  (** (k-th) yields that closed a window *)
}
(** Accumulator for priority-relation updates, filled by [step] when passed.
    Counting is exact and costs a few extra bitset cardinals per step, which
    is why it is opt-in — the observability layer passes one cell for the
    whole search and exports it into the metrics registry. *)

val obs_create : unit -> obs

val step :
  ?obs:obs ->
  t ->
  chosen:int ->
  yielded:bool ->
  es_before:Fairmc_util.Bitset.t ->
  es_after:Fairmc_util.Bitset.t ->
  t
(** Lines 12–29: update after [chosen] executed one transition. [yielded] is
    [yield(curr, chosen)] — whether that transition was a yield; [es_before]
    and [es_after] are the enabled sets of the states around the transition.
    Mutates [t] in place and returns it; take a {!copy} first if the pre-step
    state must survive. *)

val edge_count : t -> int
(** Current size of the priority relation [P]. *)

(** {1 Introspection (tests, theorems, diagnostics)} *)

val priority_pairs : t -> (int * int) list
(** Current edges [(t, u)] of [P]. *)

val priority_blocked : t -> enabled:Fairmc_util.Bitset.t -> Fairmc_util.Bitset.t
(** Enabled threads excluded from the schedulable set by [P]; a context
    switch forced this way is a fairness preemption, which context-bounded
    search must not count (paper §4). *)

val sets : t -> tid:int -> Fairmc_util.Bitset.t * Fairmc_util.Bitset.t * Fairmc_util.Bitset.t
(** [(E t, D t, S t)] — window sets for [tid]. *)

val is_acyclic : t -> bool
(** The loop invariant of Theorem 3. Always true; exposed for tests. *)

val pp : Format.formatter -> t -> unit
