(* Durable search sessions. See checkpoint.mli and DESIGN.md ("Durable
   sessions") for the model; the short version: a checkpoint is the complete
   control state of the search at a path boundary, everything else is
   recomputed by re-execution. *)

module B = Fairmc_util.Bitset
module Json = Fairmc_util.Json
module MS = Fairmc_obs.Metrics.Snapshot
module AH = Analysis_hook
module C = Search_config

let schema = "fairmc-ckpt/1"

type decision = { c_tid : int; c_alt : int; c_cost : int }
type frame = { c_chosen : decision; c_rest : decision list; c_sleep : B.t; c_width : int }

type seq_state = {
  sq_frames : frame array;
  sq_rng : int64;
  sq_stats : Report.stats;
  sq_metrics : MS.t;
  sq_states : int64 list;
  sq_edges : AH.lock_edge list;
  sq_complete : bool;
}

type par_item = {
  pi_index : int;
  pi_stats : Report.stats;
  pi_metrics : MS.t;
  pi_states : int64 list;
  pi_edges : AH.lock_edge list;
}

type par_state = {
  pa_split_depth : int;
  pa_n_items : int;
  pa_elapsed : float;
  pa_items : par_item list;
  pa_complete : bool;
}

type sampling_state = {
  sa_round : int;
  sa_stats : Report.stats;
  sa_metrics : MS.t;
  sa_states : int64 list;
  sa_edges : AH.lock_edge list;
  sa_complete : bool;
}

type payload =
  | Seq of seq_state
  | Par of par_state
  | Par_sampling of sampling_state

type t = { fingerprint : string; payload : payload }

(* ------------------------------------------------------------------ *)
(* Config fingerprint.                                                 *)

(* Budgets (max_executions, time_limit, sampling counts, jobs, split_depth)
   are excluded on purpose: resuming exists precisely to extend them. *)
let fingerprint (cfg : C.t) ~program =
  let b v = if v then "y" else "n" in
  let io = function None -> "-" | Some i -> string_of_int i in
  let mode =
    match cfg.mode with
    | C.Dfs -> "dfs"
    | C.Context_bounded c -> "cb=" ^ string_of_int c
    | C.Random_walk _ -> "random"
    | C.Round_robin -> "rr"
    | C.Priority_random _ -> "prio"
  in
  String.concat ";"
    [ "prog=" ^ program;
      "mode=" ^ mode;
      "fair=" ^ b cfg.fair;
      "k=" ^ string_of_int cfg.fair_k;
      "db=" ^ io cfg.depth_bound;
      "tail=" ^ b cfg.random_tail;
      "max_steps=" ^ string_of_int cfg.max_steps;
      "livelock=" ^ io cfg.livelock_bound;
      "window=" ^ string_of_int cfg.tail_window;
      "seed=" ^ Int64.to_string cfg.seed;
      "sleep=" ^ b cfg.sleep_sets;
      "cov=" ^ b cfg.coverage;
      "metrics=" ^ b cfg.metrics;
      "analyses=" ^ String.concat "," (List.map (fun (a : AH.t) -> a.AH.name) cfg.analyses);
      (* Backends are observably equivalent, but a resumed session must
         replay the prefix on the backend that produced the checkpoint. *)
      "interp=" ^ C.interp_name cfg.interp;
      (* Transition merging changes the tree shape. *)
      "spor=" ^ b cfg.static_por ]

(* ------------------------------------------------------------------ *)
(* JSON codec.                                                         *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let field obj name =
  match obj with
  | Json.Obj l ->
    (match List.assoc_opt name l with
     | Some v -> v
     | None -> fail "missing field %S" name)
  | _ -> fail "expected an object for field %S" name

let as_int name = function Json.Int i -> i | _ -> fail "field %S: expected int" name
let as_bool name = function Json.Bool b -> b | _ -> fail "field %S: expected bool" name
let as_str name = function Json.Str s -> s | _ -> fail "field %S: expected string" name
let as_arr name = function Json.Arr l -> l | _ -> fail "field %S: expected array" name

let as_float name = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> fail "field %S: expected number" name

let int_f o name = as_int name (field o name)
let bool_f o name = as_bool name (field o name)
let str_f o name = as_str name (field o name)
let arr_f o name = as_arr name (field o name)
let float_f o name = as_float name (field o name)

(* Fields added after fairmc-ckpt/1 shipped (frame widths, probe mass,
   search-phase wall time) are read leniently so older checkpoints keep
   loading; the defaults only skew progress estimates, never the search. *)
let opt_field o name =
  match o with Json.Obj l -> List.assoc_opt name l | _ -> None

let int_d o name ~default =
  match opt_field o name with Some v -> as_int name v | None -> default

let float_d o name ~default =
  match opt_field o name with Some v -> as_float name v | None -> default

(* int64 values (RNG state, state signatures) do not fit a JSON double, so
   they travel as decimal strings. *)
let int64_to_json v = Json.Str (Int64.to_string v)

let int64_of_json name = function
  | Json.Str s ->
    (try Int64.of_string s with Failure _ -> fail "field %S: bad int64 %S" name s)
  | _ -> fail "field %S: expected int64 string" name

let opt_to_json f = function None -> Json.Null | Some v -> f v
let opt_of_json f = function Json.Null -> None | v -> Some (f v)

(* Report.stats — own codec (Report.stats_to_json emits derived fields and
   has no parser). *)
let stats_to_json (s : Report.stats) =
  Json.Obj
    [ ("executions", Json.Int s.Report.executions);
      ("transitions", Json.Int s.transitions);
      ("states", Json.Int s.states);
      ("nonterminating", Json.Int s.nonterminating);
      ("depth_bound_hits", Json.Int s.depth_bound_hits);
      ("sleep_set_prunes", Json.Int s.sleep_set_prunes);
      ("yields", Json.Int s.yields);
      ("max_depth", Json.Int s.max_depth);
      ("elapsed", Json.Float s.elapsed);
      ("first_error_execution", opt_to_json (fun i -> Json.Int i) s.first_error_execution);
      ("first_error_time", opt_to_json (fun f -> Json.Float f) s.first_error_time);
      ("sync_ops_per_exec", Json.Int s.sync_ops_per_exec);
      ("max_threads", Json.Int s.max_threads);
      ("search_elapsed", Json.Float s.search_elapsed);
      ("probe_mass", Json.Int s.probe_mass) ]

let stats_of_json o =
  { Report.executions = int_f o "executions";
    transitions = int_f o "transitions";
    states = int_f o "states";
    nonterminating = int_f o "nonterminating";
    depth_bound_hits = int_f o "depth_bound_hits";
    sleep_set_prunes = int_f o "sleep_set_prunes";
    yields = int_f o "yields";
    max_depth = int_f o "max_depth";
    elapsed = float_f o "elapsed";
    first_error_execution = opt_of_json (as_int "first_error_execution") (field o "first_error_execution");
    first_error_time = opt_of_json (as_float "first_error_time") (field o "first_error_time");
    sync_ops_per_exec = int_f o "sync_ops_per_exec";
    max_threads = int_f o "max_threads";
    search_elapsed = float_d o "search_elapsed" ~default:0.;
    probe_mass = int_d o "probe_mass" ~default:0 }

(* Metrics entries carry an explicit kind tag: Snapshot.to_json flattens
   counters and gauges to the same representation, which cannot be parsed
   back. *)
let entry_to_json (name, e) =
  match e with
  | MS.Counter v -> Json.Arr [ Json.Str name; Json.Str "c"; Json.Int v ]
  | MS.Gauge v -> Json.Arr [ Json.Str name; Json.Str "g"; Json.Int v ]
  | MS.Histogram h ->
    Json.Arr
      [ Json.Str name; Json.Str "h";
        Json.Obj
          [ ("count", Json.Int h.MS.count);
            ("sum", Json.Int h.sum);
            ("max", Json.Int h.max);
            ("buckets",
             Json.Arr
               (List.map (fun (i, n) -> Json.Arr [ Json.Int i; Json.Int n ]) h.buckets)) ] ]

let entry_of_json = function
  | Json.Arr [ Json.Str name; Json.Str "c"; Json.Int v ] -> (name, MS.Counter v)
  | Json.Arr [ Json.Str name; Json.Str "g"; Json.Int v ] -> (name, MS.Gauge v)
  | Json.Arr [ Json.Str name; Json.Str "h"; o ] ->
    let buckets =
      List.map
        (function
          | Json.Arr [ Json.Int i; Json.Int n ] -> (i, n)
          | _ -> fail "histogram %S: bad bucket" name)
        (arr_f o "buckets")
    in
    ( name,
      MS.Histogram
        { MS.count = int_f o "count"; sum = int_f o "sum"; max = int_f o "max"; buckets } )
  | _ -> fail "bad metrics entry"

let metrics_to_json m = Json.Arr (List.map entry_to_json (MS.entries m))
let metrics_of_json name v = MS.of_entries (List.map entry_of_json (as_arr name v))

let decision_to_json d = Json.Arr [ Json.Int d.c_tid; Json.Int d.c_alt; Json.Int d.c_cost ]

let decision_of_json = function
  | Json.Arr [ Json.Int t; Json.Int a; Json.Int c ] -> { c_tid = t; c_alt = a; c_cost = c }
  | _ -> fail "bad decision"

let frame_to_json f =
  Json.Obj
    [ ("chosen", decision_to_json f.c_chosen);
      ("rest", Json.Arr (List.map decision_to_json f.c_rest));
      ("sleep", Json.Int (B.to_int f.c_sleep));
      ("width", Json.Int f.c_width) ]

let frame_of_json o =
  let c_rest = List.map decision_of_json (arr_f o "rest") in
  { c_chosen = decision_of_json (field o "chosen");
    c_rest;
    c_sleep = B.unsafe_of_int (int_f o "sleep");
    (* Width of the node when it was pushed; pre-width checkpoints fall back
       to the remaining alternatives (a lower bound — estimates only). *)
    c_width = int_d o "width" ~default:(1 + List.length c_rest) }

let states_to_json l = Json.Arr (List.map int64_to_json l)
let states_of_json name v = List.map (int64_of_json name) (as_arr name v)

let edge_to_json (e : AH.lock_edge) =
  Json.Arr
    [ Json.Int e.AH.e_from; Json.Str e.e_from_name; Json.Int e.e_to; Json.Str e.e_to_name ]

let edge_of_json = function
  | Json.Arr [ Json.Int f; Json.Str fn; Json.Int t; Json.Str tn ] ->
    { AH.e_from = f; e_from_name = fn; e_to = t; e_to_name = tn }
  | _ -> fail "bad lock edge"

let edges_to_json l = Json.Arr (List.map edge_to_json l)
let edges_of_json name v = List.map edge_of_json (as_arr name v)

let payload_to_json = function
  | Seq s ->
    Json.Obj
      [ ("kind", Json.Str "seq");
        ("frames", Json.Arr (Array.to_list (Array.map frame_to_json s.sq_frames)));
        ("rng", int64_to_json s.sq_rng);
        ("stats", stats_to_json s.sq_stats);
        ("metrics", metrics_to_json s.sq_metrics);
        ("states", states_to_json s.sq_states);
        ("edges", edges_to_json s.sq_edges);
        ("complete", Json.Bool s.sq_complete) ]
  | Par p ->
    Json.Obj
      [ ("kind", Json.Str "par");
        ("split_depth", Json.Int p.pa_split_depth);
        ("n_items", Json.Int p.pa_n_items);
        ("elapsed", Json.Float p.pa_elapsed);
        ("items",
         Json.Arr
           (List.map
              (fun it ->
                Json.Obj
                  [ ("index", Json.Int it.pi_index);
                    ("stats", stats_to_json it.pi_stats);
                    ("metrics", metrics_to_json it.pi_metrics);
                    ("states", states_to_json it.pi_states);
                    ("edges", edges_to_json it.pi_edges) ])
              p.pa_items));
        ("complete", Json.Bool p.pa_complete) ]
  | Par_sampling s ->
    Json.Obj
      [ ("kind", Json.Str "par-sampling");
        ("round", Json.Int s.sa_round);
        ("stats", stats_to_json s.sa_stats);
        ("metrics", metrics_to_json s.sa_metrics);
        ("states", states_to_json s.sa_states);
        ("edges", edges_to_json s.sa_edges);
        ("complete", Json.Bool s.sa_complete) ]

let payload_of_json o =
  match str_f o "kind" with
  | "seq" ->
    Seq
      { sq_frames = Array.of_list (List.map frame_of_json (arr_f o "frames"));
        sq_rng = int64_of_json "rng" (field o "rng");
        sq_stats = stats_of_json (field o "stats");
        sq_metrics = metrics_of_json "metrics" (field o "metrics");
        sq_states = states_of_json "states" (field o "states");
        sq_edges = edges_of_json "edges" (field o "edges");
        sq_complete = bool_f o "complete" }
  | "par" ->
    Par
      { pa_split_depth = int_f o "split_depth";
        pa_n_items = int_f o "n_items";
        pa_elapsed = float_f o "elapsed";
        pa_items =
          List.map
            (fun io ->
              { pi_index = int_f io "index";
                pi_stats = stats_of_json (field io "stats");
                pi_metrics = metrics_of_json "metrics" (field io "metrics");
                pi_states = states_of_json "states" (field io "states");
                pi_edges = edges_of_json "edges" (field io "edges") })
            (arr_f o "items");
        pa_complete = bool_f o "complete" }
  | "par-sampling" ->
    Par_sampling
      { sa_round = int_f o "round";
        sa_stats = stats_of_json (field o "stats");
        sa_metrics = metrics_of_json "metrics" (field o "metrics");
        sa_states = states_of_json "states" (field o "states");
        sa_edges = edges_of_json "edges" (field o "edges");
        sa_complete = bool_f o "complete" }
  | k -> fail "unknown payload kind %S" k

let to_json t =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("fingerprint", Json.Str t.fingerprint);
      ("payload", payload_to_json t.payload) ]

let of_json j =
  try
    let s = str_f j "schema" in
    if s <> schema then fail "unsupported checkpoint schema %S (expected %S)" s schema;
    Ok { fingerprint = str_f j "fingerprint"; payload = payload_of_json (field j "payload") }
  with Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* File I/O.                                                           *)

(* Deterministic fault injection ([--inject-fault savefail]): the next [n]
   physical save attempts fail as if the filesystem were transiently
   unhappy. Tests and CI use it to drive the retry path below. *)
let inject_save_failures = ref 0

(* fsync a directory so a just-renamed entry survives a crash. Some
   filesystems refuse fsync on a directory fd (EINVAL et al.); durability
   then degrades to the rename's own guarantees, which is the best
   available. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Fairmc_util.Retry.eintr (fun () -> Unix.fsync fd)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let save_result path t =
  (* Serialize once, outside the retry loop: an encoding bug is not
     transient and must propagate, not be retried. *)
  let doc = to_json t in
  (* The temp suffix is pid-unique: two processes spooling checkpoints into
     the same directory (chessd runners, a supervised run next to a manual
     one) must never truncate each other's in-flight temp file. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let attempt () =
    if !inject_save_failures > 0 then begin
      decr inject_save_failures;
      raise (Sys_error (tmp ^ ": injected transient save failure"))
    end;
    (* Write, flush, fsync, then rename: without the fsync a crash shortly
       after "success" can leave [path] pointing at a truncated or empty
       file — rename orders metadata, not data. *)
    let oc = Out_channel.open_bin tmp in
    Fun.protect
      ~finally:(fun () -> try Out_channel.close oc with Sys_error _ -> ())
      (fun () ->
        Out_channel.output_string oc (Json.to_string ~pretty:true doc);
        Out_channel.output_char oc '\n';
        Out_channel.flush oc;
        Fairmc_util.Retry.eintr (fun () ->
            Unix.fsync (Unix.descr_of_out_channel oc)));
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  in
  let retryable = function Sys_error _ | Unix.Unix_error _ -> true | _ -> false in
  match Fairmc_util.Retry.transient ~attempts:4 ~base_delay:0.005 ~retryable attempt with
  | Ok () -> Ok ()
  | Error e ->
    (* The rename never ran (or failed), so the previous checkpoint at
       [path] is intact; just drop the stale temp file. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    Error
      (match e with
       | Sys_error m -> m
       | Unix.Unix_error (err, fn, arg) ->
         Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)
       | e -> Printexc.to_string e)

let save path t =
  match save_result path t with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "fairmc: checkpoint save failed: %s (keeping the previous checkpoint)\n%!"
      msg

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    (match Json.of_string contents with
     | Error e -> Error (Printf.sprintf "not a JSON document: %s" e)
     | Ok j -> of_json j)

(* ------------------------------------------------------------------ *)
(* Resume validation.                                                  *)

exception Mismatch of string

let plan_resume t (cfg : C.t) ~program =
  let fp = fingerprint cfg ~program in
  if t.fingerprint <> fp then
    Error
      (Printf.sprintf
         "config fingerprint mismatch\n  checkpoint: %s\n  requested:  %s" t.fingerprint fp)
  else
    let complete =
      match t.payload with
      | Seq s -> s.sq_complete
      | Par p -> p.pa_complete
      | Par_sampling s -> s.sa_complete
    in
    if complete then Error "checkpoint records a completed search; nothing to resume"
    else Ok t.payload

let merge_stats ~(prior : Report.stats) (d : Report.stats) =
  { Report.executions = prior.Report.executions + d.Report.executions;
    transitions = prior.transitions + d.transitions;
    (* The resumed session preloads the coverage table, so its [states] is
       already the union; [max] also covers the coverage-off case (both 0). *)
    states = max prior.states d.states;
    nonterminating = prior.nonterminating + d.nonterminating;
    depth_bound_hits = prior.depth_bound_hits + d.depth_bound_hits;
    sleep_set_prunes = prior.sleep_set_prunes + d.sleep_set_prunes;
    yields = prior.yields + d.yields;
    max_depth = max prior.max_depth d.max_depth;
    elapsed = prior.elapsed +. d.elapsed;
    first_error_execution =
      (match prior.first_error_execution with
       | Some _ as e -> e
       | None -> Option.map (fun e -> prior.executions + e) d.first_error_execution);
    first_error_time =
      (match prior.first_error_time with
       | Some _ as t -> t
       | None -> Option.map (fun t -> prior.elapsed +. t) d.first_error_time);
    sync_ops_per_exec = max prior.sync_ops_per_exec d.sync_ops_per_exec;
    max_threads = max prior.max_threads d.max_threads;
    search_elapsed = prior.search_elapsed +. d.search_elapsed;
    (* Sessions explore disjoint parts of the tree, so probe masses add
       exactly like executions. *)
    probe_mass = prior.probe_mass + d.probe_mass }

(* ------------------------------------------------------------------ *)
(* Graceful interruption.                                              *)

let interrupt_flag = Atomic.make false
let interrupted () = Atomic.get interrupt_flag
let request_interrupt () = Atomic.set interrupt_flag true
let clear_interrupt () = Atomic.set interrupt_flag false

let install_signal_handlers () =
  let handle _ =
    (* Second signal: the user really means it. 130 = 128 + SIGINT. *)
    if Atomic.get interrupt_flag then Stdlib.exit 130 else Atomic.set interrupt_flag true
  in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handle) with Invalid_argument _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* ------------------------------------------------------------------ *)
(* Codec building blocks, shared with the worker IPC protocol.         *)

module Codec = struct
  exception Parse = Parse

  let fail = fail
  let field = field
  let opt_field = opt_field
  let as_int = as_int
  let as_bool = as_bool
  let as_str = as_str
  let as_arr = as_arr
  let as_float = as_float
  let int_f = int_f
  let bool_f = bool_f
  let str_f = str_f
  let arr_f = arr_f
  let float_f = float_f
  let int_d = int_d
  let float_d = float_d
  let int64_to_json = int64_to_json
  let int64_of_json = int64_of_json
  let opt_to_json = opt_to_json
  let opt_of_json = opt_of_json
  let stats_to_json = stats_to_json
  let stats_of_json = stats_of_json
  let metrics_to_json = metrics_to_json
  let metrics_of_json = metrics_of_json
  let states_to_json = states_to_json
  let states_of_json = states_of_json
  let edges_to_json = edges_to_json
  let edges_of_json = edges_of_json
end
