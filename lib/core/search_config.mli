(** Search strategy configuration.

    Mirrors the experimental setups of the paper's Section 4: systematic
    depth-first search and context-bounded search, each with the fair
    scheduler on or off; unfair searches are depth-bounded and complete each
    pruned path with a random tail (paper §4.2.1); random-walk, round-robin
    and random-priority (Apt–Olderog) schedulers are baselines for the
    discussion in Sections 2 and 5. *)

type mode =
  | Dfs  (** exhaustive DFS over the schedulable set *)
  | Context_bounded of int
      (** DFS over schedules with at most [c] preemptions. A switch away from
          an enabled current thread costs 1 unless it was forced by the fair
          scheduler (such switches are not counted — paper §4). *)
  | Random_walk of int  (** [n] executions with uniform random scheduling *)
  | Round_robin  (** one execution, threads stepped in cyclic tid order *)
  | Priority_random of int
      (** [n] executions of the Apt–Olderog-style scheduler: every thread
          gets a fresh random priority after each step, highest-priority
          enabled thread runs. *)

type interp = Vm | Ast
    (** DSL execution backend: the bytecode VM (default) or the AST-walking
        interpreter kept as the differential-testing oracle. Frontends that
        compile programs themselves (e.g. native workloads) ignore this;
        the ChessLang CLI maps it to {!Fairmc_dsl.backend}. Recorded in
        checkpoint fingerprints: a session must resume on the backend that
        produced it. *)

type fault_kind =
  | Crash  (** the worker process SIGKILLs itself before running the item *)
  | Hang  (** the worker spins forever, exercising the item timeout *)
  | Garble  (** the worker writes a non-frame byte sequence and exits *)
  | Slow_pipe
      (** the worker trickles its response frame through the pipe in small
          delayed chunks, exercising partial-read reassembly *)
  | Save_fail
      (** the supervisor's first checkpoint save attempts fail transiently,
          exercising the save retry/no-clobber path *)

type fault = { fault_kind : fault_kind; fault_seed : int }
(** Deterministic fault injection for the supervised process pool
    ({!Supervisor}): the fault fires exactly once, on the first attempt of
    work item [fault_seed mod n_items]. Because retries are fault-free, every
    injected fault must leave the final verdict unchanged (except a budget
    of zero retries, which surfaces a {!Report.Crash}). *)

type t = {
  fair : bool;  (** use the fair scheduler of Algorithm 1 *)
  fair_k : int;  (** process every k-th yield (paper §3, final remark) *)
  mode : mode;
  depth_bound : int option;
      (** unfair searches: systematic scheduling choices only below this
          depth. [None] means unbounded (caution: diverges on cyclic state
          spaces — the problem the paper solves). *)
  random_tail : bool;
      (** complete depth-bounded paths with random scheduling to termination,
          counting states seen on the way (paper §4.2.1) *)
  max_steps : int;
      (** hard per-execution cap; reaching it classifies the execution as
          nonterminating (the Figure 2 measurement) *)
  livelock_bound : int option;
      (** fair searches: an execution reaching this many steps is reported as
          a divergence — the paper's outcomes 2 and 3. Defaults to
          [max_steps] when [None]. *)
  tail_window : int;
      (** suffix length inspected to classify a divergence as a
          good-samaritan violation vs. fair nontermination *)
  max_executions : int option;
  time_limit : float option;  (** seconds *)
  seed : int64;
  sleep_sets : bool;  (** sleep-set partial-order reduction (extension) *)
  coverage : bool;  (** record distinct state signatures *)
  verbose : bool;
  jobs : int;
      (** worker domains for {!Par_search}: 1 runs the sequential search,
          [n > 1] runs [n] domains, [0] (or negative) uses
          [Domain.recommended_domain_count ()] *)
  split_depth : int;
      (** parallel systematic search: the decision tree is expanded
          sequentially to this depth and each frontier prefix becomes an
          independent work item (see DESIGN.md, "Parallel search") *)
  poll_interval : int;
      (** steps between wall-clock/cancellation polls inside an execution
          (rounded up to a power of two); small values tighten [time_limit]
          overshoot on long paths at a slight cost per step *)
  metrics : bool;
      (** collect the full instrument set into {!Report.t.metrics}. Off by
          default: when off, no registry exists and the hot paths pay one
          branch per site (see DESIGN.md, "Observability"). *)
  progress : bool;  (** emit a periodic progress line on stderr *)
  progress_interval : float;
      (** seconds between progress emissions (shared across worker domains);
          0 emits at every poll point *)
  on_progress : (Fairmc_obs.Progress.sample -> unit) option;
      (** user callback, driven by the same poll points as [progress]. Under
          parallel search it is invoked from worker domains (at most one
          emission per interval search-wide) and must be thread-safe. *)
  events : Fairmc_obs.Events.stream option;
      (** telemetry event stream (schema [fairmc-events/1]): run/path/error/
          checkpoint lifecycle events plus advisory span and estimate
          events. Shards buffer locally and flush at path boundaries; with
          [None] (the default) no event code runs. Not part of the
          checkpoint fingerprint — like budgets, the sink may differ between
          a run and its resume. See DESIGN.md, "Telemetry". *)
  analyses : Analysis_hook.t list;
      (** dynamic analyses run over every explored execution via the
          {!Engine.set_observer} step stream (empty by default — no observer
          installed, no cost). Each parallel shard gets its own instances;
          results are merged deterministically (see DESIGN.md, "Dynamic
          analyses"). A race reported by an analysis ends the search with a
          {!Report.Race} verdict, selected by the same DFS-first-error rule
          as engine-detected errors. *)
  checkpoint : string option;
      (** write a durable-session checkpoint (schema [fairmc-ckpt/1]) to this
          file so an interrupted run can be continued with [--resume]; written
          atomically (temp file + rename) at path boundaries, throttled by
          [checkpoint_interval], and always flushed once when the search stops
          (see DESIGN.md, "Durable sessions") *)
  checkpoint_interval : float;
      (** minimum seconds between periodic checkpoint writes; [0] writes at
          every path boundary (tests). Default 30. *)
  interp : interp;  (** DSL execution backend; default [Vm] *)
  static_por : bool;
      (** ChessLang programs loaded through the static-analysis layer
          (lib/static): merge provably thread-local transitions out of the
          scheduling-point set and attach the static conflict table
          consulted by {!Indep}. Default [true], on both backends (so the
          VM/AST differential contract is preserved). Native workloads
          ignore it. Recorded in checkpoint fingerprints: merging changes
          the tree shape, so a session must resume with the same setting. *)
  workers : int;
      (** supervised worker {e processes} for {!Supervisor}: 1 (default)
          keeps everything in-process ({!Par_search} handles [jobs]),
          [n > 1] forks [n] crash-isolated workers, [0] (or negative) uses
          [Domain.recommended_domain_count ()]. With no injected faults a
          supervised systematic run reports bit-identically to the
          in-domain [jobs = n] run. *)
  item_timeout : float option;
      (** supervised runs: wall-clock budget per work-item attempt; on
          expiry the worker is SIGKILLed and the item requeued (counting
          against [max_retries]). [None] (default) never times out. *)
  max_retries : int;
      (** supervised runs: how many times a work item is re-dispatched after
          a worker crash/timeout/protocol error before it is quarantined as
          a {!Report.Crash} verdict. Default 2. *)
  inject_fault : fault option;
      (** deterministic fault injection for tests/CI; [None] (default) in
          production *)
}

val default : t
(** Fair DFS: no depth bound, [max_steps = 20_000], livelock bound 10_000. *)

val fair_dfs : t
val unfair_dfs : depth_bound:int -> t
val fair_cb : int -> t
val unfair_cb : int -> depth_bound:int -> t

val describe : t -> string
val interp_name : interp -> string

val fault_kind_name : fault_kind -> string
(** ["crash"], ["hang"], ["garble"], ["slowpipe"], ["savefail"]. *)

val fault_kinds : fault_kind list
(** Every injectable kind, for test/CI matrices. *)

val fault_name : fault -> string
(** ["<kind>@<seed>"], the inverse of {!fault_of_string}. *)

val fault_of_string : string -> (fault, string) result
(** Parse ["<kind>"] or ["<kind>@<seed>"] (seed defaults to 0) — the
    [--inject-fault] CLI syntax. *)

val mode_name : mode -> string
(** Short mode label (["dfs"], ["cb=2"], …) — used by {!describe} and by the
    telemetry [run_start] event. *)
