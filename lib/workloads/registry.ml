type entry = {
  name : string;
  program : Fairmc_core.Program.t;
  expected : string;
  description : string;
}

let entry program expected description =
  { name = program.Fairmc_core.Program.name; program; expected; description }

let all () =
  [ entry (Litmus.fig3 ()) "verified" "paper Figure 3: two-thread spin loop";
    entry (Litmus.store_buffer ()) "verified" "classic store-buffer litmus (SC: no violation)";
    entry (Litmus.ticket_lock ()) "verified" "two threads under a ticket lock";
    entry (Litmus.race_assert ()) "safety" "racy check-then-act on a shared counter";
    entry (Dining.program ~n:2 Dining.Ordered) "verified" "2 dining philosophers, ordered forks";
    entry (Dining.program ~n:3 Dining.Ordered) "verified" "3 dining philosophers, ordered forks";
    entry (Dining.program ~n:2 Dining.Deadlock) "deadlock" "2 philosophers, circular wait";
    entry (Dining.program ~n:2 Dining.Try_acquire) "good-samaritan"
      "paper Figure 1: try-acquire retry loop (no yields, so the divergence
       violates the good-samaritan property)";
    entry (Dining.program ~n:2 Dining.Try_acquire_yield) "livelock"
      "Figure 1 with good-samaritan yields: fair livelock";
    entry (Wsq.program ~stealers:1 Wsq.Correct) "verified" "work-stealing queue, 1 stealer";
    entry (Wsq.program ~stealers:2 Wsq.Correct) "verified" "work-stealing queue, 2 stealers";
    entry (Wsq.program ~stealers:1 Wsq.Bug1) "safety" "WSQ bug 1: pop reads head before claim";
    entry (Wsq.program ~stealers:2 Wsq.Bug2) "safety" "WSQ bug 2: steal bumps head outside lock";
    entry (Wsq.program ~items:1 ~stealers:1 Wsq.Bug3) "safety"
      "WSQ bug 3: stale head in conflict re-check";
    entry (Channels.program Channels.Correct) "verified" "bounded channel, sender/receiver";
    entry (Channels.program Channels.Bug1) "safety" "channel bug 1: credit returned early";
    entry (Channels.program Channels.Bug2) "deadlock" "channel bug 2: lost wakeup";
    entry (Channels.program Channels.Bug3) "safety" "channel bug 3: close races send";
    entry (Channels.program Channels.Bug4) "safety" "channel bug 4: incorrect fix of bug 3";
    entry (Channels.fifo_program ~stages:3 ()) "verified" "channel pipeline (5 threads)";
    entry (Promise.program Promise.Blocking) "verified" "promise, blocking await";
    entry (Promise.program Promise.Spin_then_sleep) "verified" "promise, optimized await";
    entry (Promise.program Promise.Stale_cache) "livelock" "paper Figure 8: stale-cache livelock";
    entry (Taskpool.program Taskpool.Courteous) "verified" "task pool, courteous shutdown";
    entry (Taskpool.program Taskpool.Spin_shutdown) "good-samaritan"
      "paper Figure 7: spin in the shutdown window";
    entry (Lockfree.program Lockfree.Tagged) "verified"
      "Treiber stack with version tags (correct)";
    entry (Lockfree.program Lockfree.Aba) "safety" "Treiber stack ABA bug";
    entry (Singularity.program ~services:2 ~apps:1 ()) "verified"
      "Singularity-lite boot and shutdown (small)";
    entry (Races.unsync_counter ()) "race"
      "unsynchronized counter increments (no assertion: only --races sees it)";
    entry (Races.locked_counter ()) "verified" "mutex-protected counter twin (race-free)";
    entry (Races.dcl ()) "race" "broken double-checked locking: unlocked fast-path reads";
    entry (Races.dcl_locked ()) "verified" "double-checked locking, fully locked (race-free)";
    entry (Races.ab_ba ()) "verified"
      "AB/BA lock-order inversion serialized by a join: verified, but
       --lock-graph reports the potential-deadlock cycle" ]

let find n = List.find_opt (fun e -> e.name = n) (all ())
let names () = List.map (fun e -> e.name) (all ())
