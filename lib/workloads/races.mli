(** Workloads exercising the dynamic analyses (PR 4): data races the base
    safety checker cannot see (no assertion fails), their correctly
    synchronized twins, and a lock-order inversion that never deadlocks in
    any explored schedule but is flagged by the lock graph. *)

val unsync_counter : unit -> Fairmc_core.Program.t
(** Two threads increment a shared counter with plain read/write — a lost
    update and an HB race, but no assertion, so the base checker verifies
    it. *)

val locked_counter : unit -> Fairmc_core.Program.t
(** The mutex-protected twin of {!unsync_counter}, with a join-checker
    asserting the final sum. Race-free. *)

val dcl : unit -> Fairmc_core.Program.t
(** Broken double-checked locking: the fast-path read of the [initialized]
    flag (and the subsequent data read) skips the mutex. Functionally
    correct under sequential consistency — the assertion never fires — but
    racy. *)

val dcl_locked : unit -> Fairmc_core.Program.t
(** Double-checked locking done naively right: every access under the
    mutex. Race-free. *)

val ab_ba : unit -> Fairmc_core.Program.t
(** Thread 0 locks A then B; thread 1 joins thread 0 first, then locks B
    then A. The join makes a deadlock impossible, so the checker verifies
    it — but the lock-order graph contains the A→B→A cycle: a refactor
    that removes the join deadlocks. *)
