open Fairmc_core

let unsync_counter () =
  Program.of_threads ~name:"races-unsync-counter" @@ fun () ->
  let c = Sync.int_var ~name:"counter" 0 in
  let bump () = Sync.Svar.set c (Sync.Svar.get c + 1) in
  [ bump; bump ]

let locked_counter () =
  Program.of_threads ~name:"races-locked-twin" @@ fun () ->
  let c = Sync.int_var ~name:"counter" 0 in
  let m = Sync.Mutex.create ~name:"m" () in
  let bump () =
    Sync.Mutex.lock m;
    Sync.Svar.set c (Sync.Svar.get c + 1);
    Sync.Mutex.unlock m
  in
  [ bump;
    bump;
    (fun () ->
      Sync.join 0;
      Sync.join 1;
      Sync.check (Sync.Svar.get c = 2) "locked counter: lost update") ]

(* Double-checked lazy initialization. [locked:false] is the textbook bug:
   the fast path reads [initialized] (and then [data]) without holding the
   mutex, racing with the initializer's locked writes. Under the checker's
   sequentially consistent memory the value is still always 42, so only the
   race detector distinguishes the two variants. *)
let dcl_variant ~name ~locked () =
  Program.of_threads ~name @@ fun () ->
  let initialized = Sync.bool_var ~name:"initialized" false in
  let data = Sync.int_var ~name:"data" 0 in
  let m = Sync.Mutex.create ~name:"init_lock" () in
  let init_locked () =
    Sync.Mutex.lock m;
    if not (Sync.Svar.get initialized) then begin
      Sync.Svar.set data 42;
      Sync.Svar.set initialized true
    end;
    let v = Sync.Svar.get data in
    Sync.Mutex.unlock m;
    v
  in
  let get_instance () =
    if locked then init_locked ()
    else if Sync.Svar.get initialized then Sync.Svar.get data
    else init_locked ()
  in
  let use () = Sync.check (get_instance () = 42) "DCL: saw uninitialized data" in
  [ use; use ]

let dcl = dcl_variant ~name:"races-dcl" ~locked:false
let dcl_locked = dcl_variant ~name:"races-dcl-locked" ~locked:true

let ab_ba () =
  Program.of_threads ~name:"races-ab-ba" @@ fun () ->
  let a = Sync.Mutex.create ~name:"A" () in
  let b = Sync.Mutex.create ~name:"B" () in
  [ (fun () ->
      Sync.Mutex.lock a;
      Sync.Mutex.lock b;
      Sync.Mutex.unlock b;
      Sync.Mutex.unlock a);
    (fun () ->
      (* The join serializes the inversion: no schedule deadlocks, but the
         lock-order cycle A→B→A is one removed join away from one. *)
      Sync.join 0;
      Sync.Mutex.lock b;
      Sync.Mutex.lock a;
      Sync.Mutex.unlock a;
      Sync.Mutex.unlock b) ]
