(** Lightweight metrics registry for the checker's own instrumentation.

    Design constraints (see DESIGN.md, "Observability"):

    - {b Allocation-conscious}: instruments are registered once per search
      (or per shard) and increments are single mutable-field stores — no
      hashing, no boxing, no closures on the hot path. Code that wants
      zero cost when observability is off holds a [meters option] and
      branches once per site; a registry is only ever created when metrics
      were requested.
    - {b Domain-safe by construction}: a registry is single-domain. The
      parallel search gives each worker shard its own registry and merges
      the immutable {!Snapshot}s afterwards, exactly like it merges
      {!Report.stats} — there are no atomics on the instrument path.
    - {b Deterministic}: counters and histograms record logical events, so
      for the systematic parallel search their merged values are
      bit-identical for every [jobs] value. Gauges record run-dependent
      facts (peaks, wall times) and merge by [max]. One documented
      exception: the step-classification counters
      ["search/steps/replay"] / ["search/steps/fresh"] depend on how the
      decision tree was sharded (a worker replays its locked prefix where
      the sequential search made those decisions fresh) — only their sum is
      invariant, and the jobs-determinism test folds them together.

    Naming convention: slash-separated lowercase paths, e.g.
    ["search/steps/replay"], ["sched/yields"], ["engine/op/lock"],
    ["par/expand_us"]. *)

type t
(** A registry: a set of named instruments. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Register (or look up) a monotonically increasing counter. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** [set_max g v] is [set g (max v (current value))]. *)

val observe : histogram -> int -> unit
(** Record one sample. Negative samples clamp to 0. Buckets are powers of
    two: bucket [i] counts samples [v] with [2^(i-1) <= v < 2^i] (bucket 0
    counts [v = 0]); count/sum/max are tracked exactly. *)

(** Immutable view of a registry, mergeable across shards. *)
module Snapshot : sig
  type hist = {
    count : int;
    sum : int;
    max : int;
    buckets : (int * int) list;  (** (bucket index, count), sparse, sorted *)
  }

  type entry =
    | Counter of int
    | Gauge of int
    | Histogram of hist

  type t

  val empty : t
  val is_empty : t -> bool

  val entries : t -> (string * entry) list
  (** Sorted by name. *)

  val counters : t -> (string * int) list
  (** Just the counters, sorted by name — the deterministic slice used by
      the jobs-invariance tests. *)

  val find : t -> string -> entry option

  val merge : t -> t -> t
  (** Pointwise: counters add, gauges max, histograms merge bucket-wise
      (count/sum add, max maxes). Associative and commutative, with [empty]
      as identity. A name registered with different kinds on both sides
      raises [Invalid_argument] — shards of one search always agree. *)

  val with_counter : t -> string -> int -> t
  (** Insert-or-replace a derived counter (used to export plain search
      statistics into the snapshot). *)

  val with_gauge : t -> string -> int -> t

  val of_entries : (string * entry) list -> t
  (** Build a snapshot from a raw entry list in any order (later duplicates
      replace earlier ones). Used by the checkpoint codec, which stores
      entries with explicit kind tags because {!to_json} flattens counters
      and gauges to the same representation. *)

  val to_json : t -> Fairmc_util.Json.t
  (** [{ "name": value, ... }] for counters and gauges;
      [{ "count":…, "sum":…, "max":…, "buckets": {"i": n, …} }] for
      histograms. *)

  val pp : Format.formatter -> t -> unit
  (** One instrument per line, for [chess check --stats]. *)
end

val snapshot : t -> Snapshot.t
