type t = { out : out_channel; drew : bool Atomic.t }

let create ?(out = stderr) () = { out; drew = Atomic.make false }

let bar_width = 30

let render (s : Progress.sample) =
  let buf = Buffer.create 96 in
  (match s.completion with
   | Some c ->
     let filled = int_of_float (Float.round (c *. float_of_int bar_width)) in
     let filled = max 0 (min bar_width filled) in
     Buffer.add_char buf '[';
     for i = 0 to bar_width - 1 do
       Buffer.add_char buf (if i < filled then '#' else '.')
     done;
     Buffer.add_string buf (Printf.sprintf "] %5.1f%%" (100. *. c))
   | None -> Buffer.add_string buf (Printf.sprintf "[%s] --.-%%" (String.make bar_width '.')));
  let rate = if s.elapsed > 0. then float_of_int s.executions /. s.elapsed else 0. in
  Buffer.add_string buf (Printf.sprintf "  execs=%d (%.0f/s)" s.executions rate);
  (match s.est_total with
   | Some t -> Buffer.add_string buf (Printf.sprintf " of ~%d" t)
   | None -> ());
  (match s.eta with
   | Some e -> Buffer.add_string buf (Printf.sprintf "  eta=%.0fs" e)
   | None -> ());
  if s.jobs > 1 then Buffer.add_string buf (Printf.sprintf "  jobs=%d" s.jobs);
  Buffer.add_string buf (Printf.sprintf "  %.1fs" s.elapsed);
  Buffer.contents buf

(* The dashboard redraws from poll points while graceful-interrupt signal
   handlers are installed, so terminal writes can land EINTR mid-flush;
   restart them rather than tearing down the search over a progress line. *)
let sink t s =
  Atomic.set t.drew true;
  (* \r + erase-to-end redraws in place; one write keeps it atomic. *)
  Fairmc_util.Retry.eintr (fun () -> Printf.fprintf t.out "\r\027[K%s%!" (render s))

let finish t =
  if Atomic.get t.drew then Fairmc_util.Retry.eintr (fun () -> Printf.fprintf t.out "\n%!")
