(** The one wall clock of the checker.

    Every elapsed-time computation in the search stack funnels through this
    module so that (a) timestamps are comparable across layers and (b) the
    clock is monotonic-ish: [Unix.gettimeofday] can step backwards under NTP
    adjustment, which previously could make [elapsed] negative or deadline
    checks flap; [now] clamps against the last value handed out on the
    calling domain. *)

val now : unit -> float
(** Seconds since the epoch, never decreasing within a domain. *)

val elapsed : since:float -> float
(** [elapsed ~since] is [max 0. (now () -. since)]. *)
