type sample = {
  executions : int;
  elapsed : float;
  jobs : int;
  phase : string;
  completion : float option;
  est_total : int option;
  eta : float option;
}

type sink = sample -> unit

type t = {
  interval_us : int;
  last_us : int Atomic.t;  (* claimed by CAS; 0 = never emitted *)
  sinks : sink list;
}

let us_of_clock () = int_of_float (Clock.now () *. 1e6)

let create ?(interval = 1.0) ~sinks () =
  { interval_us = int_of_float (Float.max 0. interval *. 1e6);
    last_us = Atomic.make 0;
    sinks }

let emit t sample_fn =
  let s = sample_fn () in
  List.iter (fun sink -> sink s) t.sinks

let tick t sample_fn =
  if t.sinks <> [] then begin
    let last = Atomic.get t.last_us in
    let now = us_of_clock () in
    (* The CAS makes the emission exclusive: concurrent shards that observed
       the same [last] lose and skip, so sinks never double-fire for one
       interval. *)
    if now - last >= t.interval_us && Atomic.compare_and_set t.last_us last now then
      emit t sample_fn
  end

let force t sample_fn =
  if t.sinks <> [] then begin
    Atomic.set t.last_us (us_of_clock ());
    emit t sample_fn
  end

let stderr_sink s =
  let rate = if s.elapsed > 0. then float_of_int s.executions /. s.elapsed else 0. in
  let estimate =
    match s.completion with
    | None -> ""
    | Some c ->
      Printf.sprintf " ~%.1f%%%s%s" (100. *. c)
        (match s.est_total with Some t -> Printf.sprintf " of ~%d" t | None -> "")
        (match s.eta with Some e -> Printf.sprintf " eta=%.0fs" e | None -> "")
  in
  Printf.eprintf "[fairmc] phase=%s execs=%d (%.0f/s) elapsed=%.1fs%s%s\n%!" s.phase
    s.executions rate s.elapsed
    (if s.jobs > 1 then Printf.sprintf " jobs=%d" s.jobs else "")
    estimate
