module Json = Fairmc_util.Json

let n_buckets = 63  (* log2 buckets over non-negative ints *)

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : int }

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

type t = { mutable items : instrument list }

let create () = { items = [] }

let name_of = function
  | I_counter c -> c.c_name
  | I_gauge g -> g.g_name
  | I_histogram h -> h.h_name

let find_instr t name = List.find_opt (fun i -> name_of i = name) t.items

let counter t name =
  match find_instr t name with
  | Some (I_counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another kind")
  | None ->
    let c = { c_name = name; c = 0 } in
    t.items <- I_counter c :: t.items;
    c

let gauge t name =
  match find_instr t name with
  | Some (I_gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another kind")
  | None ->
    let g = { g_name = name; g = 0 } in
    t.items <- I_gauge g :: t.items;
    g

let histogram t name =
  match find_instr t name with
  | Some (I_histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another kind")
  | None ->
    let h =
      { h_name = name; h_buckets = Array.make n_buckets 0; h_count = 0; h_sum = 0; h_max = 0 }
    in
    t.items <- I_histogram h :: t.items;
    h

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c

let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v

(* Bucket 0 holds v = 0; bucket b >= 1 holds 2^(b-1) <= v < 2^b. *)
let observe h v =
  let v = max 0 v in
  let b =
    if v = 0 then 0
    else begin
      let rec log2 acc v = if v = 0 then acc else log2 (acc + 1) (v lsr 1) in
      log2 0 v  (* v in [2^(b-1), 2^b) gets bucket b *)
    end
  in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

module Snapshot = struct
  type hist = { count : int; sum : int; max : int; buckets : (int * int) list }

  type entry =
    | Counter of int
    | Gauge of int
    | Histogram of hist

  type t = (string * entry) list  (* sorted by name *)

  let empty = []
  let is_empty t = t = []
  let entries t = t
  let counters t = List.filter_map (function n, Counter v -> Some (n, v) | _ -> None) t
  let find t name = List.assoc_opt name t

  let merge_entry name a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Gauge x, Gauge y -> Gauge (max x y)
    | Histogram x, Histogram y ->
      let rec merge_buckets xs ys =
        match (xs, ys) with
        | [], r | r, [] -> r
        | (i, n) :: xs', (j, m) :: ys' ->
          if i = j then (i, n + m) :: merge_buckets xs' ys'
          else if i < j then (i, n) :: merge_buckets xs' ys
          else (j, m) :: merge_buckets xs ys'
      in
      Histogram
        { count = x.count + y.count;
          sum = x.sum + y.sum;
          max = max x.max y.max;
          buckets = merge_buckets x.buckets y.buckets }
    | _ -> invalid_arg ("Metrics.Snapshot.merge: kind mismatch for " ^ name)

  let rec merge a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (n1, e1) :: a', (n2, e2) :: b' ->
      let c = String.compare n1 n2 in
      if c = 0 then (n1, merge_entry n1 e1 e2) :: merge a' b'
      else if c < 0 then (n1, e1) :: merge a' b
      else (n2, e2) :: merge a b'

  let with_entry t name e =
    merge (List.remove_assoc name t) [ (name, e) ]

  let with_counter t name v = with_entry t name (Counter v)
  let with_gauge t name v = with_entry t name (Gauge v)

  let of_entries l =
    List.fold_left (fun acc (name, e) -> with_entry acc name e) empty l

  let hist_to_json (h : hist) =
    Json.Obj
      [ ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("max", Json.Int h.max);
        ("buckets", Json.Obj (List.map (fun (i, n) -> (string_of_int i, Json.Int n)) h.buckets)) ]

  let to_json t =
    Json.Obj
      (List.map
         (fun (name, e) ->
           ( name,
             match e with
             | Counter v | Gauge v -> Json.Int v
             | Histogram h -> hist_to_json h ))
         t)

  let pp ppf t =
    Format.pp_open_vbox ppf 0;
    List.iteri
      (fun i (name, e) ->
        if i > 0 then Format.pp_print_cut ppf ();
        match e with
        | Counter v -> Format.fprintf ppf "%-40s %d" name v
        | Gauge v -> Format.fprintf ppf "%-40s %d (gauge)" name v
        | Histogram h ->
          Format.fprintf ppf "%-40s count=%d sum=%d max=%d mean=%.1f" name h.count h.sum
            h.max
            (if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count))
      t;
    Format.pp_close_box ppf ()
end

let snapshot t =
  t.items
  |> List.map (fun i ->
         ( name_of i,
           match i with
           | I_counter c -> Snapshot.Counter c.c
           | I_gauge g -> Snapshot.Gauge g.g
           | I_histogram h ->
             let buckets = ref [] in
             for b = n_buckets - 1 downto 0 do
               if h.h_buckets.(b) > 0 then buckets := (b, h.h_buckets.(b)) :: !buckets
             done;
             Snapshot.Histogram
               { Snapshot.count = h.h_count; sum = h.h_sum; max = h.h_max; buckets = !buckets } ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
