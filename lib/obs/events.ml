(* Streaming NDJSON search events. Shards batch locally and flush at path
   boundaries; the stream lock assigns gap-free sequence numbers. See
   events.mli for the envelope and the det/advisory split. *)

module Json = Fairmc_util.Json

let schema = "fairmc-events/1"

type event = {
  seq : int;
  ts_us : int;
  shard : int;
  det : bool;
  kind : string;
  data : Json.t;
}

(* A batched event before its sequence number exists. [P_path] is the
   specialized hot case — one per execution — carrying its fields unboxed
   so the streaming fast path never builds a [Json.t] at all. *)
type pending =
  | P of { p_ts_us : int; p_det : bool; p_kind : string; p_data : Json.t }
  | P_path of { p_ts_us : int; p_det : bool; p_end : string; p_steps : int; p_schedule : int }

type stream = {
  mu : Mutex.t;
  t0 : float;
  write : (string -> unit) option;
  collect : bool;
  mutable seq : int;
  mutable acc : event list;  (* reversed; only when [collect] *)
  fmt : Buffer.t;  (* scratch for line rendering; guarded by [mu] *)
}

type buf = { stream : stream; shard : int; mutable pending : pending list (* reversed *) }

let create ?write ?(collect = false) () =
  { mu = Mutex.create ();
    t0 = Clock.now ();
    write;
    collect;
    seq = 0;
    acc = [];
    fmt = Buffer.create 256 }

let origin t = t.t0
let collecting t = t.collect

let buffer stream ~shard = { stream; shard; pending = [] }

let to_json (e : event) =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("seq", Json.Int e.seq);
      ("ts_us", Json.Int e.ts_us);
      ("shard", Json.Int e.shard);
      ("det", Json.Bool e.det);
      ("kind", Json.Str e.kind);
      ("data", e.data) ]

(* Render an envelope into [b] without building the intermediate Json.Obj:
   the envelope shape is fixed and this runs once per event on the flush
   path. Field order must match {!to_json}. *)
let render_head b ~seq ~ts_us ~shard =
  Buffer.add_string b {|{"schema":"|};
  Buffer.add_string b schema;
  Buffer.add_string b {|","seq":|};
  Json.add_int b seq;
  Buffer.add_string b {|,"ts_us":|};
  Json.add_int b ts_us;
  Buffer.add_string b {|,"shard":|};
  Json.add_int b shard

let render b (e : event) =
  render_head b ~seq:e.seq ~ts_us:e.ts_us ~shard:e.shard;
  Buffer.add_string b
    (if e.det then {|,"det":true,"kind":|} else {|,"det":false,"kind":|});
  Json.to_buffer b (Json.Str e.kind);
  Buffer.add_string b {|,"data":|};
  Json.to_buffer b e.data;
  Buffer.add_char b '}'

(* The path-event line in one pass: constant fragments fused around the
   four integers and the end-state name (an internal identifier, never in
   need of escaping). Shape must match {!path_data} under {!render}. *)
let render_path b ~seq ~ts_us ~shard ~det ~end_ ~steps ~schedule =
  render_head b ~seq ~ts_us ~shard;
  Buffer.add_string b
    (if det then {|,"det":true,"kind":"path","data":{"end":"|}
     else {|,"det":false,"kind":"path","data":{"end":"|});
  Buffer.add_string b end_;
  Buffer.add_string b {|","steps":|};
  Json.add_int b steps;
  Buffer.add_string b {|,"schedule":|};
  Json.add_int b schedule;
  Buffer.add_string b "}}"

let path_data ~end_ ~steps ~schedule =
  Json.Obj
    [ ("end", Json.Str end_);
      ("steps", Json.Int steps);
      ("schedule", Json.Int schedule) ]

let line e =
  let b = Buffer.create 160 in
  render b e;
  Buffer.contents b

let of_json j =
  match j with
  | Json.Obj fields ->
    let f name = List.assoc_opt name fields in
    (match f "schema" with
     | Some (Json.Str s) when s = schema ->
       (match (f "seq", f "ts_us", f "shard", f "det", f "kind", f "data") with
        | Some (Json.Int seq), Some (Json.Int ts_us), Some (Json.Int shard),
          Some (Json.Bool det), Some (Json.Str kind), Some data ->
          Ok { seq; ts_us; shard; det; kind; data }
        | _ -> Error "missing or ill-typed envelope field")
     | Some (Json.Str s) -> Error (Printf.sprintf "unsupported schema %S" s)
     | Some _ -> Error "schema is not a string"
     | None -> Error "missing schema field")
  | _ -> Error "event is not an object"

let of_line s =
  match Json.of_string s with Error e -> Error e | Ok j -> of_json j

let ts_us stream = int_of_float (Clock.elapsed ~since:stream.t0 *. 1e6)

let emit buf ?(det = false) ~kind data =
  buf.pending <-
    P { p_ts_us = ts_us buf.stream; p_det = det; p_kind = kind; p_data = data }
    :: buf.pending

let emit_path buf ~det ~end_ ~steps ~schedule =
  buf.pending <-
    P_path { p_ts_us = ts_us buf.stream; p_det = det; p_end = end_; p_steps = steps;
             p_schedule = schedule }
    :: buf.pending

(* Under the lock: number, write, collect — in batch order. The [event]
   record (and a [P_path]'s Json data) only materializes when the stream
   collects; a write-only stream renders straight from the pending cell. *)
let publish_locked stream ~shard p =
  let seq = stream.seq in
  stream.seq <- seq + 1;
  (match stream.write with
   | None -> ()
   | Some w ->
     let b = stream.fmt in
     Buffer.clear b;
     (match p with
      | P q ->
        render b
          { seq; ts_us = q.p_ts_us; shard; det = q.p_det; kind = q.p_kind;
            data = q.p_data }
      | P_path q ->
        render_path b ~seq ~ts_us:q.p_ts_us ~shard ~det:q.p_det ~end_:q.p_end
          ~steps:q.p_steps ~schedule:q.p_schedule);
     w (Buffer.contents b));
  if stream.collect then begin
    let e =
      match p with
      | P q ->
        { seq; ts_us = q.p_ts_us; shard; det = q.p_det; kind = q.p_kind;
          data = q.p_data }
      | P_path q ->
        { seq; ts_us = q.p_ts_us; shard; det = q.p_det; kind = "path";
          data = path_data ~end_:q.p_end ~steps:q.p_steps ~schedule:q.p_schedule }
    in
    stream.acc <- e :: stream.acc
  end

let flush_locked stream ~shard pending =
  match pending with
  | [ p ] -> publish_locked stream ~shard p
  | pending -> List.iter (publish_locked stream ~shard) (List.rev pending)

let flush buf =
  match buf.pending with
  | [] -> ()
  | pending ->
    buf.pending <- [];
    let s = buf.stream in
    Mutex.protect s.mu (fun () -> flush_locked s ~shard:buf.shard pending)

let post stream ~shard ?(det = false) ~kind data =
  let p = P { p_ts_us = ts_us stream; p_det = det; p_kind = kind; p_data = data } in
  Mutex.protect stream.mu (fun () -> flush_locked stream ~shard [ p ])

let collected stream = Mutex.protect stream.mu (fun () -> List.rev stream.acc)
