(** Chrome [trace_event] JSON builders.

    The exported documents load in Perfetto (ui.perfetto.dev) and in
    [chrome://tracing]: a counterexample schedule becomes one track per
    thread, every transition a 1-µs "complete" slice at its step index, with
    yields and fairness priority changes as instant markers. This module
    only knows the trace_event envelope; mapping checker traces onto it
    lives in {!Fairmc_core.Trace_export}.

    Format reference: "Trace Event Format" (Google, catapult project) —
    the JSON-object-format subset: [{"traceEvents": [...]}]. *)

type ev

val complete :
  name:string -> ?cat:string -> tid:int -> ts:float -> dur:float ->
  ?args:(string * Fairmc_util.Json.t) list -> unit -> ev
(** A phase-["X"] slice. [ts]/[dur] are microseconds. *)

val instant :
  name:string -> ?cat:string -> tid:int -> ts:float ->
  ?args:(string * Fairmc_util.Json.t) list -> unit -> ev
(** A phase-["i"] thread-scoped marker. *)

val counter :
  name:string -> tid:int -> ts:float -> values:(string * int) list -> ev
(** A phase-["C"] counter track sample. *)

val process_name : string -> ev
val thread_name : tid:int -> string -> ev

val to_json : ev list -> Fairmc_util.Json.t
(** The whole document: [{"traceEvents": [...], "displayTimeUnit": "ms"}].
    All events carry [pid] 0. *)
