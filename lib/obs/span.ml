module Json = Fairmc_util.Json

type t = float  (* start time, Clock.now *)

let start () = Clock.now ()

let elapsed_us t = int_of_float (Clock.elapsed ~since:t *. 1e6)

let elapsed_us_between a b = int_of_float ((b -. a) *. 1e6)

let hist_name phase = "span/" ^ phase ^ "/us"

let record ?hist ?events ~phase ~dur_us () =
  (match hist with None -> () | Some h -> Metrics.observe h dur_us);
  match events with
  | None -> ()
  | Some buf ->
    Events.emit buf ~kind:"span"
      (Json.Obj [ ("phase", Json.Str phase); ("dur_us", Json.Int dur_us) ])

let finish ?hist ?events ~phase t =
  let dur_us = elapsed_us t in
  record ?hist ?events ~phase ~dur_us ();
  dur_us

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed_us t)

(* Perfetto rendering: the envelope timestamp is the span's end, so the
   slice starts at [ts_us - dur_us]. Shards map to trace threads; -1 (the
   coordinator) becomes the highest tid so worker tracks sort first. *)
let to_trace events =
  let spans =
    List.filter_map
      (fun (e : Events.event) ->
        if e.Events.kind <> "span" then None
        else
          match e.Events.data with
          | Json.Obj fields ->
            (match (List.assoc_opt "phase" fields, List.assoc_opt "dur_us" fields) with
             | Some (Json.Str phase), Some (Json.Int dur) ->
               Some (e.Events.shard, phase, e.Events.ts_us, dur)
             | _ -> None)
          | _ -> None)
      events
  in
  let shards = List.sort_uniq compare (List.map (fun (s, _, _, _) -> s) spans) in
  let max_shard = List.fold_left (fun a s -> max a s) 0 shards in
  let tid_of s = if s < 0 then max_shard + 1 else s in
  let names =
    Trace_event.process_name "fairmc search"
    :: List.map
         (fun s ->
           Trace_event.thread_name ~tid:(tid_of s)
             (if s < 0 then "coordinator" else Printf.sprintf "shard %d" s))
         shards
  in
  let slices =
    List.map
      (fun (s, phase, ts_end, dur) ->
        Trace_event.complete ~name:phase ~cat:"search" ~tid:(tid_of s)
          ~ts:(float_of_int (max 0 (ts_end - dur)))
          ~dur:(float_of_int dur) ())
      spans
  in
  Trace_event.to_json (names @ slices)
