(* Per-domain clamp: a shared cell would turn every time poll of the
   parallel search into cross-core traffic. *)
let last_key : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.)

let now () =
  let last = Domain.DLS.get last_key in
  let t = Unix.gettimeofday () in
  if t > !last then begin
    last := t;
    t
  end
  else !last

let elapsed ~since = Float.max 0. (now () -. since)
