(* Knuth-style weighted path probes in exact fixed-point arithmetic. The
   whole point of the integer representation is jobs determinism: int sums
   are order-independent where float sums are not, and iterated integer
   division by the ancestor widths is exact (floor(floor(x/a)/b) =
   floor(x/(a*b))), so every shard computes the same weight for the same
   leaf no matter how the tree was cut. See estimator.mli. *)

let one = 1 lsl 61

let descend m width = m / max 1 width

let of_widths widths = List.fold_left descend one widths

let completion ~mass =
  if mass <= 0 then 0. else Float.min 1. (float_of_int mass /. float_of_int one)

let est_total ~mass ~executions =
  if mass <= 0 then None
  else
    let frac = float_of_int mass /. float_of_int one in
    Some (max executions (int_of_float (Float.round (float_of_int executions /. frac))))

let eta ~mass ~elapsed =
  if mass <= 0 then None
  else
    let remaining = float_of_int (one - mass) /. float_of_int mass in
    Some (Float.max 0. (elapsed *. remaining))
