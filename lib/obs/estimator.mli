(** Online progress estimation over the search tree.

    A Knuth-style weighted path probe: every completed path (a leaf of the
    systematic decision tree) contributes the probability that a random
    descent — picking uniformly among the node's explored children at each
    decision point — would have reached it, i.e. the product of [1/width]
    over its ancestor frames. Summed over all explored leaves, the probe
    mass equals the explored fraction of the tree (exactly 1 when the DFS
    exhausts it), so [executions / mass] estimates the total execution count
    and [elapsed * (1 - mass) / mass] the remaining time. Sampling modes use
    the same machinery over a flat tree: each execution weighs [1/budget].

    {b Jobs determinism.} The mass is exact fixed-point arithmetic, not
    floating point: a leaf's weight is [one] divided by each ancestor width
    in turn (integer division — exact, since [floor (floor (x/a) / b) =
    floor (x/(a*b))]), and masses sum as plain ints, which is
    order-independent. The parallel search's work items partition the tree
    and every item carries its prefix widths, so the merged mass — and hence
    every estimate — is bit-identical for every [jobs] value, like the rest
    of the deterministic counter slice. Weights underflow to 0 once the
    width product exceeds [one] (paths deeper than ~61 binary decisions);
    such leaves stop contributing, so the completion fraction of a very deep
    search converges from below. *)

val one : int
(** The fixed-point scale: [2^61]. A probe mass of [one] means the tree is
    fully explored. Sums of masses over disjoint subtrees never exceed
    [one], so they cannot overflow OCaml's 63-bit ints. *)

val descend : int -> int -> int
(** [descend m width] is the weight of a child of a node with [width]
    explored children whose own weight is [m]: [m / max 1 width], exact
    integer division. *)

val of_widths : int list -> int
(** The leaf weight of a path with the given ancestor widths:
    [List.fold_left descend one widths]. *)

val completion : mass:int -> float
(** Explored fraction in [0, 1]. *)

val est_total : mass:int -> executions:int -> int option
(** Estimated total executions of the full tree; [None] when [mass = 0]
    (no probe yet, or all weights underflowed). *)

val eta : mass:int -> elapsed:float -> float option
(** Estimated seconds remaining, assuming a constant exploration rate:
    [elapsed * (one - mass) / mass]. [None] when [mass = 0]. *)
