(** Live single-line TTY dashboard ([chess check --watch]).

    A {!Progress} sink that redraws one status line in place on stderr —
    progress bar from the estimated completion fraction, execution count and
    rate, ETA — instead of scrolling a line per emission. Thread-safe: the
    progress reporter already serializes emissions, and the draw itself is
    one atomic write.

    {v [#########.....................]  31.2%  execs=48210 (9642/s)  eta=7s  jobs=4 v} *)

type t

val create : ?out:out_channel -> unit -> t
(** [out] defaults to [stderr]. *)

val sink : t -> Progress.sink
(** Redraws the status line (carriage return + erase, no scrolling). *)

val finish : t -> unit
(** Terminate the live line with a newline so the final report starts on a
    fresh line. No-op if nothing was ever drawn. *)
