(** Span-based tracing of the search's own phases.

    A span is a timed segment of checker work — replaying a decision prefix,
    executing fresh decisions, expanding the parallel frontier, saving a
    checkpoint, running analysis observers. Recording one feeds two sinks at
    once: a per-phase latency histogram ([span/<phase>/us]) in the shard's
    metrics registry, merged across shards by the ordinary snapshot algebra,
    and an advisory ["span"] event in the telemetry stream
    ({!Events}), from which {!to_trace} renders the whole search as a
    Perfetto-loadable trace (one track per shard, one slice per span).

    Durations are wall time, so spans are advisory by construction: they
    never carry the [det] flag and never feed the jobs-determinism
    guarantee. *)

type t
(** An open span (a captured start time). *)

val start : unit -> t

val elapsed_us : t -> int

val elapsed_us_between : t -> t -> int
(** [elapsed_us_between a b] is the µs from [a]'s start to [b]'s start —
    lets a caller timing several sub-spans of one segment read the clock
    once ([start]) and derive every duration from it. *)

val record :
  ?hist:Metrics.histogram ->
  ?events:Events.buf ->
  phase:string ->
  dur_us:int ->
  unit ->
  unit
(** Feed a measured duration to whichever sinks exist: observe [hist] and
    emit an advisory ["span"] event with data
    [{"phase": ..., "dur_us": ...}] (its slice start is the envelope
    timestamp minus [dur_us]). Zero-cost when both sinks are [None]. *)

val finish :
  ?hist:Metrics.histogram -> ?events:Events.buf -> phase:string -> t -> int
(** [record] the span's elapsed time; returns the duration in µs. *)

val time : (unit -> 'a) -> 'a * int
(** Run a thunk and measure it: [(result, dur_us)]. *)

val hist_name : string -> string
(** [hist_name phase] is ["span/<phase>/us"]. *)

val to_trace : Events.event list -> Fairmc_util.Json.t
(** Render the ["span"] events of a collected stream as a Chrome
    trace_event document (load in ui.perfetto.dev): one track per shard
    (track -1 is the coordinator), one complete slice per span, named by
    phase. Non-span events are ignored. *)
