(** Versioned NDJSON event stream of a running search.

    A {!stream} is shared by every shard of one search; each shard appends
    events to its private {!buf} while it executes a path (no locking, no
    I/O on the hot path) and flushes the batch at its next path boundary,
    where the stream's lock assigns globally monotonic sequence numbers and
    writes one NDJSON line per event. Events within a batch keep their emit
    order; batches from different shards interleave in flush order.

    Envelope, schema [fairmc-events/1]:

    {v {"schema":"fairmc-events/1","seq":N,"ts_us":N,"shard":N,
    "det":BOOL,"kind":STR,"data":OBJ} v}

    [seq] is the global emission index (0-based, gap-free), [ts_us]
    microseconds since the stream was created, [shard] the emitting worker
    (-1 for the coordinator). [det] classifies the payload: a [det] event's
    [(kind, data)] pair is jobs-invariant — an error-free systematic search
    emits exactly the same multiset of deterministic [(kind, data)] pairs
    for every [jobs] value, only [seq]/[ts_us]/[shard] and the advisory
    events (spans, progress, worker/checkpoint lifecycle) differ. See
    DESIGN.md, "Telemetry". *)

val schema : string
(** ["fairmc-events/1"]. *)

type event = {
  seq : int;
  ts_us : int;
  shard : int;
  det : bool;
  kind : string;
  data : Fairmc_util.Json.t;
}

type stream
type buf

val create : ?write:(string -> unit) -> ?collect:bool -> unit -> stream
(** [write] receives one NDJSON line (no trailing newline) per event, called
    under the stream lock in sequence order. [collect] additionally keeps
    every event in memory for {!collected} (tests, span trace export).
    Omitting both yields a stream that discards events — still useful as a
    span collector gate. *)

val origin : stream -> float
(** The stream's epoch ({!Clock.now} at creation); [ts_us] is relative to
    it. *)

val collecting : stream -> bool
(** Whether the stream retains events for {!collected} ([create
    ~collect:true]). The search uses this to gate the per-path span events:
    span slices are only useful to the trace exporter, so a plain streaming
    sink does not pay for them (coarse spans — checkpoint saves, frontier
    expansion — are always emitted). *)

val buffer : stream -> shard:int -> buf
(** A shard-local batch buffer. Not thread-safe — one per shard. *)

val emit : buf -> ?det:bool -> kind:string -> Fairmc_util.Json.t -> unit
(** Append to the local batch ([det] defaults to [false]); timestamps are
    taken now, sequence numbers at flush. *)

val emit_path : buf -> det:bool -> end_:string -> steps:int -> schedule:int -> unit
(** [emit] specialized to the once-per-execution ["path"] event — data
    [{"end": end_, "steps": steps, "schedule": schedule}] — carrying its
    fields unboxed so the streaming fast path builds no [Json.t]. [end_]
    must be an internal identifier (it is rendered unescaped). *)

val flush : buf -> unit
(** Publish the batch: take the stream lock, assign sequence numbers, write
    the lines. No-op on an empty batch. *)

val post : stream -> shard:int -> ?det:bool -> kind:string -> Fairmc_util.Json.t -> unit
(** Emit and flush a single event (coordinator lifecycle events). *)

val collected : stream -> event list
(** Every flushed event in sequence order; [[]] unless [collect] was set. *)

val to_json : event -> Fairmc_util.Json.t
val line : event -> string
(** One NDJSON line (no newline). *)

val of_json : Fairmc_util.Json.t -> (event, string) result
(** Parse an envelope back; rejects unknown schemas and missing fields. *)

val of_line : string -> (event, string) result
