module Json = Fairmc_util.Json

type ev = Json.t

let base ~ph ~name ~cat ~tid ~ts extra args =
  Json.Obj
    ([ ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
       ("ts", Json.Float ts) ]
     @ extra
     @ (match args with [] -> [] | args -> [ ("args", Json.Obj args) ]))

let complete ~name ?(cat = "schedule") ~tid ~ts ~dur ?(args = []) () =
  base ~ph:"X" ~name ~cat ~tid ~ts [ ("dur", Json.Float dur) ] args

let instant ~name ?(cat = "fairness") ~tid ~ts ?(args = []) () =
  base ~ph:"i" ~name ~cat ~tid ~ts [ ("s", Json.Str "t") ] args

let counter ~name ~tid ~ts ~values =
  base ~ph:"C" ~name ~cat:"metrics" ~tid ~ts []
    (List.map (fun (k, v) -> (k, Json.Int v)) values)

let metadata ~name ~tid args =
  Json.Obj
    [ ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj args) ]

let process_name n = metadata ~name:"process_name" ~tid:0 [ ("name", Json.Str n) ]
let thread_name ~tid n = metadata ~name:"thread_name" ~tid [ ("name", Json.Str n) ]

let to_json evs =
  Json.Obj [ ("traceEvents", Json.Arr evs); ("displayTimeUnit", Json.Str "ms") ]
