(** Throttled search-progress reporting.

    A [Progress.t] is shared by every shard of a search; ticks race on a
    single atomic timestamp, so at most one shard emits per interval and the
    sample closure is only evaluated when an emission is actually due —
    ticking costs one [Atomic.get] plus a clock read. Sinks run on whichever
    domain won the race; user callbacks must be thread-safe under parallel
    search. *)

type sample = {
  executions : int;  (** completed executions so far (search-wide) *)
  elapsed : float;  (** seconds since the search started *)
  jobs : int;  (** worker count of the search that emitted *)
  phase : string;  (** ["search"] (or a mode-specific label) *)
  completion : float option;
      (** estimated explored fraction in [0, 1] ({!Estimator}); [None]
          before the first probe or when estimation is off *)
  est_total : int option;  (** estimated total executions of the full search *)
  eta : float option;  (** estimated seconds remaining *)
}

type sink = sample -> unit

type t

val create : ?interval:float -> sinks:sink list -> unit -> t
(** [interval] defaults to 1 second; 0 emits on every tick. *)

val tick : t -> (unit -> sample) -> unit
(** Emit to every sink if at least [interval] has passed since the last
    emission (from any domain). *)

val force : t -> (unit -> sample) -> unit
(** Emit unconditionally (end-of-search line). *)

val stderr_sink : sink
(** One line per emission:
    [[fairmc] phase=search execs=12345 (4821/s) elapsed=2.6s ~37.5% eta=4s]
    (the estimate tail only when an estimate exists). *)
