(* Signal-adjacent system calls. A graceful-interrupt SIGINT (see
   Checkpoint.install_signal_handlers) can land in the middle of any write
   to a checkpoint file, an event sink or the dashboard; the kernel then
   fails the call with EINTR, which must restart the call, not abort the
   search. *)

(* The stdlib surfaces interrupted channel I/O as [Sys_error] carrying the
   strerror text — the errno itself does not survive, so match on the
   message. *)
let eintr_message = "Interrupted system call"

let sys_error_is_eintr msg =
  let n = String.length eintr_message and l = String.length msg in
  let rec scan i =
    i + n <= l && (String.sub msg i n = eintr_message || scan (i + 1))
  in
  scan 0

let rec eintr f =
  try f () with
  | Unix.Unix_error (Unix.EINTR, _, _) -> eintr f
  | Sys_error msg when sys_error_is_eintr msg -> eintr f

(* Deadline-based, not duration-based: restarting the full [Unix.sleepf]
   after every EINTR would let a stream of signals postpone the wakeup
   indefinitely (the supervisor's retry/backoff waits ride on this). Each
   restart sleeps only the remaining time; a clock that jumps backwards ends
   the sleep early rather than extending it. *)
let sleepf s =
  if s > 0. then begin
    let wake = Unix.gettimeofday () +. s in
    let rec go () =
      let remaining = wake -. Unix.gettimeofday () in
      if remaining > 0. then
        match Unix.sleepf remaining with
        | () -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Sys_error msg when sys_error_is_eintr msg -> go ()
    in
    try go () with _ -> ()
  end

let transient ?(attempts = 4) ?(base_delay = 0.005) ~retryable f =
  let rec go i delay =
    match eintr f with
    | v -> Ok v
    | exception e when retryable e ->
      if i + 1 >= attempts then Error e
      else begin
        sleepf delay;
        go (i + 1) (Float.min 0.5 (delay *. 2.))
      end
  in
  go 0 base_delay
