(** Minimal JSON values, stdlib only.

    A hand-rolled emitter (and a small strict parser, used by the tests and
    by tools that validate the checker's own output) for the machine-readable
    reports of the observability layer. Not a general-purpose JSON library:
    numbers are OCaml [int]/[float], strings are assumed to carry UTF-8, and
    object member order is preserved as given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (without the surrounding quotes): escapes
    double quotes, backslashes, and all control characters below 0x20; other
    bytes pass through unchanged. *)

val to_buffer : Buffer.t -> t -> unit

val add_int : Buffer.t -> int -> unit
(** Append the decimal form of [i] — [string_of_int] without the
    intermediate string. Hot on the telemetry event stream. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [~pretty:true] indents objects and arrays by two spaces.
    Non-finite floats are emitted as [null] (JSON has no representation for
    them); finite floats round-trip exactly. *)

val to_file : string -> t -> unit
(** [to_file path v] writes [to_string ~pretty:true v] and a trailing
    newline to [path]. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset this module emits (which is all of JSON
    except exotic number forms): no trailing garbage, no duplicate-key
    checking. Numbers without [.], [e] or [E] parse as [Int]. *)

val equal : t -> t -> bool
(** Structural equality; [Float] compared bitwise (so NaN = NaN), object
    members compared in order. *)
