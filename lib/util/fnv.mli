(** FNV-1a incremental hashing, used for state signatures.

    State coverage experiments (paper Table 2) identify program states by a
    hash of their abstracted representation; FNV-1a is fast, deterministic
    across runs, and has no dependency on OCaml's polymorphic hash. *)

type t = int64
(** A running hash value. *)

val init : t
val string : t -> string -> t
val int : t -> int -> t
val int_list : t -> int list -> t
val char : t -> char -> t

val to_hex : t -> string

val ints : t -> int array -> t
(** Hash every element of an [int array]; the flat-state fast path used by
    the bytecode VM's snapshots. *)
