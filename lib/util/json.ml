type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Most emitted strings (field names, enum-like labels) contain nothing to
   escape; skip the per-character copy for those. *)
let needs_escape s =
  let n = String.length s in
  let rec go i =
    i < n
    && (match String.unsafe_get s i with
        | '"' | '\\' -> true
        | c when Char.code c < 0x20 -> true
        | _ -> go (i + 1))
  in
  go 0

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [string_of_int] without the intermediate string: the telemetry stream
   renders several integers per event, so the allocation is worth dodging. *)
let add_int buf i =
  if i >= 0 && i < 10 then Buffer.add_char buf (Char.unsafe_chr (0x30 + i))
  else if i = min_int then Buffer.add_string buf (string_of_int i)
  else begin
    if i < 0 then Buffer.add_char buf '-';
    let rec go v =
      if v >= 10 then go (v / 10);
      Buffer.add_char buf (Char.unsafe_chr (0x30 + (v mod 10)))
    in
    go (abs i)
  end

(* Shortest decimal representation that parses back to the same float; JSON
   has no NaN/infinity, so those degrade to null at the call sites. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level v =
  let nl lv =
    match indent with
    | None -> ()
    | Some pad ->
      Buffer.add_char buf '\n';
      for _ = 1 to lv * pad do Buffer.add_char buf ' ' done
  in
  let seq open_c close_c items emit_item =
    Buffer.add_char buf open_c;
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit_item x)
      items;
    if items <> [] then nl level;
    Buffer.add_char buf close_c
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (if needs_escape s then escape s else s);
    Buffer.add_char buf '"'
  | Arr items -> seq '[' ']' items (emit buf ~indent ~level:(level + 1))
  | Obj members ->
    seq '{' '}' members (fun (k, v) ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (if needs_escape k then escape k else k);
        Buffer.add_string buf "\":";
        (match indent with None -> () | Some _ -> Buffer.add_char buf ' ');
        emit buf ~indent ~level:(level + 1) v)

(* Compact emission without the pretty-printer's closures: this is the hot
   path (one call per telemetry event), so it is direct top-level recursion
   — no closure allocation per array/object node. *)
let rec emit_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> add_int buf i
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (if needs_escape s then escape s else s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    emit_items buf true items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    emit_members buf true members;
    Buffer.add_char buf '}'

and emit_items buf first = function
  | [] -> ()
  | x :: tl ->
    if not first then Buffer.add_char buf ',';
    emit_compact buf x;
    emit_items buf false tl

and emit_members buf first = function
  | [] -> ()
  | (k, x) :: tl ->
    if not first then Buffer.add_char buf ',';
    Buffer.add_char buf '"';
    Buffer.add_string buf (if needs_escape k then escape k else k);
    Buffer.add_string buf "\":";
    emit_compact buf x;
    emit_members buf false tl

let to_buffer buf v = emit_compact buf v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  if pretty then emit buf ~indent:(Some 2) ~level:0 v else emit_compact buf v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (to_string ~pretty:true v);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the string, strict (whole input).    *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             let hex4 () =
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> fail "malformed \\u escape"
             in
             let code = hex4 () in
             (* A high surrogate followed by \uDC00-\uDFFF encodes one
                non-BMP scalar (JSON strings are UTF-16 under the hood);
                combine the pair rather than emitting CESU-8. A lone
                surrogate is decoded as its 3-byte form — lenient, like the
                rest of this parser. *)
             let code =
               if code >= 0xD800 && code <= 0xDBFF
                  && !pos + 6 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 let save = !pos in
                 pos := !pos + 2;
                 let low = hex4 () in
                 if low >= 0xDC00 && low <= 0xDFFF then
                   0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                 else begin
                   pos := save;
                   code
                 end
               end
               else code
             in
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else if code < 0x10000 then begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "unknown escape");
          go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
          Buffer.add_char buf c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () = match peek () with Some ('0' .. '9') -> true | _ -> false in
    if not (is_digit ()) then fail "malformed number";
    while is_digit () do advance () done;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      if not (is_digit ()) then fail "malformed number";
      while is_digit () do advance () done
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       if not (is_digit ()) then fail "malformed number";
       while is_digit () do advance () done
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let m = member () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members (m :: acc)
          | Some '}' -> advance (); Obj (List.rev (m :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false
