type t = int64

let init = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime
let char h c = byte h (Char.code c)

let string h s =
  let h = ref h in
  String.iter (fun c -> h := char !h c) s;
  !h

let int h i =
  (* Hash all 8 bytes so that negative and large values disperse. *)
  let rec go h i n = if n = 0 then h else go (byte h (i land 0xff)) (i asr 8) (n - 1) in
  go h i 8

let int_list h l = List.fold_left int h l

let ints h a =
  let h = ref h in
  for i = 0 to Array.length a - 1 do
    h := int !h (Array.unsafe_get a i)
  done;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
