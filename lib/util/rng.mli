(** Deterministic splittable random number generator (splitmix64).

    The model checker must be reproducible: every random schedule is derived
    from a seed recorded in the report, so a failing execution can be
    replayed. The stdlib [Random] state is deliberately not used. *)

type t

val make : int64 -> t
val copy : t -> t

val state : t -> int64
(** The full internal state. Together with {!of_state} this lets a search
    checkpoint capture the generator mid-stream and continue it bit-exactly
    in a later process. *)

val of_state : int64 -> t
(** Rebuild a generator from a captured {!state}. Unlike [make], no
    scrambling is applied: [of_state (state t)] continues exactly where [t]
    was. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool

val split : t -> t
(** A statistically independent generator; the original advances. *)

val streams : t -> int -> t array
(** [streams t n] is [n] independent generators obtained by repeated
    [split]s. The parallel search gives each worker (or work item) its own
    stream, so a run is reproducible for a fixed seed and stream count. *)
