type t = { mutable state : int64 }

let make seed = { state = seed }
let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t =
  let s = next_int64 t in
  make (Int64.logxor s 0x2545F4914F6CDD1DL)

let streams t n =
  if n < 0 then invalid_arg "Rng.streams";
  Array.init n (fun _ -> split t)
