(** Restart wrappers for signal-adjacent system calls.

    The checker installs SIGINT/SIGTERM handlers for graceful interruption,
    so any [Unix] call — and any channel I/O, which the stdlib surfaces as
    [Sys_error "...: Interrupted system call"] — can fail with [EINTR]
    mid-search. These helpers keep the checkpoint/events/dashboard paths
    robust to that. *)

val eintr : (unit -> 'a) -> 'a
(** Run [f], restarting it as long as it fails with
    [Unix_error (EINTR, _, _)] or an EINTR-shaped [Sys_error]. Any other
    exception propagates. *)

val sleepf : float -> unit
(** [Unix.sleepf], restarted on EINTR with the wait recomputed against the
    original deadline (a signal storm cannot postpone the wakeup); no-op for
    non-positive durations and on platforms without it. *)

val transient :
  ?attempts:int ->
  ?base_delay:float ->
  retryable:(exn -> bool) ->
  (unit -> 'a) ->
  ('a, exn) result
(** Run [eintr f], retrying up to [attempts] times (default 4) when it
    raises an exception accepted by [retryable], sleeping [base_delay]
    (default 5 ms) doubled per attempt (capped at 0.5 s) between tries.
    Returns the last exception when every attempt failed. *)
