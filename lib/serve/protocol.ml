(* fairmc-jobs/1: the chessd wire vocabulary. See protocol.mli.

   Frames ride the fairmc-ipc/1 framing from {!Fairmc_core.Worker} (8-hex
   length prefix + JSON payload) over a Unix-domain stream socket; this
   module is only the request/response vocabulary on top of it. *)

module J = Fairmc_util.Json
module CK = Fairmc_core.Checkpoint.Codec

let protocol = "fairmc-jobs/1"

(* ------------------------------------------------------------------ *)
(* Job state, as reported to clients.                                  *)

type job_state = Queued | Running | Done | Failed

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"

let state_of_name = function
  | "queued" -> Queued
  | "running" -> Running
  | "done" -> Done
  | "failed" -> Failed
  | s -> CK.fail "unknown job state %S" s

type job_info = {
  ji_id : string;
  ji_program : string;
  ji_state : job_state;
  ji_priority : int;
  ji_attempts : int;
  ji_subscribers : int;
  ji_verdict : string option;  (* verdict_key, once done *)
}

(* ------------------------------------------------------------------ *)
(* Client -> server.                                                   *)

type request =
  | Hello
  | Submit of { spec : Jobspec.t; priority : int }
  | Jobs
  | Status of string
  | Watch of { job : string; events : bool }
  | Cancel of string
  | Shutdown

(* ------------------------------------------------------------------ *)
(* Server -> client.                                                   *)

type message =
  | Hello_ok of { pid : int; version : string }
  | Submitted of { job : string; state : job_state; deduped : bool }
  | Job_list of job_info list
  | Job_status of job_info
  | Watching of { job : string; state : job_state }
  | Event of string  (* one raw fairmc-events/1 NDJSON line *)
  | Job_done of {
      job : string;
      verdict : string;  (* Report.verdict_key *)
      found_error : bool;
      interrupted : bool;
      rendered : string;  (* exactly what `chess check` prints *)
      report : J.t;  (* the fairmc-report/2 document *)
    }
  | Cancelled of { job : string }
  | Error_msg of string
  | Bye

(* ------------------------------------------------------------------ *)
(* Runner -> daemon (internal, over the job runner's pipe).            *)

type runner_msg =
  | R_event of string
  | R_done of {
      verdict : string;
      found_error : bool;
      interrupted : bool;
      rendered : string;
      report : J.t;
    }
  | R_failed of string

(* ------------------------------------------------------------------ *)
(* Codecs. Parsers raise {!Fairmc_core.Checkpoint.Codec.Parse}.        *)

let request_to_json = function
  | Hello -> J.Obj [ ("op", J.Str "hello"); ("protocol", J.Str protocol) ]
  | Submit { spec; priority } ->
    J.Obj
      [ ("op", J.Str "submit");
        ("spec", Jobspec.to_json spec);
        ("priority", J.Int priority) ]
  | Jobs -> J.Obj [ ("op", J.Str "jobs") ]
  | Status job -> J.Obj [ ("op", J.Str "status"); ("job", J.Str job) ]
  | Watch { job; events } ->
    J.Obj [ ("op", J.Str "watch"); ("job", J.Str job); ("events", J.Bool events) ]
  | Cancel job -> J.Obj [ ("op", J.Str "cancel"); ("job", J.Str job) ]
  | Shutdown -> J.Obj [ ("op", J.Str "shutdown") ]

let request_of_json o =
  match CK.str_f o "op" with
  | "hello" ->
    let p = CK.str_f o "protocol" in
    if p <> protocol then CK.fail "protocol mismatch: %S (expected %S)" p protocol;
    Hello
  | "submit" ->
    Submit
      { spec = Jobspec.of_json (CK.field o "spec");
        priority = CK.int_f o "priority" }
  | "jobs" -> Jobs
  | "status" -> Status (CK.str_f o "job")
  | "watch" -> Watch { job = CK.str_f o "job"; events = CK.bool_f o "events" }
  | "cancel" -> Cancel (CK.str_f o "job")
  | "shutdown" -> Shutdown
  | op -> CK.fail "unknown request %S" op

let job_info_to_json i =
  J.Obj
    [ ("id", J.Str i.ji_id);
      ("program", J.Str i.ji_program);
      ("state", J.Str (state_name i.ji_state));
      ("priority", J.Int i.ji_priority);
      ("attempts", J.Int i.ji_attempts);
      ("subscribers", J.Int i.ji_subscribers);
      ("verdict", CK.opt_to_json (fun s -> J.Str s) i.ji_verdict) ]

let job_info_of_json o =
  { ji_id = CK.str_f o "id";
    ji_program = CK.str_f o "program";
    ji_state = state_of_name (CK.str_f o "state");
    ji_priority = CK.int_f o "priority";
    ji_attempts = CK.int_f o "attempts";
    ji_subscribers = CK.int_f o "subscribers";
    ji_verdict = CK.opt_of_json (CK.as_str "verdict") (CK.field o "verdict") }

let message_to_json = function
  | Hello_ok { pid; version } ->
    J.Obj
      [ ("msg", J.Str "hello");
        ("protocol", J.Str protocol);
        ("pid", J.Int pid);
        ("version", J.Str version) ]
  | Submitted { job; state; deduped } ->
    J.Obj
      [ ("msg", J.Str "submitted");
        ("job", J.Str job);
        ("state", J.Str (state_name state));
        ("deduped", J.Bool deduped) ]
  | Job_list l ->
    J.Obj [ ("msg", J.Str "jobs"); ("jobs", J.Arr (List.map job_info_to_json l)) ]
  | Job_status i -> J.Obj [ ("msg", J.Str "status"); ("job", job_info_to_json i) ]
  | Watching { job; state } ->
    J.Obj
      [ ("msg", J.Str "watching");
        ("job", J.Str job);
        ("state", J.Str (state_name state)) ]
  | Event line -> J.Obj [ ("msg", J.Str "event"); ("line", J.Str line) ]
  | Job_done { job; verdict; found_error; interrupted; rendered; report } ->
    J.Obj
      [ ("msg", J.Str "done");
        ("job", J.Str job);
        ("verdict", J.Str verdict);
        ("found_error", J.Bool found_error);
        ("interrupted", J.Bool interrupted);
        ("rendered", J.Str rendered);
        ("report", report) ]
  | Cancelled { job } -> J.Obj [ ("msg", J.Str "cancelled"); ("job", J.Str job) ]
  | Error_msg e -> J.Obj [ ("msg", J.Str "error"); ("error", J.Str e) ]
  | Bye -> J.Obj [ ("msg", J.Str "bye") ]

let message_of_json o =
  match CK.str_f o "msg" with
  | "hello" ->
    let p = CK.str_f o "protocol" in
    if p <> protocol then CK.fail "protocol mismatch: %S (expected %S)" p protocol;
    Hello_ok { pid = CK.int_f o "pid"; version = CK.str_f o "version" }
  | "submitted" ->
    Submitted
      { job = CK.str_f o "job";
        state = state_of_name (CK.str_f o "state");
        deduped = CK.bool_f o "deduped" }
  | "jobs" -> Job_list (List.map job_info_of_json (CK.arr_f o "jobs"))
  | "status" -> Job_status (job_info_of_json (CK.field o "job"))
  | "watching" ->
    Watching { job = CK.str_f o "job"; state = state_of_name (CK.str_f o "state") }
  | "event" -> Event (CK.str_f o "line")
  | "done" ->
    Job_done
      { job = CK.str_f o "job";
        verdict = CK.str_f o "verdict";
        found_error = CK.bool_f o "found_error";
        interrupted = CK.bool_f o "interrupted";
        rendered = CK.str_f o "rendered";
        report = CK.field o "report" }
  | "cancelled" -> Cancelled { job = CK.str_f o "job" }
  | "error" -> Error_msg (CK.str_f o "error")
  | "bye" -> Bye
  | m -> CK.fail "unknown message %S" m

let runner_to_json = function
  | R_event line -> J.Obj [ ("op", J.Str "event"); ("line", J.Str line) ]
  | R_done { verdict; found_error; interrupted; rendered; report } ->
    J.Obj
      [ ("op", J.Str "done");
        ("verdict", J.Str verdict);
        ("found_error", J.Bool found_error);
        ("interrupted", J.Bool interrupted);
        ("rendered", J.Str rendered);
        ("report", report) ]
  | R_failed e -> J.Obj [ ("op", J.Str "failed"); ("error", J.Str e) ]

let runner_of_json o =
  match CK.str_f o "op" with
  | "event" -> R_event (CK.str_f o "line")
  | "done" ->
    R_done
      { verdict = CK.str_f o "verdict";
        found_error = CK.bool_f o "found_error";
        interrupted = CK.bool_f o "interrupted";
        rendered = CK.str_f o "rendered";
        report = CK.field o "report" }
  | "failed" -> R_failed (CK.str_f o "error")
  | op -> CK.fail "unknown runner message %S" op
