(** A check job as submitted to {!Daemon}: a program reference (built-in
    workload name or ChessLang file path) plus the serializable slice of
    {!Fairmc_core.Search_config.t} — everything that shapes the search, none
    of the runtime plumbing (event sinks, progress callbacks, checkpoint
    paths, fault injection), which the daemon supplies itself.

    Job identity is the checkpoint config fingerprint
    ({!Fairmc_core.Checkpoint.fingerprint}) of the projected config, hashed
    to a short id. Budgets (max executions, time limit) and the execution
    vehicle (jobs/workers) are excluded from the fingerprint by design, so
    duplicate submissions from heavy traffic — even with different budgets —
    dedupe into one running search with many subscribers. *)

type t = {
  js_program : string;  (** built-in name or [*.chess] path *)
  js_mode : Fairmc_core.Search_config.mode;
  js_fair : bool;
  js_fair_k : int;
  js_depth_bound : int option;
  js_random_tail : bool;
  js_max_steps : int;
  js_livelock_bound : int option;
  js_tail_window : int;
  js_max_executions : int option;
  js_time_limit : float option;
  js_seed : int64;
  js_sleep_sets : bool;
  js_coverage : bool;
  js_metrics : bool;
  js_jobs : int;
  js_split_depth : int;
  js_workers : int;
  js_item_timeout : float option;
  js_max_retries : int;
  js_analyses : string list;  (** {!Fairmc_core.Analysis_hook.t} names *)
  js_interp : Fairmc_core.Search_config.interp;
  js_static_por : bool;
}

val schema : string
(** ["fairmc-job/1"]. *)

val of_config : program:string -> Fairmc_core.Search_config.t -> t
(** Project the serializable slice of a full config. *)

val to_config : t -> Fairmc_core.Search_config.t
(** Rebuild a config from the spec ({!Fairmc_core.Search_config.default}
    for everything the spec does not carry). Analysis names resolve against
    the built-in detectors; unknown names are dropped — call {!validate}
    first to reject them. *)

val validate : t -> (unit, string) result
(** Reject specs that cannot faithfully rebuild a config (unknown analysis
    names). *)

val resolve :
  t -> (Fairmc_core.Program.t * Fairmc_util.Json.t option, string) result
(** Resolve the program reference exactly as [chess check] would: registry
    lookup for built-ins, parse + (with [js_static_por]) static compile for
    ChessLang files — the returned lint summary is embedded in the final
    report so a subscriber's JSON equals the direct run's. *)

val fingerprint : t -> program_name:string -> string
(** The checkpoint config fingerprint of the projected config;
    [program_name] is the resolved {!Fairmc_core.Program.t} name. *)

val id : t -> program_name:string -> string
(** Job id: ["j" ^ FNV-1a hex] of {!fingerprint}. Filesystem- and
    wire-safe. *)

val to_json : t -> Fairmc_util.Json.t

val of_json : Fairmc_util.Json.t -> t
(** Raises {!Fairmc_core.Checkpoint.Codec.Parse} on malformed input. *)
