(** Checking as a service: the [chessd] daemon and its wire protocol.

    {!Jobspec} is the serializable description of a check job and its
    fingerprint-based identity; {!Protocol} the [fairmc-jobs/1] frame
    vocabulary (over the fairmc-ipc/1 framing of {!Fairmc_core.Worker});
    {!Daemon} the select-loop server behind the [chessd] binary; {!Client}
    the connection helpers behind [chess submit] / [chess jobs] /
    [chess watch-job]. See DESIGN.md, "Checking as a service". *)

module Jobspec = Jobspec
module Protocol = Protocol
module Daemon = Daemon
module Client = Client
