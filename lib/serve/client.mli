(** Client side of the [fairmc-jobs/1] protocol: connect to a running
    {!Daemon} over its Unix-domain socket, exchange {!Protocol} frames.
    Used by [chess submit] / [chess jobs] / [chess watch-job] and by the
    tests. *)

exception Error of string
(** Connection refusal, daemon EOF, framing or codec violations. *)

val connect : string -> Unix.file_descr
(** Connect to the socket at the given path and complete the
    [Hello]/[Hello_ok] handshake. Raises {!Error}. *)

val request : Unix.file_descr -> Protocol.request -> unit

val next : Unix.file_descr -> Protocol.message
(** Blocking read of the next server message. Raises {!Error} on EOF or a
    malformed frame. *)

val close : Unix.file_descr -> unit

val with_daemon : string -> (Unix.file_descr -> 'a) -> 'a
(** [connect], run, always [close]. *)
