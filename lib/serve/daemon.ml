(* chessd: the checking-as-a-service daemon. See daemon.mli.

   One single-threaded select loop owns everything: the Unix-domain listen
   socket, every client connection, and one pipe per running job. The
   daemon process never creates a domain, so forking job runners stays
   legal under OCaml 5; each runner is a fresh single-domain process that
   is free to fork its own supervised worker pool in turn. *)

module J = Fairmc_util.Json
module CK = Fairmc_core.Checkpoint.Codec
module Checkpoint = Fairmc_core.Checkpoint
module C = Fairmc_core.Search_config
module Program = Fairmc_core.Program
module Report = Fairmc_core.Report
module Checker = Fairmc_core.Checker
module Worker = Fairmc_core.Worker
module P = Protocol

type config = {
  socket : string;
  spool : string;
  max_jobs : int;
  max_attempts : int;
  quiet : bool;
}

let default_config =
  { socket = "chessd.sock";
    spool = "chessd-spool";
    max_jobs = 1;
    max_attempts = 3;
    quiet = false }

(* ------------------------------------------------------------------ *)
(* State.                                                              *)

type client = {
  c_fd : Unix.file_descr;
  c_buf : Worker.inbuf;
  mutable c_alive : bool;
}

type job = {
  j_id : string;
  j_spec : Jobspec.t;
  j_program : string;  (* resolved Program.t name, the fingerprint basis *)
  j_seq : int;  (* FIFO tiebreak within a priority band *)
  mutable j_priority : int;
  mutable j_state : P.job_state;
  mutable j_attempts : int;
  mutable j_cancelled : bool;
  mutable j_watchers : (client * bool) list;  (* client, wants event frames *)
  mutable j_events : string list;  (* event backlog, newest first *)
  mutable j_result : P.message option;  (* the Job_done, once finished *)
  mutable j_failure : string option;
}

type runner = {
  r_pid : int;
  r_fd : Unix.file_descr;  (* read end of the runner's frame pipe *)
  r_buf : Worker.inbuf;
  r_job : job;
  mutable r_finished : bool;  (* saw R_done/R_failed; EOF is then benign *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  jobs : (string, job) Hashtbl.t;
  mutable queue : job list;  (* queued, unsorted; scheduler picks best *)
  mutable clients : client list;
  mutable runners : runner list;
  mutable seq : int;
  mutable stop : bool;
}

let logf t fmt =
  Printf.ksprintf
    (fun s -> if not t.cfg.quiet then Printf.eprintf "[chessd] %s\n%!" s)
    fmt

(* ------------------------------------------------------------------ *)
(* Spool: <id>.job is the submission, <id>.ckpt the search checkpoint
   the runner maintains, <id>.report the finished result. A .job with no
   .report is unfinished work; restart requeues it and the runner resumes
   from the .ckpt, which is what makes SIGTERM survivable.               *)

let spool_path t id ext = Filename.concat t.cfg.spool (id ^ ext)

let spool_schema = "fairmc-spool/1"

(* Same durability discipline as Checkpoint.save_result: data reaches the
   disk before the rename publishes it, and the directory entry is synced
   so a crash cannot leave a published-but-empty file. *)
let write_spool path doc =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = Out_channel.open_bin tmp in
  Fun.protect
    ~finally:(fun () -> Out_channel.close oc)
    (fun () ->
      Out_channel.output_string oc (J.to_string ~pretty:true doc);
      Out_channel.output_char oc '\n';
      Out_channel.flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
    Fun.protect
      ~finally:(fun () -> Unix.close dirfd)
      (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_spool path =
  match J.of_string (In_channel.with_open_bin path In_channel.input_all) with
  | Ok doc -> Ok doc
  | Error e -> Error e
  | exception Sys_error e -> Error e

let save_job t job =
  write_spool
    (spool_path t job.j_id ".job")
    (J.Obj
       [ ("schema", J.Str spool_schema);
         ("spec", Jobspec.to_json job.j_spec);
         ("priority", J.Int job.j_priority) ])

let save_report t job msg = write_spool (spool_path t job.j_id ".report") msg

let remove_file path = try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Client plumbing. A send that fails (EPIPE, send-timeout on a stuck
   subscriber) drops the client; it must never take the daemon down.    *)

let drop_client t c =
  if c.c_alive then begin
    c.c_alive <- false;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    t.clients <- List.filter (fun c' -> c' != c) t.clients;
    Hashtbl.iter
      (fun _ job -> job.j_watchers <- List.filter (fun (w, _) -> w != c) job.j_watchers)
      t.jobs
  end

let send t c msg =
  if c.c_alive then
    try Worker.send c.c_fd (P.message_to_json msg)
    with Unix.Unix_error _ | Sys_error _ ->
      logf t "dropping unresponsive client";
      drop_client t c

let broadcast t job msg ~events_only =
  List.iter
    (fun (c, wants_events) -> if (not events_only) || wants_events then send t c msg)
    job.j_watchers

let job_info (job : job) =
  { P.ji_id = job.j_id;
    ji_program = job.j_program;
    ji_state = job.j_state;
    ji_priority = job.j_priority;
    ji_attempts = job.j_attempts;
    ji_subscribers = List.length job.j_watchers;
    ji_verdict =
      (match job.j_result with
       | Some (P.Job_done d) -> Some d.verdict
       | _ -> (match job.j_failure with Some _ -> Some "failed" | None -> None)) }

(* ------------------------------------------------------------------ *)
(* The runner child: resolve, resume from the spooled checkpoint if one
   fits, run the checker with an event stream that ships every NDJSON
   line up the pipe, and finish with one done/failed frame. The report a
   subscriber receives is built exactly as `chess check` builds it —
   same Report.pp rendering, same Report.to_json document over the
   spec's config (which carries none of the daemon's plumbing), so the
   two are byte-identical up to wall-clock timing fields.               *)

let runner_child t job wfd =
  let send_r m = Worker.send wfd (P.runner_to_json m) in
  match Jobspec.resolve job.j_spec with
  | Error e -> send_r (P.R_failed e)
  | Ok (program, lint) ->
    let base = Jobspec.to_config job.j_spec in
    let ckpt = spool_path t job.j_id ".ckpt" in
    let stream =
      Fairmc_obs.Events.create ~write:(fun line -> send_r (P.R_event line)) ()
    in
    let cfg = { base with C.checkpoint = Some ckpt; events = Some stream } in
    let resume =
      if Sys.file_exists ckpt then
        match Checkpoint.load ckpt with
        | Error _ -> None  (* corrupt or foreign: start over *)
        | Ok c ->
          (match Checkpoint.plan_resume c cfg ~program:program.Program.name with
           | Ok payload -> Some payload
           | Error _ -> None)
      else None
    in
    Checkpoint.install_signal_handlers ();
    (match Checker.check ~config:cfg ?resume program with
     | report ->
       let rendered = Format.asprintf "%a" Report.pp report in
       send_r
         (P.R_done
            { verdict = Report.verdict_key report.Report.verdict;
              found_error = Report.found_error report;
              interrupted = Checkpoint.interrupted ();
              rendered;
              report =
                Report.to_json ~program:program.Program.name
                  ~config:(C.describe base) ?lint report })
     | exception Checkpoint.Mismatch e -> send_r (P.R_failed ("cannot resume: " ^ e))
     | exception e -> send_r (P.R_failed (Printexc.to_string e)))

let spawn_runner t job =
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Child: drop every daemon fd, restore default termination handling
       (the checkpoint layer installs its own graceful handlers), run. *)
    Unix.close rfd;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) t.clients;
    List.iter (fun r -> try Unix.close r.r_fd with Unix.Unix_error _ -> ()) t.runners;
    Sys.set_signal Sys.sigterm Sys.Signal_default;
    Sys.set_signal Sys.sigint Sys.Signal_default;
    (try runner_child t job wfd
     with e -> (
       try Worker.send wfd (P.runner_to_json (P.R_failed (Printexc.to_string e)))
       with _ -> ()));
    (try Unix.close wfd with Unix.Unix_error _ -> ());
    Stdlib.exit 0
  | pid ->
    Unix.close wfd;
    job.j_state <- P.Running;
    t.runners <-
      { r_pid = pid; r_fd = rfd; r_buf = Worker.inbuf (); r_job = job;
        r_finished = false }
      :: t.runners;
    logf t "job %s: runner pid %d started (attempt %d)" job.j_id pid
      (job.j_attempts + 1)

(* Highest priority first; FIFO within a band. *)
let schedule t =
  if not t.stop then
    while
      List.length t.runners < t.cfg.max_jobs
      && t.queue <> []
      &&
      (let best =
         List.fold_left
           (fun acc j ->
             match acc with
             | None -> Some j
             | Some b ->
               if j.j_priority > b.j_priority
                  || (j.j_priority = b.j_priority && j.j_seq < b.j_seq)
               then Some j
               else acc)
           None t.queue
       in
       match best with
       | None -> false
       | Some job ->
         t.queue <- List.filter (fun j -> j != job) t.queue;
         spawn_runner t job;
         true)
    do
      ()
    done

(* ------------------------------------------------------------------ *)
(* Job lifecycle.                                                      *)

let requeue t job =
  job.j_state <- P.Queued;
  if not (List.memq job t.queue) then t.queue <- job :: t.queue

let finish_failed t job reason =
  job.j_state <- P.Failed;
  job.j_failure <- Some reason;
  logf t "job %s: failed: %s" job.j_id reason;
  List.iter (fun (c, _) -> send t c (P.Error_msg reason)) job.j_watchers;
  job.j_watchers <- []

let finish_done t job (d : P.runner_msg) =
  match d with
  | P.R_done r ->
    let msg =
      P.Job_done
        { job = job.j_id; verdict = r.verdict; found_error = r.found_error;
          interrupted = false; rendered = r.rendered; report = r.report }
    in
    job.j_state <- P.Done;
    job.j_result <- Some msg;
    (try save_report t job (P.message_to_json msg)
     with e -> logf t "job %s: cannot spool report: %s" job.j_id (Printexc.to_string e));
    remove_file (spool_path t job.j_id ".ckpt");
    logf t "job %s: done (%s)" job.j_id r.verdict;
    List.iter (fun (c, _) -> send t c msg) job.j_watchers;
    job.j_watchers <- []
  | _ -> assert false

let runner_attempt_failed t job reason =
  job.j_attempts <- job.j_attempts + 1;
  if job.j_attempts >= t.cfg.max_attempts then finish_failed t job reason
  else begin
    logf t "job %s: attempt %d failed (%s); requeueing" job.j_id job.j_attempts reason;
    requeue t job
  end

let handle_runner_msg t r = function
  | P.R_event line ->
    (* Backlogged as well as broadcast: a watcher that subscribes after
       the runner started (or after it finished — the backlog outlives the
       runner) still sees the stream from its first line, so the event
       slice it receives is the complete one a direct run would write. *)
    r.r_job.j_events <- line :: r.r_job.j_events;
    broadcast t r.r_job (P.Event line) ~events_only:true
  | P.R_done d when d.interrupted ->
    (* The runner checkpointed and stopped early: a cancel, or someone
       signalled it directly. Either way the .ckpt carries the progress. *)
    r.r_finished <- true;
    if r.r_job.j_cancelled then begin
      r.r_job.j_state <- P.Failed;
      r.r_job.j_failure <- Some "cancelled";
      List.iter (fun (c, _) -> send t c (P.Cancelled { job = r.r_job.j_id }))
        r.r_job.j_watchers;
      r.r_job.j_watchers <- []
    end
    else begin
      logf t "job %s: runner interrupted; requeueing from checkpoint" r.r_job.j_id;
      requeue t r.r_job
    end
  | P.R_done _ as d ->
    r.r_finished <- true;
    finish_done t r.r_job d
  | P.R_failed e ->
    r.r_finished <- true;
    runner_attempt_failed t r.r_job e

let close_runner t r =
  (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
  t.runners <- List.filter (fun r' -> r' != r) t.runners;
  (try ignore (Unix.waitpid [] r.r_pid) with Unix.Unix_error _ -> ());
  if not r.r_finished then
    (* Died without a final frame: crash or kill. The checkpoint (if the
       runner got far enough to write one) limits the rework on retry. *)
    runner_attempt_failed t r.r_job "runner exited without a result"

let handle_runner_readable t r =
  match Worker.feed r.r_buf r.r_fd with
  | `Eof -> close_runner t r
  | `Data _ ->
    let rec drain () =
      match Worker.extract r.r_buf with
      | Ok None -> ()
      | Ok (Some frame) ->
        (match P.runner_of_json frame with
         | msg -> handle_runner_msg t r msg
         | exception CK.Parse e ->
           logf t "job %s: runner protocol error: %s" r.r_job.j_id e;
           (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
           close_runner t r);
        if List.memq r t.runners then drain ()
      | Error e ->
        logf t "job %s: runner framing error: %s" r.r_job.j_id e;
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        close_runner t r
    in
    drain ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Requests.                                                           *)

let submit t c (spec : Jobspec.t) priority =
  match Jobspec.validate spec with
  | Error e -> send t c (P.Error_msg e)
  | Ok () ->
    (match Jobspec.resolve spec with
     | Error e -> send t c (P.Error_msg e)
     | Ok (program, _lint) ->
       let program_name = program.Program.name in
       let id = Jobspec.id spec ~program_name in
       (match Hashtbl.find_opt t.jobs id with
        | Some job ->
          (* Dedup: same fingerprint = same search. A resubmission of a
             failed job gets a fresh budget of attempts. *)
          if job.j_state = P.Failed then begin
            job.j_failure <- None;
            job.j_attempts <- 0;
            job.j_cancelled <- false;
            requeue t job;
            schedule t
          end;
          send t c (P.Submitted { job = id; state = job.j_state; deduped = true })
        | None ->
          let job =
            { j_id = id; j_spec = spec; j_program = program_name; j_seq = t.seq;
              j_priority = priority; j_state = P.Queued; j_attempts = 0;
              j_cancelled = false; j_watchers = []; j_events = [];
              j_result = None; j_failure = None }
          in
          t.seq <- t.seq + 1;
          Hashtbl.replace t.jobs id job;
          (try save_job t job
           with e -> logf t "job %s: cannot spool: %s" id (Printexc.to_string e));
          t.queue <- job :: t.queue;
          logf t "job %s: submitted (%s, priority %d)" id program_name priority;
          send t c (P.Submitted { job = id; state = P.Queued; deduped = false });
          schedule t))

let watch t c id events =
  match Hashtbl.find_opt t.jobs id with
  | None -> send t c (P.Error_msg (Printf.sprintf "unknown job %S" id))
  | Some job ->
    send t c (P.Watching { job = id; state = job.j_state });
    if events then
      List.iter (fun line -> send t c (P.Event line)) (List.rev job.j_events);
    (match (job.j_state, job.j_result, job.j_failure) with
     | P.Done, Some msg, _ -> send t c msg
     | P.Failed, _, Some reason -> send t c (P.Error_msg reason)
     | _ -> job.j_watchers <- (c, events) :: job.j_watchers)

let cancel t c id =
  match Hashtbl.find_opt t.jobs id with
  | None -> send t c (P.Error_msg (Printf.sprintf "unknown job %S" id))
  | Some job ->
    (match job.j_state with
     | P.Queued ->
       t.queue <- List.filter (fun j -> j != job) t.queue;
       job.j_state <- P.Failed;
       job.j_failure <- Some "cancelled";
       List.iter (fun (w, _) -> send t w (P.Cancelled { job = id })) job.j_watchers;
       job.j_watchers <- [];
       send t c (P.Cancelled { job = id })
     | P.Running ->
       job.j_cancelled <- true;
       List.iter
         (fun r ->
           if r.r_job == job then
             try Unix.kill r.r_pid Sys.sigterm with Unix.Unix_error _ -> ())
         t.runners;
       send t c (P.Cancelled { job = id })
     | P.Done | P.Failed -> send t c (P.Cancelled { job = id }))

let handle_request t c = function
  | P.Hello ->
    send t c (P.Hello_ok { pid = Unix.getpid (); version = "1.0.0" })
  | P.Submit { spec; priority } -> submit t c spec priority
  | P.Jobs ->
    let all = Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [] in
    let all = List.sort (fun a b -> compare a.j_seq b.j_seq) all in
    send t c (P.Job_list (List.map job_info all))
  | P.Status id ->
    (match Hashtbl.find_opt t.jobs id with
     | Some job -> send t c (P.Job_status (job_info job))
     | None -> send t c (P.Error_msg (Printf.sprintf "unknown job %S" id)))
  | P.Watch { job; events } -> watch t c job events
  | P.Cancel id -> cancel t c id
  | P.Shutdown ->
    logf t "shutdown requested";
    send t c P.Bye;
    t.stop <- true

let handle_client_readable t c =
  match Worker.feed c.c_buf c.c_fd with
  | `Eof -> drop_client t c
  | `Data _ ->
    let rec drain () =
      if c.c_alive then
        match Worker.extract c.c_buf with
        | Ok None -> ()
        | Ok (Some frame) ->
          (match P.request_of_json frame with
           | req -> handle_request t c req
           | exception CK.Parse e ->
             (* A malformed request costs the sender its connection, never
                the daemon. *)
             send t c (P.Error_msg ("bad request: " ^ e));
             drop_client t c);
          drain ()
        | Error e ->
          send t c (P.Error_msg ("bad frame: " ^ e));
          drop_client t c
    in
    drain ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let accept_client t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    (* A subscriber that stops reading must not wedge the select loop: a
       bounded send either completes or costs that client its slot. *)
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    t.clients <- { c_fd = fd; c_buf = Worker.inbuf (); c_alive = true } :: t.clients
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ()

(* ------------------------------------------------------------------ *)
(* Startup / shutdown.                                                 *)

let scan_spool t =
  match Sys.readdir t.cfg.spool with
  | exception Sys_error _ -> ()
  | entries ->
    Array.sort compare entries;
    Array.iter
      (fun entry ->
        if Filename.check_suffix entry ".job" then begin
          let id = Filename.chop_suffix entry ".job" in
          match read_spool (Filename.concat t.cfg.spool entry) with
          | Error e -> logf t "spool %s: unreadable: %s" entry e
          | Ok doc ->
            (match
               (Jobspec.of_json (CK.field doc "spec"), CK.int_f doc "priority")
             with
             | exception CK.Parse e -> logf t "spool %s: malformed: %s" entry e
             | spec, priority ->
               (match Jobspec.resolve spec with
                | Error e -> logf t "spool %s: unresolvable: %s" entry e
                | Ok (program, _) ->
                  let job =
                    { j_id = id; j_spec = spec; j_program = program.Program.name;
                      j_seq = t.seq; j_priority = priority; j_state = P.Queued;
                      j_attempts = 0; j_cancelled = false; j_watchers = [];
                      j_events = []; j_result = None; j_failure = None }
                  in
                  t.seq <- t.seq + 1;
                  Hashtbl.replace t.jobs id job;
                  let report_file = spool_path t id ".report" in
                  (match read_spool report_file with
                   | Ok doc ->
                     (match P.message_of_json doc with
                      | P.Job_done _ as msg ->
                        job.j_state <- P.Done;
                        job.j_result <- Some msg;
                        logf t "job %s: restored (done)" id
                      | _ | (exception CK.Parse _) ->
                        remove_file report_file;
                        t.queue <- job :: t.queue;
                        logf t "job %s: restored report unreadable; requeued" id)
                   | Error _ ->
                     (* No (readable) report: unfinished. The runner will
                        resume from the .ckpt if one was flushed. *)
                     t.queue <- job :: t.queue;
                     logf t "job %s: restored (queued%s)" id
                       (if Sys.file_exists (spool_path t id ".ckpt") then
                          ", will resume from checkpoint"
                        else ""))))
        end)
      entries

let shutdown t =
  logf t "stopping: %d runner(s), %d client(s)" (List.length t.runners)
    (List.length t.clients);
  (* Runners get the graceful treatment: SIGTERM reaches the checkpoint
     layer's handler, the search flushes a final .ckpt and exits; restart
     picks every unfinished job up from there. *)
  List.iter
    (fun r -> try Unix.kill r.r_pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.runners;
  List.iter
    (fun r ->
      (try ignore (Unix.waitpid [] r.r_pid)
       with Unix.Unix_error _ -> ());
      try Unix.close r.r_fd with Unix.Unix_error _ -> ())
    t.runners;
  t.runners <- [];
  List.iter (fun c -> send t c P.Bye) (List.filter (fun c -> c.c_alive) t.clients);
  List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) t.clients;
  t.clients <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  remove_file t.cfg.socket

let rec loop t =
  if t.stop then shutdown t
  else begin
    schedule t;
    let fds =
      (t.listen_fd :: List.map (fun c -> c.c_fd) t.clients)
      @ List.map (fun r -> r.r_fd) t.runners
    in
    (match Unix.select fds [] [] 0.5 with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     | ready, _, _ ->
       List.iter
         (fun fd ->
           if fd = t.listen_fd then accept_client t
           else
             match List.find_opt (fun r -> r.r_fd = fd) t.runners with
             | Some r -> handle_runner_readable t r
             | None ->
               (match
                  List.find_opt (fun c -> c.c_alive && c.c_fd = fd) t.clients
                with
                | Some c -> handle_client_readable t c
                | None -> ()))
         ready);
    loop t
  end

let run cfg =
  (* Clients come and go mid-write; the daemon must outlive every broken
     pipe. Writes surface EPIPE as an exception instead. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev_sigpipe with
      | Some h -> (try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
      | None -> ())
  @@ fun () ->
  if not (Sys.file_exists cfg.spool) then Unix.mkdir cfg.spool 0o755;
  if Sys.file_exists cfg.socket then Sys.remove cfg.socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  let t =
    { cfg; listen_fd; jobs = Hashtbl.create 64; queue = []; clients = [];
      runners = []; seq = 0; stop = false }
  in
  let stop_signal _ = t.stop <- true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
   with Invalid_argument _ -> ());
  scan_spool t;
  logf t "listening on %s (spool %s, %d restored job(s))" cfg.socket cfg.spool
    (Hashtbl.length t.jobs);
  Fun.protect ~finally:(fun () -> if Sys.file_exists cfg.socket then remove_file cfg.socket)
  @@ fun () -> loop t
