(** chessd: a checking-as-a-service daemon.

    A single-threaded select loop on a Unix-domain socket accepts
    [fairmc-jobs/1] frames ({!Protocol}, on the fairmc-ipc/1 framing of
    {!Fairmc_core.Worker}), keeps a priority queue of submitted jobs, and
    runs each job in a forked runner process — the daemon itself never
    creates a domain, so forking stays legal under OCaml 5 and each runner
    is free to fork its own supervised worker pool
    ({!Fairmc_core.Supervisor}).

    {b Identity and dedup.} A job's identity is its config fingerprint
    ({!Jobspec.id}): a resubmission of an already-known search — whatever
    its budgets — attaches to the existing job rather than starting a
    second search; every watcher of that id receives the same final
    report.

    {b Durability.} Each job is spooled as [<id>.job]; the runner
    maintains [<id>.ckpt] (schema [fairmc-ckpt/1]) through the standard
    checkpoint machinery, and the finished result is published as
    [<id>.report]. On SIGTERM the daemon forwards the signal to its
    runners — the checkpoint layer's graceful handler flushes a final
    checkpoint — and a restarted daemon requeues every [.job] without a
    [.report], resuming from the spooled checkpoint.

    {b Fidelity.} The runner builds its report exactly as [chess check]
    does, over the spec's own config (none of the daemon's plumbing), so
    the report a subscriber receives is byte-identical to the direct run's
    up to wall-clock timing fields; streamed event frames are the runner's
    own [fairmc-events/1] NDJSON lines, verbatim. *)

type config = {
  socket : string;  (** Unix-domain socket path; replaced if present *)
  spool : string;  (** spool directory; created if missing *)
  max_jobs : int;  (** concurrent runner processes *)
  max_attempts : int;
      (** runner crashes/failures per job before it is marked failed;
          graceful interruptions (cancel, external SIGTERM) do not count *)
  quiet : bool;  (** suppress the stderr log *)
}

val default_config : config
(** [chessd.sock], [chessd-spool], one runner, three attempts, logging
    on. *)

val run : config -> unit
(** Serve until SIGTERM/SIGINT or a [Shutdown] request, then stop runners
    gracefully, notify clients, and remove the socket. Blocks. *)
