(* Client side of the fairmc-jobs/1 protocol. See client.mli. *)

module Worker = Fairmc_core.Worker
module CK = Fairmc_core.Checkpoint.Codec
module P = Protocol

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let next fd =
  match Worker.recv fd with
  | Ok (Some frame) ->
    (match P.message_of_json frame with
     | msg -> msg
     | exception CK.Parse e -> fail "bad frame from daemon: %s" e)
  | Ok None -> fail "daemon closed the connection"
  | Error e -> fail "%s" e

let request fd req =
  try Worker.send fd (P.request_to_json req)
  with Unix.Unix_error (e, _, _) -> fail "cannot reach daemon: %s" (Unix.error_message e)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
   | () -> ()
   | exception Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect to %s: %s (is chessd running?)" path (Unix.error_message e));
  match
    request fd P.Hello;
    next fd
  with
  | P.Hello_ok _ -> fd
  | msg ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    fail "unexpected greeting: %s"
      (Fairmc_util.Json.to_string (P.message_to_json msg))
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_daemon path f =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd)
