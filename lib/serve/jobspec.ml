(* A check job as submitted to chessd: a program reference plus the
   serializable slice of {!Search_config.t}. See jobspec.mli. *)

module C = Fairmc_core.Search_config
module CK = Fairmc_core.Checkpoint.Codec
module Checkpoint = Fairmc_core.Checkpoint
module Program = Fairmc_core.Program
module AH = Fairmc_core.Analysis_hook
module J = Fairmc_util.Json
module Fnv = Fairmc_util.Fnv
module W = Fairmc_workloads
module D = Fairmc_dsl

let schema = "fairmc-job/1"

type t = {
  js_program : string;
  js_mode : C.mode;
  js_fair : bool;
  js_fair_k : int;
  js_depth_bound : int option;
  js_random_tail : bool;
  js_max_steps : int;
  js_livelock_bound : int option;
  js_tail_window : int;
  js_max_executions : int option;
  js_time_limit : float option;
  js_seed : int64;
  js_sleep_sets : bool;
  js_coverage : bool;
  js_metrics : bool;
  js_jobs : int;
  js_split_depth : int;
  js_workers : int;
  js_item_timeout : float option;
  js_max_retries : int;
  js_analyses : string list;
  js_interp : C.interp;
  js_static_por : bool;
}

(* ------------------------------------------------------------------ *)
(* Search_config projection.                                           *)

(* The three dynamic analyses, keyed by their AH.name — the same strings
   the config fingerprint embeds, so a job spec round-trips through the
   fingerprint unchanged. *)
let known_analyses =
  [ Fairmc_analysis.Hb_race.analysis;
    Fairmc_analysis.Lockset.analysis;
    Fairmc_analysis.Lock_graph.analysis ]

let analysis_of_name n =
  List.find_opt (fun (a : AH.t) -> a.AH.name = n) known_analyses

let of_config ~program (cfg : C.t) =
  { js_program = program;
    js_mode = cfg.C.mode;
    js_fair = cfg.C.fair;
    js_fair_k = cfg.C.fair_k;
    js_depth_bound = cfg.C.depth_bound;
    js_random_tail = cfg.C.random_tail;
    js_max_steps = cfg.C.max_steps;
    js_livelock_bound = cfg.C.livelock_bound;
    js_tail_window = cfg.C.tail_window;
    js_max_executions = cfg.C.max_executions;
    js_time_limit = cfg.C.time_limit;
    js_seed = cfg.C.seed;
    js_sleep_sets = cfg.C.sleep_sets;
    js_coverage = cfg.C.coverage;
    js_metrics = cfg.C.metrics;
    js_jobs = cfg.C.jobs;
    js_split_depth = cfg.C.split_depth;
    js_workers = cfg.C.workers;
    js_item_timeout = cfg.C.item_timeout;
    js_max_retries = cfg.C.max_retries;
    js_analyses = List.map (fun (a : AH.t) -> a.AH.name) cfg.C.analyses;
    js_interp = cfg.C.interp;
    js_static_por = cfg.C.static_por }

let to_config t =
  let analyses = List.filter_map analysis_of_name t.js_analyses in
  { C.default with
    C.mode = t.js_mode;
    fair = t.js_fair;
    fair_k = t.js_fair_k;
    depth_bound = t.js_depth_bound;
    random_tail = t.js_random_tail;
    max_steps = t.js_max_steps;
    livelock_bound = t.js_livelock_bound;
    tail_window = t.js_tail_window;
    max_executions = t.js_max_executions;
    time_limit = t.js_time_limit;
    seed = t.js_seed;
    sleep_sets = t.js_sleep_sets;
    coverage = t.js_coverage;
    metrics = t.js_metrics;
    jobs = t.js_jobs;
    split_depth = t.js_split_depth;
    workers = t.js_workers;
    item_timeout = t.js_item_timeout;
    max_retries = t.js_max_retries;
    analyses;
    interp = t.js_interp;
    static_por = t.js_static_por }

let validate t =
  let unknown = List.filter (fun n -> analysis_of_name n = None) t.js_analyses in
  match unknown with
  | [] -> Ok ()
  | l -> Error (Printf.sprintf "unknown analyses: %s" (String.concat ", " l))

(* ------------------------------------------------------------------ *)
(* Program resolution (mirrors the chess check CLI).                   *)

let resolve t =
  let name = t.js_program in
  if Filename.check_suffix name ".chess" then
    match
      let ast = D.Parser.parse_file name in
      if t.js_static_por then
        ( Fairmc_static.compile ~backend:(D.backend_of_interp t.js_interp) ast,
          Some (Fairmc_static.Lint.summary_json (Fairmc_static.Lint.run ast)) )
      else (D.compile ~backend:(D.backend_of_interp t.js_interp) ast, None)
    with
    | result -> Ok result
    | exception D.Parser.Error (msg, pos) ->
      Error (Format.asprintf "%s: syntax error: %s (%a)" name msg D.Ast.pp_pos pos)
    | exception D.Lexer.Error (msg, pos) ->
      Error (Format.asprintf "%s: lexical error: %s (%a)" name msg D.Ast.pp_pos pos)
    | exception D.Sema.Error (msg, pos) ->
      Error (Format.asprintf "%s: error: %s (%a)" name msg D.Ast.pp_pos pos)
    | exception Sys_error e -> Error e
  else
    match W.Registry.find name with
    | Some e -> Ok (e.W.Registry.program, None)
    | None -> Error (Printf.sprintf "unknown program %S; try `chess list`" name)

(* ------------------------------------------------------------------ *)
(* Identity.                                                           *)

let fingerprint t ~program_name =
  Checkpoint.fingerprint (to_config t) ~program:program_name

let id t ~program_name =
  Printf.sprintf "j%s" (Fnv.to_hex (Fnv.string Fnv.init (fingerprint t ~program_name)))

(* ------------------------------------------------------------------ *)
(* JSON codec. Parsers raise {!Checkpoint.Codec.Parse}.                *)

let mode_to_json = function
  | C.Dfs -> J.Str "dfs"
  | C.Round_robin -> J.Str "rr"
  | C.Context_bounded n -> J.Arr [ J.Str "cb"; J.Int n ]
  | C.Random_walk n -> J.Arr [ J.Str "random"; J.Int n ]
  | C.Priority_random n -> J.Arr [ J.Str "prio"; J.Int n ]

let mode_of_json = function
  | J.Str "dfs" -> C.Dfs
  | J.Str "rr" -> C.Round_robin
  | J.Arr [ J.Str "cb"; J.Int n ] -> C.Context_bounded n
  | J.Arr [ J.Str "random"; J.Int n ] -> C.Random_walk n
  | J.Arr [ J.Str "prio"; J.Int n ] -> C.Priority_random n
  | _ -> CK.fail "bad search mode"

let to_json t =
  J.Obj
    [ ("schema", J.Str schema);
      ("program", J.Str t.js_program);
      ("mode", mode_to_json t.js_mode);
      ("fair", J.Bool t.js_fair);
      ("fair_k", J.Int t.js_fair_k);
      ("depth_bound", CK.opt_to_json (fun i -> J.Int i) t.js_depth_bound);
      ("random_tail", J.Bool t.js_random_tail);
      ("max_steps", J.Int t.js_max_steps);
      ("livelock_bound", CK.opt_to_json (fun i -> J.Int i) t.js_livelock_bound);
      ("tail_window", J.Int t.js_tail_window);
      ("max_executions", CK.opt_to_json (fun i -> J.Int i) t.js_max_executions);
      ("time_limit", CK.opt_to_json (fun f -> J.Float f) t.js_time_limit);
      ("seed", CK.int64_to_json t.js_seed);
      ("sleep_sets", J.Bool t.js_sleep_sets);
      ("coverage", J.Bool t.js_coverage);
      ("metrics", J.Bool t.js_metrics);
      ("jobs", J.Int t.js_jobs);
      ("split_depth", J.Int t.js_split_depth);
      ("workers", J.Int t.js_workers);
      ("item_timeout", CK.opt_to_json (fun f -> J.Float f) t.js_item_timeout);
      ("max_retries", J.Int t.js_max_retries);
      ("analyses", J.Arr (List.map (fun n -> J.Str n) t.js_analyses));
      ("interp", J.Str (C.interp_name t.js_interp));
      ("static_por", J.Bool t.js_static_por) ]

let of_json o =
  let s = CK.str_f o "schema" in
  if s <> schema then CK.fail "unsupported job schema %S (expected %S)" s schema;
  { js_program = CK.str_f o "program";
    js_mode = mode_of_json (CK.field o "mode");
    js_fair = CK.bool_f o "fair";
    js_fair_k = CK.int_f o "fair_k";
    js_depth_bound = CK.opt_of_json (CK.as_int "depth_bound") (CK.field o "depth_bound");
    js_random_tail = CK.bool_f o "random_tail";
    js_max_steps = CK.int_f o "max_steps";
    js_livelock_bound =
      CK.opt_of_json (CK.as_int "livelock_bound") (CK.field o "livelock_bound");
    js_tail_window = CK.int_f o "tail_window";
    js_max_executions =
      CK.opt_of_json (CK.as_int "max_executions") (CK.field o "max_executions");
    js_time_limit = CK.opt_of_json (CK.as_float "time_limit") (CK.field o "time_limit");
    js_seed = CK.int64_of_json "seed" (CK.field o "seed");
    js_sleep_sets = CK.bool_f o "sleep_sets";
    js_coverage = CK.bool_f o "coverage";
    js_metrics = CK.bool_f o "metrics";
    js_jobs = CK.int_f o "jobs";
    js_split_depth = CK.int_f o "split_depth";
    js_workers = CK.int_f o "workers";
    js_item_timeout =
      CK.opt_of_json (CK.as_float "item_timeout") (CK.field o "item_timeout");
    js_max_retries = CK.int_f o "max_retries";
    js_analyses =
      List.map
        (function J.Str n -> n | _ -> CK.fail "bad analysis name")
        (CK.arr_f o "analyses");
    js_interp =
      (match CK.str_f o "interp" with
       | "vm" -> C.Vm
       | "ast" -> C.Ast
       | i -> CK.fail "unknown interp %S" i);
    js_static_por = CK.bool_f o "static_por" }
