(** The [fairmc-jobs/1] wire vocabulary of {!Daemon}.

    Frames ride the fairmc-ipc/1 framing of {!Fairmc_core.Worker} — an
    8-lowercase-hex payload length followed by that many bytes of JSON —
    over a Unix-domain stream socket. Requests flow client→daemon; a
    single request may be answered by a stream of messages (a [Watch]
    yields [Watching], then [Event] frames, then one terminal [Job_done]).
    The runner messages are daemon-internal: each forked job runner ships
    them up its pipe and the daemon fans them out to subscribers. *)

val protocol : string
(** ["fairmc-jobs/1"]; embedded in the handshake and checked on decode. *)

type job_state = Queued | Running | Done | Failed

val state_name : job_state -> string
(** ["queued"], ["running"], ["done"], ["failed"]. *)

val state_of_name : string -> job_state
(** Raises {!Fairmc_core.Checkpoint.Codec.Parse} on unknown input. *)

type job_info = {
  ji_id : string;
  ji_program : string;
  ji_state : job_state;
  ji_priority : int;
  ji_attempts : int;
  ji_subscribers : int;
  ji_verdict : string option;
      (** {!Fairmc_core.Report.verdict_key} once done; ["failed"] for
          failed jobs *)
}

type request =
  | Hello  (** mandatory first frame; carries the protocol version *)
  | Submit of { spec : Jobspec.t; priority : int }
  | Jobs
  | Status of string
  | Watch of { job : string; events : bool }
      (** subscribe to a job's completion; with [events], also receive its
          [fairmc-events/1] stream *)
  | Cancel of string
  | Shutdown

type message =
  | Hello_ok of { pid : int; version : string }
  | Submitted of { job : string; state : job_state; deduped : bool }
      (** [deduped] marks a submission that attached to an already-known
          job (same config fingerprint) instead of starting a search *)
  | Job_list of job_info list
  | Job_status of job_info
  | Watching of { job : string; state : job_state }
  | Event of string  (** one raw [fairmc-events/1] NDJSON line, verbatim *)
  | Job_done of {
      job : string;
      verdict : string;  (** {!Fairmc_core.Report.verdict_key} *)
      found_error : bool;
      interrupted : bool;
      rendered : string;  (** the report exactly as [chess check] prints it *)
      report : Fairmc_util.Json.t;  (** the [fairmc-report/2] document *)
    }
  | Cancelled of { job : string }
  | Error_msg of string
  | Bye

type runner_msg =
  | R_event of string
  | R_done of {
      verdict : string;
      found_error : bool;
      interrupted : bool;
      rendered : string;
      report : Fairmc_util.Json.t;
    }
  | R_failed of string

(** {1 Codecs}

    Parsers raise {!Fairmc_core.Checkpoint.Codec.Parse} on malformed
    input. *)

val request_to_json : request -> Fairmc_util.Json.t
val request_of_json : Fairmc_util.Json.t -> request
val job_info_to_json : job_info -> Fairmc_util.Json.t
val job_info_of_json : Fairmc_util.Json.t -> job_info
val message_to_json : message -> Fairmc_util.Json.t
val message_of_json : Fairmc_util.Json.t -> message
val runner_to_json : runner_msg -> Fairmc_util.Json.t
val runner_of_json : Fairmc_util.Json.t -> runner_msg
