(* `chess lint`: static diagnostics over a checked ChessLang program.

   Rules (severities in brackets):
     double-lock      [error]   mutex acquired while provably already held
     unlock-unheld    [error]   mutex released where it cannot be held
     lock-inversion   [error]   cycle in the static lock-order graph
     never-signaled   [error]   blocking wait on an event no thread sets /
                                a 0-initial semaphore no thread posts
     silent-loop      [error]   reachable loop with no scheduling point and
                                no exit edge: burns the engine's silent fuel
     race-candidate   [warning] shared global written without a common
                                protecting lock across its access sites
     dead-code        [warning] statements unreachable in the bytecode CFG
                                (constant guards folded)
     unused-global    [note]    declaration never referenced by any thread
     unused-local     [note]    thread local never read

   Locksets come from a per-thread forward dataflow over the statement
   tree: must-held (set intersection at joins) drives double-lock,
   lock-order edges, and race candidates; may-held (union at joins)
   drives unlock-unheld. try/timed acquisitions only ever enter
   may-held — holding them is conditional on success, so they protect
   nothing and release nowhere. While loops iterate to a fixpoint
   before one reporting pass over the body.

   Everything is conservative in the advisory direction: a finding
   means "the engine can be driven into this" only up to the usual
   static over-approximation — which is why dekker/peterson flag
   race-candidate (they synchronize through bare shared variables by
   design), and why the rule is a warning, not an error. *)

module SSet = Set.Make (String)
module Json = Fairmc_util.Json
module Ast = Fairmc_dsl.Ast
module Sema = Fairmc_dsl.Sema
module Stmt_op = Fairmc_dsl.Stmt_op
module Compile = Fairmc_dsl.Compile

type severity = Error | Warning | Note

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let to_string f =
  Printf.sprintf "%s:%d:%d: %s: %s [%s]" f.file f.line f.col
    (severity_name f.severity) f.message f.rule

let compare_finding a b =
  compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

(* ------------------------------------------------------------------ *)

let stmt_exprs (s : Ast.stmt) =
  match s.kind with
  | Local (_, e) | Assert (e, _) | Assign (Lname (_, _), e) -> [ e ]
  | Assign (Lindex (_, _, i), e) -> [ i; e ]
  | If (c, _, _) | While (c, _) -> [ c ]
  | Lock _ | Unlock _ | Wait _ | Set_event _ | Reset_event _ | Sem_p _ | Sem_v _
  | Yield | Sleep | Skip | Atomic _ -> []

let rec expr_reads acc (e : Ast.expr) =
  match e with
  | Name (_, n) -> n :: acc
  | Index (_, a, i) -> expr_reads (a :: acc) i
  | Binop (_, x, y) -> expr_reads (expr_reads acc x) y
  | Unop (_, x) -> expr_reads acc x
  | Int _ | Try_lock _ | Timed_lock _ | Timed_wait _ | Sem_try _ | Choose _ -> acc

let run ?file (prog : Ast.program) : finding list =
  let info = Sema.check prog in
  let threads = Ast.threads prog in
  let file = Option.value ~default:prog.prog_name file in
  let out = ref [] in
  let add ~rule ~severity ~(pos : Ast.pos) fmt =
    Format.kasprintf
      (fun message ->
        out :=
          { rule; severity; file; line = pos.line; col = pos.col; message } :: !out)
      fmt
  in
  let pos_le (a : Ast.pos) (b : Ast.pos) = (a.line, a.col) <= (b.line, b.col) in

  (* ---------------- lockset dataflow ---------------- *)
  let must_at : (int, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let lock_edges = ref [] in (* held mutex, acquired mutex, acquisition pos *)
  let silent_depth = ref 0 in
  let emitting () = !silent_depth = 0 in
  let rec walk (must, may) (s : Ast.stmt) : SSet.t * SSet.t =
    Hashtbl.replace must_at s.id must;
    (* try/timed acquisitions inside expressions: conditionally held. *)
    let may =
      List.fold_left
        (fun may e ->
          List.fold_left
            (fun may p ->
              match (p : Ast.expr) with
              | Try_lock (pp, m) | Timed_lock (pp, m) ->
                if emitting () then
                  SSet.iter
                    (fun h ->
                      if h <> m then lock_edges := (h, m, pp) :: !lock_edges)
                    must;
                SSet.add m may
              | _ -> may)
            may (Sema.effectful_list e))
        may (stmt_exprs s)
    in
    let st = (must, may) in
    match s.kind with
    | Lock m ->
      if SSet.mem m must && emitting () then
        add ~rule:"double-lock" ~severity:Error ~pos:s.pos
          "mutex '%s' is acquired while already held: self-deadlock" m;
      if emitting () then
        SSet.iter
          (fun h -> if h <> m then lock_edges := (h, m, s.pos) :: !lock_edges)
          must;
      (SSet.add m must, SSet.add m may)
    | Unlock m ->
      if (not (SSet.mem m may)) && emitting () then
        add ~rule:"unlock-unheld" ~severity:Error ~pos:s.pos
          "mutex '%s' is released but cannot be held here" m;
      (SSet.remove m must, SSet.remove m may)
    | If (_, t, f) ->
      let mt, yt = walk_block st t in
      let mf, yf = walk_block st f in
      (SSet.inter mt mf, SSet.union yt yf)
    | While (_, b) ->
      (* Head state = meet of the entry state and every back edge. *)
      let rec iter head =
        incr silent_depth;
        let am, ay = walk_block head b in
        decr silent_depth;
        let head' = (SSet.inter (fst head) am, SSet.union (snd head) ay) in
        if SSet.equal (fst head') (fst head) && SSet.equal (snd head') (snd head)
        then head
        else iter head'
      in
      let head = iter st in
      Hashtbl.replace must_at s.id (fst head);
      ignore (walk_block head b);
      head
    | _ -> st
  and walk_block st b = List.fold_left walk st b
  in
  List.iter
    (fun (_, body) -> ignore (walk_block (SSet.empty, SSet.empty) body))
    threads;

  (* ---------------- lock-order inversion ---------------- *)
  let mutex_idx = Hashtbl.create 8 in
  let midx = ref 0 in
  List.iter
    (fun (n, k) ->
      match (k : Sema.gkind) with
      | Mutex ->
        Hashtbl.replace mutex_idx n !midx;
        incr midx
      | _ -> ())
    info.Sema.kinds;
  let mutex_of_idx = Array.make (max !midx 1) "" in
  Hashtbl.iter (fun n i -> mutex_of_idx.(i) <- n) mutex_idx;
  let succs = Array.make (max !midx 1) [] in
  List.iter
    (fun (h, m, _) ->
      let i = Hashtbl.find mutex_idx h and j = Hashtbl.find mutex_idx m in
      if not (List.mem j succs.(i)) then succs.(i) <- j :: succs.(i))
    !lock_edges;
  List.iter
    (fun comp ->
      let names = List.sort compare (List.map (fun i -> mutex_of_idx.(i)) comp) in
      let in_comp m = List.mem (Hashtbl.find mutex_idx m) comp in
      let pos =
        List.fold_left
          (fun best (h, m, p) ->
            if in_comp h && in_comp m then
              match best with
              | Some b when pos_le b p -> best
              | _ -> Some p
            else best)
          None !lock_edges
      in
      match pos with
      | Some pos ->
        add ~rule:"lock-inversion" ~severity:Error ~pos
          "mutexes %s are acquired in conflicting orders (potential deadlock cycle)"
          (String.concat ", " (List.map (fun n -> "'" ^ n ^ "'") names))
      | None -> ())
    (Cfg.cyclic_sccs
       ~nodes:(List.init !midx Fun.id)
       ~succ:(fun i -> succs.(i)));

  (* ---------------- race candidates ---------------- *)
  let var_sites : (string, (string * bool * Ast.pos * SSet.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (tname, body) ->
      List.iter
        (fun (s : Ast.stmt) ->
          let fp = Stmt_op.footprint info ~thread:tname s in
          let must = Option.value ~default:SSet.empty (Hashtbl.find_opt must_at s.id) in
          let site write n =
            let cur = Option.value ~default:[] (Hashtbl.find_opt var_sites n) in
            Hashtbl.replace var_sites n ((tname, write, s.pos, must) :: cur)
          in
          List.iter (site false) fp.Stmt_op.fp_reads;
          List.iter (site true) fp.Stmt_op.fp_writes)
        (Visibility.transitions body))
    threads;
  List.iter
    (fun (n, k) ->
      match (k : Sema.gkind) with
      | Scalar | Array _ ->
        let sites = Option.value ~default:[] (Hashtbl.find_opt var_sites n) in
        let threads_touching =
          SSet.elements (SSet.of_list (List.map (fun (t, _, _, _) -> t) sites))
        in
        let writes = List.exists (fun (_, w, _, _) -> w) sites in
        let common =
          match sites with
          | [] -> SSet.empty
          | (_, _, _, m0) :: rest ->
            List.fold_left (fun acc (_, _, _, m) -> SSet.inter acc m) m0 rest
        in
        if List.length threads_touching >= 2 && writes && SSet.is_empty common
        then begin
          let pos =
            List.fold_left
              (fun best (_, _, p, _) ->
                match best with Some b when pos_le b p -> best | _ -> Some p)
              None sites
          in
          match pos with
          | Some pos ->
            add ~rule:"race-candidate" ~severity:Warning ~pos
              "global '%s' is accessed by threads %s with no common protecting lock"
              n
              (String.concat ", "
                 (List.map (fun t -> "'" ^ t ^ "'") threads_touching))
          | None -> ()
        end
      | _ -> ())
    info.Sema.kinds;

  (* ---------------- never-signaled waits ---------------- *)
  let waited = Hashtbl.create 8 (* event/sem -> first blocking-wait pos *) in
  let signaled = Hashtbl.create 8 in
  let note_wait n pos =
    match Hashtbl.find_opt waited n with
    | Some p when pos_le p pos -> ()
    | _ -> Hashtbl.replace waited n pos
  in
  let rec scan_stmt (s : Ast.stmt) =
    (match s.kind with
     | Wait ev -> note_wait ev s.pos
     | Sem_p sm -> note_wait sm s.pos
     | Set_event ev -> Hashtbl.replace signaled ev ()
     | Sem_v sm -> Hashtbl.replace signaled sm ()
     | _ -> ());
    match s.kind with
    | If (_, t, f) ->
      List.iter scan_stmt t;
      List.iter scan_stmt f
    | While (_, b) | Atomic b -> List.iter scan_stmt b
    | _ -> ()
  in
  List.iter (fun (_, body) -> List.iter scan_stmt body) threads;
  List.iter
    (fun (n, k) ->
      match (k : Sema.gkind), Hashtbl.find_opt waited n with
      | Event _, Some pos when not (Hashtbl.mem signaled n) ->
        add ~rule:"never-signaled" ~severity:Error ~pos
          "event '%s' is waited on but never set: waiters block forever" n
      | Sem 0, Some pos when not (Hashtbl.mem signaled n) ->
        add ~rule:"never-signaled" ~severity:Error ~pos
          "semaphore '%s' starts at 0 and is never posted: waiters block forever"
          n
      | _ -> ())
    info.Sema.kinds;

  (* ---------------- silent loops and dead code (bytecode CFG) ------- *)
  let stmt_by_id : (int, Ast.stmt) Hashtbl.t = Hashtbl.create 64 in
  let rec index_stmt (s : Ast.stmt) =
    Hashtbl.replace stmt_by_id s.id s;
    match s.kind with
    | If (_, t, f) ->
      List.iter index_stmt t;
      List.iter index_stmt f
    | While (_, b) | Atomic b -> List.iter index_stmt b
    | _ -> ()
  in
  List.iter (fun (_, b) -> List.iter index_stmt b) threads;
  let compiled = Compile.compile prog in
  Array.iter
    (fun (tc : Compile.thread_code) ->
      let g = Cfg.build tc.t_code in
      let reach = Cfg.reachable g in
      List.iter
        (fun comp ->
          let reachable = List.exists (fun p -> reach.(p)) comp in
          let has_sched =
            List.exists (fun p -> tc.t_code.(p) = Compile.op_sched) comp
          in
          let escapes =
            List.exists
              (fun p -> List.exists (fun q -> not (List.mem q comp)) (Cfg.succ g p))
              comp
          in
          if reachable && (not has_sched) && not escapes then begin
            let pos =
              match
                List.find_opt (fun p -> tc.t_code.(p) = Compile.op_fuel) comp
              with
              | Some p -> compiled.Compile.c_pos.(tc.t_code.(p + 1))
              | None -> { Ast.line = 0; col = 0 }
            in
            add ~rule:"silent-loop" ~severity:Error ~pos
              "thread '%s': loop has no scheduling point and never exits (burns silent fuel)"
              tc.t_name
          end)
        (Cfg.cycles g);
      (* Statement boundaries (SCHED/FUEL/AFUEL) the CFG cannot reach. *)
      let dead = ref [] in
      let pc = ref 0 in
      let n = Array.length tc.t_code in
      while !pc < n do
        let op = tc.t_code.(!pc) in
        if (not reach.(!pc))
           && (op = Compile.op_sched || op = Compile.op_fuel || op = Compile.op_afuel)
        then begin
          let pos =
            if op = Compile.op_sched then
              let sid = compiled.Compile.c_op_stmt.(tc.t_code.(!pc + 1)) in
              (Hashtbl.find stmt_by_id sid).Ast.pos
            else compiled.Compile.c_pos.(tc.t_code.(!pc + 1))
          in
          dead := pos :: !dead
        end;
        pc := !pc + Compile.width op
      done;
      match List.sort compare (List.map (fun (p : Ast.pos) -> (p.line, p.col)) !dead) with
      | [] -> ()
      | (line, col) :: _ ->
        add ~rule:"dead-code" ~severity:Warning ~pos:{ Ast.line; col }
          "thread '%s': %d unreachable statement(s)" tc.t_name
          (List.length !dead))
    compiled.Compile.c_threads;

  (* ---------------- unused declarations ---------------- *)
  let accessors = Visibility.access_map info threads in
  let decl_pos = function
    | Ast.Dvar (p, n, _) | Darray (p, n, _, _) | Dmutex (p, n) | Dsem (p, n, _)
    | Devent (p, n, _) -> Some (p, n)
    | Dthread _ -> None
  in
  List.iter
    (fun d ->
      match decl_pos d with
      | Some (pos, n)
        when (match Hashtbl.find_opt accessors n with
              | None -> true
              | Some s -> SSet.is_empty s) ->
        let kind_name =
          match List.assoc n info.Sema.kinds with
          | Sema.Scalar -> "variable"
          | Array _ -> "array"
          | Mutex -> "mutex"
          | Sem _ -> "semaphore"
          | Event _ -> "event"
        in
        add ~rule:"unused-global" ~severity:Note ~pos "%s '%s' is never used"
          kind_name n
      | _ -> ())
    prog.Ast.decls;
  List.iter
    (fun (tname, body) ->
      let locals =
        Option.value ~default:[] (List.assoc_opt tname info.Sema.thread_locals)
      in
      let reads = ref SSet.empty in
      let rec scan (s : Ast.stmt) =
        List.iter
          (fun e -> List.iter (fun n -> reads := SSet.add n !reads) (expr_reads [] e))
          (stmt_exprs s);
        match s.kind with
        | If (_, t, f) ->
          List.iter scan t;
          List.iter scan f
        | While (_, b) | Atomic b -> List.iter scan b
        | _ -> ()
      in
      List.iter scan body;
      List.iter
        (fun n ->
          if not (SSet.mem n !reads) then begin
            (* Anchor at the local's first declaration. *)
            let rec find_decl stmts =
              List.find_map
                (fun (s : Ast.stmt) ->
                  match s.kind with
                  | Local (m, _) when m = n -> Some s.pos
                  | If (_, t, f) ->
                    (match find_decl t with Some p -> Some p | None -> find_decl f)
                  | While (_, b) | Atomic b -> find_decl b
                  | _ -> None)
                stmts
            in
            match find_decl body with
            | Some pos ->
              add ~rule:"unused-local" ~severity:Note ~pos
                "local '%s' of thread '%s' is never read" n tname
            | None -> ()
          end)
        (List.sort compare locals))
    threads;

  List.sort compare_finding !out

(* ------------------------------------------------------------------ *)

let by_rule findings =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.rule)))
    findings;
  List.sort compare (Hashtbl.fold (fun r n acc -> (r, n) :: acc) tbl [])

let count_severity sev findings =
  List.length (List.filter (fun f -> f.severity = sev) findings)

let finding_to_json f =
  Json.Obj
    [ ("rule", Json.Str f.rule);
      ("severity", Json.Str (severity_name f.severity));
      ("file", Json.Str f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("message", Json.Str f.message) ]

let to_json ~program findings =
  Json.Obj
    [ ("schema", Json.Str "fairmc-lint/1");
      ("program", Json.Str program);
      ("count", Json.Int (List.length findings));
      ("errors", Json.Int (count_severity Error findings));
      ("warnings", Json.Int (count_severity Warning findings));
      ("notes", Json.Int (count_severity Note findings));
      ( "by_rule",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (by_rule findings)) );
      ("findings", Json.Arr (List.map finding_to_json findings)) ]

let summary_json findings =
  Json.Obj
    [ ("count", Json.Int (List.length findings));
      ( "by_rule",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (by_rule findings)) ) ]
