(** Per-thread control-flow graph over compiled ChessLang bytecode.

    Nodes are instruction start pcs of one thread's code array; edges
    follow {!Compile}'s fixed instruction widths, with conditional
    branches on compile-time constants ([PUSH c; JZ]/[JNZ]) folded to
    their decided successor. Feeds the dead-code and silent-loop lint
    rules and the visibility pass's merging veto. *)

type t

val build : int array -> t

val succ : t -> int -> int list
(** Successor pcs of the instruction starting at [pc]. *)

val reachable : t -> bool array
(** [reachable g].(pc) — is the instruction at [pc] reachable from the
    thread entry (pc 0)? Indexed by code position; false on non-start
    cells. *)

val cycles : t -> int list list
(** The strongly-connected components that contain a cycle (more than
    one instruction, or a self-loop), as ascending pc lists. *)

val cyclic_sccs : nodes:int list -> succ:(int -> int list) -> int list list
(** Generic Tarjan over an arbitrary int-node graph (used for the
    static lock-order graph); same cycle-only filtering as {!cycles}. *)
