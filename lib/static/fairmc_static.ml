(** Static analysis for ChessLang: lint diagnostics and visibility-based
    transition merging (static POR).

    {!Lint} finds defects before a single schedule runs; {!Visibility}
    proves globals thread-local so the compiler can stop emitting SCHED
    suspensions for them and feeds the {!Fairmc_core.Static_facts}
    conflict table consulted by sleep-set POR; {!Cfg} is the shared
    bytecode control-flow graph. *)

module Cfg = Cfg
module Visibility = Visibility
module Lint = Lint

module D = Fairmc_dsl

let analyze = Visibility.analyze

(** Compile with transition merging: run the visibility analysis, feed
    its invisible set to the chosen backend, and attach the conflict
    facts to the resulting program. Drop-in for {!Fairmc_dsl.compile}
    (which is the merging-off path). *)
let compile ?backend ast =
  let r = Visibility.analyze ast in
  let invisible n = List.mem n r.Visibility.invisible in
  Fairmc_core.Program.with_facts
    (D.compile ?backend ~invisible ast)
    r.Visibility.facts

let load_string ?name ?backend src = compile ?backend (D.Parser.parse_string ?name src)
let load_file ?backend path = compile ?backend (D.Parser.parse_file path)

let lint_string ?name src = Lint.run ?file:name (D.Parser.parse_string ?name src)
let lint_file path = Lint.run ~file:path (D.Parser.parse_file path)
