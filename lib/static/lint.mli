(** `chess lint`: static diagnostics over a ChessLang program.

    Nine rules across three severities; see the implementation header
    for the table. Findings are deterministic: sorted by
    (file, line, col, rule, message). *)

type severity = Error | Warning | Note

val severity_name : severity -> string

type finding = {
  rule : string;
  severity : severity;
  file : string;  (** the program's name (its source path) *)
  line : int;
  col : int;
  message : string;
}

val compare_finding : finding -> finding -> int
(** The (file, line, col, rule, message) order {!run} sorts by. *)

val run : ?file:string -> Fairmc_dsl.Ast.program -> finding list
(** All findings, sorted. [file] overrides the name findings carry
    (default: the program's declared name); the CLI passes the source
    path. @raise Fairmc_dsl.Sema.Error on static errors (lint runs
    after the sema gate, like every other consumer). *)

val to_string : finding -> string
(** ["file:line:col: severity: message \[rule\]"]. *)

val to_json : program:string -> finding list -> Fairmc_util.Json.t
(** The [fairmc-lint/1] document: schema, program, count, per-severity
    counts, by-rule counts, findings. *)

val summary_json : finding list -> Fairmc_util.Json.t
(** The compact [lint] block embedded in fairmc-report: count +
    by-rule. *)
