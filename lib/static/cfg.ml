(* Per-thread control-flow graph over compiled bytecode.

   Nodes are instruction start pcs of one thread's [t_code] array;
   edges follow [Compile]'s fixed instruction widths. Conditional
   branches whose operand is a literal ([PUSH c] immediately before a
   [JZ]/[JNZ]) are folded to their decided successor, so [while (1)]
   has no exit edge and [if (0)] has no then-edge — this is what lets
   the lint pass see dead code behind constant guards and lets the
   visibility pass see that a silent loop never exits. *)

module C = Fairmc_dsl.Compile

type t = {
  code : int array;
  starts : int array;  (* instruction start pcs, ascending *)
  succs : int list array;  (* indexed by pc; [] for non-start cells *)
}

let build (code : int array) : t =
  let n = Array.length code in
  (* Jump targets: a conditional branch that is itself a target may be
     reached with a value produced on another path, so the PUSH that
     linearly precedes it does not decide it. *)
  let is_target = Array.make (max n 1) false in
  let pc = ref 0 in
  while !pc < n do
    let op = code.(!pc) in
    if op = C.op_jmp || op = C.op_jz || op = C.op_jnz then
      is_target.(code.(!pc + 1)) <- true;
    pc := !pc + C.width op
  done;
  let starts = ref [] in
  let succs = Array.make (max n 1) [] in
  let prev = ref (-1) in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    let op = code.(p) in
    let next = p + C.width op in
    starts := p :: !starts;
    let folded_const =
      (* The value a JZ/JNZ at [p] tests, when decided at compile time:
         the linearly preceding instruction pushes a literal and no jump
         can land on [p] with a different value. *)
      if !prev >= 0 && code.(!prev) = C.op_push && not (is_target.(p)) then
        Some code.(!prev + 1)
      else None
    in
    succs.(p) <-
      (if op = C.op_halt then []
       else if op = C.op_jmp then [ code.(p + 1) ]
       else if op = C.op_jz then
         (match folded_const with
          | Some c -> if c = 0 then [ code.(p + 1) ] else [ next ]
          | None -> [ next; code.(p + 1) ])
       else if op = C.op_jnz then
         (match folded_const with
          | Some c -> if c <> 0 then [ code.(p + 1) ] else [ next ]
          | None -> [ next; code.(p + 1) ])
       else [ next ]);
    prev := p;
    pc := next
  done;
  { code; starts = Array.of_list (List.rev !starts); succs }

let succ t pc = t.succs.(pc)

let reachable t : bool array =
  let seen = Array.make (max (Array.length t.code) 1) false in
  let rec go pc =
    if not seen.(pc) then begin
      seen.(pc) <- true;
      List.iter go t.succs.(pc)
    end
  in
  if Array.length t.code > 0 then go 0;
  seen

(* ------------------------------------------------------------------ *)
(* Tarjan's strongly-connected components, generic over int nodes.
   Returned components are those that contain a cycle: more than one
   node, or a single node with a self-edge. *)

let cyclic_sccs ~(nodes : int list) ~(succ : int -> int list) : int list list =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      let is_cycle =
        match comp with
        | [ w ] -> List.mem w (succ w)
        | _ :: _ :: _ -> true
        | [] -> false
      in
      if is_cycle then out := List.sort compare comp :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  List.rev !out

let cycles t =
  cyclic_sccs ~nodes:(Array.to_list t.starts) ~succ:(fun pc -> t.succs.(pc))
