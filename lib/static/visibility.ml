(* Visibility analysis: which globals can stop being scheduling points.

   A global accessed by exactly one thread is thread-local in effect:
   its reads and writes commute with every transition of every other
   thread, so the SCHED suspension guarding them proves nothing — the
   compiler can merge such transitions into their neighbors (emit FUEL
   instead of SCHED), which shrinks the search tree exponentially on
   local-state-heavy workloads without changing the set of reachable
   states or verdicts.

   One caveat keeps this an *analysis* rather than a filter: merging
   must not create a cycle of silent transitions that was not silent
   before. A loop whose every transition becomes silent burns the
   engine's silent fuel — under the fair scheduler the unmerged program
   livelocks (or terminates), the merged one would instead die with a
   fuel-exhaustion runtime error, changing the verdict. So after
   choosing a candidate set we compile, build each thread's bytecode
   CFG, and veto candidates until no cycle both (a) contains a merged
   site and (b) contains no remaining SCHED instruction. Cycles that
   were already fully silent in the unmerged program are untouched —
   they behave identically with the analysis on or off. *)

module SSet = Set.Make (String)
module Static_facts = Fairmc_core.Static_facts
module Op = Fairmc_core.Op
module Ast = Fairmc_dsl.Ast
module Sema = Fairmc_dsl.Sema
module Stmt_op = Fairmc_dsl.Stmt_op
module Compile = Fairmc_dsl.Compile

type result = {
  invisible : string list;  (* merged globals, sorted *)
  vetoed : string list;  (* candidates kept visible by the silent-loop veto *)
  merged_sites : int;  (* SCHED sites removed by merging *)
  facts : Static_facts.t;
}

exception Anomaly
(* Internal: the veto could not make progress (no candidate to remove
   from a vetoed cycle). Cannot happen by construction — a merged site
   is silent only because some candidate made it so — but if it does,
   we fall back to no merging rather than risk soundness. *)

(* Every statement that is its own transition: If/While branch bodies
   recursed into (their statements run later, separately), Atomic
   blocks not (the whole block is one transition and
   [Stmt_op.footprint] already covers it). *)
let rec trans_stmts acc (s : Ast.stmt) =
  let acc = s :: acc in
  match s.kind with
  | If (_, t, f) -> List.fold_left trans_stmts (List.fold_left trans_stmts acc t) f
  | While (_, b) -> List.fold_left trans_stmts acc b
  | _ -> acc

let transitions body = List.rev (List.fold_left trans_stmts [] body)

(* name -> set of thread names whose transitions may touch it. *)
let access_map (info : Sema.info) threads =
  let accessors : (string, SSet.t) Hashtbl.t = Hashtbl.create 16 in
  let note tname n =
    let cur = Option.value ~default:SSet.empty (Hashtbl.find_opt accessors n) in
    Hashtbl.replace accessors n (SSet.add tname cur)
  in
  List.iter
    (fun (tname, body) ->
      List.iter
        (fun s ->
          let fp = Stmt_op.footprint info ~thread:tname s in
          List.iter (note tname)
            (fp.Stmt_op.fp_reads @ fp.Stmt_op.fp_writes @ fp.Stmt_op.fp_syncs))
        (transitions body))
    threads;
  accessors

let analyze (prog : Ast.program) : result =
  let info = Sema.check prog in
  let threads = Ast.threads prog in
  let decl_idx = Hashtbl.create 16 in
  List.iteri (fun i (n, _) -> Hashtbl.replace decl_idx n i) info.Sema.kinds;
  let accessors = access_map info threads in
  let candidates =
    (* Scalars and arrays only: sync-object operations block and carry
       state, so they stay scheduling points even when single-threaded. *)
    List.filter_map
      (fun (n, k) ->
        match (k : Sema.gkind) with
        | Scalar | Array _ ->
          let nacc =
            match Hashtbl.find_opt accessors n with
            | Some s -> SSet.cardinal s
            | None -> 0
          in
          if nacc <= 1 then Some n else None
        | Mutex | Sem _ | Event _ -> None)
      info.Sema.kinds
  in
  let stmt_by_id : (int, Ast.stmt) Hashtbl.t = Hashtbl.create 64 in
  let rec index_stmt (s : Ast.stmt) =
    Hashtbl.replace stmt_by_id s.id s;
    match s.kind with
    | If (_, t, f) ->
      List.iter index_stmt t;
      List.iter index_stmt f
    | While (_, b) | Atomic b -> List.iter index_stmt b
    | _ -> ()
  in
  List.iter (fun (_, b) -> List.iter index_stmt b) threads;
  let plain = Compile.compile prog in
  (* Merged sites of one thread: pcs where the plain compile has SCHED
     and the merged compile has FUEL. Both opcodes are width 2, so the
     two code arrays stay aligned instruction for instruction. *)
  let merged_pcs (ptc : Compile.thread_code) (tc : Compile.thread_code) =
    let n = Array.length tc.t_code in
    assert (Array.length ptc.t_code = n);
    let sites = ref [] in
    let pc = ref 0 in
    while !pc < n do
      let op = tc.t_code.(!pc) in
      if op = Compile.op_fuel && ptc.t_code.(!pc) = Compile.op_sched then
        sites := !pc :: !sites;
      pc := !pc + Compile.width op
    done;
    !sites
  in
  let rec fix v vetoed =
    let merged = Compile.compile ~invisible:(fun n -> SSet.mem n v) prog in
    let removals = ref SSet.empty in
    Array.iteri
      (fun ti (tc : Compile.thread_code) ->
        let ptc = plain.Compile.c_threads.(ti) in
        let msites = merged_pcs ptc tc in
        if msites <> [] then
          List.iter
            (fun comp ->
              let silent =
                not (List.exists (fun p -> tc.t_code.(p) = Compile.op_sched) comp)
              in
              let has_merged = List.exists (fun p -> List.mem p msites) comp in
              if silent && has_merged then begin
                let names =
                  List.concat_map
                    (fun p ->
                      if not (List.mem p msites) then []
                      else begin
                        let opidx = ptc.t_code.(p + 1) in
                        let sid = plain.Compile.c_op_stmt.(opidx) in
                        let s = Hashtbl.find stmt_by_id sid in
                        let fp = Stmt_op.footprint info ~thread:tc.t_name s in
                        List.filter
                          (fun n -> SSet.mem n v)
                          (fp.Stmt_op.fp_reads @ fp.Stmt_op.fp_writes)
                      end)
                    comp
                in
                match List.sort_uniq compare names with
                | [] -> raise Anomaly
                | x :: _ -> removals := SSet.add x !removals
              end)
            (Cfg.cycles (Cfg.build tc.t_code)))
      merged.Compile.c_threads;
    if SSet.is_empty !removals then (v, vetoed, merged)
    else fix (SSet.diff v !removals) (SSet.union vetoed !removals)
  in
  let v, vetoed, merged =
    try fix (SSet.of_list candidates) SSet.empty
    with Anomaly -> (SSet.empty, SSet.empty, plain)
  in
  (* Every SCHED site appends one entry to [c_ops], so the table-length
     difference is exactly the number of merged sites. *)
  let merged_sites = Array.length plain.Compile.c_ops - Array.length merged.Compile.c_ops in
  let facts =
    Static_facts.create ~invisible:(SSet.elements v) ~merged_sites
  in
  (* The conflict table: engine object ids are declaration indices
     (both backends register every declaration, in declaration order,
     in one object store), so [decl_idx] is exactly the id the search
     will see in each [Op.t]. *)
  let op_of_action (a : Stmt_op.t) : Op.t =
    let id n = Hashtbl.find decl_idx n in
    match a with
    | A_lock m -> Lock (id m)
    | A_try_lock m -> Try_lock (id m)
    | A_timed_lock m -> Timed_lock (id m)
    | A_unlock m -> Unlock (id m)
    | A_sem_wait s -> Sem_wait (id s)
    | A_sem_timed_wait s -> Sem_timed_wait (id s)
    | A_sem_post s -> Sem_post (id s)
    | A_ev_wait e -> Ev_wait (id e)
    | A_ev_timed_wait e -> Ev_timed_wait (id e)
    | A_ev_set e -> Ev_set (id e)
    | A_ev_reset e -> Ev_reset (id e)
    | A_var_read g -> Var_read (id g)
    | A_var_write g -> Var_write (id g)
    | A_var_rmw g -> Var_rmw (id g)
    | A_choose n -> Choose n
    | A_yield -> Yield
    | A_sleep -> Sleep
  in
  List.iteri
    (fun tid (tname, body) ->
      let locals =
        Option.value ~default:[] (List.assoc_opt tname info.Sema.thread_locals)
      in
      let is_local n = List.mem n locals in
      List.iter
        (fun s ->
          match
            Stmt_op.of_stmt info ~thread:tname ~is_local
              ~invisible:(fun n -> SSet.mem n v)
              s
          with
          | None -> ()
          | Some a ->
            let fp = Stmt_op.footprint info ~thread:tname s in
            (* Invisible globals cannot overlap across threads (single
               accessor), so they are dropped; sync objects count as
               writes (no sync op commutes with another on the same
               object). *)
            let ids l =
              List.filter_map
                (fun n ->
                  if SSet.mem n v then None else Hashtbl.find_opt decl_idx n)
                l
            in
            Static_facts.add facts ~tid ~op:(op_of_action a)
              ~reads:(ids fp.Stmt_op.fp_reads)
              ~writes:(ids (fp.Stmt_op.fp_writes @ fp.Stmt_op.fp_syncs)))
        (transitions body))
    threads;
  { invisible = SSet.elements v;
    vetoed = SSet.elements vetoed;
    merged_sites;
    facts }
