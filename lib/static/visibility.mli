(** Visibility analysis for transition merging (static POR).

    Proves globals thread-local (accessed by at most one thread): their
    reads and writes commute with everything another thread can do, so
    the compiler can stop emitting SCHED suspensions for them —
    {!Compile.compile}'s / {!Machine}'s [invisible] hook. A bytecode-CFG
    veto keeps any loop from becoming entirely silent through merging
    (which would trade a fair-scheduler livelock verdict for a
    silent-fuel runtime error). The same footprints feed the
    {!Fairmc_core.Static_facts} conflict table consulted by sleep-set
    POR. *)

module Ast := Fairmc_dsl.Ast
module Sema := Fairmc_dsl.Sema

type result = {
  invisible : string list;  (** merged globals, sorted *)
  vetoed : string list;  (** candidates kept visible by the silent-loop veto *)
  merged_sites : int;  (** SCHED sites removed by merging *)
  facts : Fairmc_core.Static_facts.t;
}

val analyze : Ast.program -> result
(** @raise Sema.Error on static errors. *)

val transitions : Ast.block -> Ast.stmt list
(** Every statement of the block that is its own transition, in source
    order: If/While branch bodies included (each inner statement runs
    as a later transition), Atomic bodies not (one transition). Shared
    with the lint pass. *)

val access_map : Sema.info -> (string * Ast.block) list -> (string, Set.Make(String).t) Hashtbl.t
(** name -> accessing thread names, over each thread's transitions. *)
