(** Static checks and name resolution for ChessLang.

    Rejects programs before execution: unknown or duplicated names, kind
    confusion (locking a semaphore), assignments to undeclared variables,
    more than one effectful primitive (trylock/timedlock/timedwait/semtry/
    choose) in a single statement (a statement is one atomic transition, so
    it can carry at most one scheduler interaction), and synchronization or
    choice inside [atomic] blocks. *)

type gkind =
  | Scalar
  | Array of int  (** size *)
  | Mutex
  | Sem of int  (** initial count *)
  | Event of bool  (** auto-reset? *)

type info = {
  kinds : (string * gkind) list;  (** declaration order *)
  thread_locals : (string * string list) list;  (** thread name -> locals *)
}

exception Error of string * Ast.pos

val check : Ast.program -> info
(** @raise Error on any static violation. *)

val effectful : Ast.expr -> Ast.expr option
(** The unique effectful primitive of an expression, if any (post-[check]
    there is at most one per statement). *)

val effectful_list : Ast.expr -> Ast.expr list
(** Every effectful primitive of an expression, in evaluation order
    (pre-[check] there may be several; [check] rejects more than one per
    statement). *)

val globals_read : info -> thread:string -> Ast.expr -> string list
(** Global scalars/arrays read by an expression, in evaluation order. *)
