(* Bytecode compiler for ChessLang.

   Lowers a sema-checked AST to a flat [int array] of instructions per
   thread. All name resolution happens here: globals become slot indices
   into one shared [int array], locals become per-thread slot indices,
   synchronization objects become indices into per-kind object tables
   built at boot. The VM ([Vm]) never touches a string or a [Hashtbl].

   Observable equivalence with the AST interpreter ([Machine]) is a hard
   contract: the compiler mirrors [Machine.op_of_stmt] when computing the
   engine operation of each statement (the [SCHED] boundary), preserves
   evaluation order (left-to-right, index before value, value before
   bounds check), silent-fuel accounting, and every runtime-error message
   and position. The differential suite in test/test_dsl.ml checks this
   per schedule. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Instruction set. One cell per opcode, operands inline; widths are
   fixed per opcode (see [width]). Stack effects in comments. *)

let op_halt = 0 (* thread done *)
let op_push = 1 (* c               [] -> [c] *)
let op_load_g = 2 (* slot            [] -> [v] *)
let op_store_g = 3 (* slot            [v] -> [] *)
let op_load_l = 4 (* slot name pos   [] -> [v]; init-checked *)
let op_store_l = 5 (* slot            [v] -> [] *)
let op_load_gi = 6 (* base size name pos   [i] -> [v]; bounds-checked *)
let op_store_gi = 7 (* base size name pos   [i v] -> []; bounds-checked *)
let op_add = 8
let op_sub = 9
let op_mul = 10
let op_div = 11
let op_mod = 12
let op_eq = 13
let op_ne = 14
let op_lt = 15
let op_le = 16
let op_gt = 17
let op_ge = 18
let op_not = 19
let op_neg = 20
let op_jmp = 21 (* target *)
let op_jz = 22 (* target          [v] -> [] *)
let op_jnz = 23 (* target          [v] -> [] *)
let op_sched = 24 (* opidx: perform the transition's engine operation *)
let op_prim = 25 (*                 [] -> [r] (last scheduler result) *)
let op_fuel = 26 (* pos: silent-statement boundary, burns thread fuel *)
let op_afuel = 27 (* pos: atomic-body statement boundary *)
let op_atomic_enter = 28 (* reset the atomic-block fuel *)
let op_assert = 29 (* msg pos         [v] -> []; fails when v = 0 *)

let width = function
  | 0 | 8 | 9 | 10 | 11 | 12 | 13 | 14 | 15 | 16 | 17 | 18 | 19 | 20 | 25 | 28 -> 1
  | 1 | 2 | 3 | 5 | 21 | 22 | 23 | 24 | 26 | 27 -> 2
  | 29 -> 3
  | 4 -> 4
  | 6 | 7 -> 5
  | _ -> invalid_arg "Compile.width"

(* ------------------------------------------------------------------ *)
(* Compiled form. *)

(* The engine operation of a visible statement, with objects as compile-
   time indices; materialized into [Op.t] once the objects exist (boot). *)
type op_template =
  | T_lock of int
  | T_try_lock of int
  | T_timed_lock of int
  | T_unlock of int
  | T_sem_wait of int
  | T_sem_timed_wait of int
  | T_sem_post of int
  | T_ev_wait of int
  | T_ev_timed_wait of int
  | T_ev_set of int
  | T_ev_reset of int
  | T_var_read of int
  | T_var_write of int
  | T_var_rmw of int
  | T_choose of int
  | T_yield
  | T_sleep

(* Boot-time object registration plan, in declaration order: identical to
   [Machine.build_objects], so both backends assign identical [Op.obj]
   identities and produce identical transition streams. *)
type reg =
  | Reg_var of string (* scalar or array: one scheduling identity *)
  | Reg_mutex of string
  | Reg_sem of string * int
  | Reg_event of string * bool

type thread_code = {
  t_name : string;
  t_code : int array;
  t_nlocals : int;
  t_local_names : string array; (* local slot -> name, sorted *)
  t_stack : int; (* operand stack bound (conservative) *)
}

type t = {
  c_name : string;
  c_regs : reg array;
  c_nslots : int;
  c_init : int array; (* initial global-slot values; length = max c_nslots 1 *)
  c_globals : (string * int * int) array; (* name, base slot, size (0 = scalar) *)
  c_ops : op_template array; (* SCHED operand -> operation *)
  c_op_stmt : int array; (* SCHED operand -> AST statement id *)
  c_op_thread : int array; (* SCHED operand -> thread index *)
  c_pos : pos array; (* position table for runtime errors *)
  c_names : string array; (* name table for runtime errors *)
  c_msgs : string array; (* assert messages *)
  c_threads : thread_code array;
}

(* ------------------------------------------------------------------ *)

(* Growable instruction buffer. *)
module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let emit b v =
    if b.len = Array.length b.a then begin
      let a = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a 0 b.len;
      b.a <- a
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  let here b = b.len
  let patch b i v = b.a.(i) <- v
  let contents b = Array.sub b.a 0 b.len
end

(* Growable interning table (append-only; [dedup] keys on the value). *)
module Tbl = struct
  type 'a t = { mutable items : 'a list; mutable n : int; index : ('a, int) Hashtbl.t }

  let create () = { items = []; n = 0; index = Hashtbl.create 16 }

  let add t v =
    t.items <- v :: t.items;
    t.n <- t.n + 1;
    t.n - 1

  let dedup t v =
    match Hashtbl.find_opt t.index v with
    | Some i -> i
    | None ->
      let i = add t v in
      Hashtbl.replace t.index v i;
      i

  let contents t = Array.of_list (List.rev t.items)
end

(* [invisible] names globals proven thread-local by the static-analysis
   layer: statements whose derivation involves only them compile to FUEL
   instead of SCHED (transition merging, [--static-por]). The default
   compiles every shared access as a scheduling point. *)
let compile ?(invisible = Stmt_op.no_invisible) (prog : program) : t =
  let info = Sema.check prog in
  (* Global layout: value slots for scalars/arrays, per-kind indices for
     scheduling objects — all in declaration order, like the AST machine. *)
  let slot_of = Hashtbl.create 16 in
  let size_of = Hashtbl.create 16 in
  let var_idx = Hashtbl.create 16 in
  let mutex_idx = Hashtbl.create 8 in
  let sem_idx = Hashtbl.create 8 in
  let event_idx = Hashtbl.create 8 in
  let nslots = ref 0 in
  let nvars = ref 0 and nmut = ref 0 and nsem = ref 0 and nev = ref 0 in
  let regs = ref [] in
  List.iter
    (fun (name, k) ->
      match (k : Sema.gkind) with
      | Scalar ->
        Hashtbl.replace slot_of name !nslots;
        incr nslots;
        Hashtbl.replace var_idx name !nvars;
        incr nvars;
        regs := Reg_var name :: !regs
      | Array n ->
        Hashtbl.replace slot_of name !nslots;
        Hashtbl.replace size_of name n;
        nslots := !nslots + n;
        Hashtbl.replace var_idx name !nvars;
        incr nvars;
        regs := Reg_var name :: !regs
      | Mutex ->
        Hashtbl.replace mutex_idx name !nmut;
        incr nmut;
        regs := Reg_mutex name :: !regs
      | Sem init ->
        Hashtbl.replace sem_idx name !nsem;
        incr nsem;
        regs := Reg_sem (name, init) :: !regs
      | Event auto ->
        Hashtbl.replace event_idx name !nev;
        incr nev;
        regs := Reg_event (name, auto) :: !regs)
    info.kinds;
  let init = Array.make (max !nslots 1) 0 in
  List.iter
    (fun d ->
      match d with
      | Dvar (_, n, v) -> init.(Hashtbl.find slot_of n) <- v
      | Darray (_, n, size, v) ->
        let base = Hashtbl.find slot_of n in
        for i = 0 to size - 1 do
          init.(base + i) <- v
        done
      | Dmutex _ | Dsem _ | Devent _ | Dthread _ -> ())
    prog.decls;
  let globals =
    List.filter_map
      (fun (name, k) ->
        match (k : Sema.gkind) with
        | Scalar -> Some (name, Hashtbl.find slot_of name, 0)
        | Array n -> Some (name, Hashtbl.find slot_of name, n)
        | Mutex | Sem _ | Event _ -> None)
      info.kinds
  in

  (* Shared side tables. *)
  let ops : op_template Tbl.t = Tbl.create () in
  let op_stmts : int Tbl.t = Tbl.create () in (* kept in lockstep with [ops] *)
  let op_threads : int Tbl.t = Tbl.create () in
  let poss : pos Tbl.t = Tbl.create () in
  let names : string Tbl.t = Tbl.create () in
  let msgs : string Tbl.t = Tbl.create () in
  let pos_id p = Tbl.dedup poss p in
  let name_id n = Tbl.dedup names n in

  let compile_thread tidx (tname, body) =
    let local_slot = Hashtbl.create 8 in
    let local_names =
      List.sort compare
        (match List.assoc_opt tname info.Sema.thread_locals with
         | Some l -> l
         | None -> [])
    in
    List.iteri (fun i n -> Hashtbl.replace local_slot n i) local_names;
    let is_local n = Hashtbl.mem local_slot n in

    (* The statement's engine operation: the shared {!Stmt_op} rule (also
       used by [Machine.op_of_stmt]), mapped to per-kind indices. *)
    let template_of : Stmt_op.t -> op_template = function
      | A_lock m -> T_lock (Hashtbl.find mutex_idx m)
      | A_try_lock m -> T_try_lock (Hashtbl.find mutex_idx m)
      | A_timed_lock m -> T_timed_lock (Hashtbl.find mutex_idx m)
      | A_unlock m -> T_unlock (Hashtbl.find mutex_idx m)
      | A_sem_wait s -> T_sem_wait (Hashtbl.find sem_idx s)
      | A_sem_timed_wait s -> T_sem_timed_wait (Hashtbl.find sem_idx s)
      | A_sem_post s -> T_sem_post (Hashtbl.find sem_idx s)
      | A_ev_wait e -> T_ev_wait (Hashtbl.find event_idx e)
      | A_ev_timed_wait e -> T_ev_timed_wait (Hashtbl.find event_idx e)
      | A_ev_set e -> T_ev_set (Hashtbl.find event_idx e)
      | A_ev_reset e -> T_ev_reset (Hashtbl.find event_idx e)
      | A_var_read v -> T_var_read (Hashtbl.find var_idx v)
      | A_var_write v -> T_var_write (Hashtbl.find var_idx v)
      | A_var_rmw v -> T_var_rmw (Hashtbl.find var_idx v)
      | A_choose n -> T_choose n
      | A_yield -> T_yield
      | A_sleep -> T_sleep
    in
    let stmt_template (s : stmt) : op_template option =
      Option.map template_of
        (Stmt_op.of_stmt info ~thread:tname ~is_local ~invisible s)
    in

    let buf = Buf.create () in
    (* Conservative (linear, no reset at join points) operand-stack bound. *)
    let depth = ref 0 and max_depth = ref 1 in
    let adj n =
      depth := !depth + n;
      if !depth > !max_depth then max_depth := !depth
    in
    let emit1 c =
      Buf.emit buf c
    in
    let emit c args =
      Buf.emit buf c;
      List.iter (Buf.emit buf) args
    in
    (* Emit a jump with a placeholder target; returns the patch site. *)
    let emit_jump c =
      Buf.emit buf c;
      let site = Buf.here buf in
      Buf.emit buf (-1);
      site
    in
    let land_here site = Buf.patch buf site (Buf.here buf) in

    let rec emit_expr e =
      match e with
      | Int n ->
        emit op_push [ n ];
        adj 1
      | Name (p, n) ->
        if is_local n then begin
          emit op_load_l [ Hashtbl.find local_slot n; name_id n; pos_id p ];
          adj 1
        end
        else begin
          emit op_load_g [ Hashtbl.find slot_of n ];
          adj 1
        end
      | Index (p, a, i) ->
        emit_expr i;
        emit op_load_gi
          [ Hashtbl.find slot_of a; Hashtbl.find size_of a; name_id a; pos_id p ]
      | Binop (And, a, b) ->
        (* a && b: short-circuit; the false arm yields 0, matching the AST
           interpreter (which returns b's raw value when a is truthy). *)
        emit_expr a;
        let jf = emit_jump op_jz in
        adj (-1);
        emit_expr b;
        let jend = emit_jump op_jmp in
        land_here jf;
        emit op_push [ 0 ];
        adj 1;
        land_here jend
      | Binop (Or, a, b) ->
        emit_expr a;
        let jt = emit_jump op_jnz in
        adj (-1);
        emit_expr b;
        let jend = emit_jump op_jmp in
        land_here jt;
        emit op_push [ 1 ];
        adj 1;
        land_here jend
      | Binop (op, a, b) ->
        emit_expr a;
        emit_expr b;
        adj (-1);
        emit1
          (match op with
           | Add -> op_add
           | Sub -> op_sub
           | Mul -> op_mul
           | Div -> op_div
           | Mod -> op_mod
           | Eq -> op_eq
           | Ne -> op_ne
           | Lt -> op_lt
           | Le -> op_le
           | Gt -> op_gt
           | Ge -> op_ge
           | And | Or -> assert false)
      | Unop (Not, a) ->
        emit_expr a;
        emit1 op_not
      | Unop (Neg, a) ->
        emit_expr a;
        emit1 op_neg
      | Try_lock _ | Timed_lock _ | Timed_wait _ | Sem_try _ | Choose _ ->
        emit1 op_prim;
        adj 1
    in

    (* [atomic] carries the enclosing atomic statement's position (fuel
       errors report the block, not the inner statement). *)
    let rec emit_stmt ~atomic (s : stmt) =
      let boundary () =
        match atomic with
        | Some apos -> emit op_afuel [ pos_id apos ]
        | None ->
          (match stmt_template s with
           | Some t ->
             let idx = Tbl.add ops t in
             let idx' = Tbl.add op_stmts s.id in
             let idx'' = Tbl.add op_threads tidx in
             assert (idx = idx' && idx = idx'');
             emit op_sched [ idx ]
           | None -> emit op_fuel [ pos_id s.pos ])
      in
      match s.kind with
      | Local (n, e) ->
        boundary ();
        emit_expr e;
        emit op_store_l [ Hashtbl.find local_slot n ];
        adj (-1)
      | Assign (Lname (_, n), e) ->
        boundary ();
        emit_expr e;
        if is_local n then emit op_store_l [ Hashtbl.find local_slot n ]
        else emit op_store_g [ Hashtbl.find slot_of n ];
        adj (-1)
      | Assign (Lindex (p, a, i), e) ->
        boundary ();
        emit_expr i;
        emit_expr e;
        emit op_store_gi
          [ Hashtbl.find slot_of a; Hashtbl.find size_of a; name_id a; pos_id p ];
        adj (-2)
      | If (c, then_, else_) ->
        boundary ();
        emit_expr c;
        let jelse = emit_jump op_jz in
        adj (-1);
        List.iter (emit_stmt ~atomic) then_;
        let jend = emit_jump op_jmp in
        land_here jelse;
        List.iter (emit_stmt ~atomic) else_;
        land_here jend
      | While (c, body) ->
        (* The loop re-test is an ordinary boundary: a fresh transition
           (or fuel tick) per iteration, like the AST machine keeping the
           While statement at the head of its frame. *)
        let top = Buf.here buf in
        boundary ();
        emit_expr c;
        let jend = emit_jump op_jz in
        adj (-1);
        List.iter (emit_stmt ~atomic) body;
        emit op_jmp [ top ];
        land_here jend
      | Lock _ | Unlock _ | Wait _ | Set_event _ | Reset_event _ | Sem_p _ | Sem_v _
      | Yield | Sleep | Skip ->
        (* State change applied by the engine operation itself. *)
        boundary ()
      | Assert (e, msg) ->
        boundary ();
        emit_expr e;
        emit op_assert [ Tbl.add msgs msg; pos_id s.pos ];
        adj (-1)
      | Atomic body ->
        boundary ();
        emit1 op_atomic_enter;
        List.iter (emit_stmt ~atomic:(Some s.pos)) body
    in
    List.iter (emit_stmt ~atomic:None) body;
    emit1 op_halt;
    { t_name = tname;
      t_code = Buf.contents buf;
      t_nlocals = List.length local_names;
      t_local_names = Array.of_list local_names;
      t_stack = !max_depth }
  in

  let threads = List.mapi compile_thread (Ast.threads prog) in
  { c_name = prog.prog_name;
    c_regs = Array.of_list (List.rev !regs);
    c_nslots = !nslots;
    c_init = init;
    c_globals = Array.of_list globals;
    c_ops = Tbl.contents ops;
    c_op_stmt = Tbl.contents op_stmts;
    c_op_thread = Tbl.contents op_threads;
    c_pos = Tbl.contents poss;
    c_names = Tbl.contents names;
    c_msgs = Tbl.contents msgs;
    c_threads = Array.of_list threads }
