(* Bytecode VM for ChessLang: the default execution backend.

   Stateless model checking's hot path is re-execution — every backtracked
   schedule replays the program from scratch — so per-step interpreter
   cost multiplies through the whole search. This VM executes the flat
   bytecode produced by [Compile]: a threaded [while]/[match] dispatch
   over an [int array], an [int array] operand stack, and flat per-thread
   frames (a single pc + an [int array] of local slots). No strings, no
   hash tables, no allocation on the per-instruction path.

   The observable contract with the AST interpreter ([Machine]) — same
   [Op.t] stream per schedule, same fuel accounting, same runtime-error
   messages and verdicts — is enforced by the differential suite in
   test/test_dsl.ml. *)

open Fairmc_core
module Fnv = Fairmc_util.Fnv
module C = Compile

(* Parked threads sit on a SCHED or HALT instruction with an empty operand
   stack, so [cur_pc] + [locals] are the whole per-thread snapshot. *)
type tstate = {
  locals : int array;
  inited : bool array;
  mutable cur_pc : int;
}

exception Vm_error of string * Ast.pos

let rt_err pos fmt = Format.kasprintf (fun m -> raise (Vm_error (m, pos))) fmt

let run_thread (c : C.t) (ops : Op.t array) (slots : int array) (tc : C.thread_code)
    (ts : tstate) () =
  let code = tc.C.t_code in
  let stack = Array.make (max tc.C.t_stack 1) 0 in
  let locals = ts.locals and inited = ts.inited in
  let pos_tbl = c.C.c_pos and name_tbl = c.C.c_names and msg_tbl = c.C.c_msgs in
  (* Instruction operands and stack offsets are compiler-validated, so the
     dispatch loop uses unchecked accesses. *)
  let arg i = Array.unsafe_get code i in
  let pc = ref 0 in
  let sp = ref 0 in
  let fuel = ref Machine.silent_fuel in
  let afuel = ref 0 in
  let prim = ref 0 in
  let running = ref true in
  try
    while !running do
      let p = !pc in
      match arg p with
      | 0 (* HALT *) ->
        ts.cur_pc <- p;
        running := false
      | 1 (* PUSH c *) ->
        Array.unsafe_set stack !sp (arg (p + 1));
        incr sp;
        pc := p + 2
      | 2 (* LOAD_G slot *) ->
        Array.unsafe_set stack !sp (Array.unsafe_get slots (arg (p + 1)));
        incr sp;
        pc := p + 2
      | 3 (* STORE_G slot *) ->
        decr sp;
        Array.unsafe_set slots (arg (p + 1)) (Array.unsafe_get stack !sp);
        pc := p + 2
      | 4 (* LOAD_L slot name pos *) ->
        let slot = arg (p + 1) in
        if not (Array.unsafe_get inited slot) then
          rt_err pos_tbl.(arg (p + 3)) "local %s read before initialization"
            name_tbl.(arg (p + 2));
        Array.unsafe_set stack !sp (Array.unsafe_get locals slot);
        incr sp;
        pc := p + 4
      | 5 (* STORE_L slot *) ->
        decr sp;
        let slot = arg (p + 1) in
        Array.unsafe_set locals slot (Array.unsafe_get stack !sp);
        Array.unsafe_set inited slot true;
        pc := p + 2
      | 6 (* LOAD_GI base size name pos *) ->
        let iv = Array.unsafe_get stack (!sp - 1) in
        let size = arg (p + 2) in
        if iv < 0 || iv >= size then
          rt_err pos_tbl.(arg (p + 4)) "index %d out of bounds for %s[%d]" iv
            name_tbl.(arg (p + 3)) size;
        Array.unsafe_set stack (!sp - 1) (Array.unsafe_get slots (arg (p + 1) + iv));
        pc := p + 5
      | 7 (* STORE_GI base size name pos *) ->
        let v = Array.unsafe_get stack (!sp - 1) in
        let iv = Array.unsafe_get stack (!sp - 2) in
        let size = arg (p + 2) in
        if iv < 0 || iv >= size then
          rt_err pos_tbl.(arg (p + 4)) "index %d out of bounds for %s[%d]" iv
            name_tbl.(arg (p + 3)) size;
        Array.unsafe_set slots (arg (p + 1) + iv) v;
        sp := !sp - 2;
        pc := p + 5
      | 8 (* ADD *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Array.unsafe_get stack s + Array.unsafe_get stack (s + 1));
        sp := s + 1;
        pc := p + 1
      | 9 (* SUB *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Array.unsafe_get stack s - Array.unsafe_get stack (s + 1));
        sp := s + 1;
        pc := p + 1
      | 10 (* MUL *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Array.unsafe_get stack s * Array.unsafe_get stack (s + 1));
        sp := s + 1;
        pc := p + 1
      | 11 (* DIV *) ->
        let s = !sp - 2 in
        let vb = Array.unsafe_get stack (s + 1) in
        if vb = 0 then rt_err { Ast.line = 0; col = 0 } "division by zero";
        Array.unsafe_set stack s (Array.unsafe_get stack s / vb);
        sp := s + 1;
        pc := p + 1
      | 12 (* MOD *) ->
        let s = !sp - 2 in
        let vb = Array.unsafe_get stack (s + 1) in
        if vb = 0 then rt_err { Ast.line = 0; col = 0 } "modulo by zero";
        Array.unsafe_set stack s (Array.unsafe_get stack s mod vb);
        sp := s + 1;
        pc := p + 1
      | 13 (* EQ *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Bool.to_int (Array.unsafe_get stack s = Array.unsafe_get stack (s + 1)));
        sp := s + 1;
        pc := p + 1
      | 14 (* NE *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Bool.to_int (Array.unsafe_get stack s <> Array.unsafe_get stack (s + 1)));
        sp := s + 1;
        pc := p + 1
      | 15 (* LT *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Bool.to_int (Array.unsafe_get stack s < Array.unsafe_get stack (s + 1)));
        sp := s + 1;
        pc := p + 1
      | 16 (* LE *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Bool.to_int (Array.unsafe_get stack s <= Array.unsafe_get stack (s + 1)));
        sp := s + 1;
        pc := p + 1
      | 17 (* GT *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Bool.to_int (Array.unsafe_get stack s > Array.unsafe_get stack (s + 1)));
        sp := s + 1;
        pc := p + 1
      | 18 (* GE *) ->
        let s = !sp - 2 in
        Array.unsafe_set stack s
          (Bool.to_int (Array.unsafe_get stack s >= Array.unsafe_get stack (s + 1)));
        sp := s + 1;
        pc := p + 1
      | 19 (* NOT *) ->
        let s = !sp - 1 in
        Array.unsafe_set stack s (Bool.to_int (Array.unsafe_get stack s = 0));
        pc := p + 1
      | 20 (* NEG *) ->
        let s = !sp - 1 in
        Array.unsafe_set stack s (-Array.unsafe_get stack s);
        pc := p + 1
      | 21 (* JMP t *) -> pc := arg (p + 1)
      | 22 (* JZ t *) ->
        decr sp;
        pc := if Array.unsafe_get stack !sp = 0 then arg (p + 1) else p + 2
      | 23 (* JNZ t *) ->
        decr sp;
        pc := if Array.unsafe_get stack !sp <> 0 then arg (p + 1) else p + 2
      | 24 (* SCHED opidx *) ->
        ts.cur_pc <- p;
        prim := Sync.Raw.sched (Array.unsafe_get ops (arg (p + 1)));
        fuel := Machine.silent_fuel;
        pc := p + 2
      | 25 (* PRIM *) ->
        Array.unsafe_set stack !sp !prim;
        incr sp;
        pc := p + 1
      | 26 (* FUEL pos *) ->
        decr fuel;
        if !fuel <= 0 then
          rt_err pos_tbl.(arg (p + 1))
            "thread %s ran %d silent steps without a scheduling point" tc.C.t_name
            Machine.silent_fuel;
        pc := p + 2
      | 27 (* AFUEL pos *) ->
        decr afuel;
        if !afuel <= 0 then
          rt_err pos_tbl.(arg (p + 1)) "atomic block exceeded %d steps"
            Machine.silent_fuel;
        pc := p + 2
      | 28 (* ATOMIC_ENTER *) ->
        afuel := Machine.silent_fuel;
        pc := p + 1
      | 29 (* ASSERT msg pos *) ->
        decr sp;
        if Array.unsafe_get stack !sp = 0 then
          rt_err pos_tbl.(arg (p + 2)) "%s" msg_tbl.(arg (p + 1));
        pc := p + 3
      | _ -> assert false
    done
  with Vm_error (msg, pos) ->
    Sync.fail (Format.asprintf "%s (thread %s, %a)" msg tc.C.t_name Ast.pp_pos pos)

(* Boot: register scheduling objects in declaration order — the same order
   (and constructors) as [Machine.build_objects], so [Op.obj] identities,
   and hence transition streams, are identical across backends. *)
let boot (c : C.t) () =
  let slots = Array.copy c.C.c_init in
  let vars = ref [] and mutexes = ref [] and sems = ref [] and events = ref [] in
  Array.iter
    (function
      | C.Reg_var name -> vars := Sync.Raw.var ~name () :: !vars
      | C.Reg_mutex name -> mutexes := Sync.Mutex.create ~name () :: !mutexes
      | C.Reg_sem (name, init) -> sems := Sync.Semaphore.create ~name init :: !sems
      | C.Reg_event (name, auto) -> events := Sync.Event.create ~name ~auto () :: !events)
    c.C.c_regs;
  let vars = Array.of_list (List.rev !vars) in
  let mutexes = Array.of_list (List.rev !mutexes) in
  let sems = Array.of_list (List.rev !sems) in
  let events = Array.of_list (List.rev !events) in
  let ops =
    Array.map
      (function
        | C.T_lock m -> Op.Lock (Sync.Mutex.id mutexes.(m))
        | C.T_try_lock m -> Op.Try_lock (Sync.Mutex.id mutexes.(m))
        | C.T_timed_lock m -> Op.Timed_lock (Sync.Mutex.id mutexes.(m))
        | C.T_unlock m -> Op.Unlock (Sync.Mutex.id mutexes.(m))
        | C.T_sem_wait s -> Op.Sem_wait (Sync.Semaphore.id sems.(s))
        | C.T_sem_timed_wait s -> Op.Sem_timed_wait (Sync.Semaphore.id sems.(s))
        | C.T_sem_post s -> Op.Sem_post (Sync.Semaphore.id sems.(s))
        | C.T_ev_wait e -> Op.Ev_wait (Sync.Event.id events.(e))
        | C.T_ev_timed_wait e -> Op.Ev_timed_wait (Sync.Event.id events.(e))
        | C.T_ev_set e -> Op.Ev_set (Sync.Event.id events.(e))
        | C.T_ev_reset e -> Op.Ev_reset (Sync.Event.id events.(e))
        | C.T_var_read v -> Op.Var_read vars.(v)
        | C.T_var_write v -> Op.Var_write vars.(v)
        | C.T_var_rmw v -> Op.Var_rmw vars.(v)
        | C.T_choose n -> Op.Choose n
        | C.T_yield -> Op.Yield
        | C.T_sleep -> Op.Sleep)
      c.C.c_ops
  in
  let tstates =
    Array.map
      (fun (tc : C.thread_code) ->
        { locals = Array.make (max tc.C.t_nlocals 1) 0;
          inited = Array.make (max tc.C.t_nlocals 1) false;
          cur_pc = 0 })
      c.C.c_threads
  in
  let snapshot () =
    let h = ref (Fnv.ints Fnv.init slots) in
    Array.iteri
      (fun i (ts : tstate) ->
        h := Fnv.int !h ts.cur_pc;
        let tc = c.C.c_threads.(i) in
        for j = 0 to tc.C.t_nlocals - 1 do
          h := Fnv.int !h (if ts.inited.(j) then ts.locals.(j) else min_int)
        done)
      tstates;
    !h
  in
  let threads =
    Array.to_list
      (Array.mapi (fun i tc -> run_thread c ops slots tc tstates.(i)) c.C.c_threads)
  in
  ((slots, tstates), { Program.threads; snapshot = Some snapshot })

let program_of (c : C.t) =
  Program.make ~name:c.C.c_name (fun () -> snd (boot c ()))

let compile ?invisible (prog : Ast.program) = program_of (Compile.compile ?invisible prog)

(* [compile_inspect] additionally returns a dump of the most recent boot's
   store — globals (array cells as "a[i]") then initialized locals
   ("thread.name") — for differential final-state comparison in tests. *)
let compile_inspect ?invisible (prog : Ast.program) =
  let c = Compile.compile ?invisible prog in
  let last = ref None in
  let p =
    Program.make ~name:c.C.c_name (fun () ->
        let st, booted = boot c () in
        last := Some st;
        booted)
  in
  let dump () =
    match !last with
    | None -> []
    | Some (slots, tstates) ->
      let globals =
        Array.to_list c.C.c_globals
        |> List.concat_map (fun (name, base, size) ->
               if size = 0 then [ (name, slots.(base)) ]
               else
                 List.init size (fun i ->
                     (Printf.sprintf "%s[%d]" name i, slots.(base + i))))
      in
      let locals =
        Array.to_list
          (Array.mapi
             (fun i (ts : tstate) ->
               let tc = c.C.c_threads.(i) in
               List.concat
                 (List.init tc.C.t_nlocals (fun j ->
                      if ts.inited.(j) then
                        [ (tc.C.t_name ^ "." ^ tc.C.t_local_names.(j), ts.locals.(j)) ]
                      else [])))
             tstates)
        |> List.concat
      in
      globals @ locals
  in
  (p, dump)

(* The dispatch match above uses literal opcodes; pin them to the
   compiler's constants so a renumbering cannot silently skew dispatch. *)
let () =
  assert (
    C.op_halt = 0 && C.op_push = 1 && C.op_load_g = 2 && C.op_store_g = 3
    && C.op_load_l = 4 && C.op_store_l = 5 && C.op_load_gi = 6 && C.op_store_gi = 7
    && C.op_add = 8 && C.op_sub = 9 && C.op_mul = 10 && C.op_div = 11 && C.op_mod = 12
    && C.op_eq = 13 && C.op_ne = 14 && C.op_lt = 15 && C.op_le = 16 && C.op_gt = 17
    && C.op_ge = 18 && C.op_not = 19 && C.op_neg = 20 && C.op_jmp = 21 && C.op_jz = 22
    && C.op_jnz = 23 && C.op_sched = 24 && C.op_prim = 25 && C.op_fuel = 26
    && C.op_afuel = 27 && C.op_atomic_enter = 28 && C.op_assert = 29)
