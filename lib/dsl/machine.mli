(** The ChessLang interpreter: compiles a checked program to an engine
    {!Fairmc_core.Program.t}.

    Execution model: one statement = one transition. Before executing a
    statement, the interpreter computes the single engine operation the
    statement corresponds to (a lock, an event wait, a shared-variable
    access, a demonic choice — or nothing, for statements touching only
    locals, which run silently inside the preceding transition). Expression
    evaluation is atomic within the transition.

    Because thread control state is an explicit frame stack of statement
    labels, the interpreter supplies an exact state snapshot: globals, every
    thread's program counter stack and locals. ChessLang programs therefore
    get precise state-coverage measurement for free, where native workloads
    need manual abstraction (paper §4.2.1). *)

val compile : ?invisible:(string -> bool) -> Ast.program -> Fairmc_core.Program.t
(** [invisible] names globals proven thread-local by the static-analysis
    layer; statements touching only them run silently (transition
    merging) — the same rule the bytecode backend applies, via
    {!Stmt_op}. @raise Sema.Error on static errors. *)

val compile_inspect :
  ?invisible:(string -> bool) ->
  Ast.program -> Fairmc_core.Program.t * (unit -> (string * int) list)
(** [compile_inspect prog] also returns a dump of the most recent boot's
    final store — globals (array cells as ["a\[i\]"]) then initialized
    locals (["thread.name"]) — for differential testing against
    {!Vm.compile_inspect}. *)

val silent_fuel : int
(** Consecutive silent (local-only) steps a thread may run before the
    checker reports a missing scheduling point. Shared with {!Vm} so both
    backends diverge identically. *)
