(** Bytecode VM for ChessLang: the default execution backend.

    Executes {!Compile} bytecode with an int-array operand stack and flat
    frames (one pc + an int-array of local slots per thread). Preserves
    every observable of the AST interpreter {!Machine} — identical [Op.t]
    transition streams per schedule, silent-fuel accounting, runtime-error
    messages, counterexamples, and checkpoint/resume behavior — while
    re-executing schedules several times faster (the [bench vm]
    experiment measures the ratio).

    State snapshots hash the flat representation directly (FNV over the
    global slot array, then each thread's pc and local slots), which is
    both faster than walking AST machine state and induces the same
    state partition: a bytecode pc determines the whole continuation, as
    control flow is structured. *)

val compile : ?invisible:(string -> bool) -> Ast.program -> Fairmc_core.Program.t
(** [invisible] names globals proven thread-local by the static-analysis
    layer; statements touching only them compile to FUEL instead of SCHED
    (transition merging). @raise Sema.Error on static errors. *)

val compile_inspect :
  ?invisible:(string -> bool) ->
  Ast.program -> Fairmc_core.Program.t * (unit -> (string * int) list)
(** [compile_inspect prog] also returns a dump of the most recent boot's
    final store — globals (array cells as ["a\[i\]"]) then initialized
    locals (["thread.name"]) — for differential testing against
    {!Machine.compile_inspect}. *)
