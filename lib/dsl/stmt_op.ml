(* The statement -> engine-operation rule, shared by both backends.

   One ChessLang statement is one transition; this module decides which
   engine operation (if any) that transition performs, in terms of
   declaration *names*. [Compile] maps the result to per-kind indices
   ([op_template]), [Machine] to runtime objects ([Op.t]) — keeping the
   rule in one place is what makes the backends observably equivalent by
   construction.

   The rule: an effectful primitive (trylock/timedlock/timedwait/semtry/
   choose; sema allows at most one per statement) wins; otherwise the
   first global read becomes a [Var_read]; a write to a global becomes a
   [Var_write] (reads fold into it); an atomic block is a [Var_rmw] of
   the first global it touches; statements over locals only are silent.

   [invisible] is the static-POR hook: globals proven thread-local are
   dropped from the derivation, so statements touching only them degrade
   to silent — their SCHED suspension disappears. A write to an invisible
   global falls back to the derivation of its right-hand side, keeping
   any primitive or visible read it contains. *)

open Ast

type t =
  | A_lock of string
  | A_try_lock of string
  | A_timed_lock of string
  | A_unlock of string
  | A_sem_wait of string
  | A_sem_timed_wait of string
  | A_sem_post of string
  | A_ev_wait of string
  | A_ev_timed_wait of string
  | A_ev_set of string
  | A_ev_reset of string
  | A_var_read of string
  | A_var_write of string
  | A_var_rmw of string
  | A_choose of int
  | A_yield
  | A_sleep

let no_invisible = fun (_ : string) -> false

let of_stmt (info : Sema.info) ~thread ~is_local ?(invisible = no_invisible)
    (s : stmt) : t option =
  let prim_op e =
    match Sema.effectful e with
    | Some (Try_lock (_, m)) -> Some (A_try_lock m)
    | Some (Timed_lock (_, m)) -> Some (A_timed_lock m)
    | Some (Timed_wait (_, ev)) -> Some (A_ev_timed_wait ev)
    | Some (Sem_try (_, sm)) -> Some (A_sem_timed_wait sm)
    | Some (Choose (_, n)) -> Some (A_choose n)
    | Some _ | None -> None
  in
  let visible_reads exprs =
    List.filter
      (fun g -> not (invisible g))
      (List.concat_map (fun e -> Sema.globals_read info ~thread e) exprs)
  in
  let read_op exprs =
    match visible_reads exprs with [] -> None | g :: _ -> Some (A_var_read g)
  in
  let expr_op exprs =
    match List.find_map prim_op exprs with
    | Some op -> Some op
    | None -> read_op exprs
  in
  match s.kind with
  | Local (_, e) | Assert (e, _) -> expr_op [ e ]
  | Assign (Lname (_, n), e) when not (is_local n) ->
    (* Write to a global: one write transition (reads fold into it). *)
    if invisible n then expr_op [ e ]
    else (match prim_op e with Some op -> Some op | None -> Some (A_var_write n))
  | Assign (Lname _, e) -> expr_op [ e ]
  | Assign (Lindex (_, a, i), e) ->
    if invisible a then expr_op [ e; i ]
    else
      (match expr_op [ e; i ] with
       | Some (A_var_read _) | None -> Some (A_var_write a)
       | Some op -> Some op)
  | If (c, _, _) | While (c, _) -> expr_op [ c ]
  | Lock m -> Some (A_lock m)
  | Unlock m -> Some (A_unlock m)
  | Wait ev -> Some (A_ev_wait ev)
  | Set_event ev -> Some (A_ev_set ev)
  | Reset_event ev -> Some (A_ev_reset ev)
  | Sem_p sm -> Some (A_sem_wait sm)
  | Sem_v sm -> Some (A_sem_post sm)
  | Yield -> Some A_yield
  | Sleep -> Some A_sleep
  | Skip -> None
  | Atomic b ->
    (* The whole block is one transition, presented to the scheduler as an
       interlocked operation on the first (visible) global it touches. *)
    let rec first_global bl =
      List.find_map
        (fun (s : stmt) ->
          match s.kind with
          | Local (_, e) | Assert (e, _) -> first_of_exprs [ e ]
          | Assign (Lname (_, n), e) ->
            if is_local n || invisible n then first_of_exprs [ e ] else Some n
          | Assign (Lindex (_, a, i), e) ->
            if invisible a then first_of_exprs [ e; i ] else Some a
          | If (c, t, f) ->
            (match first_of_exprs [ c ] with
             | Some g -> Some g
             | None ->
               (match first_global t with Some g -> Some g | None -> first_global f))
          | While (c, b) ->
            (match first_of_exprs [ c ] with Some g -> Some g | None -> first_global b)
          | Skip -> None
          | Atomic b -> first_global b
          | Lock _ | Unlock _ | Wait _ | Set_event _ | Reset_event _ | Sem_p _
          | Sem_v _ | Yield | Sleep -> None)
        bl
    and first_of_exprs exprs =
      match visible_reads exprs with [] -> None | g :: _ -> Some g
    in
    (match first_global b with Some g -> Some (A_var_rmw g) | None -> None)

(* ------------------------------------------------------------------ *)
(* Access footprints, for the static-analysis layer. Transition
   granularity: If/While contribute their condition only (the branch
   bodies are later transitions); Atomic contributes its whole block. *)

type footprint = {
  fp_reads : string list; (* globals (vars/arrays) the transition may read *)
  fp_writes : string list; (* globals it may write *)
  fp_syncs : string list; (* sync objects it touches (incl. primitives) *)
}

let empty_footprint = { fp_reads = []; fp_writes = []; fp_syncs = [] }

let merge_fp a b =
  { fp_reads = a.fp_reads @ b.fp_reads;
    fp_writes = a.fp_writes @ b.fp_writes;
    fp_syncs = a.fp_syncs @ b.fp_syncs }

let prim_syncs exprs =
  List.concat_map
    (fun e ->
      List.filter_map
        (function
          | Try_lock (_, m) | Timed_lock (_, m) -> Some m
          | Timed_wait (_, ev) -> Some ev
          | Sem_try (_, sm) -> Some sm
          | Choose _ -> None
          | _ -> None)
        (Sema.effectful_list e))
    exprs

let footprint (info : Sema.info) ~thread (s : stmt) : footprint =
  let reads exprs =
    List.concat_map (fun e -> Sema.globals_read info ~thread e) exprs
  in
  let of_exprs exprs =
    { fp_reads = reads exprs; fp_writes = []; fp_syncs = prim_syncs exprs }
  in
  let is_global n =
    List.mem_assoc n info.Sema.kinds
    && not
         (match List.assoc_opt thread info.Sema.thread_locals with
          | Some locals -> List.mem n locals
          | None -> false)
  in
  let rec of_stmt (s : stmt) =
    match s.kind with
    | Local (_, e) | Assert (e, _) -> of_exprs [ e ]
    | Assign (Lname (_, n), e) ->
      let fp = of_exprs [ e ] in
      if is_global n then { fp with fp_writes = n :: fp.fp_writes } else fp
    | Assign (Lindex (_, a, i), e) ->
      let fp = of_exprs [ e; i ] in
      { fp with fp_writes = a :: fp.fp_writes }
    | If (c, _, _) | While (c, _) -> of_exprs [ c ]
    | Lock m | Unlock m -> { empty_footprint with fp_syncs = [ m ] }
    | Wait ev | Set_event ev | Reset_event ev -> { empty_footprint with fp_syncs = [ ev ] }
    | Sem_p sm | Sem_v sm -> { empty_footprint with fp_syncs = [ sm ] }
    | Yield | Sleep | Skip -> empty_footprint
    | Atomic b ->
      (* The whole block is one transition: union every inner statement's
         footprint, branches included (sema bans sync ops inside). *)
      let rec of_block b =
        List.fold_left
          (fun acc (s : stmt) ->
            let inner =
              match s.kind with
              | If (_, t, f) -> merge_fp (of_stmt s) (merge_fp (of_block t) (of_block f))
              | While (_, body) -> merge_fp (of_stmt s) (of_block body)
              | Atomic body -> of_block body
              | _ -> of_stmt s
            in
            merge_fp acc inner)
          empty_footprint b
      in
      of_block b
  in
  of_stmt s
