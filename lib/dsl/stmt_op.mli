(** The statement → engine-operation rule, shared by both execution
    backends.

    One ChessLang statement is one transition. This module decides, in
    terms of declaration names, which engine operation that transition
    performs — {!Compile} maps the result to compile-time indices,
    {!Machine} to runtime objects. Keeping the rule in one place makes
    the backends observably equivalent by construction, and gives the
    static-analysis layer (lib/static) the exact operation/footprint
    semantics the engine will execute. *)

val no_invisible : string -> bool
(** The default [invisible] predicate: nothing is invisible. *)

type t =
  | A_lock of string
  | A_try_lock of string
  | A_timed_lock of string
  | A_unlock of string
  | A_sem_wait of string
  | A_sem_timed_wait of string
  | A_sem_post of string
  | A_ev_wait of string
  | A_ev_timed_wait of string
  | A_ev_set of string
  | A_ev_reset of string
  | A_var_read of string
  | A_var_write of string
  | A_var_rmw of string
  | A_choose of int
  | A_yield
  | A_sleep

val of_stmt :
  Sema.info ->
  thread:string ->
  is_local:(string -> bool) ->
  ?invisible:(string -> bool) ->
  Ast.stmt ->
  t option
(** The single engine operation of the statement's transition, or [None]
    for silent statements. [invisible] (default: nothing) names globals
    proven thread-local by the static-analysis layer: they are dropped
    from the derivation, so transitions touching only them become
    silent — transition merging. *)

(** {2 Access footprints} *)

type footprint = {
  fp_reads : string list;  (** globals the transition may read *)
  fp_writes : string list;  (** globals it may write *)
  fp_syncs : string list;  (** sync objects it touches (incl. primitives) *)
}

val footprint : Sema.info -> thread:string -> Ast.stmt -> footprint
(** May-access sets of the statement's transition. [If]/[While]
    contribute their condition only (branch bodies are later
    transitions); [Atomic] contributes its whole block. Lists may
    contain duplicates. *)
