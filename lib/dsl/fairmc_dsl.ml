(** ChessLang — a small concurrent language frontend for the fair stateless
    model checker. See {!Ast} for the syntax, {!Compile}/{!Vm} for the
    default bytecode execution backend, {!Machine} for the AST-walking
    oracle it is differentially tested against. *)

module Ast = Ast
module Token = Token
module Lexer = Lexer
module Parser = Parser
module Sema = Sema
module Stmt_op = Stmt_op
module Machine = Machine
module Compile = Compile
module Vm = Vm

(** Execution backend: the bytecode VM (default) or the AST interpreter
    (the differential-testing oracle, [--interp ast] on the CLI). *)
type backend = [ `Vm | `Ast ]

let backend_of_interp : Fairmc_core.Search_config.interp -> backend = function
  | Fairmc_core.Search_config.Vm -> `Vm
  | Fairmc_core.Search_config.Ast -> `Ast

let compile ?(backend = `Vm) ?invisible ast =
  match backend with
  | `Vm -> Vm.compile ?invisible ast
  | `Ast -> Machine.compile ?invisible ast

(** [load_string src] parses, checks, and compiles a ChessLang program. *)
let load_string ?name ?backend src = compile ?backend (Parser.parse_string ?name src)

let load_file ?backend path = compile ?backend (Parser.parse_file path)
