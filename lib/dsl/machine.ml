open Ast
open Fairmc_core
module Fnv = Fairmc_util.Fnv

(* Runtime objects backing the declarations of one execution. *)
type objects = {
  slots : int array;  (* scalar and array storage, in declaration order *)
  slot_of : (string, int) Hashtbl.t;  (* name -> first slot *)
  size_of : (string, int) Hashtbl.t;  (* array name -> size; scalars absent *)
  var_obj : (string, Op.obj) Hashtbl.t;  (* per var/array scheduling identity *)
  mutexes : (string, Sync.Mutex.t) Hashtbl.t;
  sems : (string, Sync.Semaphore.t) Hashtbl.t;
  events : (string, Sync.Event.t) Hashtbl.t;
}

(* One thread's machine state: a stack of statement lists. The head of the
   top frame is the next statement; [While] keeps itself at the head while
   its body runs as a pushed frame, so loop re-tests are ordinary steps. *)
type tmachine = {
  tname : string;
  mutable frames : block list;
  locals : (string, int) Hashtbl.t;
  local_names : string list;  (* sorted, for snapshot determinism *)
  local_set : (string, unit) Hashtbl.t;  (* same names, O(1) membership *)
  op_cache : (Op.t option * bool) option array;
      (* per-statement-id engine op + has-primitive, computed once per
         boot: [op_of_stmt] walks expressions and scans global lists, a
         per-step cost that would otherwise recur on every re-execution *)
}

let is_local_name tm n = Hashtbl.mem tm.local_set n

exception Runtime_error of string * pos

let rt_err pos fmt =
  Format.kasprintf (fun m -> raise (Runtime_error (m, pos))) fmt

let silent_fuel = 100_000

let build_objects (info : Sema.info) =
  let total =
    List.fold_left
      (fun acc (_, k) ->
        match (k : Sema.gkind) with
        | Scalar -> acc + 1
        | Array n -> acc + n
        | Mutex | Sem _ | Event _ -> acc)
      0 info.kinds
  in
  let o =
    { slots = Array.make (max total 1) 0;
      slot_of = Hashtbl.create 16;
      size_of = Hashtbl.create 16;
      var_obj = Hashtbl.create 16;
      mutexes = Hashtbl.create 8;
      sems = Hashtbl.create 8;
      events = Hashtbl.create 8 }
  in
  let next = ref 0 in
  List.iter
    (fun (name, k) ->
      match (k : Sema.gkind) with
      | Scalar ->
        Hashtbl.replace o.slot_of name !next;
        incr next;
        Hashtbl.replace o.var_obj name (Sync.Raw.var ~name ())
      | Array n ->
        Hashtbl.replace o.slot_of name !next;
        Hashtbl.replace o.size_of name n;
        next := !next + n;
        Hashtbl.replace o.var_obj name (Sync.Raw.var ~name ())
      | Mutex -> Hashtbl.replace o.mutexes name (Sync.Mutex.create ~name ())
      | Sem init -> Hashtbl.replace o.sems name (Sync.Semaphore.create ~name init)
      | Event auto -> Hashtbl.replace o.events name (Sync.Event.create ~name ~auto ()))
    info.kinds;
  o

let init_slots (prog : program) o =
  List.iter
    (fun d ->
      match d with
      | Dvar (_, n, init) -> o.slots.(Hashtbl.find o.slot_of n) <- init
      | Darray (_, n, size, init) ->
        let base = Hashtbl.find o.slot_of n in
        for i = 0 to size - 1 do
          o.slots.(base + i) <- init
        done
      | Dmutex _ | Dsem _ | Devent _ | Dthread _ -> ())
    prog.decls

(* Expression evaluation. Effectful primitives consume [prim], the result
   of the transition's single scheduler interaction. *)
let rec eval o tm prim e =
  match e with
  | Int n -> n
  | Name (p, n) ->
    if is_local_name tm n then
      match Hashtbl.find_opt tm.locals n with
      | Some v -> v
      | None -> rt_err p "local %s read before initialization" n
    else o.slots.(Hashtbl.find o.slot_of n)
  | Index (p, a, i) ->
    let iv = eval o tm prim i in
    let size = Hashtbl.find o.size_of a in
    if iv < 0 || iv >= size then rt_err p "index %d out of bounds for %s[%d]" iv a size;
    o.slots.(Hashtbl.find o.slot_of a + iv)
  | Binop (op, a, b) -> (
    let truthy v = v <> 0 in
    match op with
    | And -> if truthy (eval o tm prim a) then eval o tm prim b else 0
    | Or ->
      let va = eval o tm prim a in
      if truthy va then 1 else eval o tm prim b
    | _ ->
      (* Left-to-right, like the compiled backend: with at most one
         primitive per statement the results agree, but a statement can
         still raise two different runtime errors depending on order. *)
      let va = eval o tm prim a in
      let vb = eval o tm prim b in
      (match op with
       | Add -> va + vb
       | Sub -> va - vb
       | Mul -> va * vb
       | Div -> if vb = 0 then rt_err (pos_of e) "division by zero" else va / vb
       | Mod -> if vb = 0 then rt_err (pos_of e) "modulo by zero" else va mod vb
       | Eq -> Bool.to_int (va = vb)
       | Ne -> Bool.to_int (va <> vb)
       | Lt -> Bool.to_int (va < vb)
       | Le -> Bool.to_int (va <= vb)
       | Gt -> Bool.to_int (va > vb)
       | Ge -> Bool.to_int (va >= vb)
       | And | Or -> assert false))
  | Unop (Not, a) -> Bool.to_int (eval o tm prim a = 0)
  | Unop (Neg, a) -> -eval o tm prim a
  | Try_lock _ | Timed_lock _ | Timed_wait _ | Sem_try _ | Choose _ -> (
    match !prim with
    | Some r ->
      prim := None;
      r
    | None -> assert false)

and pos_of = function
  | Name (p, _) | Index (p, _, _) | Try_lock (p, _) | Timed_lock (p, _)
  | Timed_wait (p, _) | Sem_try (p, _) | Choose (p, _) -> p
  | Int _ | Binop _ | Unop _ -> { line = 0; col = 0 }

(* The single engine operation a statement performs, or [None] for silent
   statements: the shared {!Stmt_op} rule (also used by the compiler),
   mapped to this boot's runtime objects. *)
let op_of_stmt (info : Sema.info) ~invisible o tm (s : stmt) : Op.t option =
  match
    Stmt_op.of_stmt info ~thread:tm.tname ~is_local:(is_local_name tm) ~invisible s
  with
  | None -> None
  | Some a ->
    Some
      (match a with
       | A_lock m -> Op.Lock (Sync.Mutex.id (Hashtbl.find o.mutexes m))
       | A_try_lock m -> Op.Try_lock (Sync.Mutex.id (Hashtbl.find o.mutexes m))
       | A_timed_lock m -> Op.Timed_lock (Sync.Mutex.id (Hashtbl.find o.mutexes m))
       | A_unlock m -> Op.Unlock (Sync.Mutex.id (Hashtbl.find o.mutexes m))
       | A_sem_wait sm -> Op.Sem_wait (Sync.Semaphore.id (Hashtbl.find o.sems sm))
       | A_sem_timed_wait sm ->
         Op.Sem_timed_wait (Sync.Semaphore.id (Hashtbl.find o.sems sm))
       | A_sem_post sm -> Op.Sem_post (Sync.Semaphore.id (Hashtbl.find o.sems sm))
       | A_ev_wait ev -> Op.Ev_wait (Sync.Event.id (Hashtbl.find o.events ev))
       | A_ev_timed_wait ev -> Op.Ev_timed_wait (Sync.Event.id (Hashtbl.find o.events ev))
       | A_ev_set ev -> Op.Ev_set (Sync.Event.id (Hashtbl.find o.events ev))
       | A_ev_reset ev -> Op.Ev_reset (Sync.Event.id (Hashtbl.find o.events ev))
       | A_var_read v -> Op.Var_read (Hashtbl.find o.var_obj v)
       | A_var_write v -> Op.Var_write (Hashtbl.find o.var_obj v)
       | A_var_rmw v -> Op.Var_rmw (Hashtbl.find o.var_obj v)
       | A_choose n -> Op.Choose n
       | A_yield -> Op.Yield
       | A_sleep -> Op.Sleep)

(* Execute statement [s] (already at the head of the top frame, already
   "performed" with primitive result in [prim]); updates the frame stack. *)
let rec exec_stmt o tm prim (s : stmt) rest parents =
  let continue_with frames = tm.frames <- frames in
  match s.kind with
  | Local (n, e) ->
    Hashtbl.replace tm.locals n (eval o tm prim e);
    continue_with (rest :: parents)
  | Assign (Lname (p, n), e) ->
    let v = eval o tm prim e in
    if is_local_name tm n then Hashtbl.replace tm.locals n v
    else begin
      match Hashtbl.find_opt o.slot_of n with
      | Some slot -> o.slots.(slot) <- v
      | None -> rt_err p "unbound variable %s" n
    end;
    continue_with (rest :: parents)
  | Assign (Lindex (p, a, i), e) ->
    let iv = eval o tm prim i in
    let v = eval o tm prim e in
    let size = Hashtbl.find o.size_of a in
    if iv < 0 || iv >= size then rt_err p "index %d out of bounds for %s[%d]" iv a size;
    o.slots.(Hashtbl.find o.slot_of a + iv) <- v;
    continue_with (rest :: parents)
  | If (c, then_, else_) ->
    let branch = if eval o tm prim c <> 0 then then_ else else_ in
    continue_with (branch :: rest :: parents)
  | While (c, body) ->
    if eval o tm prim c <> 0 then
      (* Keep the loop statement in place for the re-test. *)
      continue_with (body :: (s :: rest) :: parents)
    else continue_with (rest :: parents)
  | Lock _ | Unlock _ | Wait _ | Set_event _ | Reset_event _ | Sem_p _ | Sem_v _
  | Yield | Sleep | Skip ->
    (* State change already applied by the engine operation. *)
    continue_with (rest :: parents)
  | Assert (e, msg) ->
    if eval o tm prim e = 0 then
      rt_err s.pos "%s" msg
    else continue_with (rest :: parents)
  | Atomic body ->
    continue_with (rest :: parents);
    (* Run the whole block without further scheduling points. *)
    let saved = tm.frames in
    tm.frames <- [ body ];
    let fuel = ref silent_fuel in
    let rec go () =
      match current tm with
      | None -> ()
      | Some (s', rest', parents') ->
        decr fuel;
        if !fuel <= 0 then rt_err s.pos "atomic block exceeded %d steps" silent_fuel;
        exec_stmt o tm (ref None) s' rest' parents';
        go ()
    in
    go ();
    tm.frames <- saved

(* The next statement of the machine, normalizing empty frames away. *)
and current tm =
  match tm.frames with
  | [] -> None
  | [] :: parents ->
    tm.frames <- parents;
    current tm
  | (s :: rest) :: parents -> Some (s, rest, parents)

(* Does the statement's transition carry an effectful primitive whose
   result the evaluator must consume? *)
let stmt_has_primitive (s : stmt) =
  let exprs =
    match s.kind with
    | Local (_, e) | Assert (e, _) -> [ e ]
    | Assign (Lname _, e) -> [ e ]
    | Assign (Lindex (_, _, i), e) -> [ e; i ]
    | If (c, _, _) | While (c, _) -> [ c ]
    | Lock _ | Unlock _ | Wait _ | Set_event _ | Reset_event _ | Sem_p _ | Sem_v _
    | Yield | Sleep | Skip | Atomic _ -> []
  in
  List.exists (fun e -> Sema.effectful e <> None) exprs

(* Drive one thread: silent statements run inline; visible ones perform
   their engine operation first. *)
(* [op_of_stmt] + [stmt_has_primitive], computed once per statement per
   boot (statement ids are parser-unique, so a flat array serves). *)
let cached_op info ~invisible o tm (s : stmt) =
  match tm.op_cache.(s.id) with
  | Some c -> c
  | None ->
    let c = (op_of_stmt info ~invisible o tm s, stmt_has_primitive s) in
    tm.op_cache.(s.id) <- Some c;
    c

let thread_body (info : Sema.info) ~invisible o tm () =
  let fuel = ref silent_fuel in
  let rec go () =
    match current tm with
    | None -> ()
    | Some (s, rest, parents) -> (
      match cached_op info ~invisible o tm s with
      | None, _ ->
        decr fuel;
        if !fuel <= 0 then
          rt_err s.pos "thread %s ran %d silent steps without a scheduling point"
            tm.tname silent_fuel;
        exec_stmt o tm (ref None) s rest parents;
        go ()
      | Some op, has_prim ->
        fuel := silent_fuel;
        let r = Sync.Raw.sched op in
        let prim = ref (if has_prim then Some r else None) in
        exec_stmt o tm prim s rest parents;
        go ())
  in
  try go () with
  | Runtime_error (msg, pos) ->
    Sync.fail (Format.asprintf "%s (thread %s, %a)" msg tm.tname pp_pos pos)

let snapshot o tms () =
  let h = ref (Fnv.ints Fnv.init o.slots) in
  List.iter
    (fun tm ->
      h := Fnv.int !h (List.length tm.frames);
      List.iter
        (fun frame ->
          h := Fnv.int !h (match frame with s :: _ -> s.id | [] -> -1))
        tm.frames;
      List.iter
        (fun n -> h := Fnv.int !h (Option.value ~default:min_int (Hashtbl.find_opt tm.locals n)))
        tm.local_names)
    tms;
  !h

(* Statement ids are assigned by one parser counter; the array bound for
   per-boot op caches is the largest id in the program. *)
let max_stmt_id (prog : program) =
  let m = ref 0 in
  let rec go_block b =
    List.iter
      (fun (s : stmt) ->
        if s.id > !m then m := s.id;
        match s.kind with
        | If (_, a, b) ->
          go_block a;
          go_block b
        | While (_, b) | Atomic b -> go_block b
        | Local _ | Assign _ | Lock _ | Unlock _ | Wait _ | Set_event _
        | Reset_event _ | Sem_p _ | Sem_v _ | Yield | Sleep | Skip | Assert _ -> ())
      b
  in
  List.iter (fun (_, b) -> go_block b) (Ast.threads prog);
  !m

let boot ?(invisible = Stmt_op.no_invisible) (prog : program) (info : Sema.info) () =
  let o = build_objects info in
  init_slots prog o;
  let cache_len = max_stmt_id prog + 1 in
  let tms =
    List.map
      (fun (tname, body) ->
        let local_names =
          List.sort compare
            (match List.assoc_opt tname info.Sema.thread_locals with
             | Some l -> l
             | None -> [])
        in
        let local_set = Hashtbl.create 8 in
        List.iter (fun n -> Hashtbl.replace local_set n ()) local_names;
        { tname;
          frames = [ body ];
          locals = Hashtbl.create 8;
          local_names;
          local_set;
          op_cache = Array.make cache_len None })
      (Ast.threads prog)
  in
  ( (o, tms),
    { Program.threads = List.map (fun tm -> thread_body info ~invisible o tm) tms;
      snapshot = Some (snapshot o tms) } )

let compile ?invisible (prog : program) =
  let info = Sema.check prog in
  Program.make ~name:prog.prog_name (fun () -> snd (boot ?invisible prog info ()))

(* Final-store dump of the most recent boot, mirroring [Vm.compile_inspect]:
   globals (array cells as "a[i]") then initialized locals ("thread.name"). *)
let compile_inspect ?invisible (prog : program) =
  let info = Sema.check prog in
  let last = ref None in
  let p =
    Program.make ~name:prog.prog_name (fun () ->
        let st, booted = boot ?invisible prog info () in
        last := Some st;
        booted)
  in
  let dump () =
    match !last with
    | None -> []
    | Some (o, tms) ->
      let globals =
        List.concat_map
          (fun (name, k) ->
            match (k : Sema.gkind) with
            | Scalar -> [ (name, o.slots.(Hashtbl.find o.slot_of name)) ]
            | Array n ->
              let base = Hashtbl.find o.slot_of name in
              List.init n (fun i -> (Printf.sprintf "%s[%d]" name i, o.slots.(base + i)))
            | Mutex | Sem _ | Event _ -> [])
          info.kinds
      in
      let locals =
        List.concat_map
          (fun tm ->
            List.filter_map
              (fun n ->
                Option.map
                  (fun v -> (tm.tname ^ "." ^ n, v))
                  (Hashtbl.find_opt tm.locals n))
              tm.local_names)
          tms
      in
      globals @ locals
  in
  (p, dump)
