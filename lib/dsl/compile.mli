(** Bytecode compiler for ChessLang.

    Lowers a sema-checked AST to flat per-thread [int array] bytecode:
    jump-resolved control flow, globals and locals resolved to integer
    slot indices, and each statement's engine operation precomputed into
    an operation table — no name lookups at runtime. See DESIGN.md,
    "Bytecode VM", for the instruction set. Executed by {!Vm}. *)

(** The engine operation of a visible statement, with synchronization
    objects as compile-time per-kind indices (materialized to {!Fairmc_core.Op.t}
    at boot, once the objects exist). *)
type op_template =
  | T_lock of int
  | T_try_lock of int
  | T_timed_lock of int
  | T_unlock of int
  | T_sem_wait of int
  | T_sem_timed_wait of int
  | T_sem_post of int
  | T_ev_wait of int
  | T_ev_timed_wait of int
  | T_ev_set of int
  | T_ev_reset of int
  | T_var_read of int
  | T_var_write of int
  | T_var_rmw of int
  | T_choose of int
  | T_yield
  | T_sleep

(** Boot-time object registration plan, in declaration order — identical
    order and constructors to the AST machine, so both backends assign
    identical [Op.obj] identities. *)
type reg =
  | Reg_var of string
  | Reg_mutex of string
  | Reg_sem of string * int
  | Reg_event of string * bool

type thread_code = {
  t_name : string;
  t_code : int array;
  t_nlocals : int;
  t_local_names : string array;  (** local slot -> name, sorted *)
  t_stack : int;  (** operand-stack bound (conservative) *)
}

type t = {
  c_name : string;
  c_regs : reg array;
  c_nslots : int;
  c_init : int array;
  c_globals : (string * int * int) array;
      (** name, base slot, size (0 = scalar) — for store inspection *)
  c_ops : op_template array;
  c_op_stmt : int array;
      (** SCHED operand -> AST statement id (for the static-analysis layer:
          diagnostics positions, per-site visibility) *)
  c_op_thread : int array;  (** SCHED operand -> thread index *)
  c_pos : Ast.pos array;
  c_names : string array;
  c_msgs : string array;
  c_threads : thread_code array;
}

val compile : ?invisible:(string -> bool) -> Ast.program -> t
(** [invisible] names globals proven thread-local by the static-analysis
    layer: statements whose operation involves only them compile to FUEL
    instead of SCHED (transition merging). Defaults to nothing.
    @raise Sema.Error on static errors. *)

(** {2 Opcodes}

    Exposed for the VM's dispatch assertions and for disassembly. *)

val op_halt : int
val op_push : int
val op_load_g : int
val op_store_g : int
val op_load_l : int
val op_store_l : int
val op_load_gi : int
val op_store_gi : int
val op_add : int
val op_sub : int
val op_mul : int
val op_div : int
val op_mod : int
val op_eq : int
val op_ne : int
val op_lt : int
val op_le : int
val op_gt : int
val op_ge : int
val op_not : int
val op_neg : int
val op_jmp : int
val op_jz : int
val op_jnz : int
val op_sched : int
val op_prim : int
val op_fuel : int
val op_afuel : int
val op_atomic_enter : int
val op_assert : int

val width : int -> int
(** Instruction width (opcode + operand cells) of an opcode. *)
