open Fairmc_core
module B = Fairmc_util.Bitset

type mode = Full | Cb of int

type result = {
  states : int;
  nodes : int;
  transitions : int;
  complete : bool;
  signatures : (int64, unit) Hashtbl.t;
}

(* A search node: the decision prefix reaching it plus the scheduling
   context that determines which successors the strategy allows. *)
type node = {
  prefix : (int * int) list;  (* reversed (tid, alt) decisions *)
  budget : int;
  last : int;
  last_yielded : bool;
}

let explore ?(mode = Full) ?(max_states = 1_000_000) ?(max_nodes = 2_000_000)
    ?(max_steps_per_path = 10_000) ?(time_limit = 120.0) (prog : Program.t) =
  let t0 = Fairmc_obs.Clock.now () in
  let signatures : (int64, unit) Hashtbl.t = Hashtbl.create 4096 in
  (* Dedupe on (signature, scheduling context): a state reached with a
     different remaining budget can have different successors. The context
     is folded into the signature hash rather than kept as a tuple key —
     signatures are already lossy FNV values (over the VM's flat slot and
     frame arrays for DSL programs), so this costs nothing in precision
     and avoids a tuple allocation and a polymorphic hash per visit. *)
  let seen : (int64, unit) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let nodes = ref 0 in
  let complete = ref true in
  let initial_budget = match mode with Full -> max_int | Cb k -> k in

  (* Re-create the node's state by replay; [f] receives the live run. *)
  let with_node node f =
    let run = Engine.start prog in
    Fun.protect ~finally:(fun () -> Engine.stop run) @@ fun () ->
    List.iter
      (fun (tid, alt) ->
        Engine.step run ~tid ~alt;
        incr transitions)
      (List.rev node.prefix);
    f run
  in

  let visit node sign =
    let module Fnv = Fairmc_util.Fnv in
    let key =
      Fnv.int
        (Fnv.int (Fnv.int sign node.budget) node.last)
        (Bool.to_int node.last_yielded)
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      Hashtbl.replace signatures sign ();
      Queue.push node queue
    end
  in

  (* Root. *)
  let root = { prefix = []; budget = initial_budget; last = -1; last_yielded = false } in
  let root_sig =
    let run = Engine.start prog in
    Fun.protect ~finally:(fun () -> Engine.stop run) @@ fun () -> Engine.state_signature run
  in
  visit root root_sig;

  let out_of_budget () =
    Hashtbl.length signatures >= max_states
    || !nodes >= max_nodes
    || Fairmc_obs.Clock.now () -. t0 > time_limit
  in

  while (not (Queue.is_empty queue)) && not (out_of_budget ()) do
    let node = Queue.pop queue in
    incr nodes;
    if List.length node.prefix < max_steps_per_path then
      with_node node @@ fun run ->
      if Engine.failure run = None then begin
        let es = Engine.enabled_set run in
        let cur_runnable =
          node.last >= 0 && B.mem node.last es && not node.last_yielded
        in
        B.iter
          (fun tid ->
            let cost = if tid = node.last then 0 else if cur_runnable then 1 else 0 in
            if cost <= node.budget then
              for alt = 0 to Engine.alternatives run tid - 1 do
                (* Execute the successor, snapshot, reset by replaying. *)
                with_node node @@ fun run' ->
                let yielded = Engine.would_yield run' tid in
                Engine.step run' ~tid ~alt;
                incr transitions;
                if Engine.failure run' = None then
                  visit
                    { prefix = (tid, alt) :: node.prefix;
                      budget = (if node.budget = max_int then max_int else node.budget - cost);
                      last = tid;
                      last_yielded = yielded }
                    (Engine.state_signature run')
              done)
          es
      end
    else complete := false
  done;
  if not (Queue.is_empty queue) then complete := false;
  { states = Hashtbl.length signatures;
    nodes = !nodes;
    transitions = !transitions;
    complete = !complete;
    signatures }
