(* Vector-clock happens-before race detection in the FastTrack style
   (Flanagan & Freund, PLDI 2009), adapted to the checker's operation set:
   last writes are kept as epochs (tid, clock, site); reads are an epoch
   until concurrent readers force the full per-thread table. Everything is
   reset per execution — the stateless search re-executes from the initial
   state, so clocks must too. *)

open Fairmc_core
module AH = Analysis_hook
module VC = Vclock

(* One access: enough to order it against later clocks (e_clk at e_tid) and
   to report its site (step index + operation). *)
type epoch = { e_tid : int; e_clk : int; e_step : int; e_op : Op.t }

type reads =
  | No_reads
  | Read_one of epoch  (* all reads since the last write are HB-ordered *)
  | Read_many of (int, epoch) Hashtbl.t  (* per-thread last read *)

type vstate = {
  mutable w : epoch option;  (* last write *)
  mutable r : reads;
  mutable racy : bool;  (* one report per variable per execution *)
}

type st = {
  mutable run : Engine.t option;
  clocks : (int, VC.t) Hashtbl.t;
  releases : (Op.obj, VC.t) Hashtbl.t;  (* release clock per sync object *)
  vars : (Op.obj, vstate) Hashtbl.t;
  mutable first : AH.race option;
  mutable reads_n : int;
  mutable writes_n : int;
  mutable races_n : int;
}

let clock st tid =
  match Hashtbl.find_opt st.clocks tid with
  | Some c -> c
  | None ->
    (* Initial threads synchronize only through ops they execute; each
       starts at its own first epoch. Spawned threads are seeded at Spawn. *)
    let c = VC.tick VC.empty tid in
    Hashtbl.replace st.clocks tid c;
    c

let set_clock st tid c = Hashtbl.replace st.clocks tid c

(* acquire: C_t := C_t ⊔ L_o. *)
let acquire st tid o =
  match Hashtbl.find_opt st.releases o with
  | None -> ()
  | Some l -> set_clock st tid (VC.join (clock st tid) l)

(* release: L_o := C_t (mutex hand-off) or L_o ⊔ C_t (semaphores/events,
   where several posts can pair with one wait); then tick C_t so later
   events of t are not ordered before the acquirer's. *)
let release st tid o ~cumulative =
  let c = clock st tid in
  let l =
    if cumulative then
      match Hashtbl.find_opt st.releases o with None -> c | Some l -> VC.join l c
    else c
  in
  Hashtbl.replace st.releases o l;
  set_clock st tid (VC.tick c tid)

let vstate st o =
  match Hashtbl.find_opt st.vars o with
  | Some v -> v
  | None ->
    let v = { w = None; r = No_reads; racy = false } in
    Hashtbl.replace st.vars o v;
    v

let cur_step st =
  (* The observer fires after the step counter was advanced. *)
  match st.run with Some run -> Engine.steps run - 1 | None -> 0

let report st v o ~prior ~cur =
  v.racy <- true;
  st.races_n <- st.races_n + 1;
  if st.first = None then begin
    let run = Option.get st.run in
    let rendered, decisions, length = AH.snapshot_cex run in
    st.first <-
      Some
        { AH.detector = "hb";
          obj = o;
          obj_name = Objects.name (Engine.store run) o;
          a_tid = prior.e_tid;
          a_step = prior.e_step;
          a_op = prior.e_op;
          b_tid = cur.e_tid;
          b_step = cur.e_step;
          b_op = cur.e_op;
          rendered;
          decisions;
          length }
  end

let ordered_before c (e : epoch) = e.e_clk <= VC.get c e.e_tid

let read st tid o op =
  st.reads_n <- st.reads_n + 1;
  let v = vstate st o in
  if not v.racy then begin
    let c = clock st tid in
    let cur = { e_tid = tid; e_clk = VC.get c tid; e_step = cur_step st; e_op = op } in
    (match v.w with
     | Some w when w.e_tid <> tid && not (ordered_before c w) -> report st v o ~prior:w ~cur
     | _ -> ());
    if not v.racy then begin
      match v.r with
      | No_reads -> v.r <- Read_one cur
      | Read_one e when e.e_tid = tid || ordered_before c e -> v.r <- Read_one cur
      | Read_one e ->
        (* Concurrent readers: promote to the per-thread table. *)
        let h = Hashtbl.create 4 in
        Hashtbl.replace h e.e_tid e;
        Hashtbl.replace h tid cur;
        v.r <- Read_many h
      | Read_many h -> Hashtbl.replace h tid cur
    end
  end

let write st tid o op =
  st.writes_n <- st.writes_n + 1;
  let v = vstate st o in
  if not v.racy then begin
    let c = clock st tid in
    let cur = { e_tid = tid; e_clk = VC.get c tid; e_step = cur_step st; e_op = op } in
    (match v.w with
     | Some w when w.e_tid <> tid && not (ordered_before c w) -> report st v o ~prior:w ~cur
     | _ -> ());
    if not v.racy then begin
      let racing_read =
        match v.r with
        | No_reads -> None
        | Read_one e ->
          if e.e_tid <> tid && not (ordered_before c e) then Some e else None
        | Read_many h ->
          (* Deterministic pick: the racing reader with the smallest tid. *)
          Hashtbl.fold
            (fun u e acc ->
              if u <> tid && not (ordered_before c e) then
                match acc with Some (b : epoch) when b.e_tid < u -> acc | _ -> Some e
              else acc)
            h None
      in
      match racing_read with Some e -> report st v o ~prior:e ~cur | None -> ()
    end;
    if not v.racy then begin
      v.w <- Some cur;
      v.r <- No_reads  (* the write dominates all ordered reads *)
    end
  end

let observe st ~tid ~op ~result =
  match (op : Op.t) with
  | Lock o -> acquire st tid o
  | Try_lock o | Timed_lock o -> if result = 1 then acquire st tid o
  | Unlock o -> release st tid o ~cumulative:false
  | Sem_post o -> release st tid o ~cumulative:true
  | Sem_wait o -> acquire st tid o
  | Sem_try_wait o | Sem_timed_wait o -> if result = 1 then acquire st tid o
  | Ev_set o -> release st tid o ~cumulative:true
  | Ev_wait o -> acquire st tid o
  | Ev_timed_wait o -> if result = 1 then acquire st tid o
  | Ev_reset _ -> ()
  | Var_read o -> read st tid o op
  | Var_write o -> write st tid o op
  | Var_rmw o ->
    read st tid o op;
    write st tid o op
  | Spawn ->
    (* [result] is the child tid: the child starts after the parent's
       prefix; both sides tick so later events are concurrent. *)
    let child = result in
    let c = clock st tid in
    set_clock st child (VC.tick c child);
    set_clock st tid (VC.tick c tid)
  | Join u -> set_clock st tid (VC.join (clock st tid) (clock st u))
  | Yield | Sleep | Choose _ -> ()

let create () =
  let st =
    { run = None;
      clocks = Hashtbl.create 16;
      releases = Hashtbl.create 64;
      vars = Hashtbl.create 64;
      first = None;
      reads_n = 0;
      writes_n = 0;
      races_n = 0 }
  in
  { AH.exec_start =
      (fun run ->
        Hashtbl.reset st.clocks;
        Hashtbl.reset st.releases;
        Hashtbl.reset st.vars;
        st.run <- Some run);
    observe = (fun ~tid ~op ~result -> observe st ~tid ~op ~result);
    first_race = (fun () -> st.first);
    result =
      (fun () ->
        { AH.first_race = st.first;
          lock_edges = [];
          counters =
            [ ("analysis/hb/reads", st.reads_n);
              ("analysis/hb/writes", st.writes_n);
              ("analysis/hb/races", st.races_n) ] }) }

let analysis = { AH.name = "races"; create }
