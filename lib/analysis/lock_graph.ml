open Fairmc_core
module AH = Analysis_hook

type st = {
  mutable run : Engine.t option;
  held : (int, Op.obj list) Hashtbl.t;  (* per-thread held stack, exec-reset *)
  edges : (Op.obj * Op.obj, string * string) Hashtbl.t;  (* persistent *)
}

let held st tid = Option.value ~default:[] (Hashtbl.find_opt st.held tid)

let acquired st tid o =
  let h = held st tid in
  (match st.run with
   | Some run ->
     let name x = Objects.name (Engine.store run) x in
     List.iter
       (fun from ->
         if from <> o && not (Hashtbl.mem st.edges (from, o)) then
           Hashtbl.replace st.edges (from, o) (name from, name o))
       h
   | None -> ());
  Hashtbl.replace st.held tid (o :: h)

let released st tid o =
  let rec drop = function
    | [] -> []
    | x :: rest -> if x = o then rest else x :: drop rest
  in
  Hashtbl.replace st.held tid (drop (held st tid))

let observe st ~tid ~op ~result =
  match (op : Op.t) with
  | Lock o -> acquired st tid o
  | Try_lock o | Timed_lock o -> if result = 1 then acquired st tid o
  | Unlock o -> released st tid o
  | _ -> ()

let edge_list st =
  AH.dedup_edges
    (Hashtbl.fold
       (fun (f, t) (fn, tn) acc ->
         { AH.e_from = f; e_from_name = fn; e_to = t; e_to_name = tn } :: acc)
       st.edges [])

let create () =
  let st = { run = None; held = Hashtbl.create 16; edges = Hashtbl.create 64 } in
  { AH.exec_start =
      (fun run ->
        Hashtbl.reset st.held;
        st.run <- Some run);
    observe = (fun ~tid ~op ~result -> observe st ~tid ~op ~result);
    first_race = (fun () -> None);
    result =
      (fun () ->
        let edges = edge_list st in
        { AH.first_race = None;
          lock_edges = edges;
          counters =
            [ ("analysis/lockgraph/edges", List.length edges);
              ("analysis/lockgraph/cycles", List.length (AH.cycles edges)) ] }) }

let analysis = { AH.name = "lock-graph"; create }
