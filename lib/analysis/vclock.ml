(* Immutable vector clocks; trailing zero components are not materialized,
   so clocks over different thread counts compare correctly. *)

type t = int array

let empty = [||]

let get vc i = if i >= 0 && i < Array.length vc then vc.(i) else 0

let tick vc i =
  if i < 0 then invalid_arg "Vclock.tick";
  let len = max (Array.length vc) (i + 1) in
  Array.init len (fun j -> if j = i then get vc i + 1 else get vc j)

let join a b =
  let len = max (Array.length a) (Array.length b) in
  Array.init len (fun i -> max (get a i) (get b i))

let leq a b =
  let rec go i = i >= Array.length a || (a.(i) <= get b i && go (i + 1)) in
  go 0

let equal a b = leq a b && leq b a
let lt a b = leq a b && not (leq b a)

let of_list l = Array.of_list l

let pp ppf vc =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int vc)))
