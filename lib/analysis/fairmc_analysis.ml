(** Dynamic analyses over explored executions: plug any of these into
    {!Fairmc_core.Search_config.analyses}. See DESIGN.md, "Dynamic
    analyses". *)

module Vclock = Vclock
module Hb_race = Hb_race
module Lockset = Lockset
module Lock_graph = Lock_graph

(** All analyses keyed by CLI name. *)
let all =
  [ ("races", Hb_race.analysis);
    ("lockset", Lockset.analysis);
    ("lock-graph", Lock_graph.analysis) ]
