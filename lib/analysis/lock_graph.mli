(** Cross-execution lock-order graph for deadlock prediction.

    Whenever a thread acquires mutex [b] while holding mutex [a], the edge
    [a → b] is recorded. Unlike the race detectors, the edge set accumulates
    across all explored executions — held sets still reset per execution.
    A cycle in the resulting graph is a potential deadlock even if no
    explored schedule actually deadlocked (e.g. the classic AB/BA pattern
    where fork/join ordering happens to prevent the interleaving); cycles
    are extracted by {!Fairmc_core.Analysis_hook.cycles} and reported as
    [potential_deadlock_cycles]. Counters: ["analysis/lockgraph/edges"],
    ["analysis/lockgraph/cycles"] (recomputed after parallel merge). *)

val analysis : Fairmc_core.Analysis_hook.t
