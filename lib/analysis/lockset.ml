open Fairmc_core
module AH = Analysis_hook
module IS = Set.Make (Int)

type access = { a_tid : int; a_step : int; a_op : Op.t }

type phase =
  | Virgin
  | Exclusive of int
  | Shared  (* read-shared: lockset refined but violations not reported *)
  | Shared_mod

type vstate = {
  mutable phase : phase;
  mutable ls : IS.t option;  (* candidate lockset; [None] = all locks (top) *)
  mutable last : access option;  (* most recent access, for the report *)
  mutable last_other : (int, access) Hashtbl.t;  (* last access per thread *)
  mutable racy : bool;
}

type st = {
  mutable run : Engine.t option;
  held : (int, IS.t) Hashtbl.t;  (* per-thread held mutexes *)
  vars : (Op.obj, vstate) Hashtbl.t;
  mutable first : AH.race option;
  mutable accesses_n : int;
  mutable races_n : int;
}

let held st tid = Option.value ~default:IS.empty (Hashtbl.find_opt st.held tid)

let vstate st o =
  match Hashtbl.find_opt st.vars o with
  | Some v -> v
  | None ->
    let v =
      { phase = Virgin;
        ls = None;
        last = None;
        last_other = Hashtbl.create 4;
        racy = false }
    in
    Hashtbl.replace st.vars o v;
    v

let cur_step st = match st.run with Some run -> Engine.steps run - 1 | None -> 0

let report st v o ~cur =
  v.racy <- true;
  st.races_n <- st.races_n + 1;
  if st.first = None then begin
    let run = Option.get st.run in
    let rendered, decisions, length = AH.snapshot_cex run in
    (* Prior access site: the last access by a different thread (there is
       one — the variable is at least shared), smallest tid for
       determinism; fall back to the last access seen. *)
    let prior =
      match
        Hashtbl.fold
          (fun u a acc ->
            if u <> cur.a_tid then
              match acc with Some (b : access) when b.a_tid < u -> acc | _ -> Some a
            else acc)
          v.last_other None
      with
      | Some a -> a
      | None -> Option.value ~default:cur v.last
    in
    st.first <-
      Some
        { AH.detector = "lockset";
          obj = o;
          obj_name = Objects.name (Engine.store run) o;
          a_tid = prior.a_tid;
          a_step = prior.a_step;
          a_op = prior.a_op;
          b_tid = cur.a_tid;
          b_step = cur.a_step;
          b_op = cur.a_op;
          rendered;
          decisions;
          length }
  end

let intersect v h =
  v.ls <- Some (match v.ls with None -> h | Some ls -> IS.inter ls h)

let access st tid o op ~is_write =
  st.accesses_n <- st.accesses_n + 1;
  let v = vstate st o in
  if not v.racy then begin
    let h = held st tid in
    let cur = { a_tid = tid; a_step = cur_step st; a_op = op } in
    (match v.phase with
     | Virgin -> v.phase <- Exclusive tid
     | Exclusive u when u = tid -> ()
     | Exclusive _ ->
       (* Second thread: enter the shared phase and start refining. *)
       v.phase <- (if is_write then Shared_mod else Shared);
       intersect v h;
       if is_write && v.ls = Some IS.empty then report st v o ~cur
     | Shared ->
       intersect v h;
       if is_write then begin
         v.phase <- Shared_mod;
         if v.ls = Some IS.empty then report st v o ~cur
       end
     | Shared_mod ->
       intersect v h;
       if v.ls = Some IS.empty then report st v o ~cur);
    v.last <- Some cur;
    Hashtbl.replace v.last_other tid cur
  end

let observe st ~tid ~op ~result =
  match (op : Op.t) with
  | Lock o -> Hashtbl.replace st.held tid (IS.add o (held st tid))
  | Try_lock o | Timed_lock o ->
    if result = 1 then Hashtbl.replace st.held tid (IS.add o (held st tid))
  | Unlock o -> Hashtbl.replace st.held tid (IS.remove o (held st tid))
  | Var_read o -> access st tid o op ~is_write:false
  | Var_write o -> access st tid o op ~is_write:true
  | Var_rmw o -> access st tid o op ~is_write:true
  | Sem_wait _ | Sem_try_wait _ | Sem_timed_wait _ | Sem_post _ | Ev_wait _
  | Ev_timed_wait _ | Ev_set _ | Ev_reset _ | Yield | Sleep | Join _ | Spawn
  | Choose _ -> ()

let create () =
  let st =
    { run = None;
      held = Hashtbl.create 16;
      vars = Hashtbl.create 64;
      first = None;
      accesses_n = 0;
      races_n = 0 }
  in
  { AH.exec_start =
      (fun run ->
        Hashtbl.reset st.held;
        Hashtbl.reset st.vars;
        st.run <- Some run);
    observe = (fun ~tid ~op ~result -> observe st ~tid ~op ~result);
    first_race = (fun () -> st.first);
    result =
      (fun () ->
        { AH.first_race = st.first;
          lock_edges = [];
          counters =
            [ ("analysis/lockset/accesses", st.accesses_n);
              ("analysis/lockset/races", st.races_n) ] }) }

let analysis = { AH.name = "lockset"; create }
