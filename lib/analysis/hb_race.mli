(** FastTrack-style happens-before data-race detection.

    Sound and complete per observed execution: a race is reported iff two
    accesses to the same [Svar] (one of them a write) are unordered by the
    happens-before relation of the sync operations that actually executed.
    The HB edges per {!Fairmc_core.Op.t} are tabulated in DESIGN.md
    ("Dynamic analyses"); in short, mutexes, semaphores, events, [Spawn] and
    [Join] synchronize — [Svar] accesses themselves (including [rmw]) never
    do, so spin-loop "synchronization" over bare shared variables is
    reported as racy by design.

    Per variable at most one race is reported per execution (the variable is
    then poisoned for that execution); the instance keeps the first race it
    ever sees. Counters: ["analysis/hb/reads"], ["analysis/hb/writes"],
    ["analysis/hb/races"]. *)

val analysis : Fairmc_core.Analysis_hook.t
