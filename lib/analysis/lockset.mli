(** Eraser-style lockset race detection (Savage et al., SOSP 1997).

    The classic state machine per shared variable:
    virgin → exclusive(t) → shared / shared-modified, with the candidate
    lockset intersected against the accessor's held mutexes in the shared
    states; an empty lockset in shared-modified is reported as a race.

    Cheaper and stricter than happens-before: it demands a single consistent
    protecting lock, so fork/join and semaphore/event protocols it cannot
    see produce false positives (which the HB detector refutes), while
    lock-protected races missed in one interleaving are still caught — it
    does not depend on the accesses actually overlapping. See DESIGN.md for
    the soundness comparison. Counters: ["analysis/lockset/accesses"],
    ["analysis/lockset/races"]. *)

val analysis : Fairmc_core.Analysis_hook.t
