(** Vector clocks for the happens-before race detector.

    Values are immutable (operations return fresh clocks): the detector's
    hot operations are component lookups, and the algebraic laws below are
    property-tested directly on values.

    Laws (see [test/test_analysis.ml]):
    - [join] is associative, commutative, and idempotent with [empty] as
      identity — clocks form a join-semilattice under [leq];
    - [lt] (happens-before) is a strict partial order: irreflexive,
      asymmetric, transitive. *)

type t

val empty : t
(** The zero clock (identity of [join], bottom of [leq]). *)

val get : t -> int -> int
(** Component [i]; 0 beyond the allocated length. *)

val tick : t -> int -> t
(** Increment component [i]. *)

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** Pointwise [<=] — the happens-before-or-equal order. *)

val equal : t -> t -> bool

val lt : t -> t -> bool
(** [leq] and not [equal]: strict happens-before. *)

val of_list : int list -> t
(** Clock with the given components (index 0 first); for tests. *)

val pp : Format.formatter -> t -> unit
