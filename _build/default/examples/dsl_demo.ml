(* ChessLang: the litmus-program frontend. Programs like the paper's
   Figures 1 and 3 are a few lines of a Promela-flavoured language; the
   interpreter runs on the same engine, and because its thread states are
   explicit, state coverage is measured exactly.

   Run with: dune exec examples/dsl_demo.exe [file.chess ...] *)

open Fairmc_core

let check_file path =
  Format.printf "--- %s ---@." path;
  match Fairmc_dsl.load_file path with
  | exception Fairmc_dsl.Parser.Error (msg, pos) ->
    Format.printf "syntax error: %s (%a)@.@." msg Fairmc_dsl.Ast.pp_pos pos
  | exception Fairmc_dsl.Sema.Error (msg, pos) ->
    Format.printf "static error: %s (%a)@.@." msg Fairmc_dsl.Ast.pp_pos pos
  | prog ->
    let config =
      { Search_config.default with
        coverage = true;
        livelock_bound = Some 1_000;
        (* keep the demo snappy on programs with big spaces (peterson) *)
        max_executions = Some 40_000;
        time_limit = Some 10.0 }
    in
    Format.printf "%a@.@." Report.pp_summary (Checker.check ~config prog)

let () =
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] ->
      let dir =
        (* Run from the repo root or from _build. *)
        List.find_opt Sys.file_exists
          [ "examples/programs"; "../../../examples/programs" ]
      in
      (match dir with
       | Some d ->
         Sys.readdir d |> Array.to_list
         |> List.filter (fun f -> Filename.check_suffix f ".chess")
         |> List.sort compare
         |> List.map (Filename.concat d)
       | None -> [])
    | fs -> fs
  in
  if files = [] then print_endline "no .chess files found; pass paths as arguments"
  else List.iter check_file files
