(* Quickstart: the paper's Figure 3 — a two-thread spin loop.

   Thread t sets x := 1; thread u spins (with a yield, as a good samaritan
   should) until it observes the write. The program is nonterminating under
   the unfair schedule that never runs t, so a plain stateless model checker
   cannot handle it without a depth bound; the fair scheduler explores it
   completely.

   Run with: dune exec examples/quickstart.exe *)

open Fairmc_core

let fig3 =
  Program.of_threads ~name:"fig3-spinloop" (fun () ->
      let x = Sync.int_var ~name:"x" 0 in
      [ (fun () -> Sync.Svar.set x 1);
        (fun () ->
          while Sync.Svar.get x <> 1 do
            Sync.yield ()
          done) ])

let () =
  Format.printf "Checking %s with the fair scheduler (DFS):@." "fig3-spinloop";
  let report = Checker.check ~config:{ Search_config.default with coverage = true } fig3 in
  Format.printf "%a@.@." Report.pp report;

  Format.printf "Same program, unfair DFS with depth bound 20:@.";
  let report =
    Checker.check ~config:{ (Search_config.unfair_dfs ~depth_bound:20) with coverage = true } fig3
  in
  Format.printf "%a@." Report.pp report
