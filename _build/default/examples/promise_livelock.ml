(* The paper's Figure 8: a data-parallel promise library whose optimized
   await caches the completion flag in a local and forgets to re-read it.
   Every loop iteration sleeps — a yield — so the resulting infinite
   execution is *fair*: exactly the class of bug (a livelock) that only fair
   stateless model checking detects (outcome 3 of Section 2).

   Run with: dune exec examples/promise_livelock.exe *)

open Fairmc_core
module W = Fairmc_workloads

let () =
  let config = { Search_config.default with livelock_bound = Some 800; tail_window = 12 } in
  (* The buggy library. *)
  let buggy = W.Promise.program W.Promise.Stale_cache in
  Format.printf "checking %s ...@." buggy.Program.name;
  (match (Checker.check ~config buggy).verdict with
   | Report.Divergence { kind = Report.Fair_nontermination; cex } ->
     Format.printf "livelock found (fair nontermination) — the consumer spins forever:@.";
     let lines = String.split_on_char '\n' cex.rendered in
     List.iteri (fun i l -> if i < 6 then print_endline l) lines
   | v -> Format.printf "unexpected verdict: %s@." (Report.verdict_name v));
  Format.printf "@.";
  (* The corrected library (re-reads the flag): verified. *)
  let fixed = W.Promise.program W.Promise.Spin_then_sleep in
  Format.printf "checking %s ...@." fixed.Program.name;
  Format.printf "%a@.@." Report.pp_summary (Checker.check ~config fixed);
  (* The library in its intended data-parallel shape. *)
  let pipeline = W.Promise.pipeline_program ~width:2 W.Promise.Blocking in
  Format.printf "checking %s ...@." pipeline.Program.name;
  Format.printf "%a@." Report.pp_summary
    (Checker.check
       ~config:{ config with mode = Search_config.Context_bounded 2 }
       pipeline)
