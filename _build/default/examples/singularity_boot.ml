(* "We have successfully booted the Singularity operating system under the
   control of CHESS" — the paper's headline applicability result. This
   example boots Singularity-lite (a kernel thread that dynamically spawns a
   nameserver, system services, drivers and applications connected by
   message channels, then performs an orderly shutdown) under the fair
   checker: 14 threads, hundreds of synchronization operations per
   execution, every boot driven to completion by fairness despite the
   nonterminating service loops.

   Run with: dune exec examples/singularity_boot.exe *)

open Fairmc_core
module W = Fairmc_workloads

let () =
  let prog = W.Singularity.program ~services:8 ~apps:4 ~requests:1 () in
  Format.printf "booting %s under the fair checker (cb=1, 1000 schedules)...@."
    prog.Program.name;
  let report =
    Checker.check
      ~config:
        { Search_config.default with
          mode = Search_config.Context_bounded 1;
          max_executions = Some 1_000;
          livelock_bound = Some 50_000;
          max_steps = 100_000 }
      prog
  in
  Format.printf "%a@." Report.pp_summary report;
  Format.printf "threads: %d, sync ops per boot: %d@." report.stats.max_threads
    report.stats.sync_ops_per_exec;
  if not (Report.found_error report) then
    Format.printf "no safety violations, deadlocks, or livelocks across %d boots@."
      report.stats.executions
