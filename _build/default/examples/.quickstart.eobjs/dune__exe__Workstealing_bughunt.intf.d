examples/workstealing_bughunt.mli:
