examples/promise_livelock.ml: Checker Fairmc_core Fairmc_workloads Format List Program Report Search_config String
