examples/dsl_demo.mli:
