examples/dsl_demo.ml: Array Checker Fairmc_core Fairmc_dsl Filename Format List Report Search_config Sys
