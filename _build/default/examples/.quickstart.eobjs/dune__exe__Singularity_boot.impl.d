examples/singularity_boot.ml: Checker Fairmc_core Fairmc_workloads Format Program Report Search_config
