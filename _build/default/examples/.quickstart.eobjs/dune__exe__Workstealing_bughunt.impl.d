examples/workstealing_bughunt.ml: Checker Engine Fairmc_core Fairmc_workloads Format Program Report Search Search_config
