examples/quickstart.ml: Checker Fairmc_core Format Program Report Search_config Sync
