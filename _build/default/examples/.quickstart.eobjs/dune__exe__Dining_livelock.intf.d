examples/dining_livelock.mli:
