examples/singularity_boot.mli:
