examples/quickstart.mli:
