examples/promise_livelock.mli:
