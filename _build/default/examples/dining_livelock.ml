(* The paper's motivating example (Figure 1): two dining philosophers with
   try-acquire retry loops. A conventional stateless model checker can only
   depth-bound this program and never sees the livelock; the fair scheduler
   prunes the unfair spins, drives the search into the fair retry cycle, and
   reports the divergence with its trace.

   Run with: dune exec examples/dining_livelock.exe *)

open Fairmc_core
module W = Fairmc_workloads

let check_variant variant =
  let prog = W.Dining.program ~n:2 variant in
  Format.printf "--- %s ---@." prog.Program.name;
  let config =
    { Search_config.default with livelock_bound = Some 1_000; tail_window = 24 }
  in
  let report = Checker.check ~config prog in
  (match report.verdict with
   | Report.Divergence { kind; cex } ->
     Format.printf "%s after %d executions; last steps of the divergence:@."
       (Report.verdict_name report.verdict)
       report.stats.executions;
     ignore kind;
     (* Show just the repeating pattern at the end of the trace. *)
     let lines = String.split_on_char '\n' cex.rendered in
     let tail = List.filteri (fun i _ -> i >= List.length lines - 8) lines in
     List.iter print_endline tail
   | _ -> Format.printf "%a@." Report.pp_summary report);
  Format.printf "@."

let () =
  (* Figure 1 verbatim: the retry loops never yield, so the divergence the
     checker finds first is a good-samaritan violation (a philosopher
     spinning without yielding while starving the other). *)
  check_variant W.Dining.Try_acquire;
  (* The same program written by a good samaritan (yield on the retry path):
     now the divergence is a *fair* cycle — the classic livelock, which only
     a fair scheduler can distinguish from exploration noise. *)
  check_variant W.Dining.Try_acquire_yield;
  (* And the fixed protocol (ordered fork acquisition) verifies outright. *)
  check_variant W.Dining.Ordered
