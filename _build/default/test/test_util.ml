(* Unit and property tests for the utility layer: bitsets (checked against a
   sorted-list model), the splitmix RNG, and FNV hashing. *)

module B = Fairmc_util.Bitset
module Rng = Fairmc_util.Rng
module Fnv = Fairmc_util.Fnv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let elt = QCheck.Gen.int_bound (B.max_capacity - 1)
let set_gen = QCheck.Gen.(map B.of_list (list_size (int_bound 12) elt))
let set_arb = QCheck.make ~print:(fun s -> Format.asprintf "%a" B.pp s) set_gen
let pair_arb = QCheck.pair set_arb set_arb

let model s = B.elements s

let qprops =
  [ QCheck.Test.make ~name:"bitset union = list union" pair_arb (fun (a, b) ->
        model (B.union a b)
        = List.sort_uniq compare (model a @ model b));
    QCheck.Test.make ~name:"bitset inter = list inter" pair_arb (fun (a, b) ->
        model (B.inter a b) = List.filter (fun x -> B.mem x b) (model a));
    QCheck.Test.make ~name:"bitset diff = list diff" pair_arb (fun (a, b) ->
        model (B.diff a b) = List.filter (fun x -> not (B.mem x b)) (model a));
    QCheck.Test.make ~name:"add then mem" (QCheck.pair set_arb (QCheck.make elt))
      (fun (s, x) -> B.mem x (B.add x s));
    QCheck.Test.make ~name:"remove then not mem" (QCheck.pair set_arb (QCheck.make elt))
      (fun (s, x) -> not (B.mem x (B.remove x s)));
    QCheck.Test.make ~name:"cardinal = length of elements" set_arb (fun s ->
        B.cardinal s = List.length (model s));
    QCheck.Test.make ~name:"subset iff diff empty" pair_arb (fun (a, b) ->
        B.subset a b = B.is_empty (B.diff a b));
    QCheck.Test.make ~name:"nth enumerates in order" set_arb (fun s ->
        List.mapi (fun i _ -> B.nth s i) (model s) = model s);
    QCheck.Test.make ~name:"fold visits each element once" set_arb (fun s ->
        B.fold (fun _ acc -> acc + 1) s 0 = B.cardinal s) ]

let unit_tests =
  [ Alcotest.test_case "empty and full" `Quick (fun () ->
        check "empty is empty" true (B.is_empty B.empty);
        check_int "full 5 cardinal" 5 (B.cardinal (B.full 5));
        check "full 0 = empty" true (B.equal (B.full 0) B.empty);
        check "mem in full" true (B.mem 4 (B.full 5));
        check "not mem outside full" false (B.mem 5 (B.full 5)));
    Alcotest.test_case "min_elt and choose" `Quick (fun () ->
        check_int "min of {3,7}" 3 (B.min_elt (B.of_list [ 7; 3 ]));
        check "choose empty" true (B.choose B.empty = None);
        Alcotest.check_raises "min_elt empty" Not_found (fun () ->
            ignore (B.min_elt B.empty)));
    Alcotest.test_case "out-of-range elements rejected" `Quick (fun () ->
        (try
           ignore (B.add (B.max_capacity + 1) B.empty);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        try
          ignore (B.singleton (-1));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    Alcotest.test_case "rng determinism" `Quick (fun () ->
        let a = Rng.make 42L and b = Rng.make 42L in
        for _ = 1 to 100 do
          check "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
        done);
    Alcotest.test_case "rng bounds" `Quick (fun () ->
        let r = Rng.make 7L in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          check "in range" true (v >= 0 && v < 17)
        done;
        Alcotest.check_raises "nonpositive bound" (Invalid_argument "Rng.int")
          (fun () -> ignore (Rng.int r 0)));
    Alcotest.test_case "rng split independence" `Quick (fun () ->
        let r = Rng.make 1L in
        let s = Rng.split r in
        check "split differs from parent" true (Rng.next_int64 s <> Rng.next_int64 r));
    Alcotest.test_case "rng copy preserves state" `Quick (fun () ->
        let r = Rng.make 5L in
        ignore (Rng.next_int64 r);
        let c = Rng.copy r in
        check "copy same next" true (Rng.next_int64 c = Rng.next_int64 r));
    Alcotest.test_case "fnv basics" `Quick (fun () ->
        check "string hash differs" true (Fnv.string Fnv.init "a" <> Fnv.string Fnv.init "b");
        check "int order matters" true
          (Fnv.int_list Fnv.init [ 1; 2 ] <> Fnv.int_list Fnv.init [ 2; 1 ]);
        check "negative ints hash distinctly" true (Fnv.int Fnv.init (-1) <> Fnv.int Fnv.init 1);
        check_int "hex width" 16 (String.length (Fnv.to_hex (Fnv.string Fnv.init "x"))));
    Alcotest.test_case "fnv stable across calls" `Quick (fun () ->
        check "deterministic" true
          (Fnv.string (Fnv.int Fnv.init 3) "abc" = Fnv.string (Fnv.int Fnv.init 3) "abc")) ]

let suite = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
