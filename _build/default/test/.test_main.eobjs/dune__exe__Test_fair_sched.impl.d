test/test_fair_sched.ml: Alcotest Fairmc_core Fairmc_util Int64 List QCheck QCheck_alcotest
