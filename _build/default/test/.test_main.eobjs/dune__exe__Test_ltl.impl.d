test/test_ltl.ml: Alcotest Fairmc_ltl Fairmc_util Format List QCheck QCheck_alcotest
