test/test_theorems.ml: Alcotest Engine Fair_sched Fairmc_core Fairmc_ltl Fairmc_statecap Fairmc_util Fairmc_workloads Fun List Printf Program Report Search Search_config Trace
