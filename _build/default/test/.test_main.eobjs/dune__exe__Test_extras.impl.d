test/test_extras.ml: Alcotest Array Checker Fairmc_core Fairmc_workloads Filename List Printf Program Report Repro Result Search Search_config Sync Sync_extras Sys
