test/test_checker.ml: Alcotest Checker Fairmc_core Fairmc_util Fairmc_workloads Format List Op Report Search_config String Trace
