test/test_dsl.ml: Alcotest Engine Fairmc_core Fairmc_dsl Filename List Printexc Report Search Search_config String Sys
