test/test_sleepsets.ml: Alcotest Fairmc_core Fairmc_workloads Indep List Op QCheck QCheck_alcotest Report Search Search_config
