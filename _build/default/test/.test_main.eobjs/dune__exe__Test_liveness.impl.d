test/test_liveness.ml: Alcotest Fairmc_core Fairmc_workloads List Program Report Search Search_config String
