test/test_statecap.ml: Alcotest Fairmc_core Fairmc_statecap Fairmc_util Fairmc_workloads Hashtbl List Program QCheck QCheck_alcotest Report Search Search_config
