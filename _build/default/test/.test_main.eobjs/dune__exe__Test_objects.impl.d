test/test_objects.ml: Alcotest Fairmc_core Fairmc_util
