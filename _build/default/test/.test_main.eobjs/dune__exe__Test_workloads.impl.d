test/test_workloads.ml: Alcotest Checker Fairmc_core Fairmc_workloads List Program Report Search Search_config Sync
