test/test_util.ml: Alcotest Fairmc_util Format List QCheck QCheck_alcotest String
