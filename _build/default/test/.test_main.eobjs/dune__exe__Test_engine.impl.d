test/test_engine.ml: Alcotest Engine Fairmc_core Fairmc_util Fairmc_workloads Int64 List Op Program QCheck QCheck_alcotest Sync Trace
