test/test_sync.ml: Alcotest Fairmc_core Fairmc_workloads Program Report Search Search_config Sync
