test/test_search.ml: Alcotest Fairmc_core Fairmc_workloads List Printf Report Search Search_config
