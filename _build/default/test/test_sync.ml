(* The user-facing Sync API, exercised through tiny checked programs. *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)

let run_one name threads =
  let p = Program.of_threads ~name (fun () -> threads ()) in
  Search.run { Search_config.default with max_executions = Some 1 } p

let verify name threads =
  let p = Program.of_threads ~name (fun () -> threads ()) in
  Search.run { Search_config.default with livelock_bound = Some 2_000 } p

let suite =
  [ Alcotest.test_case "svar update and cas semantics" `Quick (fun () ->
        let r =
          run_one "svar" (fun () ->
              let x = Sync.int_var 10 in
              [ (fun () ->
                  Sync.check (Sync.Svar.update x (fun v -> v * 2) = 10) "update returns old";
                  Sync.check (Sync.Svar.get x = 20) "update applied";
                  Sync.check (Sync.Svar.cas x ~expected:20 7) "cas succeeds on match";
                  Sync.check (not (Sync.Svar.cas x ~expected:20 9)) "cas fails on mismatch";
                  Sync.check (Sync.Svar.get x = 7) "failed cas leaves value";
                  Sync.check (Sync.Svar.incr x = 7) "incr returns old";
                  Sync.check (Sync.Svar.get x = 8) "incr applied") ])
        in
        check "no error" false (Report.found_error r));
    Alcotest.test_case "interlocked increments never lose updates" `Quick (fun () ->
        let r =
          verify "interlocked" (fun () ->
              let x = Sync.int_var 0 in
              let bump () = ignore (Sync.Svar.incr x) in
              [ bump;
                bump;
                (fun () ->
                  Sync.join 0;
                  Sync.join 1;
                  Sync.check (Sync.Svar.get x = 2) "interlocked increment lost") ])
        in
        check "verified" true (r.verdict = Report.Verified));
    Alcotest.test_case "plain read-modify-write does lose updates" `Quick (fun () ->
        let r = verify "racy" (fun () ->
            match (Fairmc_workloads.Litmus.counter_race ~increments:1).Program.boot () with
            | { threads; _ } -> threads)
        in
        check "found the lost update" true
          (match r.verdict with Report.Safety_violation _ -> true | _ -> false));
    Alcotest.test_case "events signal across threads" `Quick (fun () ->
        let r =
          verify "events" (fun () ->
              let e = Sync.Event.create ~auto:true () in
              let x = Sync.int_var 0 in
              [ (fun () ->
                  Sync.Svar.set x 1;
                  Sync.Event.set e);
                (fun () ->
                  Sync.Event.wait e;
                  Sync.check (Sync.Svar.get x = 1) "event ordered before write") ])
        in
        check "verified" true (r.verdict = Report.Verified));
    Alcotest.test_case "semaphore as n-resource pool" `Quick (fun () ->
        let r =
          verify "sem-pool" (fun () ->
              let s = Sync.Semaphore.create 2 in
              let inside = Sync.int_var 0 in
              let worker () =
                Sync.Semaphore.wait s;
                let n = Sync.Svar.incr inside in
                Sync.check (n < 2) "more than 2 inside the pool";
                ignore (Sync.Svar.update inside (fun v -> v - 1));
                Sync.Semaphore.post s
              in
              [ worker; worker; worker ])
        in
        check "verified" true (r.verdict = Report.Verified));
    Alcotest.test_case "sync calls outside a run are rejected" `Quick (fun () ->
        try
          Sync.yield ();
          Alcotest.fail "yield outside an execution accepted"
        with Failure _ -> ());
    Alcotest.test_case "choose validates its bound" `Quick (fun () ->
        let r =
          run_one "choose0" (fun () ->
              [ (fun () -> ignore (Sync.choose 0)) ])
        in
        check "invalid choose is a failure" true (Report.found_error r));
    Alcotest.test_case "self returns the running tid" `Quick (fun () ->
        let r =
          run_one "self" (fun () ->
              [ (fun () ->
                  Sync.yield ();
                  Sync.check (Sync.self () = 0) "tid 0");
                (fun () ->
                  Sync.yield ();
                  Sync.check (Sync.self () = 1) "tid 1") ])
        in
        check "no error" false (Report.found_error r));
    Alcotest.test_case "Sync.at refines state signatures" `Quick (fun () ->
        (* Two control points with identical pending ops and data collapse
           without a region marker and separate with one. *)
        let mk with_marker =
          Program.of_threads ~name:"regions" (fun () ->
              let x = Sync.int_var 0 in
              [ (fun () ->
                  Sync.Svar.set x 0;
                  Sync.yield ();
                  if with_marker then Sync.at 1;
                  Sync.Svar.set x 0;
                  Sync.yield ()) ])
        in
        let states p =
          (Search.run { Search_config.default with coverage = true } p).stats.states
        in
        check "marker splits the aliased states" true (states (mk true) > states (mk false)));
    Alcotest.test_case "join on an unknown tid deadlocks rather than crashes" `Quick
      (fun () ->
        (* Joining a never-created tid is treated as joining an unfinished
           thread; the run deadlocks and is reported as such. *)
        let r = verify "bad-join" (fun () -> [ (fun () -> Sync.join 7) ]) in
        check "deadlock" true
          (match r.verdict with Report.Deadlock _ -> true | _ -> false)) ]
