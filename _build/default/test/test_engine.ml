(* Engine tests: execution control, pending operations, spawn/join, data
   choices, failure capture, determinism of replay, signatures, op
   accounting. *)

open Fairmc_core
module B = Fairmc_util.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prog name threads = Program.of_threads ~name (fun () -> threads ())

(* Drive a run with an explicit schedule; return the run. *)
let drive p schedule =
  let run = Engine.start p in
  List.iter (fun tid -> Engine.step run ~tid ~alt:0) schedule;
  run

(* Random schedules replay to identical states: the stateless-checking
   determinism contract, as a property over arbitrary walks. *)
let qprops =
  [ QCheck.Test.make ~name:"random walks replay deterministically" ~count:40
      QCheck.(int_bound 10_000)
      (fun seed ->
        let prog = Fairmc_workloads.Wsq.program ~stealers:1 Fairmc_workloads.Wsq.Correct in
        let rng = Fairmc_util.Rng.make (Int64.of_int seed) in
        (* One random walk records decisions... *)
        let run = Engine.start prog in
        let decisions = ref [] in
        let steps = ref 0 in
        while
          (not (Engine.all_finished run))
          && Engine.failure run = None
          && (not (B.is_empty (Engine.enabled_set run)))
          && !steps < 200
        do
          let es = Engine.enabled_set run in
          let tid = B.nth es (Fairmc_util.Rng.int rng (B.cardinal es)) in
          let alt =
            let n = Engine.alternatives run tid in
            if n = 1 then 0 else Fairmc_util.Rng.int rng n
          in
          Engine.step run ~tid ~alt;
          decisions := (tid, alt) :: !decisions;
          incr steps
        done;
        let sig1 = Engine.state_signature run in
        let trace1 = Trace.decisions (Engine.trace run) in
        Engine.stop run;
        (* ... which replays to the same signature and trace. *)
        let run2 = Engine.start prog in
        List.iter (fun (tid, alt) -> Engine.step run2 ~tid ~alt) (List.rev !decisions);
        let sig2 = Engine.state_signature run2 in
        let trace2 = Trace.decisions (Engine.trace run2) in
        Engine.stop run2;
        sig1 = sig2 && trace1 = trace2) ]

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
  @ [ Alcotest.test_case "threads park at their first operation" `Quick (fun () ->
        let p =
          prog "park" (fun () ->
              let x = Sync.int_var 0 in
              [ (fun () -> Sync.Svar.set x 1); (fun () -> Sync.yield ()) ])
        in
        let run = Engine.start p in
        check_int "two threads" 2 (Engine.nthreads run);
        check "t0 pending write" true
          (match Engine.pending run 0 with Some (Op.Var_write _) -> true | _ -> false);
        check "t1 pending yield" true (Engine.pending run 1 = Some Op.Yield);
        check "both enabled" true (B.equal (Engine.enabled_set run) (B.full 2));
        check "t1 would yield" true (Engine.would_yield run 1);
        check "t0 would not" false (Engine.would_yield run 0);
        Engine.stop run);
    Alcotest.test_case "stepping runs to the next operation" `Quick (fun () ->
        let p =
          prog "steps" (fun () ->
              let x = Sync.int_var 0 in
              [ (fun () ->
                  Sync.Svar.set x 1;
                  Sync.Svar.set x 2) ])
        in
        let run = drive p [ 0 ] in
        check "still parked after one step" true (Engine.pending run 0 <> None);
        Engine.step run ~tid:0 ~alt:0;
        check "finished after both writes" true (Engine.all_finished run);
        check_int "steps counted" 2 (Engine.steps run);
        Engine.stop run);
    Alcotest.test_case "blocking lock disables the waiter" `Quick (fun () ->
        let p =
          prog "block" (fun () ->
              let m = Sync.Mutex.create () in
              [ (fun () ->
                  Sync.Mutex.lock m;
                  Sync.Mutex.unlock m);
                (fun () ->
                  Sync.Mutex.lock m;
                  Sync.Mutex.unlock m) ])
        in
        let run = drive p [ 0 ] in
        (* t0 holds the mutex, parked at unlock; t1 pending lock: disabled. *)
        check "t1 disabled" true (B.equal (Engine.enabled_set run) (B.singleton 0));
        Engine.step run ~tid:0 ~alt:0;
        check "t1 re-enabled after unlock" true (B.mem 1 (Engine.enabled_set run));
        Engine.stop run);
    Alcotest.test_case "self-deadlock on recursive lock" `Quick (fun () ->
        let p =
          prog "recursive" (fun () ->
              let m = Sync.Mutex.create () in
              [ (fun () ->
                  Sync.Mutex.lock m;
                  Sync.Mutex.lock m) ])
        in
        let run = drive p [ 0 ] in
        check "deadlocked" true (Engine.deadlocked run);
        Engine.stop run);
    Alcotest.test_case "spawn creates a live thread; join blocks" `Quick (fun () ->
        let p =
          prog "spawn" (fun () ->
              let x = Sync.int_var 0 in
              [ (fun () ->
                  let child = Sync.spawn (fun () -> Sync.Svar.set x 41) in
                  Sync.join child;
                  Sync.check (Sync.Svar.get x = 41) "child write not visible") ])
        in
        let run = drive p [ 0 ] in
        check_int "child allocated" 2 (Engine.nthreads run);
        (* Parent parked at join, child parked at its write; join disabled. *)
        check "join disabled while child lives" false (B.mem 0 (Engine.enabled_set run));
        Engine.step run ~tid:1 ~alt:0;
        check "join enabled after child finishes" true (B.mem 0 (Engine.enabled_set run));
        Engine.step run ~tid:0 ~alt:0;
        Engine.step run ~tid:0 ~alt:0;
        check "no failure" true (Engine.failure run = None);
        check "all done" true (Engine.all_finished run);
        Engine.stop run);
    Alcotest.test_case "spawned spawn bodies are not clobbered" `Quick (fun () ->
        (* Two threads both spawn: each parent's captured body must be its
           own even when the spawns interleave. *)
        let p =
          prog "two-spawns" (fun () ->
              let a = Sync.int_var 0 and b = Sync.int_var 0 in
              [ (fun () -> ignore (Sync.spawn (fun () -> Sync.Svar.set a 1)));
                (fun () -> ignore (Sync.spawn (fun () -> Sync.Svar.set b 2))) ])
        in
        (* Park both at Spawn, then run them alternately. *)
        let run = Engine.start p in
        Engine.step run ~tid:1 ~alt:0;
        Engine.step run ~tid:0 ~alt:0;
        (* children: tid 2 (b-writer), tid 3 (a-writer) *)
        Engine.step run ~tid:2 ~alt:0;
        Engine.step run ~tid:3 ~alt:0;
        check "all finished" true (Engine.all_finished run);
        check "no failure" true (Engine.failure run = None);
        Engine.stop run);
    Alcotest.test_case "choose exposes alternatives" `Quick (fun () ->
        let p =
          prog "choose" (fun () ->
              let x = Sync.int_var 0 in
              [ (fun () -> Sync.Svar.set x (Sync.choose 3)) ])
        in
        let run = Engine.start p in
        check_int "three alternatives" 3 (Engine.alternatives run 0);
        Engine.step run ~tid:0 ~alt:2;
        (* The chosen value flows into the program. *)
        Engine.step run ~tid:0 ~alt:0;
        check "finished" true (Engine.all_finished run);
        Engine.stop run);
    Alcotest.test_case "assertion failures are captured with the thread" `Quick (fun () ->
        let p =
          prog "fail" (fun () ->
              [ (fun () -> Sync.yield ());
                (fun () ->
                  Sync.yield ();
                  Sync.fail "boom") ])
        in
        let run = drive p [ 1 ] in
        (match Engine.failure run with
         | Some (1, Engine.Assertion "boom") -> ()
         | _ -> Alcotest.fail "expected assertion failure on thread 1");
        Engine.stop run);
    Alcotest.test_case "uncaught exceptions are captured" `Quick (fun () ->
        let p = prog "exn" (fun () -> [ (fun () -> ignore (List.hd [])) ]) in
        let run = Engine.start p in
        (match Engine.failure run with
         | Some (0, Engine.Uncaught _) -> ()
         | _ -> Alcotest.fail "expected uncaught exception");
        Engine.stop run);
    Alcotest.test_case "sync misuse is captured" `Quick (fun () ->
        let p =
          prog "misuse" (fun () ->
              let m = Sync.Mutex.create () in
              [ (fun () -> Sync.Mutex.unlock m) ])
        in
        let run = Engine.start p in
        Engine.step run ~tid:0 ~alt:0;
        (match Engine.failure run with
         | Some (0, Engine.Sync_misuse _) -> ()
         | _ -> Alcotest.fail "expected sync misuse");
        Engine.stop run);
    Alcotest.test_case "deterministic replay: same schedule, same signature" `Quick (fun () ->
        let p = Fairmc_workloads.Wsq.program ~stealers:1 Fairmc_workloads.Wsq.Correct in
        let schedule = [ 0; 0; 0; 1; 0; 1; 1; 0; 0 ] in
        let sig_of () =
          let run = drive p schedule in
          let s = Engine.state_signature run in
          Engine.stop run;
          s
        in
        check "signatures equal across re-executions" true (sig_of () = sig_of ()));
    Alcotest.test_case "trace records decisions and enabled sets" `Quick (fun () ->
        let p =
          prog "trace" (fun () ->
              let x = Sync.int_var 0 in
              [ (fun () -> Sync.Svar.set x 1); (fun () -> Sync.yield ()) ])
        in
        let run = drive p [ 1; 0 ] in
        let evs = Trace.events (Engine.trace run) in
        check_int "two events" 2 (List.length evs);
        let e0 = List.nth evs 0 in
        check_int "first event tid" 1 e0.Trace.tid;
        check "first event yielded" true e0.Trace.yielded;
        check "enabled set recorded" true (B.equal e0.Trace.enabled (B.full 2));
        check "decisions round-trip" true
          (Trace.decisions (Engine.trace run) = [ (1, 0); (0, 0) ]);
        Engine.stop run);
    Alcotest.test_case "sync and var op accounting" `Quick (fun () ->
        let p =
          prog "count" (fun () ->
              let m = Sync.Mutex.create () in
              let x = Sync.int_var 0 in
              [ (fun () ->
                  Sync.Mutex.lock m;
                  Sync.Svar.set x 1;
                  Sync.Mutex.unlock m;
                  Sync.yield ()) ])
        in
        let run = drive p [ 0; 0; 0; 0 ] in
        check_int "3 sync ops (lock, unlock, yield)" 3 (Engine.sync_ops run);
        check_int "1 var op" 1 (Engine.var_ops run);
        Engine.stop run);
    Alcotest.test_case "stepping a disabled or finished thread is rejected" `Quick (fun () ->
        let p =
          prog "invalid" (fun () ->
              let m = Sync.Mutex.create () in
              [ (fun () -> Sync.Mutex.lock m); (fun () -> Sync.Mutex.lock m) ])
        in
        let run = drive p [ 0 ] in
        check "t0 finished" true (Engine.pending run 0 = None);
        (try
           Engine.step run ~tid:0 ~alt:0;
           Alcotest.fail "stepped a finished thread"
         with Invalid_argument _ -> ());
        (try
           Engine.step run ~tid:1 ~alt:0;
           Alcotest.fail "stepped a disabled thread"
         with Invalid_argument _ -> ());
        Engine.stop run);
    Alcotest.test_case "empty program terminates immediately" `Quick (fun () ->
        let p = prog "empty" (fun () -> []) in
        let run = Engine.start p in
        check "finished" true (Engine.all_finished run);
        check "not deadlocked" false (Engine.deadlocked run);
        Engine.stop run) ]
