(* LTL over lassos: base cases, the classic identities as qcheck properties
   (expansion laws, dualities), and the paper's SF/GS formulas on
   hand-constructed words. *)

module L = Fairmc_ltl.Ltl

let check = Alcotest.(check bool)

(* A labelling over propositions "p" and "q" encoded as two booleans. *)
let lbl (p, q) name = if name = "p" then p else if name = "q" then q else false

let mk prefix cycle =
  L.lasso ~prefix:(List.map lbl prefix) ~cycle:(List.map lbl cycle)

let p = L.prop "p"
let q = L.prop "q"

(* Random formula generator over "p", "q". *)
let formula_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneofl [ L.True; L.False; p; q ]
        else
          let sub = self (n / 2) in
          oneof
            [ map (fun a -> L.Not a) sub;
              map2 (fun a b -> L.And (a, b)) sub sub;
              map2 (fun a b -> L.Or (a, b)) sub sub;
              map (fun a -> L.Next a) sub;
              map2 (fun a b -> L.Until (a, b)) sub sub;
              map (fun a -> L.Globally a) sub;
              map (fun a -> L.Finally a) sub ]))

let word_gen =
  QCheck.Gen.(
    pair
      (list_size (int_bound 4) (pair bool bool))
      (list_size (int_range 1 4) (pair bool bool)))

let arb =
  QCheck.make
    ~print:(fun (f, _) -> Format.asprintf "%a" L.pp f)
    QCheck.Gen.(pair formula_gen word_gen)

(* Evaluate a formula at suffix position k by rotating the lasso. *)
let eval_at (prefix, cycle) k f =
  let plen = List.length prefix and clen = List.length cycle in
  let at i =
    if i < plen then List.nth prefix i else List.nth cycle ((i - plen) mod clen)
  in
  let rec drop_prefix i = if i >= k then [] else at i :: drop_prefix (i + 1) in
  ignore drop_prefix;
  (* suffix word: positions k.. — still ultimately periodic with the same
     cycle; the new prefix is positions k .. max(k, plen)-1 plus cycle
     rotation. *)
  let new_prefix = List.init (max 0 (plen - k)) (fun i -> at (k + i)) in
  let rot = if k <= plen then 0 else (k - plen) mod clen in
  let new_cycle = List.init clen (fun i -> List.nth cycle ((rot + i) mod clen)) in
  L.eval (L.lasso ~prefix:(List.map lbl new_prefix) ~cycle:(List.map lbl new_cycle)) f

let qprops =
  [ QCheck.Test.make ~name:"until expansion law" ~count:300 arb (fun (f, (pre, cyc)) ->
        ignore f;
        let u = L.Until (p, q) in
        let expansion = L.Or (q, L.And (p, L.Next u)) in
        eval_at (pre, cyc) 0 u = eval_at (pre, cyc) 0 expansion);
    QCheck.Test.make ~name:"globally expansion law" ~count:300 arb (fun (f, (pre, cyc)) ->
        ignore f;
        let g = L.Globally p in
        let expansion = L.And (p, L.Next g) in
        eval_at (pre, cyc) 0 g = eval_at (pre, cyc) 0 expansion);
    QCheck.Test.make ~name:"finally-globally duality" ~count:300 arb
      (fun (f, (pre, cyc)) ->
        eval_at (pre, cyc) 0 (L.Finally f) = not (eval_at (pre, cyc) 0 (L.Globally (L.Not f))));
    QCheck.Test.make ~name:"next commutes with negation" ~count:300 arb
      (fun (f, (pre, cyc)) ->
        eval_at (pre, cyc) 0 (L.Next (L.Not f)) = eval_at (pre, cyc) 0 (L.Not (L.Next f)));
    QCheck.Test.make ~name:"release duality" ~count:300 arb (fun (f, (pre, cyc)) ->
        ignore f;
        eval_at (pre, cyc) 0 (L.Release (p, q))
        = not (eval_at (pre, cyc) 0 (L.Until (L.Not p, L.Not q)))) ]

let unit_tests =
  [ Alcotest.test_case "propositions and booleans" `Quick (fun () ->
        let l = mk [ (true, false) ] [ (false, true) ] in
        check "p at 0" true (L.eval l p);
        check "q not at 0" false (L.eval l q);
        check "true" true (L.eval l L.True);
        check "false" false (L.eval l L.False));
    Alcotest.test_case "GF distinguishes cycle from prefix" `Quick (fun () ->
        (* p holds only in the prefix: GF p is false; q holds in the cycle:
           GF q is true. *)
        let l = mk [ (true, false) ] [ (false, true); (false, false) ] in
        check "GF p false" false (L.eval l (L.gf p));
        check "GF q true" true (L.eval l (L.gf q));
        check "FG not-p true" true (L.eval l (L.fg (L.not_ p))));
    Alcotest.test_case "until requires the left operand to hold" `Quick (fun () ->
        let l = mk [ (true, false); (false, false) ] [ (false, true) ] in
        (* p U q fails: p breaks at position 1 before q at position 2. *)
        check "p U q" false (L.eval l (L.Until (p, q)));
        check "true U q" true (L.eval l (L.Until (L.True, q))));
    Alcotest.test_case "empty cycle rejected" `Quick (fun () ->
        try
          ignore (L.lasso ~prefix:[] ~cycle:[]);
          Alcotest.fail "accepted empty cycle"
        with Invalid_argument _ -> ());
    Alcotest.test_case "strong fairness on hand-built schedules" `Quick (fun () ->
        let tids = [ 0; 1 ] in
        let step ~enabled ~sched ~yielded =
          L.labels_of_step
            ~enabled:(Fairmc_util.Bitset.of_list enabled)
            ~sched ~yielded
        in
        (* Alternating schedule of two always-enabled threads: fair. *)
        let fair =
          L.lasso ~prefix:[]
            ~cycle:
              [ step ~enabled:[ 0; 1 ] ~sched:0 ~yielded:false;
                step ~enabled:[ 0; 1 ] ~sched:1 ~yielded:false ]
        in
        check "alternation is fair" true (L.eval fair (L.strong_fairness ~tids));
        (* Thread 1 enabled forever but never scheduled: unfair. *)
        let unfair =
          L.lasso ~prefix:[] ~cycle:[ step ~enabled:[ 0; 1 ] ~sched:0 ~yielded:false ]
        in
        check "starvation is unfair" false (L.eval unfair (L.strong_fairness ~tids));
        (* Thread 1 never enabled: vacuously fair. *)
        let vacuous =
          L.lasso ~prefix:[] ~cycle:[ step ~enabled:[ 0 ] ~sched:0 ~yielded:false ]
        in
        check "disabled thread does not break fairness" true
          (L.eval vacuous (L.strong_fairness ~tids)));
    Alcotest.test_case "good samaritan on hand-built schedules" `Quick (fun () ->
        let tids = [ 0 ] in
        let step yielded =
          L.labels_of_step ~enabled:(Fairmc_util.Bitset.singleton 0) ~sched:0 ~yielded
        in
        let well_behaved = L.lasso ~prefix:[] ~cycle:[ step false; step true ] in
        check "yields infinitely often" true (L.eval well_behaved (L.good_samaritan ~tids));
        let hog = L.lasso ~prefix:[ step true ] ~cycle:[ step false ] in
        check "stops yielding" false (L.eval hog (L.good_samaritan ~tids))) ]

let suite = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
