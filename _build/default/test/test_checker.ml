(* The top-level Checker facade, report rendering, and trace printing. *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let suite =
  [ Alcotest.test_case "check uses fair DFS by default" `Quick (fun () ->
        let r = Checker.check (W.Litmus.fig3 ()) in
        check "verified" true (r.verdict = Report.Verified));
    Alcotest.test_case "check_all stops at the first error" `Quick (fun () ->
        let cfgs =
          [ ("cb=0", { Search_config.default with mode = Search_config.Context_bounded 0 });
            ("cb=1", { Search_config.default with mode = Search_config.Context_bounded 1 });
            ("cb=2", { Search_config.default with mode = Search_config.Context_bounded 2 }) ]
        in
        let reports = Checker.check_all ~configs:cfgs (W.Litmus.race_assert ()) in
        check "stopped early" true (List.length reports < 3 || Report.found_error (snd (List.nth reports (List.length reports - 1))));
        check "last report is the error" true (Report.found_error (snd (List.hd (List.rev reports)))));
    Alcotest.test_case "iterative context bounding finds bugs at small bounds" `Quick
      (fun () ->
        let r = Checker.iterative_context_bound ~max_bound:2 (W.Litmus.race_assert ()) in
        check "found" true (Report.found_error r));
    Alcotest.test_case "iterative context bounding verifies correct programs" `Quick
      (fun () ->
        let r =
          Checker.iterative_context_bound ~max_bound:1
            ~base:{ Search_config.default with livelock_bound = Some 2_000 }
            (W.Litmus.ticket_lock ())
        in
        check "no error" false (Report.found_error r));
    Alcotest.test_case "reports render" `Quick (fun () ->
        let r = Checker.check (W.Litmus.race_assert ()) in
        let s = Format.asprintf "%a" Report.pp r in
        check "mentions the verdict" true (contains s "safety");
        ignore (Format.asprintf "%a" Report.pp_summary r));
    Alcotest.test_case "verdict names" `Quick (fun () ->
        Alcotest.(check string) "verified" "verified" (Report.verdict_name Report.Verified);
        Alcotest.(check string) "limits" "limits reached"
          (Report.verdict_name Report.Limits_reached));
    Alcotest.test_case "trace pretty-printer elides long prefixes" `Quick (fun () ->
        let t = Trace.create () in
        for i = 0 to 99 do
          Trace.push t
            { Trace.step = i; tid = 0; op = Op.Yield; alt = 0; result = true;
              yielded = true; enabled = Fairmc_util.Bitset.singleton 0 }
        done;
        let names ppf o = Format.fprintf ppf "#%d" o in
        let s = Format.asprintf "@[<v>%a@]" (Trace.pp ~tail:10 ~names) t in
        check "mentions elision" true (contains s "90 earlier steps elided"));
    Alcotest.test_case "trace accessors" `Quick (fun () ->
        let t = Trace.create () in
        Alcotest.(check int) "empty" 0 (Trace.length t);
        (try
           ignore (Trace.get t 0);
           Alcotest.fail "get on empty"
         with Invalid_argument _ -> ());
        Trace.push t
          { Trace.step = 0; tid = 3; op = Op.Sleep; alt = 0; result = true;
            yielded = true; enabled = Fairmc_util.Bitset.full 4 };
        Alcotest.(check int) "one event" 1 (Trace.length t);
        Alcotest.(check int) "tid" 3 (Trace.get t 0).Trace.tid;
        check "last_n clamps" true (List.length (Trace.last_n t 10) = 1)) ]
