(* Semantics of the synchronization-object store: enabledness, execution
   effects, yield inference for timed operations, and misuse detection. *)

module O = Fairmc_core.Objects
module Op = Fairmc_core.Op

let no_finished _ = false

let check = Alcotest.(check bool)

let suite =
  [ Alcotest.test_case "mutex lock/unlock lifecycle" `Quick (fun () ->
        let s = O.create () in
        let m = O.register s O.Mutex ~init:0 in
        check "free mutex enables lock" true (O.enabled s ~finished:no_finished (Op.Lock m));
        check "lock succeeds" true (O.execute s ~self:3 (Op.Lock m));
        Alcotest.(check (option int)) "holder" (Some 3) (O.holder s m);
        check "held mutex disables lock" false (O.enabled s ~finished:no_finished (Op.Lock m));
        check "trylock on held fails" false (O.execute s ~self:4 (Op.Try_lock m));
        check "unlock" true (O.execute s ~self:3 (Op.Unlock m));
        Alcotest.(check (option int)) "released" None (O.holder s m));
    Alcotest.test_case "unlock by non-owner is misuse" `Quick (fun () ->
        let s = O.create () in
        let m = O.register s O.Mutex ~init:0 in
        ignore (O.execute s ~self:1 (Op.Lock m));
        (try
           ignore (O.execute s ~self:2 (Op.Unlock m));
           Alcotest.fail "expected Sync_error"
         with O.Sync_error _ -> ());
        try
          let s2 = O.create () in
          let m2 = O.register s2 O.Mutex ~init:0 in
          ignore (O.execute s2 ~self:2 (Op.Unlock m2));
          Alcotest.fail "unlock of free mutex accepted"
        with O.Sync_error _ -> ());
    Alcotest.test_case "kind confusion is misuse" `Quick (fun () ->
        let s = O.create () in
        let sem = O.register s O.Semaphore ~init:1 in
        try
          ignore (O.execute s ~self:0 (Op.Lock sem));
          Alcotest.fail "lock of a semaphore accepted"
        with O.Sync_error _ -> ());
    Alcotest.test_case "semaphore counting" `Quick (fun () ->
        let s = O.create () in
        let sem = O.register s O.Semaphore ~init:2 in
        check "enabled at 2" true (O.enabled s ~finished:no_finished (Op.Sem_wait sem));
        ignore (O.execute s ~self:0 (Op.Sem_wait sem));
        ignore (O.execute s ~self:1 (Op.Sem_wait sem));
        check "disabled at 0" false (O.enabled s ~finished:no_finished (Op.Sem_wait sem));
        check "try_wait fails at 0" false (O.execute s ~self:0 (Op.Sem_try_wait sem));
        ignore (O.execute s ~self:1 (Op.Sem_post sem));
        check "enabled after post" true (O.enabled s ~finished:no_finished (Op.Sem_wait sem)));
    Alcotest.test_case "manual-reset event" `Quick (fun () ->
        let s = O.create () in
        let e = O.register s O.Manual_event ~init:0 in
        check "unset disables wait" false (O.enabled s ~finished:no_finished (Op.Ev_wait e));
        ignore (O.execute s ~self:0 (Op.Ev_set e));
        check "set enables wait" true (O.enabled s ~finished:no_finished (Op.Ev_wait e));
        ignore (O.execute s ~self:1 (Op.Ev_wait e));
        check "stays set after wait" true (O.enabled s ~finished:no_finished (Op.Ev_wait e));
        ignore (O.execute s ~self:0 (Op.Ev_reset e));
        check "reset clears" false (O.enabled s ~finished:no_finished (Op.Ev_wait e)));
    Alcotest.test_case "auto-reset event consumes on wait" `Quick (fun () ->
        let s = O.create () in
        let e = O.register s O.Auto_event ~init:1 in
        check "initially set" true (O.enabled s ~finished:no_finished (Op.Ev_wait e));
        ignore (O.execute s ~self:0 (Op.Ev_wait e));
        check "consumed" false (O.enabled s ~finished:no_finished (Op.Ev_wait e)));
    Alcotest.test_case "join enabledness tracks finished threads" `Quick (fun () ->
        let s = O.create () in
        check "unfinished blocks join" false
          (O.enabled s ~finished:(fun _ -> false) (Op.Join 4));
        check "finished enables join" true (O.enabled s ~finished:(fun t -> t = 4) (Op.Join 4)));
    Alcotest.test_case "yield inference for timed operations" `Quick (fun () ->
        (* Timed operations yield exactly when they would time out (CHESS's
           rule from Section 4). *)
        let s = O.create () in
        let m = O.register s O.Mutex ~init:0 in
        let sem = O.register s O.Semaphore ~init:0 in
        let e = O.register s O.Manual_event ~init:0 in
        check "timedlock on free mutex is not a yield" false (O.would_yield s (Op.Timed_lock m));
        ignore (O.execute s ~self:0 (Op.Lock m));
        check "timedlock on held mutex yields" true (O.would_yield s (Op.Timed_lock m));
        check "sem timed wait at 0 yields" true (O.would_yield s (Op.Sem_timed_wait sem));
        ignore (O.execute s ~self:0 (Op.Sem_post sem));
        check "sem timed wait at 1 does not yield" false (O.would_yield s (Op.Sem_timed_wait sem));
        check "ev timed wait unset yields" true (O.would_yield s (Op.Ev_timed_wait e));
        check "plain yield yields" true (O.would_yield s Op.Yield);
        check "sleep yields" true (O.would_yield s Op.Sleep);
        check "lock never yields" false (O.would_yield s (Op.Lock m)));
    Alcotest.test_case "timed operations are always enabled" `Quick (fun () ->
        let s = O.create () in
        let m = O.register s O.Mutex ~init:0 in
        ignore (O.execute s ~self:0 (Op.Lock m));
        check "timedlock enabled on held mutex" true
          (O.enabled s ~finished:no_finished (Op.Timed_lock m));
        check "timedlock on held mutex returns false" false
          (O.execute s ~self:1 (Op.Timed_lock m)));
    Alcotest.test_case "signature tracks state" `Quick (fun () ->
        let s = O.create () in
        let m = O.register s O.Mutex ~init:0 in
        let h0 = O.signature s Fairmc_util.Fnv.init in
        ignore (O.execute s ~self:0 (Op.Lock m));
        let h1 = O.signature s Fairmc_util.Fnv.init in
        check "lock changes signature" true (h0 <> h1);
        ignore (O.execute s ~self:0 (Op.Unlock m));
        let h2 = O.signature s Fairmc_util.Fnv.init in
        check "unlock restores signature" true (h0 = h2));
    Alcotest.test_case "default names derive from kind and id" `Quick (fun () ->
        let s = O.create () in
        let m = O.register s O.Mutex ~init:0 in
        let v = O.register s ~name:"x" O.Var ~init:0 in
        Alcotest.(check string) "mutex name" "mutex#0" (O.name s m);
        Alcotest.(check string) "custom name" "x" (O.name s v)) ]
