(* State capture: canonicalization helpers and the stateful ground-truth
   explorer (state counts, per-strategy totals, consistency with stateless
   coverage — the methodology of the paper's §4.2.1). *)

open Fairmc_core
module W = Fairmc_workloads
module SC = Fairmc_statecap
module Fnv = Fairmc_util.Fnv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qprops =
  [ QCheck.Test.make ~name:"bag hash is permutation-invariant"
      QCheck.(small_list small_int)
      (fun l ->
        let shuffled = List.sort (fun a b -> compare (a * 7919 mod 97) (b * 7919 mod 97)) l in
        SC.Canon.bag Fnv.init l = SC.Canon.bag Fnv.init shuffled);
    QCheck.Test.make ~name:"id remap is invariant under renaming"
      QCheck.(small_list (int_bound 20))
      (fun l ->
        let renamed = List.map (fun x -> (x * 31) + 1000) l in
        SC.Canon.remap_first_occurrence l = SC.Canon.remap_first_occurrence renamed);
    QCheck.Test.make ~name:"id remap preserves equality structure"
      QCheck.(small_list (int_bound 10))
      (fun l ->
        let r = SC.Canon.remap_first_occurrence l in
        List.length r = List.length l
        &&
        let pairs = List.combine l r in
        List.for_all
          (fun (a, ra) -> List.for_all (fun (b, rb) -> (a = b) = (ra = rb)) pairs)
          pairs) ]

let unit_tests =
  [ Alcotest.test_case "canon examples" `Quick (fun () ->
        Alcotest.(check (list int)) "remap" [ 0; 1; 0; 2 ]
          (SC.Canon.remap_first_occurrence [ 7; 3; 7; 9 ]);
        check "ids hash equal up to renaming" true
          (SC.Canon.ids Fnv.init [ 5; 5; 2 ] = SC.Canon.ids Fnv.init [ 1; 1; 9 ]));
    Alcotest.test_case "fig3 has exactly 5 states (paper Figure 3)" `Quick (fun () ->
        let r = SC.Stateful.explore (W.Litmus.fig3 ()) in
        check "complete" true r.complete;
        check_int "states" 5 r.states);
    Alcotest.test_case "stateful explorer terminates on cyclic spaces" `Quick (fun () ->
        (* The mixed-retry dining program has retry cycles; signature-based
           dedup must still converge. *)
        let r = SC.Stateful.explore ~time_limit:30.0 (W.Dining.coverage_program ~n:2) in
        check "complete" true r.complete;
        check "nontrivial" true (r.states > 10));
    Alcotest.test_case "per-strategy totals grow with the context bound" `Quick (fun () ->
        let p = W.Wsq.coverage_program ~stealers:1 () in
        let states mode = (SC.Stateful.explore ~mode ~time_limit:60.0 p).SC.Stateful.states in
        let c0 = states (SC.Stateful.Cb 0) in
        let c1 = states (SC.Stateful.Cb 1) in
        let full = states SC.Stateful.Full in
        check "cb0 <= cb1" true (c0 <= c1);
        check "cb1 <= full" true (c1 <= full);
        check "cb0 < full" true (c0 < full));
    Alcotest.test_case "stateless fair coverage never exceeds the ground truth" `Quick
      (fun () ->
        List.iter
          (fun p ->
            let gt = SC.Stateful.explore ~time_limit:60.0 p in
            check (p.Program.name ^ " gt complete") true gt.complete;
            let extra = ref 0 in
            Search.state_hook :=
              Some (fun s _ -> if not (Hashtbl.mem gt.signatures s) then incr extra);
            let r =
              Search.run
                { Search_config.default with coverage = true; livelock_bound = Some 3_000 }
                p
            in
            Search.state_hook := None;
            check (p.Program.name ^ " verified") true (r.verdict = Report.Verified);
            check_int (p.Program.name ^ " no spurious states") 0 !extra)
          [ W.Dining.coverage_program ~n:2; W.Litmus.fig3 () ]);
    Alcotest.test_case "fair DFS achieves 100% coverage on the Table 2 programs" `Slow
      (fun () ->
        (* The headline claim of §4.2.1, on the configurations small enough
           for exhaustive search in a unit test. *)
        List.iter
          (fun p ->
            let gt = SC.Stateful.explore ~time_limit:60.0 p in
            let r =
              Search.run
                { Search_config.default with coverage = true; livelock_bound = Some 3_000 }
                p
            in
            check_int (p.Program.name ^ " coverage") gt.states r.stats.states)
          [ W.Dining.coverage_program ~n:2; W.Dining.coverage_program ~n:3 ]);
    Alcotest.test_case "limits mark results incomplete" `Quick (fun () ->
        let r = SC.Stateful.explore ~max_states:3 (W.Dining.coverage_program ~n:3) in
        check "incomplete" false r.complete;
        check "stopped early" true (r.states <= 4)) ]

let suite = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
