(* Liveness detection: livelocks (fair nontermination), good-samaritan
   violations, and the classification between them — the paper's outcomes 2
   and 3. *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)

let cfg = { Search_config.default with livelock_bound = Some 1_500; tail_window = 300 }

let run p = Search.run cfg p

let is_livelock r =
  match r.Report.verdict with
  | Report.Divergence { kind = Report.Fair_nontermination; _ } -> true
  | _ -> false

let is_gs r =
  match r.Report.verdict with
  | Report.Divergence { kind = Report.Good_samaritan_violation _; _ } -> true
  | _ -> false

let suite =
  [ Alcotest.test_case "Figure 8 stale-cache promise is a livelock" `Quick (fun () ->
        (* The spinner sleeps (yields) every iteration, so its divergence is
           a *fair* infinite execution: outcome 3. *)
        check "livelock" true (is_livelock (run (W.Promise.program W.Promise.Stale_cache))));
    Alcotest.test_case "Figure 1 dining with yields is a fair livelock" `Quick (fun () ->
        check "livelock" true
          (is_livelock (run (W.Dining.program ~n:2 W.Dining.Try_acquire_yield))));
    Alcotest.test_case "Figure 1 dining without yields violates good samaritan" `Quick
      (fun () ->
        (* No yields anywhere: the first divergence the search constructs
           starves a philosopher while the other spins — outcome 2. *)
        check "good samaritan" true
          (is_gs (run (W.Dining.program ~n:2 W.Dining.Try_acquire))));
    Alcotest.test_case "Figure 7 taskpool shutdown spin violates good samaritan" `Quick
      (fun () ->
        let r = run (W.Taskpool.program W.Taskpool.Spin_shutdown) in
        check "good samaritan" true (is_gs r);
        (* The blamed thread is the spinning worker (tid 0). *)
        match r.verdict with
        | Report.Divergence { kind = Report.Good_samaritan_violation t; _ } ->
          Alcotest.(check int) "worker blamed" 0 t
        | _ -> assert false);
    Alcotest.test_case "spin loop without yield is a good-samaritan violation" `Quick
      (fun () ->
        check "good samaritan" true (is_gs (run (W.Litmus.fig3_no_yield ()))));
    Alcotest.test_case "courteous variants show no divergence under fairness" `Quick
      (fun () ->
        (* fig3 and the spin-then-sleep promise have small spaces and verify
           outright; the courteous task pool's space is large, so we bound
           the search and require only that no error is found. *)
        List.iter
          (fun p ->
            let r = run p in
            check (p.Program.name ^ " verified") true (r.verdict = Report.Verified))
          [ W.Litmus.fig3 (); W.Promise.program W.Promise.Spin_then_sleep ];
        let r =
          Search.run
            { cfg with max_executions = Some 20_000; time_limit = Some 10.0 }
            (W.Taskpool.program W.Taskpool.Courteous)
        in
        check "no error in the courteous pool" false (Report.found_error r));
    Alcotest.test_case "divergence counterexamples carry the trace tail" `Quick (fun () ->
        let r = run (W.Promise.program W.Promise.Stale_cache) in
        match r.verdict with
        | Report.Divergence { cex; _ } ->
          check "long execution" true (cex.length >= 1_500);
          check "rendered tail" true (String.length cex.rendered > 0)
        | _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "deadlock is never misreported as livelock" `Quick (fun () ->
        let r = run (W.Dining.program ~n:3 W.Dining.Deadlock) in
        check "deadlock verdict" true
          (match r.verdict with Report.Deadlock _ -> true | _ -> false));
    Alcotest.test_case "livelock bound is configurable" `Quick (fun () ->
        let r =
          Search.run { cfg with livelock_bound = Some 200 }
            (W.Promise.program W.Promise.Stale_cache)
        in
        match r.verdict with
        | Report.Divergence { cex; _ } ->
          check "stops at the configured bound" true (cex.length < 400)
        | _ -> Alcotest.fail "expected divergence") ]
