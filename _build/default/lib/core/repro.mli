(** Reproduction files: serialized counterexample schedules.

    A bug report from a stateless checker is only as good as its replay
    (CHESS's headline feature was deterministic reproduction of heisenbugs).
    A repro file records the program's name and the exact (thread,
    alternative) decision sequence; [Search.replay] re-executes it. The
    format is a stable, human-readable text file:

    {v
    fairmc-repro 1 <program-name>
    <tid>.<alt> <tid>.<alt> ...
    v} *)

type t = {
  program : string;
  decisions : (int * int) list;
}

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse; [Error] carries a human-readable reason. *)

val save : string -> t -> unit
(** Write to a file. *)

val load : string -> (t, string) result
