(** Shared context between the engine and the {!Sync} user API.

    Threads under test communicate with the engine by performing the
    {!extension-Sched} effect at every visible operation; the engine parks
    the continuation and later resumes it with the operation's result. The
    mutable cells below carry side-band data (spawn bodies, results,
    state-snapshot hooks) for the current execution. They are safe because
    the checker is strictly single-domain: exactly one of {engine, one
    thread} runs at any instant. *)

type _ Effect.t +=
  | Sched : Op.t -> int Effect.t
        (** Performed by a thread at each scheduling point. The integer reply
            encodes the operation result: 0/1 for booleans, the chosen
            alternative for [Choose]. *)

exception Assertion_failure of string
(** Raised by [Sync.check]; reported as a safety violation with the trace. *)

val store : Objects.t option ref
(** Sync-object store of the execution being built or run. *)

val get_store : unit -> Objects.t
(** @raise Failure outside [boot]/execution. *)

val in_thread : bool ref
(** True while control is inside a thread under test (effects are handled). *)

val current_tid : int ref

val spawn_body : (unit -> unit) option ref
(** Set by [Sync.spawn] immediately before performing [Spawn]; captured by
    the engine's handler at park time (so interleaved spawns cannot clobber
    each other). *)

val spawn_result : int ref
(** Tid of the most recently created thread; read by [Sync.spawn] immediately
    after its effect returns, before any other thread can run. *)

val snapshotters : (Fairmc_util.Fnv.t -> Fairmc_util.Fnv.t) list ref
(** State-signature contributions registered during [boot] (e.g. by
    [Sync.Svar.create ~hash]); folded into every state signature. *)

val regions : (int, int) Hashtbl.t
(** Per-thread control-region registers (see [Sync.at]): a manual control
    abstraction hashed into state signatures, the analogue of the paper's
    hand-written state extraction (§4.2.1). Cleared by [reset]. *)

val reset : Objects.t -> unit
(** Install a fresh store and clear all side-band state (engine use). *)
