(** Per-execution store of synchronization objects.

    The engine owns the *scheduling-relevant* state of every mutex,
    semaphore, and event so that it can decide [enabled(t)] for each parked
    thread; user data (queue contents etc.) stays in ordinary OCaml values on
    the user side. A fresh store is created for every execution — stateless
    search re-runs the program from scratch, so nothing here survives a
    backtrack. *)

type kind =
  | Mutex
  | Semaphore
  | Manual_event  (** stays set until reset *)
  | Auto_event  (** a successful wait atomically resets it *)
  | Var  (** shared variable: only an interleaving point, carries no state *)

type t

val create : unit -> t

val register : t -> ?name:string -> kind -> init:int -> Op.obj
(** Allocate an object. [init] is the initial semaphore count (semaphores),
    or 0/1 for unset/set (events); ignored for mutexes and vars. The default
    name is derived from the kind and the assigned id. *)

val name : t -> Op.obj -> string
val kind : t -> Op.obj -> kind
val count : t -> Op.obj -> int

(** {1 Misuse of the API by the program under test} *)

exception Sync_error of string
(** Raised (inside the offending thread) on unlock of a mutex not held by the
    caller, event ops on a semaphore, etc. Reported as a safety violation. *)

(** {1 Scheduling semantics} *)

val enabled : t -> finished:(int -> bool) -> Op.t -> bool
(** Whether a thread whose pending operation is [op] is enabled.
    [finished tid] reports completed threads (for [Join]). *)

val would_yield : t -> Op.t -> bool
(** [yield(t)] of the paper: executing the pending operation from the current
    state results in a yield. True for explicit yields and sleeps, and for
    timed operations that would time out. *)

val execute : t -> self:int -> Op.t -> bool
(** Apply the state change of [op] (which must be enabled) on behalf of
    thread [self]; the boolean is the operation's result (success of try/timed
    variants; [true] for operations without a meaningful result).
    @raise Sync_error on API misuse. *)

val holder : t -> Op.obj -> int option
(** Current owner of a mutex. *)

val signature : t -> Fairmc_util.Fnv.t -> Fairmc_util.Fnv.t
(** Fold the scheduling-relevant state into a state-signature hash. *)

val pp_obj : t -> Format.formatter -> Op.obj -> unit
