type event = {
  step : int;
  tid : int;
  op : Op.t;
  alt : int;
  result : bool;
  yielded : bool;
  enabled : Fairmc_util.Bitset.t;
}

type t = { mutable events : event array; mutable len : int }

let dummy =
  { step = 0; tid = 0; op = Op.Yield; alt = 0; result = true; yielded = false;
    enabled = Fairmc_util.Bitset.empty }

let create () = { events = Array.make 64 dummy; len = 0 }

let push t e =
  if t.len = Array.length t.events then begin
    let a = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 a 0 t.len;
    t.events <- a
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.events.(i)

let events t = Array.to_list (Array.sub t.events 0 t.len)

let last_n t n =
  let n = min n t.len in
  Array.to_list (Array.sub t.events (t.len - n) n)

let decisions t = List.map (fun e -> (e.tid, e.alt)) (events t)

let pp_event ~names ppf e =
  let pp_op ppf (op : Op.t) =
    match Op.obj_of op with
    | None -> Op.pp ppf op
    | Some o ->
      (* Re-render with the object's registered name. *)
      let base = Op.to_string op in
      (match String.index_opt base '(' with
       | Some i -> Format.fprintf ppf "%s(%a)" (String.sub base 0 i) names o
       | None -> Format.pp_print_string ppf base)
  in
  Format.fprintf ppf "%4d: t%d %a%s%s" e.step e.tid pp_op e.op
    (match e.op with
     | Try_lock _ | Timed_lock _ | Sem_try_wait _ | Sem_timed_wait _ | Ev_timed_wait _ ->
       if e.result then " -> ok" else " -> failed"
     | Choose _ -> Printf.sprintf " -> %d" e.alt
     | _ -> "")
    (if e.yielded then "  [yield]" else "")

let pp ?tail ~names ppf t =
  let evs = match tail with None -> events t | Some n -> last_n t n in
  let skipped = t.len - List.length evs in
  if skipped > 0 then Format.fprintf ppf "  ... (%d earlier steps elided)@," skipped;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_event ~names) ppf evs
