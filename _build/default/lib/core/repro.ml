type t = {
  program : string;
  decisions : (int * int) list;
}

let magic = "fairmc-repro 1"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf ' ';
  Buffer.add_string buf t.program;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i (tid, alt) ->
      if i > 0 then Buffer.add_char buf (if i mod 16 = 0 then '\n' else ' ');
      Buffer.add_string buf (string_of_int tid);
      if alt <> 0 then begin
        Buffer.add_char buf '.';
        Buffer.add_string buf (string_of_int alt)
      end)
    t.decisions;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_string s =
  match String.index_opt s '\n' with
  | None -> Error "missing header line"
  | Some nl ->
    let header = String.sub s 0 nl in
    let body = String.sub s (nl + 1) (String.length s - nl - 1) in
    if String.length header < String.length magic
       || String.sub header 0 (String.length magic) <> magic
    then Error (Printf.sprintf "not a repro file (expected %S header)" magic)
    else begin
      let program = String.trim (String.sub header (String.length magic)
                                   (String.length header - String.length magic)) in
      if program = "" then Error "missing program name in header"
      else begin
        let words =
          String.split_on_char '\n' body
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun w -> w <> "")
        in
        let parse w =
          match String.index_opt w '.' with
          | None -> (match int_of_string_opt w with Some t -> Some (t, 0) | None -> None)
          | Some i -> (
            match
              ( int_of_string_opt (String.sub w 0 i),
                int_of_string_opt (String.sub w (i + 1) (String.length w - i - 1)) )
            with
            | Some t, Some a -> Some (t, a)
            | _ -> None)
        in
        let rec go acc = function
          | [] -> Ok { program; decisions = List.rev acc }
          | w :: rest -> (
            match parse w with
            | Some d -> go (d :: acc) rest
            | None -> Error (Printf.sprintf "malformed decision %S" w))
        in
        go [] words
      end
    end

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (to_string t)

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let len = in_channel_length ic in
    of_string (really_input_string ic len)
