type kind = Mutex | Semaphore | Manual_event | Auto_event | Var

type slot = {
  kind : kind;
  name : string;
  mutable count : int;
      (* mutex: owner tid or -1; semaphore: count; event: 0 unset / 1 set;
         var: unused *)
}

type t = { mutable slots : slot array; mutable len : int }

exception Sync_error of string

let sync_error fmt = Format.kasprintf (fun s -> raise (Sync_error s)) fmt

let create () = { slots = Array.make 16 { kind = Var; name = ""; count = 0 }; len = 0 }

let default_name kind id =
  let prefix =
    match kind with
    | Mutex -> "mutex"
    | Semaphore -> "sem"
    | Manual_event | Auto_event -> "event"
    | Var -> "var"
  in
  Printf.sprintf "%s#%d" prefix id

let register t ?name kind ~init =
  let name = match name with Some n -> n | None -> default_name kind t.len in
  let count =
    match kind with
    | Mutex -> -1
    | Semaphore -> if init < 0 then sync_error "semaphore %s: negative initial count" name else init
    | Manual_event | Auto_event -> if init = 0 then 0 else 1
    | Var -> 0
  in
  if t.len = Array.length t.slots then begin
    let slots = Array.make (2 * t.len) t.slots.(0) in
    Array.blit t.slots 0 slots 0 t.len;
    t.slots <- slots
  end;
  t.slots.(t.len) <- { kind; name; count };
  t.len <- t.len + 1;
  t.len - 1

let slot t o =
  if o < 0 || o >= t.len then sync_error "unknown sync object #%d" o;
  t.slots.(o)

let name t o = (slot t o).name
let kind t o = (slot t o).kind
let count t o = (slot t o).count

let expect t o k what =
  let s = slot t o in
  if s.kind <> k then sync_error "%s applied to %s (a different object kind)" what s.name;
  s

let enabled t ~finished (op : Op.t) =
  match op with
  | Lock o -> (expect t o Mutex "lock").count = -1
  | Sem_wait o -> (expect t o Semaphore "sem_wait").count > 0
  | Ev_wait o -> (slot t o).count = 1
  | Join tid -> finished tid
  | Try_lock _ | Timed_lock _ | Unlock _ | Sem_try_wait _ | Sem_timed_wait _
  | Sem_post _ | Ev_timed_wait _ | Ev_set _ | Ev_reset _
  | Var_read _ | Var_write _ | Var_rmw _ | Yield | Sleep | Spawn | Choose _ -> true

let would_yield t (op : Op.t) =
  match op with
  | Yield | Sleep -> true
  | Timed_lock o -> (slot t o).count <> -1
  | Sem_timed_wait o -> (slot t o).count <= 0
  | Ev_timed_wait o -> (slot t o).count = 0
  | Lock _ | Try_lock _ | Unlock _ | Sem_wait _ | Sem_try_wait _ | Sem_post _
  | Ev_wait _ | Ev_set _ | Ev_reset _ | Var_read _ | Var_write _ | Var_rmw _
  | Join _ | Spawn | Choose _ -> false

let acquire t o self what =
  let s = expect t o Mutex what in
  if s.count = self then sync_error "%s: recursive lock by thread %d" s.name self;
  if s.count = -1 then begin s.count <- self; true end else false

let execute t ~self (op : Op.t) =
  match op with
  | Lock o ->
    if not (acquire t o self "lock") then sync_error "lock of held mutex %s" (name t o);
    true
  | Try_lock o -> acquire t o self "trylock"
  | Timed_lock o -> acquire t o self "timedlock"
  | Unlock o ->
    let s = expect t o Mutex "unlock" in
    if s.count <> self then
      sync_error "unlock of %s by thread %d (owner: %d)" s.name self s.count;
    s.count <- -1;
    true
  | Sem_wait o ->
    let s = expect t o Semaphore "sem_wait" in
    if s.count <= 0 then sync_error "sem_wait on empty semaphore %s" s.name;
    s.count <- s.count - 1;
    true
  | Sem_try_wait o | Sem_timed_wait o ->
    let s = expect t o Semaphore "sem_trywait" in
    if s.count > 0 then begin s.count <- s.count - 1; true end else false
  | Sem_post o ->
    let s = expect t o Semaphore "sem_post" in
    s.count <- s.count + 1;
    true
  | Ev_wait o ->
    let s = slot t o in
    (match s.kind with
     | Manual_event -> true
     | Auto_event -> s.count <- 0; true
     | Mutex | Semaphore | Var -> sync_error "ev_wait applied to %s" s.name)
  | Ev_timed_wait o ->
    let s = slot t o in
    (match s.kind with
     | Manual_event -> s.count = 1
     | Auto_event -> if s.count = 1 then begin s.count <- 0; true end else false
     | Mutex | Semaphore | Var -> sync_error "ev_timedwait applied to %s" s.name)
  | Ev_set o ->
    let s = slot t o in
    (match s.kind with
     | Manual_event | Auto_event -> s.count <- 1; true
     | Mutex | Semaphore | Var -> sync_error "ev_set applied to %s" s.name)
  | Ev_reset o ->
    let s = slot t o in
    (match s.kind with
     | Manual_event | Auto_event -> s.count <- 0; true
     | Mutex | Semaphore | Var -> sync_error "ev_reset applied to %s" s.name)
  | Var_read _ | Var_write _ | Var_rmw _ | Yield | Sleep | Join _ | Spawn | Choose _ ->
    true

let holder t o =
  let s = expect t o Mutex "holder" in
  if s.count = -1 then None else Some s.count

let signature t h =
  let h = ref h in
  for i = 0 to t.len - 1 do
    h := Fairmc_util.Fnv.int !h t.slots.(i).count
  done;
  !h

let pp_obj t ppf o =
  if o < 0 || o >= t.len then Format.fprintf ppf "#%d" o
  else Format.fprintf ppf "%s" t.slots.(o).name
