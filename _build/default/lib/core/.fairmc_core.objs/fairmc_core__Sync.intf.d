lib/core/sync.mli: Fairmc_util Op
