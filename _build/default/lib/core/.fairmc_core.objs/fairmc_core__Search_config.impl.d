lib/core/search_config.ml: Printf
