lib/core/engine.mli: Fairmc_util Format Objects Op Program Trace
