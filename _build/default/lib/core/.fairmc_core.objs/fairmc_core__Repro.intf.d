lib/core/repro.mli:
