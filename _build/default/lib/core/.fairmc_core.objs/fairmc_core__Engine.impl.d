lib/core/engine.ml: Array Effect Fairmc_util Format Hashtbl Int64 List Objects Op Option Printexc Program Runtime Trace
