lib/core/search_config.mli:
