lib/core/sync_extras.ml: Sync
