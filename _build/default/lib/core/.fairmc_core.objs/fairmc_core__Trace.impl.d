lib/core/trace.ml: Array Fairmc_util Format List Op Printf String
