lib/core/objects.mli: Fairmc_util Format Op
