lib/core/runtime.ml: Effect Fairmc_util Hashtbl Objects Op
