lib/core/sync.ml: Bool Effect Fairmc_util Hashtbl Objects Op Printf Runtime
