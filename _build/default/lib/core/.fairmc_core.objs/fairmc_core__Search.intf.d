lib/core/search.mli: Engine Program Report Search_config
