lib/core/fairmc_core.ml: Checker Engine Fair_sched Indep Objects Op Program Report Repro Runtime Search Search_config Sync Sync_extras Trace
