lib/core/runtime.mli: Effect Fairmc_util Hashtbl Objects Op
