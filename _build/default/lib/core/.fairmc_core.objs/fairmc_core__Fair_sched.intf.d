lib/core/fair_sched.mli: Fairmc_util Format
