lib/core/report.mli: Engine Format
