lib/core/checker.mli: Program Report Search_config
