lib/core/report.ml: Engine Format Printf
