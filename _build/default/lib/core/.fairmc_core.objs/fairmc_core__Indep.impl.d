lib/core/indep.ml: Op
