lib/core/search.ml: Array Engine Fair_sched Fairmc_util Format Fun Hashtbl Indep List Objects Option Program Report Search_config String Sys Trace Unix
