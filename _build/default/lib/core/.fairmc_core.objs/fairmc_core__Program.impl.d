lib/core/program.ml: Fairmc_util
