lib/core/repro.ml: Buffer Fun List Printf String
