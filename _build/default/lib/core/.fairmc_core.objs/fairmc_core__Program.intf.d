lib/core/program.mli: Fairmc_util
