lib/core/sync_extras.mli: Sync
