lib/core/fair_sched.ml: Array Fairmc_util Format List
