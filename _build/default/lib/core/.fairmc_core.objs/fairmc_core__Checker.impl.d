lib/core/checker.ml: List Option Printf Report Search Search_config
