lib/core/trace.mli: Fairmc_util Format Op
