lib/core/indep.mli: Op
