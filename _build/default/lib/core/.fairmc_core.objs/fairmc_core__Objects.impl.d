lib/core/objects.ml: Array Fairmc_util Format Op Printf
