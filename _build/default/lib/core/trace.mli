(** Executions as recorded event sequences.

    A trace is what the checker shows the user when it finds a bug, and what
    the replay machinery consumes to reproduce one deterministically. *)

type event = {
  step : int;
  tid : int;
  op : Op.t;
  alt : int;  (** chosen alternative for [Choose] operations, 0 otherwise *)
  result : bool;  (** result delivered to the thread (try/timed ops) *)
  yielded : bool;  (** whether this transition was a yield *)
  enabled : Fairmc_util.Bitset.t;
      (** threads enabled in the state this transition was taken from; gives
          traces exactly the [enabled]/[sched]/[yield] labelling the paper's
          LTL properties are stated over *)
}

type t

val create : unit -> t
val push : t -> event -> unit
val length : t -> int
val get : t -> int -> event
val events : t -> event list
val last_n : t -> int -> event list
val decisions : t -> (int * int) list
(** The (tid, alt) sequence — a replayable schedule. *)

val pp_event : names:(Format.formatter -> Op.obj -> unit) -> Format.formatter -> event -> unit
val pp : ?tail:int -> names:(Format.formatter -> Op.obj -> unit) -> Format.formatter -> t -> unit
