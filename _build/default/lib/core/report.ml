type counterexample = {
  rendered : string;
  decisions : (int * int) list;
  length : int;
}

type divergence_kind =
  | Fair_nontermination
  | Good_samaritan_violation of int

type verdict =
  | Verified
  | Safety_violation of { tid : int; failure : Engine.failure; cex : counterexample }
  | Deadlock of { cex : counterexample }
  | Divergence of { kind : divergence_kind; cex : counterexample }
  | Limits_reached

type stats = {
  executions : int;
  transitions : int;
  states : int;
  nonterminating : int;
  depth_bound_hits : int;
  max_depth : int;
  elapsed : float;
  first_error_execution : int option;
  first_error_time : float option;
  sync_ops_per_exec : int;
  max_threads : int;
}

type t = { verdict : verdict; stats : stats }

let found_error t =
  match t.verdict with
  | Safety_violation _ | Deadlock _ | Divergence _ -> true
  | Verified | Limits_reached -> false

let verdict_name = function
  | Verified -> "verified"
  | Safety_violation _ -> "safety violation"
  | Deadlock _ -> "deadlock"
  | Divergence { kind = Fair_nontermination; _ } -> "livelock (fair nontermination)"
  | Divergence { kind = Good_samaritan_violation t; _ } ->
    Printf.sprintf "good-samaritan violation (thread %d)" t
  | Limits_reached -> "limits reached"

let pp_stats ppf s =
  Format.fprintf ppf
    "executions: %d, transitions: %d%s%s%s, max depth: %d, elapsed: %.3fs"
    s.executions s.transitions
    (if s.states > 0 then Printf.sprintf ", states: %d" s.states else "")
    (if s.nonterminating > 0 then Printf.sprintf ", nonterminating: %d" s.nonterminating else "")
    (if s.depth_bound_hits > 0 then Printf.sprintf ", depth-bound hits: %d" s.depth_bound_hits
     else "")
    s.max_depth s.elapsed

let pp_summary ppf t =
  Format.fprintf ppf "%s (%a)" (verdict_name t.verdict) pp_stats t.stats

let pp ppf t =
  Format.fprintf ppf "@[<v>result: %s@,%a@]" (verdict_name t.verdict) pp_stats t.stats;
  let cex =
    match t.verdict with
    | Safety_violation { cex; failure; tid } ->
      Format.fprintf ppf "@,thread %d: %a" tid Engine.pp_failure failure;
      Some cex
    | Deadlock { cex } | Divergence { cex; _ } -> Some cex
    | Verified | Limits_reached -> None
  in
  match cex with
  | None -> ()
  | Some cex -> Format.fprintf ppf "@,@[<v>counterexample (%d steps):@,%s@]" cex.length cex.rendered
