module Condvar = struct
  (* The counting construction: waiters park on a semaphore, so wakeups can
     never coalesce (an event-based "pulse" broadcast would — and the
     checker finds that deadlock immediately if one tries). The waiter count
     and the permit count are kept consistent under an internal lock; a
     notification finding no waiters is dropped (Mesa semantics). *)
  type t = {
    waiters : int Sync.Svar.t;
    permits : Sync.Semaphore.t;
    ilock : Sync.Mutex.t;
  }

  let create ?(name = "condvar") () =
    { waiters = Sync.int_var ~name:(name ^ ".waiters") 0;
      permits = Sync.Semaphore.create ~name:(name ^ ".permits") 0;
      ilock = Sync.Mutex.create ~name:(name ^ ".ilock") () }

  let wait t ~mutex =
    Sync.Mutex.lock t.ilock;
    ignore (Sync.Svar.incr t.waiters);
    Sync.Mutex.unlock t.ilock;
    (* Register as a waiter before releasing the user mutex: a notifier that
       acquires the mutex afterwards is guaranteed to see us, so its wakeup
       cannot be lost (the permit waits for us even if we are slow). *)
    Sync.Mutex.unlock mutex;
    Sync.Semaphore.wait t.permits;
    Sync.Mutex.lock mutex

  let notify_one t =
    Sync.Mutex.lock t.ilock;
    let n = Sync.Svar.get t.waiters in
    if n > 0 then begin
      Sync.Svar.set t.waiters (n - 1);
      Sync.Semaphore.post t.permits
    end;
    Sync.Mutex.unlock t.ilock

  let notify_all t =
    Sync.Mutex.lock t.ilock;
    let n = Sync.Svar.get t.waiters in
    Sync.Svar.set t.waiters 0;
    for _ = 1 to n do
      Sync.Semaphore.post t.permits
    done;
    Sync.Mutex.unlock t.ilock
end

module Rwlock = struct
  (* The write gate is a binary semaphore rather than a mutex: it is
     acquired by the first reader and released by the *last* reader, which
     mutex ownership rules (rightly) forbid. *)
  type t = {
    readers : int Sync.Svar.t;
    rlock : Sync.Mutex.t;  (* protects [readers] *)
    wgate : Sync.Semaphore.t;  (* 1 = free; held by the writer or the readers *)
  }

  let create ?(name = "rwlock") () =
    { readers = Sync.int_var ~name:(name ^ ".readers") 0;
      rlock = Sync.Mutex.create ~name:(name ^ ".rlock") ();
      wgate = Sync.Semaphore.create ~name:(name ^ ".wgate") 1 }

  let lock_read t =
    Sync.Mutex.lock t.rlock;
    let n = Sync.Svar.incr t.readers in
    if n = 0 then Sync.Semaphore.wait t.wgate;
    Sync.Mutex.unlock t.rlock

  let unlock_read t =
    Sync.Mutex.lock t.rlock;
    let n = Sync.Svar.update t.readers (fun v -> v - 1) in
    if n = 1 then Sync.Semaphore.post t.wgate;
    Sync.Mutex.unlock t.rlock

  let lock_write t = Sync.Semaphore.wait t.wgate
  let unlock_write t = Sync.Semaphore.post t.wgate
end

module Barrier = struct
  type t = {
    parties : int;
    arrived : int Sync.Svar.t;
    generation : int Sync.Svar.t;
    lock : Sync.Mutex.t;
  }

  let create ?(name = "barrier") parties =
    if parties < 1 then invalid_arg "Barrier.create";
    { parties;
      arrived = Sync.int_var ~name:(name ^ ".arrived") 0;
      generation = Sync.int_var ~name:(name ^ ".gen") 0;
      lock = Sync.Mutex.create ~name:(name ^ ".lock") () }

  let await t =
    Sync.Mutex.lock t.lock;
    let gen = Sync.Svar.get t.generation in
    let n = Sync.Svar.incr t.arrived + 1 in
    if n = t.parties then begin
      (* Last arrival: open the next generation. *)
      Sync.Svar.set t.arrived 0;
      Sync.Svar.set t.generation (gen + 1);
      Sync.Mutex.unlock t.lock
    end
    else begin
      Sync.Mutex.unlock t.lock;
      (* Spin-with-yield until the generation advances: the good-samaritan
         idiom the paper's Figure 3 illustrates. *)
      while Sync.Svar.get t.generation = gen do
        Sync.yield ()
      done
    end
end
