(** Conservative independence relation on operations, for sleep-set
    partial-order reduction (the paper's Section 5 names POR for fair
    stateless search as future work; this is our implementation of the
    classic Godefroid sleep sets on top of the engine).

    Two operations are independent when executing them in either order from
    any state yields the same state and neither enables/disables the other.
    We approximate: operations of distinct threads touching distinct
    synchronization objects are independent, except for operations with
    global effect (spawn, join, and — under the fair scheduler — yields,
    which mutate scheduler priorities). *)

val independent : t1:int -> op1:Op.t -> t2:int -> op2:Op.t -> fair:bool -> bool
