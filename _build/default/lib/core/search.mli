(** The state-space explorer.

    Drives {!Engine} executions according to a {!Search_config}: systematic
    modes (DFS, context-bounded) enumerate scheduling decisions depth-first
    with stateless backtracking (each new path re-executes the program from
    its initial state, replaying the decision prefix); sampling modes
    (random walk, round-robin, random-priority) run a fixed number of
    independent executions.

    When [config.fair] is set, scheduling decisions are restricted to the
    schedulable set [T] of Algorithm 1, computed by {!Fair_sched} along every
    path. Fair executions that exceed the livelock bound are reported as
    divergences and classified (good-samaritan violation vs. fair
    nontermination, the paper's outcomes 2 and 3). *)

val run : Search_config.t -> Program.t -> Report.t

val state_hook : (int64 -> Engine.t -> unit) option ref
(** Debug/analysis hook invoked on every state recorded during coverage
    collection (signature + live run). Used by tests that cross-check
    stateless coverage against the stateful ground truth. *)

val replay : Program.t -> (int * int) list -> (Engine.t -> unit) -> Report.counterexample option
(** Re-execute a recorded schedule, invoking the callback after every
    transition; returns the re-rendered counterexample if the schedule ends
    in a failure. Used to confirm and inspect reported bugs. *)
