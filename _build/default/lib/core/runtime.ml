type _ Effect.t += Sched : Op.t -> int Effect.t

exception Assertion_failure of string

let store : Objects.t option ref = ref None

let get_store () =
  match !store with
  | Some s -> s
  | None -> failwith "Sync operation outside of a model-checked execution"

let in_thread = ref false
let current_tid = ref (-1)
let spawn_body : (unit -> unit) option ref = ref None
let spawn_result = ref (-1)
let snapshotters : (Fairmc_util.Fnv.t -> Fairmc_util.Fnv.t) list ref = ref []
let regions : (int, int) Hashtbl.t = Hashtbl.create 16

let reset s =
  store := Some s;
  in_thread := false;
  current_tid := -1;
  spawn_body := None;
  spawn_result := -1;
  snapshotters := [];
  Hashtbl.reset regions
