(** Higher-level synchronization primitives, built from the {!Sync} core.

    These are *derived* objects (the engine knows nothing about them): they
    demonstrate that the modeled primitive set is complete enough to build
    the usual concurrency toolbox, they give workloads realistic vocabulary,
    and — because they are implemented rather than axiomatized — the checker
    verifies *their* interleavings too. A bug in [Condvar] would show up as
    a lost wakeup in every program using it. *)

module Condvar : sig
  type t
  (** A condition variable with classic Mesa semantics: [wait] releases the
      associated mutex, sleeps until a notification, and re-acquires the
      mutex before returning (the caller must re-check its predicate). Built
      from a waiter count and a counting semaphore — counting permits cannot
      coalesce the way pulsed events do, a deadlock the checker finds
      immediately in the naive construction. *)

  val create : ?name:string -> unit -> t

  val wait : t -> mutex:Sync.Mutex.t -> unit
  (** Caller must hold [mutex]. *)

  val notify_one : t -> unit
  val notify_all : t -> unit
end

module Rwlock : sig
  type t
  (** A reader–writer lock built from a reader count and a binary-semaphore
      write gate (the gate is acquired by the first reader and released by
      the last, which mutex ownership rules forbid). *)

  val create : ?name:string -> unit -> t
  val lock_read : t -> unit
  val unlock_read : t -> unit
  val lock_write : t -> unit
  val unlock_write : t -> unit
end

module Barrier : sig
  type t
  (** A cyclic barrier for [parties] threads, built from a mutex, a counter,
      and a generation event. *)

  val create : ?name:string -> int -> t

  val await : t -> unit
  (** Blocks until [parties] threads have arrived; the last arrival releases
      the generation. Reusable across rounds. *)
end
