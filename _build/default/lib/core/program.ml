type booted = {
  threads : (unit -> unit) list;
  snapshot : (unit -> Fairmc_util.Fnv.t) option;
}

type t = { name : string; boot : unit -> booted }

let make ~name boot = { name; boot }

let of_threads ~name ?snapshot boot =
  { name; boot = (fun () -> { threads = boot (); snapshot }) }
