(** The synchronization API for programs under test.

    This is the moral equivalent of the Win32 surface CHESS instruments:
    mutexes (with try- and timed- variants), semaphores, manual- and
    auto-reset events, interlocked shared variables, [yield]/[sleep], thread
    creation and join, and a demonic data choice. Every call is a scheduling
    point: the calling thread may be preempted there, and the checker
    explores the alternatives.

    Creation functions ([Mutex.create], [Svar.create], ...) may only be
    called from a program's [boot] function or from a running thread; all
    other operations only from a running thread.

    Yield inference (paper §4): [yield], [sleep], and every [timed_*]
    operation that times out count as yields for the fair scheduler. *)

val yield : unit -> unit
(** Explicit processor yield. Signals the fair scheduler that the caller
    cannot make progress — the good-samaritan contract. *)

val sleep : unit -> unit
(** Sleep for a finite duration; semantically identical to {!yield} (the
    checker abstracts time), kept separate for trace readability. *)

val spawn : (unit -> unit) -> int
(** Create a thread; returns its tid. The child runs up to its first
    scheduling point as part of the creation transition. *)

val join : int -> unit
(** Block until thread [tid] has finished. *)

val self : unit -> int

val choose : int -> int
(** [choose n] demonically picks a value in [\[0, n)]: the checker explores
    every alternative. Use for nondeterministic test inputs. *)

val at : int -> unit
(** [at region] tags the calling thread as being in control region [region].
    Not a scheduling point — it only refines state signatures, which
    otherwise identify a thread's control location by its pending operation
    alone. Needed when two control points with different futures share the
    same pending operation and data (the manual state-abstraction effort the
    paper describes in §4.2.1). *)

val check : bool -> string -> unit
(** [check cond msg] reports a safety violation (with the failing trace) if
    [cond] is false. *)

val fail : string -> 'a
(** Unconditional safety violation. *)

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t
  val lock : t -> unit
  val try_lock : t -> bool
  val timed_lock : t -> bool
  (** Acquire with a finite timeout: never blocks; failure is a yield. *)

  val unlock : t -> unit
  val id : t -> Op.obj
end

module Semaphore : sig
  type t

  val create : ?name:string -> int -> t
  val wait : t -> unit
  val try_wait : t -> bool
  val timed_wait : t -> bool
  val post : t -> unit
  val id : t -> Op.obj
end

module Event : sig
  type t

  val create : ?name:string -> ?auto:bool -> ?initial:bool -> unit -> t
  (** [auto] (default false): a successful wait atomically resets the event
      (Win32 auto-reset semantics). *)

  val wait : t -> unit
  val timed_wait : t -> bool
  val set : t -> unit
  val reset : t -> unit
  val id : t -> Op.obj
end

module Svar : sig
  type 'a t
  (** A shared variable. Every access is a scheduling point, which is how the
      checker interleaves data races on "volatile" state. Plain OCaml values
      captured by thread closures are invisible to the scheduler — shared
      state must live in [Svar]s (or behind a mutex). *)

  val create : ?name:string -> ?hash:(Fairmc_util.Fnv.t -> 'a -> Fairmc_util.Fnv.t) -> 'a -> 'a t
  (** [hash] registers the variable's value into state signatures, enabling
      state-coverage measurement without a manual snapshot function. *)

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val update : 'a t -> ('a -> 'a) -> 'a
  (** Interlocked read-modify-write; returns the previous value. *)

  val cas : 'a t -> expected:'a -> 'a -> bool
  (** Interlocked compare-and-swap (structural equality on [expected]). *)

  val incr : int t -> int
  (** Interlocked increment; returns the previous value. *)

  val id : 'a t -> Op.obj
end

module Raw : sig
  (** Low-level access for interpreters built on the engine (the ChessLang
      frontend): register bare scheduling-point objects and perform
      operations directly. Ordinary programs should use the typed API. *)

  val var : ?name:string -> unit -> Op.obj
  (** A bare shared-variable identity: a scheduling point with no storage. *)

  val sched : Op.t -> int
  (** Perform one operation; the result encodes try/timed success (0/1) or
      the chosen alternative for [Choose]. *)
end

val int_var : ?name:string -> int -> int Svar.t
(** An [int] shared variable whose value participates in state signatures. *)

val bool_var : ?name:string -> bool -> bool Svar.t
