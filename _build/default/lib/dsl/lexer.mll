{
(* ChessLang lexer. Produces Token.t values with source positions taken from
   the lexbuf; comments are '//' to end of line and '/* ... */' (nested). *)

open Token

exception Error of string * Ast.pos

let pos_of lexbuf =
  let p = Lexing.lexeme_start_p lexbuf in
  { Ast.line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1 }

let keywords =
  [ ("program", KW_PROGRAM); ("var", KW_VAR); ("array", KW_ARRAY);
    ("mutex", KW_MUTEX); ("sem", KW_SEM); ("event", KW_EVENT);
    ("autoevent", KW_AUTOEVENT); ("thread", KW_THREAD); ("local", KW_LOCAL);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("yield", KW_YIELD);
    ("sleep", KW_SLEEP); ("skip", KW_SKIP); ("assert", KW_ASSERT);
    ("atomic", KW_ATOMIC); ("lock", KW_LOCK); ("unlock", KW_UNLOCK);
    ("trylock", KW_TRYLOCK); ("timedlock", KW_TIMEDLOCK); ("wait", KW_WAIT);
    ("timedwait", KW_TIMEDWAIT); ("set", KW_SET); ("reset", KW_RESET);
    ("p", KW_P); ("v", KW_V); ("semtry", KW_SEMTRY); ("choose", KW_CHOOSE);
    ("true", KW_TRUE); ("false", KW_FALSE) ]
}

let ident = ['a'-'z' 'A'-'Z' '_'] ['a'-'z' 'A'-'Z' '0'-'9' '_']*
let digits = ['0'-'9']+
let blank = [' ' '\t' '\r']

rule token = parse
  | blank+ { token lexbuf }
  | '\n' { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']* { token lexbuf }
  | "/*" { comment 1 lexbuf; token lexbuf }
  | digits as n {
      match int_of_string_opt n with
      | Some v -> INT v
      | None -> raise (Error (Printf.sprintf "integer literal %s out of range" n, pos_of lexbuf)) }
  | ident as id { match List.assoc_opt id keywords with Some kw -> kw | None -> IDENT id }
  | '"' { STRING (string_lit (Buffer.create 16) lexbuf) }
  | "(" { LPAREN } | ")" { RPAREN }
  | "{" { LBRACE } | "}" { RBRACE }
  | "[" { LBRACKET } | "]" { RBRACKET }
  | ";" { SEMI } | "," { COMMA }
  | "==" { EQ } | "!=" { NE }
  | "<=" { LE } | ">=" { GE }
  | "<" { LT } | ">" { GT }
  | "=" { ASSIGN }
  | "+" { PLUS } | "-" { MINUS } | "*" { STAR } | "/" { SLASH } | "%" { PERCENT }
  | "&&" { ANDAND } | "||" { OROR } | "!" { BANG }
  | eof { EOF }
  | _ as c { raise (Error (Printf.sprintf "unexpected character %C" c, pos_of lexbuf)) }

and comment depth = parse
  | "*/" { if depth > 1 then comment (depth - 1) lexbuf }
  | "/*" { comment (depth + 1) lexbuf }
  | '\n' { Lexing.new_line lexbuf; comment depth lexbuf }
  | eof { raise (Error ("unterminated comment", pos_of lexbuf)) }
  | _ { comment depth lexbuf }

and string_lit buf = parse
  | '"' { Buffer.contents buf }
  | "\\\"" { Buffer.add_char buf '"'; string_lit buf lexbuf }
  | "\\\\" { Buffer.add_char buf '\\'; string_lit buf lexbuf }
  | "\\n" { Buffer.add_char buf '\n'; string_lit buf lexbuf }
  | '\n' { raise (Error ("newline in string literal", pos_of lexbuf)) }
  | eof { raise (Error ("unterminated string literal", pos_of lexbuf)) }
  | _ as c { Buffer.add_char buf c; string_lit buf lexbuf }

{
(* The position paired with each token is the token's start. *)
let tokenize_string src =
  let lexbuf = Lexing.from_string src in
  let rec go acc =
    match token lexbuf with
    | EOF -> List.rev ((EOF, pos_of lexbuf) :: acc)
    | t -> go ((t, pos_of lexbuf) :: acc)
  in
  go []
}
