lib/dsl/fairmc_dsl.ml: Ast Lexer Machine Parser Sema Token
