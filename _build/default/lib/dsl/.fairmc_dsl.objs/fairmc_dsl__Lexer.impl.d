lib/dsl/lexer.ml: Ast Buffer Lexing List Printf Token
