lib/dsl/sema.ml: Ast Format Hashtbl List
