lib/dsl/ast.ml: Format List
