lib/dsl/parser.ml: Ast Filename Lexer List Printf Token
