lib/dsl/machine.mli: Ast Fairmc_core
