lib/dsl/machine.ml: Array Ast Bool Fairmc_core Fairmc_util Format Hashtbl List Op Option Program Sema Sync
