lib/dsl/sema.mli: Ast
