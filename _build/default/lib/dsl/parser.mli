(** Recursive-descent parser for ChessLang.

    Hand-written (the sealed build environment has no menhir); operator
    precedence follows C: [||] < [&&] < comparisons < [+ -] < [* / %] <
    unary. Every statement receives a unique id, which the interpreter uses
    as the thread's program counter in state signatures. *)

exception Error of string * Ast.pos

val parse_string : ?name:string -> string -> Ast.program
(** @raise Error on syntax errors (with position).
    @raise Lexer.Error on lexical errors. *)

val parse_file : string -> Ast.program
