(** ChessLang — a small concurrent language frontend for the fair stateless
    model checker. See {!Ast} for the syntax, {!Machine} for the execution
    model. *)

module Ast = Ast
module Token = Token
module Lexer = Lexer
module Parser = Parser
module Sema = Sema
module Machine = Machine

(** [load_string src] parses, checks, and compiles a ChessLang program. *)
let load_string ?name src = Machine.compile (Parser.parse_string ?name src)

let load_file path = Machine.compile (Parser.parse_file path)
