type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or
type unop = Neg | Not

type expr =
  | Int of int
  | Name of pos * string
  | Index of pos * string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Try_lock of pos * string
  | Timed_lock of pos * string
  | Timed_wait of pos * string
  | Sem_try of pos * string
  | Choose of pos * int

type lhs =
  | Lname of pos * string
  | Lindex of pos * string * expr

type stmt = { id : int; pos : pos; kind : kind }

and kind =
  | Local of string * expr
  | Assign of lhs * expr
  | If of expr * block * block
  | While of expr * block
  | Lock of string
  | Unlock of string
  | Wait of string
  | Set_event of string
  | Reset_event of string
  | Sem_p of string
  | Sem_v of string
  | Yield
  | Sleep
  | Skip
  | Assert of expr * string
  | Atomic of block

and block = stmt list

type decl =
  | Dvar of pos * string * int
  | Darray of pos * string * int * int
  | Dmutex of pos * string
  | Dsem of pos * string * int
  | Devent of pos * string * bool
  | Dthread of pos * string * block

type program = { prog_name : string; decls : decl list }

let threads p =
  List.filter_map (function Dthread (_, n, b) -> Some (n, b) | _ -> None) p.decls
