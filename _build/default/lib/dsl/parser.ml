open Ast
module T = Token

exception Error of string * Ast.pos

type state = {
  mutable toks : (T.t * pos) list;
  mutable next_id : int;
}

let fail st msg =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> { line = 0; col = 0 } in
  raise (Error (msg, pos))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> T.EOF
let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> T.EOF
let pos st = match st.toks with (_, p) :: _ -> p | [] -> { line = 0; col = 0 }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s, found %s" (T.to_string tok) (T.to_string (peek st)))

let ident st =
  match peek st with
  | T.IDENT s ->
    advance st;
    s
  | t -> fail st (Printf.sprintf "expected an identifier, found %s" (T.to_string t))

let int_lit st =
  match peek st with
  | T.INT n ->
    advance st;
    n
  | T.MINUS ->
    advance st;
    (match peek st with
     | T.INT n ->
       advance st;
       -n
     | t -> fail st (Printf.sprintf "expected an integer, found %s" (T.to_string t)))
  | t -> fail st (Printf.sprintf "expected an integer, found %s" (T.to_string t))

let fresh st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

(* Expressions: precedence climbing. *)

let paren_ident st kw =
  eat st kw;
  eat st T.LPAREN;
  let n = ident st in
  eat st T.RPAREN;
  n

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  if peek st = T.OROR then begin
    advance st;
    Binop (Or, lhs, or_expr st)
  end
  else lhs

and and_expr st =
  let lhs = cmp_expr st in
  if peek st = T.ANDAND then begin
    advance st;
    Binop (And, lhs, and_expr st)
  end
  else lhs

and cmp_expr st =
  let lhs = add_expr st in
  let op =
    match peek st with
    | T.EQ -> Some Eq
    | T.NE -> Some Ne
    | T.LT -> Some Lt
    | T.LE -> Some Le
    | T.GT -> Some Gt
    | T.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Binop (op, lhs, add_expr st)

and add_expr st =
  let rec go lhs =
    match peek st with
    | T.PLUS ->
      advance st;
      go (Binop (Add, lhs, mul_expr st))
    | T.MINUS ->
      advance st;
      go (Binop (Sub, lhs, mul_expr st))
    | _ -> lhs
  in
  go (mul_expr st)

and mul_expr st =
  let rec go lhs =
    match peek st with
    | T.STAR ->
      advance st;
      go (Binop (Mul, lhs, unary_expr st))
    | T.SLASH ->
      advance st;
      go (Binop (Div, lhs, unary_expr st))
    | T.PERCENT ->
      advance st;
      go (Binop (Mod, lhs, unary_expr st))
    | _ -> lhs
  in
  go (unary_expr st)

and unary_expr st =
  match peek st with
  | T.BANG ->
    advance st;
    Unop (Not, unary_expr st)
  | T.MINUS ->
    advance st;
    Unop (Neg, unary_expr st)
  | _ -> primary_expr st

and primary_expr st =
  let p = pos st in
  match peek st with
  | T.INT n ->
    advance st;
    Int n
  | T.KW_TRUE ->
    advance st;
    Int 1
  | T.KW_FALSE ->
    advance st;
    Int 0
  | T.LPAREN ->
    advance st;
    let e = expr st in
    eat st T.RPAREN;
    e
  | T.KW_TRYLOCK -> Try_lock (p, paren_ident st T.KW_TRYLOCK)
  | T.KW_TIMEDLOCK -> Timed_lock (p, paren_ident st T.KW_TIMEDLOCK)
  | T.KW_TIMEDWAIT -> Timed_wait (p, paren_ident st T.KW_TIMEDWAIT)
  | T.KW_SEMTRY -> Sem_try (p, paren_ident st T.KW_SEMTRY)
  | T.KW_CHOOSE ->
    eat st T.KW_CHOOSE;
    eat st T.LPAREN;
    let n = int_lit st in
    eat st T.RPAREN;
    if n < 1 then fail st "choose requires a positive alternative count";
    Choose (p, n)
  | T.IDENT name ->
    advance st;
    if peek st = T.LBRACKET then begin
      advance st;
      let idx = expr st in
      eat st T.RBRACKET;
      Index (p, name, idx)
    end
    else Name (p, name)
  | t -> fail st (Printf.sprintf "expected an expression, found %s" (T.to_string t))

(* Statements. *)

let rec block st =
  eat st T.LBRACE;
  let rec stmts acc =
    if peek st = T.RBRACE then begin
      advance st;
      List.rev acc
    end
    else stmts (stmt st :: acc)
  in
  stmts []

and stmt st =
  let p = pos st in
  let mk kind = { id = fresh st; pos = p; kind } in
  let simple kind =
    advance st;
    eat st T.SEMI;
    mk kind
  in
  let call kw build =
    let n = paren_ident st kw in
    eat st T.SEMI;
    mk (build n)
  in
  match peek st with
  | T.KW_LOCAL ->
    advance st;
    let n = ident st in
    eat st T.ASSIGN;
    let e = expr st in
    eat st T.SEMI;
    mk (Local (n, e))
  | T.KW_IF ->
    advance st;
    eat st T.LPAREN;
    let c = expr st in
    eat st T.RPAREN;
    let then_ = block st in
    let else_ =
      if peek st = T.KW_ELSE then begin
        advance st;
        if peek st = T.KW_IF then [ stmt st ] else block st
      end
      else []
    in
    mk (If (c, then_, else_))
  | T.KW_WHILE ->
    advance st;
    eat st T.LPAREN;
    let c = expr st in
    eat st T.RPAREN;
    mk (While (c, block st))
  | T.KW_LOCK -> call T.KW_LOCK (fun n -> Lock n)
  | T.KW_UNLOCK -> call T.KW_UNLOCK (fun n -> Unlock n)
  | T.KW_WAIT -> call T.KW_WAIT (fun n -> Wait n)
  | T.KW_SET -> call T.KW_SET (fun n -> Set_event n)
  | T.KW_RESET -> call T.KW_RESET (fun n -> Reset_event n)
  | T.KW_P -> call T.KW_P (fun n -> Sem_p n)
  | T.KW_V -> call T.KW_V (fun n -> Sem_v n)
  | T.KW_YIELD -> simple Yield
  | T.KW_SLEEP -> simple Sleep
  | T.KW_SKIP -> simple Skip
  | T.KW_ASSERT ->
    advance st;
    eat st T.LPAREN;
    let e = expr st in
    let msg =
      if peek st = T.COMMA then begin
        advance st;
        match peek st with
        | T.STRING s ->
          advance st;
          s
        | t -> fail st (Printf.sprintf "expected a string, found %s" (T.to_string t))
      end
      else "assertion failed"
    in
    eat st T.RPAREN;
    eat st T.SEMI;
    mk (Assert (e, msg))
  | T.KW_ATOMIC ->
    advance st;
    mk (Atomic (block st))
  | T.IDENT name ->
    advance st;
    if peek st = T.LBRACKET then begin
      advance st;
      let idx = expr st in
      eat st T.RBRACKET;
      eat st T.ASSIGN;
      let e = expr st in
      eat st T.SEMI;
      mk (Assign (Lindex (p, name, idx), e))
    end
    else begin
      eat st T.ASSIGN;
      let e = expr st in
      eat st T.SEMI;
      mk (Assign (Lname (p, name), e))
    end
  | t -> fail st (Printf.sprintf "expected a statement, found %s" (T.to_string t))

(* Declarations. *)

let decl st =
  let p = pos st in
  match peek st with
  | T.KW_VAR ->
    advance st;
    let n = ident st in
    let init =
      if peek st = T.ASSIGN then begin
        advance st;
        int_lit st
      end
      else 0
    in
    eat st T.SEMI;
    Dvar (p, n, init)
  | T.KW_ARRAY ->
    advance st;
    let n = ident st in
    eat st T.LBRACKET;
    let size = int_lit st in
    eat st T.RBRACKET;
    let init =
      if peek st = T.ASSIGN then begin
        advance st;
        int_lit st
      end
      else 0
    in
    eat st T.SEMI;
    if size < 1 then raise (Error ("array size must be positive", p));
    Darray (p, n, size, init)
  | T.KW_MUTEX ->
    advance st;
    let n = ident st in
    eat st T.SEMI;
    Dmutex (p, n)
  | T.KW_SEM ->
    advance st;
    let n = ident st in
    eat st T.ASSIGN;
    let init = int_lit st in
    eat st T.SEMI;
    Dsem (p, n, init)
  | T.KW_EVENT ->
    advance st;
    let n = ident st in
    eat st T.SEMI;
    Devent (p, n, false)
  | T.KW_AUTOEVENT ->
    advance st;
    let n = ident st in
    eat st T.SEMI;
    Devent (p, n, true)
  | T.KW_THREAD ->
    advance st;
    let n = ident st in
    Dthread (p, n, block st)
  | t ->
    raise
      (Error (Printf.sprintf "expected a declaration, found %s" (T.to_string t), p))

let parse_string ?(name = "<string>") src =
  let st = { toks = Lexer.tokenize_string src; next_id = 0 } in
  let prog_name =
    if peek st = T.KW_PROGRAM then begin
      advance st;
      match peek st with
      | T.IDENT n ->
        advance st;
        if peek st = T.SEMI then advance st;
        n
      | _ -> fail st "expected a program name"
    end
    else Filename.remove_extension (Filename.basename name)
  in
  let rec decls acc = if peek st = T.EOF then List.rev acc else decls (decl st :: acc) in
  let ds = decls [] in
  ignore peek2;
  { prog_name; decls = ds }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ~name:path src
