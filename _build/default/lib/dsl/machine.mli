(** The ChessLang interpreter: compiles a checked program to an engine
    {!Fairmc_core.Program.t}.

    Execution model: one statement = one transition. Before executing a
    statement, the interpreter computes the single engine operation the
    statement corresponds to (a lock, an event wait, a shared-variable
    access, a demonic choice — or nothing, for statements touching only
    locals, which run silently inside the preceding transition). Expression
    evaluation is atomic within the transition.

    Because thread control state is an explicit frame stack of statement
    labels, the interpreter supplies an exact state snapshot: globals, every
    thread's program counter stack and locals. ChessLang programs therefore
    get precise state-coverage measurement for free, where native workloads
    need manual abstraction (paper §4.2.1). *)

val compile : Ast.program -> Fairmc_core.Program.t
(** @raise Sema.Error on static errors. *)
