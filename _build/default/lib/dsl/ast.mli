(** Abstract syntax of ChessLang.

    ChessLang is a small Promela-flavoured language for writing concurrent
    litmus programs: integer globals and arrays, mutexes, semaphores,
    events, and statically declared threads. Its interpreter runs on the
    model-checking engine with *statement atomicity*: each statement is one
    transition (one scheduling point), which keeps thread control states
    explicit and lets the frontend provide exact state signatures — the
    paper's Figure 3 program is seven lines, and its state space is captured
    precisely for coverage measurement. *)

type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or
type unop = Neg | Not

type expr =
  | Int of int
  | Name of pos * string  (** local or global scalar; resolved by Sema *)
  | Index of pos * string * expr  (** global array element *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Try_lock of pos * string
  | Timed_lock of pos * string
  | Timed_wait of pos * string  (** timed event wait: yields on timeout *)
  | Sem_try of pos * string
  | Choose of pos * int

type lhs =
  | Lname of pos * string
  | Lindex of pos * string * expr

type stmt = { id : int;  (** unique label, assigned by the parser *) pos : pos; kind : kind }

and kind =
  | Local of string * expr  (** declare-and-initialize a thread-local *)
  | Assign of lhs * expr
  | If of expr * block * block
  | While of expr * block
  | Lock of string
  | Unlock of string
  | Wait of string
  | Set_event of string
  | Reset_event of string
  | Sem_p of string
  | Sem_v of string
  | Yield
  | Sleep
  | Skip
  | Assert of expr * string
  | Atomic of block
      (** execute the whole block as a single transition; may not contain
          synchronization, yields, or demonic choices *)

and block = stmt list

type decl =
  | Dvar of pos * string * int
  | Darray of pos * string * int * int  (** name, size, initial value *)
  | Dmutex of pos * string
  | Dsem of pos * string * int
  | Devent of pos * string * bool  (** auto-reset? *)
  | Dthread of pos * string * block

type program = { prog_name : string; decls : decl list }

val threads : program -> (string * block) list
