open Ast

type gkind = Scalar | Array of int | Mutex | Sem of int | Event of bool

type info = {
  kinds : (string * gkind) list;
  thread_locals : (string * string list) list;
}

exception Error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun m -> raise (Error (m, pos))) fmt

let kind_name = function
  | Scalar -> "variable"
  | Array _ -> "array"
  | Mutex -> "mutex"
  | Sem _ -> "semaphore"
  | Event _ -> "event"

(* Effectful primitives: scheduler interactions embedded in expressions. *)
let rec effectful_list e =
  match e with
  | Int _ | Name _ -> []
  | Index (_, _, i) -> effectful_list i
  | Binop (_, a, b) -> effectful_list a @ effectful_list b
  | Unop (_, a) -> effectful_list a
  | Try_lock _ | Timed_lock _ | Timed_wait _ | Sem_try _ | Choose _ -> [ e ]

let effectful e = match effectful_list e with x :: _ -> Some x | [] -> None

let pos_of_expr = function
  | Name (p, _) | Index (p, _, _) | Try_lock (p, _) | Timed_lock (p, _)
  | Timed_wait (p, _) | Sem_try (p, _) | Choose (p, _) -> Some p
  | Int _ | Binop _ | Unop _ -> None

let check (prog : program) =
  let kinds : (string, gkind) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let declare pos name kind =
    if Hashtbl.mem kinds name then err pos "duplicate declaration of %s" name;
    Hashtbl.add kinds name kind;
    order := (name, kind) :: !order
  in
  let threads = ref [] in
  List.iter
    (fun d ->
      match d with
      | Dvar (p, n, _) -> declare p n Scalar
      | Darray (p, n, size, _) -> declare p n (Array size)
      | Dmutex (p, n) -> declare p n Mutex
      | Dsem (p, n, init) ->
        if init < 0 then err p "semaphore %s: negative initial count" n;
        declare p n (Sem init)
      | Devent (p, n, auto) -> declare p n (Event auto)
      | Dthread (p, n, body) ->
        if List.mem_assoc n !threads then err p "duplicate thread %s" n;
        threads := (n, (p, body)) :: !threads)
    prog.decls;
  let threads = List.rev !threads in
  if threads = [] then
    err { line = 1; col = 1 } "program %s declares no threads" prog.prog_name;

  let expect pos name want =
    match Hashtbl.find_opt kinds name with
    | Some k when k = want || (match (k, want) with
                               | Sem _, Sem _ | Event _, Event _ | Array _, Array _ -> true
                               | _ -> false) -> ()
    | Some k -> err pos "%s is a %s, not a %s" name (kind_name k) (kind_name want)
    | None -> err pos "unknown name %s" name
  in

  let thread_locals = ref [] in
  let check_thread (tname, (_, body)) =
    (* Flow-insensitive local scope: every [local x = ...] in the thread
       declares [x] for the whole thread body. *)
    let locals : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let rec collect b =
      List.iter
        (fun s ->
          match s.kind with
          | Local (n, _) ->
            if Hashtbl.mem kinds n then
              err s.pos "local %s in thread %s shadows a global declaration" n tname;
            Hashtbl.replace locals n ()
          | If (_, a, b) ->
            collect a;
            collect b
          | While (_, b) | Atomic b -> collect b
          | Assign _ | Lock _ | Unlock _ | Wait _ | Set_event _ | Reset_event _
          | Sem_p _ | Sem_v _ | Yield | Sleep | Skip | Assert _ -> ())
        b
    in
    collect body;
    let rec check_expr ~in_atomic e =
      match e with
      | Int _ -> ()
      | Name (p, n) ->
        if not (Hashtbl.mem locals n) then begin
          match Hashtbl.find_opt kinds n with
          | Some Scalar -> ()
          | Some k -> err p "%s is a %s and cannot be read as a value" n (kind_name k)
          | None -> err p "unknown name %s" n
        end
      | Index (p, a, i) ->
        expect p a (Array 0);
        check_expr ~in_atomic i
      | Binop (_, a, b) ->
        check_expr ~in_atomic a;
        check_expr ~in_atomic b
      | Unop (_, a) -> check_expr ~in_atomic a
      | Try_lock (p, m) | Timed_lock (p, m) ->
        if in_atomic then err p "synchronization inside an atomic block";
        expect p m Mutex
      | Timed_wait (p, ev) ->
        if in_atomic then err p "synchronization inside an atomic block";
        expect p ev (Event false)
      | Sem_try (p, sm) ->
        if in_atomic then err p "synchronization inside an atomic block";
        expect p sm (Sem 0)
      | Choose (p, _) -> if in_atomic then err p "choice inside an atomic block"
    in
    let check_lhs ~in_atomic = function
      | Lname (p, n) ->
        if not (Hashtbl.mem locals n) then begin
          match Hashtbl.find_opt kinds n with
          | Some Scalar -> ()
          | Some k -> err p "cannot assign to %s (a %s)" n (kind_name k)
          | None -> err p "assignment to undeclared variable %s (use 'local %s = ...')" n n
        end
      | Lindex (p, a, i) ->
        expect p a (Array 0);
        check_expr ~in_atomic i
    in
    let stmt_effect_count s exprs =
      let n = List.fold_left (fun acc e -> acc + List.length (effectful_list e)) 0 exprs in
      if n > 1 then
        err s.pos
          "a statement is a single transition and may contain at most one \
           trylock/timedlock/timedwait/semtry/choose";
      ignore (List.map pos_of_expr exprs)
    in
    let rec check_stmt ~in_atomic s =
      match s.kind with
      | Local (_, e) | Assert (e, _) ->
        check_expr ~in_atomic e;
        stmt_effect_count s [ e ]
      | Assign (lhs, e) ->
        check_lhs ~in_atomic lhs;
        check_expr ~in_atomic e;
        let idx = match lhs with Lindex (_, _, i) -> [ i ] | Lname _ -> [] in
        stmt_effect_count s (e :: idx)
      | If (c, a, b) ->
        check_expr ~in_atomic c;
        stmt_effect_count s [ c ];
        check_block ~in_atomic a;
        check_block ~in_atomic b
      | While (c, b) ->
        check_expr ~in_atomic c;
        stmt_effect_count s [ c ];
        check_block ~in_atomic b
      | Lock m | Unlock m ->
        if in_atomic then err s.pos "synchronization inside an atomic block";
        expect s.pos m Mutex
      | Wait ev | Set_event ev | Reset_event ev ->
        if in_atomic then err s.pos "synchronization inside an atomic block";
        expect s.pos ev (Event false)
      | Sem_p sm | Sem_v sm ->
        if in_atomic then err s.pos "synchronization inside an atomic block";
        expect s.pos sm (Sem 0)
      | Yield | Sleep ->
        if in_atomic then err s.pos "yield inside an atomic block"
      | Skip -> ()
      | Atomic b ->
        if in_atomic then err s.pos "nested atomic block";
        check_block ~in_atomic:true b
    and check_block ~in_atomic b = List.iter (check_stmt ~in_atomic) b in
    check_block ~in_atomic:false body;
    thread_locals :=
      (tname, List.of_seq (Hashtbl.to_seq_keys locals)) :: !thread_locals
  in
  List.iter check_thread threads;
  { kinds = List.rev !order; thread_locals = List.rev !thread_locals }

let globals_read info ~thread e =
  let locals =
    match List.assoc_opt thread info.thread_locals with Some l -> l | None -> []
  in
  let is_global n = (not (List.mem n locals)) && List.mem_assoc n info.kinds in
  let rec go acc e =
    match e with
    | Int _ | Try_lock _ | Timed_lock _ | Timed_wait _ | Sem_try _ | Choose _ -> acc
    | Name (_, n) -> if is_global n then n :: acc else acc
    | Index (_, a, i) -> go (a :: acc) i
    | Binop (_, a, b) -> go (go acc a) b
    | Unop (_, a) -> go acc a
  in
  List.rev (go [] e)
