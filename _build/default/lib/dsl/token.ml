(* Tokens shared by the ocamllex lexer and the hand-written parser.
   (Menhir is unavailable in this environment, so the parser is recursive
   descent over this token stream.) *)

type t =
  | IDENT of string
  | INT of int
  | STRING of string
  (* keywords *)
  | KW_PROGRAM
  | KW_VAR
  | KW_ARRAY
  | KW_MUTEX
  | KW_SEM
  | KW_EVENT
  | KW_AUTOEVENT
  | KW_THREAD
  | KW_LOCAL
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_YIELD
  | KW_SLEEP
  | KW_SKIP
  | KW_ASSERT
  | KW_ATOMIC
  | KW_LOCK
  | KW_UNLOCK
  | KW_TRYLOCK
  | KW_TIMEDLOCK
  | KW_WAIT
  | KW_TIMEDWAIT
  | KW_SET
  | KW_RESET
  | KW_P
  | KW_V
  | KW_SEMTRY
  | KW_CHOOSE
  | KW_TRUE
  | KW_FALSE
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ANDAND
  | OROR
  | BANG
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | KW_PROGRAM -> "'program'"
  | KW_VAR -> "'var'"
  | KW_ARRAY -> "'array'"
  | KW_MUTEX -> "'mutex'"
  | KW_SEM -> "'sem'"
  | KW_EVENT -> "'event'"
  | KW_AUTOEVENT -> "'autoevent'"
  | KW_THREAD -> "'thread'"
  | KW_LOCAL -> "'local'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_YIELD -> "'yield'"
  | KW_SLEEP -> "'sleep'"
  | KW_SKIP -> "'skip'"
  | KW_ASSERT -> "'assert'"
  | KW_ATOMIC -> "'atomic'"
  | KW_LOCK -> "'lock'"
  | KW_UNLOCK -> "'unlock'"
  | KW_TRYLOCK -> "'trylock'"
  | KW_TIMEDLOCK -> "'timedlock'"
  | KW_WAIT -> "'wait'"
  | KW_TIMEDWAIT -> "'timedwait'"
  | KW_SET -> "'set'"
  | KW_RESET -> "'reset'"
  | KW_P -> "'p'"
  | KW_V -> "'v'"
  | KW_SEMTRY -> "'semtry'"
  | KW_CHOOSE -> "'choose'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"
