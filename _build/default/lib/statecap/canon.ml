module Fnv = Fairmc_util.Fnv

let bag h xs = Fnv.int_list h (List.sort compare xs)

let remap_first_occurrence xs =
  let tbl = Hashtbl.create 16 in
  List.map
    (fun x ->
      match Hashtbl.find_opt tbl x with
      | Some r -> r
      | None ->
        let r = Hashtbl.length tbl in
        Hashtbl.add tbl x r;
        r)
    xs

let ids h xs = Fnv.int_list h (remap_first_occurrence xs)
