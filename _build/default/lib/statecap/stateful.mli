(** Ground-truth state enumeration by stateful search.

    The paper measures coverage by comparing states visited by the stateless
    search against "the total number of states reachable with a strategy",
    obtained with "a stateful search of the state space [storing] the state
    signatures in a hash table" (§4.2.1). This module is that stateful
    search: a breadth-first exploration that identifies states by their
    signatures (so it terminates on cyclic state spaces) built on the same
    stateless engine — a state is re-entered by replaying its decision
    prefix, since the engine cannot restore states directly. *)

type mode =
  | Full  (** all interleavings (the paper's "dfs" strategy rows) *)
  | Cb of int  (** interleavings with at most [k] preemptions *)

type result = {
  states : int;  (** distinct state signatures reached *)
  nodes : int;  (** search nodes expanded (state × scheduling context) *)
  transitions : int;  (** engine transitions executed, including replays *)
  complete : bool;  (** false if a limit stopped the enumeration *)
  signatures : (int64, unit) Hashtbl.t;
}

val explore :
  ?mode:mode ->
  ?max_states:int ->
  ?max_nodes:int ->
  ?max_steps_per_path:int ->
  ?time_limit:float ->
  Fairmc_core.Program.t ->
  result
