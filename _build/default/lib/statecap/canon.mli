(** Canonicalization helpers for state signatures.

    The paper's coverage experiments (§4.2.1) canonicalize heaps before
    hashing so that behaviourally equivalent states with different allocation
    orders collapse to one signature (citing Iosif's heap symmetries). Our
    engine has no heap, but the same aliasing arises for collections whose
    element *order* is irrelevant (bags of task ids, free lists) and for
    dynamically allocated identifiers. *)

val bag : Fairmc_util.Fnv.t -> int list -> Fairmc_util.Fnv.t
(** Hash a multiset of ints: order-insensitive. *)

val remap_first_occurrence : int list -> int list
(** Replace each id by its rank of first occurrence: [[7; 3; 7; 9]] becomes
    [[0; 1; 0; 2]]. Two id lists equal up to renaming canonicalize
    identically. *)

val ids : Fairmc_util.Fnv.t -> int list -> Fairmc_util.Fnv.t
(** Hash an id sequence up to renaming ([remap_first_occurrence] then
    hash). *)
