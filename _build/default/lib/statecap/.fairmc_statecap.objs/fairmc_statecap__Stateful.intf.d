lib/statecap/stateful.mli: Fairmc_core Hashtbl
