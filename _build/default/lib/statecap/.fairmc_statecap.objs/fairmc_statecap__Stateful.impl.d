lib/statecap/stateful.ml: Engine Fairmc_core Fairmc_util Fun Hashtbl List Program Queue Unix
