lib/statecap/canon.mli: Fairmc_util
