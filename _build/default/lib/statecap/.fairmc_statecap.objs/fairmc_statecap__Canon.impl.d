lib/statecap/canon.ml: Fairmc_util Hashtbl List
