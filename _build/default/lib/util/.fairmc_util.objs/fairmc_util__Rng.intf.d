lib/util/rng.mli:
