lib/util/fnv.ml: Char Int64 List Printf String
