lib/util/fnv.mli:
