lib/util/bitset.ml: Format List Printf Sys
