(** Small integer sets represented as bit vectors in a native [int].

    Thread identifiers in the model checker are dense small integers (the
    paper's largest benchmark uses 25 threads), so a 62-bit word is ample.
    All operations are O(1) except [fold]/[cardinal]-style traversals. *)

type t = private int

val max_capacity : int
(** Largest element representable, i.e. [Sys.int_size - 2]. *)

val empty : t
val is_empty : t -> bool
val singleton : int -> t

val full : int -> t
(** [full n] is the set [{0, ..., n-1}]. *)

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val cardinal : t -> int

val choose : t -> int option
(** Smallest element, if any. *)

val min_elt : t -> int
(** Smallest element. @raise Not_found on the empty set. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val elements : t -> int list
val of_list : int list -> t
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t

val nth : t -> int -> int
(** [nth s i] is the [i]-th smallest element of [s] (0-based).
    @raise Not_found if [i >= cardinal s]. *)

val to_int : t -> int
val unsafe_of_int : int -> t

val pp : Format.formatter -> t -> unit
