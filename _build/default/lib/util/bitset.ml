type t = int

let max_capacity = Sys.int_size - 2

let check_elt i =
  if i < 0 || i > max_capacity then
    invalid_arg (Printf.sprintf "Bitset: element %d out of range [0, %d]" i max_capacity)

let empty = 0
let is_empty s = s = 0

let singleton i =
  check_elt i;
  1 lsl i

let full n =
  if n < 0 || n > max_capacity + 1 then invalid_arg "Bitset.full";
  if n = 0 then 0 else (1 lsl n) - 1

let mem i s = i >= 0 && i <= max_capacity && s land (1 lsl i) <> 0

let add i s =
  check_elt i;
  s lor (1 lsl i)

let remove i s =
  check_elt i;
  s land lnot (1 lsl i)

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let equal a b = a = b
let subset a b = a land lnot b = 0

(* Kernighan popcount; sets are small so the loop runs [cardinal] times. *)
let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let lowest_bit_index s =
  (* [s <> 0]; index of least significant set bit. *)
  let rec go s i = if s land 1 <> 0 then i else go (s lsr 1) (i + 1) in
  go s 0

let choose s = if s = 0 then None else Some (lowest_bit_index s)
let min_elt s = if s = 0 then raise Not_found else lowest_bit_index s

let fold f s init =
  let rec go s acc =
    if s = 0 then acc
    else
      let i = lowest_bit_index s in
      go (s land (s - 1)) (f i acc)
  in
  go s init

let iter f s = fold (fun i () -> f i) s ()
let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun acc i -> add i acc) empty l
let exists p s = fold (fun i acc -> acc || p i) s false
let for_all p s = fold (fun i acc -> acc && p i) s true
let filter p s = fold (fun i acc -> if p i then add i acc else acc) s empty

let nth s i =
  let rec go s i =
    if s = 0 then raise Not_found
    else
      let e = lowest_bit_index s in
      if i = 0 then e else go (s land (s - 1)) (i - 1)
  in
  if i < 0 then raise Not_found else go s i

let to_int s = s
let unsafe_of_int i = i

let pp ppf s =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int) (elements s)
