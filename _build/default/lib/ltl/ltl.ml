type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Globally of t
  | Finally of t

let rec pp ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Prop p -> Format.fprintf ppf "%s" p
  | Not a -> Format.fprintf ppf "!(%a)" pp a
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Implies (a, b) -> Format.fprintf ppf "(%a => %a)" pp a pp b
  | Next a -> Format.fprintf ppf "X(%a)" pp a
  | Until (a, b) -> Format.fprintf ppf "(%a U %a)" pp a pp b
  | Release (a, b) -> Format.fprintf ppf "(%a R %a)" pp a pp b
  | Globally a -> Format.fprintf ppf "G(%a)" pp a
  | Finally a -> Format.fprintf ppf "F(%a)" pp a

let prop p = Prop p
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let g a = Globally a
let f a = Finally a
let gf a = Globally (Finally a)
let fg a = Finally (Globally a)
let not_ a = Not a

type lasso = {
  prefix : (string -> bool) array;
  cycle : (string -> bool) array;
}

let lasso ~prefix ~cycle =
  if cycle = [] then invalid_arg "Ltl.lasso: empty cycle";
  { prefix = Array.of_list prefix; cycle = Array.of_list cycle }

(* Positions 0 .. plen+clen-1 form a single-successor graph; the last cycle
   position loops back to the cycle start. Satisfaction sets are computed
   per subformula; Untils walk forward far enough to traverse the whole
   cycle, which is exact on ultimately periodic words. *)
let eval (l : lasso) formula =
  let plen = Array.length l.prefix and clen = Array.length l.cycle in
  let n = plen + clen in
  let label i p = if i < plen then l.prefix.(i) p else l.cycle.(i - plen) p in
  let succ i = if i = n - 1 then plen else i + 1 in
  let horizon = plen + (2 * clen) in
  let rec sat : t -> bool array = function
    | True -> Array.make n true
    | False -> Array.make n false
    | Prop p -> Array.init n (fun i -> label i p)
    | Not a ->
      let sa = sat a in
      Array.map not sa
    | And (a, b) ->
      let sa = sat a and sb = sat b in
      Array.init n (fun i -> sa.(i) && sb.(i))
    | Or (a, b) ->
      let sa = sat a and sb = sat b in
      Array.init n (fun i -> sa.(i) || sb.(i))
    | Implies (a, b) -> sat (Or (Not a, b))
    | Next a ->
      let sa = sat a in
      Array.init n (fun i -> sa.(succ i))
    | Until (a, b) ->
      let sa = sat a and sb = sat b in
      let upto i =
        (* walk forward: does b occur while a holds continuously? *)
        let rec go j steps =
          if sb.(j) then true
          else if not sa.(j) then false
          else if steps > horizon then false
          else go (succ j) (steps + 1)
        in
        go i 0
      in
      Array.init n upto
    | Release (a, b) -> sat (Not (Until (Not a, Not b)))
    | Finally a -> sat (Until (True, a))
    | Globally a -> sat (Not (Until (True, Not a)))
  in
  (sat formula).(0)

let forall tids mk =
  List.fold_left (fun acc t -> And (acc, mk t)) True tids

let enabled_p t = Printf.sprintf "enabled_%d" t
let sched_p t = Printf.sprintf "sched_%d" t
let yield_p t = Printf.sprintf "yield_%d" t

let strong_fairness ~tids =
  forall tids (fun t -> Implies (gf (Prop (enabled_p t)), gf (Prop (sched_p t))))

let good_samaritan ~tids =
  forall tids (fun t ->
      Implies (gf (Prop (sched_p t)), gf (And (Prop (sched_p t), Prop (yield_p t)))))

let gs_implies_sf ~tids = Implies (good_samaritan ~tids, strong_fairness ~tids)

let labels_of_step ~enabled ~sched ~yielded p =
  let starts_with pre = String.length p > String.length pre && String.sub p 0 (String.length pre) = pre in
  let tid_of pre = int_of_string (String.sub p (String.length pre) (String.length p - String.length pre)) in
  if starts_with "enabled_" then Fairmc_util.Bitset.mem (tid_of "enabled_") enabled
  else if starts_with "sched_" then tid_of "sched_" = sched
  else if starts_with "yield_" then tid_of "yield_" = sched && yielded
  else false
