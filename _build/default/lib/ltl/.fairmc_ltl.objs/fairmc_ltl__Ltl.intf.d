lib/ltl/ltl.mli: Fairmc_util Format
