lib/ltl/ltl.ml: Array Fairmc_util Format List Printf String
