(** A small linear temporal logic over lasso words.

    The paper states its two properties in LTL (Section 3):

    - strong fairness: [SF = ∀t. GF enabled(t) ⇒ GF sched(t)]
    - good samaritan: [GS = ∀t. GF sched(t) ⇒ GF (sched(t) ∧ yield(t))]

    Infinite executions of finite-state programs are ultimately periodic
    (lassos), over which LTL has a decidable, exact semantics. The test
    suite uses this module to check Theorems 1 and 4–6 empirically: it
    builds lassos from engine cycles and evaluates [SF], [GS], and
    [gs_implies_sf] on them. *)

type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Globally of t
  | Finally of t

val pp : Format.formatter -> t -> unit

(** Convenience constructors. *)

val prop : string -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
val g : t -> t
val f : t -> t
val gf : t -> t
val fg : t -> t
val not_ : t -> t

type lasso = {
  prefix : (string -> bool) array;  (** positions 0 .. stem-1 *)
  cycle : (string -> bool) array;  (** repeated forever; nonempty *)
}

val lasso : prefix:(string -> bool) list -> cycle:(string -> bool) list -> lasso
(** @raise Invalid_argument when [cycle] is empty. *)

val eval : lasso -> t -> bool
(** Exact LTL satisfaction on the infinite word [prefix · cycle^ω]. *)

(** {1 The paper's properties} *)

val strong_fairness : tids:int list -> t
(** [SF] over propositions ["enabled_i"], ["sched_i"]. *)

val good_samaritan : tids:int list -> t
(** [GS] over ["sched_i"], ["yield_i"]. *)

val gs_implies_sf : tids:int list -> t
(** The guarantee of Theorem 1 for executions produced by Algorithm 1. *)

val labels_of_step :
  enabled:Fairmc_util.Bitset.t -> sched:int -> yielded:bool -> string -> bool
(** Proposition valuation for one execution step, in the vocabulary of
    {!strong_fairness} and {!good_samaritan}. *)
