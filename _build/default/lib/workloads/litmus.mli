(** Small litmus programs: the paper's running examples and classic
    two-thread shapes, used throughout the tests and benchmarks. *)

val fig3 : unit -> Fairmc_core.Program.t
(** The paper's Figure 3: thread [t] sets [x := 1], thread [u] spins with a
    yield until it observes the write. Fair-terminating; nonterminating
    under the unfair schedule that starves [t]. *)

val fig3_no_yield : unit -> Fairmc_core.Program.t
(** Figure 3 with the yield removed — violates the good-samaritan property;
    a fair search diverges with [u] hogging the scheduler. *)

val store_buffer : unit -> Fairmc_core.Program.t
(** Dekker-style store-buffer shape. Under the engine's sequentially
    consistent memory both threads can't read 0, so the assertion holds. *)

val ticket_lock : unit -> Fairmc_core.Program.t
(** Two threads incrementing a counter under a ticket lock built from
    interlocked operations; asserts mutual exclusion and the final count.
    The spin on the grant variable yields (good samaritan). *)

val race_assert : unit -> Fairmc_core.Program.t
(** A racy check-then-act: both threads do [if x = 0 then x <- x + 1];
    asserts [x = 1] at the end, which a bad interleaving violates. *)

val counter_race : increments:int -> Fairmc_core.Program.t
(** Two threads doing non-atomic [x := x + 1] [increments] times each;
    asserts the (wrong under races) total. *)

val two_step_threads : nthreads:int -> steps:int -> Fairmc_core.Program.t
(** [nthreads] independent threads each performing [steps] writes to private
    variables: the schedule count is the multinomial coefficient — used to
    validate exhaustive-search counting. *)
