open Fairmc_core

type variant = Courteous | Spin_shutdown

let variant_name = function
  | Courteous -> "courteous"
  | Spin_shutdown -> "spin-shutdown"

let name ~workers variant = Printf.sprintf "taskpool-%dw-%s" workers (variant_name variant)

let program ?(workers = 1) ?(tasks = 1) variant =
  Program.of_threads ~name:(name ~workers variant) @@ fun () ->
  let queue = Sync.Svar.create ~name:"queue" ([] : int list) in
  let qlock = Sync.Mutex.create ~name:"qlock" () in
  let stop_group = Sync.bool_var ~name:"stop_group" false in
  let stop_worker =
    Array.init workers (fun i -> Sync.bool_var ~name:(Printf.sprintf "stop%d" i) false)
  in
  let ran = Array.init tasks (fun i -> Sync.int_var ~name:(Printf.sprintf "ran%d" i) 0) in
  let pop_next_task () =
    Sync.Mutex.lock qlock;
    let r =
      match Sync.Svar.get queue with
      | [] -> None
      | t :: rest ->
        Sync.Svar.set queue rest;
        Some t
    in
    Sync.Mutex.unlock qlock;
    r
  in
  (* WorkerGroup::Idle — poll for work with a backoff yield until the group
     stops. Returns a task, or None when the group is shutting down. *)
  let group_idle () =
    let rec poll () =
      if Sync.Svar.get stop_group then None
      else begin
        match pop_next_task () with
        | Some t -> Some t
        | None ->
          (* YieldExponential: the model checker abstracts durations, so the
             backoff is a plain yield. *)
          Sync.yield ();
          poll ()
      end
    in
    poll ()
  in
  (* Worker::Run — Figure 7. The outer loop keeps calling Idle while only
     the group flag is set; the Courteous variant yields there, the
     Spin_shutdown variant spins full-speed without yielding. *)
  let worker i () =
    let task = ref None in
    while not (Sync.Svar.get stop_worker.(i)) do
      let continue_inner = ref true in
      while !continue_inner do
        if Sync.Svar.get stop_worker.(i) then continue_inner := false
        else begin
          match !task with
          | None -> continue_inner := false
          | Some t ->
            ignore (Sync.Svar.incr ran.(t));
            task := pop_next_task ()
        end
      done;
      if not (Sync.Svar.get stop_worker.(i)) then begin
        task := group_idle ();
        if !task = None && variant = Courteous then
          (* Idle returned nothing (the group is stopping): be a good
             samaritan while waiting for our own stop flag. *)
          Sync.yield ()
      end
    done
  in
  let shutdown () =
    (* Enqueue the work, let the pool drain it, then stop: first the group,
       then each worker — opening Figure 7's window. *)
    Sync.Mutex.lock qlock;
    Sync.Svar.set queue (List.init tasks (fun i -> i));
    Sync.Mutex.unlock qlock;
    (* Wait until the queue drains before shutting down. *)
    let rec wait_drain () =
      Sync.Mutex.lock qlock;
      let empty = Sync.Svar.get queue = [] in
      Sync.Mutex.unlock qlock;
      if not empty then begin
        Sync.yield ();
        wait_drain ()
      end
    in
    wait_drain ();
    Sync.Svar.set stop_group true;
    for i = 0 to workers - 1 do
      Sync.Svar.set stop_worker.(i) true
    done;
    for i = 0 to workers - 1 do
      Sync.join i
    done;
    (* A worker checks its stop flag before running the task in hand
       (Figure 7's structure), so a task may be abandoned at shutdown — but
       never run twice. *)
    for t = 0 to tasks - 1 do
      let n = Sync.Svar.get ran.(t) in
      Sync.check (n <= 1) (Printf.sprintf "task %d ran %d times" t n)
    done
  in
  List.init workers (fun i -> worker i) @ [ shutdown ]
