(** Promises — a small data-parallelism library, our stand-in for the
    paper's "Promise" benchmark (Table 1).

    A promise is a write-once cell; [await] is optimized with a spin-then-
    sleep fast path exactly like the code in the paper's Figure 8. The
    [Stale_cache] variant reproduces Figure 8's livelock verbatim: the
    awaiting thread caches the state flag in a local, sleeps politely in the
    uncommon path — and never re-reads the flag, so it spins forever on the
    stale copy. Every iteration yields, so the divergence is a *fair*
    infinite execution: outcome 3 of the paper, a livelock only a fair
    scheduler can expose. *)

type variant =
  | Blocking  (** await blocks on an event — the textbook implementation *)
  | Spin_then_sleep  (** correct optimized await: re-reads the flag each iteration *)
  | Stale_cache  (** Figure 8: waits on a stale local copy — livelock *)

type t

val create : ?name:string -> variant -> t
val fulfill : t -> int -> unit
(** @raise via [Sync.fail] when fulfilled twice. *)

val await : t -> int
val is_fulfilled : t -> bool

val program : variant -> Fairmc_core.Program.t
(** One producer computing a value, one consumer awaiting it. *)

val pipeline_program : ?width:int -> variant -> Fairmc_core.Program.t
(** A fork-join diamond: [width] workers each fulfill a promise; a combiner
    awaits all of them and fulfills a result promise the main thread awaits.
    Exercises the library on the shape data-parallel code actually has. *)

val name : variant -> string
val variant_name : variant -> string
