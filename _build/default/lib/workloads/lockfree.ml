open Fairmc_core

type variant = Tagged | Aba

let variant_name = function Tagged -> "tagged" | Aba -> "aba"
let name v = Printf.sprintf "treiber-%s" (variant_name v)

(* Node indices are packed with a version tag in the head word:
   head = tag * stride + (index + 1), with 0 meaning the empty stack.
   The Aba variant keeps the tag at zero — which is exactly the bug.

   Nodes are recycled through a FIFO free queue guarded by a lock (the
   "allocator slow path"): FIFO reuse is what makes the classic ABA
   interleaving reachable — a node returns to the top of the stack while a
   preempted popper still holds its old successor pointer. *)
type t = {
  variant : variant;
  stride : int;
  head : int Sync.Svar.t;  (* packed stack head *)
  next : int Sync.Svar.t array;  (* successor index + 1, 0 = nil *)
  value : int Sync.Svar.t array;
  (* FIFO free queue (ring buffer) *)
  flock : Sync.Mutex.t;
  fring : int Sync.Svar.t array;
  fhead : int Sync.Svar.t;
  ftail : int Sync.Svar.t;
}

let pack t ~tag ~idx1 = (tag * t.stride) + idx1
let idx1_of t packed = packed mod t.stride
let tag_of t packed = packed / t.stride

let create ?(name = "treiber") ~capacity variant =
  if capacity < 1 then invalid_arg "Lockfree.create";
  let t =
    { variant;
      stride = capacity + 1;
      head = Sync.int_var ~name:(name ^ ".head") 0;
      next =
        Array.init capacity (fun i -> Sync.int_var ~name:(Printf.sprintf "%s.next%d" name i) 0);
      value =
        Array.init capacity (fun i -> Sync.int_var ~name:(Printf.sprintf "%s.val%d" name i) 0);
      flock = Sync.Mutex.create ~name:(name ^ ".flock") ();
      fring =
        Array.init (capacity + 1) (fun i ->
            Sync.int_var ~name:(Printf.sprintf "%s.fring%d" name i) 0);
      fhead = Sync.int_var ~name:(name ^ ".fhead") 0;
      ftail = Sync.int_var ~name:(name ^ ".ftail") 0 }
  in
  (* All nodes start on the free queue. *)
  for i = 0 to capacity - 1 do
    Sync.Svar.set t.fring.(i) (i + 1)
  done;
  Sync.Svar.set t.ftail capacity;
  t

let alloc_node t =
  Sync.Mutex.lock t.flock;
  let h = Sync.Svar.get t.fhead in
  let r =
    if h = Sync.Svar.get t.ftail then None
    else begin
      Sync.Svar.set t.fhead (h + 1);
      Some (Sync.Svar.get t.fring.(h mod Array.length t.fring))
    end
  in
  Sync.Mutex.unlock t.flock;
  r

let free_node t idx1 =
  Sync.Mutex.lock t.flock;
  let tl = Sync.Svar.get t.ftail in
  (* More free nodes than exist means a node was freed twice — one of the
     observable corruptions ABA causes. *)
  Sync.check
    (tl - Sync.Svar.get t.fhead < Array.length t.next)
    "free queue overflow (double free)";
  Sync.Svar.set t.fring.(tl mod Array.length t.fring) idx1;
  Sync.Svar.set t.ftail (tl + 1);
  Sync.Mutex.unlock t.flock

let bump_tag t tag = match t.variant with Tagged -> tag + 1 | Aba -> 0

let push t v =
  match alloc_node t with
  | None -> false
  | Some idx1 ->
    Sync.Svar.set t.value.(idx1 - 1) v;
    (* Treiber push: link the node over the current head and CAS. *)
    let rec attempt () =
      let old = Sync.Svar.get t.head in
      Sync.Svar.set t.next.(idx1 - 1) (idx1_of t old);
      let fresh = pack t ~tag:(bump_tag t (tag_of t old)) ~idx1 in
      if Sync.Svar.cas t.head ~expected:old fresh then () else attempt ()
    in
    attempt ();
    true

let pop t =
  (* Treiber pop: read the head and its successor, CAS the head over. The
     window between the reads and the CAS is where ABA strikes. *)
  let rec attempt () =
    let old = Sync.Svar.get t.head in
    let idx1 = idx1_of t old in
    if idx1 = 0 then None
    else begin
      let nxt = Sync.Svar.get t.next.(idx1 - 1) in
      let fresh = pack t ~tag:(bump_tag t (tag_of t old)) ~idx1:nxt in
      if Sync.Svar.cas t.head ~expected:old fresh then begin
        let v = Sync.Svar.get t.value.(idx1 - 1) in
        free_node t idx1;
        Some v
      end
      else attempt ()
    end
  in
  attempt ()

let program ?(pushes = 2) variant =
  ignore pushes;
  Program.of_threads ~name:(name variant) @@ fun () ->
  (* The canonical ABA scenario. An initializer builds the stack [B, A]
     and raises [ready]; the victim starts a pop of B; the mutator pops B,
     pops A, and pushes a new value — with a tight FIFO node pool the new
     node is B's reincarnation, so the victim's compare-and-swap succeeds
     against the recycled head and splices the freed A back in. *)
  let stack = create ~capacity:2 variant in
  let ready = Sync.Event.create ~name:"ready" () in
  let popped = Array.init 3 (fun i -> Sync.int_var ~name:(Printf.sprintf "popped%d" i) 0) in
  let record v =
    Sync.check (v >= 0 && v < 3) (Printf.sprintf "popped corrupt value %d" v);
    let n = Sync.Svar.incr popped.(v) in
    Sync.check (n = 0) (Printf.sprintf "value %d popped twice" v)
  in
  let initializer_ () =
    Sync.check (push stack 0) "init push 0";
    Sync.check (push stack 1) "init push 1";
    Sync.Event.set ready
  in
  let victim () =
    Sync.Event.wait ready;
    match pop stack with Some v -> record v | None -> ()
  in
  let mutator () =
    Sync.Event.wait ready;
    (match pop stack with Some v -> record v | None -> ());
    (match pop stack with Some v -> record v | None -> ());
    (* The pool can be transiently dry while the victim holds a node. *)
    while not (push stack 2) do
      Sync.yield ()
    done;
    match pop stack with Some v -> record v | None -> ()
  in
  [ initializer_; victim; mutator ]
