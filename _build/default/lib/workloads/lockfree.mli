(** Lock-free structures over interlocked operations — the "low-level
    synchronization libraries that typically employ nonblocking algorithms"
    the paper names as the class of code that *cannot* be manually modified
    to terminate (Section 4.1), which motivated fair scheduling in the first
    place.

    A Treiber stack with an explicit free list exhibits the classic ABA
    failure: a thread preempted between reading the head and its CAS sees
    the same head value again after the node was popped, recycled, and
    pushed back — the CAS succeeds and splices a freed node into the stack.
    The [Tagged] variant packs a modification count next to the index, the
    standard fix. *)

type variant =
  | Tagged  (** version-tagged heads: correct *)
  | Aba  (** raw index CAS with node reuse: the ABA bug *)

val variant_name : variant -> string

type t

val create : ?name:string -> capacity:int -> variant -> t

val push : t -> int -> bool
(** [false] when out of nodes. *)

val pop : t -> int option

val program : ?pushes:int -> variant -> Fairmc_core.Program.t
(** Two pushers/poppers racing on a small stack, with an integrity monitor:
    every popped value was pushed and no value is popped twice. *)

val name : variant -> string
