lib/workloads/litmus.mli: Fairmc_core
