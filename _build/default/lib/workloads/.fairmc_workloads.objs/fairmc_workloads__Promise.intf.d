lib/workloads/promise.mli: Fairmc_core
