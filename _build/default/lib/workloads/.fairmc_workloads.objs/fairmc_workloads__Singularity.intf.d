lib/workloads/singularity.mli: Fairmc_core
