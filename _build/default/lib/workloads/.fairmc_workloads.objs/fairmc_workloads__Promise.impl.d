lib/workloads/promise.ml: Array Fairmc_core List Printf Program Sync
