lib/workloads/lockfree.mli: Fairmc_core
