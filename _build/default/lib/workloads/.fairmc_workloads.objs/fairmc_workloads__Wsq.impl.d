lib/workloads/wsq.ml: Array Fairmc_core List Printf Program Sync
