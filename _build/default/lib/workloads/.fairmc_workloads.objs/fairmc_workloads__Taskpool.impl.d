lib/workloads/taskpool.ml: Array Fairmc_core List Printf Program Sync
