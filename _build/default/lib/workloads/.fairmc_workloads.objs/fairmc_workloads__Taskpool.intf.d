lib/workloads/taskpool.mli: Fairmc_core
