lib/workloads/litmus.ml: Array Fairmc_core List Printf Program Sync
