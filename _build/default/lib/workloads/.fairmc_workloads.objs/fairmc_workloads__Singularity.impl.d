lib/workloads/singularity.ml: Array Channels Fairmc_core List Printf Program Sync
