lib/workloads/registry.mli: Fairmc_core
