lib/workloads/registry.ml: Channels Dining Fairmc_core List Litmus Lockfree Promise Singularity Taskpool Wsq
