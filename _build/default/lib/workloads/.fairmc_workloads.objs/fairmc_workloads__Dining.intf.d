lib/workloads/dining.mli: Fairmc_core
