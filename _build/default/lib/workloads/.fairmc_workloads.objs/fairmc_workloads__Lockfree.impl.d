lib/workloads/lockfree.ml: Array Fairmc_core Printf Program Sync
