lib/workloads/dining.ml: Array Fairmc_core List Printf Program Sync
