lib/workloads/wsq.mli: Fairmc_core
