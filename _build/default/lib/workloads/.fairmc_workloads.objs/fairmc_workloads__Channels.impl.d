lib/workloads/channels.ml: Array Fairmc_core List Printf Program Sync
