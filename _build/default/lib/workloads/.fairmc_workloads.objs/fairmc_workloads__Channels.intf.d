lib/workloads/channels.mli: Fairmc_core
