(** Dining philosophers, in the paper's four guises.

    The paper uses this example three ways: Figure 1's try-acquire variant is
    the motivating livelock; a correct, fair-terminating configuration is a
    coverage benchmark (Table 2); and the unrolled retry cycle drives the
    Figure 2 exponential-depth measurement. *)

type variant =
  | Ordered
      (** each philosopher blocks on the lower-numbered fork first — correct
          (deadlock- and livelock-free by resource ordering); used for the
          state-coverage experiments *)
  | Try_acquire
      (** Figure 1: grab one fork, try the other without blocking, release
          and retry on failure. No yields — the retry cycle is a livelock,
          and single-thread spins violate the good-samaritan property. *)
  | Try_acquire_yield
      (** Figure 1 plus a yield on the retry path, as well-behaved code would
          be written; the livelock cycle is fair, so the fair search
          diverges and reports it (outcome 3) *)
  | Deadlock
      (** every philosopher blocks on its left fork first — circular wait *)
  | Mixed_retry
      (** philosopher 0 blocks in fork order; the others run the
          try-acquire/yield retry loop. The state space is cyclic (the retry
          loops), yet fair-terminating: the blocking philosopher breaks every
          livelock cycle, and the fair scheduler prunes the unfair spins —
          this is the configuration for the Table 2 coverage experiments. *)

val program : ?eat_rounds:int -> n:int -> variant -> Fairmc_core.Program.t
(** [n] philosophers ([n >= 2]), each eating [eat_rounds] times (default 1).
    Asserts that neighbouring philosophers never eat simultaneously. *)

val coverage_program : n:int -> Fairmc_core.Program.t
(** The Table 2 configuration: [Mixed_retry] philosophers with the
    assertion instrumentation stripped (state = fork owners and thread
    control only), keeping the exhaustive searches tractable — the paper's
    54-LOC dining program is similarly bare. *)

val name : n:int -> variant -> string
