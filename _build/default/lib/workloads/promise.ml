open Fairmc_core

type variant = Blocking | Spin_then_sleep | Stale_cache

let variant_name = function
  | Blocking -> "blocking"
  | Spin_then_sleep -> "spin"
  | Stale_cache -> "stale-cache"

type t = {
  variant : variant;
  state : int Sync.Svar.t;  (* 0 = pending, 1 = fulfilled *)
  value : int Sync.Svar.t;
  done_ev : Sync.Event.t;
}

let create ?(name = "promise") variant =
  { variant;
    state = Sync.int_var ~name:(name ^ ".state") 0;
    value = Sync.int_var ~name:(name ^ ".value") 0;
    done_ev = Sync.Event.create ~name:(name ^ ".done") () }

let is_fulfilled t = Sync.Svar.get t.state = 1

let fulfill t v =
  Sync.check (not (is_fulfilled t)) "promise fulfilled twice";
  Sync.Svar.set t.value v;
  (* Publish the value before the flag: awaiters read the value only after
     observing state = 1. *)
  Sync.Svar.set t.state 1;
  Sync.Event.set t.done_ev

let await t =
  (match t.variant with
   | Blocking -> Sync.Event.wait t.done_ev
   | Spin_then_sleep ->
     (* The optimized fast path of Figure 8, written correctly: re-read the
        shared flag on every iteration of the uncommon-case spin. *)
     while Sync.Svar.get t.state <> 1 do
       Sync.sleep ()
     done
   | Stale_cache ->
     (* Figure 8 verbatim: the spin waits on a local cache of the flag.
        The Sleep(1) makes every iteration a yield, so the resulting
        infinite execution is fair — a livelock. *)
     let x_temp = ref (Sync.Svar.get t.state) in
     while !x_temp <> 1 do
       Sync.sleep ()
       (* BUG: should re-read t.state into x_temp *)
     done);
  Sync.check (Sync.Svar.get t.state = 1) "await returned on unfulfilled promise";
  Sync.Svar.get t.value

let name v = Printf.sprintf "promise-%s" (variant_name v)

let program variant =
  Program.of_threads ~name:(name variant) @@ fun () ->
  let p = create variant in
  let producer () = fulfill p 42 in
  let consumer () =
    let v = await p in
    Sync.check (v = 42) (Printf.sprintf "awaited %d, expected 42" v)
  in
  [ producer; consumer ]

let pipeline_program ?(width = 2) variant =
  Program.of_threads ~name:(Printf.sprintf "%s-pipeline-%d" (name variant) width) @@ fun () ->
  let parts = Array.init width (fun i -> create ~name:(Printf.sprintf "part%d" i) variant) in
  let result = create ~name:"result" variant in
  let worker i () = fulfill parts.(i) (i + 1) in
  let combiner () =
    let sum = ref 0 in
    Array.iter (fun p -> sum := !sum + await p) parts;
    fulfill result !sum
  in
  let main () =
    let v = await result in
    Sync.check (v = width * (width + 1) / 2) (Printf.sprintf "combined %d" v)
  in
  List.init width (fun i -> worker i) @ [ combiner; main ]
