open Fairmc_core

type bug = Correct | Bug1 | Bug2 | Bug3 | Bug4

let bug_name = function
  | Correct -> "correct"
  | Bug1 -> "bug1"
  | Bug2 -> "bug2"
  | Bug3 -> "bug3"
  | Bug4 -> "bug4"

type t = {
  bug : bug;
  cap : int;
  buf : int Sync.Svar.t array;
  head : int Sync.Svar.t;
  tail : int Sync.Svar.t;
  items : Sync.Semaphore.t;  (* filled slots (plus one token per close) *)
  credits : Sync.Semaphore.t;  (* free slots *)
  not_empty : Sync.Event.t;  (* bug 2 uses an event instead of [items] *)
  mutex : Sync.Mutex.t;
  closed : bool Sync.Svar.t;
  disposed : bool Sync.Svar.t;  (* buffers torn down (abort) *)
}

let create ?(name = "ch") ~capacity bug =
  if capacity < 1 then invalid_arg "Channels.create";
  let field f = Printf.sprintf "%s.%s" name f in
  { bug;
    cap = capacity;
    buf = Array.init capacity (fun i -> Sync.int_var ~name:(field (Printf.sprintf "buf%d" i)) 0);
    head = Sync.int_var ~name:(field "head") 0;
    tail = Sync.int_var ~name:(field "tail") 0;
    items = Sync.Semaphore.create ~name:(field "items") 0;
    credits = Sync.Semaphore.create ~name:(field "credits") capacity;
    not_empty = Sync.Event.create ~name:(field "not_empty") ();
    mutex = Sync.Mutex.create ~name:(field "mutex") ();
    closed = Sync.bool_var ~name:(field "closed") false;
    disposed = Sync.bool_var ~name:(field "disposed") false }

let count t = Sync.Svar.get t.tail - Sync.Svar.get t.head

(* The integrity invariant every path must preserve: buffers are never
   touched after dispose and never overfilled. Violations are the bugs the
   checker is meant to catch. *)
let check_integrity t =
  Sync.check (not (Sync.Svar.get t.disposed)) "channel buffer used after dispose";
  Sync.check (count t <= t.cap) "channel buffer overflow"

let enqueue t v =
  let tl = Sync.Svar.get t.tail in
  Sync.Svar.set t.buf.(tl mod t.cap) v;
  Sync.Svar.set t.tail (tl + 1);
  check_integrity t

let dequeue t =
  let h = Sync.Svar.get t.head in
  let v = Sync.Svar.get t.buf.(h mod t.cap) in
  Sync.Svar.set t.head (h + 1);
  v

let signal_item t =
  match t.bug with
  | Bug2 -> Sync.Event.set t.not_empty
  | Correct | Bug1 | Bug3 | Bug4 -> Sync.Semaphore.post t.items

let send t v =
  Sync.Semaphore.wait t.credits;
  match t.bug with
  | Bug3 ->
    (* BUG 3: the closed check happens outside the lock; a racing close or
       abort lands between the check and the enqueue. *)
    if Sync.Svar.get t.closed then begin
      Sync.Semaphore.post t.credits;
      false
    end
    else begin
      Sync.Mutex.lock t.mutex;
      enqueue t v;
      Sync.Mutex.unlock t.mutex;
      signal_item t;
      true
    end
  | Correct | Bug1 | Bug2 | Bug4 ->
    Sync.Mutex.lock t.mutex;
    if Sync.Svar.get t.closed then begin
      Sync.Mutex.unlock t.mutex;
      Sync.Semaphore.post t.credits;
      false
    end
    else begin
      enqueue t v;
      Sync.Mutex.unlock t.mutex;
      signal_item t;
      true
    end

let recv t =
  match t.bug with
  | Bug2 ->
    (* Event-based receive. BUG 2: the event is reset after the lock is
       released — a send that lands in between sets the event first, the
       reset then erases the only wakeup, and the receiver sleeps forever. *)
    let rec loop () =
      Sync.Mutex.lock t.mutex;
      if count t > 0 then begin
        let v = dequeue t in
        Sync.Mutex.unlock t.mutex;
        Sync.Semaphore.post t.credits;
        Some v
      end
      else begin
        Sync.Mutex.unlock t.mutex;
        Sync.Event.reset t.not_empty;
        Sync.Event.wait t.not_empty;
        loop ()
      end
    in
    loop ()
  | Correct | Bug1 | Bug3 | Bug4 ->
    Sync.Semaphore.wait t.items;
    if t.bug = Bug1 then
      (* BUG 1: the credit is returned before the slot is copied out; with a
         full buffer a fast sender reuses the slot and overwrites the
         element the receiver is about to read. *)
      Sync.Semaphore.post t.credits;
    Sync.Mutex.lock t.mutex;
    if Sync.Svar.get t.disposed || count t = 0 then begin
      (* Drained and closed (the close token woke us): cascade the wakeup to
         any other receiver and report end-of-stream. *)
      Sync.Mutex.unlock t.mutex;
      Sync.Semaphore.post t.items;
      None
    end
    else begin
      let v = dequeue t in
      Sync.Mutex.unlock t.mutex;
      if t.bug <> Bug1 then Sync.Semaphore.post t.credits;
      Some v
    end

(* Graceful close: buffered elements remain deliverable. *)
let close t =
  Sync.Mutex.lock t.mutex;
  Sync.Svar.set t.closed true;
  Sync.Mutex.unlock t.mutex;
  signal_item t

(* Abort: tear the channel down, discarding buffers. BUG 4 is the paper's
   "incorrect fix of bug 3": send re-checks [closed] under the lock, but the
   abort path still writes the flags without taking it (and marks the buffer
   disposed before publishing [closed]). *)
let abort t =
  (match t.bug with
   | Bug4 ->
     Sync.Svar.set t.disposed true;
     Sync.Svar.set t.closed true
   | Correct | Bug1 | Bug2 | Bug3 ->
     Sync.Mutex.lock t.mutex;
     Sync.Svar.set t.closed true;
     Sync.Svar.set t.disposed true;
     Sync.Mutex.unlock t.mutex);
  signal_item t

let name bug = Printf.sprintf "channel-%s" (bug_name bug)

let program ?(items = 2) ?(spin = false) bug =
  Program.of_threads ~name:(name bug ^ if spin then "-spin" else "") @@ fun () ->
  let finished = Sync.bool_var ~name:"finished" false in
  let poller () =
    while not (Sync.Svar.get finished) do
      Sync.yield ()
    done
  in
  let add_poller threads =
    if spin then threads @ [ poller ] else threads
  in
  match bug with
  | Correct | Bug1 | Bug2 ->
    (* Streaming harness: FIFO order and integrity. Capacity 1 maximizes
       contention on the single slot. *)
    let ch = create ~capacity:1 bug in
    let sender () =
      for v = 0 to items - 1 do
        Sync.check (send ch v) "send rejected on open channel"
      done;
      if bug <> Bug2 then close ch
    in
    let receiver () =
      let expected = ref 0 in
      let rec loop remaining =
        if remaining > 0 then begin
          match recv ch with
          | Some v ->
            Sync.check (v = !expected)
              (Printf.sprintf "received %d, expected %d" v !expected);
            incr expected;
            loop (remaining - 1)
          | None -> Sync.fail "channel closed before all items were received"
        end
        else begin
          if bug <> Bug2 then
            Sync.check (recv ch = None) "expected end-of-stream after close";
          Sync.Svar.set finished true
        end
      in
      loop items
    in
    add_poller [ sender; receiver ]
  | Bug3 | Bug4 ->
    (* Close-race harness: a sender streams while another component aborts
       the channel (a downstream failure in Dryad terms). The channel's
       internal use-after-dispose check is the safety property. *)
    let ch = create ~capacity:(items + 2) bug in
    let sender () =
      for v = 0 to items - 1 do
        ignore (send ch v)
      done
    in
    let aborter () = abort ch in
    let receiver () =
      let rec drain () =
        match recv ch with Some _ -> drain () | None -> ()
      in
      drain ();
      Sync.Svar.set finished true
    in
    add_poller [ sender; aborter; receiver ]

let fifo_program ?(stages = 23) ?(items = 2) () =
  Program.of_threads ~name:(Printf.sprintf "dryad-fifo-%d" (stages + 2)) @@ fun () ->
  (* source -> ch.(0) -> forwarder 1 -> ch.(1) -> ... -> sink *)
  let chans =
    Array.init (stages + 1) (fun i ->
        create ~name:(Printf.sprintf "ch%d" i) ~capacity:1 Correct)
  in
  let source () =
    for v = 0 to items - 1 do
      Sync.check (send chans.(0) v) "fifo source: send rejected"
    done;
    close chans.(0)
  in
  let forwarder i () =
    let rec loop () =
      match recv chans.(i) with
      | Some v ->
        Sync.check (send chans.(i + 1) v) "fifo forwarder: send rejected";
        loop ()
      | None -> close chans.(i + 1)
    in
    loop ()
  in
  let sink () =
    let expected = ref 0 in
    let rec loop () =
      match recv chans.(stages) with
      | Some v ->
        Sync.check (v = !expected) (Printf.sprintf "fifo sink: got %d, expected %d" v !expected);
        incr expected;
        loop ()
      | None -> Sync.check (!expected = items) "fifo sink: missing items"
    in
    loop ()
  in
  (source :: List.init stages (fun i -> forwarder i)) @ [ sink ]
