open Fairmc_core

let name ~services ~apps = Printf.sprintf "singularity-lite-%ds-%da" services apps

let program ?(services = 5) ?(apps = 3) ?(requests = 1) () =
  if services < 1 || apps < 1 then invalid_arg "Singularity.program";
  Program.of_threads ~name:(name ~services ~apps) @@ fun () ->
  (* Boot-time state. Every service has a request channel; registration goes
     through the nameserver's channel; completions are counted on a
     semaphore the applications block on. *)
  let ns_ch = Channels.create ~name:"ns" ~capacity:2 Channels.Correct in
  let svc_ch =
    Array.init services (fun i ->
        Channels.create ~name:(Printf.sprintf "svc%d" i) ~capacity:1 Channels.Correct)
  in
  let registered = Sync.int_var ~name:"registered" 0 in
  let served = Array.init services (fun i -> Sync.int_var ~name:(Printf.sprintf "served%d" i) 0) in
  let completion = Sync.Semaphore.create ~name:"completion" 0 in
  let system_ready = Sync.Event.create ~name:"system_ready" () in
  let phase = Sync.int_var ~name:"boot_phase" 0 in

  (* A device driver / system service: register with the nameserver, then
     serve requests until the kernel closes the channel at shutdown. *)
  let service i () =
    Sync.check (Channels.send ns_ch i) "service registration rejected";
    let rec serve () =
      match Channels.recv svc_ch.(i) with
      | Some _req ->
        ignore (Sync.Svar.incr served.(i));
        Sync.Semaphore.post completion;
        serve ()
      | None -> ()
    in
    serve ()
  in

  (* The nameserver: collect one registration per service, then publish
     system-ready. *)
  let nameserver () =
    for _ = 1 to services do
      match Channels.recv ns_ch with
      | Some i ->
        let mask = Sync.Svar.get registered in
        Sync.check (mask land (1 lsl i) = 0) "service registered twice";
        Sync.Svar.set registered (mask lor (1 lsl i))
      | None -> Sync.fail "nameserver channel closed during boot"
    done;
    Sync.Event.set system_ready
  in

  (* An application: wait for boot, then issue requests round-robin over the
     services and wait for their completions. *)
  let app n () =
    Sync.Event.wait system_ready;
    for r = 0 to requests - 1 do
      let svc = (n + r) mod services in
      Sync.check (Channels.send svc_ch.(svc) (n * 100 + r)) "app request rejected";
      Sync.Semaphore.wait completion
    done
  in

  (* The kernel: boot everything (dynamically — CHESS must handle thread
     creation mid-execution), wait for the apps, then orderly shutdown. *)
  let kernel () =
    Sync.Svar.set phase 1 (* booting *);
    let ns_tid = Sync.spawn nameserver in
    let svc_tids = List.init services (fun i -> Sync.spawn (service i)) in
    Sync.Svar.set phase 2 (* services up *);
    let app_tids = List.init apps (fun n -> Sync.spawn (app n)) in
    Sync.Svar.set phase 3 (* running *);
    List.iter Sync.join app_tids;
    Sync.Svar.set phase 4 (* shutting down *);
    Array.iter Channels.close svc_ch;
    List.iter Sync.join svc_tids;
    Sync.join ns_tid;
    Sync.Svar.set phase 5 (* down *);
    (* Post-conditions: every service registered exactly once and all
       requests were served. *)
    Sync.check (Sync.Svar.get registered = (1 lsl services) - 1) "boot lost a registration";
    let total = Array.fold_left (fun acc s -> acc + Sync.Svar.get s) 0 served in
    Sync.check (total = apps * requests)
      (Printf.sprintf "served %d requests, expected %d" total (apps * requests))
  in
  [ kernel ]
