open Fairmc_core

type variant = Ordered | Try_acquire | Try_acquire_yield | Deadlock | Mixed_retry

let variant_name = function
  | Ordered -> "ordered"
  | Try_acquire -> "tryacquire"
  | Try_acquire_yield -> "tryacquire+yield"
  | Deadlock -> "deadlock"
  | Mixed_retry -> "mixed-retry"

let name ~n variant = Printf.sprintf "dining-%d-%s" n (variant_name variant)

let program ?(eat_rounds = 1) ~n variant =
  if n < 2 then invalid_arg "Dining.program: need at least two philosophers";
  Program.of_threads ~name:(name ~n variant) @@ fun () ->
  let fork = Array.init n (fun i -> Sync.Mutex.create ~name:(Printf.sprintf "fork%d" i) ()) in
  let eating = Array.init n (fun i -> Sync.bool_var ~name:(Printf.sprintf "eating%d" i) false) in
  let meals = Sync.int_var ~name:"meals" 0 in
  (* Mutual exclusion on forks implies neighbours cannot eat together; the
     assertion re-checks it independently of the lock discipline. *)
  let eat i =
    Sync.Svar.set eating.(i) true;
    let l = Sync.Svar.get eating.((i + n - 1) mod n)
    and r = Sync.Svar.get eating.((i + 1) mod n) in
    Sync.check ((not l) && not r) "neighbouring philosophers eating simultaneously";
    ignore (Sync.Svar.incr meals);
    Sync.Svar.set eating.(i) false
  in
  let left i = fork.(i) and right i = fork.((i + 1) mod n) in
  let philosopher i () =
    let variant =
      if variant = Mixed_retry then if i = 0 then Ordered else Try_acquire_yield
      else variant
    in
    for _ = 1 to eat_rounds do
      (match variant with
       | Mixed_retry -> assert false
       | Ordered ->
         (* Acquire in global fork order: no circular wait. *)
         let a, b = if i < (i + 1) mod n then (left i, right i) else (right i, left i) in
         Sync.Mutex.lock a;
         Sync.Mutex.lock b;
         eat i;
         Sync.Mutex.unlock a;
         Sync.Mutex.unlock b
       | Deadlock ->
         Sync.Mutex.lock (left i);
         Sync.Mutex.lock (right i);
         eat i;
         Sync.Mutex.unlock (right i);
         Sync.Mutex.unlock (left i)
       | Try_acquire | Try_acquire_yield ->
         (* Figure 1: every philosopher grabs its left fork and tries the
            right one optimistically — neighbours thus approach their shared
            fork from opposite sides, giving the retry livelock. *)
         let first, second = (left i, right i) in
         let rec retry () =
           Sync.Mutex.lock first;
           if Sync.Mutex.try_lock second then ()
           else begin
             Sync.Mutex.unlock first;
             if variant = Try_acquire_yield then Sync.yield ();
             retry ()
           end
         in
         retry ();
         eat i;
         Sync.Mutex.unlock first;
         Sync.Mutex.unlock second)
    done
  in
  List.init n (fun i -> philosopher i)


(* Bare philosophers for the coverage experiments: same synchronization
   skeleton as [Mixed_retry], no assertion instrumentation. *)
let coverage_program ~n =
  if n < 2 then invalid_arg "Dining.coverage_program";
  Program.of_threads ~name:(Printf.sprintf "dining-cov-%d" n) @@ fun () ->
  let fork = Array.init n (fun i -> Sync.Mutex.create ~name:(Printf.sprintf "fork%d" i) ()) in
  let left i = fork.(i) and right i = fork.((i + 1) mod n) in
  let ordered i () =
    let a, b = if i < (i + 1) mod n then (left i, right i) else (right i, left i) in
    Sync.Mutex.lock a;
    Sync.Mutex.lock b;
    Sync.Mutex.unlock a;
    Sync.Mutex.unlock b
  in
  let retry i () =
    let rec go () =
      Sync.Mutex.lock (left i);
      if Sync.Mutex.try_lock (right i) then ()
      else begin
        Sync.Mutex.unlock (left i);
        Sync.yield ();
        go ()
      end
    in
    go ();
    Sync.Mutex.unlock (left i);
    Sync.Mutex.unlock (right i)
  in
  (* A single polling philosopher keeps the state space cyclic while the
     others' blocking discipline keeps the tree narrow enough for the
     exhaustive strategies. *)
  List.init n (fun i -> if i = n - 1 then retry i else ordered i)
