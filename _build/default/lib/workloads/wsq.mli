(** Work-stealing queue — the Cilk-5 THE protocol (Frigo, Leiserson &
    Randall, PLDI 1998), as ported to C# by Leijen's futures library, which
    is the implementation the paper checks (Table 1, "Work-Stealing Queue").

    The owner pushes and pops at the tail without synchronization in the
    common case; thieves steal from the head under a lock; the owner takes
    the lock only when head and tail may collide. Correctness under all
    interleavings is exactly what the checker verifies.

    Three seeded bugs mirror the paper's "WSQ bugs 1–3" (Table 3): each is a
    realistic mutation of the conflict protocol that only manifests under
    rare interleavings. *)

type bug =
  | Correct
  | Bug1  (** owner's pop skips the restore-and-retry handshake before
              taking the lock: a racing thief and owner can both return the
              last element *)
  | Bug2  (** thief increments the head without holding the lock: two
              thieves (or thief + owner) can take the same element *)
  | Bug3  (** owner's empty path restores the tail off by one: an element is
              lost and a later push double-consumes a slot *)

val bug_name : bug -> string

type t
(** The deque itself, usable directly by other workloads. *)

val create : capacity:int -> t

val push : t -> int -> unit
(** Owner only. *)

val pop : t -> int option
(** Owner only. *)

val steal : t -> int option
(** Any thief. *)

val program : ?items:int -> ?spin:bool -> stealers:int -> bug -> Fairmc_core.Program.t
(** The paper's test harness: an owner pushes [items] tasks then pops until
    empty, [stealers] thieves steal concurrently, and a verifier joins
    everyone and asserts that every task was consumed exactly once.

    With [spin] (default false), stealers poll until the owner raises a done
    flag instead of making a bounded number of attempts: the program becomes
    nonterminating in the paper's sense (cyclic state space, terminating
    only under fair schedules) — the Table 3 configuration, where searching
    without fairness needs a depth bound and wastes its budget unrolling the
    polling loops. *)

val coverage_program : ?items:int -> stealers:int -> unit -> Fairmc_core.Program.t
(** The Table 2 coverage configuration: stealers spin (steal, then yield)
    until the owner raises a done flag, so the state space is cyclic and the
    program is fair-terminating but nonterminating under unfair schedules. *)

val name : stealers:int -> bug -> string
