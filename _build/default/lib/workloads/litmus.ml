open Fairmc_core

let fig3 () =
  Program.of_threads ~name:"fig3" @@ fun () ->
  let x = Sync.int_var ~name:"x" 0 in
  [ (fun () -> Sync.Svar.set x 1);
    (fun () ->
      while Sync.Svar.get x <> 1 do
        Sync.yield ()
      done) ]

let fig3_no_yield () =
  Program.of_threads ~name:"fig3-no-yield" @@ fun () ->
  let x = Sync.int_var ~name:"x" 0 in
  [ (fun () -> Sync.Svar.set x 1);
    (fun () -> while Sync.Svar.get x <> 1 do () done) ]

let store_buffer () =
  Program.of_threads ~name:"store-buffer" @@ fun () ->
  let x = Sync.int_var ~name:"x" 0 and y = Sync.int_var ~name:"y" 0 in
  let r0 = Sync.int_var ~name:"r0" (-1) and r1 = Sync.int_var ~name:"r1" (-1) in
  [ (fun () ->
      Sync.Svar.set x 1;
      Sync.Svar.set r0 (Sync.Svar.get y));
    (fun () ->
      Sync.Svar.set y 1;
      Sync.Svar.set r1 (Sync.Svar.get x));
    (fun () ->
      Sync.join 0;
      Sync.join 1;
      (* Sequential consistency forbids both threads reading the initial 0. *)
      Sync.check (not (Sync.Svar.get r0 = 0 && Sync.Svar.get r1 = 0))
        "store buffering observed under SC") ]

let ticket_lock () =
  Program.of_threads ~name:"ticket-lock" @@ fun () ->
  let next = Sync.int_var ~name:"next" 0 in
  let grant = Sync.int_var ~name:"grant" 0 in
  let counter = Sync.int_var ~name:"counter" 0 in
  let in_cs = Sync.int_var ~name:"in_cs" 0 in
  let incr_under_lock () =
    let my = Sync.Svar.incr next in
    while Sync.Svar.get grant <> my do
      Sync.yield ()
    done;
    let inside = Sync.Svar.incr in_cs in
    Sync.check (inside = 0) "ticket lock: mutual exclusion violated";
    ignore (Sync.Svar.incr counter);
    ignore (Sync.Svar.update in_cs (fun v -> v - 1));
    ignore (Sync.Svar.incr grant)
  in
  [ incr_under_lock;
    incr_under_lock;
    (fun () ->
      Sync.join 0;
      Sync.join 1;
      Sync.check (Sync.Svar.get counter = 2) "ticket lock: lost update") ]

let race_assert () =
  Program.of_threads ~name:"race-assert" @@ fun () ->
  let x = Sync.int_var ~name:"x" 0 in
  let bump () = if Sync.Svar.get x = 0 then Sync.Svar.set x (Sync.Svar.get x + 1) in
  [ bump;
    bump;
    (fun () ->
      Sync.join 0;
      Sync.join 1;
      Sync.check (Sync.Svar.get x = 1) "check-then-act race") ]

let counter_race ~increments =
  Program.of_threads ~name:(Printf.sprintf "counter-race-%d" increments) @@ fun () ->
  let x = Sync.int_var ~name:"x" 0 in
  let worker () =
    for _ = 1 to increments do
      let v = Sync.Svar.get x in
      Sync.Svar.set x (v + 1)
    done
  in
  [ worker;
    worker;
    (fun () ->
      Sync.join 0;
      Sync.join 1;
      Sync.check (Sync.Svar.get x = 2 * increments) "non-atomic increments lost an update") ]

let two_step_threads ~nthreads ~steps =
  Program.of_threads ~name:(Printf.sprintf "independent-%dx%d" nthreads steps) @@ fun () ->
  let vars =
    Array.init nthreads (fun i -> Sync.int_var ~name:(Printf.sprintf "v%d" i) 0)
  in
  List.init nthreads (fun i () ->
      for s = 1 to steps do
        Sync.Svar.set vars.(i) s
      done)
