open Fairmc_core

type bug = Correct | Bug1 | Bug2 | Bug3

let bug_name = function
  | Correct -> "correct"
  | Bug1 -> "bug1"
  | Bug2 -> "bug2"
  | Bug3 -> "bug3"

type t = {
  bug : bug;
  head : int Sync.Svar.t;  (* next index to steal; only thieves advance it *)
  tail : int Sync.Svar.t;  (* next index to push; owner-owned *)
  tasks : int Sync.Svar.t array;
  lock : Sync.Mutex.t;
}

let create ~capacity =
  { bug = Correct;
    head = Sync.int_var ~name:"wsq.head" 0;
    tail = Sync.int_var ~name:"wsq.tail" 0;
    tasks = Array.init capacity (fun i -> Sync.int_var ~name:(Printf.sprintf "wsq.tasks%d" i) 0);
    lock = Sync.Mutex.create ~name:"wsq.lock" () }

let with_bug bug t = { t with bug }

let slot t i = t.tasks.(i mod Array.length t.tasks)

(* Owner: publish at the tail. Indices are monotonic; the capacity bounds
   the live window, which the harness never exceeds. *)
let push t v =
  Sync.at 1;
  let tl = Sync.Svar.get t.tail in
  Sync.Svar.set (slot t tl) v;
  Sync.Svar.set t.tail (tl + 1)

(* Owner: THE-protocol pop (Cilk-5). Claim the last element by decrementing
   the tail; if the head may have passed it, restore the claim and arbitrate
   under the lock with a fresh read of the head.

   Bug 1 reads the head *before* publishing the tail claim — the classic
   missing-fence reordering: a thief that scans the deque between the two
   accesses still sees the old tail, steals the last element, and the owner
   pops it a second time.

   Bug 3 re-checks the conflict under the lock with the *stale* head value:
   when a racing thief bumped the head and then restored it (its own empty
   path), the owner wrongly concludes the deque is empty and a task is never
   executed. *)
let pop t =
  Sync.at 2;
  let stale_head = if t.bug = Bug1 then Sync.Svar.get t.head else 0 in
  let tl = Sync.Svar.get t.tail - 1 in
  Sync.Svar.set t.tail tl;
  let h = if t.bug = Bug1 then stale_head else Sync.Svar.get t.head in
  if h <= tl then Some (Sync.Svar.get (slot t tl))
  else begin
    (* Conflict: restore the claim, then redo the test under the lock.
       [Sync.at] markers disambiguate the control points that share a
       pending operation (several tail writes) for state capture. *)
    Sync.at 3;
    Sync.Svar.set t.tail (tl + 1);
    Sync.Mutex.lock t.lock;
    Sync.at 4;
    Sync.Svar.set t.tail tl;
    let h = if t.bug = Bug3 then h else Sync.Svar.get t.head in
    if h <= tl then begin
      Sync.Mutex.unlock t.lock;
      Some (Sync.Svar.get (slot t tl))
    end
    else begin
      (* Deque empty: undo the claim. *)
      Sync.at 5;
      Sync.Svar.set t.tail (tl + 1);
      Sync.Mutex.unlock t.lock;
      None
    end
  end

(* Thief: claim the head element under the lock.

   Bug 2 performs the head increment outside the lock: two thieves can both
   read the same head index, and the later restore clobbers the earlier
   claim — the same element is stolen twice. *)
let steal t =
  Sync.at 6;
  let outside =
    if t.bug = Bug2 then begin
      let h = Sync.Svar.get t.head in
      Sync.Svar.set t.head (h + 1);
      Some h
    end
    else None
  in
  Sync.Mutex.lock t.lock;
  let h =
    match outside with
    | Some h -> h
    | None ->
      let h = Sync.Svar.get t.head in
      Sync.Svar.set t.head (h + 1);
      h
  in
  let tl = Sync.Svar.get t.tail in
  if h + 1 <= tl then begin
    let v = Sync.Svar.get (slot t h) in
    Sync.Mutex.unlock t.lock;
    Some v
  end
  else begin
    Sync.at 7;
    Sync.Svar.set t.head h;
    Sync.Mutex.unlock t.lock;
    None
  end

let name ~stealers bug = Printf.sprintf "wsq-%ds-%s" stealers (bug_name bug)

(* Coverage harness (Table 2): stealers poll until the owner finishes, which
   makes the state space cyclic — the configuration where depth-bounded
   unfair search wastes its effort unrolling the polling loops. *)
let coverage_program ?(items = 1) ~stealers () =
  Program.of_threads ~name:(Printf.sprintf "wsq-cov-%ds" stealers) @@ fun () ->
  let q = create ~capacity:(items + 1) in
  let done_flag = Sync.bool_var ~name:"done" false in
  let owner () =
    for v = 0 to items - 1 do
      push q v
    done;
    for _ = 1 to items do
      ignore (pop q)
    done;
    Sync.Svar.set done_flag true
  in
  let stealer () =
    while not (Sync.Svar.get done_flag) do
      ignore (steal q);
      Sync.yield ()
    done
  in
  owner :: List.init stealers (fun _ -> stealer)

let program ?(items = 2) ?(spin = false) ~stealers bug =
  Program.of_threads ~name:(name ~stealers bug ^ if spin then "-spin" else "")
  @@ fun () ->
  let q = with_bug bug (create ~capacity:(items + 1)) in
  let done_flag = Sync.bool_var ~name:"done" false in
  let consumed =
    Array.init items (fun i -> Sync.int_var ~name:(Printf.sprintf "consumed%d" i) 0)
  in
  let record v =
    Sync.check (v >= 0 && v < items) (Printf.sprintf "consumed bogus task %d" v);
    ignore (Sync.Svar.incr consumed.(v))
  in
  let owner () =
    for v = 0 to items - 1 do
      push q v
    done;
    let rec drain () =
      match pop q with
      | Some v ->
        record v;
        drain ()
      | None -> ()
    in
    drain ();
    Sync.Svar.set done_flag true
  in
  let stealer () =
    if spin then
      (* Nonterminating flavour (Table 3): poll until the owner is done. *)
      while not (Sync.Svar.get done_flag) do
        (match steal q with Some v -> record v | None -> ());
        Sync.yield ()
      done
    else
      (* Bounded attempts keep the harness terminating; the yield between
         attempts is the good-samaritan contract. *)
      for _ = 1 to items do
        (match steal q with Some v -> record v | None -> ());
        Sync.yield ()
      done
  in
  let verifier () =
    (* Worker tids are 0 .. stealers (owner first); the verifier is last. *)
    for tid = 0 to stealers do
      Sync.join tid
    done;
    (* The owner drains until empty and thieves only remove, so on a correct
       deque every task is consumed exactly once and nothing remains. *)
    for v = 0 to items - 1 do
      let c = Sync.Svar.get consumed.(v) in
      Sync.check (c = 1) (Printf.sprintf "task %d consumed %d times" v c)
    done;
    let remaining = Sync.Svar.get q.tail - Sync.Svar.get q.head in
    Sync.check (remaining = 0) (Printf.sprintf "%d tasks lost in the deque" remaining)
  in
  (owner :: List.init stealers (fun _ -> stealer)) @ [ verifier ]
