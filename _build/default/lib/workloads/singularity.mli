(** "Singularity-lite": booting and shutting down a miniature operating
    system under the model checker.

    The paper's headline applicability result is booting the Singularity
    research OS under CHESS (Table 1: 14 threads, 167k sync ops). This
    module reproduces the *shape* of that exercise: a kernel thread
    dynamically spawns a nameserver, system services and device drivers,
    connected by message channels; applications wait for boot to complete,
    issue driver requests, and the kernel then performs an orderly shutdown
    (close service channels, join everything) — the "test harness makes the
    program fair-terminating" methodology of Section 2.

    Services run nonterminating receive loops; only channel close ends them,
    so an unfair scheduler can spin the system forever while a fair one
    drives every boot to completion. *)

val program : ?services:int -> ?apps:int -> ?requests:int -> unit -> Fairmc_core.Program.t
(** [services] device/system services (default 5), [apps] applications
    (default 3), each issuing [requests] driver requests (default 1).
    Thread count: 1 kernel + 1 nameserver + [services] + [apps]. *)

val name : services:int -> apps:int -> string
