(** Name-indexed catalogue of every benchmark program, for the CLI and the
    benchmark harness. *)

type entry = {
  name : string;
  program : Fairmc_core.Program.t;
  expected : string;
      (** what a checker should find: "verified", "safety", "deadlock",
          "livelock", "good-samaritan" *)
  description : string;
}

val all : unit -> entry list
val find : string -> entry option
val names : unit -> string list
