(** Bounded FIFO channels with credit-based flow control — our stand-in for
    the Dryad channel library (Table 1: "Dryad Channels" and "Dryad Fifo").

    The correct implementation uses two semaphores (items and credits) around
    a mutex-protected ring buffer, plus a close protocol. Four seeded bugs
    mirror the paper's Dryad bugs 1–4 (Table 3); per the paper's story,
    bug 4 is an incorrect developer fix of bug 3 — it narrows the race window
    without closing it, so only a deeper search finds it. *)

type bug =
  | Correct
  | Bug1  (** receiver returns the credit before copying the slot out: a
              fast sender overwrites the unread element *)
  | Bug2  (** event-based wakeup with the signal decision taken outside the
              lock: a wakeup is lost and the system deadlocks *)
  | Bug3  (** [send] checks [closed] without the lock: a racing [close]
              lands between check and enqueue — send after close *)
  | Bug4  (** the "fix" for bug 3 re-checks [closed] under the send lock,
              but [close] still sets the flag without taking it *)

val bug_name : bug -> string

type t

val create : ?name:string -> capacity:int -> bug -> t

val send : t -> int -> bool
(** [false] when the channel is closed. Internally asserts the channel's
    integrity invariants (no use after dispose, no overflow) — the
    properties bugs 1, 3 and 4 violate under racy interleavings. *)

val recv : t -> int option
(** [None] when the channel is closed and drained. *)

val close : t -> unit
(** Graceful close: buffered elements remain deliverable. *)

val abort : t -> unit
(** Tear the channel down, discarding buffers (a downstream failure). *)

val program : ?items:int -> ?spin:bool -> bug -> Fairmc_core.Program.t
(** Harness for Table 3: one sender streaming sequenced values, one receiver
    asserting FIFO order and integrity, and (for the close bugs) a closer
    racing the sender. With [spin] (default false) a status poller yields in
    a loop until the receiver finishes, making the program nonterminating in
    the paper's sense — depth-bounded unfair search then wastes its budget
    unrolling the polling loop. *)

val fifo_program : ?stages:int -> ?items:int -> unit -> Fairmc_core.Program.t
(** "Dryad Fifo": a pipeline of forwarder threads connected by unit-capacity
    channels — the paper's 25-thread configuration. *)

val name : bug -> string
