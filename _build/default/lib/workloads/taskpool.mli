(** A task-parallel worker-pool library — our stand-in for the paper's APE
    (Asynchronous Processing Environment) benchmark and the vehicle for the
    good-samaritan violation of the paper's Figure 7.

    Workers belong to a worker group and run tasks from a shared queue; an
    idle worker polls for work with an exponential-backoff yield. Shutdown
    sets a [stop] flag on the group and then on each worker. Figure 7's bug:
    in the window where the group's flag is set but the worker's is not, the
    worker's outer loop spins calling [Idle] — which returns immediately
    because the *group* is stopping — without ever yielding. The thread
    burns its timeslice and starves the very thread that would set its stop
    flag: a good-samaritan violation (outcome 2), which the fair scheduler
    surfaces as a divergence with a starved enabled thread. *)

type variant =
  | Courteous  (** the outer loop yields when [Idle] returns no work *)
  | Spin_shutdown  (** Figure 7: tight spin in the shutdown window *)

val program : ?workers:int -> ?tasks:int -> variant -> Fairmc_core.Program.t
(** [workers] worker threads (default 1) run [tasks] enqueued tasks
    (default 1); a shutdown thread then stops the group and each worker, and
    asserts every task ran exactly once. *)

val name : workers:int -> variant -> string
val variant_name : variant -> string
