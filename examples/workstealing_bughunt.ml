(* Hunting real concurrency bugs in a work-stealing deque (Cilk's THE
   protocol, the implementation family the paper checks as "Work-Stealing
   Queue"). Each seeded bug is a realistic mutation; iterative context
   bounding with the fair scheduler finds all of them in well under a
   second, and replaying the recorded schedule reproduces each failure
   deterministically.

   Run with: dune exec examples/workstealing_bughunt.exe *)

open Fairmc_core
module W = Fairmc_workloads

let hunt bug ~stealers ~items =
  let prog = W.Wsq.program ~items ~stealers bug in
  Format.printf "--- %s (%d stealers) ---@." prog.Program.name stealers;
  let report =
    Checker.iterative_context_bound ~max_bound:2
      ~base:{ Search_config.default with livelock_bound = Some 2_000 }
      prog
  in
  match report.verdict with
  | Report.Safety_violation { failure; cex; tid } ->
    Format.printf "found: %a (thread %d) after %d executions@." Engine.pp_failure failure
      tid report.stats.executions;
    (* Counterexamples are replayable schedules: confirm the bug. *)
    (match Search.replay prog cex.decisions (fun _ -> ()) with
     | Search.Replayed_failure _ ->
       Format.printf "replay confirms the failure (%d steps)@.@." cex.length
     | Search.Replayed_no_failure | Search.Replay_mismatch _ ->
       Format.printf "replay did not reproduce?!@.@.")
  | _ -> Format.printf "%a@.@." Report.pp_summary report

let () =
  (* The correct protocol survives a large bounded fair search (its full
     space is big; `dune exec bench/main.exe -- table2` explores the
     coverage configuration exhaustively). *)
  let correct = W.Wsq.program ~stealers:1 W.Wsq.Correct in
  let r =
    Checker.check
      ~config:
        { Search_config.default with
          livelock_bound = Some 2_000;
          max_executions = Some 25_000;
          time_limit = Some 10.0 }
      correct
  in
  Format.printf "--- %s ---@.%a@.@." correct.Program.name Report.pp_summary r;
  (* The three seeded bugs of Table 3. *)
  hunt W.Wsq.Bug1 ~stealers:1 ~items:2;
  hunt W.Wsq.Bug2 ~stealers:2 ~items:2;
  hunt W.Wsq.Bug3 ~stealers:1 ~items:1
