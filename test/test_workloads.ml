(* End-to-end workload checks: every registry program produces its expected
   verdict under its recommended strategy (the bugs the paper's Table 3
   reports, the liveness violations of §4.3, and the verified baselines). *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let classify (r : Report.t) =
  match Report.verdict_key r.verdict with "limits" -> "verified" | k -> k

let cfg_for (e : W.Registry.entry) =
  { Search_config.default with
    livelock_bound = Some 1_500;
    max_executions = Some 60_000;
    time_limit = Some 20.0;
    (* Race-expected entries are only distinguishable with the detector on
       (they have no assertion to fail); verified entries keep it off so the
       plain-search verdicts stay a pure engine test. *)
    analyses = (if e.expected = "race" then [ Fairmc_analysis.Hb_race.analysis ] else []);
    mode =
      (if e.expected = "safety" then Search_config.Context_bounded 2 else Search_config.Dfs) }

let registry_cases =
  List.map
    (fun (e : W.Registry.entry) ->
      Alcotest.test_case e.name `Slow (fun () ->
          let r = Checker.check ~config:(cfg_for e) e.program in
          check_string "verdict" e.expected (classify r)))
    (W.Registry.all ())

let unit_tests =
  [ Alcotest.test_case "registry names are unique and findable" `Quick (fun () ->
        let names = W.Registry.names () in
        Alcotest.(check int) "no duplicates" (List.length names)
          (List.length (List.sort_uniq compare names));
        List.iter (fun n -> check n true (W.Registry.find n <> None)) names;
        check "unknown name" true (W.Registry.find "no-such-program" = None));
    Alcotest.test_case "wsq deque operations (sequential)" `Quick (fun () ->
        (* Drive the deque inside a trivial one-thread program. *)
        let result = ref [] in
        let p =
          Program.of_threads ~name:"wsq-seq" (fun () ->
              let q = W.Wsq.create ~capacity:4 in
              [ (fun () ->
                  W.Wsq.push q 1;
                  W.Wsq.push q 2;
                  W.Wsq.push q 3;
                  let a = W.Wsq.pop q in
                  let b = W.Wsq.steal q in
                  let c = W.Wsq.pop q in
                  let d = W.Wsq.pop q in
                  result := [ a; b; c; d ]) ])
        in
        let r = Search.run { Search_config.default with max_executions = Some 1 } p in
        check "no error" false (Report.found_error r);
        (* LIFO at the tail, FIFO at the head, empty afterwards. *)
        Alcotest.(check (list (option int)))
          "pop 3, steal 1, pop 2, empty"
          [ Some 3; Some 1; Some 2; None ]
          !result);
    Alcotest.test_case "channel FIFO order (sequential)" `Quick (fun () ->
        let result = ref [] in
        let p =
          Program.of_threads ~name:"chan-seq" (fun () ->
              let ch = W.Channels.create ~capacity:2 W.Channels.Correct in
              [ (fun () ->
                  ignore (W.Channels.send ch 10);
                  ignore (W.Channels.send ch 20);
                  let a = W.Channels.recv ch in
                  ignore (W.Channels.send ch 30);
                  W.Channels.close ch;
                  let b = W.Channels.recv ch in
                  let c = W.Channels.recv ch in
                  let d = W.Channels.recv ch in
                  result := [ a; b; c; d ]) ])
        in
        let r = Search.run { Search_config.default with max_executions = Some 1 } p in
        check "no error" false (Report.found_error r);
        Alcotest.(check (list (option int)))
          "fifo then end-of-stream"
          [ Some 10; Some 20; Some 30; None ]
          !result);
    Alcotest.test_case "channel send after close is rejected" `Quick (fun () ->
        let p =
          Program.of_threads ~name:"chan-close" (fun () ->
              let ch = W.Channels.create ~capacity:2 W.Channels.Correct in
              [ (fun () ->
                  W.Channels.close ch;
                  Sync.check (not (W.Channels.send ch 1)) "send accepted after close") ])
        in
        let r = Search.run Search_config.default p in
        check "verified" true (r.verdict = Report.Verified));
    Alcotest.test_case "promise combinator pipeline verifies" `Quick (fun () ->
        let r =
          Search.run
            { Search_config.default with
              mode = Search_config.Context_bounded 1;
              livelock_bound = Some 2_000 }
            (W.Promise.pipeline_program ~width:2 W.Promise.Blocking)
        in
        check "no error" false (Report.found_error r));
    Alcotest.test_case "promise double fulfill is caught" `Quick (fun () ->
        let p =
          Program.of_threads ~name:"double-fulfill" (fun () ->
              let pr = W.Promise.create W.Promise.Blocking in
              [ (fun () -> W.Promise.fulfill pr 1); (fun () -> W.Promise.fulfill pr 2) ])
        in
        let r = Search.run Search_config.default p in
        check "safety violation" true
          (match r.verdict with Report.Safety_violation _ -> true | _ -> false));
    Alcotest.test_case "singularity boot completes under fair cb=1" `Quick (fun () ->
        let r =
          Search.run
            { Search_config.default with
              mode = Search_config.Context_bounded 1;
              max_executions = Some 2_000;
              livelock_bound = Some 5_000 }
            (W.Singularity.program ~services:2 ~apps:1 ())
        in
        check "no error during boot" false (Report.found_error r));
    Alcotest.test_case "singularity scales to the paper's 14 threads" `Quick (fun () ->
        (* One full boot/shutdown schedule of the Table 1 configuration. *)
        let r =
          Search.run
            { Search_config.default with
              mode = Search_config.Random_walk 3;
              livelock_bound = Some 100_000;
              max_steps = 200_000;
              seed = 11L }
            (W.Singularity.program ~services:8 ~apps:4 ())
        in
        check "no error" false (Report.found_error r);
        check "14 threads" true (r.stats.max_threads = 14));
    Alcotest.test_case "dryad fifo pipeline delivers in order" `Quick (fun () ->
        let r =
          Search.run
            { Search_config.default with
              mode = Search_config.Random_walk 25;
              livelock_bound = Some 50_000;
              max_steps = 100_000;
              seed = 3L }
            (W.Channels.fifo_program ~stages:5 ~items:3 ())
        in
        check "no error" false (Report.found_error r));
    Alcotest.test_case "mixed-retry dining is fair-terminating" `Quick (fun () ->
        let r =
          Search.run
            { Search_config.default with livelock_bound = Some 2_000 }
            (W.Dining.program ~n:2 W.Dining.Mixed_retry)
        in
        check "verified" true (r.verdict = Report.Verified)) ]

let suite = unit_tests @ registry_cases
