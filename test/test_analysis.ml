(* Dynamic-analysis layer tests (PR 4): vector-clock algebra (qcheck laws),
   the engine observer hook, happens-before and lockset race detection on
   the races workload family (true positives with replayable schedules, no
   false positives on the synchronized twins), lock-order cycle prediction,
   and jobs=1 vs jobs=4 determinism of race reports and lock graphs. *)

open Fairmc_core
module A = Fairmc_analysis
module VC = Fairmc_analysis.Vclock
module AH = Analysis_hook
module W = Fairmc_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let base = { Search_config.default with livelock_bound = Some 2_000 }

let run ?(jobs = 1) analyses prog =
  Par_search.run { base with Search_config.jobs; analyses } prog

let race_of (r : Report.t) =
  match r.verdict with Report.Race { race; _ } -> Some race | _ -> None

(* ------------------------------------------------------------------ *)
(* Vector-clock laws.                                                  *)

let vc_gen =
  QCheck.Gen.(map VC.of_list (list_size (int_bound 6) (int_bound 4)))

let vc_arb = QCheck.make ~print:(Format.asprintf "%a" VC.pp) vc_gen

let vc_props =
  let open QCheck in
  [ Test.make ~name:"join is associative" ~count:300 (triple vc_arb vc_arb vc_arb)
      (fun (a, b, c) -> VC.equal (VC.join a (VC.join b c)) (VC.join (VC.join a b) c));
    Test.make ~name:"join is commutative" ~count:300 (pair vc_arb vc_arb)
      (fun (a, b) -> VC.equal (VC.join a b) (VC.join b a));
    Test.make ~name:"join is idempotent" ~count:300 vc_arb
      (fun a -> VC.equal (VC.join a a) a);
    Test.make ~name:"empty is the identity of join" ~count:300 vc_arb
      (fun a -> VC.equal (VC.join a VC.empty) a);
    Test.make ~name:"leq is a partial order (refl, antisym, trans)" ~count:300
      (triple vc_arb vc_arb vc_arb) (fun (a, b, c) ->
        VC.leq a a
        && ((not (VC.leq a b && VC.leq b a)) || VC.equal a b)
        && ((not (VC.leq a b && VC.leq b c)) || VC.leq a c));
    Test.make ~name:"join is the least upper bound" ~count:300 (pair vc_arb vc_arb)
      (fun (a, b) -> VC.leq a (VC.join a b) && VC.leq b (VC.join a b));
    Test.make ~name:"lt is a strict partial order" ~count:300
      (triple vc_arb vc_arb vc_arb) (fun (a, b, c) ->
        (not (VC.lt a a))
        && ((not (VC.lt a b)) || not (VC.lt b a))
        && ((not (VC.lt a b && VC.lt b c)) || VC.lt a c));
    Test.make ~name:"tick strictly increases its component" ~count:300
      (pair vc_arb (int_bound 6)) (fun (a, i) ->
        let t = VC.tick a i in
        VC.lt a t && VC.get t i = VC.get a i + 1) ]

(* ------------------------------------------------------------------ *)
(* Observer hook.                                                      *)

(* A trivial analysis that counts callbacks: checks the hook fires once per
   transition (stats.transitions counts exactly the observed steps) and that
   its counters reach the report's metrics snapshot. *)
let counting_analysis hits =
  { AH.name = "counting";
    create =
      (fun () ->
        { AH.exec_start = (fun _ -> ());
          observe = (fun ~tid:_ ~op:_ ~result:_ -> incr hits);
          first_race = (fun () -> None);
          result =
            (fun () ->
              { AH.first_race = None;
                lock_edges = [];
                counters = [ ("analysis/counting/hits", !hits) ] }) }) }

let observer_counts () =
  let hits = ref 0 in
  let r = run [ counting_analysis hits ] (W.Races.locked_counter ()) in
  check_str "verdict" "verified" (Report.verdict_key r.verdict);
  check_int "one callback per transition" r.stats.transitions !hits;
  check_int "analysis counters surface in metrics" !hits
    (match
       List.assoc_opt "analysis/counting/hits"
         (Fairmc_obs.Metrics.Snapshot.counters r.metrics)
     with
     | Some n -> n
     | None -> -1)

let observer_cleared () =
  (* After a search with analyses, a plain search must observe nothing. *)
  let hits = ref 0 in
  ignore (run [ counting_analysis hits ] (W.Races.locked_counter ()));
  let before = !hits in
  let r = run [] (W.Races.locked_counter ()) in
  check_str "verdict" "verified" (Report.verdict_key r.verdict);
  check_int "observer uninstalled after the search" before !hits

(* ------------------------------------------------------------------ *)
(* Race detection: true positives with replayable schedules.           *)

let hb_finds_race () =
  let prog = W.Races.unsync_counter () in
  let r = run [ A.Hb_race.analysis ] prog in
  match race_of r with
  | None -> Alcotest.fail "expected a race on the unsynchronized counter"
  | Some race ->
    check_str "detector" "hb" race.AH.detector;
    check_str "object" "counter" race.AH.obj_name;
    check "distinct threads" true (race.AH.a_tid <> race.AH.b_tid);
    check "strictly ordered steps" true (race.AH.a_step < race.AH.b_step);
    check "nonempty schedule" true (race.AH.decisions <> []);
    (* The schedule replays cleanly: no engine failure on the way (a race
       is not an assertion failure) and no exception. *)
    (match Search.replay prog race.AH.decisions (fun _ -> ()) with
     | Search.Replayed_no_failure -> ()
     | Search.Replayed_failure cex ->
       Alcotest.failf "race schedule replayed into an engine failure: %s" cex.rendered
     | Search.Replay_mismatch { step; tid } ->
       Alcotest.failf "race schedule did not apply: step %d, thread %d" step tid)

let hb_finds_dcl_race () =
  let r = run [ A.Hb_race.analysis ] (W.Races.dcl ()) in
  match race_of r with
  | None -> Alcotest.fail "expected a race in broken double-checked locking"
  | Some race -> check_str "detector" "hb" race.AH.detector

let lockset_finds_race () =
  let r = run [ A.Lockset.analysis ] (W.Races.unsync_counter ()) in
  match race_of r with
  | None -> Alcotest.fail "expected a lockset race on the unsynchronized counter"
  | Some race ->
    check_str "detector" "lockset" race.AH.detector;
    check_str "object" "counter" race.AH.obj_name

(* ------------------------------------------------------------------ *)
(* No false positives on the synchronized twins.                       *)

let race_free_programs () =
  [ W.Races.locked_counter ();
    W.Races.dcl_locked ();
    W.Races.ab_ba ();
    W.Dining.program ~n:2 W.Dining.Ordered;
    W.Dining.program ~n:3 W.Dining.Ordered ]

let hb_no_false_positives jobs () =
  List.iter
    (fun prog ->
      let r = run ~jobs [ A.Hb_race.analysis ] prog in
      check_str
        (Printf.sprintf "%s stays race-free (j=%d)" prog.Program.name jobs)
        "verified"
        (Report.verdict_key r.verdict))
    (race_free_programs ())

(* ------------------------------------------------------------------ *)
(* Lock-order graph.                                                   *)

let lock_graph_cycle () =
  let r = run [ A.Lock_graph.analysis ] (W.Races.ab_ba ()) in
  check_str "ab-ba itself verifies" "verified" (Report.verdict_key r.verdict);
  match r.analysis with
  | None -> Alcotest.fail "analysis results missing from the report"
  | Some a ->
    check_int "both orders recorded" 2 (List.length a.lock_order_edges);
    (match a.potential_deadlock_cycles with
     | [ cycle ] ->
       Alcotest.(check (list string))
         "the A/B cycle" [ "A"; "B" ]
         (List.map snd cycle)
     | cs -> Alcotest.failf "expected exactly one cycle, got %d" (List.length cs))

let lock_graph_clean () =
  (* Ordered fork acquisition: edges exist but no cycle. *)
  let r = run [ A.Lock_graph.analysis ] (W.Dining.program ~n:3 W.Dining.Ordered) in
  match r.analysis with
  | None -> Alcotest.fail "analysis results missing from the report"
  | Some a ->
    check "ordered acquisition has edges" true (a.lock_order_edges <> []);
    check_int "and no cycles" 0 (List.length a.potential_deadlock_cycles)

(* ------------------------------------------------------------------ *)
(* Parallel determinism.                                               *)

let same_race (a : AH.race) (b : AH.race) =
  a.detector = b.detector && a.obj_name = b.obj_name && a.a_tid = b.a_tid
  && a.a_step = b.a_step && a.b_tid = b.b_tid && a.b_step = b.b_step
  && a.decisions = b.decisions

let par_same_first_race () =
  List.iter
    (fun prog ->
      let seq = run ~jobs:1 [ A.Hb_race.analysis ] prog in
      let par = run ~jobs:4 [ A.Hb_race.analysis ] prog in
      match (race_of seq, race_of par) with
      | Some a, Some b ->
        check (prog.Program.name ^ ": identical first race") true (same_race a b)
      | _ -> Alcotest.failf "%s: race missing in one arm" prog.Program.name)
    [ W.Races.unsync_counter (); W.Races.dcl () ]

let edge_set (r : Report.t) =
  match r.analysis with
  | None -> []
  | Some a ->
    List.map (fun (e : AH.lock_edge) -> (e.e_from, e.e_to)) a.lock_order_edges

let par_same_lock_graph () =
  List.iter
    (fun prog ->
      let seq = run ~jobs:1 [ A.Lock_graph.analysis ] prog in
      let par = run ~jobs:4 [ A.Lock_graph.analysis ] prog in
      check (prog.Program.name ^ ": identical edge set") true
        (edge_set seq = edge_set par && edge_set seq <> []))
    [ W.Races.ab_ba (); W.Dining.program ~n:3 W.Dining.Ordered ]

(* ------------------------------------------------------------------ *)
(* Report plumbing.                                                    *)

let verdict_key_round_trip () =
  List.iter
    (fun (e : W.Registry.entry) ->
      check
        (Printf.sprintf "%s: expected %S is a verdict key" e.name e.expected)
        true
        (List.mem e.expected Report.verdict_keys))
    (W.Registry.all ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let race_report_fields () =
  let r = run [ A.Hb_race.analysis; A.Lock_graph.analysis ] (W.Races.unsync_counter ()) in
  check "race is an error verdict" true (Report.found_error r);
  check "cex is exposed uniformly" true (Report.cex r <> None);
  check_str "verdict key" "race" (Report.verdict_key r.verdict);
  let json = Fairmc_util.Json.to_string (Report.to_json ~program:"x" ~config:"y" r) in
  List.iter
    (fun needle -> check (needle ^ " in json") true (contains json needle))
    [ "fairmc-report/2"; "\"race\""; "counterexample"; "analysis" ]

let suite =
  [ Alcotest.test_case "observer fires once per transition" `Quick observer_counts;
    Alcotest.test_case "observer is uninstalled after the search" `Quick observer_cleared;
    Alcotest.test_case "hb: unsynchronized counter races" `Quick hb_finds_race;
    Alcotest.test_case "hb: broken DCL races" `Quick hb_finds_dcl_race;
    Alcotest.test_case "lockset: unsynchronized counter races" `Quick lockset_finds_race;
    Alcotest.test_case "hb: no false positives (jobs=1)" `Quick (hb_no_false_positives 1);
    Alcotest.test_case "hb: no false positives (jobs=4)" `Quick (hb_no_false_positives 4);
    Alcotest.test_case "lock graph: AB/BA cycle predicted" `Quick lock_graph_cycle;
    Alcotest.test_case "lock graph: ordered acquisition is clean" `Quick lock_graph_clean;
    Alcotest.test_case "jobs=1 and jobs=4 agree on the first race" `Quick
      par_same_first_race;
    Alcotest.test_case "jobs=1 and jobs=4 agree on the lock graph" `Quick
      par_same_lock_graph;
    Alcotest.test_case "registry expected verdicts are verdict keys" `Quick
      verdict_key_round_trip;
    Alcotest.test_case "race verdict: report and json plumbing" `Quick race_report_fields ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) vc_props
