(* Durable-session tests: JSON codec round-trips, resume validation,
   interrupted-then-resumed equality with uninterrupted runs (the
   determinism contract of DESIGN.md, "Durable sessions"), graceful
   mid-path interruption, and the satellite determinism fixes
   (good-samaritan culprit tie-break, explicit replay mismatches). *)

open Fairmc_core
module W = Fairmc_workloads
module CK = Checkpoint
module AH = Analysis_hook
module B = Fairmc_util.Bitset
module R = Fairmc_util.Rng
module Json = Fairmc_util.Json
module MS = Fairmc_obs.Metrics.Snapshot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generators: pseudo-random checkpoint values derived from a seed.    *)

let gen_opt rng f = if R.bool rng then Some (f rng) else None

let gen_stats rng =
  { Report.executions = R.int rng 100_000;
    transitions = R.int rng 1_000_000;
    states = R.int rng 10_000;
    nonterminating = R.int rng 100;
    depth_bound_hits = R.int rng 100;
    sleep_set_prunes = R.int rng 100;
    yields = R.int rng 10_000;
    max_depth = R.int rng 500;
    (* Eighths: finite and exactly representable, so JSON round-trips. *)
    elapsed = float_of_int (R.int rng 1024) /. 8.;
    first_error_execution = gen_opt rng (fun r -> R.int r 1000);
    first_error_time = gen_opt rng (fun r -> float_of_int (R.int r 256) /. 8.);
    sync_ops_per_exec = R.int rng 64;
    max_threads = R.int rng 16;
    search_elapsed = float_of_int (R.int rng 1024) /. 8.;
    probe_mass = R.int rng 1_000_000 }

let gen_metrics rng =
  MS.of_entries
    (List.concat
       [ (if R.bool rng then [ ("search/steps/fresh", MS.Counter (R.int rng 100_000)) ]
          else []);
         (if R.bool rng then [ ("fair/p/peak", MS.Gauge (R.int rng 64)) ] else []);
         (if R.bool rng then
            [ ( "search/path_len",
                MS.Histogram
                  { MS.count = R.int rng 100;
                    sum = R.int rng 10_000;
                    max = R.int rng 512;
                    buckets = [ (0, R.int rng 5); (3, 1 + R.int rng 7) ] } ) ]
          else []) ])

let gen_states rng = List.init (R.int rng 5) (fun _ -> R.next_int64 rng)

let gen_edges rng =
  List.init (R.int rng 3) (fun i ->
      { AH.e_from = i;
        e_from_name = Printf.sprintf "lock%d" i;
        e_to = i + 1;
        e_to_name = Printf.sprintf "lock%d" (i + 1) })

let gen_decision rng = { CK.c_tid = R.int rng 8; c_alt = R.int rng 4; c_cost = R.int rng 3 }

let gen_frame rng =
  let c_rest = List.init (R.int rng 3) (fun _ -> gen_decision rng) in
  { CK.c_chosen = gen_decision rng;
    c_rest;
    c_sleep = B.unsafe_of_int (R.int rng 256);
    c_width = 1 + List.length c_rest + R.int rng 2 }

let gen_seq rng =
  { CK.sq_frames = Array.init (R.int rng 6) (fun _ -> gen_frame rng);
    sq_rng = R.next_int64 rng;
    sq_stats = gen_stats rng;
    sq_metrics = gen_metrics rng;
    sq_states = gen_states rng;
    sq_edges = gen_edges rng;
    sq_complete = R.bool rng }

let gen_par_item rng i =
  { CK.pi_index = i;
    pi_stats = gen_stats rng;
    pi_metrics = gen_metrics rng;
    pi_states = gen_states rng;
    pi_edges = gen_edges rng }

let gen_payload rng =
  match R.int rng 3 with
  | 0 -> CK.Seq (gen_seq rng)
  | 1 ->
    CK.Par
      { CK.pa_split_depth = 1 + R.int rng 6;
        pa_n_items = R.int rng 64;
        pa_elapsed = float_of_int (R.int rng 1024) /. 8.;
        pa_items = List.init (R.int rng 4) (gen_par_item rng);
        pa_complete = R.bool rng }
  | _ ->
    CK.Par_sampling
      { CK.sa_round = R.int rng 5;
        sa_stats = gen_stats rng;
        sa_metrics = gen_metrics rng;
        sa_states = gen_states rng;
        sa_edges = gen_edges rng;
        sa_complete = R.bool rng }

let gen_t seed =
  let rng = R.make (Int64.of_int seed) in
  { CK.fingerprint = "fp-" ^ string_of_int seed; payload = gen_payload rng }

(* Structural equality; metrics snapshots are compared by entry list. *)
let eq_metrics a b = MS.entries a = MS.entries b

let eq_seq (a : CK.seq_state) (b : CK.seq_state) =
  a.CK.sq_frames = b.CK.sq_frames
  && a.CK.sq_rng = b.CK.sq_rng
  && a.CK.sq_stats = b.CK.sq_stats
  && eq_metrics a.CK.sq_metrics b.CK.sq_metrics
  && a.CK.sq_states = b.CK.sq_states
  && a.CK.sq_edges = b.CK.sq_edges
  && a.CK.sq_complete = b.CK.sq_complete

let eq_item (a : CK.par_item) (b : CK.par_item) =
  a.CK.pi_index = b.CK.pi_index
  && a.CK.pi_stats = b.CK.pi_stats
  && eq_metrics a.CK.pi_metrics b.CK.pi_metrics
  && a.CK.pi_states = b.CK.pi_states
  && a.CK.pi_edges = b.CK.pi_edges

let eq_payload a b =
  match (a, b) with
  | CK.Seq x, CK.Seq y -> eq_seq x y
  | CK.Par x, CK.Par y ->
    x.CK.pa_split_depth = y.CK.pa_split_depth
    && x.CK.pa_n_items = y.CK.pa_n_items
    && x.CK.pa_elapsed = y.CK.pa_elapsed
    && List.length x.CK.pa_items = List.length y.CK.pa_items
    && List.for_all2 eq_item x.CK.pa_items y.CK.pa_items
    && x.CK.pa_complete = y.CK.pa_complete
  | CK.Par_sampling x, CK.Par_sampling y ->
    x.CK.sa_round = y.CK.sa_round
    && x.CK.sa_stats = y.CK.sa_stats
    && eq_metrics x.CK.sa_metrics y.CK.sa_metrics
    && x.CK.sa_states = y.CK.sa_states
    && x.CK.sa_edges = y.CK.sa_edges
    && x.CK.sa_complete = y.CK.sa_complete
  | _ -> false

let eq_t a b = a.CK.fingerprint = b.CK.fingerprint && eq_payload a.CK.payload b.CK.payload

(* ------------------------------------------------------------------ *)
(* Interrupted-then-resumed equality harness.                          *)

let strip_time (s : Report.stats) =
  { s with Report.elapsed = 0.; search_elapsed = 0.; first_error_time = None }

let base =
  { Search_config.default with
    livelock_bound = Some 2_000;
    coverage = true;
    metrics = true }

let counters = Alcotest.(list (pair string int))

(* Run [cfg] uninterrupted; run it again with [max_executions = cut] and a
   checkpoint; resume; assert verdict, stats and metric counters all match
   the uninterrupted run. Returns both reports for extra assertions. *)
let resume_equal ?(runner = fun ?resume cfg p -> Par_search.run ?resume cfg p) cfg prog
    ~cut =
  let full = runner cfg prog in
  (* Clamp below the uninterrupted total so the cut genuinely interrupts. *)
  let cut = max 1 (min cut (full.Report.stats.Report.executions - 1)) in
  let file = Filename.temp_file "fairmc" ".ckpt" in
  let cfg_cut =
    { cfg with
      Search_config.max_executions = Some cut;
      checkpoint = Some file;
      checkpoint_interval = 0. }
  in
  let partial = runner cfg_cut prog in
  check "interrupted run stopped at the limit" true
    (partial.Report.verdict = Report.Limits_reached);
  let resumed =
    match CK.load file with
    | Error e -> Alcotest.fail e
    | Ok ck ->
      (match CK.plan_resume ck cfg ~program:prog.Program.name with
       | Error e -> Alcotest.fail e
       | Ok payload -> runner ~resume:payload cfg prog)
  in
  Sys.remove file;
  check "same verdict" true (resumed.Report.verdict = full.Report.verdict);
  check "same stats" true
    (strip_time resumed.Report.stats = strip_time full.Report.stats);
  Alcotest.check counters "same metric counters"
    (MS.counters full.Report.metrics)
    (MS.counters resumed.Report.metrics);
  (full, resumed)

(* ------------------------------------------------------------------ *)

let qprops =
  [ QCheck.Test.make ~name:"JSON codec round-trips every payload kind" ~count:300
      QCheck.small_int (fun seed ->
        let t = gen_t seed in
        let j = CK.to_json t in
        match CK.of_json j with
        | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
        | Ok t' -> eq_t t t' && Json.equal (CK.to_json t') j) ]

let unit_tests =
  [ Alcotest.test_case "save is atomic and load round-trips" `Quick (fun () ->
        let t = gen_t 42 in
        let file = Filename.temp_file "fairmc" ".ckpt" in
        CK.save file t;
        check "no temp file left behind" false (Sys.file_exists (file ^ ".tmp"));
        (match CK.load file with
         | Ok t' -> check "loaded value equals saved" true (eq_t t t')
         | Error e -> Alcotest.fail e);
        Sys.remove file);
    Alcotest.test_case "load rejects missing and corrupt files" `Quick (fun () ->
        check "missing file" true
          (match CK.load "/nonexistent/fairmc.ckpt" with Error _ -> true | Ok _ -> false);
        let file = Filename.temp_file "fairmc" ".ckpt" in
        Out_channel.with_open_bin file (fun oc -> output_string oc "{not json");
        check "corrupt file" true
          (match CK.load file with Error _ -> true | Ok _ -> false);
        Sys.remove file);
    Alcotest.test_case "plan_resume validates fingerprint and completion" `Quick
      (fun () ->
        let cfg = base in
        let sq = { (gen_seq (R.make 7L)) with CK.sq_complete = false } in
        let ok_t =
          { CK.fingerprint = CK.fingerprint cfg ~program:"p"; payload = CK.Seq sq }
        in
        check "matching fingerprint resumes" true
          (match CK.plan_resume ok_t cfg ~program:"p" with Ok _ -> true | Error _ -> false);
        (* Budgets are deliberately outside the fingerprint: a resume may
           extend them. *)
        check "budget changes still resume" true
          (match
             CK.plan_resume ok_t
               { cfg with Search_config.max_executions = Some 5; time_limit = Some 1. }
               ~program:"p"
           with
           | Ok _ -> true
           | Error _ -> false);
        check "different program refuses" true
          (match CK.plan_resume ok_t cfg ~program:"q" with Error _ -> true | Ok _ -> false);
        check "different seed refuses" true
          (match
             CK.plan_resume ok_t { cfg with Search_config.seed = 999L } ~program:"p"
           with
           | Error _ -> true
           | Ok _ -> false);
        let done_t =
          { ok_t with CK.payload = CK.Seq { sq with CK.sq_complete = true } }
        in
        check "completed checkpoint refuses" true
          (match CK.plan_resume done_t cfg ~program:"p" with Error _ -> true | Ok _ -> false));
    Alcotest.test_case "payload kind must fit the run shape" `Quick (fun () ->
        let prog = W.Litmus.fig3 () in
        let pa =
          CK.Par
            { CK.pa_split_depth = base.Search_config.split_depth;
              pa_n_items = 3;
              pa_elapsed = 0.;
              pa_items = [];
              pa_complete = false }
        in
        check "parallel payload on a sequential run raises Mismatch" true
          (match Par_search.run ~resume:pa base prog with
           | exception CK.Mismatch _ -> true
           | _ -> false);
        let sq = CK.Seq { (gen_seq (R.make 3L)) with CK.sq_complete = false } in
        check "sequential payload on a parallel run raises Mismatch" true
          (match Par_search.run ~resume:sq { base with Search_config.jobs = 4 } prog with
           | exception CK.Mismatch _ -> true
           | _ -> false));
    Alcotest.test_case "interrupted-then-resumed DFS equals uninterrupted (jobs=1)"
      `Quick (fun () ->
        let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:4 in
        ignore (resume_equal base prog ~cut:20);
        let dining = W.Dining.coverage_program ~n:2 in
        ignore (resume_equal base dining ~cut:50));
    Alcotest.test_case "interrupted-then-resumed DFS equals uninterrupted (jobs=4)"
      `Quick (fun () ->
        let prog = W.Dining.program ~n:3 W.Dining.Ordered in
        ignore (resume_equal { base with Search_config.jobs = 4 } prog ~cut:400));
    Alcotest.test_case "a chain of interruptions still converges" `Quick (fun () ->
        (* Cut twice at different points; each resume extends the budget. *)
        let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:4 in
        let full = Search.run base prog in
        let file = Filename.temp_file "fairmc" ".ckpt" in
        let with_ck cfg =
          { cfg with
            Search_config.checkpoint = Some file;
            checkpoint_interval = 0. }
        in
        let run_cut cut resume =
          Search.run ?resume
            (with_ck { base with Search_config.max_executions = Some cut })
            prog
        in
        let payload cfg =
          match CK.load file with
          | Error e -> Alcotest.fail e
          | Ok ck ->
            (match CK.plan_resume ck cfg ~program:prog.Program.name with
             | Ok (CK.Seq sq) -> sq
             | Ok _ -> Alcotest.fail "expected a sequential payload"
             | Error e -> Alcotest.fail e)
        in
        let r1 = run_cut 11 None in
        check "first leg limited" true (r1.Report.verdict = Report.Limits_reached);
        let r2 = run_cut 33 (Some (payload { base with Search_config.max_executions = Some 33 })) in
        check "second leg limited" true (r2.Report.verdict = Report.Limits_reached);
        check_int "second leg reports cumulative executions" 33
          r2.Report.stats.Report.executions;
        let final = Search.run ~resume:(payload base) base prog in
        Sys.remove file;
        check "same verdict as uninterrupted" true
          (final.Report.verdict = full.Report.verdict);
        check "same stats as uninterrupted" true
          (strip_time final.Report.stats = strip_time full.Report.stats));
    Alcotest.test_case "mid-path interrupt resumes exactly" `Quick (fun () ->
        (* Interrupt from inside a path (a progress tick at poll_interval=1
           fires between steps), not at a boundary: the checkpoint must
           exclude the partial path and the resume must re-run it fully. *)
        let prog = W.Dining.coverage_program ~n:2 in
        let full = Search.run base prog in
        let file = Filename.temp_file "fairmc" ".ckpt" in
        let ticks = ref 0 in
        let cut =
          { base with
            Search_config.poll_interval = 1;
            progress_interval = 0.;
            on_progress =
              Some
                (fun _ ->
                  incr ticks;
                  if !ticks = 13 then CK.request_interrupt ());
            checkpoint = Some file;
            checkpoint_interval = 0. }
        in
        let partial =
          Fun.protect ~finally:CK.clear_interrupt (fun () -> Search.run cut prog)
        in
        check "interrupt stopped the search" true
          (partial.Report.verdict = Report.Limits_reached);
        check "something was left to do" true
          (partial.Report.stats.Report.executions < full.Report.stats.Report.executions);
        let resumed =
          match CK.load file with
          | Error e -> Alcotest.fail e
          | Ok ck ->
            (match CK.plan_resume ck base ~program:prog.Program.name with
             | Ok (CK.Seq sq) -> Search.run ~resume:sq base prog
             | Ok _ -> Alcotest.fail "expected a sequential payload"
             | Error e -> Alcotest.fail e)
        in
        Sys.remove file;
        check "same verdict" true (resumed.Report.verdict = full.Report.verdict);
        check "same stats" true
          (strip_time resumed.Report.stats = strip_time full.Report.stats);
        Alcotest.check counters "same metric counters"
          (MS.counters full.Report.metrics)
          (MS.counters resumed.Report.metrics));
    Alcotest.test_case "resume finds the same counterexample" `Quick (fun () ->
        let prog = W.Litmus.race_assert () in
        let full = Search.run base prog in
        let e =
          match full.Report.stats.Report.first_error_execution with
          | Some e -> e
          | None -> Alcotest.fail "expected an error in race_assert"
        in
        check "error is not on the first execution" true (e >= 2);
        let file = Filename.temp_file "fairmc" ".ckpt" in
        let cut =
          { base with
            Search_config.max_executions = Some (e - 1);
            checkpoint = Some file;
            checkpoint_interval = 0. }
        in
        let partial = Search.run cut prog in
        check "stopped one execution short of the error" true
          (partial.Report.verdict = Report.Limits_reached);
        let resumed =
          match CK.load file with
          | Error err -> Alcotest.fail err
          | Ok ck ->
            (match CK.plan_resume ck base ~program:prog.Program.name with
             | Ok (CK.Seq sq) -> Search.run ~resume:sq base prog
             | Ok _ -> Alcotest.fail "expected a sequential payload"
             | Error err -> Alcotest.fail err)
        in
        Sys.remove file;
        (match (full.Report.verdict, resumed.Report.verdict) with
         | ( Report.Safety_violation { cex = a; tid = ta; _ },
             Report.Safety_violation { cex = b; tid = tb; _ } ) ->
           check_int "same thread" ta tb;
           check "same schedule" true (a.Report.decisions = b.Report.decisions)
         | _ -> Alcotest.fail "expected the same safety violation");
        check_int "first error lands on the same global execution" e
          (Option.get resumed.Report.stats.Report.first_error_execution));
    Alcotest.test_case "sampling resumes by remaining budget" `Quick (fun () ->
        let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:3 in
        let cfg = { base with Search_config.mode = Search_config.Random_walk 40 } in
        let full = Search.run cfg prog in
        let file = Filename.temp_file "fairmc" ".ckpt" in
        let cut =
          { cfg with
            Search_config.max_executions = Some 15;
            checkpoint = Some file;
            checkpoint_interval = 0. }
        in
        let partial = Search.run cut prog in
        check "cut run limited" true (partial.Report.verdict = Report.Limits_reached);
        let resumed =
          match CK.load file with
          | Error e -> Alcotest.fail e
          | Ok ck ->
            (match CK.plan_resume ck cfg ~program:prog.Program.name with
             | Ok (CK.Seq sq) -> Search.run ~resume:sq cfg prog
             | Ok _ -> Alcotest.fail "expected a sequential payload"
             | Error e -> Alcotest.fail e)
        in
        Sys.remove file;
        (* Sequential sampling resumes RNG-exactly, so even the sampled
           statistics match the uninterrupted run. *)
        check "same verdict" true (resumed.Report.verdict = full.Report.verdict);
        check "same stats" true
          (strip_time resumed.Report.stats = strip_time full.Report.stats));
    Alcotest.test_case "good-samaritan culprit tie-break is deterministic" `Quick
      (fun () ->
        (* Non-yielders dominate yielders; then occurrence counts; then the
           lowest tid — never hash-table iteration order. *)
        check_int "lowest tid wins an exact tie" 1
          (Search.good_samaritan_culprit [ (2, 5, false); (1, 5, false) ]);
        check_int "order of entries is irrelevant" 1
          (Search.good_samaritan_culprit [ (1, 5, false); (2, 5, false) ]);
        check_int "a non-yielder beats a busier yielder" 3
          (Search.good_samaritan_culprit [ (0, 9, true); (3, 2, false) ]);
        check_int "more occurrences win within a class" 4
          (Search.good_samaritan_culprit [ (4, 7, true); (5, 3, true) ]);
        check_int "yielder tie-break also picks the lowest tid" 0
          (Search.good_samaritan_culprit [ (1, 4, true); (0, 4, true) ]));
    Alcotest.test_case "replay reports mismatches explicitly" `Quick (fun () ->
        let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:2 in
        (* Thread 0 has only two steps; the third (0,0) decision cannot
           apply and must be reported with its position, not swallowed. *)
        match Search.replay prog [ (0, 0); (0, 0); (0, 0) ] (fun _ -> ()) with
        | Search.Replay_mismatch { step; tid } ->
          check_int "mismatching thread" 0 tid;
          check_int "mismatching step" 2 step
        | Search.Replayed_failure _ -> Alcotest.fail "unexpected failure"
        | Search.Replayed_no_failure -> Alcotest.fail "mismatch was swallowed") ]

let suite = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
