(* Static analysis layer: lint rules over the fixture corpus, the
   fairmc-lint/1 JSON document, sema error positions, visibility-based
   transition merging, and the ON/OFF differential soundness suite. *)

open Fairmc_core
module D = Fairmc_dsl
module S = Fairmc_static
module Lint = S.Lint
module Visibility = S.Visibility
module Json = Fairmc_util.Json
module R = Fairmc_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

(* Tests run from _build/default/test; the fixtures live in the source
   tree. *)
let fixture_dir sub =
  List.find_opt Sys.file_exists [ "../../../examples/" ^ sub; "examples/" ^ sub ]

let chess_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".chess")
  |> List.sort compare

let rules fs = List.map (fun (f : Lint.finding) -> f.Lint.rule) fs

(* ------------------------------------------------------------------ *)
(* Lint: exact findings over the fixture corpus.                       *)

(* One seeded defect per rule; each file must produce exactly its own
   finding and nothing else. *)
let seeded_table =
  [ ("dead_code.chess", [ "dead-code" ]);
    ("double_lock.chess", [ "double-lock" ]);
    ("lock_inversion.chess", [ "lock-inversion" ]);
    ("never_signaled_event.chess", [ "never-signaled" ]);
    ("never_signaled_sem.chess", [ "never-signaled" ]);
    ("race_candidate.chess", [ "race-candidate" ]);
    ("silent_loop.chess", [ "silent-loop" ]);
    ("unlock_unheld.chess", [ "unlock-unheld" ]);
    ("unused_global.chess", [ "unused-global" ]);
    ("unused_local.chess", [ "unused-local" ]) ]

(* The example programs: the mutex-free classics legitimately flag their
   unprotected globals; fig1's inverted forks flag the deadlock; the
   bounded buffer is clean. *)
let example_table =
  [ ("bounded_buffer.chess", []);
    ("dekker.chess", [ "race-candidate"; "race-candidate"; "race-candidate" ]);
    ("fig1_dining.chess", [ "lock-inversion" ]);
    ("fig3.chess", [ "race-candidate" ]);
    ("peterson.chess", [ "race-candidate"; "race-candidate"; "race-candidate" ]);
    ("stale_flag_livelock.chess", [ "race-candidate" ]) ]

let corpus_tests =
  [ Alcotest.test_case "seeded fixtures: exactly the intended finding" `Quick
      (fun () ->
        match fixture_dir "lint/seeded" with
        | None -> ()
        | Some dir ->
          check_strs "corpus covers every rule" (List.map fst seeded_table)
            (chess_files dir);
          List.iter
            (fun (file, expected) ->
              let fs = S.lint_file (Filename.concat dir file) in
              check_strs file expected (rules fs))
            seeded_table);
    Alcotest.test_case "clean fixtures: zero findings" `Quick (fun () ->
        match fixture_dir "lint/clean" with
        | None -> ()
        | Some dir ->
          let files = chess_files dir in
          check "clean corpus is non-empty" true (files <> []);
          List.iter
            (fun file ->
              check_strs file [] (rules (S.lint_file (Filename.concat dir file))))
            files);
    Alcotest.test_case "example programs: expected findings only" `Quick (fun () ->
        match fixture_dir "programs" with
        | None -> ()
        | Some dir ->
          List.iter
            (fun (file, expected) ->
              let fs = S.lint_file (Filename.concat dir file) in
              check_strs file expected (rules fs))
            example_table);
    Alcotest.test_case "findings are deterministic and sorted" `Quick (fun () ->
        match fixture_dir "lint/seeded" with
        | None -> ()
        | Some dir ->
          List.iter
            (fun file ->
              let path = Filename.concat dir file in
              let a = S.lint_file path and b = S.lint_file path in
              check file true (a = b);
              check (file ^ " sorted") true
                (List.sort Lint.compare_finding a = a))
            (chess_files dir));
    Alcotest.test_case "findings carry real source positions" `Quick (fun () ->
        let fs =
          S.lint_string ~name:"pos.chess"
            "program pos;\nmutex m;\nthread t {\n  unlock(m);\n}\n"
        in
        match fs with
        | [ f ] ->
          check_str "rule" "unlock-unheld" f.Lint.rule;
          check_str "file" "pos.chess" f.Lint.file;
          check_int "line" 4 f.Lint.line;
          check_int "col" 3 f.Lint.col;
          check_str "rendered" "pos.chess:4:3: error: mutex 'm' is released \
                                but cannot be held here [unlock-unheld]"
            (Lint.to_string f)
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)) ]

(* ------------------------------------------------------------------ *)
(* The fairmc-lint/1 JSON document.                                    *)

let field name = function
  | Json.Obj kvs -> List.assoc name kvs
  | _ -> Alcotest.fail "expected a JSON object"

let json_tests =
  [ Alcotest.test_case "fairmc-lint/1 schema round-trips" `Quick (fun () ->
        match fixture_dir "lint/seeded" with
        | None -> ()
        | Some dir ->
          let files = chess_files dir in
          let findings =
            List.concat_map (fun f -> S.lint_file (Filename.concat dir f)) files
          in
          let doc = Lint.to_json ~program:"seeded" findings in
          (* Round-trip through the printer/parser. *)
          (match Json.of_string (Json.to_string ~pretty:true doc) with
           | Error e -> Alcotest.fail e
           | Ok doc' -> check "round-trip" true (Json.equal doc doc'));
          check "schema tag" true (field "schema" doc = Json.Str "fairmc-lint/1");
          check "program" true (field "program" doc = Json.Str "seeded");
          check_int "count"
            (List.length findings)
            (match field "count" doc with Json.Int n -> n | _ -> -1);
          (* Severity counts partition the findings. *)
          let n k = match field k doc with Json.Int n -> n | _ -> -1 in
          check_int "severities partition" (List.length findings)
            (n "errors" + n "warnings" + n "notes");
          (* by_rule sums to count and names only real rules. *)
          (match field "by_rule" doc with
           | Json.Obj kvs ->
             check_int "by_rule sums"
               (List.length findings)
               (List.fold_left
                  (fun acc (_, v) ->
                    match v with Json.Int n -> acc + n | _ -> -1000)
                  0 kvs);
             check_int "one rule per seeded kind (two share never-signaled)"
               (List.length seeded_table - 1)
               (List.length kvs)
           | _ -> Alcotest.fail "by_rule is not an object");
          (match field "findings" doc with
           | Json.Arr items ->
             check_int "findings array" (List.length findings) (List.length items);
             List.iter
               (fun item ->
                 List.iter
                   (fun k -> ignore (field k item))
                   [ "rule"; "severity"; "file"; "line"; "col"; "message" ])
               items
           | _ -> Alcotest.fail "findings is not an array"));
    Alcotest.test_case "summary block: count + by_rule" `Quick (fun () ->
        let fs =
          S.lint_string ~name:"s" "program s;\nmutex m;\nthread t { unlock(m); }\n"
        in
        let s = Lint.summary_json fs in
        check_int "count" 1 (match field "count" s with Json.Int n -> n | _ -> -1);
        check "by_rule" true
          (field "by_rule" s = Json.Obj [ ("unlock-unheld", Json.Int 1) ])) ]

(* ------------------------------------------------------------------ *)
(* Sema error paths report real positions.                             *)

let sema_error src =
  match D.Parser.parse_string ~name:"err.chess" src |> D.Sema.check with
  | exception D.Sema.Error (msg, pos) -> (msg, pos.D.Ast.line, pos.D.Ast.col)
  | _ -> Alcotest.fail "expected Sema.Error"

let sema_tests =
  [ Alcotest.test_case "undeclared variable: message and position" `Quick
      (fun () ->
        let msg, line, col =
          sema_error "program perr;\nthread t {\n  x = 1;\n}\n"
        in
        check_str "message"
          "assignment to undeclared variable x (use 'local x = ...')" msg;
        check_int "line" 3 line;
        check_int "col" 3 col);
    Alcotest.test_case "duplicate thread: message and position" `Quick (fun () ->
        let msg, line, col =
          sema_error
            "program perr;\nthread t {\n  yield;\n}\nthread t {\n  yield;\n}\n"
        in
        check_str "message" "duplicate thread t" msg;
        check_int "line" 5 line;
        check_int "col" 1 col);
    Alcotest.test_case "duplicate global: message and position" `Quick (fun () ->
        let msg, line, col =
          sema_error "program perr;\nvar g = 0;\nvar g = 1;\nthread t {\n  g = 2;\n}\n"
        in
        check_str "message" "duplicate declaration of g" msg;
        check_int "line" 3 line;
        check_int "col" 1 col) ]

(* ------------------------------------------------------------------ *)
(* Visibility analysis.                                                *)

let visibility_tests =
  [ Alcotest.test_case "bounded buffer: single-accessor cursors merge" `Quick
      (fun () ->
        match fixture_dir "programs" with
        | None -> ()
        | Some dir ->
          let ast = D.Parser.parse_file (Filename.concat dir "bounded_buffer.chess") in
          let r = Visibility.analyze ast in
          check_strs "invisible" [ "head"; "tail" ] r.Visibility.invisible;
          check_strs "vetoed" [] r.Visibility.vetoed;
          check "merged sites" true (r.Visibility.merged_sites > 0));
    Alcotest.test_case "peterson: every global is shared, nothing merges" `Quick
      (fun () ->
        match fixture_dir "programs" with
        | None -> ()
        | Some dir ->
          let ast = D.Parser.parse_file (Filename.concat dir "peterson.chess") in
          let r = Visibility.analyze ast in
          check_strs "invisible" [] r.Visibility.invisible;
          check_int "merged sites" 0 r.Visibility.merged_sites);
    Alcotest.test_case "silent-loop veto keeps the livelock visible" `Quick
      (fun () ->
        (* `c` is thread-local, but merging it would leave the while(1)
           body with no scheduling point: the fair livelock verdict would
           degrade into a silent-fuel runtime error. The veto must keep
           it visible. *)
        let src =
          "program veto;\nvar c = 0;\nvar stop = 0;\n\
           thread spin {\n  while (1) {\n    c = c + 1;\n  }\n}\n\
           thread other {\n  stop = 1;\n}\n"
        in
        let ast = D.Parser.parse_string ~name:"veto" src in
        let r = Visibility.analyze ast in
        check_strs "vetoed" [ "c" ] r.Visibility.vetoed;
        check "c not invisible" true (not (List.mem "c" r.Visibility.invisible));
        (* And the merged program still classifies the loop as a
           divergence, exactly like the plain one. (The divergence
           subkind — livelock vs good-samaritan — is a first-found
           artifact of DFS order, which merging legitimately changes;
           both kinds exist in both trees.) *)
        let cfg =
          { Search_config.default with
            livelock_bound = Some 500;
            max_executions = Some 10_000 }
        in
        let diverges p =
          match (Search.run cfg p).Report.verdict with
          | Report.Divergence _ -> true
          | _ -> false
        in
        check "plain diverges" true (diverges (D.compile ast));
        check "merged diverges" true (diverges (S.compile ast)));
    Alcotest.test_case "merging shrinks the tree on a local-state workload"
      `Quick (fun () ->
        (* Two threads each looping on a private counter: every iteration
           is invisible once merged, so the interleaving explosion
           collapses. *)
        let src =
          "program beat;\nvar a = 0;\nvar b = 0;\n\
           thread t1 {\n  local i = 0;\n  while (i < 3) {\n    a = a + 1;\n    \
           i = i + 1;\n    yield;\n  }\n}\n\
           thread t2 {\n  local i = 0;\n  while (i < 3) {\n    b = b + 1;\n    \
           i = i + 1;\n    yield;\n  }\n}\n"
        in
        let ast = D.Parser.parse_string ~name:"beat" src in
        let r = Visibility.analyze ast in
        check_strs "invisible" [ "a"; "b" ] r.Visibility.invisible;
        let cfg = { Search_config.default with livelock_bound = Some 1_000 } in
        let off = Search.run cfg (D.compile ast) in
        let on = Search.run cfg (S.compile ast) in
        check_str "same verdict"
          (Report.verdict_key off.Report.verdict)
          (Report.verdict_key on.Report.verdict);
        check "fewer executions" true
          (on.Report.stats.Report.executions < off.Report.stats.Report.executions)) ]

(* ------------------------------------------------------------------ *)
(* Differential soundness: merging ON vs OFF must agree on everything
   observable — verdict and failure — across both backends and both
   job counts, on random programs.                                     *)

(* What merging must preserve: whether an error exists and which class
   it is. The divergence subkind and the identity of the first-found
   counterexample are DFS-order artifacts — merging reshapes the tree,
   so a program holding two errors may surface the other one first. *)
let failure_sig (r : Report.t) =
  match r.Report.verdict with
  | Report.Safety_violation { failure; _ } ->
    Printf.sprintf "safety %s" (Format.asprintf "%a" Engine.pp_failure failure)
  | Report.Divergence _ -> "divergence"
  | v -> Report.verdict_key v

let diff_cfg =
  { Search_config.default with
    livelock_bound = Some 200;
    max_executions = Some 30_000;
    time_limit = Some 10.0 }

let differential_tests =
  [ Alcotest.test_case
      "random programs: ON/OFF verdicts agree (both backends, jobs 1/4)" `Quick
      (fun () ->
        let rng = R.make 0xD1FFL in
        for i = 1 to 12 do
          let ast = Test_dsl.gen_program rng in
          List.iter
            (fun backend ->
              let off = D.compile ~backend ast in
              let on = S.compile ~backend ast in
              List.iter
                (fun jobs ->
                  let cfg = { diff_cfg with Search_config.jobs } in
                  let run p =
                    if jobs = 1 then Search.run cfg p else Par_search.run cfg p
                  in
                  let ro = run off and rn = run on in
                  (* Budget exhaustion on either side makes the verdicts
                     incomparable; the budget is sized so this is rare. *)
                  if
                    ro.Report.verdict <> Report.Limits_reached
                    && rn.Report.verdict <> Report.Limits_reached
                  then begin
                    check_str
                      (Printf.sprintf "sample %d (%s, jobs=%d)" i
                         (match backend with `Vm -> "vm" | `Ast -> "ast")
                         jobs)
                      (failure_sig ro) (failure_sig rn);
                    check
                      (Printf.sprintf "sample %d: ON explores no more than OFF" i)
                      true
                      (rn.Report.stats.Report.executions
                       <= ro.Report.stats.Report.executions)
                  end)
                [ 1; 4 ])
            [ `Vm; `Ast ]
        done);
    Alcotest.test_case "checkpoint/resume with merging enabled" `Quick (fun () ->
        match fixture_dir "programs" with
        | None -> ()
        | Some dir ->
          let prog =
            S.load_file (Filename.concat dir "bounded_buffer.chess")
          in
          let cfg =
            { Search_config.default with
              livelock_bound = Some 2_000;
              coverage = true;
              metrics = true }
          in
          ignore (Test_checkpoint.resume_equal cfg prog ~cut:5)) ]

let suite =
  corpus_tests @ json_tests @ sema_tests @ visibility_tests @ differential_tests
