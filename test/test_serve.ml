(* Checking-as-a-service tests: fairmc-jobs/1 codec round-trips
   (property-based), job identity (budgets excluded, strategy included),
   daemon survival of garbled and truncated frames, and fingerprint dedup
   — two identical submissions share one search and every subscriber gets
   the same final report.

   The daemon forks a runner per job and this test binary is
   domain-tainted (OCaml 5 forbids fork after a domain has been created),
   so the daemon runs as the real chessd binary in a subprocess — the
   same thing CI and users run. *)

module Serve = Fairmc_serve
module P = Serve.Protocol
module JS = Serve.Jobspec
module J = Fairmc_util.Json
module R = Fairmc_util.Rng
module Retry = Fairmc_util.Retry
module C = Fairmc_core.Search_config
module Worker = Fairmc_core.Worker
module AH = Fairmc_core.Analysis_hook

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Generators: pseudo-random specs and frames derived from a seed.     *)

let gen_opt rng f = if R.bool rng then Some (f rng) else None

let gen_mode rng =
  match R.int rng 5 with
  | 0 -> C.Dfs
  | 1 -> C.Round_robin
  | 2 -> C.Context_bounded (R.int rng 10)
  | 3 -> C.Random_walk (1 + R.int rng 1_000)
  | _ -> C.Priority_random (1 + R.int rng 1_000)

let analysis_names =
  List.map
    (fun (a : AH.t) -> a.AH.name)
    [ Fairmc_analysis.Hb_race.analysis; Fairmc_analysis.Lockset.analysis;
      Fairmc_analysis.Lock_graph.analysis ]

(* Eighths: finite and exactly representable, so JSON round-trips. *)
let gen_float8 rng = float_of_int (R.int rng 1024) /. 8.

let gen_spec rng =
  { JS.js_program =
      (match R.int rng 3 with
       | 0 -> "fig3"
       | 1 -> "examples/programs/peterson.chess"
       | _ -> "wsq-1s-correct");
    js_mode = gen_mode rng;
    js_fair = R.bool rng;
    js_fair_k = 1 + R.int rng 4;
    js_depth_bound = gen_opt rng (fun r -> R.int r 100);
    js_random_tail = R.bool rng;
    js_max_steps = 1 + R.int rng 100_000;
    js_livelock_bound = gen_opt rng (fun r -> R.int r 10_000);
    js_tail_window = R.int rng 100;
    js_max_executions = gen_opt rng (fun r -> R.int r 100_000);
    js_time_limit = gen_opt rng gen_float8;
    js_seed = R.next_int64 rng;
    js_sleep_sets = R.bool rng;
    js_coverage = R.bool rng;
    js_metrics = R.bool rng;
    js_jobs = 1 + R.int rng 4;
    js_split_depth = R.int rng 10;
    js_workers = 1 + R.int rng 4;
    js_item_timeout = gen_opt rng gen_float8;
    js_max_retries = R.int rng 5;
    js_analyses = List.filter (fun _ -> R.bool rng) analysis_names;
    js_interp = (if R.bool rng then C.Vm else C.Ast);
    js_static_por = R.bool rng }

let gen_job_state rng =
  match R.int rng 4 with
  | 0 -> P.Queued
  | 1 -> P.Running
  | 2 -> P.Done
  | _ -> P.Failed

let gen_id rng = Printf.sprintf "j%016Lx" (R.next_int64 rng)

let gen_job_info rng =
  { P.ji_id = gen_id rng;
    ji_program = "fig3";
    ji_state = gen_job_state rng;
    ji_priority = R.int rng 100 - 50;
    ji_attempts = R.int rng 4;
    ji_subscribers = R.int rng 8;
    ji_verdict = gen_opt rng (fun _ -> "verified") }

let gen_request rng =
  match R.int rng 7 with
  | 0 -> P.Hello
  | 1 -> P.Submit { spec = gen_spec rng; priority = R.int rng 100 - 50 }
  | 2 -> P.Jobs
  | 3 -> P.Status (gen_id rng)
  | 4 -> P.Watch { job = gen_id rng; events = R.bool rng }
  | 5 -> P.Cancel (gen_id rng)
  | _ -> P.Shutdown

(* A small arbitrary report document: the codec treats it as opaque. *)
let gen_doc rng =
  J.Obj [ ("schema", J.Str "fairmc-report/2"); ("n", J.Int (R.int rng 1000)) ]

let gen_message rng =
  match R.int rng 10 with
  | 0 -> P.Hello_ok { pid = R.int rng 65536; version = "1.0.0" }
  | 1 -> P.Submitted { job = gen_id rng; state = gen_job_state rng; deduped = R.bool rng }
  | 2 ->
    P.Job_list (List.init (R.int rng 4) (fun _ -> gen_job_info rng))
  | 3 -> P.Job_status (gen_job_info rng)
  | 4 -> P.Watching { job = gen_id rng; state = gen_job_state rng }
  | 5 -> P.Event "{\"kind\":\"run_start\"}"
  | 6 ->
    P.Job_done
      { job = gen_id rng; verdict = "verified"; found_error = R.bool rng;
        interrupted = R.bool rng; rendered = "result: verified";
        report = gen_doc rng }
  | 7 -> P.Cancelled { job = gen_id rng }
  | 8 -> P.Error_msg "unknown job"
  | _ -> P.Bye

let gen_runner rng =
  match R.int rng 3 with
  | 0 -> P.R_event "{\"kind\":\"path\"}"
  | 1 ->
    P.R_done
      { verdict = "safety"; found_error = R.bool rng; interrupted = R.bool rng;
        rendered = "result: assertion failed"; report = gen_doc rng }
  | _ -> P.R_failed "runner exploded"

let roundtrip ~name ~gen ~to_json ~of_json =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let rng = R.make (Int64.of_int (seed + 1)) in
      let v = gen rng in
      let j = to_json v in
      let v' = of_json j in
      v = v' && J.equal (to_json v') j)

let qprops =
  [ roundtrip ~name:"job spec JSON round-trips" ~gen:gen_spec
      ~to_json:JS.to_json ~of_json:JS.of_json;
    roundtrip ~name:"requests round-trip" ~gen:gen_request
      ~to_json:P.request_to_json ~of_json:P.request_of_json;
    roundtrip ~name:"server messages round-trip" ~gen:gen_message
      ~to_json:P.message_to_json ~of_json:P.message_of_json;
    roundtrip ~name:"runner messages round-trip" ~gen:gen_runner
      ~to_json:P.runner_to_json ~of_json:P.runner_of_json ]

(* ------------------------------------------------------------------ *)
(* Job identity: the dedup contract.                                   *)

let identity_tests =
  let spec = JS.of_config ~program:"fig3" C.default in
  [ Alcotest.test_case "budgets and vehicle do not change the job id" `Quick
      (fun () ->
        let base = JS.id spec ~program_name:"fig3" in
        let budgeted =
          { spec with
            JS.js_max_executions = Some 5; js_time_limit = Some 1.;
            js_jobs = 4; js_workers = 3 }
        in
        check_str "id" base (JS.id budgeted ~program_name:"fig3"));
    Alcotest.test_case "the strategy does change the job id" `Quick (fun () ->
        let base = JS.id spec ~program_name:"fig3" in
        let cb = { spec with JS.js_mode = C.Context_bounded 2 } in
        check "cb:2 gets its own id" true (base <> JS.id cb ~program_name:"fig3");
        check "another program gets its own id" true
          (base <> JS.id spec ~program_name:"fig4"));
    Alcotest.test_case "validate rejects unknown analyses" `Quick (fun () ->
        (match JS.validate { spec with JS.js_analyses = [ "made-up" ] } with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "expected an error");
        check "known analyses pass" true
          (JS.validate { spec with JS.js_analyses = analysis_names } = Ok ())) ]

(* ------------------------------------------------------------------ *)
(* Daemon subprocess harness                                           *)
(* ------------------------------------------------------------------ *)

let chessd =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "chessd.exe")

let with_daemon f =
  if not (Sys.file_exists chessd) then Alcotest.skip ();
  let dir = Filename.temp_file "fairmc_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "d.sock" in
  let spool = Filename.concat dir "spool" in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process chessd
      [| chessd; "--socket"; socket; "--spool"; spool; "--quiet" |]
      Unix.stdin dev_null dev_null
  in
  Unix.close dev_null;
  let rec wait_sock n =
    if not (Sys.file_exists socket) then
      if n = 0 then Alcotest.fail "chessd did not create its socket"
      else begin
        Unix.sleepf 0.05;
        wait_sock (n - 1)
      end
  in
  wait_sock 100;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Retry.eintr (fun () -> Unix.waitpid [] pid))
      with Unix.Unix_error _ -> ())
    (fun () -> f ~socket ~pid)

(* (verdict, rendered, report) of the terminal frame. *)
let rec await_done fd =
  match Serve.Client.next fd with
  | P.Job_done { verdict; rendered; report; _ } -> (verdict, rendered, report)
  | P.Watching _ | P.Event _ -> await_done fd
  | m ->
    Alcotest.failf "unexpected message while watching: %s"
      (J.to_string (P.message_to_json m))

(* ------------------------------------------------------------------ *)
(* Robustness: a bad client costs itself its connection, not the server *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  ignore (Retry.eintr (fun () -> Unix.write_substring fd s 0 (String.length s)))

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let robustness_tests =
  [ Alcotest.test_case "garbled frame: error reply, connection dropped, server alive"
      `Quick (fun () ->
        with_daemon @@ fun ~socket ~pid:_ ->
        let fd = raw_connect socket in
        (* Not a fairmc-ipc/1 header: the first 8 bytes are not hex. *)
        write_all fd "zzzzzzzz{\"op\":\"hello\"}";
        (match Worker.recv fd with
         | Ok (Some j) ->
           (match P.message_of_json j with
            | P.Error_msg _ -> ()
            | m ->
              Alcotest.failf "expected an error reply, got %s"
                (J.to_string (P.message_to_json m)))
         | Ok None -> Alcotest.fail "dropped without an error reply"
         | Error e -> Alcotest.failf "garbled reply: %s" e);
        (* ... and the connection is closed behind it. *)
        check "connection closed" true
          (match Worker.recv fd with Ok None -> true | _ -> false);
        Unix.close fd;
        (* A well-formed frame that is not a valid request also answers
           with an error, not a crash. *)
        let fd = raw_connect socket in
        Worker.send fd (J.Obj [ ("op", J.Str "no-such-op") ]);
        (match Worker.recv fd with
         | Ok (Some j) ->
           (match P.message_of_json j with
            | P.Error_msg _ -> ()
            | _ -> Alcotest.fail "expected an error reply")
         | _ -> Alcotest.fail "expected an error reply before the drop");
        Unix.close fd;
        (* The server must still complete a fresh handshake. *)
        let ok = Serve.Client.connect socket in
        Serve.Client.close ok);
    Alcotest.test_case "truncated frame: silent drop, server alive" `Quick
      (fun () ->
        with_daemon @@ fun ~socket ~pid:_ ->
        let fd = raw_connect socket in
        (* A header promising 4096 bytes, then EOF after 10. *)
        write_all fd "00001000{\"op\":\"he";
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        check "dropped on EOF mid-frame" true
          (match Worker.recv fd with Ok None -> true | Error _ -> true | _ -> false);
        Unix.close fd;
        let ok = Serve.Client.connect socket in
        Serve.Client.close ok) ]

(* ------------------------------------------------------------------ *)
(* Dedup: one search, many subscribers, identical reports              *)
(* ------------------------------------------------------------------ *)

let dedup_tests =
  [ Alcotest.test_case
      "identical submissions share one search; both subscribers get one report"
      `Quick (fun () ->
        with_daemon @@ fun ~socket ~pid:_ ->
        let a = Serve.Client.connect socket in
        let b = Serve.Client.connect socket in
        Fun.protect
          ~finally:(fun () ->
            Serve.Client.close a;
            Serve.Client.close b)
          (fun () ->
            let spec = JS.of_config ~program:"fig3" C.default in
            Serve.Client.request a (P.Submit { spec; priority = 0 });
            let job_a =
              match Serve.Client.next a with
              | P.Submitted { job; deduped; _ } ->
                check "first submission is fresh" false deduped;
                job
              | m ->
                Alcotest.failf "unexpected reply: %s"
                  (J.to_string (P.message_to_json m))
            in
            (* Same search, different budgets and worker count: must attach
               to the same job, whatever state it has reached. *)
            let spec_b =
              { spec with JS.js_max_executions = Some 999_999; js_workers = 2 }
            in
            Serve.Client.request b (P.Submit { spec = spec_b; priority = 7 });
            (match Serve.Client.next b with
             | P.Submitted { job; deduped; _ } ->
               check "second submission dedupes" true deduped;
               check_str "same job id" job_a job
             | m ->
               Alcotest.failf "unexpected reply: %s"
                 (J.to_string (P.message_to_json m)));
            Serve.Client.request a (P.Watch { job = job_a; events = false });
            Serve.Client.request b (P.Watch { job = job_a; events = true });
            let verdict_a, rendered_a, report_a = await_done a in
            let _, rendered_b, report_b = await_done b in
            check_str "verdict" "verified" verdict_a;
            check_str "same rendered report" rendered_a rendered_b;
            check "same report document" true (J.equal report_a report_b);
            (* The jobs table agrees: one job, done. *)
            Serve.Client.request a P.Jobs;
            match Serve.Client.next a with
            | P.Job_list [ i ] ->
              check_str "job id" job_a i.P.ji_id;
              check "done" true (i.P.ji_state = P.Done);
              check_str "verdict" "verified" (Option.value i.P.ji_verdict ~default:"?")
            | m ->
              Alcotest.failf "unexpected jobs reply: %s"
                (J.to_string (P.message_to_json m))));
    Alcotest.test_case "a late events subscriber replays the full backlog" `Quick
      (fun () ->
        with_daemon @@ fun ~socket ~pid:_ ->
        Serve.Client.with_daemon socket @@ fun fd ->
        let spec = JS.of_config ~program:"fig3" C.default in
        Serve.Client.request fd (P.Submit { spec; priority = 0 });
        let job =
          match Serve.Client.next fd with
          | P.Submitted { job; _ } -> job
          | _ -> Alcotest.fail "expected a submitted reply"
        in
        (* First watch: just wait until the job is finished. *)
        Serve.Client.request fd (P.Watch { job; events = false });
        ignore (await_done fd);
        (* Second watch, events on, after completion: the backlog must
           replay the whole fairmc-events/1 stream before the report. *)
        Serve.Client.request fd (P.Watch { job; events = true });
        let events = ref [] in
        let rec drain () =
          match Serve.Client.next fd with
          | P.Event line -> events := line :: !events; drain ()
          | P.Watching _ -> drain ()
          | P.Job_done _ -> ()
          | m ->
            Alcotest.failf "unexpected message: %s"
              (J.to_string (P.message_to_json m))
        in
        drain ();
        check "backlog is non-empty" true (!events <> []);
        let kinds =
          List.filter_map
            (fun line ->
              match J.of_string line with
              | Ok (J.Obj kvs) ->
                (match List.assoc_opt "kind" kvs with
                 | Some (J.Str k) -> Some k
                 | _ -> None)
              | _ -> None)
            !events
        in
        check "stream starts with run_start" true (List.mem "run_start" kinds);
        check "stream carries the run_end" true (List.mem "run_end" kinds)) ]

let suite =
  identity_tests @ robustness_tests @ dedup_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
