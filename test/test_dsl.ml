(* ChessLang frontend: lexing, parsing (precedence, errors with positions),
   static checks, and end-to-end execution under the checker. *)

open Fairmc_core
module D = Fairmc_dsl
module T = D.Token

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse src = D.Parser.parse_string src
let load src = D.load_string src

let run ?(cfg = { Search_config.default with livelock_bound = Some 1_000 }) src =
  Search.run cfg (load src)

let verdict_of src =
  match (run src).Report.verdict with
  | Report.Verified -> "verified"
  | Report.Safety_violation _ -> "safety"
  | Report.Deadlock _ -> "deadlock"
  | Report.Divergence _ -> "divergence"
  | Report.Race _ -> "race"
  | Report.Crash _ -> "crash"
  | Report.Limits_reached -> "limits"

let expect_sema_error src =
  match D.load_string src with
  | exception D.Sema.Error _ -> ()
  | exception e -> Alcotest.fail ("expected Sema.Error, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected a static error"

let expect_parse_error src =
  match parse src with
  | exception D.Parser.Error _ -> ()
  | exception D.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let lexer_tests =
  [ Alcotest.test_case "tokens" `Quick (fun () ->
        let toks = List.map fst (D.Lexer.tokenize_string "var x = 42; // comment\n x == !y") in
        check "token stream" true
          (toks
           = [ T.KW_VAR; T.IDENT "x"; T.ASSIGN; T.INT 42; T.SEMI; T.IDENT "x"; T.EQ;
               T.BANG; T.IDENT "y"; T.EOF ]));
    Alcotest.test_case "nested comments and strings" `Quick (fun () ->
        let toks = List.map fst (D.Lexer.tokenize_string "/* a /* b */ c */ \"hi\\n\"") in
        check "comment skipped, string lexed" true (toks = [ T.STRING "hi\n"; T.EOF ]));
    Alcotest.test_case "positions track lines" `Quick (fun () ->
        let toks = D.Lexer.tokenize_string "var\nx" in
        match toks with
        | [ (_, p1); (_, p2); _ ] ->
          check_int "first line" 1 p1.D.Ast.line;
          check_int "second line" 2 p2.D.Ast.line
        | _ -> Alcotest.fail "unexpected token count");
    Alcotest.test_case "bad character reported" `Quick (fun () ->
        try
          ignore (D.Lexer.tokenize_string "var x @ 3");
          Alcotest.fail "expected lexer error"
        with D.Lexer.Error _ -> ()) ]

let parser_tests =
  [ Alcotest.test_case "precedence: 1 + 2 * 3 == 7" `Quick (fun () ->
        check_int "verified means assert held" 0
          (if verdict_of "var r = 0; thread t { r = 1 + 2 * 3; assert(r == 7); }" = "verified"
           then 0
           else 1));
    Alcotest.test_case "associativity and unary operators" `Quick (fun () ->
        check "left-assoc minus" true
          (verdict_of "thread t { local r = 10 - 3 - 2; assert(r == 5); }" = "verified");
        check "unary minus binds tight" true
          (verdict_of "thread t { local r = -2 * 3; assert(r == -6); }" = "verified");
        check "negation" true
          (verdict_of "thread t { local r = !0; assert(r == 1 && !1 == 0); }" = "verified"));
    Alcotest.test_case "else-if chains" `Quick (fun () ->
        check "chain" true
          (verdict_of
             "thread t { local x = 2; local r = 0;\n\
              if (x == 1) { r = 10; } else if (x == 2) { r = 20; } else { r = 30; }\n\
              assert(r == 20); }"
           = "verified"));
    Alcotest.test_case "program header optional" `Quick (fun () ->
        check_int "named" 0 (compare (parse "program foo; thread t { skip; }").prog_name "foo");
        check "unnamed defaults" true
          (String.length (parse "thread t { skip; }").prog_name > 0));
    Alcotest.test_case "syntax errors carry positions" `Quick (fun () ->
        (try
           ignore (parse "thread t { x = ; }");
           Alcotest.fail "expected error"
         with D.Parser.Error (_, pos) -> check "line 1" true (pos.D.Ast.line = 1));
        expect_parse_error "thread t { if x { skip; } }";
        expect_parse_error "var 3;";
        expect_parse_error "thread t { lock m; }" (* missing parens *));
    Alcotest.test_case "statement ids are unique" `Quick (fun () ->
        let prog = parse "thread a { skip; skip; } thread b { while (1) { skip; } }" in
        let ids = ref [] in
        let rec go (b : D.Ast.block) =
          List.iter
            (fun (s : D.Ast.stmt) ->
              ids := s.id :: !ids;
              match s.kind with
              | D.Ast.If (_, x, y) ->
                go x;
                go y
              | D.Ast.While (_, x) | D.Ast.Atomic x -> go x
              | _ -> ())
            b
        in
        List.iter (fun (_, b) -> go b) (D.Ast.threads prog);
        check_int "unique" (List.length !ids) (List.length (List.sort_uniq compare !ids))) ]

let sema_tests =
  [ Alcotest.test_case "static errors" `Quick (fun () ->
        expect_sema_error "thread t { x = 1; }" (* undeclared *);
        expect_sema_error "var x; var x; thread t { skip; }" (* duplicate *);
        expect_sema_error "var x; thread t { lock(x); }" (* kind confusion *);
        expect_sema_error "mutex m; thread t { local r = m + 1; }" (* mutex as value *);
        expect_sema_error "sem s = -1; thread t { skip; }" (* negative sem *);
        expect_sema_error "var x; thread t { local x = 1; }" (* shadowing *);
        expect_sema_error "mutex m; thread t { local r = trylock(m) + trylock(m); }"
        (* two primitives in one statement *);
        expect_sema_error "mutex m; thread t { atomic { lock(m); } }"
        (* sync inside atomic *);
        expect_sema_error "thread t { atomic { local c = choose(2); } }"
        (* choice inside atomic *);
        expect_sema_error "thread t { atomic { atomic { skip; } } }" (* nested atomic *);
        expect_sema_error "var x; " (* no threads *));
    Alcotest.test_case "array kind checks" `Quick (fun () ->
        expect_sema_error "var x; thread t { local r = x[0]; }";
        expect_parse_error "array a[0]; thread t { skip; }";
        check "array use ok" true
          (verdict_of "array a[3] = 7; thread t { assert(a[0] + a[2] == 14); }" = "verified")) ]

let exec_tests =
  [ Alcotest.test_case "fig3.chess matches the native state space" `Quick (fun () ->
        let src = "var x = 0; thread t { x = 1; } thread u { while (x != 1) { yield; } }" in
        let r =
          Search.run
            { Search_config.default with coverage = true; livelock_bound = Some 1_000 }
            (load src)
        in
        check "verified" true (r.verdict = Report.Verified);
        check_int "5 states (paper Figure 3)" 5 r.stats.states);
    Alcotest.test_case "assertion failures are found with a trace" `Quick (fun () ->
        let src =
          "var x = 0;\n\
           thread a { if (x == 0) { x = x + 1; } }\n\
           thread b { if (x == 0) { x = x + 1; } }\n\
           thread c { while (x < 1) { yield; } assert(x == 1, \"lost update\"); }"
        in
        (* The check-then-act race allows x = 2; but note threads a/b read x
           and increment atomically per statement, so the race is between the
           if-test and the assignment statements. *)
        let r = run src in
        check "safety violation" true
          (match r.Report.verdict with
           | Report.Safety_violation { failure = Engine.Assertion m; _ } ->
             m = "lost update (thread c, line 4, column 41)"
             || String.length m > 0 (* message includes position *)
           | _ -> false));
    Alcotest.test_case "deadlock in opposite lock order" `Quick (fun () ->
        let src =
          "mutex m1; mutex m2;\n\
           thread a { lock(m1); lock(m2); unlock(m2); unlock(m1); }\n\
           thread b { lock(m2); lock(m1); unlock(m1); unlock(m2); }"
        in
        check "deadlock" true (verdict_of src = "deadlock"));
    Alcotest.test_case "semaphores, events, timed waits" `Quick (fun () ->
        let src =
          "sem s = 0; event done_ev; var got = 0;\n\
           thread producer { v(s); set(done_ev); }\n\
           thread consumer { p(s); wait(done_ev); got = 1; }\n\
           thread watch { while (got != 1) { sleep; } }"
        in
        check "verified" true (verdict_of src = "verified"));
    Alcotest.test_case "timedlock yields and returns failure" `Quick (fun () ->
        let src =
          "mutex m; var r = -1;\n\
           thread holder { lock(m); yield; unlock(m); }\n\
           thread prober { local ok = timedlock(m); if (ok) { unlock(m); } else { skip; } }"
        in
        check "verified" true (verdict_of src = "verified"));
    Alcotest.test_case "choose explores all alternatives" `Quick (fun () ->
        let src =
          "var seen0 = 0; var seen2 = 0;\n\
           thread t { local c = choose(3); if (c == 0) { seen0 = 1; }\n\
           if (c == 2) { seen2 = 1; } assert(c <= 2); }"
        in
        let r =
          Search.run { Search_config.default with coverage = true } (load src)
        in
        check "verified" true (r.verdict = Report.Verified);
        check "explored each branch" true (r.stats.executions >= 3));
    Alcotest.test_case "atomic blocks are single transitions" `Quick (fun () ->
        (* Two atomic increments cannot interleave: the final value is
           always 2, unlike the racy version. *)
        let src =
          "var x = 0;\n\
           thread a { atomic { local t = x; x = t + 1; } }\n\
           thread b { atomic { local t = x; x = t + 1; } }\n\
           thread c { while (x != 2) { yield; } }"
        in
        check "verified (no lost update possible)" true (verdict_of src = "verified"));
    Alcotest.test_case "non-atomic increments do lose updates" `Quick (fun () ->
        let src =
          "var x = 0;\n\
           thread a { local t = x; x = t + 1; }\n\
           thread b { local t = x; x = t + 1; }\n\
           thread c { while (x == 0) { yield; } assert(x == 2, \"lost update\"); }"
        in
        check "safety" true (verdict_of src = "safety"));
    Alcotest.test_case "runtime errors become safety violations" `Quick (fun () ->
        check "bounds" true
          (verdict_of "array a[2]; thread t { a[5] = 1; }" = "safety");
        check "division by zero" true
          (verdict_of "var x = 0; thread t { local r = 1 / x; }" = "safety");
        check "uninitialized local read" true
          (verdict_of "thread t { local a = 0; while (a == 1) { local b = 0; } local c = b; }"
           = "safety"));
    Alcotest.test_case "livelock detection through the DSL" `Quick (fun () ->
        let src =
          "var x = 0;\n\
           thread t { x = 1; }\n\
           thread u { local cached = x; while (cached != 1) { sleep; } }"
        in
        check "divergence" true (verdict_of src = "divergence"));
    Alcotest.test_case "example .chess files load and check" `Quick (fun () ->
        let dir =
          List.find_opt Sys.file_exists
            [ "../../../examples/programs"; "examples/programs" ]
        in
        match dir with
        | None -> ()  (* running outside the repo tree *)
        | Some dir ->
          let quick expected file llb =
            let prog = D.load_file (Filename.concat dir file) in
            let r =
              Search.run
                { Search_config.default with
                  livelock_bound = Some llb;
                  max_executions = Some 30_000;
                  time_limit = Some 10.0 }
                prog
            in
            let got =
              match r.Report.verdict with
              | Report.Verified | Report.Limits_reached -> "no-error"
              | Report.Divergence _ -> "divergence"
              | Report.Safety_violation _ -> "safety"
              | Report.Deadlock _ -> "deadlock"
              | Report.Race _ -> "race"
              | Report.Crash _ -> "crash"
            in
            Alcotest.(check string) file expected got
          in
          quick "no-error" "fig3.chess" 500;
          quick "divergence" "fig1_dining.chess" 500;
          quick "divergence" "stale_flag_livelock.chess" 500;
          quick "no-error" "bounded_buffer.chess" 2_000;
          quick "no-error" "peterson.chess" 2_000;
          quick "no-error" "dekker.chess" 2_000) ]

(* ------------------------------------------------------------------ *)
(* Differential suite: the bytecode VM against the AST-walking oracle.

   The VM replaces the AST interpreter as the default backend; its
   correctness contract is observable equivalence — identical [Op.t]
   transition streams per schedule, identical runtime errors (message and
   position), identical verdicts, counterexamples and coverage counts.
   Random ChessLang programs are generated directly as ASTs (shared by
   both backends, so positions and statement ids coincide) and compared
   under random schedules and under full searches. *)

module R = Fairmc_util.Rng
module BS = Fairmc_util.Bitset
module SC = Fairmc_statecap
module A = D.Ast

(* Random sema-valid programs over a fixed declaration set: two scalars,
   an array, a mutex, a semaphore, an event, 2–3 threads. Locals are
   always declared ([local x = ...] somewhere in the thread), usually up
   front — occasionally at the end, leaving earlier reads uninitialized
   (a runtime error both backends must report identically). *)
let gen_program rng : A.program =
  let next_id = ref 0 in
  let stmt kind =
    incr next_id;
    { A.id = !next_id; pos = { A.line = !next_id; col = 0 }; kind }
  in
  let p0 = { A.line = 0; col = 0 } in
  let ppos () = { A.line = 500 + R.int rng 400; col = 1 + R.int rng 9 } in
  let locals = [| "la"; "lb" |] in
  let local () = locals.(R.int rng 2) in
  let global () = if R.bool rng then "g0" else "g1" in
  let rec gen_expr depth prim ~in_atomic =
    let leaf () =
      match R.int rng (if !prim && not in_atomic then 6 else 5) with
      | 0 | 3 -> A.Int (R.int rng 5)
      | 1 -> A.Name (ppos (), local ())
      | 2 -> A.Name (ppos (), global ())
      | 4 -> A.Index (ppos (), "arr", gen_expr 0 prim ~in_atomic)
      | _ ->
        prim := false;
        (match R.int rng 5 with
         | 0 -> A.Try_lock (ppos (), "m")
         | 1 -> A.Timed_lock (ppos (), "m")
         | 2 -> A.Sem_try (ppos (), "s")
         | 3 -> A.Timed_wait (ppos (), "ev")
         | _ -> A.Choose (ppos (), 1 + R.int rng 3))
    in
    if depth = 0 || R.int rng 3 = 0 then leaf ()
    else
      match R.int rng 3 with
      | 0 ->
        let ops =
          [| A.Add; A.Sub; A.Mul; A.Div; A.Mod; A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge;
             A.And; A.Or |]
        in
        A.Binop
          ( ops.(R.int rng (Array.length ops)),
            gen_expr (depth - 1) prim ~in_atomic,
            gen_expr (depth - 1) prim ~in_atomic )
      | 1 -> A.Unop ((if R.bool rng then A.Not else A.Neg), gen_expr (depth - 1) prim ~in_atomic)
      | _ -> leaf ()
  in
  let rec gen_stmts depth ~in_atomic n =
    List.concat (List.init n (fun _ -> gen_stmt depth ~in_atomic))
  and gen_stmt depth ~in_atomic : A.stmt list =
    let prim = ref true in
    let e d = gen_expr d prim ~in_atomic in
    match R.int rng (if in_atomic then 8 else 16) with
    | 0 -> [ stmt (A.Local (local (), e 2)) ]
    | 1 -> [ stmt (A.Assign (A.Lname (p0, local ()), e 2)) ]
    | 2 -> [ stmt (A.Assign (A.Lname (p0, global ()), e 2)) ]
    | 3 -> [ stmt (A.Assign (A.Lindex (ppos (), "arr", e 1), e 1)) ]
    | 4 when depth > 0 ->
      [ stmt
          (A.If
             ( e 1,
               gen_stmts (depth - 1) ~in_atomic (1 + R.int rng 2),
               if R.bool rng then [] else gen_stmts (depth - 1) ~in_atomic 1 )) ]
    | 5 when depth > 0 && not in_atomic ->
      (* Bounded counter loop: terminates on its own. *)
      let l = local () in
      let k = 1 + R.int rng 3 in
      [ stmt (A.Local (l, A.Int 0));
        stmt
          (A.While
             ( A.Binop (A.Lt, A.Name (p0, l), A.Int k),
               gen_stmts (depth - 1) ~in_atomic 1
               @ [ stmt
                     (A.Assign
                        (A.Lname (p0, l), A.Binop (A.Add, A.Name (p0, l), A.Int 1))) ] ))
      ]
    | 6 when not in_atomic ->
      (* Spin on a global with a good-samaritan yield: may livelock, which
         the searches classify identically as a divergence. *)
      [ stmt
          (A.While
             ( A.Binop (A.Ne, A.Name (p0, global ()), A.Int (R.int rng 3)),
               [ stmt (if R.bool rng then A.Yield else A.Sleep) ] )) ]
    | 7 -> [ stmt (A.Assert (e 1, "gen-assert")) ]
    | _ when in_atomic -> [ stmt A.Skip ]
    | 8 -> [ stmt (A.Lock "m") ]
    | 9 -> [ stmt (A.Unlock "m") ]
    | 10 -> [ stmt (A.Sem_p "s") ]
    | 11 -> [ stmt (A.Sem_v "s") ]
    | 12 ->
      [ stmt
          (match R.int rng 3 with
           | 0 -> A.Set_event "ev"
           | 1 -> A.Reset_event "ev"
           | _ -> A.Wait "ev") ]
    | 13 -> [ stmt A.Yield ]
    | 14 when depth > 0 ->
      [ stmt (A.Atomic (gen_stmts (depth - 1) ~in_atomic:true (1 + R.int rng 2))) ]
    | _ -> [ stmt A.Skip ]
  in
  let thread tname =
    let decl l = stmt (A.Local (l, A.Int (R.int rng 3))) in
    let body = gen_stmts 2 ~in_atomic:false (2 + R.int rng 3) in
    let body =
      if R.int rng 5 = 0 then (decl "la" :: body) @ [ decl "lb" ]
      else decl "la" :: decl "lb" :: body
    in
    A.Dthread (p0, tname, body)
  in
  let nthreads = 2 + R.int rng 2 in
  { A.prog_name = "gen";
    decls =
      [ A.Dvar (p0, "g0", R.int rng 3);
        A.Dvar (p0, "g1", R.int rng 3);
        A.Darray (p0, "arr", 3, R.int rng 2);
        A.Dmutex (p0, "m");
        A.Dsem (p0, "s", 1);
        A.Devent (p0, "ev", R.bool rng) ]
      @ List.init nthreads (fun i -> thread (Printf.sprintf "t%d" i)) }

let bits bs =
  let l = ref [] in
  BS.iter (fun t -> l := t :: !l) bs;
  List.rev !l

type drive_result = {
  d_events : (int * int * Op.t * int * bool * bool * int list) list;
  d_failure : (int * Engine.failure) option;
  d_finished : bool;
}

(* Drive one engine run under a random schedule (recording decisions) or a
   fixed decision list; returns the full observable record. *)
let drive prog ~schedule ~max_steps =
  let run = Engine.start prog in
  Fun.protect ~finally:(fun () -> Engine.stop run) @@ fun () ->
  let fixed = match schedule with `Fixed l -> Some (Array.of_list l) | `Random _ -> None in
  let i = ref 0 in
  let ok = ref true in
  while
    !ok && Engine.failure run = None
    && (not (Engine.all_finished run))
    && !i < max_steps
  do
    let elist = bits (Engine.enabled_set run) in
    (if elist = [] then ok := false (* deadlock: compared via the record *)
     else
       match fixed with
       | Some a ->
         if !i >= Array.length a then ok := false
         else begin
           let tid, alt = a.(!i) in
           if (not (List.mem tid elist)) || alt >= Engine.alternatives run tid then
             ok := false (* schedule does not fit: streams will differ *)
           else Engine.step run ~tid ~alt
         end
       | None ->
         let rng = match schedule with `Random r -> r | `Fixed _ -> assert false in
         let tid = List.nth elist (R.int rng (List.length elist)) in
         let alt = R.int rng (Engine.alternatives run tid) in
         Engine.step run ~tid ~alt);
    incr i
  done;
  let d_events =
    List.map
      (fun (e : Trace.event) ->
        (e.Trace.step, e.tid, e.op, e.alt, e.result, e.yielded, bits e.enabled))
      (Trace.events (Engine.trace run))
  in
  ( { d_events; d_failure = Engine.failure run; d_finished = Engine.all_finished run },
    Trace.decisions (Engine.trace run) )

let pp_failure = function
  | None -> "none"
  | Some (tid, f) -> Format.asprintf "t%d:%a" tid Engine.pp_failure f

let prop_schedules seed =
  let rng = R.make (Int64.of_int ((seed * 2654435761) + 1)) in
  let ast = gen_program rng in
  let pa, dump_a = D.Machine.compile_inspect ast in
  let pv, dump_v = D.Vm.compile_inspect ast in
  List.for_all
    (fun k ->
      let sched = R.make (Int64.of_int ((seed * 31) + (k * 7) + 11)) in
      let ra, decisions = drive pa ~schedule:(`Random sched) ~max_steps:300 in
      let rv, _ = drive pv ~schedule:(`Fixed decisions) ~max_steps:300 in
      if ra.d_events <> rv.d_events then
        QCheck.Test.fail_reportf "op streams differ (seed %d, schedule %d)" seed k
      else if ra.d_failure <> rv.d_failure then
        QCheck.Test.fail_reportf "failures differ (seed %d): ast=%s vm=%s" seed
          (pp_failure ra.d_failure) (pp_failure rv.d_failure)
      else if ra.d_finished <> rv.d_finished then
        QCheck.Test.fail_reportf "termination differs (seed %d)" seed
      else if dump_a () <> dump_v () then
        QCheck.Test.fail_reportf "final stores differ (seed %d)" seed
      else true)
    [ 0; 1; 2 ]

let cex_decisions r = Option.map (fun c -> c.Report.decisions) (Report.cex r)
let cex_rendered r = Option.map (fun c -> c.Report.rendered) (Report.cex r)

let prop_search seed =
  let rng = R.make (Int64.of_int ((seed * 48271) + 1000)) in
  let ast = gen_program rng in
  let cfg =
    { Search_config.default with
      coverage = true;
      livelock_bound = Some 300;
      max_steps = 2_000;
      max_executions = Some 300;
      seed = Int64.of_int (seed + 17) }
  in
  let ra = Search.run cfg (D.Machine.compile ast) in
  let rv = Search.run cfg (D.Vm.compile ast) in
  let key r = Report.verdict_key r.Report.verdict in
  if key ra <> key rv then
    QCheck.Test.fail_reportf "verdicts differ (seed %d): ast=%s vm=%s" seed (key ra)
      (key rv)
  else if cex_decisions ra <> cex_decisions rv then
    QCheck.Test.fail_reportf "counterexample schedules differ (seed %d)" seed
  else if cex_rendered ra <> cex_rendered rv then
    QCheck.Test.fail_reportf "rendered counterexamples differ (seed %d)" seed
  else if
    (ra.stats.executions, ra.stats.transitions, ra.stats.states)
    <> (rv.stats.executions, rv.stats.transitions, rv.stats.states)
  then
    QCheck.Test.fail_reportf
      "stats differ (seed %d): ast=(%d,%d,%d) vm=(%d,%d,%d)" seed ra.stats.executions
      ra.stats.transitions ra.stats.states rv.stats.executions rv.stats.transitions
      rv.stats.states
  else true

let differential_qprops =
  [ QCheck.Test.make
      ~name:"random programs x random schedules: identical op streams and stores"
      ~count:40 QCheck.small_int prop_schedules;
    QCheck.Test.make
      ~name:"random programs: identical verdicts, counterexamples, coverage" ~count:25
      QCheck.small_int prop_search ]

let differential_tests =
  [ Alcotest.test_case "first counterexample equal across backends and jobs=1/4" `Quick
      (fun () ->
        let progs =
          [ ( "lost-update",
              "var x = 0;\n\
               thread a { local t = x; x = t + 1; }\n\
               thread b { local t = x; x = t + 1; }\n\
               thread c { while (x == 0) { yield; } assert(x == 2, \"lost update\"); }" );
            ( "deadlock",
              "mutex m1; mutex m2;\n\
               thread a { lock(m1); lock(m2); unlock(m2); unlock(m1); }\n\
               thread b { lock(m2); lock(m1); unlock(m1); unlock(m2); }" ) ]
        in
        List.iter
          (fun (name, src) ->
            let ast = D.Parser.parse_string src in
            let cfg = { Search_config.default with livelock_bound = Some 1_000 } in
            let reports =
              List.map
                (fun (backend, jobs) ->
                  Par_search.run { cfg with jobs } (D.compile ~backend ast))
                [ (`Ast, 1); (`Ast, 4); (`Vm, 1); (`Vm, 4) ]
            in
            match reports with
            | r0 :: rest ->
              List.iter
                (fun r ->
                  check (name ^ ": verdict") true
                    (Report.verdict_key r.Report.verdict
                     = Report.verdict_key r0.Report.verdict);
                  check (name ^ ": first counterexample") true
                    (cex_decisions r = cex_decisions r0))
                rest
            | [] -> assert false)
          progs);
    Alcotest.test_case "checkpoint interrupt/resume on the VM backend" `Quick (fun () ->
        let src =
          "sem s = 0; event done_ev; var got = 0;\n\
           thread producer { v(s); set(done_ev); }\n\
           thread consumer { p(s); wait(done_ev); got = 1; }\n\
           thread watch { while (got != 1) { sleep; } }"
        in
        let prog = D.load_string src (* VM backend is the default *) in
        let cfg = { Search_config.default with livelock_bound = Some 1_000 } in
        ignore (Test_checkpoint.resume_equal cfg prog ~cut:300);
        ignore
          (Test_checkpoint.resume_equal { cfg with Search_config.jobs = 4 } prog
             ~cut:500));
    Alcotest.test_case "stateful ground truth agrees across backends" `Quick (fun () ->
        let fig3 = "var x = 0; thread t { x = 1; } thread u { while (x != 1) { yield; } }" in
        let sa = SC.Stateful.explore (D.load_string ~backend:`Ast fig3) in
        let sv = SC.Stateful.explore (D.load_string ~backend:`Vm fig3) in
        check_int "fig3 states on the VM (paper Figure 3)" 5 sv.SC.Stateful.states;
        check_int "same state count" sa.SC.Stateful.states sv.SC.Stateful.states;
        check "both complete" true (sa.SC.Stateful.complete && sv.SC.Stateful.complete)) ]

let suite =
  lexer_tests @ parser_tests @ sema_tests @ exec_tests @ differential_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) differential_qprops
