(* ChessLang frontend: lexing, parsing (precedence, errors with positions),
   static checks, and end-to-end execution under the checker. *)

open Fairmc_core
module D = Fairmc_dsl
module T = D.Token

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse src = D.Parser.parse_string src
let load src = D.load_string src

let run ?(cfg = { Search_config.default with livelock_bound = Some 1_000 }) src =
  Search.run cfg (load src)

let verdict_of src =
  match (run src).Report.verdict with
  | Report.Verified -> "verified"
  | Report.Safety_violation _ -> "safety"
  | Report.Deadlock _ -> "deadlock"
  | Report.Divergence _ -> "divergence"
  | Report.Race _ -> "race"
  | Report.Limits_reached -> "limits"

let expect_sema_error src =
  match D.load_string src with
  | exception D.Sema.Error _ -> ()
  | exception e -> Alcotest.fail ("expected Sema.Error, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected a static error"

let expect_parse_error src =
  match parse src with
  | exception D.Parser.Error _ -> ()
  | exception D.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let lexer_tests =
  [ Alcotest.test_case "tokens" `Quick (fun () ->
        let toks = List.map fst (D.Lexer.tokenize_string "var x = 42; // comment\n x == !y") in
        check "token stream" true
          (toks
           = [ T.KW_VAR; T.IDENT "x"; T.ASSIGN; T.INT 42; T.SEMI; T.IDENT "x"; T.EQ;
               T.BANG; T.IDENT "y"; T.EOF ]));
    Alcotest.test_case "nested comments and strings" `Quick (fun () ->
        let toks = List.map fst (D.Lexer.tokenize_string "/* a /* b */ c */ \"hi\\n\"") in
        check "comment skipped, string lexed" true (toks = [ T.STRING "hi\n"; T.EOF ]));
    Alcotest.test_case "positions track lines" `Quick (fun () ->
        let toks = D.Lexer.tokenize_string "var\nx" in
        match toks with
        | [ (_, p1); (_, p2); _ ] ->
          check_int "first line" 1 p1.D.Ast.line;
          check_int "second line" 2 p2.D.Ast.line
        | _ -> Alcotest.fail "unexpected token count");
    Alcotest.test_case "bad character reported" `Quick (fun () ->
        try
          ignore (D.Lexer.tokenize_string "var x @ 3");
          Alcotest.fail "expected lexer error"
        with D.Lexer.Error _ -> ()) ]

let parser_tests =
  [ Alcotest.test_case "precedence: 1 + 2 * 3 == 7" `Quick (fun () ->
        check_int "verified means assert held" 0
          (if verdict_of "var r = 0; thread t { r = 1 + 2 * 3; assert(r == 7); }" = "verified"
           then 0
           else 1));
    Alcotest.test_case "associativity and unary operators" `Quick (fun () ->
        check "left-assoc minus" true
          (verdict_of "thread t { local r = 10 - 3 - 2; assert(r == 5); }" = "verified");
        check "unary minus binds tight" true
          (verdict_of "thread t { local r = -2 * 3; assert(r == -6); }" = "verified");
        check "negation" true
          (verdict_of "thread t { local r = !0; assert(r == 1 && !1 == 0); }" = "verified"));
    Alcotest.test_case "else-if chains" `Quick (fun () ->
        check "chain" true
          (verdict_of
             "thread t { local x = 2; local r = 0;\n\
              if (x == 1) { r = 10; } else if (x == 2) { r = 20; } else { r = 30; }\n\
              assert(r == 20); }"
           = "verified"));
    Alcotest.test_case "program header optional" `Quick (fun () ->
        check_int "named" 0 (compare (parse "program foo; thread t { skip; }").prog_name "foo");
        check "unnamed defaults" true
          (String.length (parse "thread t { skip; }").prog_name > 0));
    Alcotest.test_case "syntax errors carry positions" `Quick (fun () ->
        (try
           ignore (parse "thread t { x = ; }");
           Alcotest.fail "expected error"
         with D.Parser.Error (_, pos) -> check "line 1" true (pos.D.Ast.line = 1));
        expect_parse_error "thread t { if x { skip; } }";
        expect_parse_error "var 3;";
        expect_parse_error "thread t { lock m; }" (* missing parens *));
    Alcotest.test_case "statement ids are unique" `Quick (fun () ->
        let prog = parse "thread a { skip; skip; } thread b { while (1) { skip; } }" in
        let ids = ref [] in
        let rec go (b : D.Ast.block) =
          List.iter
            (fun (s : D.Ast.stmt) ->
              ids := s.id :: !ids;
              match s.kind with
              | D.Ast.If (_, x, y) ->
                go x;
                go y
              | D.Ast.While (_, x) | D.Ast.Atomic x -> go x
              | _ -> ())
            b
        in
        List.iter (fun (_, b) -> go b) (D.Ast.threads prog);
        check_int "unique" (List.length !ids) (List.length (List.sort_uniq compare !ids))) ]

let sema_tests =
  [ Alcotest.test_case "static errors" `Quick (fun () ->
        expect_sema_error "thread t { x = 1; }" (* undeclared *);
        expect_sema_error "var x; var x; thread t { skip; }" (* duplicate *);
        expect_sema_error "var x; thread t { lock(x); }" (* kind confusion *);
        expect_sema_error "mutex m; thread t { local r = m + 1; }" (* mutex as value *);
        expect_sema_error "sem s = -1; thread t { skip; }" (* negative sem *);
        expect_sema_error "var x; thread t { local x = 1; }" (* shadowing *);
        expect_sema_error "mutex m; thread t { local r = trylock(m) + trylock(m); }"
        (* two primitives in one statement *);
        expect_sema_error "mutex m; thread t { atomic { lock(m); } }"
        (* sync inside atomic *);
        expect_sema_error "thread t { atomic { local c = choose(2); } }"
        (* choice inside atomic *);
        expect_sema_error "thread t { atomic { atomic { skip; } } }" (* nested atomic *);
        expect_sema_error "var x; " (* no threads *));
    Alcotest.test_case "array kind checks" `Quick (fun () ->
        expect_sema_error "var x; thread t { local r = x[0]; }";
        expect_parse_error "array a[0]; thread t { skip; }";
        check "array use ok" true
          (verdict_of "array a[3] = 7; thread t { assert(a[0] + a[2] == 14); }" = "verified")) ]

let exec_tests =
  [ Alcotest.test_case "fig3.chess matches the native state space" `Quick (fun () ->
        let src = "var x = 0; thread t { x = 1; } thread u { while (x != 1) { yield; } }" in
        let r =
          Search.run
            { Search_config.default with coverage = true; livelock_bound = Some 1_000 }
            (load src)
        in
        check "verified" true (r.verdict = Report.Verified);
        check_int "5 states (paper Figure 3)" 5 r.stats.states);
    Alcotest.test_case "assertion failures are found with a trace" `Quick (fun () ->
        let src =
          "var x = 0;\n\
           thread a { if (x == 0) { x = x + 1; } }\n\
           thread b { if (x == 0) { x = x + 1; } }\n\
           thread c { while (x < 1) { yield; } assert(x == 1, \"lost update\"); }"
        in
        (* The check-then-act race allows x = 2; but note threads a/b read x
           and increment atomically per statement, so the race is between the
           if-test and the assignment statements. *)
        let r = run src in
        check "safety violation" true
          (match r.Report.verdict with
           | Report.Safety_violation { failure = Engine.Assertion m; _ } ->
             m = "lost update (thread c, line 4, column 41)"
             || String.length m > 0 (* message includes position *)
           | _ -> false));
    Alcotest.test_case "deadlock in opposite lock order" `Quick (fun () ->
        let src =
          "mutex m1; mutex m2;\n\
           thread a { lock(m1); lock(m2); unlock(m2); unlock(m1); }\n\
           thread b { lock(m2); lock(m1); unlock(m1); unlock(m2); }"
        in
        check "deadlock" true (verdict_of src = "deadlock"));
    Alcotest.test_case "semaphores, events, timed waits" `Quick (fun () ->
        let src =
          "sem s = 0; event done_ev; var got = 0;\n\
           thread producer { v(s); set(done_ev); }\n\
           thread consumer { p(s); wait(done_ev); got = 1; }\n\
           thread watch { while (got != 1) { sleep; } }"
        in
        check "verified" true (verdict_of src = "verified"));
    Alcotest.test_case "timedlock yields and returns failure" `Quick (fun () ->
        let src =
          "mutex m; var r = -1;\n\
           thread holder { lock(m); yield; unlock(m); }\n\
           thread prober { local ok = timedlock(m); if (ok) { unlock(m); } else { skip; } }"
        in
        check "verified" true (verdict_of src = "verified"));
    Alcotest.test_case "choose explores all alternatives" `Quick (fun () ->
        let src =
          "var seen0 = 0; var seen2 = 0;\n\
           thread t { local c = choose(3); if (c == 0) { seen0 = 1; }\n\
           if (c == 2) { seen2 = 1; } assert(c <= 2); }"
        in
        let r =
          Search.run { Search_config.default with coverage = true } (load src)
        in
        check "verified" true (r.verdict = Report.Verified);
        check "explored each branch" true (r.stats.executions >= 3));
    Alcotest.test_case "atomic blocks are single transitions" `Quick (fun () ->
        (* Two atomic increments cannot interleave: the final value is
           always 2, unlike the racy version. *)
        let src =
          "var x = 0;\n\
           thread a { atomic { local t = x; x = t + 1; } }\n\
           thread b { atomic { local t = x; x = t + 1; } }\n\
           thread c { while (x != 2) { yield; } }"
        in
        check "verified (no lost update possible)" true (verdict_of src = "verified"));
    Alcotest.test_case "non-atomic increments do lose updates" `Quick (fun () ->
        let src =
          "var x = 0;\n\
           thread a { local t = x; x = t + 1; }\n\
           thread b { local t = x; x = t + 1; }\n\
           thread c { while (x == 0) { yield; } assert(x == 2, \"lost update\"); }"
        in
        check "safety" true (verdict_of src = "safety"));
    Alcotest.test_case "runtime errors become safety violations" `Quick (fun () ->
        check "bounds" true
          (verdict_of "array a[2]; thread t { a[5] = 1; }" = "safety");
        check "division by zero" true
          (verdict_of "var x = 0; thread t { local r = 1 / x; }" = "safety");
        check "uninitialized local read" true
          (verdict_of "thread t { local a = 0; while (a == 1) { local b = 0; } local c = b; }"
           = "safety"));
    Alcotest.test_case "livelock detection through the DSL" `Quick (fun () ->
        let src =
          "var x = 0;\n\
           thread t { x = 1; }\n\
           thread u { local cached = x; while (cached != 1) { sleep; } }"
        in
        check "divergence" true (verdict_of src = "divergence"));
    Alcotest.test_case "example .chess files load and check" `Quick (fun () ->
        let dir =
          List.find_opt Sys.file_exists
            [ "../../../examples/programs"; "examples/programs" ]
        in
        match dir with
        | None -> ()  (* running outside the repo tree *)
        | Some dir ->
          let quick expected file llb =
            let prog = D.load_file (Filename.concat dir file) in
            let r =
              Search.run
                { Search_config.default with
                  livelock_bound = Some llb;
                  max_executions = Some 30_000;
                  time_limit = Some 10.0 }
                prog
            in
            let got =
              match r.Report.verdict with
              | Report.Verified | Report.Limits_reached -> "no-error"
              | Report.Divergence _ -> "divergence"
              | Report.Safety_violation _ -> "safety"
              | Report.Deadlock _ -> "deadlock"
              | Report.Race _ -> "race"
            in
            Alcotest.(check string) file expected got
          in
          quick "no-error" "fig3.chess" 500;
          quick "divergence" "fig1_dining.chess" 500;
          quick "divergence" "stale_flag_livelock.chess" 500;
          quick "no-error" "bounded_buffer.chess" 2_000;
          quick "no-error" "peterson.chess" 2_000;
          quick "no-error" "dekker.chess" 2_000) ]

let suite = lexer_tests @ parser_tests @ sema_tests @ exec_tests
