(* Derived synchronization primitives (Sync_extras), the lock-free Treiber
   stack workload, and repro-file serialization. *)

open Fairmc_core
module W = Fairmc_workloads
module X = Sync_extras

let check = Alcotest.(check bool)

let verify ?(llb = 3_000) ?max_executions name threads =
  let p = Program.of_threads ~name (fun () -> threads ()) in
  Search.run
    { Search_config.default with
      livelock_bound = Some llb;
      max_executions;
      time_limit = Some 15.0 }
    p

let no_error name threads =
  let r = verify name threads in
  check (name ^ ": no error") false (Report.found_error r)

let suite =
  [ Alcotest.test_case "condvar: no lost wakeups (producer/consumer)" `Quick (fun () ->
        no_error "condvar-pc" (fun () ->
            let m = Sync.Mutex.create () in
            let cv = X.Condvar.create () in
            let items = Sync.int_var ~name:"items" 0 in
            let producer () =
              Sync.Mutex.lock m;
              ignore (Sync.Svar.incr items);
              X.Condvar.notify_one cv;
              Sync.Mutex.unlock m
            in
            let consumer () =
              Sync.Mutex.lock m;
              (* Mesa discipline: re-check the predicate in a loop. *)
              while Sync.Svar.get items = 0 do
                X.Condvar.wait cv ~mutex:m
              done;
              ignore (Sync.Svar.update items (fun v -> v - 1));
              Sync.Mutex.unlock m
            in
            [ producer; consumer ]));
    Alcotest.test_case "condvar: notify_all wakes every waiter" `Quick (fun () ->
        no_error "condvar-broadcast" (fun () ->
            let m = Sync.Mutex.create () in
            let cv = X.Condvar.create () in
            let go = Sync.bool_var ~name:"go" false in
            let waiter () =
              Sync.Mutex.lock m;
              while not (Sync.Svar.get go) do
                X.Condvar.wait cv ~mutex:m
              done;
              Sync.Mutex.unlock m
            in
            let broadcaster () =
              Sync.Mutex.lock m;
              Sync.Svar.set go true;
              X.Condvar.notify_all cv;
              Sync.Mutex.unlock m
            in
            [ waiter; waiter; broadcaster ]));
    Alcotest.test_case "condvar: notification before wait is not lost" `Quick (fun () ->
        (* The notifier holds the user mutex while flipping the predicate,
           so a waiter that checked the predicate first is registered before
           the notification is issued. *)
        no_error "condvar-order" (fun () ->
            let m = Sync.Mutex.create () in
            let cv = X.Condvar.create () in
            let done_ = Sync.bool_var ~name:"done" false in
            [ (fun () ->
                Sync.Mutex.lock m;
                Sync.Svar.set done_ true;
                X.Condvar.notify_one cv;
                Sync.Mutex.unlock m);
              (fun () ->
                Sync.Mutex.lock m;
                while not (Sync.Svar.get done_) do
                  X.Condvar.wait cv ~mutex:m
                done;
                Sync.Mutex.unlock m) ]));
    Alcotest.test_case "rwlock: writers exclude everyone, readers share" `Quick (fun () ->
        no_error "rwlock" (fun () ->
            let rw = X.Rwlock.create () in
            let readers = Sync.int_var ~name:"active_readers" 0 in
            let writing = Sync.bool_var ~name:"writing" false in
            let reader () =
              X.Rwlock.lock_read rw;
              ignore (Sync.Svar.incr readers);
              Sync.check (not (Sync.Svar.get writing)) "reader overlapped a writer";
              ignore (Sync.Svar.update readers (fun v -> v - 1));
              X.Rwlock.unlock_read rw
            in
            let writer () =
              X.Rwlock.lock_write rw;
              Sync.Svar.set writing true;
              Sync.check (Sync.Svar.get readers = 0) "writer overlapped readers";
              Sync.Svar.set writing false;
              X.Rwlock.unlock_write rw
            in
            [ reader; reader; writer ]));
    Alcotest.test_case "barrier: no thread crosses before all arrive" `Quick (fun () ->
        no_error "barrier" (fun () ->
            let b = X.Barrier.create 2 in
            let phase = Array.init 2 (fun i -> Sync.int_var ~name:(Printf.sprintf "ph%d" i) 0) in
            let worker i () =
              Sync.Svar.set phase.(i) 1;
              X.Barrier.await b;
              (* Both must have finished phase 1. *)
              Sync.check (Sync.Svar.get phase.(0) = 1 && Sync.Svar.get phase.(1) = 1)
                "crossed the barrier early";
              X.Barrier.await b
            in
            [ worker 0; worker 1 ]));
    Alcotest.test_case "treiber stack: tagged variant verifies, ABA variant fails" `Slow
      (fun () ->
        let cfg bound =
          { Search_config.default with
            mode = Search_config.Context_bounded bound;
            livelock_bound = Some 2_000;
            time_limit = Some 20.0 }
        in
        let ok = Search.run (cfg 3) (W.Lockfree.program W.Lockfree.Tagged) in
        check "tagged verified" true (ok.verdict = Report.Verified);
        let bad = Checker.iterative_context_bound ~max_bound:3
            ~base:{ Search_config.default with livelock_bound = Some 2_000 }
            (W.Lockfree.program W.Lockfree.Aba)
        in
        check "aba found" true
          (match bad.verdict with Report.Safety_violation _ -> true | _ -> false));
    Alcotest.test_case "treiber stack sequential semantics" `Quick (fun () ->
        let out = ref [] in
        let r =
          verify ~max_executions:1 "treiber-seq" (fun () ->
              let s = W.Lockfree.create ~capacity:3 W.Lockfree.Tagged in
              [ (fun () ->
                  Sync.check (W.Lockfree.push s 1) "push 1";
                  Sync.check (W.Lockfree.push s 2) "push 2";
                  let a = W.Lockfree.pop s in
                  let b = W.Lockfree.pop s in
                  let c = W.Lockfree.pop s in
                  out := [ a; b; c ]) ])
        in
        check "no error" false (Report.found_error r);
        Alcotest.(check (list (option int))) "LIFO" [ Some 2; Some 1; None ] !out);
    Alcotest.test_case "repro round-trips" `Quick (fun () ->
        let t = { Repro.program = "race-assert"; decisions = [ (0, 0); (1, 2); (3, 0) ] } in
        (match Repro.of_string (Repro.to_string t) with
         | Ok t' ->
           Alcotest.(check string) "program" t.program t'.Repro.program;
           check "decisions" true (t.decisions = t'.Repro.decisions)
         | Error e -> Alcotest.fail e);
        (* long schedules wrap lines *)
        let long = { Repro.program = "p"; decisions = List.init 100 (fun i -> (i mod 3, 0)) } in
        (match Repro.of_string (Repro.to_string long) with
         | Ok t' -> check "long round-trip" true (t'.Repro.decisions = long.decisions)
         | Error e -> Alcotest.fail e));
    Alcotest.test_case "repro rejects garbage" `Quick (fun () ->
        check "bad header" true (Result.is_error (Repro.of_string "nonsense\n1 2 3"));
        check "no program" true (Result.is_error (Repro.of_string "fairmc-repro 1\n1 2"));
        check "bad decision" true
          (Result.is_error (Repro.of_string "fairmc-repro 1 p\n1 x 3")));
    Alcotest.test_case "saved safety repros replay end-to-end" `Quick (fun () ->
        let p = W.Litmus.race_assert () in
        let r = Search.run Search_config.default p in
        match r.verdict with
        | Report.Safety_violation { cex; _ } ->
          let file = Filename.temp_file "fairmc" ".repro" in
          Repro.save file { Repro.program = "race-assert"; decisions = cex.decisions };
          (match Repro.load file with
           | Ok { Repro.decisions; _ } ->
             check "replays to failure" true
               (match Search.replay p decisions (fun _ -> ()) with
                | Search.Replayed_failure _ -> true
                | Search.Replayed_no_failure | Search.Replay_mismatch _ -> false);
             Sys.remove file
           | Error e -> Alcotest.fail e)
        | _ -> Alcotest.fail "expected safety violation") ]
