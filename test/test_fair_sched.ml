(* Tests for Algorithm 1 (the fair scheduler): initialization conventions,
   the paper's Figure 4 emulation step by step, the acyclicity invariant of
   Theorem 3, and qcheck properties over random update sequences. *)

module B = Fairmc_util.Bitset
module FS = Fairmc_core.Fair_sched

let set = Alcotest.testable B.pp B.equal

let full n = B.full n

(* Random walks over scheduler updates, used by several properties. A step
   picks a schedulable thread, a yield flag, and enabled sets consistent
   with the pick. *)
let random_walk seed steps nthreads =
  let rng = Fairmc_util.Rng.make (Int64.of_int seed) in
  let fs = ref (FS.create ~nthreads ()) in
  (* [step] mutates in place, so snapshot each state with an explicit copy. *)
  let states = ref [ FS.copy !fs ] in
  for _ = 1 to steps do
    (* Random nonempty enabled set. *)
    let es = ref B.empty in
    while B.is_empty !es do
      es := B.empty;
      for t = 0 to nthreads - 1 do
        if Fairmc_util.Rng.bool rng then es := B.add t !es
      done
    done;
    let tset = FS.schedulable !fs ~enabled:!es in
    (* Theorem 3: nonempty enabled set implies nonempty schedulable set. *)
    assert (not (B.is_empty tset));
    let chosen = B.nth tset (Fairmc_util.Rng.int rng (B.cardinal tset)) in
    let yielded = Fairmc_util.Rng.bool rng in
    let es_after = ref B.empty in
    for t = 0 to nthreads - 1 do
      if Fairmc_util.Rng.bool rng then es_after := B.add t !es_after
    done;
    fs := FS.step !fs ~chosen ~yielded ~es_before:!es ~es_after:!es_after;
    states := FS.copy !fs :: !states
  done;
  !states

let unit_tests =
  [ Alcotest.test_case "initial windows per the paper" `Quick (fun () ->
        (* init: P = {}, E(u) = {}, D(u) = S(u) = Tid — so the first yield
           of any thread computes H = (E ∪ D) \ S = Tid \ Tid = {}. *)
        let fs = FS.create ~nthreads:3 () in
        Alcotest.(check (list (pair int int))) "P empty" [] (FS.priority_pairs fs);
        for t = 0 to 2 do
          let e, d, s = FS.sets fs ~tid:t in
          Alcotest.check set "E empty" B.empty e;
          Alcotest.check set "D = Tid" (full 3) d;
          Alcotest.check set "S = Tid" (full 3) s
        done);
    Alcotest.test_case "first yield leaves P unchanged" `Quick (fun () ->
        let fs = FS.create ~nthreads:2 () in
        let es = full 2 in
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "P still empty" [] (FS.priority_pairs fs));
    Alcotest.test_case "Figure 4 emulation" `Quick (fun () ->
        (* The paper's emulation on the Figure 3 spin loop: scheduling u
           (thread 1) continuously. u's transitions: loop test (not a
           yield), then yield, repeatedly. After u's *second* yield the edge
           (u, t) must appear, forcing t. *)
        let es = full 2 in
        let fs = FS.create ~nthreads:2 () in
        (* u: while (x != 1)  — not a yield *)
        let fs = FS.step fs ~chosen:1 ~yielded:false ~es_before:es ~es_after:es in
        (* u: yield()  — first yield: window opens, P unchanged *)
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "P empty after first yield" []
          (FS.priority_pairs fs);
        let e, d, s = FS.sets fs ~tid:1 in
        Alcotest.check set "E(u) = ES" es e;
        Alcotest.check set "D(u) = {}" B.empty d;
        Alcotest.check set "S(u) = {}" B.empty s;
        (* u: while (x != 1) again *)
        let fs = FS.step fs ~chosen:1 ~yielded:false ~es_before:es ~es_after:es in
        let _, _, s = FS.sets fs ~tid:1 in
        Alcotest.check set "S(u) = {u}" (B.singleton 1) s;
        (* u: yield() again — H = (E ∪ D) \ S = {t,u} \ {u} = {t} *)
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "edge (u,t) added" [ (1, 0) ]
          (FS.priority_pairs fs);
        (* With both enabled, u is now blocked: T = {t}. *)
        Alcotest.check set "only t schedulable" (B.singleton 0)
          (FS.schedulable fs ~enabled:es);
        (* Scheduling t removes edges with sink t?  No — removes edges with
           sink t: (u,t) has sink t, so it is removed (line 13). *)
        let fs = FS.step fs ~chosen:0 ~yielded:false ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "edge removed once t runs" []
          (FS.priority_pairs fs));
    Alcotest.test_case "blocked thread schedulable once blocker disabled" `Quick (fun () ->
        let es = full 2 in
        let fs = FS.create ~nthreads:2 () in
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "edge (1,0)" [ (1, 0) ] (FS.priority_pairs fs);
        (* If t (thread 0) becomes disabled, u may run again: the edge only
           constrains u while its sink is enabled. *)
        Alcotest.check set "u schedulable when t disabled" (B.singleton 1)
          (FS.schedulable fs ~enabled:(B.singleton 1)));
    Alcotest.test_case "disabling attributed to the executing thread" `Quick (fun () ->
        let es = full 2 in
        let fs = FS.create ~nthreads:2 () in
        (* Open windows for thread 0. *)
        let fs = FS.step fs ~chosen:0 ~yielded:true ~es_before:es ~es_after:es in
        (* Thread 0 disables thread 1 (lock acquisition). *)
        let fs = FS.step fs ~chosen:0 ~yielded:false ~es_before:es ~es_after:(B.singleton 0) in
        let _, d, _ = FS.sets fs ~tid:0 in
        Alcotest.check set "D(0) contains 1" (B.singleton 1) (B.inter d (B.singleton 1));
        (* At 0's next yield, H includes the disabled thread 1 even though it
           is not continuously enabled. *)
        let fs =
          FS.step fs ~chosen:0 ~yielded:true ~es_before:(B.singleton 0)
            ~es_after:(B.singleton 0)
        in
        Alcotest.(check (list (pair int int))) "edge (0,1)" [ (0, 1) ] (FS.priority_pairs fs));
    Alcotest.test_case "k-parameterization delays penalties" `Quick (fun () ->
        (* With k = 2, only every second yield updates P: the Figure 4
           sequence needs four yields instead of two. *)
        let es = full 2 in
        let fs = ref (FS.create ~nthreads:2 ~k:2 ()) in
        for _ = 1 to 3 do
          fs := FS.step !fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es
        done;
        Alcotest.(check (list (pair int int))) "no edge after 3 yields (k=2)" []
          (FS.priority_pairs !fs);
        fs := FS.step !fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es;
        Alcotest.(check (list (pair int int))) "edge after 4th yield" [ (1, 0) ]
          (FS.priority_pairs !fs));
    Alcotest.test_case "add_thread initializes a fresh window" `Quick (fun () ->
        let fs = FS.create ~nthreads:2 () in
        let fs = FS.add_thread fs in
        Alcotest.(check int) "three threads" 3 (FS.nthreads fs);
        let e, d, s = FS.sets fs ~tid:2 in
        Alcotest.check set "E empty" B.empty e;
        Alcotest.check set "D full" (full 3) d;
        Alcotest.check set "S full" (full 3) s;
        (* Its first yield adds nothing, like at init. *)
        let es = full 3 in
        let fs = FS.step fs ~chosen:2 ~yielded:true ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "P empty" [] (FS.priority_pairs fs));
    Alcotest.test_case "copy isolates in-place steps" `Quick (fun () ->
        let es = full 2 in
        let fs = FS.create ~nthreads:2 () in
        let snap = FS.copy fs in
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        let fs = FS.step fs ~chosen:1 ~yielded:true ~es_before:es ~es_after:es in
        Alcotest.(check (list (pair int int))) "stepped has edge" [ (1, 0) ]
          (FS.priority_pairs fs);
        Alcotest.(check (list (pair int int))) "copy unaffected" []
          (FS.priority_pairs snap);
        let _, _, s = FS.sets snap ~tid:1 in
        Alcotest.check set "copy windows unaffected" (full 2) s);
    Alcotest.test_case "invalid arguments rejected" `Quick (fun () ->
        (try
           ignore (FS.create ~nthreads:2 ~k:0 ());
           Alcotest.fail "k=0 accepted"
         with Invalid_argument _ -> ());
        let fs = FS.create ~nthreads:2 () in
        try
          ignore (FS.step fs ~chosen:5 ~yielded:false ~es_before:B.empty ~es_after:B.empty);
          Alcotest.fail "bad tid accepted"
        with Invalid_argument _ -> ()) ]

let qprops =
  [ QCheck.Test.make ~name:"P stays acyclic (Theorem 3 invariant)" ~count:200
      QCheck.(pair small_int (int_range 2 6))
      (fun (seed, n) ->
        List.for_all FS.is_acyclic (random_walk seed 60 n));
    QCheck.Test.make ~name:"schedulable nonempty iff enabled nonempty (Theorem 3)" ~count:200
      QCheck.(pair small_int (int_range 2 6))
      (fun (seed, n) ->
        List.for_all
          (fun fs ->
            (* For every state on the walk and every nonempty enabled set,
               the schedulable set is nonempty. *)
            let rng = Fairmc_util.Rng.make (Int64.of_int (seed + 17)) in
            let ok = ref true in
            for _ = 1 to 10 do
              let es = ref B.empty in
              while B.is_empty !es do
                for t = 0 to n - 1 do
                  if Fairmc_util.Rng.bool rng then es := B.add t !es
                done
              done;
              if B.is_empty (FS.schedulable fs ~enabled:!es) then ok := false
            done;
            !ok)
          (random_walk seed 40 n));
    QCheck.Test.make ~name:"schedulable is a subset of enabled" ~count:100
      QCheck.(pair small_int (int_range 2 6))
      (fun (seed, n) ->
        List.for_all
          (fun fs -> B.subset (FS.schedulable fs ~enabled:(full n)) (full n))
          (random_walk seed 40 n));
    QCheck.Test.make ~name:"scheduling a thread clears edges into it" ~count:100
      QCheck.(pair small_int (int_range 2 5))
      (fun (seed, n) ->
        let states = random_walk seed 50 n in
        (* Reconstruct: after any step with chosen = c, no (x, c) edge may
           remain unless re-added by a later yield of x; we check the
           weaker, always-true invariant on the immediate successor by
           re-running a single controlled step. *)
        List.for_all
          (fun fs ->
            let es = full n in
            let fs' = FS.step (FS.copy fs) ~chosen:0 ~yielded:false ~es_before:es ~es_after:es in
            List.for_all (fun (_, y) -> y <> 0) (FS.priority_pairs fs'))
          states) ]

let suite = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
