(* Sleep-set partial-order reduction (the extension the paper names as
   future work): the independence relation's properties and the reduction's
   soundness/savings on terminating programs. *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)

let op_gen =
  QCheck.Gen.(
    let obj = int_bound 3 in
    oneof
      [ map (fun o -> Op.Lock o) obj;
        map (fun o -> Op.Try_lock o) obj;
        map (fun o -> Op.Unlock o) obj;
        map (fun o -> Op.Sem_wait o) obj;
        map (fun o -> Op.Sem_post o) obj;
        map (fun o -> Op.Ev_wait o) obj;
        map (fun o -> Op.Ev_set o) obj;
        map (fun o -> Op.Var_read o) obj;
        map (fun o -> Op.Var_write o) obj;
        map (fun o -> Op.Var_rmw o) obj;
        return Op.Yield;
        return Op.Sleep;
        return Op.Spawn;
        map (fun t -> Op.Join t) (int_bound 3);
        map (fun n -> Op.Choose (n + 1)) (int_bound 3) ])

let op_arb = QCheck.make ~print:Op.to_string op_gen

let qprops =
  [ QCheck.Test.make ~name:"independence is symmetric" ~count:500
      QCheck.(pair op_arb op_arb)
      (fun (a, b) ->
        Indep.independent ~t1:0 ~op1:a ~t2:1 ~op2:b ~fair:false ()
        = Indep.independent ~t1:1 ~op1:b ~t2:0 ~op2:a ~fair:false ());
    QCheck.Test.make ~name:"same thread is never independent" ~count:200
      QCheck.(pair op_arb op_arb)
      (fun (a, b) -> not (Indep.independent ~t1:2 ~op1:a ~t2:2 ~op2:b ~fair:false ()));
    QCheck.Test.make ~name:"writes conflict with everything on the same object" ~count:500
      op_arb
      (fun a ->
        match Op.obj_of a with
        | Some o ->
          not (Indep.independent ~t1:0 ~op1:a ~t2:1 ~op2:(Op.Var_write o) ~fair:false ())
        | None -> true);
    QCheck.Test.make ~name:"fair mode makes yields dependent" ~count:200 op_arb
      (fun a -> not (Indep.independent ~t1:0 ~op1:Op.Yield ~t2:1 ~op2:a ~fair:true ())) ]

let unit_tests =
  [ Alcotest.test_case "reads of the same variable commute" `Quick (fun () ->
        check "read/read independent" true
          (Indep.independent ~t1:0 ~op1:(Op.Var_read 5) ~t2:1 ~op2:(Op.Var_read 5)
             ~fair:false ());
        check "read/write dependent" false
          (Indep.independent ~t1:0 ~op1:(Op.Var_read 5) ~t2:1 ~op2:(Op.Var_write 5)
             ~fair:false ());
        check "distinct vars independent" true
          (Indep.independent ~t1:0 ~op1:(Op.Var_write 5) ~t2:1 ~op2:(Op.Var_write 6)
             ~fair:false ()));
    Alcotest.test_case "join depends on the joined thread" `Quick (fun () ->
        check "join vs its thread" false
          (Indep.independent ~t1:0 ~op1:(Op.Join 1) ~t2:1 ~op2:Op.Yield ~fair:false ());
        check "join vs another thread" true
          (Indep.independent ~t1:0 ~op1:(Op.Join 2) ~t2:1 ~op2:(Op.Var_read 0) ~fair:false ()));
    Alcotest.test_case "sleep sets preserve verdicts and save executions" `Quick (fun () ->
        (* On independent-thread programs the reduction is dramatic: one
           maximal schedule instead of C(2s, s). *)
        let p = W.Litmus.two_step_threads ~nthreads:2 ~steps:3 in
        let base = { Search_config.default with fair = false } in
        let plain = Search.run base p in
        let reduced = Search.run { base with sleep_sets = true } p in
        check "same verdict" true (plain.verdict = reduced.verdict);
        check "fewer executions" true
          (reduced.stats.executions < plain.stats.executions));
    Alcotest.test_case "sleep sets preserve state coverage on racy programs" `Quick
      (fun () ->
        let p = W.Litmus.store_buffer () in
        let base = { Search_config.default with fair = false; coverage = true } in
        let plain = Search.run base p in
        let reduced = Search.run { base with sleep_sets = true } p in
        check "same verdict" true (plain.verdict = reduced.verdict);
        Alcotest.(check int) "same states" plain.stats.states reduced.stats.states;
        check "no more executions than plain" true
          (reduced.stats.executions <= plain.stats.executions));
    Alcotest.test_case "sleep sets still find bugs" `Quick (fun () ->
        let p = W.Litmus.race_assert () in
        let r =
          Search.run { Search_config.default with fair = false; sleep_sets = true } p
        in
        check "bug found" true
          (match r.verdict with Report.Safety_violation _ -> true | _ -> false));
    Alcotest.test_case "sleep sets with fairness stay sound on litmus programs" `Quick
      (fun () ->
        let p = W.Litmus.fig3 () in
        let r =
          Search.run
            { Search_config.default with sleep_sets = true; livelock_bound = Some 1_000;
              coverage = true }
            p
        in
        check "verified" true (r.verdict = Report.Verified)) ]

let suite = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) qprops
