(* Observability tests: the JSON emitter/parser, metrics snapshot algebra,
   jobs-invariance of the deterministic counter slice, and the progress
   callback under sequential and parallel search. *)

open Fairmc_core
module Json = Fairmc_util.Json
module M = Fairmc_obs.Metrics
module W = Fairmc_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* JSON emitter/parser.                                                *)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        (* Finite floats only: non-finite values intentionally emit null. *)
        map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Json.Str s) string_printable;
        map (fun s -> Json.Str s) string (* arbitrary bytes incl. controls *) ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [ (3, scalar);
          (1, map (fun l -> Json.Arr l) (list_size (int_bound 4) (value (depth - 1))));
          ( 1,
            map
              (fun l -> Json.Obj l)
              (list_size (int_bound 4)
                 (pair string_printable (value (depth - 1)))) ) ]
  in
  value 3

let json_arb = QCheck.make ~print:(fun j -> Json.to_string j) json_gen

let json_qprops =
  [ QCheck.Test.make ~count:500 ~name:"json round-trip" json_arb (fun j ->
        match Json.of_string (Json.to_string j) with
        | Ok j' -> Json.equal j j'
        | Error e -> QCheck.Test.fail_reportf "parse error: %s" e);
    QCheck.Test.make ~count:500 ~name:"json round-trip (pretty)" json_arb (fun j ->
        match Json.of_string (Json.to_string ~pretty:true j) with
        | Ok j' -> Json.equal j j'
        | Error e -> QCheck.Test.fail_reportf "parse error: %s" e) ]

let json_unit_tests =
  [ Alcotest.test_case "escaping of controls, quotes, backslash" `Quick (fun () ->
        check_str "escaped" {|"a\"b\\c\n\t\r\u0001"|}
          (Json.to_string (Json.Str "a\"b\\c\n\t\r\001"));
        check_str "round-trips" "ok"
          (match Json.of_string {|"a\"b\\c\n\t\r\u0001"|} with
           | Ok (Json.Str s) when s = "a\"b\\c\n\t\r\001" -> "ok"
           | Ok _ -> "wrong value"
           | Error e -> e));
    Alcotest.test_case "unicode escapes decode as UTF-8" `Quick (fun () ->
        match Json.of_string {|"éA"|} with
        | Ok (Json.Str s) -> check_str "utf8" "\xc3\xa9A" s
        | Ok _ -> Alcotest.fail "not a string"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "non-finite floats emit null" `Quick (fun () ->
        check_str "nan" "null" (Json.to_string (Json.Float Float.nan));
        check_str "inf" "null" (Json.to_string (Json.Float Float.infinity)));
    Alcotest.test_case "parser rejects garbage" `Quick (fun () ->
        let bad s = match Json.of_string s with Ok _ -> false | Error _ -> true in
        check "trailing" true (bad "1 x");
        check "unterminated" true (bad {|{"a": 1|});
        check "bare word" true (bad "flase");
        check "empty" true (bad ""));
    Alcotest.test_case "parser rejects NaN/Infinity literals" `Quick (fun () ->
        let bad s = match Json.of_string s with Ok _ -> false | Error _ -> true in
        (* JSON has no non-finite numbers; the emitter degrades them to null
           and the parser must not accept the JS spellings. *)
        check "NaN" true (bad "NaN");
        check "nan" true (bad "nan");
        check "Infinity" true (bad "Infinity");
        check "-Infinity" true (bad "-Infinity");
        check "inside array" true (bad "[1, NaN]"));
    Alcotest.test_case "deeply nested values round-trip" `Quick (fun () ->
        let deep =
          let rec build k acc =
            if k = 0 then acc
            else build (k - 1) (Json.Obj [ ("a", Json.Arr [ acc ]) ])
          in
          build 500 (Json.Int 42)
        in
        (match Json.of_string (Json.to_string deep) with
         | Ok v -> check "deep round-trip" true (Json.equal deep v)
         | Error e -> Alcotest.fail e);
        match Json.of_string (Json.to_string ~pretty:true deep) with
        | Ok v -> check "deep round-trip (pretty)" true (Json.equal deep v)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "surrogate pairs decode to non-BMP UTF-8" `Quick (fun () ->
        (* U+1F600 as a UTF-16 surrogate pair must come back as one 4-byte
           UTF-8 scalar, not as CESU-8 (two 3-byte sequences). *)
        (match Json.of_string {|"\uD83D\uDE00"|} with
         | Ok (Json.Str s) -> check_str "emoji" "\xf0\x9f\x98\x80" s
         | Ok _ -> Alcotest.fail "not a string"
         | Error e -> Alcotest.fail e);
        (* Mixed with surrounding text. *)
        (match Json.of_string {|"a\uD83D\uDE00b"|} with
         | Ok (Json.Str s) -> check_str "embedded" "a\xf0\x9f\x98\x80b" s
         | Ok _ -> Alcotest.fail "not a string"
         | Error e -> Alcotest.fail e);
        (* A lone high surrogate stays lenient: 3-byte form, and the
           character after it is untouched. *)
        (match Json.of_string {|"\uD800x"|} with
         | Ok (Json.Str s) -> check_str "lone high" "\xed\xa0\x80x" s
         | Ok _ -> Alcotest.fail "not a string"
         | Error e -> Alcotest.fail e);
        (* High surrogate followed by a \u escape that is NOT a low
           surrogate: both decode independently. *)
        match Json.of_string {|"\uD800\u0041"|} with
        | Ok (Json.Str s) -> check_str "high then BMP" "\xed\xa0\x80A" s
        | Ok _ -> Alcotest.fail "not a string"
        | Error e -> Alcotest.fail e) ]

(* ------------------------------------------------------------------ *)
(* Metrics snapshots: merge algebra.                                   *)

(* A random snapshot over a small shared name pool (so merges actually
   collide). Kind is a function of the name, as in real registries. *)
let snapshot_gen =
  let open QCheck.Gen in
  let entry =
    let* i = int_bound 5 in
    let* v = int_bound 1_000 in
    let* kind = int_bound 2 in
    return (kind, Printf.sprintf "%c/%d" (Char.chr (Char.code 'a' + kind)) i, v)
  in
  let* entries = list_size (int_bound 8) entry in
  return
    (List.fold_left
       (fun (snap : M.Snapshot.t) (kind, name, v) ->
         match kind with
         | 0 ->
           let prev =
             match M.Snapshot.find snap name with
             | Some (M.Snapshot.Counter c) -> c
             | _ -> 0
           in
           M.Snapshot.with_counter snap name (prev + v)
         | 1 ->
           let prev =
             match M.Snapshot.find snap name with
             | Some (M.Snapshot.Gauge g) -> g
             | _ -> 0
           in
           M.Snapshot.with_gauge snap name (max prev v)
         | _ ->
           (* Histograms come from a real registry so bucket bookkeeping is
              exercised end to end. *)
           let reg = M.create () in
           let h = M.histogram reg name in
           M.observe h v;
           M.Snapshot.merge snap (M.snapshot reg))
       M.Snapshot.empty entries)

let snapshot_arb =
  QCheck.make
    ~print:(fun s -> Json.to_string ~pretty:true (M.Snapshot.to_json s))
    snapshot_gen

let snap_eq a b = Json.equal (M.Snapshot.to_json a) (M.Snapshot.to_json b)

let metrics_qprops =
  [ QCheck.Test.make ~count:300 ~name:"merge is associative"
      (QCheck.triple snapshot_arb snapshot_arb snapshot_arb)
      (fun (a, b, c) ->
        snap_eq
          (M.Snapshot.merge a (M.Snapshot.merge b c))
          (M.Snapshot.merge (M.Snapshot.merge a b) c));
    QCheck.Test.make ~count:300 ~name:"merge is commutative"
      (QCheck.pair snapshot_arb snapshot_arb)
      (fun (a, b) -> snap_eq (M.Snapshot.merge a b) (M.Snapshot.merge b a));
    QCheck.Test.make ~count:300 ~name:"empty is the merge identity" snapshot_arb
      (fun a ->
        snap_eq a (M.Snapshot.merge a M.Snapshot.empty)
        && snap_eq a (M.Snapshot.merge M.Snapshot.empty a)) ]

let metrics_unit_tests =
  [ Alcotest.test_case "registry basics" `Quick (fun () ->
        let reg = M.create () in
        let c = M.counter reg "a" in
        M.incr c;
        M.add c 4;
        check_int "counter" 5 (M.value c);
        let g = M.gauge reg "g" in
        M.set g 7;
        M.set_max g 3;
        check_int "gauge keeps max" 7
          (match M.Snapshot.find (M.snapshot reg) "g" with
           | Some (M.Snapshot.Gauge v) -> v
           | _ -> -1);
        (* Same name, same kind: same cell. Different kind: rejected. *)
        M.incr (M.counter reg "a");
        check_int "re-registration shares the cell" 6 (M.value c);
        check "kind mismatch rejected" true
          (match M.gauge reg "a" with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "histogram buckets" `Quick (fun () ->
        let reg = M.create () in
        let h = M.histogram reg "h" in
        List.iter (M.observe h) [ 0; 1; 1; 2; 3; 900 ];
        match M.Snapshot.find (M.snapshot reg) "h" with
        | Some (M.Snapshot.Histogram hs) ->
          check_int "count" 6 hs.M.Snapshot.count;
          check_int "sum" 907 hs.M.Snapshot.sum;
          check_int "max" 900 hs.M.Snapshot.max;
          (* v=0 -> bucket 0; v=1 -> bucket 1; v in [2,4) -> bucket 2;
             900 in [2^9, 2^10) -> bucket 10. *)
          Alcotest.(check (list (pair int int)))
            "buckets"
            [ (0, 1); (1, 2); (2, 2); (10, 1) ]
            hs.M.Snapshot.buckets
        | _ -> Alcotest.fail "histogram missing") ]

(* ------------------------------------------------------------------ *)
(* Jobs-invariance of the deterministic counter slice.                 *)

(* The replay/fresh split depends on how the tree was sharded (workers replay
   their locked prefix); only the sum is invariant. Fold it before
   comparing. *)
let folded_counters snap =
  let steps = ref 0 in
  let rest =
    List.filter
      (fun (name, v) ->
        if name = "search/steps/replay" || name = "search/steps/fresh" then begin
          steps := !steps + v;
          false
        end
        else true)
      (M.Snapshot.counters snap)
  in
  ("search/steps/systematic-total", !steps) :: rest

let assert_counters_jobs_invariant name cfg prog =
  let cfg = { cfg with Search_config.metrics = true } in
  let seq = Search.run cfg prog in
  List.iter
    (fun jobs ->
      let par = Par_search.run { cfg with Search_config.jobs } prog in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%s: counters j=1 vs j=%d" name jobs)
        (folded_counters seq.Report.metrics)
        (folded_counters par.Report.metrics))
    [ 2; 4 ]

let base = { Search_config.default with livelock_bound = Some 2_000 }

let determinism_tests =
  [ Alcotest.test_case "counters are jobs-invariant (verified workload)" `Quick
      (fun () ->
        assert_counters_jobs_invariant "dining-cov"
          { base with coverage = true }
          (W.Dining.coverage_program ~n:2));
    Alcotest.test_case "counters are jobs-invariant (deadlock workload)" `Quick
      (fun () ->
        assert_counters_jobs_invariant "dining-deadlock" base
          (W.Dining.program ~n:2 W.Dining.Deadlock));
    Alcotest.test_case "counters are jobs-invariant (sleep sets)" `Quick (fun () ->
        assert_counters_jobs_invariant "two-step-ss"
          { base with fair = false; sleep_sets = true }
          (W.Litmus.two_step_threads ~nthreads:2 ~steps:3)) ]

(* ------------------------------------------------------------------ *)
(* Progress callback.                                                  *)

let progress_tests =
  [ Alcotest.test_case "callback fires (sequential)" `Quick (fun () ->
        let hits = Atomic.make 0 in
        let last_execs = ref (-1) in
        let cfg =
          { base with
            Search_config.progress_interval = 0.0;
            on_progress =
              Some
                (fun s ->
                  Atomic.incr hits;
                  last_execs := s.Fairmc_obs.Progress.executions)
          }
        in
        let r = Search.run cfg (W.Dining.coverage_program ~n:2) in
        check "fired" true (Atomic.get hits > 0);
        check_int "final sample sees all executions" r.Report.stats.executions
          !last_execs);
    Alcotest.test_case "callback fires (parallel)" `Quick (fun () ->
        let hits = Atomic.make 0 in
        let cfg =
          { base with
            Search_config.jobs = 4;
            progress_interval = 0.0;
            on_progress = Some (fun _ -> Atomic.incr hits)
          }
        in
        let r = Par_search.run cfg (W.Dining.coverage_program ~n:2) in
        check "fired" true (Atomic.get hits > 0);
        check "searched" true (r.Report.stats.executions > 0));
    Alcotest.test_case "no callback, no reporter" `Quick (fun () ->
        check "progress_of_cfg is None by default" true
          (Search.progress_of_cfg Search_config.default = None)) ]

(* ------------------------------------------------------------------ *)
(* Report JSON and trace export smoke tests.                           *)

let export_tests =
  [ Alcotest.test_case "report JSON round-trips through the parser" `Quick (fun () ->
        let cfg = { base with Search_config.metrics = true } in
        let r = Search.run cfg (W.Dining.program ~n:2 W.Dining.Deadlock) in
        let doc = Report.to_json ~program:"dining-2-deadlock" r in
        match Json.of_string (Json.to_string ~pretty:true doc) with
        | Ok doc' -> check "round-trip" true (Json.equal doc doc')
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "trace export covers the counterexample" `Quick (fun () ->
        let prog = W.Dining.program ~n:2 W.Dining.Deadlock in
        let r = Search.run base prog in
        match Trace_export.of_report prog r with
        | None -> Alcotest.fail "expected a counterexample"
        | Some doc ->
          (match doc with
           | Json.Obj fields ->
             (match List.assoc_opt "traceEvents" fields with
              | Some (Json.Arr evs) ->
                let cex = Option.get (Report.cex r) in
                let slices =
                  List.filter
                    (fun e ->
                      match e with
                      | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.Str "X")
                      | _ -> false)
                    evs
                in
                check_int "one slice per step" cex.Report.length
                  (List.length slices)
              | _ -> Alcotest.fail "traceEvents missing")
           | _ -> Alcotest.fail "not an object")) ]

let suite =
  json_unit_tests @ metrics_unit_tests @ determinism_tests @ progress_tests
  @ export_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) (json_qprops @ metrics_qprops)
