(* Supervised worker-pool tests.

   OCaml 5 forbids [Unix.fork] for the rest of the process lifetime once a
   second domain has ever been created — and this test binary runs
   multi-domain suites before this one. So the fork paths (zero-fault
   equivalence, the fault-injection matrix, crash quarantine, SIGINT
   teardown) are exercised through the real CLI binary in a subprocess,
   which is also what CI and users run; the in-process tests cover the
   pieces that do not fork — the workers=1 passthrough, the
   domains-already-created degradation path, checkpoint save hardening, the
   EINTR retry wrappers, resource-exhaustion trapping, and the wire
   protocol. *)

open Fairmc_core
module W = Fairmc_workloads
module J = Fairmc_util.Json
module Retry = Fairmc_util.Retry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let base = { Search_config.default with livelock_bound = Some 2_000 }

let verdict_kind (r : Report.t) = Report.verdict_name r.verdict

(* ------------------------------------------------------------------ *)
(* CLI subprocess harness                                              *)
(* ------------------------------------------------------------------ *)

(* The CLI is a declared dependency of the test stanza, built next to this
   executable; resolve it relative to the binary so the suite works under
   both [dune runtest] and [dune exec]. *)
let cli =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "chess_cli.exe")

let run_cli ~expect args =
  if not (Sys.file_exists cli) then Alcotest.skip ();
  let cmd = Filename.quote_command cli ("check" :: args) ^ " >/dev/null 2>/dev/null" in
  let rc = Sys.command cmd in
  check_int (Printf.sprintf "exit status of %s" (String.concat " " args)) expect rc

let report_of_cli ~expect args =
  let file = Filename.temp_file "fairmc_suptest" ".json" in
  run_cli ~expect (args @ [ "--json"; file ]);
  let s = In_channel.with_open_bin file In_channel.input_all in
  Sys.remove file;
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable report from %s: %s" (String.concat " " args) e

let field name = function
  | J.Obj kvs ->
    (match List.assoc_opt name kvs with
     | Some v -> v
     | None -> Alcotest.failf "report field %S missing" name)
  | _ -> Alcotest.failf "expected an object looking up %S" name

(* Everything wall-clock-derived measures real time and legitimately
   differs between runs; the rest of the stats must be bit-identical. *)
let deterministic_stats j =
  match field "stats" j with
  | J.Obj kvs ->
    J.Obj
      (List.filter
         (fun (k, _) ->
           not
             (List.mem k
                [ "elapsed_seconds"; "search_elapsed_seconds";
                  "executions_per_second"; "first_error_seconds"; "eta_seconds" ]))
         kvs)
  | _ -> Alcotest.fail "stats is not an object"

let assert_reports_equal name a b =
  check (name ^ ": verdict") true (J.equal (field "verdict" a) (field "verdict" b));
  let sa = deterministic_stats a and sb = deterministic_stats b in
  if not (J.equal sa sb) then
    Alcotest.failf "%s: deterministic stats differ:\n%s\n%s" name (J.to_string sa)
      (J.to_string sb)

(* ------------------------------------------------------------------ *)
(* Zero-fault equivalence: supervised == in-domain, via the CLI        *)
(* ------------------------------------------------------------------ *)

let equivalence_tests =
  [ Alcotest.test_case "zero faults: verified workload is bit-equal" `Quick (fun () ->
        let common = [ "dining-3-ordered"; "--coverage"; "-q" ] in
        let indom = report_of_cli ~expect:0 (common @ [ "-j"; "2" ]) in
        let sup = report_of_cli ~expect:0 (common @ [ "--workers"; "2" ]) in
        assert_reports_equal "dining-3" indom sup);
    Alcotest.test_case "zero faults: erroring workload is bit-equal" `Quick (fun () ->
        let common = [ "race-assert"; "-s"; "cb:2"; "--coverage"; "-q" ] in
        let indom = report_of_cli ~expect:1 (common @ [ "-j"; "2" ]) in
        let sup = report_of_cli ~expect:1 (common @ [ "--workers"; "2" ]) in
        assert_reports_equal "race-assert" indom sup;
        (* Same counterexample schedule, found at the same DFS position. *)
        check "counterexample decisions equal" true
          (J.equal
             (field "counterexample" (field "verdict" indom))
             (field "counterexample" (field "verdict" sup)))) ]

(* ------------------------------------------------------------------ *)
(* Fault-injection matrix, via the CLI                                 *)
(* ------------------------------------------------------------------ *)

let fault_matrix_tests =
  let clean () =
    report_of_cli ~expect:0 [ "dining-3-ordered"; "--coverage"; "--workers"; "2"; "-q" ]
  in
  List.map
    (fun kind ->
      let name = Search_config.fault_kind_name kind in
      Alcotest.test_case
        (Printf.sprintf "fault %s recovers to the clean report" name) `Quick
        (fun () ->
          let clean = clean () in
          let extra =
            match kind with
            | Search_config.Hang -> [ "--item-timeout"; "0.4" ]
            | Search_config.Save_fail ->
              [ "--checkpoint"; Filename.temp_file "fairmc_savefail" ".ckpt";
                "--checkpoint-interval"; "0" ]
            | _ -> []
          in
          let faulted =
            report_of_cli ~expect:0
              ([ "dining-3-ordered"; "--coverage"; "--workers"; "2"; "-q";
                 "--inject-fault"; name ^ "@1" ]
               @ extra)
          in
          assert_reports_equal name clean faulted))
    Search_config.fault_kinds

(* ------------------------------------------------------------------ *)
(* Crash quarantine, via the CLI                                       *)
(* ------------------------------------------------------------------ *)

let quarantine_tests =
  [ Alcotest.test_case "retry budget 0 quarantines the item as a crash" `Quick
      (fun () ->
        let r =
          report_of_cli ~expect:1
            [ "dining-3-ordered"; "--workers"; "2"; "--max-retries"; "0";
              "--inject-fault"; "crash@0"; "-q" ]
        in
        check_str "verdict key" "crash"
          (match field "verdict_key" r with J.Str s -> s | _ -> "?");
        let v = field "verdict" r in
        (* The counterexample is the quarantined item's schedule prefix —
           the same decisions the expansion locked for item 0. *)
        let decisions = field "decisions" (field "counterexample" v) in
        let items, _ =
          Search.expand base
            (W.Dining.program ~n:3 W.Dining.Ordered)
            ~split_depth:Search_config.default.split_depth
        in
        let expected =
          match items with
          | first :: _ ->
            J.Arr
              (Array.to_list first
               |> List.map (fun (d : Search.pdecision) ->
                      J.Arr [ J.Int d.Search.p_tid; J.Int d.Search.p_alt ]))
          | [] -> Alcotest.fail "expansion produced no items"
        in
        check "cex is the item's schedule prefix" true (J.equal decisions expected));
    Alcotest.test_case "a retry absorbs the crash instead" `Quick (fun () ->
        (* Same fault, default retry budget: re-run fault-free, verdict
           clean. *)
        let r =
          report_of_cli ~expect:0
            [ "dining-3-ordered"; "--workers"; "2"; "--inject-fault"; "crash@0"; "-q" ]
        in
        check_str "verdict key" "verified"
          (match field "verdict_key" r with J.Str s -> s | _ -> "?")) ]

(* ------------------------------------------------------------------ *)
(* SIGINT teardown + cross-backend resume, via the CLI                 *)
(* ------------------------------------------------------------------ *)

let interrupt_tests =
  [ Alcotest.test_case "SIGINT: exit 130, loadable checkpoint, exact resume" `Slow
      (fun () ->
        if not (Sys.file_exists cli) then Alcotest.skip ();
        let ckpt = Filename.temp_file "fairmc_sigint" ".ckpt" in
        Sys.remove ckpt;
        let baseline =
          report_of_cli ~expect:0
            [ "ticket-lock"; "--coverage"; "--workers"; "2"; "-q" ]
        in
        (* Interrupt a supervised checkpointed run mid-search: ticket-lock
           runs for around a second under two workers, the signal lands at
           0.3s — mid worker traffic, with checkpoint writes on every item
           (interval 0). *)
        let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process cli
            [| cli; "check"; "ticket-lock"; "--coverage"; "--workers"; "2";
               "--checkpoint"; ckpt; "--checkpoint-interval"; "0"; "-q" |]
            Unix.stdin dev_null dev_null
        in
        Unix.sleepf 0.3;
        Unix.kill pid Sys.sigint;
        let _, status = Retry.eintr (fun () -> Unix.waitpid [] pid) in
        Unix.close dev_null;
        (match status with
         | Unix.WEXITED 130 -> ()
         | Unix.WEXITED c -> Alcotest.failf "expected exit 130, got %d" c
         | Unix.WSIGNALED s -> Alcotest.failf "killed by signal %d" s
         | Unix.WSTOPPED _ -> Alcotest.fail "stopped");
        (* The final checkpoint flush happened during teardown and must be
           loadable. *)
        (match Checkpoint.load ckpt with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "checkpoint not loadable after SIGINT: %s" e);
        (* Cross-backend durability: the supervisor wrote it, the in-domain
           backend resumes it, and the merged totals equal an uninterrupted
           run's. *)
        let resumed =
          report_of_cli ~expect:0
            [ "ticket-lock"; "--coverage"; "-j"; "2"; "--resume"; ckpt; "-q" ]
        in
        assert_reports_equal "resume after SIGINT" baseline resumed;
        Sys.remove ckpt) ]

(* ------------------------------------------------------------------ *)
(* In-process: passthrough and degradation                             *)
(* ------------------------------------------------------------------ *)

let dispatch_tests =
  [ Alcotest.test_case "workers=1 takes the in-process path" `Quick (fun () ->
        let cfg = { base with Search_config.workers = 1; coverage = true } in
        let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:2 in
        let a = Supervisor.run cfg prog in
        let b = Search.run cfg prog in
        check_str "verdict" (verdict_kind b) (verdict_kind a);
        check_int "executions" b.stats.executions a.stats.executions);
    Alcotest.test_case "degrades to domains when forking is unavailable" `Quick
      (fun () ->
        (* This test binary has created domains, so OCaml 5 forbids fork
           here for good: Supervisor.run must fall back to the in-domain
           backend and still produce the exact report. *)
        let d = Domain.spawn (fun () -> ()) in
        Domain.join d;
        check "can_fork reports the poisoned process" false (Supervisor.can_fork ());
        let cfg = { base with coverage = true } in
        let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:3 in
        let seq = Search.run cfg prog in
        let sup = Supervisor.run { cfg with Search_config.workers = 2 } prog in
        check_str "verdict" (verdict_kind seq) (verdict_kind sup);
        check_int "executions" seq.stats.executions sup.stats.executions;
        check_int "transitions" seq.stats.transitions sup.stats.transitions;
        check_int "states" seq.stats.states sup.stats.states) ]

(* ------------------------------------------------------------------ *)
(* Checkpoint save hardening                                           *)
(* ------------------------------------------------------------------ *)

let save_hardening_tests =
  (* A real checkpoint value to save: produce one, load it back. *)
  let sample_ckpt () =
    let path = Filename.temp_file "fairmc_sample" ".ckpt" in
    let cfg =
      { base with
        fair = false;
        checkpoint = Some path;
        checkpoint_interval = 0.;
        max_executions = Some 2 }
    in
    let prog = W.Litmus.two_step_threads ~nthreads:2 ~steps:2 in
    ignore (Search.run cfg prog);
    match Checkpoint.load path with
    | Ok t ->
      Sys.remove path;
      t
    | Error e -> Alcotest.failf "could not produce a sample checkpoint: %s" e
  in
  [ Alcotest.test_case "transient save failures are retried" `Quick (fun () ->
        let t = sample_ckpt () in
        let path = Filename.temp_file "fairmc_retry" ".ckpt" in
        Sys.remove path;
        Checkpoint.inject_save_failures := 2;
        (match Checkpoint.save_result path t with
         | Ok () -> ()
         | Error e -> Alcotest.failf "save did not survive transient failures: %s" e);
        check_int "both injected failures consumed" 0 !Checkpoint.inject_save_failures;
        check "file written" true (Sys.file_exists path);
        (match Checkpoint.load path with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "retried save produced a bad file: %s" e);
        Sys.remove path);
    Alcotest.test_case "a failing save never clobbers the last good checkpoint" `Quick
      (fun () ->
        let t = sample_ckpt () in
        let path = Filename.temp_file "fairmc_noclobber" ".ckpt" in
        Sys.remove path;
        (match Checkpoint.save_result path t with
         | Ok () -> ()
         | Error e -> Alcotest.failf "initial save failed: %s" e);
        let good = In_channel.with_open_bin path In_channel.input_all in
        (* More injected failures than retry attempts: the save gives up. *)
        Checkpoint.inject_save_failures := 99;
        (match Checkpoint.save_result path t with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "save should have exhausted its retries");
        Checkpoint.inject_save_failures := 0;
        let now = In_channel.with_open_bin path In_channel.input_all in
        check "previous checkpoint intact" true (good = now);
        (match Checkpoint.load path with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "surviving checkpoint unreadable: %s" e);
        Sys.remove path);
    Alcotest.test_case "an unwritable path reports an error, not an exception" `Quick
      (fun () ->
        let t = sample_ckpt () in
        match Checkpoint.save_result "/nonexistent-dir/x/y.ckpt" t with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "save into a missing directory cannot succeed") ]

(* ------------------------------------------------------------------ *)
(* Retry wrappers                                                      *)
(* ------------------------------------------------------------------ *)

let retry_tests =
  [ Alcotest.test_case "eintr restarts interrupted calls" `Quick (fun () ->
        let calls = ref 0 in
        let v =
          Retry.eintr (fun () ->
              incr calls;
              if !calls < 3 then raise (Unix.Unix_error (Unix.EINTR, "write", ""));
              7)
        in
        check_int "result" 7 v;
        check_int "restarted twice" 3 !calls);
    Alcotest.test_case "eintr is transparent to other errors" `Quick (fun () ->
        match Retry.eintr (fun () -> raise (Unix.Unix_error (Unix.EBADF, "write", ""))) with
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
        | _ -> Alcotest.fail "EBADF must not be swallowed");
    Alcotest.test_case "transient retries then succeeds" `Quick (fun () ->
        let calls = ref 0 in
        let r =
          Retry.transient ~attempts:4 ~base_delay:0.001
            ~retryable:(function Sys_error _ -> true | _ -> false)
            (fun () ->
              incr calls;
              if !calls < 3 then raise (Sys_error "flaky");
              "ok")
        in
        check "succeeded" true (r = Ok "ok");
        check_int "two retries" 3 !calls);
    Alcotest.test_case "transient gives up after its budget" `Quick (fun () ->
        let calls = ref 0 in
        let r =
          Retry.transient ~attempts:3 ~base_delay:0.001
            ~retryable:(function Sys_error _ -> true | _ -> false)
            (fun () ->
              incr calls;
              raise (Sys_error "always"))
        in
        check "failed" true (match r with Error (Sys_error _) -> true | _ -> false);
        check_int "attempt budget honored" 3 !calls);
    Alcotest.test_case "transient does not retry non-retryable exceptions" `Quick
      (fun () ->
        let calls = ref 0 in
        (match
           Retry.transient ~attempts:5 ~base_delay:0.001
             ~retryable:(function Sys_error _ -> true | _ -> false)
             (fun () ->
               incr calls;
               raise Exit)
         with
         | exception Exit -> ()
         | Ok _ | Error _ -> Alcotest.fail "non-retryable exceptions must propagate");
        check_int "single attempt" 1 !calls) ]

(* ------------------------------------------------------------------ *)
(* Resource exhaustion trapping                                        *)
(* ------------------------------------------------------------------ *)

(* Stack_overflow / Out_of_memory inside a thread must classify as a safety
   violation carrying the offending schedule, not tear down the checker. *)
let resource_tests =
  let resource_prog exn =
    Program.of_threads ~name:"resource-exhaustion" (fun () ->
        [ (fun () -> Sync.yield ()); (fun () -> Sync.yield (); raise exn) ])
  in
  let assert_resource name exn expected_msg =
    let r = Search.run base (resource_prog exn) in
    match r.verdict with
    | Report.Safety_violation { failure = Engine.Resource m; cex; _ } ->
      check (name ^ ": message") true (m = expected_msg);
      check (name ^ ": schedule consistent") true
        (List.length cex.decisions = cex.length)
    | v ->
      Alcotest.failf "%s: expected a resource safety violation, got %s" name
        (Report.verdict_key v)
  in
  [ Alcotest.test_case "stack overflow becomes a safety verdict" `Quick (fun () ->
        assert_resource "stack-overflow" Stack_overflow "stack overflow");
    Alcotest.test_case "out of memory becomes a safety verdict" `Quick (fun () ->
        assert_resource "oom" Out_of_memory "out of memory");
    Alcotest.test_case "resource verdicts survive the DSL backends" `Quick (fun () ->
        (* Both interpreter backends route uncaught engine-level exceptions
           through the same classification; a deeply recursive ChessLang
           program must come back as a verdict either way. Here the native
           engine path stands in for both: the VM and AST interpreters trap
           only their own error type and let resource exceptions reach the
           engine (see Vm.exec / Interp). *)
        assert_resource "engine-path" Stack_overflow "stack overflow") ]

(* ------------------------------------------------------------------ *)
(* Wire protocol units                                                 *)
(* ------------------------------------------------------------------ *)

let protocol_tests =
  [ Alcotest.test_case "request/response roundtrip" `Quick (fun () ->
        let req = Worker.Run { q_index = 3; q_attempt = 1; q_time_left = Some 1.5 } in
        check "request" true (Worker.request_of_json (Worker.request_to_json req) = req);
        check "quit" true
          (Worker.request_of_json (Worker.request_to_json Worker.Quit) = Worker.Quit);
        let cex =
          { Report.rendered = "trace"; decisions = [ (0, 1); (1, 0) ]; length = 2 }
        in
        let report =
          { Report.verdict = Report.Crash { reason = "boom"; cex };
            stats = Par_search.zero_stats;
            metrics = Fairmc_obs.Metrics.Snapshot.empty;
            analysis = None }
        in
        let resp =
          { Worker.r_index = 4;
            r_attempt = 0;
            r_report = report;
            r_states = [ 3L; 9L ];
            r_events = [ (true, "path", J.Obj [ ("steps", J.Int 2) ]) ] }
        in
        let back = Worker.response_of_json (Worker.response_to_json resp) in
        check "response index" true (back.Worker.r_index = 4);
        check "response states" true (back.Worker.r_states = [ 3L; 9L ]);
        check "response events" true (back.Worker.r_events = resp.Worker.r_events);
        match back.Worker.r_report.Report.verdict with
        | Report.Crash { reason = "boom"; cex = c } ->
          check "cex decisions" true (c.decisions = cex.decisions)
        | _ -> Alcotest.fail "crash verdict did not roundtrip");
    Alcotest.test_case "frames reassemble across a pipe" `Quick (fun () ->
        let r, w = Unix.pipe () in
        let doc = J.Obj [ ("k", J.Str "v") ] in
        Worker.send w doc;
        let buf = Worker.inbuf () in
        (match Worker.feed buf r with
         | `Data _ -> ()
         | `Eof -> Alcotest.fail "unexpected EOF");
        (match Worker.extract buf with
         | Ok (Some got) -> check "frame payload" true (J.equal got doc)
         | Ok None -> Alcotest.fail "frame incomplete"
         | Error e -> Alcotest.failf "frame rejected: %s" e);
        Unix.close r;
        Unix.close w);
    Alcotest.test_case "garbled bytes are a protocol error" `Quick (fun () ->
        let r, w = Unix.pipe () in
        let junk = Bytes.of_string "!!not-a-frame!!" in
        ignore (Unix.write w junk 0 (Bytes.length junk));
        let buf = Worker.inbuf () in
        (match Worker.feed buf r with
         | `Data _ -> ()
         | `Eof -> Alcotest.fail "unexpected EOF");
        (match Worker.extract buf with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "garbage must not parse as a frame");
        Unix.close r;
        Unix.close w) ]

let suite =
  equivalence_tests @ fault_matrix_tests @ quarantine_tests @ interrupt_tests
  @ dispatch_tests @ save_hardening_tests @ retry_tests @ resource_tests
  @ protocol_tests
