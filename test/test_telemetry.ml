(* Telemetry tests: event envelope codec, stream sequencing, the
   jobs-invariant deterministic event slice, probe-mass exactness and
   estimator convergence, and span/dashboard export smoke tests. *)

open Fairmc_core
module Json = Fairmc_util.Json
module Events = Fairmc_obs.Events
module Estimator = Fairmc_obs.Estimator
module Span = Fairmc_obs.Span
module Dashboard = Fairmc_obs.Dashboard
module W = Fairmc_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let base = { Search_config.default with livelock_bound = Some 2_000 }

(* ------------------------------------------------------------------ *)
(* Envelope codec.                                                     *)

let event_gen =
  let open QCheck.Gen in
  let* seq = int_bound 1_000_000 in
  let* ts_us = int_bound 1_000_000_000 in
  let* shard = int_range (-1) 15 in
  let* det = bool in
  let* kind = oneofl [ "run_start"; "path"; "span"; "error"; "custom/kind" ] in
  let* data =
    let scalar =
      oneof
        [ return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) int;
          map (fun s -> Json.Str s) string_printable ]
    in
    let* fields = list_size (int_bound 4) (pair string_printable scalar) in
    return (Json.Obj fields)
  in
  return { Events.seq; ts_us; shard; det; kind; data }

let event_arb =
  QCheck.make ~print:(fun (e : Events.event) -> Events.line e) event_gen

let event_equal (a : Events.event) (b : Events.event) =
  a.Events.seq = b.Events.seq
  && a.ts_us = b.ts_us
  && a.shard = b.shard
  && a.det = b.det
  && String.equal a.kind b.kind
  && Json.equal a.data b.data

let codec_qprops =
  [ QCheck.Test.make ~count:500 ~name:"event line round-trip" event_arb
      (fun e ->
        match Events.of_line (Events.line e) with
        | Ok e' -> event_equal e e'
        | Error msg -> QCheck.Test.fail_reportf "of_line: %s" msg);
    QCheck.Test.make ~count:500 ~name:"event json round-trip" event_arb
      (fun e ->
        match Events.of_json (Events.to_json e) with
        | Ok e' -> event_equal e e'
        | Error msg -> QCheck.Test.fail_reportf "of_json: %s" msg) ]

let codec_unit_tests =
  [ Alcotest.test_case "envelope carries the schema tag" `Quick (fun () ->
        let e =
          { Events.seq = 0; ts_us = 1; shard = -1; det = true;
            kind = "run_start"; data = Json.Obj [] }
        in
        match Json.of_string (Events.line e) with
        | Ok (Json.Obj fields) ->
          check "schema" true
            (List.assoc_opt "schema" fields = Some (Json.Str Events.schema));
          check_str "schema value" "fairmc-events/1" Events.schema
        | Ok _ -> Alcotest.fail "line is not an object"
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "codec rejects foreign schemas and junk" `Quick (fun () ->
        let bad s =
          match Events.of_line s with Ok _ -> false | Error _ -> true
        in
        check "wrong schema" true
          (bad
             {|{"schema":"other/9","seq":0,"ts_us":0,"shard":0,"det":true,"kind":"x","data":{}}|});
        check "missing kind" true
          (bad {|{"schema":"fairmc-events/1","seq":0,"ts_us":0,"shard":0,"det":true,"data":{}}|});
        check "not json" true (bad "nope"));
    Alcotest.test_case "stream assigns gap-free sequence numbers" `Quick
      (fun () ->
        let s = Events.create ~collect:true () in
        let b0 = Events.buffer s ~shard:0 in
        let b1 = Events.buffer s ~shard:1 in
        Events.emit b0 ~det:true ~kind:"a" (Json.Obj [ ("i", Json.Int 0) ]);
        Events.emit b0 ~det:true ~kind:"b" (Json.Obj [ ("i", Json.Int 1) ]);
        Events.emit b1 ~kind:"c" (Json.Obj []);
        (* Batches flush atomically; within a batch emit order is kept. *)
        Events.flush b1;
        Events.flush b0;
        Events.flush b0 (* empty: no-op *);
        Events.post s ~shard:(-1) ~kind:"d" (Json.Obj []);
        let evs = Events.collected s in
        check_int "count" 4 (List.length evs);
        List.iteri (fun i (e : Events.event) -> check_int "seq" i e.Events.seq) evs;
        Alcotest.(check (list string))
          "order: batch1, then batch0 in emit order, then post"
          [ "c"; "a"; "b"; "d" ]
          (List.map (fun (e : Events.event) -> e.Events.kind) evs)) ]

(* ------------------------------------------------------------------ *)
(* Deterministic event slice: jobs-invariance.                         *)

(* The det slice of a collected stream as a sorted multiset of
   (kind, data) pairs — seq/ts_us/shard are explicitly excluded. *)
let det_slice evs =
  List.filter_map
    (fun (e : Events.event) ->
      if e.Events.det then Some (e.Events.kind ^ " " ^ Json.to_string e.Events.data)
      else None)
    evs
  |> List.sort String.compare

let run_collect cfg prog =
  let stream = Events.create ~collect:true () in
  let cfg = { cfg with Search_config.events = Some stream } in
  let r =
    if cfg.Search_config.jobs > 1 then Par_search.run cfg prog
    else Search.run cfg prog
  in
  (r, Events.collected stream)

let assert_det_events_jobs_invariant name cfg prog =
  let r1, evs1 = run_collect { cfg with Search_config.jobs = 1 } prog in
  List.iter
    (fun jobs ->
      let rj, evsj = run_collect { cfg with Search_config.jobs = jobs } prog in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: det events j=1 vs j=%d" name jobs)
        (det_slice evs1) (det_slice evsj);
      check_int
        (Printf.sprintf "%s: probe mass j=1 vs j=%d" name jobs)
        r1.Report.stats.probe_mass rj.Report.stats.probe_mass)
    [ 2; 4 ]

let determinism_tests =
  [ Alcotest.test_case "det events are jobs-invariant (verified workload)"
      `Quick (fun () ->
        assert_det_events_jobs_invariant "dining-cov"
          { base with coverage = true }
          (W.Dining.coverage_program ~n:2));
    Alcotest.test_case "det events are jobs-invariant (sleep sets)" `Quick
      (fun () ->
        assert_det_events_jobs_invariant "two-step-ss"
          { base with fair = false; sleep_sets = true }
          (W.Litmus.two_step_threads ~nthreads:2 ~steps:3));
    Alcotest.test_case "error events carry the verdict" `Quick (fun () ->
        let r, evs = run_collect base (W.Dining.program ~n:2 W.Dining.Deadlock) in
        check "found deadlock" true
          (match r.Report.verdict with Report.Deadlock _ -> true | _ -> false);
        let errors =
          List.filter (fun (e : Events.event) -> e.Events.kind = "error") evs
        in
        check_int "one error event" 1 (List.length errors);
        let e = List.hd errors in
        check "error is det" true e.Events.det;
        match e.Events.data with
        | Json.Obj fields ->
          check "verdict field" true
            (List.assoc_opt "verdict" fields = Some (Json.Str "deadlock"))
        | _ -> Alcotest.fail "error data not an object") ]

(* ------------------------------------------------------------------ *)
(* Estimator: fixed-point algebra and convergence.                     *)

let estimator_unit_tests =
  [ Alcotest.test_case "fixed-point division is exact" `Quick (fun () ->
        check_int "one/4" (Estimator.one / 4)
          (Estimator.of_widths [ 2; 2 ]);
        check_int "iterated = product"
          (Estimator.of_widths [ 4; 6 ])
          (Estimator.of_widths [ 2; 2; 2; 3 ]);
        check_int "width 0 and 1 are identity" Estimator.one
          (Estimator.of_widths [ 1; 0; 1 ]);
        (* Four leaves of a uniform binary tree of depth 2 sum to one. *)
        check_int "leaves sum to one" Estimator.one
          (4 * Estimator.of_widths [ 2; 2 ]));
    Alcotest.test_case "estimates at the boundaries" `Quick (fun () ->
        check "complete" true (Estimator.completion ~mass:Estimator.one = 1.0);
        check "empty" true (Estimator.completion ~mass:0 = 0.0);
        check "no probe, no estimate" true
          (Estimator.est_total ~mass:0 ~executions:5 = None
           && Estimator.eta ~mass:0 ~elapsed:1.0 = None);
        check_int "half the tree doubles the count" 10
          (Option.get
             (Estimator.est_total ~mass:(Estimator.one / 2) ~executions:5));
        check "done means no time left" true
          (Estimator.eta ~mass:Estimator.one ~elapsed:3.0 = Some 0.0)) ]

let estimator_search_tests =
  [ Alcotest.test_case "exhaustive search reaches probe mass = one" `Quick
      (fun () ->
        let r = Search.run base (W.Dining.coverage_program ~n:2) in
        check_int "mass" Estimator.one r.Report.stats.probe_mass;
        check "completion" true (Report.completion r.Report.stats = 1.0);
        check_int "est_total equals the true count" r.Report.stats.executions
          (Option.get (Report.est_total r.Report.stats)));
    Alcotest.test_case "truncated search estimates within 2x" `Quick (fun () ->
        let prog () = W.Dining.coverage_program ~n:2 in
        let full = Search.run base (prog ()) in
        let truth = full.Report.stats.executions in
        let cut = max 1 (truth / 3) in
        let part =
          Search.run { base with max_executions = Some cut } (prog ())
        in
        check "truncated" true (part.Report.stats.executions < truth);
        match Report.est_total part.Report.stats with
        | None -> Alcotest.fail "no estimate from a truncated run"
        | Some est ->
          check
            (Printf.sprintf "est=%d truth=%d within 2x" est truth)
            true
            (est >= truth / 2 && est <= truth * 2));
    Alcotest.test_case "sampling modes weigh executions by 1/budget" `Quick
      (fun () ->
        let n = 8 in
        let cfg = { base with Search_config.mode = Random_walk n } in
        let r = Search.run cfg (W.Dining.coverage_program ~n:2) in
        check_int "mass = executions/budget"
          (r.Report.stats.executions * (Estimator.one / n))
          r.Report.stats.probe_mass) ]

(* ------------------------------------------------------------------ *)
(* Spans and dashboard.                                                *)

let span_tests =
  [ Alcotest.test_case "search emits spans; to_trace renders them" `Quick
      (fun () ->
        let _, evs = run_collect base (W.Dining.coverage_program ~n:2) in
        let spans =
          List.filter (fun (e : Events.event) -> e.Events.kind = "span") evs
        in
        check "spans present" true (spans <> []);
        List.iter
          (fun (e : Events.event) ->
            check "spans are advisory" false e.Events.det)
          spans;
        match Span.to_trace evs with
        | Json.Obj fields ->
          (match List.assoc_opt "traceEvents" fields with
           | Some (Json.Arr items) ->
             let slices =
               List.filter
                 (fun j ->
                   match j with
                   | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.Str "X")
                   | _ -> false)
                 items
             in
             check_int "one slice per span" (List.length spans)
               (List.length slices)
           | _ -> Alcotest.fail "traceEvents missing")
        | _ -> Alcotest.fail "trace is not an object");
    Alcotest.test_case "span histograms appear in metrics" `Quick (fun () ->
        let cfg = { base with Search_config.metrics = true } in
        let r = Search.run cfg (W.Dining.coverage_program ~n:2) in
        let snap = r.Report.metrics in
        match Fairmc_obs.Metrics.Snapshot.find snap (Span.hist_name "fresh") with
        | Some (Fairmc_obs.Metrics.Snapshot.Histogram h) ->
          check "observed paths" true (h.Fairmc_obs.Metrics.Snapshot.count > 0)
        | _ -> Alcotest.fail "span/fresh/us histogram missing");
    Alcotest.test_case "dashboard draws and finishes" `Quick (fun () ->
        let path = Filename.temp_file "fairmc-dash" ".txt" in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        let oc = open_out path in
        let d = Dashboard.create ~out:oc () in
        (Dashboard.sink d)
          { Fairmc_obs.Progress.executions = 48_210; elapsed = 5.0; jobs = 4;
            phase = "search"; completion = Some 0.312; est_total = Some 154_000;
            eta = Some 7.0 };
        Dashboard.finish d;
        close_out oc;
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        check "drew the bar" true (String.length text > 0);
        check "shows the percentage" true
          (let needle = "31.2%" in
           let nl = String.length needle in
           let rec find i =
             i + nl <= String.length text
             && (String.sub text i nl = needle || find (i + 1))
           in
           find 0)) ]

let suite =
  codec_unit_tests @ determinism_tests @ estimator_unit_tests
  @ estimator_search_tests @ span_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) codec_qprops
