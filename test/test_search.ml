(* Search-layer tests: exhaustiveness (schedule counting against closed
   forms), context-bound accounting, depth bounding with random tails,
   verdicts, replay of counterexamples, coverage, and baselines. *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dfs = { Search_config.default with livelock_bound = Some 2_000 }

let binomial n k =
  let num = ref 1 in
  for i = 1 to k do
    num := !num * (n - k + i) / i
  done;
  !num

let suite =
  [ Alcotest.test_case "DFS counts interleavings of independent threads" `Quick (fun () ->
        (* Two independent threads with s steps each have C(2s, s) maximal
           schedules. Unfair DFS without fairness restrictions must
           enumerate exactly that many terminated executions. *)
        List.iter
          (fun s ->
            let p = W.Litmus.two_step_threads ~nthreads:2 ~steps:s in
            let cfg = { dfs with fair = false } in
            let r = Search.run cfg p in
            check "verified" true (r.verdict = Report.Verified);
            check_int
              (Printf.sprintf "C(%d,%d) schedules" (2 * s) s)
              (binomial (2 * s) s)
              r.stats.executions)
          [ 1; 2; 3; 4 ]);
    Alcotest.test_case "fair DFS also explores all yield-free schedules" `Quick (fun () ->
        (* Theorem 5: with no yields the priority relation stays empty, so
           the fair search coincides with the unrestricted one. *)
        let p = W.Litmus.two_step_threads ~nthreads:2 ~steps:3 in
        let r = Search.run dfs p in
        check_int "same count as unfair" (binomial 6 3) r.stats.executions);
    Alcotest.test_case "cb=0 explores only non-preemptive schedules" `Quick (fun () ->
        (* Without preemptions, each of the two 2-step threads runs to
           completion once scheduled: the only choice is which thread goes
           first at depth 0 and after a termination — exactly 2 schedules. *)
        let p = W.Litmus.two_step_threads ~nthreads:2 ~steps:2 in
        let cfg = { dfs with fair = false; mode = Search_config.Context_bounded 0 } in
        let r = Search.run cfg p in
        check_int "2 non-preemptive schedules" 2 r.stats.executions);
    Alcotest.test_case "cb budget widens coverage monotonically" `Quick (fun () ->
        let p = W.Wsq.coverage_program ~stealers:1 () in
        let states c =
          let cfg =
            { dfs with mode = Search_config.Context_bounded c; coverage = true }
          in
          (Search.run cfg p).stats.states
        in
        let s0 = states 0 and s1 = states 1 and s2 = states 2 in
        check "cb=0 <= cb=1" true (s0 <= s1);
        check "cb=1 <= cb=2" true (s1 <= s2);
        check "cb=1 strictly adds states here" true (s0 < s2));
    Alcotest.test_case "deadlock reported with counterexample" `Quick (fun () ->
        let r = Search.run dfs (W.Dining.program ~n:2 W.Dining.Deadlock) in
        match r.verdict with
        | Report.Deadlock { cex } ->
          check "counterexample nonempty" true (cex.length > 0);
          check "schedule recorded" true (List.length cex.decisions = cex.length)
        | _ -> Alcotest.fail "expected deadlock");
    Alcotest.test_case "safety counterexamples replay to the same failure" `Quick (fun () ->
        let p = W.Litmus.race_assert () in
        let r = Search.run dfs p in
        match r.verdict with
        | Report.Safety_violation { cex; _ } ->
          (match Search.replay p cex.decisions (fun _ -> ()) with
           | Search.Replayed_failure replayed ->
             check_int "same length" cex.length replayed.length
           | Search.Replayed_no_failure | Search.Replay_mismatch _ ->
             Alcotest.fail "replay did not reproduce the failure")
        | _ -> Alcotest.fail "expected safety violation");
    Alcotest.test_case "depth-bounded unfair search counts bound hits" `Quick (fun () ->
        let p = W.Litmus.fig3 () in
        let cfg =
          { (Search_config.unfair_dfs ~depth_bound:12) with
            coverage = true;
            max_steps = 3_000;
            seed = 5L }
        in
        let r = Search.run cfg p in
        check "some paths hit the depth bound" true (r.stats.depth_bound_hits > 0);
        (* The random tail completes them: with high probability no path
           reaches the hard cap. *)
        check "all executions terminated" true (r.stats.nonterminating = 0));
    Alcotest.test_case "without random tail, bounded paths are pruned" `Quick (fun () ->
        let p = W.Litmus.fig3 () in
        let cfg =
          { (Search_config.unfair_dfs ~depth_bound:6) with random_tail = false }
        in
        let r = Search.run cfg p in
        check "verified within the bound" true (r.verdict = Report.Verified);
        check "bound hits recorded" true (r.stats.depth_bound_hits > 0));
    Alcotest.test_case "max_executions and time limits yield Limits_reached" `Quick (fun () ->
        let p = W.Dining.program ~n:3 W.Dining.Ordered in
        let r = Search.run { dfs with max_executions = Some 5 } p in
        check "limits" true (r.verdict = Report.Limits_reached);
        check_int "stopped at 5" 5 r.stats.executions);
    Alcotest.test_case "random walk finds the spin-loop livelock" `Quick (fun () ->
        let p = W.Promise.program W.Promise.Stale_cache in
        let cfg =
          { dfs with mode = Search_config.Random_walk 100; livelock_bound = Some 300 }
        in
        let r = Search.run cfg p in
        check "divergence found" true
          (match r.verdict with Report.Divergence _ -> true | _ -> false));
    Alcotest.test_case "round-robin is a single fair schedule" `Quick (fun () ->
        (* The Section 2 discussion: one fair schedule terminates but covers
           almost nothing. *)
        let p = W.Dining.coverage_program ~n:2 in
        let cfg = { dfs with mode = Search_config.Round_robin; coverage = true } in
        let r = Search.run cfg p in
        check_int "one execution" 1 r.stats.executions;
        let full = Search.run { dfs with coverage = true } p in
        check "covers strictly less than DFS" true (r.stats.states < full.stats.states));
    Alcotest.test_case "priority-random baseline terminates and underperforms" `Quick (fun () ->
        let p = W.Dining.coverage_program ~n:2 in
        let cfg = { dfs with mode = Search_config.Priority_random 20; coverage = true } in
        let r = Search.run cfg p in
        check_int "20 executions" 20 r.stats.executions;
        check "no error" false (Report.found_error r));
    Alcotest.test_case "fair k-parameterization still verifies" `Quick (fun () ->
        let p = W.Litmus.fig3 () in
        let r = Search.run { dfs with fair_k = 2; coverage = true } p in
        check "verified" true (r.verdict = Report.Verified);
        check "covers the full space" true (r.stats.states >= 5));
    Alcotest.test_case "first-error statistics populated" `Quick (fun () ->
        let r = Search.run dfs (W.Litmus.race_assert ()) in
        check "first_error_execution set" true (r.stats.first_error_execution <> None);
        check "first_error_time set" true (r.stats.first_error_time <> None);
        check "found_error" true (Report.found_error r)) ]
