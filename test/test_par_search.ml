(* Parallel-search tests: exact equivalence with the sequential search for
   systematic modes (same verdict, execution count, transition count and
   coverage-state count for every jobs value), reproducibility of sampling
   modes for a fixed (seed, jobs) pair, and deterministic replay of
   counterexamples found by workers. Runs multi-domain searches on however
   many cores the host has — the invariants are scheduling-independent. *)

open Fairmc_core
module W = Fairmc_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = { Search_config.default with livelock_bound = Some 2_000 }

let verdict_kind (r : Report.t) = Report.verdict_name r.verdict

let cex_of = Report.cex

(* Systematic searches must be bit-for-bit equivalent: the parallel
   decomposition re-executes every sequential path exactly once and resolves
   errors in DFS order. *)
let assert_systematic_equiv name cfg prog =
  let seq = Search.run cfg prog in
  List.iter
    (fun jobs ->
      let par = Par_search.run { cfg with Search_config.jobs } prog in
      let tag fmt = Printf.sprintf "%s j=%d: %s" name jobs fmt in
      Alcotest.(check string) (tag "verdict") (verdict_kind seq) (verdict_kind par);
      check_int (tag "executions") seq.stats.executions par.stats.executions;
      check_int (tag "transitions") seq.stats.transitions par.stats.transitions;
      check_int (tag "states") seq.stats.states par.stats.states;
      check_int (tag "max depth") seq.stats.max_depth par.stats.max_depth;
      Alcotest.(check (option int))
        (tag "first error execution")
        seq.stats.first_error_execution par.stats.first_error_execution;
      match (cex_of seq, cex_of par) with
      | None, None -> ()
      | Some c1, Some c2 ->
        check (tag "identical counterexample") true (c1.decisions = c2.decisions)
      | _ -> Alcotest.fail (tag "counterexample presence differs"))
    [ 2; 4 ]

let suite =
  [ Alcotest.test_case "systematic: verified workload is bit-equal" `Quick (fun () ->
        (* C(6,3) = 20 schedules; every one must be executed exactly once
           across the workers. *)
        let p = W.Litmus.two_step_threads ~nthreads:2 ~steps:3 in
        assert_systematic_equiv "two-step" { base with fair = false; coverage = true } p);
    Alcotest.test_case "systematic: coverage union equals sequential" `Quick (fun () ->
        let p = W.Dining.coverage_program ~n:2 in
        assert_systematic_equiv "dining-cov" { base with coverage = true } p);
    Alcotest.test_case "systematic: deadlock found at the sequential position" `Quick
      (fun () ->
        let p = W.Dining.program ~n:2 W.Dining.Deadlock in
        assert_systematic_equiv "dining-deadlock" { base with coverage = true } p);
    Alcotest.test_case "systematic: known livelock is reproduced" `Quick (fun () ->
        (* Figure 1 with yields: a fair nontermination below the livelock
           bound. The divergence classification must survive the parallel
           decomposition. *)
        let p = W.Dining.program ~n:2 W.Dining.Try_acquire_yield in
        assert_systematic_equiv "dining-livelock"
          { base with livelock_bound = Some 500; coverage = true }
          p);
    Alcotest.test_case "systematic: cb + sleep sets stay exact" `Quick (fun () ->
        let p = W.Wsq.program ~stealers:1 W.Wsq.Bug1 in
        assert_systematic_equiv "wsq-bug1"
          { base with
            mode = Search_config.Context_bounded 2;
            sleep_sets = true;
            coverage = true }
          p);
    Alcotest.test_case "systematic: split depth does not change results" `Quick (fun () ->
        let p = W.Dining.coverage_program ~n:2 in
        let cfg = { base with coverage = true; jobs = 4 } in
        let seq = Search.run { cfg with jobs = 1 } p in
        List.iter
          (fun split_depth ->
            let par = Par_search.run { cfg with split_depth } p in
            check_int
              (Printf.sprintf "executions at split=%d" split_depth)
              seq.stats.executions par.stats.executions;
            check_int
              (Printf.sprintf "states at split=%d" split_depth)
              seq.stats.states par.stats.states)
          [ 1; 2; 8 ]);
    Alcotest.test_case "parallel counterexample replays deterministically" `Quick (fun () ->
        let p = W.Litmus.race_assert () in
        let r = Par_search.run { base with jobs = 4 } p in
        match r.verdict with
        | Report.Safety_violation { cex; _ } ->
          (match Search.replay p cex.decisions (fun _ -> ()) with
           | Search.Replayed_failure replayed ->
             check_int "replayed length" cex.length replayed.length
           | Search.Replayed_no_failure | Search.Replay_mismatch _ ->
             Alcotest.fail "replay did not reproduce the failure")
        | _ -> Alcotest.fail "expected safety violation");
    Alcotest.test_case "sampling: verdict matches sequential, runs reproduce" `Quick
      (fun () ->
        let p = W.Promise.program W.Promise.Stale_cache in
        let cfg =
          { base with mode = Search_config.Random_walk 100; livelock_bound = Some 300 }
        in
        let seq = Search.run cfg p in
        let par () = Par_search.run { cfg with jobs = 4 } p in
        let r1 = par () and r2 = par () in
        Alcotest.(check string) "verdict kind" (verdict_kind seq) (verdict_kind r1);
        (* Fixed (seed, jobs): the winning worker and its schedule are
           deterministic even though worker timing is not. *)
        Alcotest.(check string) "reproducible verdict" (verdict_kind r1) (verdict_kind r2);
        (match (cex_of r1, cex_of r2) with
         | Some c1, Some c2 -> check "identical schedule" true (c1.decisions = c2.decisions)
         | None, None -> ()
         | _ -> Alcotest.fail "runs disagree on finding an error"));
    Alcotest.test_case "sampling: budget is sharded, not multiplied" `Quick (fun () ->
        let p = W.Dining.coverage_program ~n:2 in
        let cfg =
          { base with mode = Search_config.Priority_random 21; coverage = true; jobs = 4 }
        in
        let r = Par_search.run cfg p in
        check "no error" false (Report.found_error r);
        check_int "21 executions total" 21 r.stats.executions);
    Alcotest.test_case "jobs=0 resolves to the host's domain count" `Quick (fun () ->
        check_int "auto"
          (Domain.recommended_domain_count ())
          (Par_search.resolve_jobs { base with jobs = 0 });
        check_int "explicit" 3 (Par_search.resolve_jobs { base with jobs = 3 });
        let p = W.Litmus.race_assert () in
        let r = Par_search.run { base with jobs = 0 } p in
        check "auto jobs still finds the bug" true (Report.found_error r)) ]
