(* Aggregate test runner for the fairmc repository. *)

let () =
  Alcotest.run "fairmc"
    [ ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("fair-sched", Test_fair_sched.suite);
      ("objects", Test_objects.suite);
      ("engine", Test_engine.suite);
      ("sync", Test_sync.suite);
      ("search", Test_search.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("par-search", Test_par_search.suite);
      ("supervisor", Test_supervisor.suite);
      ("serve", Test_serve.suite);
      ("liveness", Test_liveness.suite);
      ("sleep-sets", Test_sleepsets.suite);
      ("statecap", Test_statecap.suite);
      ("ltl", Test_ltl.suite);
      ("theorems", Test_theorems.suite);
      ("dsl", Test_dsl.suite);
      ("static", Test_static.suite);
      ("checker", Test_checker.suite);
      ("extras", Test_extras.suite);
      ("analysis", Test_analysis.suite);
      ("workloads", Test_workloads.suite) ]
