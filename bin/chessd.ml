(* chessd — the checking-as-a-service daemon.

   Serves fairmc-jobs/1 over a Unix-domain socket: `chess submit` queues
   check jobs here, duplicate submissions dedupe into one running search,
   and `chess watch-job` streams progress and the final report. Jobs are
   spooled with durable checkpoints, so a SIGTERM'd daemon resumes its
   unfinished work on restart. *)

open Cmdliner
module Daemon = Fairmc_serve.Daemon

let socket =
  Arg.(value & opt string Daemon.default_config.socket
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on; an existing file at PATH is \
                 replaced.")

let spool =
  Arg.(value & opt string Daemon.default_config.spool
       & info [ "spool" ] ~docv:"DIR"
           ~doc:"Spool directory (created if missing): one $(i,id).job per \
                 submission, $(i,id).ckpt while it runs (schema fairmc-ckpt/1), \
                 $(i,id).report once done. On restart every .job without a \
                 .report is requeued and resumes from its checkpoint.")

let max_jobs =
  Arg.(value & opt int Daemon.default_config.max_jobs
       & info [ "max-jobs" ] ~docv:"N"
           ~doc:"Runner processes to keep in flight; further jobs wait in the \
                 priority queue.")

let max_attempts =
  Arg.(value & opt int Daemon.default_config.max_attempts
       & info [ "max-attempts" ] ~docv:"N"
           ~doc:"Runner crashes or failures per job before it is marked \
                 failed. Graceful interruptions (cancel, SIGTERM) do not \
                 count: they checkpoint and requeue.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the stderr log.")

let main =
  let doc = "checking-as-a-service daemon for the fair stateless model checker" in
  let man =
    [ `S Manpage.s_description;
      `P "Accepts check-job submissions over a Unix-domain socket (protocol \
          fairmc-jobs/1), runs each through the same engine as $(b,chess \
          check) in a crash-isolated runner process, and streams progress \
          events and the final report to every subscriber.";
      `P "Job identity is the configuration fingerprint also used by \
          checkpoint resume: submitting the same program and strategy twice \
          — even with different budgets — attaches the second caller to the \
          first search instead of starting another.";
      `P "SIGTERM (or a client $(i,shutdown) request) stops gracefully: \
          runners flush a final checkpoint and a restarted daemon picks \
          every unfinished job up where it left off.";
      `S Manpage.s_exit_status;
      `P "0 on a clean shutdown; 1 on startup errors (unusable socket or \
          spool)." ]
  in
  let run socket spool max_jobs max_attempts quiet =
    try Daemon.run { Daemon.socket; spool; max_jobs; max_attempts; quiet } with
    | Unix.Unix_error (err, fn, arg) ->
      Format.eprintf "chessd: %s: %s (%s)@." fn (Unix.error_message err) arg;
      exit 1
    | Sys_error m ->
      Format.eprintf "chessd: %s@." m;
      exit 1
  in
  Cmd.v
    (Cmd.info "chessd" ~doc ~man ~version:"1.0.0")
    Term.(const run $ socket $ spool $ max_jobs $ max_attempts $ quiet)

let () = exit (Cmd.eval main)
